#!/bin/sh
# The repository's check gate: gofmt, vet, build everything, then two
# test passes — a fast -short pass under the race detector (the
# concurrency tests in concurrency_test.go, internal/obs, and
# internal/service depend on -race to mean anything) and the full suite,
# including the slow harness experiment sweeps, without it. Same
# commands as `make check`.
set -eux

fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt needed:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
go build ./...
go test -short -race ./...
go test ./...

# Machine-readable benchmark artifact: the prepared-execution
# experiment (performance + per-class accuracy) as JSON at the repo
# root, kept for comparison across revisions.
make bench-json
