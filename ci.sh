#!/bin/sh
# The repository's check gate: gofmt, vet, build everything, then two
# test passes — a fast -short pass under the race detector (the
# concurrency tests in concurrency_test.go, internal/obs, and
# internal/service depend on -race to mean anything) and the full suite,
# including the slow harness experiment sweeps, without it. Same
# commands as `make check`.
set -eux

fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt needed:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
go build ./...

# Every command builds and the daemon binary starts: compile the
# binaries into a throwaway dir and smoke-run xclusterd -version.
bindir="$(mktemp -d)"
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir" ./cmd/...
"$bindir/xclusterd" -version

# The -short -race pass includes the build differential test
# (internal/harness TestBuildExperimentDifferential): serial, parallel
# and memoized construction must agree bit-for-bit, with the worker
# pool under the race detector.
go test -short -race ./...
go test ./...

# The fuzz targets' seed corpora are regression tests: run them as
# ordinary tests (no fuzzing engine, just the f.Add seeds + testdata).
# Includes internal/catalog FuzzParseManifest (the -catalog manifest
# parser never panics and everything it accepts round-trips) and
# internal/profile FuzzParseProfile (the WorkloadProfile artifact
# parser never panics and anything accepted is a round-trip fixed
# point).
go test -run=Fuzz ./...

# Machine-readable benchmark artifacts, kept at the repo root for
# comparison across revisions: the prepared-execution experiment
# (performance + per-class accuracy), the build experiment (serial vs
# parallel vs memoized construction), the catalog experiment
# (scatter-gather vs single-shard estimation across a sharded corpus),
# the observability experiment (tracing-off vs tracing-on overhead on
# the serving hot path), the workload-profiler experiment
# (profiling-off vs profiling-on overhead plus the artifact round
# trip), and the budget-allocation experiment (fixed vs auto vs
# workload-planned splits on held-out queries).
make bench-json
make bench-build
make bench-catalog
make bench-obs
make bench-workload
make bench-autobudget
