#!/bin/sh
# The repository's check gate: gofmt, vet, build everything, and run the
# full test suite under the race detector (the concurrency tests in
# concurrency_test.go and internal/service depend on -race to mean
# anything). Same commands as `make check`.
set -eux

fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
    echo "gofmt needed:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
go build ./...
go test -race ./...
