#!/bin/sh
# The repository's check gate: vet, build everything, and run the full
# test suite under the race detector (the concurrency tests in
# concurrency_test.go and internal/service depend on -race to mean
# anything). Same commands as `make check`.
set -eux

go vet ./...
go build ./...
go test -race ./...
