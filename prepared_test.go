// Differential test of the compiled-plan pipeline at full workload
// scale: for every generated twig query over the IMDB and XMark
// datasets, PreparedQuery execution must reproduce Estimator.Selectivity
// bit-for-bit, sequentially and under concurrent load. The small
// hand-written shapes live in internal/core/plan_test.go; this is the
// breadth check over the harness's generated workloads (all four query
// classes, positive and negative).
package xcluster_test

import (
	"fmt"
	"sync"
	"testing"

	"xcluster/internal/core"
	"xcluster/internal/harness"
	"xcluster/internal/query"
	"xcluster/internal/workload"
)

// preparedDataset is one dataset's differential fixture: a compressed
// synopsis and its generated workload.
type preparedDataset struct {
	name string
	syn  *core.Synopsis
	qs   []*query.Query
}

// preparedFixtures builds both datasets' synopses and workloads, adding
// a negative workload so zero-selectivity plans are covered too.
func preparedFixtures(t *testing.T) []preparedDataset {
	t.Helper()
	cfg := harness.Config{Scale: 1, Seed: 7, PerClass: 30, Points: 4}
	var out []preparedDataset
	for _, name := range harness.DatasetNames() {
		d, err := harness.NewDataset(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		syn, err := cfg.BuildAt(d, d.Ref.StructBytes()/20)
		if err != nil {
			t.Fatal(err)
		}
		var qs []*query.Query
		for i := range d.Workload.Queries {
			qs = append(qs, d.Workload.Queries[i].Q)
		}
		neg, err := workload.Generate(d.Tree, workload.Options{
			Seed: cfg.Seed + 1, PerClass: 5, ValuePaths: d.ValuePaths, Negative: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range neg.Queries {
			qs = append(qs, neg.Queries[i].Q)
		}
		out = append(out, preparedDataset{name: name, syn: syn, qs: qs})
	}
	return out
}

// TestPreparedDifferential prepares every generated query and requires
// the compiled plan's answer to equal the shared estimator's, for at
// least 200 queries across the two datasets.
func TestPreparedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full harness datasets")
	}
	total := 0
	for _, d := range preparedFixtures(t) {
		est := core.NewEstimator(d.syn)
		est.SetCacheCapacity(0) // answers must come from execution
		for i, q := range d.qs {
			want := est.Selectivity(q)
			pq, err := est.Prepare(q)
			if err != nil {
				t.Fatalf("%s: prepare query %d (%s): %v", d.name, i, q, err)
			}
			if got := pq.Selectivity(); got != want {
				t.Errorf("%s: query %d (%s): prepared %v, estimator %v (bit-for-bit)",
					d.name, i, q, got, want)
			}
		}
		total += len(d.qs)
	}
	if total < 200 {
		t.Fatalf("differential workload has %d queries, want >= 200", total)
	}
}

// TestPreparedDifferentialConcurrent executes the prepared plans of both
// datasets from 32 goroutines sharing one estimator per dataset; every
// answer must stay bit-for-bit identical to the sequential ground truth.
// Run with -race.
func TestPreparedDifferentialConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full harness datasets")
	}
	for _, d := range preparedFixtures(t) {
		est := core.NewEstimator(d.syn)
		est.SetCacheCapacity(0)
		want := make([]float64, len(d.qs))
		prepared := make([]*core.PreparedQuery, len(d.qs))
		for i, q := range d.qs {
			want[i] = est.Selectivity(q)
			pq, err := est.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			prepared[i] = pq
		}
		const goroutines = 32
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < len(prepared); r++ {
					// Rotate so goroutines overlap on different plans,
					// alternating prepared execution with the shared
					// estimator's compiled path.
					i := (g + r) % len(prepared)
					if got := prepared[i].Selectivity(); got != want[i] {
						errs <- fmt.Errorf("%s: goroutine %d: prepared %s = %v, want %v",
							d.name, g, d.qs[i], got, want[i])
						return
					}
					if g%2 == 0 {
						if got := est.Selectivity(d.qs[i]); got != want[i] {
							errs <- fmt.Errorf("%s: goroutine %d: estimator %s = %v, want %v",
								d.name, g, d.qs[i], got, want[i])
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}
