// Command xcluster builds XCluster synopses of XML documents, persists
// them, and estimates twig-query selectivities over them.
//
// Usage:
//
//	xcluster stats    doc.xml
//	xcluster build    -bstr 10240 -bval 51200 [-o syn.bin] doc.xml
//	xcluster estimate -q '//paper[year>2000]/title' doc.xml
//	xcluster estimate -q '//paper[year>2000]/title' -syn syn.bin [doc.xml]
//
// estimate prints the synopsis estimate; when the document is also given
// it prints the exact selectivity and the relative error.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"xcluster"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  xcluster stats    <doc.xml>
  xcluster build    [-bstr N] [-bval N] [-o syn.bin] <doc.xml>
  xcluster estimate -q <query> [-bstr N] [-bval N] [-syn syn.bin] [<doc.xml>]
  xcluster explain  -q <query> [-bstr N] [-bval N] [-syn syn.bin] [<doc.xml>]
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	bstr := fs.Int("bstr", 10<<10, "structural budget in bytes")
	bval := fs.Int("bval", 50<<10, "value-summary budget in bytes")
	qstr := fs.String("q", "", "twig query (estimate only)")
	out := fs.String("o", "", "write the synopsis to this file (build only)")
	dot := fs.String("dot", "", "write a Graphviz rendering of the synopsis to this file (build only)")
	synPath := fs.String("syn", "", "load a serialized synopsis instead of building one (estimate only)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		usage()
	}

	loadDoc := func(path string) *xcluster.Tree {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tree, err := xcluster.ParseXML(f)
		if err != nil {
			fatal(err)
		}
		return tree
	}

	switch cmd {
	case "stats":
		if fs.NArg() != 1 {
			usage()
		}
		tree := loadDoc(fs.Arg(0))
		st := tree.ComputeStats()
		fmt.Printf("elements:    %d\n", st.Elements)
		fmt.Printf("value nodes: %d\n", st.ValueNodes)
		fmt.Printf("tags:        %d\n", st.Labels)
		fmt.Printf("max depth:   %d\n", st.MaxDepth)
		fmt.Printf("terms:       %d\n", st.Terms)
		ref, err := xcluster.BuildReference(tree)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reference synopsis: %s\n", xcluster.SynopsisStats(ref))

	case "build":
		if fs.NArg() != 1 {
			usage()
		}
		tree := loadDoc(fs.Arg(0))
		// The struct configuration rides through the Legacy adapter.
		syn, err := xcluster.Build(tree, xcluster.Legacy(xcluster.Options{StructBudget: *bstr, ValueBudget: *bval}))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("synopsis: %s\n", xcluster.SynopsisStats(syn))
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			if err := xcluster.WriteSynopsis(f, syn); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fi, _ := os.Stat(*out)
			fmt.Printf("wrote %s (%d bytes)\n", *out, fi.Size())
		}
		if *dot != "" {
			f, err := os.Create(*dot)
			if err != nil {
				fatal(err)
			}
			if err := xcluster.WriteDOT(f, syn); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *dot)
		}

	case "estimate", "explain":
		if *qstr == "" {
			usage()
		}
		q, err := xcluster.ParseQuery(*qstr)
		if err != nil {
			fatal(err)
		}
		var syn *xcluster.Synopsis
		var tree *xcluster.Tree
		switch {
		case *synPath != "":
			f, err := os.Open(*synPath)
			if err != nil {
				fatal(err)
			}
			syn, err = xcluster.ReadSynopsis(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if fs.NArg() == 1 {
				tree = loadDoc(fs.Arg(0))
			}
		case fs.NArg() == 1:
			tree = loadDoc(fs.Arg(0))
			syn, err = xcluster.Build(tree, xcluster.Legacy(xcluster.Options{StructBudget: *bstr, ValueBudget: *bval}))
			if err != nil {
				fatal(err)
			}
		default:
			usage()
		}
		estimator := xcluster.NewEstimator(syn)
		est := estimator.Selectivity(q)
		fmt.Printf("query:    %s\n", *qstr)
		fmt.Printf("synopsis: %s\n", xcluster.SynopsisStats(syn))
		fmt.Printf("estimate: %.2f\n", est)
		if tree != nil {
			exact := xcluster.ExactSelectivity(tree, q)
			fmt.Printf("exact:    %.0f\n", exact)
			if exact > 0 {
				fmt.Printf("rel.err:  %.1f%%\n", 100*math.Abs(exact-est)/exact)
			}
		}
		if cmd == "explain" {
			fmt.Println("top embeddings (query variables -> synopsis clusters):")
			for _, em := range estimator.Explain(q, 10) {
				fmt.Printf("  %s\n", syn.FormatEmbedding(em))
			}
		}

	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xcluster: %v\n", err)
	os.Exit(1)
}
