// Command xdatagen generates the synthetic IMDB-like and XMark-like XML
// data sets used by the experiments and writes them as XML.
//
// Usage:
//
//	xdatagen -dataset imdb  -scale 2 -seed 42 -o imdb.xml
//	xdatagen -dataset xmark -scale 2 -seed 42 -o xmark.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"xcluster/internal/datagen"
	"xcluster/internal/xmltree"
)

func main() {
	dataset := flag.String("dataset", "imdb", "dataset to generate: imdb or xmark")
	scale := flag.Float64("scale", 1, "scale multiplier for entity counts")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var tree *xmltree.Tree
	switch *dataset {
	case "imdb":
		tree = datagen.IMDB(datagen.IMDBConfig{Seed: *seed, Scale: *scale})
	case "xmark":
		tree = datagen.XMark(datagen.XMarkConfig{Seed: *seed, Scale: *scale})
	default:
		fmt.Fprintf(os.Stderr, "xdatagen: unknown dataset %q (want imdb or xmark)\n", *dataset)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xdatagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := xmltree.Write(w, tree); err != nil {
		fmt.Fprintf(os.Stderr, "xdatagen: %v\n", err)
		os.Exit(1)
	}
	st := tree.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %s: %d elements (%d with values), %d tags, depth %d, %d terms\n",
		*dataset, st.Elements, st.ValueNodes, st.Labels, st.MaxDepth, st.Terms)
}
