// Command xclusterd serves twig-query selectivity estimates over HTTP
// from serialized XCluster synopses: the deployment shape where small
// summaries, built once from large documents, answer optimizer
// estimate requests for a fleet of query processors.
//
// The daemon always serves a shard catalog. In the classic
// single-synopsis mode (-syn) the catalog holds exactly one shard,
// addressed implicitly, and every endpoint behaves byte-for-byte like
// the historical single-tenant daemon. With -catalog it serves a
// multi-tenant manifest instead: one shard per (tenant, collection)
// entry, each with its own synopsis generations, caches, accuracy
// monitor, and shadow-sampling budget.
//
// Usage:
//
//	xcluster build -bstr 10240 -bval 51200 -o syn.bin doc.xml
//	xclusterd -syn syn.bin -addr :8080
//	xclusterd -catalog manifest.json -addr :8080
//
//	curl -s localhost:8080/estimate -d '{"queries":["//paper[year>2000]/title"]}'
//	curl -s localhost:8080/estimate -d '{"tenant":"acme","collection":"docs","queries":["//paper/title"]}'
//	curl -s localhost:8080/estimate -d '{"tenant":"acme","queries":["//paper/title"]}'  # scatter-gather
//	curl -s localhost:8080/feedback -d '{"feedback":[{"query":"//paper/title","true":42}]}'
//	curl -s localhost:8080/metrics        # Prometheus text format (tenant/collection labels)
//	curl -s localhost:8080/stats          # JSON counters + percentiles (?tenant=&collection=)
//	curl -s localhost:8080/debug/slowlog  # per-shard ring buffer; /debug/slowlog/all merges shards
//	curl -s localhost:8080/debug/traces   # recent + slowest request trace trees, correlated by X-Request-ID
//	curl -s localhost:8080/debug/slo      # per-tenant SLO reports: multi-window error-budget burn rates
//	curl -s localhost:8080/debug/workload # query-shape analytics, class pain scores, synopsis coverage
//	curl -s 'localhost:8080/admin/workload/export?tenant=acme&collection=docs'  # versioned WorkloadProfile artifact
//	curl -s localhost:8080/readyz         # 503 before the first shard attaches and while draining
//	curl -s localhost:8080/debug/accuracy # per-class estimation error + drift flags
//	curl -s localhost:8080/debug/synopsis # clusters, budget split, generation, rebuild status
//	curl -s localhost:8080/admin/catalog  # attached shards
//	curl -s -X POST localhost:8080/admin/catalog/attach -d @shard.json
//	curl -s -X POST localhost:8080/admin/catalog/detach -d '{"tenant":"acme","collection":"docs"}'
//	curl -s 'localhost:8080/admin/catalog/route?tenant=acme&key=doc-17'
//	curl -s -X POST localhost:8080/admin/reload   # hot swap: re-read the shard's synopsis
//	curl -s -X POST localhost:8080/admin/rebuild -d '{"struct_budget":20480}'
//	curl -s localhost:8080/buildinfo
//	curl -s localhost:8080/synopsis
//
// Manifest paths (synopsis, document) are resolved relative to the
// manifest file's directory, so a manifest can travel with its
// artifacts. Per-shard settings (document, shadow sampling, rebuild
// budgets, cache sizes) come from the manifest in catalog mode;
// server-wide flags (-timeout, -slowquery, -workers, -cache defaults)
// apply to every shard.
//
// Each served synopsis is a hot-swappable generation. SIGHUP or POST
// /admin/reload re-reads the shard's synopsis and swaps it in with zero
// downtime (SIGHUP reloads every attached shard). With a resident
// document, POST /admin/rebuild reconstructs a shard's synopsis in the
// background and rebuild_on_drift triggers that automatically when the
// shard's accuracy monitor flags drift. Shadow sampling re-runs a
// sampled fraction of a shard's estimates through the exact evaluator
// on that shard's private worker budget.
//
// Logs are structured JSON on stderr (log/slog); synopsis lifecycle
// transitions (reloads, rebuilds, swaps) are logged at info with the
// owning shard. The server shuts down gracefully on SIGINT/SIGTERM: it
// stops accepting, drains every shard within the -drain deadline, and
// flushes the slow-query logs into the structured log before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"xcluster"
	"xcluster/internal/accuracy"
	"xcluster/internal/catalog"
	"xcluster/internal/core"
	"xcluster/internal/obs"
	"xcluster/internal/service"
	"xcluster/internal/xmltree"
)

// loadSynopsis reads and decodes a synopsis file.
func loadSynopsis(path string) (*core.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xcluster.ReadSynopsis(f)
}

// loadDocument reads and parses an XML document file.
func loadDocument(path string) (*xmltree.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xcluster.ParseXML(f)
}

// daemonManifest produces the catalog manifest the daemon serves: the
// file named by -catalog, or a synthesized one-shard manifest carrying
// the single-synopsis flags. baseDir is the directory manifest-relative
// synopsis/document paths resolve against.
func daemonManifest(cfg *config) (m *catalog.Manifest, baseDir string, err error) {
	if cfg.catalogPath != "" {
		m, err = catalog.LoadManifestFile(cfg.catalogPath)
		if err != nil {
			return nil, "", err
		}
		return m, filepath.Dir(cfg.catalogPath), nil
	}
	// Single-synopsis mode is the same machinery with one implicit
	// shard: flags map onto the spec, and the shard is the default so
	// unaddressed requests (and /metrics series) look exactly like the
	// historical single-tenant daemon.
	m = &catalog.Manifest{
		DefaultTenant:     "default",
		DefaultCollection: "main",
		Shards: []catalog.ShardSpec{{
			Tenant:           "default",
			Collection:       "main",
			Synopsis:         cfg.synPath,
			Document:         cfg.docPath,
			StructBudget:     cfg.bstr,
			ValueBudget:      cfg.bval,
			ShadowRate:       cfg.shadowRate,
			ShadowWorkers:    cfg.shadowWorkers,
			ShadowDeadlineMS: int(cfg.shadowDeadline / time.Millisecond),
			RebuildOnDrift:   cfg.rebuildOnDrift,
			AdaptiveBudget:   cfg.adaptiveBudget,
		}},
	}
	if err := m.Validate(); err != nil {
		return nil, "", err
	}
	return m, "", nil
}

// resolvePath resolves a manifest-relative path against the manifest's
// directory; absolute paths and the single-synopsis mode pass through.
func resolvePath(baseDir, path string) string {
	if baseDir == "" || path == "" || filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(baseDir, path)
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	if cfg.version {
		fmt.Println(service.ReadBuildInfo())
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(cfg.logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "xclusterd: bad -log-level %q: %v\n", cfg.logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	m, baseDir, err := daemonManifest(cfg)
	if err != nil {
		fatal("loading catalog manifest", err)
	}
	defKey, _ := m.DefaultKey()

	cat, err := catalog.New(catalog.Config{
		Loader: func(ctx context.Context, spec catalog.ShardSpec) (*core.Synopsis, *xmltree.Tree, error) {
			syn, err := loadSynopsis(resolvePath(baseDir, spec.Synopsis))
			if err != nil {
				return nil, nil, err
			}
			var tree *xmltree.Tree
			if spec.Document != "" {
				if tree, err = loadDocument(resolvePath(baseDir, spec.Document)); err != nil {
					return nil, nil, err
				}
			}
			return syn, tree, nil
		},
		// Server-wide flags apply to every shard; per-shard manifest
		// settings (cache sizes, shadow budgets) are layered on top by
		// the catalog and win where both are set.
		ShardOptions: func(spec catalog.ShardSpec) []service.Option {
			shard := spec.Key().String()
			opts := []service.Option{
				service.WithTimeout(cfg.timeout),
				service.WithSlowQueryLog(cfg.slowQ, cfg.slowCap),
				service.WithAccuracy(accuracy.WithOnDrift(func(ev accuracy.DriftEvent) {
					logger.Warn("accuracy drift",
						"shard", shard,
						"class", ev.Class.String(),
						"recent_avg_rel_error", ev.Recent,
						"baseline_avg_rel_error", ev.Baseline,
						"ratio", ev.Ratio,
					)
				})),
				service.WithOnSwap(func(ev service.SwapEvent) {
					args := []any{
						"shard", shard,
						"old_generation", ev.OldGeneration,
						"new_generation", ev.NewGeneration,
						"reason", ev.Reason,
						"nodes", ev.Nodes,
						"total_bytes", ev.TotalBytes,
						"duration", ev.Duration.String(),
					}
					if ev.Build != nil {
						args = append(args,
							"build_workers", ev.Build.Workers,
							"merges", ev.Build.Merges,
							"pairs_evaluated", ev.Build.PairsEvaluated,
							"memo_hit_rate", ev.Build.MemoHitRate(),
							"merge_seconds", ev.Build.MergeSeconds,
							"value_seconds", ev.Build.ValueSeconds,
						)
					}
					logger.Info("synopsis swapped", args...)
				}),
			}
			if cfg.workers > 0 {
				opts = append(opts, service.WithWorkers(cfg.workers))
			}
			if cfg.cache != 0 {
				opts = append(opts, service.WithCacheCapacity(cfg.cache))
			}
			if cfg.planCap != 0 {
				opts = append(opts, service.WithPlanCacheCapacity(cfg.planCap))
			}
			if cfg.buildWorkers > 0 {
				opts = append(opts, service.WithBuildWorkers(cfg.buildWorkers))
			}
			if cfg.workloadCap != 0 || cfg.workloadWindow != 0 {
				opts = append(opts, service.WithWorkloadProfile(cfg.workloadCap, cfg.workloadWindow))
			}
			// Server-wide SLO defaults; a shard's manifest objectives are
			// appended after these by the catalog and win.
			slo := obs.SLOConfig{
				Availability:     cfg.sloAvailability,
				LatencyObjective: cfg.sloLatency,
				LatencyTarget:    cfg.sloLatencyTarget,
			}
			if slo.Enabled() {
				opts = append(opts, service.WithSLO(slo))
			}
			return opts
		},
		ScatterWorkers: m.ScatterWorkers,
		DefaultKey:     defKey,
		// Only the synthesized single-synopsis catalog keeps unlabeled
		// metrics: a converted deployment's /metrics stays
		// byte-compatible. Real manifests label every shard's series.
		UnlabeledDefault: cfg.catalogPath == "",
	})
	if err != nil {
		fatal("creating catalog", err)
	}
	if err := cat.AttachManifest(context.Background(), m); err != nil {
		fatal("attaching shards", err)
	}

	bi := service.ReadBuildInfo()
	for _, info := range cat.List() {
		logger.Info("shard attached",
			"shard", info.Tenant+"/"+info.Collection,
			"clusters", info.Clusters,
			"bytes", info.Bytes,
			"generation", info.Generation,
		)
	}
	logger.Info("serving",
		"addr", cfg.addr,
		"shards", len(cat.List()),
		"tenants", len(cat.Tenants()),
		"slowquery_threshold", cfg.slowQ.String(),
		"go_version", bi.GoVersion,
		"vcs_revision", bi.Revision,
	)

	if cfg.pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: cfg.pprofAddr, Handler: pprofMux, ReadHeaderTimeout: 5 * time.Second}
		logger.Info("pprof listening", "addr", cfg.pprofAddr)
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "error", err)
			}
		}()
	}

	// SIGHUP = hot reload: every shard re-reads its synopsis and swaps,
	// the classic "new artifact written over the served file" workflow,
	// fleet-wide.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			for _, info := range cat.List() {
				sh, err := cat.Shard(info.Tenant, info.Collection)
				if err != nil {
					continue // detached or draining since the snapshot
				}
				logger.Info("SIGHUP: reloading synopsis", "shard", info.Tenant+"/"+info.Collection)
				if _, err := sh.Service().Reload(context.Background()); err != nil {
					logger.Error("reload failed; still serving the previous generation",
						"shard", info.Tenant+"/"+info.Collection, "error", err)
				}
			}
		}
	}()

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           cat.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		fatal("server", err)
	case <-ctx.Done():
		stop()
		// Snapshot the shards before draining: after DrainAll their
		// services are closed.
		var served, failed, slow uint64
		type shardRef struct {
			key string
			svc *service.Service
		}
		var refs []shardRef
		for _, info := range cat.List() {
			sh, err := cat.Shard(info.Tenant, info.Collection)
			if err != nil {
				continue
			}
			st := sh.Service().Stats()
			served += st.Served
			failed += st.Failed
			slow += st.SlowQueries
			refs = append(refs, shardRef{key: info.Tenant + "/" + info.Collection, svc: sh.Service()})
		}
		logger.Info("shutting down",
			"served", served,
			"failed", failed,
			"slow_queries", slow,
			"shards", len(refs),
			"drain_deadline", cfg.drain.String(),
		)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		// Flip readiness first: GET /readyz answers 503 while in-flight
		// handlers finish, so load balancers stop routing before the
		// listener closes.
		cat.BeginShutdown()
		// Stop accepting and wait for in-flight HTTP handlers, then
		// drain every shard's estimation work (EstimateBatch workers,
		// shadow pools), all under the one -drain deadline.
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown incomplete", "error", err)
		}
		// Flush the slow-query logs into the structured log so captured
		// queries survive the process; handlers are done, services not
		// yet closed.
		for _, ref := range refs {
			for _, e := range ref.svc.SlowLog().Snapshot() {
				logger.Warn("slow query",
					"shard", ref.key,
					"request_id", e.RequestID,
					"shape_id", e.ShapeID,
					"query", e.Query,
					"plan", e.Plan,
					"estimate", e.Estimate,
					"total", time.Duration(e.TotalNanos).String(),
					"time", e.Time,
				)
			}
		}
		if err := cat.DrainAll(shutdownCtx); err != nil {
			logger.Error("drain incomplete", "error", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("server", err)
		}
		logger.Info("stopped")
	}
}
