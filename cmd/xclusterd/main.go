// Command xclusterd serves twig-query selectivity estimates over HTTP
// from a serialized XCluster synopsis: the deployment shape where one
// small summary, built once from a large document, answers optimizer
// estimate requests for a fleet of query processors.
//
// Usage:
//
//	xcluster build -bstr 10240 -bval 51200 -o syn.bin doc.xml
//	xclusterd -syn syn.bin -addr :8080
//
//	curl -s localhost:8080/estimate -d '{"queries":["//paper[year>2000]/title"]}'
//	curl -s localhost:8080/estimate -d '{"queries":["//paper/title"],"trace":true}'
//	curl -s localhost:8080/feedback -d '{"feedback":[{"query":"//paper/title","true":42}]}'
//	curl -s localhost:8080/metrics        # Prometheus text format
//	curl -s localhost:8080/stats          # JSON counters + percentiles
//	curl -s localhost:8080/debug/slowlog  # slow-query ring buffer (?limit=N)
//	curl -s localhost:8080/debug/accuracy # per-class estimation error + drift flags
//	curl -s localhost:8080/debug/synopsis # clusters, budget split, generation, rebuild status
//	curl -s -X POST localhost:8080/admin/reload   # hot swap: re-read -syn
//	curl -s -X POST localhost:8080/admin/rebuild -d '{"struct_budget":20480}'
//	curl -s localhost:8080/buildinfo
//	curl -s localhost:8080/synopsis
//
// Estimation compiles each distinct query shape once (the prepared
// plan is cached in an LRU sized by -plancache) and executes the
// compiled plan per request. Every estimate runs the traced pipeline:
// per-stage latencies aggregate into /metrics histograms, queries
// slower than -slowquery land in /debug/slowlog, and "trace":true
// returns the spans inline.
//
// The served synopsis is a hot-swappable generation. SIGHUP or POST
// /admin/reload re-reads -syn and swaps the new synopsis in with zero
// downtime: in-flight estimates finish on the old generation, new
// requests see the new one, and both estimator caches are invalidated
// atomically. With -doc resident, POST /admin/rebuild reconstructs the
// synopsis from the document in the background (optionally with new
// -bstr/-bval budgets) and swaps the result in the same way;
// -rebuild-on-drift triggers such a rebuild automatically when the
// accuracy monitor flags drift.
//
// With -doc the daemon additionally shadow-samples a -shadow-rate
// fraction of estimates: sampled queries are re-run through the exact
// evaluator on background workers (bounded by -shadow-workers and
// -shadow-deadline, never on the serving path) and the estimate/truth
// pairs feed per-predicate-class error histograms in /metrics and
// /debug/accuracy. Deployments without a resident document can push
// observed exact result sizes to POST /feedback instead.
//
// Logs are structured JSON on stderr (log/slog); synopsis lifecycle
// transitions (reloads, rebuilds, swaps) are logged at info. The server
// shuts down gracefully on SIGINT/SIGTERM: it stops accepting, drains
// in-flight requests and batch work within the -drain deadline, and
// flushes the slow-query log into the structured log before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xcluster"
	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/service"
)

// loadSynopsis reads and decodes the synopsis file.
func loadSynopsis(path string) (*core.Synopsis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xcluster.ReadSynopsis(f)
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		os.Exit(2)
	}
	if cfg.version {
		fmt.Println(service.ReadBuildInfo())
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(cfg.logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "xclusterd: bad -log-level %q: %v\n", cfg.logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	syn, err := loadSynopsis(cfg.synPath)
	if err != nil {
		fatal("reading synopsis", err)
	}

	opts := []service.Option{
		service.WithTimeout(cfg.timeout),
		service.WithSlowQueryLog(cfg.slowQ, cfg.slowCap),
		service.WithAccuracy(accuracy.WithOnDrift(func(ev accuracy.DriftEvent) {
			logger.Warn("accuracy drift",
				"class", ev.Class.String(),
				"recent_avg_rel_error", ev.Recent,
				"baseline_avg_rel_error", ev.Baseline,
				"ratio", ev.Ratio,
			)
		})),
		// POST /admin/reload and SIGHUP re-read the synopsis file.
		service.WithSynopsisSource(func(ctx context.Context) (*core.Synopsis, error) {
			return loadSynopsis(cfg.synPath)
		}),
		service.WithOnSwap(func(ev service.SwapEvent) {
			args := []any{
				"old_generation", ev.OldGeneration,
				"new_generation", ev.NewGeneration,
				"reason", ev.Reason,
				"nodes", ev.Nodes,
				"total_bytes", ev.TotalBytes,
				"duration", ev.Duration.String(),
			}
			if ev.Build != nil {
				args = append(args,
					"build_workers", ev.Build.Workers,
					"merges", ev.Build.Merges,
					"pairs_evaluated", ev.Build.PairsEvaluated,
					"memo_hit_rate", ev.Build.MemoHitRate(),
					"merge_seconds", ev.Build.MergeSeconds,
					"value_seconds", ev.Build.ValueSeconds,
				)
			}
			logger.Info("synopsis swapped", args...)
		}),
	}
	if cfg.workers > 0 {
		opts = append(opts, service.WithWorkers(cfg.workers))
	}
	if cfg.cache != 0 {
		opts = append(opts, service.WithCacheCapacity(cfg.cache))
	}
	if cfg.planCap != 0 {
		opts = append(opts, service.WithPlanCacheCapacity(cfg.planCap))
	}
	if cfg.bstr > 0 || cfg.bval > 0 {
		opts = append(opts, service.WithRebuildBudgets(cfg.bstr, cfg.bval))
	}
	if cfg.rebuildOnDrift {
		opts = append(opts, service.WithRebuildOnDrift())
	}
	if cfg.buildWorkers > 0 {
		opts = append(opts, service.WithBuildWorkers(cfg.buildWorkers))
	}
	if cfg.docPath != "" {
		df, err := os.Open(cfg.docPath)
		if err != nil {
			fatal("opening document", err)
		}
		tree, err := xcluster.ParseXML(df)
		df.Close()
		if err != nil {
			fatal("parsing document", err)
		}
		opts = append(opts, service.WithDocument(tree))
		if cfg.shadowRate > 0 {
			opts = append(opts, service.WithShadowSampling(cfg.shadowRate, cfg.shadowWorkers, cfg.shadowDeadline))
		}
	}
	svc := service.New(syn, opts...)
	defer svc.Close()

	bi := service.ReadBuildInfo()
	st := xcluster.SynopsisStats(syn)
	logger.Info("serving",
		"addr", cfg.addr,
		"synopsis", st.String(),
		"generation", svc.Generation(),
		"slowquery_threshold", cfg.slowQ.String(),
		"shadow_rate", cfg.shadowRate,
		"go_version", bi.GoVersion,
		"vcs_revision", bi.Revision,
	)

	if cfg.pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: cfg.pprofAddr, Handler: pprofMux, ReadHeaderTimeout: 5 * time.Second}
		logger.Info("pprof listening", "addr", cfg.pprofAddr)
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "error", err)
			}
		}()
	}

	// SIGHUP = hot reload: re-read the synopsis file and swap, the
	// classic "new artifact written over the served file" workflow.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			logger.Info("SIGHUP: reloading synopsis", "path", cfg.synPath)
			if _, err := svc.Reload(context.Background()); err != nil {
				logger.Error("reload failed; still serving the previous generation", "error", err)
			}
		}
	}()

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		fatal("server", err)
	case <-ctx.Done():
		stop()
		stats := svc.Stats()
		logger.Info("shutting down",
			"served", stats.Served,
			"failed", stats.Failed,
			"slow_queries", stats.SlowQueries,
			"generation", stats.Generation,
			"swaps", stats.Swaps,
			"drain_deadline", cfg.drain.String(),
		)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		// Stop accepting and wait for in-flight HTTP handlers, then for
		// any estimation work still running (EstimateBatch workers), all
		// under the one -drain deadline.
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown incomplete", "error", err)
		}
		if err := svc.Drain(shutdownCtx); err != nil {
			logger.Error("drain incomplete", "error", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("server", err)
		}
		// Flush the slow-query log into the structured log so captured
		// queries survive the process.
		for _, e := range svc.SlowLog().Snapshot() {
			logger.Warn("slow query",
				"query", e.Query,
				"plan", e.Plan,
				"estimate", e.Estimate,
				"total", time.Duration(e.TotalNanos).String(),
				"time", e.Time,
			)
		}
		logger.Info("stopped")
	}
}
