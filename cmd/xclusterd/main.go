// Command xclusterd serves twig-query selectivity estimates over HTTP
// from a serialized XCluster synopsis: the deployment shape where one
// small summary, built once from a large document, answers optimizer
// estimate requests for a fleet of query processors.
//
// Usage:
//
//	xcluster build -bstr 10240 -bval 51200 -o syn.bin doc.xml
//	xclusterd -syn syn.bin -addr :8080
//
//	curl -s localhost:8080/estimate -d '{"queries":["//paper[year>2000]/title"]}'
//	curl -s localhost:8080/estimate -d '{"queries":["//paper/title"],"trace":true}'
//	curl -s localhost:8080/feedback -d '{"feedback":[{"query":"//paper/title","true":42}]}'
//	curl -s localhost:8080/metrics        # Prometheus text format
//	curl -s localhost:8080/stats          # JSON counters + percentiles
//	curl -s localhost:8080/debug/slowlog  # slow-query ring buffer (?limit=N)
//	curl -s localhost:8080/debug/accuracy # per-class estimation error + drift flags
//	curl -s localhost:8080/debug/synopsis # cluster cardinalities + budget split (?limit=N)
//	curl -s localhost:8080/buildinfo
//	curl -s localhost:8080/synopsis
//
// Estimation compiles each distinct query shape once (the prepared
// plan is cached in an LRU sized by -plancache) and executes the
// compiled plan per request. Every estimate runs the traced pipeline:
// per-stage latencies aggregate into /metrics histograms, queries
// slower than -slowquery land in /debug/slowlog, and "trace":true
// returns the spans inline.
//
// With -doc the daemon keeps the source document resident and
// shadow-samples a -shadow-rate fraction of estimates: sampled queries
// are re-run through the exact evaluator on background workers
// (bounded by -shadow-workers and -shadow-deadline, never on the
// serving path) and the estimate/truth pairs feed per-predicate-class
// error histograms in /metrics and /debug/accuracy. A class whose
// recent error drifts beyond its history logs a warning. Deployments
// without a resident document can push observed exact result sizes to
// POST /feedback instead.
//
// Logs are structured JSON on stderr (log/slog). -pprof-addr serves
// net/http/pprof on a separate listener for profiling. The server
// shuts down gracefully on SIGINT/SIGTERM: it stops accepting, drains
// in-flight requests and batch work within the -drain deadline, and
// flushes the slow-query log into the structured log before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xcluster"
	"xcluster/internal/accuracy"
	"xcluster/internal/service"
)

func main() {
	var (
		synPath  = flag.String("syn", "", "serialized synopsis to serve (required; see xcluster build -o)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "batch worker goroutines (default GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request estimation deadline (0 disables)")
		cache    = flag.Int("cache", 0, "query-result cache capacity (default 1024, negative disables)")
		planCap  = flag.Int("plancache", 0, "compiled-plan cache capacity (default 256, negative disables)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for draining in-flight work")
		slowQ    = flag.Duration("slowquery", 100*time.Millisecond, "slow-query log threshold (0 disables)")
		slowCap  = flag.Int("slowlog-cap", 0, "slow-query log ring capacity (default 128)")
		pprofA   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		version  = flag.Bool("version", false, "print build info and exit")
		docPath  = flag.String("doc", "", "source XML document for shadow exact evaluation (enables -shadow-rate)")
		shadowR  = flag.Float64("shadow-rate", 0, "fraction of estimates to shadow-verify against -doc (0 disables, 1 samples all)")
		shadowW  = flag.Int("shadow-workers", 0, "shadow evaluation worker goroutines (default 1)")
		shadowD  = flag.Duration("shadow-deadline", 0, "per-query shadow evaluation deadline (default 2s)")
	)
	flag.Parse()
	if *version {
		fmt.Println(service.ReadBuildInfo())
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "xclusterd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	if *synPath == "" {
		fmt.Fprintln(os.Stderr, "usage: xclusterd -syn syn.bin [-addr :8080] [-workers N] [-timeout 5s] [-slowquery 100ms] [-pprof-addr :6060]")
		os.Exit(2)
	}

	f, err := os.Open(*synPath)
	if err != nil {
		fatal("opening synopsis", err)
	}
	syn, err := xcluster.ReadSynopsis(f)
	f.Close()
	if err != nil {
		fatal("reading synopsis", err)
	}

	opts := []service.Option{
		service.WithTimeout(*timeout),
		service.WithSlowQueryLog(*slowQ, *slowCap),
		service.WithAccuracy(accuracy.WithOnDrift(func(ev accuracy.DriftEvent) {
			logger.Warn("accuracy drift",
				"class", ev.Class.String(),
				"recent_avg_rel_error", ev.Recent,
				"baseline_avg_rel_error", ev.Baseline,
				"ratio", ev.Ratio,
			)
		})),
	}
	if *workers > 0 {
		opts = append(opts, service.WithWorkers(*workers))
	}
	if *cache != 0 {
		opts = append(opts, service.WithCacheCapacity(*cache))
	}
	if *planCap != 0 {
		opts = append(opts, service.WithPlanCacheCapacity(*planCap))
	}
	if *shadowR > 0 && *docPath == "" {
		fmt.Fprintln(os.Stderr, "xclusterd: -shadow-rate requires -doc (the document to evaluate exactly)")
		os.Exit(2)
	}
	if *docPath != "" {
		df, err := os.Open(*docPath)
		if err != nil {
			fatal("opening document", err)
		}
		tree, err := xcluster.ParseXML(df)
		df.Close()
		if err != nil {
			fatal("parsing document", err)
		}
		opts = append(opts, service.WithDocument(tree))
		if *shadowR > 0 {
			opts = append(opts, service.WithShadowSampling(*shadowR, *shadowW, *shadowD))
		}
	}
	svc := service.New(syn, opts...)
	defer svc.Close()

	bi := service.ReadBuildInfo()
	st := xcluster.SynopsisStats(syn)
	logger.Info("serving",
		"addr", *addr,
		"synopsis", st.String(),
		"slowquery_threshold", slowQ.String(),
		"shadow_rate", *shadowR,
		"go_version", bi.GoVersion,
		"vcs_revision", bi.Revision,
	)

	if *pprofA != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofA, Handler: pprofMux, ReadHeaderTimeout: 5 * time.Second}
		logger.Info("pprof listening", "addr", *pprofA)
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "error", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		fatal("server", err)
	case <-ctx.Done():
		stop()
		stats := svc.Stats()
		logger.Info("shutting down",
			"served", stats.Served,
			"failed", stats.Failed,
			"slow_queries", stats.SlowQueries,
			"drain_deadline", drain.String(),
		)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting and wait for in-flight HTTP handlers, then for
		// any estimation work still running (EstimateBatch workers), all
		// under the one -drain deadline.
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown incomplete", "error", err)
		}
		if err := svc.Drain(shutdownCtx); err != nil {
			logger.Error("drain incomplete", "error", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("server", err)
		}
		// Flush the slow-query log into the structured log so captured
		// queries survive the process.
		for _, e := range svc.SlowLog().Snapshot() {
			logger.Warn("slow query",
				"query", e.Query,
				"plan", e.Plan,
				"estimate", e.Estimate,
				"total", time.Duration(e.TotalNanos).String(),
				"time", e.Time,
			)
		}
		logger.Info("stopped")
	}
}
