// Command xclusterd serves twig-query selectivity estimates over HTTP
// from a serialized XCluster synopsis: the deployment shape where one
// small summary, built once from a large document, answers optimizer
// estimate requests for a fleet of query processors.
//
// Usage:
//
//	xcluster build -bstr 10240 -bval 51200 -o syn.bin doc.xml
//	xclusterd -syn syn.bin -addr :8080
//
//	curl -s localhost:8080/estimate -d '{"queries":["//paper[year>2000]/title"]}'
//	curl -s localhost:8080/estimate -d '{"queries":["//paper/title"],"plan":true}'
//	curl -s localhost:8080/stats    # includes plan-cache hit rates
//	curl -s localhost:8080/synopsis
//
// Estimation compiles each distinct query shape once (the prepared
// plan is cached in an LRU sized by -plancache) and executes the
// compiled plan per request; /stats reports both the result-cache and
// plan-cache hit rates.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xcluster"
	"xcluster/internal/service"
)

func main() {
	var (
		synPath = flag.String("syn", "", "serialized synopsis to serve (required; see xcluster build -o)")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "batch worker goroutines (default GOMAXPROCS)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request estimation deadline (0 disables)")
		cache   = flag.Int("cache", 0, "query-result cache capacity (default 1024, negative disables)")
		planCap = flag.Int("plancache", 0, "compiled-plan cache capacity (default 256, negative disables)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()
	if *synPath == "" {
		fmt.Fprintln(os.Stderr, "usage: xclusterd -syn syn.bin [-addr :8080] [-workers N] [-timeout 5s] [-cache N]")
		os.Exit(2)
	}

	f, err := os.Open(*synPath)
	if err != nil {
		log.Fatalf("xclusterd: %v", err)
	}
	syn, err := xcluster.ReadSynopsis(f)
	f.Close()
	if err != nil {
		log.Fatalf("xclusterd: reading synopsis: %v", err)
	}

	opts := []service.Option{service.WithTimeout(*timeout)}
	if *workers > 0 {
		opts = append(opts, service.WithWorkers(*workers))
	}
	if *cache != 0 {
		opts = append(opts, service.WithCacheCapacity(*cache))
	}
	if *planCap != 0 {
		opts = append(opts, service.WithPlanCacheCapacity(*planCap))
	}
	svc := service.New(syn, opts...)
	log.Printf("xclusterd: serving %s on %s", xcluster.SynopsisStats(syn), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		log.Fatalf("xclusterd: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("xclusterd: shutting down (served %d, failed %d)",
			svc.Stats().Served, svc.Stats().Failed)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("xclusterd: shutdown: %v", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("xclusterd: %v", err)
		}
	}
}
