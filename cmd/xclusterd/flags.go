package main

import (
	"flag"
	"fmt"
	"io"
	"time"
)

// config is the validated daemon configuration.
type config struct {
	synPath        string
	catalogPath    string
	addr           string
	workers        int
	timeout        time.Duration
	cache          int
	planCap        int
	drain          time.Duration
	slowQ          time.Duration
	slowCap        int
	pprofAddr      string
	logLevel       string
	version        bool
	docPath        string
	shadowRate     float64
	shadowWorkers  int
	shadowDeadline time.Duration
	bstr           int
	bval           int
	rebuildOnDrift bool
	adaptiveBudget bool
	buildWorkers   int
	workloadCap    int
	workloadWindow time.Duration

	// Server-wide SLO defaults; manifest shard entries override them.
	sloAvailability  float64
	sloLatency       time.Duration
	sloLatencyTarget float64
}

const usageLine = "usage: xclusterd -syn syn.bin | -catalog manifest.json [-addr :8080] [-doc doc.xml] [-bstr N -bval N] [-shadow-rate 0.01] [-timeout 5s] [-slowquery 100ms] [-pprof-addr :6060]"

// parseFlags parses and validates the daemon's command line. Invalid
// values fail here, before any file is opened or listener bound, with a
// message naming the offending flag; output (usage text, parse errors)
// goes to out.
func parseFlags(args []string, out io.Writer) (*config, error) {
	c := &config{}
	fs := flag.NewFlagSet("xclusterd", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.StringVar(&c.synPath, "syn", "", "serialized synopsis to serve (see xcluster build -o; this or -catalog is required)")
	fs.StringVar(&c.catalogPath, "catalog", "", "multi-tenant catalog manifest (JSON; serves one shard per (tenant, collection) entry)")
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.IntVar(&c.workers, "workers", 0, "batch worker goroutines (default GOMAXPROCS)")
	fs.DurationVar(&c.timeout, "timeout", 5*time.Second, "per-request estimation deadline (0 disables)")
	fs.IntVar(&c.cache, "cache", 0, "query-result cache capacity (default 1024, negative disables)")
	fs.IntVar(&c.planCap, "plancache", 0, "compiled-plan cache capacity (default 256, negative disables)")
	fs.DurationVar(&c.drain, "drain", 10*time.Second, "graceful-shutdown deadline for draining in-flight work")
	fs.DurationVar(&c.slowQ, "slowquery", 100*time.Millisecond, "slow-query log threshold (0 disables)")
	fs.IntVar(&c.slowCap, "slowlog-cap", 0, "slow-query log ring capacity (default 128)")
	fs.StringVar(&c.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	fs.StringVar(&c.logLevel, "log-level", "info", "log level: debug, info, warn or error")
	fs.BoolVar(&c.version, "version", false, "print build info and exit")
	fs.StringVar(&c.docPath, "doc", "", "source XML document, kept resident for shadow evaluation and /admin/rebuild")
	fs.Float64Var(&c.shadowRate, "shadow-rate", 0, "fraction of estimates to shadow-verify against -doc (0 disables, 1 samples all)")
	fs.IntVar(&c.shadowWorkers, "shadow-workers", 0, "shadow evaluation worker goroutines (default 1)")
	fs.DurationVar(&c.shadowDeadline, "shadow-deadline", 2*time.Second, "per-query shadow evaluation deadline (must be positive)")
	fs.IntVar(&c.bstr, "bstr", 0, "structural byte budget for /admin/rebuild (default: the served synopsis's own)")
	fs.IntVar(&c.bval, "bval", 0, "value-summary byte budget for /admin/rebuild (default: the served synopsis's own)")
	fs.BoolVar(&c.rebuildOnDrift, "rebuild-on-drift", false, "trigger a background rebuild when accuracy drift is detected (requires -doc)")
	fs.BoolVar(&c.adaptiveBudget, "adaptive-budget", false, "derive rebuild budget splits from the live workload profile (requires -doc; see GET /debug/budget)")
	fs.IntVar(&c.buildWorkers, "build-workers", 0, "merge-candidate evaluation goroutines for /admin/rebuild (default GOMAXPROCS; never changes the built synopsis)")
	fs.IntVar(&c.workloadCap, "workload-cap", 0, "workload profiler shape-table capacity per shard (default 256, negative disables profiling)")
	fs.DurationVar(&c.workloadWindow, "workload-window", 0, "workload profiler rate window (default 1m)")
	fs.Float64Var(&c.sloAvailability, "slo-availability", 0, "availability objective in (0,1), e.g. 0.999 (0 disables; manifest shard entries override)")
	fs.DurationVar(&c.sloLatency, "slo-latency", 0, "latency objective per estimate, e.g. 50ms (0 disables; manifest shard entries override)")
	fs.Float64Var(&c.sloLatencyTarget, "slo-latency-target", 0, "fraction of requests that must beat -slo-latency (default 0.99; requires -slo-latency)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := c.validate(set); err != nil {
		fmt.Fprintf(out, "xclusterd: %v\n%s\n", err, usageLine)
		return nil, err
	}
	return c, nil
}

// validate rejects nonsensical configurations with a clear usage error.
// set reports which flags were given explicitly, so "explicit zero" and
// "defaulted" are distinguishable where the distinction matters.
func (c *config) validate(set map[string]bool) error {
	if c.version {
		return nil // -version ignores everything else
	}
	if c.synPath == "" && c.catalogPath == "" {
		return fmt.Errorf("missing required -syn (the synopsis file to serve) or -catalog (a multi-tenant manifest)")
	}
	if c.synPath != "" && c.catalogPath != "" {
		return fmt.Errorf("-syn and -catalog are mutually exclusive: the manifest names each shard's synopsis")
	}
	if c.catalogPath != "" {
		// Per-shard settings live in the manifest in catalog mode; an
		// explicitly given single-synopsis flag is a configuration error,
		// not something to silently ignore.
		for _, f := range []string{"doc", "shadow-rate", "shadow-workers", "shadow-deadline", "bstr", "bval", "rebuild-on-drift", "adaptive-budget"} {
			if set[f] {
				return fmt.Errorf("-%s is a per-shard setting: with -catalog, set it in the manifest's shard entries", f)
			}
		}
	}
	if set["bstr"] && c.bstr <= 0 {
		return fmt.Errorf("-bstr must be a positive byte budget, got %d", c.bstr)
	}
	if set["bval"] && c.bval <= 0 {
		return fmt.Errorf("-bval must be a positive byte budget, got %d", c.bval)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", c.workers)
	}
	if c.timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", c.timeout)
	}
	if c.shadowRate < 0 || c.shadowRate > 1 {
		return fmt.Errorf("-shadow-rate must be in [0,1], got %g", c.shadowRate)
	}
	if c.shadowRate > 0 && c.docPath == "" {
		return fmt.Errorf("-shadow-rate requires -doc (the document to evaluate exactly)")
	}
	if c.shadowDeadline <= 0 {
		return fmt.Errorf("-shadow-deadline must be positive, got %v", c.shadowDeadline)
	}
	if c.shadowWorkers < 0 {
		return fmt.Errorf("-shadow-workers must be non-negative, got %d", c.shadowWorkers)
	}
	if c.rebuildOnDrift && c.docPath == "" {
		return fmt.Errorf("-rebuild-on-drift requires -doc (the document to rebuild from)")
	}
	if c.adaptiveBudget && c.docPath == "" {
		return fmt.Errorf("-adaptive-budget requires -doc (the document adaptive rebuilds rebuild from)")
	}
	if c.adaptiveBudget && c.workloadCap < 0 {
		return fmt.Errorf("-adaptive-budget requires workload profiling (-workload-cap %d disables it)", c.workloadCap)
	}
	if (set["bstr"] || set["bval"]) && c.docPath == "" {
		return fmt.Errorf("-bstr/-bval configure /admin/rebuild and require -doc")
	}
	if c.buildWorkers < 0 {
		return fmt.Errorf("-build-workers must be non-negative (0 = GOMAXPROCS), got %d", c.buildWorkers)
	}
	if c.workloadWindow < 0 {
		return fmt.Errorf("-workload-window must be non-negative (0 = default), got %v", c.workloadWindow)
	}
	if c.workloadWindow > 0 && c.workloadCap < 0 {
		return fmt.Errorf("-workload-window is meaningless with profiling disabled (-workload-cap %d)", c.workloadCap)
	}
	// SLO flags are server-wide defaults, legitimate in both modes (the
	// manifest's per-shard objectives win where both are set).
	if c.sloAvailability != 0 && (c.sloAvailability <= 0 || c.sloAvailability >= 1) {
		return fmt.Errorf("-slo-availability must be in (0,1), got %g", c.sloAvailability)
	}
	if c.sloLatency < 0 {
		return fmt.Errorf("-slo-latency must be non-negative, got %v", c.sloLatency)
	}
	if set["slo-latency-target"] {
		if c.sloLatencyTarget <= 0 || c.sloLatencyTarget >= 1 {
			return fmt.Errorf("-slo-latency-target must be in (0,1), got %g", c.sloLatencyTarget)
		}
		if c.sloLatency == 0 {
			return fmt.Errorf("-slo-latency-target requires -slo-latency (the objective it applies to)")
		}
	}
	// In catalog mode rebuilds are per shard (manifest documents), so
	// -build-workers is a legitimate server-wide knob there.
	if set["build-workers"] && c.docPath == "" && c.catalogPath == "" {
		return fmt.Errorf("-build-workers configures /admin/rebuild and requires -doc")
	}
	return nil
}
