package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsValid(t *testing.T) {
	c, err := parseFlags([]string{"-syn", "s.bin", "-addr", ":0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.synPath != "s.bin" || c.addr != ":0" {
		t.Fatalf("parsed %+v", c)
	}
	if c.shadowDeadline != 2*time.Second {
		t.Fatalf("shadow deadline default %v, want 2s", c.shadowDeadline)
	}
}

func TestParseFlagsVersionSkipsValidation(t *testing.T) {
	// -version must work without -syn (print build info and exit).
	c, err := parseFlags([]string{"-version"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !c.version {
		t.Fatal("version not set")
	}
}

func TestParseFlagsRejections(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"missing syn", []string{}, "-syn"},
		{"syn and catalog", []string{"-syn", "s", "-catalog", "m.json"}, "mutually exclusive"},
		{"catalog with doc", []string{"-catalog", "m.json", "-doc", "d"}, "-doc is a per-shard setting"},
		{"catalog with shadow rate", []string{"-catalog", "m.json", "-shadow-rate", "0.5"}, "-shadow-rate is a per-shard setting"},
		{"catalog with budgets", []string{"-catalog", "m.json", "-bstr", "1024"}, "-bstr is a per-shard setting"},
		{"catalog with drift", []string{"-catalog", "m.json", "-rebuild-on-drift"}, "-rebuild-on-drift is a per-shard setting"},
		{"zero bstr", []string{"-syn", "s", "-doc", "d", "-bstr", "0"}, "-bstr must be a positive"},
		{"negative bstr", []string{"-syn", "s", "-doc", "d", "-bstr", "-5"}, "-bstr must be a positive"},
		{"zero bval", []string{"-syn", "s", "-doc", "d", "-bval", "0"}, "-bval must be a positive"},
		{"negative bval", []string{"-syn", "s", "-doc", "d", "-bval", "-1"}, "-bval must be a positive"},
		{"budgets without doc", []string{"-syn", "s", "-bstr", "1024"}, "require -doc"},
		{"shadow rate negative", []string{"-syn", "s", "-doc", "d", "-shadow-rate", "-0.1"}, "-shadow-rate must be in [0,1]"},
		{"shadow rate above one", []string{"-syn", "s", "-doc", "d", "-shadow-rate", "1.5"}, "-shadow-rate must be in [0,1]"},
		{"shadow rate without doc", []string{"-syn", "s", "-shadow-rate", "0.5"}, "requires -doc"},
		{"zero shadow deadline", []string{"-syn", "s", "-shadow-deadline", "0"}, "-shadow-deadline must be positive"},
		{"negative shadow deadline", []string{"-syn", "s", "-shadow-deadline", "-1s"}, "-shadow-deadline must be positive"},
		{"negative workers", []string{"-syn", "s", "-workers", "-2"}, "-workers must be non-negative"},
		{"negative timeout", []string{"-syn", "s", "-timeout", "-1s"}, "-timeout must be non-negative"},
		{"drift without doc", []string{"-syn", "s", "-rebuild-on-drift"}, "requires -doc"},
		{"adaptive budget without doc", []string{"-syn", "s", "-adaptive-budget"}, "requires -doc"},
		{"adaptive budget without profiler", []string{"-syn", "s", "-doc", "d", "-adaptive-budget", "-workload-cap", "-1"}, "requires workload profiling"},
		{"catalog with adaptive budget", []string{"-catalog", "m.json", "-adaptive-budget"}, "-adaptive-budget is a per-shard setting"},
		{"negative build workers", []string{"-syn", "s", "-doc", "d", "-build-workers", "-1"}, "-build-workers must be non-negative"},
		{"build workers without doc", []string{"-syn", "s", "-build-workers", "4"}, "requires -doc"},
		{"slo availability above one", []string{"-syn", "s", "-slo-availability", "1.5"}, "-slo-availability must be in (0,1)"},
		{"slo availability exactly one", []string{"-syn", "s", "-slo-availability", "1"}, "-slo-availability must be in (0,1)"},
		{"negative slo latency", []string{"-syn", "s", "-slo-latency", "-50ms"}, "-slo-latency must be non-negative"},
		{"slo target out of range", []string{"-syn", "s", "-slo-latency", "50ms", "-slo-latency-target", "1.2"}, "-slo-latency-target must be in (0,1)"},
		{"slo target without latency", []string{"-syn", "s", "-slo-latency-target", "0.95"}, "-slo-latency-target requires -slo-latency"},
		{"negative workload window", []string{"-syn", "s", "-workload-window", "-1m"}, "-workload-window must be non-negative"},
		{"workload window with disabled profiling", []string{"-syn", "s", "-workload-cap", "-1", "-workload-window", "30s"}, "-workload-window is meaningless"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			_, err := parseFlags(tc.args, &sb)
			if err == nil {
				t.Fatalf("accepted %v", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The usage error reaches the user on stderr.
			if !strings.Contains(sb.String(), "usage: xclusterd") {
				t.Fatalf("no usage line in output: %q", sb.String())
			}
		})
	}
}

// TestParseFlagsCatalogMode: a manifest alone is a valid configuration,
// and server-wide flags (address, timeouts, caches) still apply.
func TestParseFlagsCatalogMode(t *testing.T) {
	c, err := parseFlags([]string{"-catalog", "m.json", "-addr", ":0", "-cache", "64"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.catalogPath != "m.json" || c.addr != ":0" || c.cache != 64 {
		t.Fatalf("parsed %+v", c)
	}
}

// TestParseFlagsDefaultBudgetsAllowed: unset budgets stay 0 ("use the
// synopsis's own") without tripping the positivity check.
func TestParseFlagsDefaultBudgetsAllowed(t *testing.T) {
	c, err := parseFlags([]string{"-syn", "s.bin", "-doc", "d.xml"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.bstr != 0 || c.bval != 0 {
		t.Fatalf("budgets %d/%d, want 0/0", c.bstr, c.bval)
	}
}

// TestParseFlagsSLO: SLO objectives are server-wide defaults valid in
// both single-shard and catalog mode (manifest entries override them).
func TestParseFlagsSLO(t *testing.T) {
	c, err := parseFlags([]string{"-syn", "s.bin",
		"-slo-availability", "0.999", "-slo-latency", "50ms", "-slo-latency-target", "0.95"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.sloAvailability != 0.999 || c.sloLatency != 50*time.Millisecond || c.sloLatencyTarget != 0.95 {
		t.Fatalf("parsed SLO %+v", c)
	}
	if _, err := parseFlags([]string{"-catalog", "m.json", "-slo-availability", "0.99"}, io.Discard); err != nil {
		t.Fatalf("catalog-mode SLO default rejected: %v", err)
	}
}

// TestParseFlagsWorkload: the profiler knobs are server-wide and valid
// in both modes; a negative capacity disables profiling per shard.
func TestParseFlagsWorkload(t *testing.T) {
	c, err := parseFlags([]string{"-syn", "s.bin", "-workload-cap", "512", "-workload-window", "30s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.workloadCap != 512 || c.workloadWindow != 30*time.Second {
		t.Fatalf("parsed workload %+v", c)
	}
	if _, err := parseFlags([]string{"-catalog", "m.json", "-workload-cap", "-1"}, io.Discard); err != nil {
		t.Fatalf("catalog-mode workload disable rejected: %v", err)
	}
}

// TestParseFlagsBuildWorkers: explicit zero means "auto" and is valid,
// as is any positive count (with -doc present).
func TestParseFlagsBuildWorkers(t *testing.T) {
	for _, n := range []string{"0", "4"} {
		c, err := parseFlags([]string{"-syn", "s.bin", "-doc", "d.xml", "-build-workers", n}, io.Discard)
		if err != nil {
			t.Fatalf("-build-workers %s rejected: %v", n, err)
		}
		if got := c.buildWorkers; got < 0 {
			t.Fatalf("buildWorkers = %d", got)
		}
	}
}
