// Command xclusterbench regenerates every table and figure of the
// paper's experimental study (Section 6) on the synthetic stand-ins for
// the IMDB and XMark data sets.
//
// Usage:
//
//	xclusterbench                       # everything, laptop scale
//	xclusterbench -scale 4 -points 11   # larger sweep
//	xclusterbench -table 1              # Table 1 only
//	xclusterbench -figure 8a            # Figure 8(a) only
//	xclusterbench -experiment negative  # negative-workload check
//	xclusterbench -experiment prepared  # compile-once speedup (JSON)
//	xclusterbench -experiment build     # serial vs parallel vs memoized construction (JSON)
//	xclusterbench -experiment catalog   # scatter-gather throughput across a sharded corpus (JSON)
//	xclusterbench -experiment obs       # observability overhead on the serving hot path (JSON)
//	xclusterbench -experiment workload  # workload-profiler overhead and export round trip (JSON)
//	xclusterbench -experiment autobudget # fixed vs auto vs workload-planned budget splits (JSON)
//
// Absolute numbers differ from the paper (different hardware, synthetic
// data); the shapes — error falling with budget, struct error < 5%,
// XMark TEXT relative error inflated by tiny true selectivities while
// its absolute error stays around a tuple — are the reproduction target.
// See EXPERIMENTS.md for a paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"xcluster/internal/harness"
)

// validExperiments lists the -experiment selector's legal values; an
// unknown name is a hard error naming them, not a silent no-op.
var validExperiments = []string{"negative", "ablations", "autobudget", "throughput", "prepared", "build", "catalog", "obs", "workload"}

var (
	validTables  = []string{"1", "2"}
	validFigures = []string{"8a", "8b", "9"}
)

// checkSelector exits with a usage error when an explicitly given
// selector flag names no known target.
func checkSelector(flagName, got string, valid []string) {
	if got != "" && !slices.Contains(valid, got) {
		fmt.Fprintf(os.Stderr, "xclusterbench: unknown -%s %q (valid: %s)\n",
			flagName, got, strings.Join(valid, ", "))
		os.Exit(2)
	}
}

func main() {
	scale := flag.Float64("scale", 1, "dataset scale multiplier")
	seed := flag.Int64("seed", 42, "data and workload seed")
	perClass := flag.Int("queries", 50, "workload queries per class")
	points := flag.Int("points", 6, "structural budget points in the Figure 8 sweep")
	table := flag.String("table", "", "run one table: 1 or 2")
	figure := flag.String("figure", "", "run one figure: 8a, 8b or 9")
	experiment := flag.String("experiment", "", "run one experiment: "+strings.Join(validExperiments, ", "))
	workers := flag.Int("workers", 0, "goroutines for -experiment throughput/build/catalog (default GOMAXPROCS)")
	csvOut := flag.Bool("csv", false, "emit Figure 8 rows as CSV (for plotting)")
	flag.Parse()
	checkSelector("table", *table, validTables)
	checkSelector("figure", *figure, validFigures)
	checkSelector("experiment", *experiment, validExperiments)

	cfg := harness.Config{Scale: *scale, Seed: *seed, PerClass: *perClass, Points: *points}
	all := *table == "" && *figure == "" && *experiment == ""

	datasets := map[string]*harness.Dataset{}
	load := func(name string) *harness.Dataset {
		if d, ok := datasets[name]; ok {
			return d
		}
		t0 := time.Now()
		d, err := harness.NewDataset(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xclusterbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s: %d elements, reference %d nodes, %.1fs]\n",
			name, d.Tree.Len(), d.Ref.NumNodes(), time.Since(t0).Seconds())
		datasets[name] = d
		return d
	}

	check := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "xclusterbench: %v\n", err)
			os.Exit(1)
		}
	}

	if all || *table == "1" {
		var rows []harness.Table1Row
		for _, name := range harness.DatasetNames() {
			rows = append(rows, harness.Table1(load(name)))
		}
		fmt.Println(harness.FormatTable1(rows))
	}
	if all || *table == "2" {
		var rows []harness.Table2Row
		for _, name := range harness.DatasetNames() {
			rows = append(rows, harness.Table2(load(name)))
		}
		fmt.Println(harness.FormatTable2(rows))
	}
	printFig8 := func(name string, rows []harness.Fig8Row) {
		if *csvOut {
			fmt.Printf("dataset,bstr_bytes,total_kb,text,string,numeric,struct,overall\n")
			for _, r := range rows {
				fmt.Printf("%s,%d,%.1f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
					name, r.StructBudget, r.TotalKB, r.Text, r.String, r.Numeric, r.Struct, r.Overall)
			}
			fmt.Println()
			return
		}
		fmt.Println(harness.FormatFigure8(name, rows))
	}
	if all || *figure == "8a" {
		rows, err := harness.Figure8(load("IMDB"), cfg)
		check(err)
		printFig8("a: IMDB", rows)
	}
	if all || *figure == "8b" {
		rows, err := harness.Figure8(load("XMark"), cfg)
		check(err)
		printFig8("b: XMark", rows)
	}
	if all || *figure == "9" {
		var rows []harness.Fig9Row
		for _, name := range harness.DatasetNames() {
			r, err := harness.Figure9(load(name), cfg)
			check(err)
			rows = append(rows, r...)
		}
		fmt.Println(harness.FormatFigure9(rows))
	}
	if all || *experiment == "negative" {
		var rows []harness.NegativeRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.NegativeExperiment(load(name), cfg)
			check(err)
			rows = append(rows, r...)
		}
		fmt.Println(harness.FormatNegative(rows))
	}
	if all || *experiment == "ablations" {
		d := load("IMDB")
		th := harness.AblationTermHist(d, []int{4096, 1024, 256, 64})
		ps := harness.AblationPSTPruning(d, []float64{0.25, 0.5, 0.75, 0.9}, *seed)
		// XMark carries the structural-error signal (recursive
		// descriptions), which the policy comparison needs.
		bd, err := harness.AblationBuild(load("XMark"), cfg)
		check(err)
		fmt.Println(harness.FormatAblations(th, ps, bd))
		num := harness.AblationNumericSummaries(d, []int{512, 128, 64, 32}, *seed)
		fmt.Println(harness.FormatNumericAblation(num))
	}
	if *experiment == "throughput" { // opt-in: wall-clock sensitive
		var rows []harness.ThroughputRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.ThroughputExperiment(load(name), cfg, *workers, 0)
			check(err)
			rows = append(rows, r...)
		}
		fmt.Println(harness.FormatThroughput(rows))
	}
	if *experiment == "prepared" { // opt-in: wall-clock sensitive
		var rows []harness.PreparedRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.PreparedExperiment(load(name), cfg, 0)
			check(err)
			rows = append(rows, r)
		}
		fmt.Fprintln(os.Stderr, harness.FormatPrepared(rows))
		fmt.Println(harness.FormatPreparedJSON(rows))
	}
	if *experiment == "autobudget" { // opt-in: several extra builds per dataset
		var rows []harness.AutoBudgetRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.AutoBudgetExperiment(load(name), cfg)
			check(err)
			rows = append(rows, r...)
		}
		fmt.Fprintln(os.Stderr, harness.FormatAutoBudget(rows))
		fmt.Println(harness.FormatAutoBudgetJSON(rows))
	}
	if *experiment == "build" { // opt-in: wall-clock sensitive
		var rows []harness.BuildRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.BuildExperiment(load(name), cfg, *workers)
			check(err)
			rows = append(rows, r)
		}
		fmt.Fprintln(os.Stderr, harness.FormatBuild(rows))
		fmt.Println(harness.FormatBuildJSON(rows))
	}
	if *experiment == "obs" { // opt-in: wall-clock sensitive
		var rows []harness.ObsRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.ObsExperiment(load(name), cfg, 0)
			check(err)
			rows = append(rows, r)
		}
		fmt.Fprintln(os.Stderr, harness.FormatObs(rows))
		fmt.Println(harness.FormatObsJSON(rows))
	}
	if *experiment == "workload" { // opt-in: wall-clock sensitive
		var rows []harness.WorkloadProfRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.WorkloadProfExperiment(load(name), cfg, 0)
			check(err)
			rows = append(rows, r)
		}
		fmt.Fprintln(os.Stderr, harness.FormatWorkloadProf(rows))
		fmt.Println(harness.FormatWorkloadProfJSON(rows))
	}
	if *experiment == "catalog" { // opt-in: wall-clock sensitive
		var rows []harness.CatalogRow
		for _, name := range harness.DatasetNames() {
			r, err := harness.CatalogExperiment(load(name), cfg, *workers, 0)
			check(err)
			rows = append(rows, r)
		}
		fmt.Fprintln(os.Stderr, harness.FormatCatalog(rows))
		fmt.Println(harness.FormatCatalogJSON(rows))
	}
}
