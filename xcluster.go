// Package xcluster is the public API of this reproduction of "XCluster
// Synopses for Structured XML Content" (Polyzotis & Garofalakis, ICDE
// 2006). An XCluster synopsis is a compact structure-value clustering of
// an XML document that supports selectivity estimation for twig queries
// with numeric-range, substring, and IR-style keyword predicates over
// heterogeneous element content.
//
// Typical use:
//
//	tree, _ := xcluster.ParseXML(file)
//	syn, _  := xcluster.Build(tree,
//	    xcluster.WithStructBudget(10<<10), // 10 KB of structure
//	    xcluster.WithValueBudget(50<<10),  // 50 KB of value summaries
//	)
//	est := xcluster.NewEstimator(syn)
//	q, _ := xcluster.ParseQuery("//paper[year>2000]/title[contains(Tree)]")
//	fmt.Println(est.Selectivity(q))
//
// Hot query shapes can be compiled once and executed many times:
//
//	pq, _ := est.Prepare(q)
//	fmt.Println(pq.Selectivity()) // same value, no per-call resolution
//
// Pre-existing call sites that configured builds with the Options struct
// keep working through the Legacy adapter:
//
//	syn, _ = xcluster.Build(tree, xcluster.Legacy(opts))
//
// The estimator is safe for concurrent use; internal/service wraps it in
// a batch estimation service and cmd/xclusterd serves it over HTTP.
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// full inventory); this package re-exports the surface a downstream user
// needs: document parsing, synopsis construction, query parsing, and both
// exact and approximate selectivity evaluation.
package xcluster

import (
	"context"
	"fmt"
	"io"

	"xcluster/internal/core"
	"xcluster/internal/query"
	"xcluster/internal/vsum"
	"xcluster/internal/xmltree"
)

// Tree is a parsed XML document: a node-labeled tree whose elements carry
// typed values (numeric, string, or free text).
type Tree = xmltree.Tree

// Node is one element node of a document tree.
type Node = xmltree.Node

// Synopsis is an XCluster summary of a document.
type Synopsis = core.Synopsis

// Estimator approximates twig-query selectivities over a synopsis.
type Estimator = core.Estimator

// Query is a parsed twig query.
type Query = query.Query

// ParseXML reads an XML document, inferring value types (integers are
// numeric, short strings are STRING, longer free text is TEXT).
func ParseXML(r io.Reader) (*Tree, error) {
	return xmltree.Parse(r, xmltree.ParseOptions{})
}

// WriteXML serializes a document tree.
func WriteXML(w io.Writer, t *Tree) error {
	return xmltree.Write(w, t)
}

// ParseQuery parses a twig query in the XPath fragment described in the
// query package: child (/) and descendant (//) axes, wildcards, branch
// predicates in brackets, and the value predicates range(l,h) /
// comparison operators, contains(s), and ftcontains(t1,...,tk).
func ParseQuery(s string) (*Query, error) {
	return query.Parse(s)
}

// MustParseQuery is ParseQuery that panics on error, for tests and
// examples with known-good query literals.
func MustParseQuery(s string) *Query {
	return query.MustParse(s)
}

// Options is the legacy struct configuration of Build. New code should
// use the functional options (WithStructBudget, WithValueBudget, ...);
// existing struct-based call sites are adapted with Legacy:
//
//	xcluster.Build(tree, xcluster.Legacy(opts))
type Options struct {
	// StructBudget is the byte budget for the synopsis graph (nodes,
	// edges, edge counts). The coarsest reachable structure is one
	// cluster per (tag, value type).
	StructBudget int
	// ValueBudget is the byte budget for value summaries (histograms,
	// pruned suffix trees, end-biased term histograms).
	ValueBudget int
	// BudgetPlan, when set, supplies both budgets (and optionally a
	// per-component split and provenance) as one first-class plan; see
	// WithBudgetPlan. Raw budgets set alongside a disagreeing plan are
	// rejected.
	BudgetPlan *BudgetPlan
	// ValuePaths restricts value summarization to the given root label
	// paths (e.g. "/dblp/author/paper/year"). Nil summarizes every
	// value-bearing path.
	ValuePaths []string
	// PSTDepth bounds the substring length retained by string summaries
	// (default 4).
	PSTDepth int
	// HistBuckets caps detailed numeric histograms (default: one bucket
	// per distinct value).
	HistBuckets int
	// MaxSummaryBytes caps each detailed reference value summary
	// (default: unbounded).
	MaxSummaryBytes int
	// NumericSummary selects the NUMERIC summarization tool:
	// "histogram" (default), "wavelet", or "sample" — the three tools
	// the paper cites for numeric frequency distributions.
	NumericSummary string
	// BuildWorkers is the number of goroutines evaluating merge
	// candidates (0 = GOMAXPROCS; negative is rejected). The count
	// never changes the produced synopsis.
	BuildWorkers int
	// BuildProgress, when set, receives periodic snapshots of a running
	// build.
	BuildProgress func(BuildProgress)
	// BuildMetrics, when set, receives the build's counters.
	BuildMetrics MetricSink
	// BuildStats, when set, is filled with the work a successful build
	// performed.
	BuildStats *BuildStats
}

// numericKind maps the option string to the internal kind.
func (o Options) numericKind() (vsum.NumericKind, error) {
	switch o.NumericSummary {
	case "", "histogram":
		return vsum.KindHistogram, nil
	case "wavelet":
		return vsum.KindWavelet, nil
	case "sample":
		return vsum.KindSample, nil
	default:
		return 0, fmt.Errorf("%w: %q (want histogram, wavelet or sample)", ErrUnknownNumericSummary, o.NumericSummary)
	}
}

// BuildProgress is a point-in-time snapshot of a running build,
// delivered to the callback registered with WithBuildProgress.
type BuildProgress = core.BuildProgress

// BuildStats summarizes the work one build performed: merges applied,
// candidate evaluations, memo hit rate, per-phase wall times. Request
// it with WithBuildStats.
type BuildStats = core.BuildStats

// MetricSink receives build counters (see WithBuildMetrics). The obs
// package's registry implements it; so does any collector with Add and
// Observe. Implementations must be safe for concurrent use.
type MetricSink = core.MetricSink

// Build constructs an XCluster synopsis of the document within the given
// storage budgets: it builds the detailed reference synopsis and runs the
// two-phase XCLUSTERBUILD compression (structure-value merges, then
// value-summary compression). A positive structural budget is required
// (ErrBudgetTooSmall otherwise).
func Build(t *Tree, opts ...Option) (*Synopsis, error) {
	return BuildContext(context.Background(), t, opts...)
}

// BuildContext is Build with cancellation: XCLUSTERBUILD checks ctx at
// the phase boundaries of its merge loop and during value compression,
// so huge builds can be aborted.
func BuildContext(ctx context.Context, t *Tree, opts ...Option) (*Synopsis, error) {
	cfg := applyOptions(opts)
	ref, err := BuildReference(t, Legacy(cfg))
	if err != nil {
		return nil, err
	}
	return compressContext(ctx, ref, cfg.StructBudget, cfg.ValueBudget, cfg)
}

// BuildReference constructs the detailed reference synopsis (a refinement
// of the lossless count-stable summary with one incoming path per
// cluster). It is the input to Compress and is useful on its own as an
// exact structural summary. Budget options are ignored (the reference is
// uncompressed).
func BuildReference(t *Tree, opts ...Option) (*Synopsis, error) {
	cfg := applyOptions(opts)
	kind, err := cfg.numericKind()
	if err != nil {
		return nil, err
	}
	return core.BuildReference(t, core.ReferenceOptions{
		ValuePaths: cfg.ValuePaths,
		Detail: vsum.BuildOptions{
			Numeric:         kind,
			PSTDepth:        cfg.PSTDepth,
			HistBuckets:     cfg.HistBuckets,
			MaxSummaryBytes: cfg.MaxSummaryBytes,
		},
	})
}

// Compress runs XCLUSTERBUILD on a reference synopsis, producing a new
// synopsis within the two byte budgets. The input is not modified.
// Build-tuning options (WithBuildWorkers, WithBuildProgress,
// WithBuildMetrics, WithBuildStats) apply; budget and reference options
// are ignored here — the budgets come from the explicit arguments.
func Compress(ref *Synopsis, structBudget, valueBudget int, opts ...Option) (*Synopsis, error) {
	return compressContext(context.Background(), ref, structBudget, valueBudget, applyOptions(opts))
}

func compressContext(ctx context.Context, ref *Synopsis, structBudget, valueBudget int, cfg Options) (*Synopsis, error) {
	if p := cfg.BudgetPlan; p != nil {
		// A plan supplies the budgets the raw arguments left unset; a
		// genuine disagreement is rejected by the builder.
		norm, err := p.Normalize()
		if err != nil {
			return nil, err
		}
		if structBudget == 0 {
			structBudget = norm.StructBudget()
		}
		if valueBudget == 0 {
			valueBudget = norm.ValueBudget()
		}
	}
	if structBudget <= 0 {
		return nil, fmt.Errorf("%w: structural budget %d must be positive", ErrBudgetTooSmall, structBudget)
	}
	if valueBudget < 0 {
		return nil, fmt.Errorf("%w: value budget %d must be non-negative", ErrBudgetTooSmall, valueBudget)
	}
	return core.XClusterBuildContext(ctx, ref, core.BuildOptions{
		StructBudget: structBudget,
		ValueBudget:  valueBudget,
		Plan:         cfg.BudgetPlan,
		Workers:      cfg.BuildWorkers,
		Progress:     cfg.BuildProgress,
		Metrics:      cfg.BuildMetrics,
		Stats:        cfg.BuildStats,
	})
}

// CacheStats is a snapshot of one of an Estimator's LRU caches — the
// query-result cache (Estimator.CacheStats) or the compiled-plan cache
// (Estimator.PlanCacheStats) — with hit/miss counters and occupancy.
type CacheStats = core.CacheStats

// PreparedQuery is a twig query compiled once against an estimator's
// synopsis for repeated execution — the prepared-statement shape of the
// estimation pipeline. Obtain one with Estimator.Prepare:
//
//	pq, err := est.Prepare(q)
//	for i := 0; i < 1e6; i++ {
//	    _ = pq.Selectivity() // executes the compiled plan; no re-resolution
//	}
//
// Execution is bit-for-bit identical to Estimator.Selectivity and safe
// for concurrent use. PreparedQuery.ExplainPlan renders the compiled
// plan for inspection.
type PreparedQuery = core.PreparedQuery

// NewEstimator returns a selectivity estimator over the synopsis. The
// estimator is safe for concurrent use: descendant-closure vectors are
// precomputed here, per-call state is pooled, and estimation runs a
// canonicalize → compile → execute pipeline behind two internal LRU
// caches — query results (Estimator.CacheStats, SetCacheCapacity) and
// compiled plans (Estimator.PlanCacheStats, SetPlanCacheCapacity).
// Callers that hold a query shape and estimate it repeatedly should
// compile it once with Estimator.Prepare and execute the returned
// PreparedQuery.
func NewEstimator(s *Synopsis) *Estimator {
	return core.NewEstimator(s)
}

// AutoBuild constructs a synopsis within one unified total byte budget,
// automatically choosing the structural/value split by searching for the
// ratio that minimizes the average relative estimation error on the
// given sample workload (the extension Section 4.3 of the paper sketches
// as future work). It returns the synopsis and the structural budget the
// search selected.
func AutoBuild(t *Tree, totalBudget int, sample []*Query, opts ...Option) (*Synopsis, int, error) {
	if len(sample) == 0 {
		return nil, 0, fmt.Errorf("xcluster: AutoBuild needs a sample workload")
	}
	if totalBudget <= 0 {
		return nil, 0, fmt.Errorf("%w: total budget %d must be positive", ErrBudgetTooSmall, totalBudget)
	}
	ref, err := BuildReference(t, opts...)
	if err != nil {
		return nil, 0, err
	}
	ev := query.NewEvaluator(t)
	exact := make([]float64, len(sample))
	for i, q := range sample {
		exact[i] = ev.Selectivity(q)
	}
	score := func(s *Synopsis) float64 {
		est := core.NewEstimator(s)
		total := 0.0
		for i, q := range sample {
			denom := exact[i]
			if denom < 1 {
				denom = 1
			}
			total += absf(exact[i]-est.Selectivity(q)) / denom
		}
		return total / float64(len(sample))
	}
	cfg := applyOptions(opts)
	s, bstr, _, err := core.AutoAllocate(ref, totalBudget, score, core.BuildOptions{
		Workers:  cfg.BuildWorkers,
		Progress: cfg.BuildProgress,
		Metrics:  cfg.BuildMetrics,
		Stats:    cfg.BuildStats,
	})
	return s, bstr, err
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// WriteSynopsis serializes a synopsis (graph, dictionary, and value
// summaries) in a compact binary format, so optimizer statistics can be
// stored and shipped without the database.
func WriteSynopsis(w io.Writer, s *Synopsis) error {
	_, err := s.WriteTo(w)
	return err
}

// ReadSynopsis deserializes a synopsis written by WriteSynopsis and
// validates its invariants. Every known format version decodes (legacy
// version-1 files yield a zero Fingerprint); unknown versions fail with
// ErrSynopsisVersion.
func ReadSynopsis(r io.Reader) (*Synopsis, error) {
	return core.ReadSynopsis(r)
}

// Fingerprint is a synopsis's build identity — source-document hash,
// byte budgets, the resolved BudgetPlan, build options, generation
// counter, and build time — carried in the serialized format and
// stamped by the builders. Access it with Synopsis.Fingerprint.
type Fingerprint = core.Fingerprint

// BudgetPlan is a first-class byte-budget decision: one total budget,
// its split across the synopsis's storage components (node/edge and
// histogram/PST/term-histogram), the split's provenance (static, auto,
// or workload), and — for workload-derived plans — the fingerprint of
// the WorkloadProfile it was computed from. Supply one with
// WithBudgetPlan; PlanFromBudgets converts the legacy Bstr/Bval pair.
type BudgetPlan = core.BudgetPlan

// Provenance records how a BudgetPlan was chosen: static (configured
// budgets), auto (sample-workload search), or workload (live-profile
// planner).
type Provenance = core.Provenance

// The plan provenances.
const (
	ProvenanceStatic   = core.ProvenanceStatic
	ProvenanceAuto     = core.ProvenanceAuto
	ProvenanceWorkload = core.ProvenanceWorkload
)

// PlanFromBudgets synthesizes a static BudgetPlan from the legacy
// structural/value byte-budget pair; building under it is bit-for-bit
// identical to passing the raw budgets.
func PlanFromBudgets(structBudget, valueBudget int) BudgetPlan {
	return core.PlanFromBudgets(structBudget, valueBudget)
}

// WriteDOT renders the synopsis as a Graphviz digraph for visual
// inspection of the structure-value clustering.
func WriteDOT(w io.Writer, s *Synopsis) error {
	return s.WriteDOT(w)
}

// ExactSelectivity evaluates the query over the full document, returning
// the exact number of binding tuples. It is the ground truth against
// which estimates are compared (and is linear in the document size, which
// is exactly what a synopsis avoids).
func ExactSelectivity(t *Tree, q *Query) float64 {
	return query.NewEvaluator(t).Selectivity(q)
}

// Stats describes a synopsis for reporting.
type Stats struct {
	Nodes      int
	ValueNodes int
	Edges      int
	StructKB   float64
	ValueKB    float64
	TotalKB    float64
}

// SynopsisStats summarizes a synopsis's size and composition.
func SynopsisStats(s *Synopsis) Stats {
	return Stats{
		Nodes:      s.NumNodes(),
		ValueNodes: s.NumValueNodes(),
		Edges:      s.NumEdges(),
		StructKB:   float64(s.StructBytes()) / 1024,
		ValueKB:    float64(s.ValueBytes()) / 1024,
		TotalKB:    float64(s.TotalBytes()) / 1024,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%d clusters (%d with values), %d edges, %.1f KB structure + %.1f KB values = %.1f KB",
		s.Nodes, s.ValueNodes, s.Edges, s.StructKB, s.ValueKB, s.TotalKB)
}
