// Quickstart: parse a small XML document, build an XCluster synopsis
// under a storage budget, and estimate twig-query selectivities against
// the exact answers.
package main

import (
	"fmt"
	"log"
	"strings"

	"xcluster"
)

const doc = `
<library>
  <book>
    <title>The Art of Computer Programming</title>
    <year>1968</year>
    <summary>algorithms analysis fundamental techniques combinatorial searching sorting</summary>
    <author><name>Donald Knuth</name></author>
  </book>
  <book>
    <title>Structure and Interpretation of Computer Programs</title>
    <year>1985</year>
    <summary>programming abstraction recursion interpreters metalinguistic evaluation scheme</summary>
    <author><name>Harold Abelson</name></author>
    <author><name>Gerald Sussman</name></author>
  </book>
  <book>
    <title>Database System Concepts</title>
    <year>2001</year>
    <summary>relational model transactions storage indexing query optimization concurrency</summary>
    <author><name>Avi Silberschatz</name></author>
  </book>
  <journal>
    <title>Communications of the ACM</title>
    <year>1958</year>
  </journal>
</library>`

func main() {
	tree, err := xcluster.ParseXML(strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements\n", tree.Len())

	// Build a synopsis within ~1 KB of total storage.
	syn, err := xcluster.Build(tree,
		xcluster.WithStructBudget(512),
		xcluster.WithValueBudget(512),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopsis: %s\n\n", xcluster.SynopsisStats(syn))

	est := xcluster.NewEstimator(syn)
	for _, qs := range []string{
		"//book",
		"//book/author/name",
		"//book[year>1980]",
		"//book[title contains(Computer)]",
		"//book[summary ftcontains(programming)]",
		"//book[year>1980][summary ftcontains(query,optimization)]/title",
	} {
		q, err := xcluster.ParseQuery(qs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-60s estimate=%6.2f exact=%3.0f\n",
			qs, est.Selectivity(q), xcluster.ExactSelectivity(tree, q))
	}
}
