// Auction: heterogeneous-content estimation on the XMark-like auction
// site. The scenario sweeps the synopsis storage budget and reports, per
// predicate class (numeric range, substring, keyword), how estimation
// accuracy degrades as the summary shrinks — the accuracy/space tradeoff
// an administrator would use to size optimizer statistics.
package main

import (
	"fmt"
	"log"
	"math"

	"xcluster"
	"xcluster/internal/datagen"
)

type probe struct {
	class string
	qs    string
}

func main() {
	tree := datagen.XMark(datagen.XMarkConfig{Seed: 23, Scale: 1})
	fmt.Printf("document: %d elements\n", tree.Len())

	ref, err := xcluster.BuildReference(tree,
		xcluster.WithValuePaths(datagen.XMarkValuePaths()...),
		xcluster.WithPSTDepth(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %s\n\n", xcluster.SynopsisStats(ref))

	probes := []probe{
		{"numeric", "//open_auction[initial>100]"},
		{"numeric", "//open_auction/bidder[increase>=20]"},
		{"numeric", "//person/profile[age<30]"},
		{"string", "//item[name contains(Brass)]"},
		{"string", "//person[name contains(Smi)]"},
		{"text", "//item/description[text ftcontains(vintage)]"},
		{"text", "//open_auction/annotation/description[text ftcontains(shipping,included)]"},
	}

	// Exact answers once.
	exact := make([]float64, len(probes))
	for i, p := range probes {
		q, err := xcluster.ParseQuery(p.qs)
		if err != nil {
			log.Fatal(err)
		}
		exact[i] = xcluster.ExactSelectivity(tree, q)
	}

	fmt.Printf("%-10s %-10s", "budget", "size(KB)")
	for _, p := range probes {
		fmt.Printf(" %9s", p.class)
	}
	fmt.Println(" <- avg rel err per probe")

	for _, frac := range []float64{1.0, 0.5, 0.25, 0.1, 0.02} {
		bstr := int(frac * float64(ref.StructBytes()))
		bval := int(frac * float64(ref.ValueBytes()))
		syn, err := xcluster.Compress(ref, bstr, bval)
		if err != nil {
			log.Fatal(err)
		}
		est := xcluster.NewEstimator(syn)
		st := xcluster.SynopsisStats(syn)
		fmt.Printf("%9.0f%% %10.1f", frac*100, st.TotalKB)
		for i, p := range probes {
			q, _ := xcluster.ParseQuery(p.qs)
			e := est.Selectivity(q)
			rel := 0.0
			if exact[i] > 0 {
				rel = math.Abs(exact[i]-e) / exact[i]
			}
			fmt.Printf(" %8.1f%%", rel*100)
		}
		fmt.Println()
	}

	fmt.Println("\nexact selectivities:")
	for i, p := range probes {
		fmt.Printf("  %-65s %6.0f\n", p.qs, exact[i])
	}
}
