// Optimizer: the paper's motivating use case. A query optimizer holds an
// XCluster synopsis instead of the data and uses selectivity estimates to
// order the evaluation of twig-query branches — evaluating the most
// selective branch first minimizes intermediate results.
//
// The example builds an IMDB-like movie database, compresses it ~50x into
// a synopsis, and shows for several multi-predicate queries that the
// branch order chosen from synopsis estimates matches the order chosen
// from exact selectivities.
package main

import (
	"fmt"
	"log"
	"sort"

	"xcluster"
	"xcluster/internal/datagen"
)

func main() {
	tree := datagen.IMDB(datagen.IMDBConfig{Seed: 11, Scale: 1})
	fmt.Printf("document: %d elements\n", tree.Len())

	ref, err := xcluster.BuildReference(tree,
		xcluster.WithValuePaths(datagen.IMDBValuePaths()...),
		xcluster.WithPSTDepth(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	syn, err := xcluster.Compress(ref, ref.StructBytes()/4, ref.ValueBytes()/4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopsis: %s\n\n", xcluster.SynopsisStats(syn))
	est := xcluster.NewEstimator(syn)

	// Candidate filter branches an optimizer would need to order.
	branches := []string{
		"//movie[year>2000]",
		"//movie[year>1950]",
		"//movie[title contains(Sh)]",
		"//movie[plot ftcontains(family)]",
		"//movie[plot ftcontains(explosion,chase)]",
		"//movie[./cast/actor]",
		"//movie[./awards]",
	}

	type scored struct {
		qs        string
		estimated float64
		exact     float64
	}
	var rows []scored
	for _, qs := range branches {
		q, err := xcluster.ParseQuery(qs)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, scored{
			qs:        qs,
			estimated: est.Selectivity(q),
			exact:     xcluster.ExactSelectivity(tree, q),
		})
	}

	// Order branches by estimated selectivity (most selective first).
	byEst := append([]scored(nil), rows...)
	sort.Slice(byEst, func(i, j int) bool { return byEst[i].estimated < byEst[j].estimated })
	byExact := append([]scored(nil), rows...)
	sort.Slice(byExact, func(i, j int) bool { return byExact[i].exact < byExact[j].exact })

	fmt.Printf("%-45s %12s %12s\n", "filter branch", "estimated", "exact")
	for _, r := range byEst {
		fmt.Printf("%-45s %12.1f %12.0f\n", r.qs, r.estimated, r.exact)
	}

	agree := 0
	for i := range byEst {
		if byEst[i].qs == byExact[i].qs {
			agree++
		}
	}
	fmt.Printf("\nplan order from estimates matches exact order at %d/%d positions\n",
		agree, len(byEst))

	// Where does an estimate come from? Explain decomposes it into query
	// embeddings — the mappings of query variables onto synopsis
	// clusters whose contributions sum to the estimate.
	q, _ := xcluster.ParseQuery("//movie[year>2000]")
	fmt.Printf("\nembeddings of %s:\n", q)
	for _, em := range est.Explain(q, 5) {
		fmt.Printf("  %s\n", syn.FormatEmbedding(em))
	}
}
