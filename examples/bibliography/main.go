// Bibliography: the paper's running example. Builds the Figure 1
// bibliographic document (authors with papers and books carrying NUMERIC
// years, STRING titles, and TEXT abstracts/keywords/forewords), shows the
// Figure 3 tag-level clustering, and estimates the introduction's
// motivating query
//
//	//paper[year>2000][abstract ftcontains(synopsis,XML)]/title[contains(Tree)]
//
// over synopses of decreasing size.
package main

import (
	"fmt"
	"log"
	"strings"

	"xcluster"
)

// The Figure 1 document, scaled up: many authors so compression has
// something to do, with the same heterogeneous shape.
func makeDoc() string {
	var sb strings.Builder
	sb.WriteString("<dblp>")
	for i := 0; i < 120; i++ {
		sb.WriteString("<author>")
		fmt.Fprintf(&sb, "<name>Author %c</name>", 'A'+i%26)
		// Papers: recent ones mention synopses and XML, and carry a
		// keywords section (a structural marker). The reference
		// synopsis separates the two paper shapes into different
		// structure-value clusters, capturing the year/abstract/title
		// correlation; aggressive merging fuses them and path-value
		// independence loses it — which is what the error column shows.
		for p := 0; p < 1+i%3; p++ {
			year := 1995 + (i+p)%11
			sb.WriteString("<paper>")
			fmt.Fprintf(&sb, "<year>%d</year>", year)
			if year > 2000 {
				fmt.Fprintf(&sb, "<title>Tree Synopses Part %d</title>", p)
				sb.WriteString("<abstract>this paper presents a synopsis model for xml data trees enabling estimation</abstract>")
				sb.WriteString("<keywords>xml synopsis estimation summary</keywords>")
			} else {
				fmt.Fprintf(&sb, "<title>Relational Joins Part %d</title>", p)
				sb.WriteString("<abstract>this paper revisits classical join processing in relational database engines</abstract>")
			}
			sb.WriteString("</paper>")
		}
		if i%4 == 0 {
			sb.WriteString("<book><year>2002</year><title>Database Systems</title>" +
				"<foreword>database systems have become essential infrastructure for modern applications</foreword></book>")
		}
		sb.WriteString("</author>")
	}
	sb.WriteString("</dblp>")
	return sb.String()
}

func main() {
	tree, err := xcluster.ParseXML(strings.NewReader(makeDoc()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements\n\n", tree.Len())

	// The reference synopsis: lossless structure, detailed values.
	ref, err := xcluster.BuildReference(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference synopsis: %s\n", xcluster.SynopsisStats(ref))

	q, err := xcluster.ParseQuery("//paper[year>2000][abstract ftcontains(synopsis,xml)]/title[contains(Tree)]")
	if err != nil {
		log.Fatal(err)
	}
	exact := xcluster.ExactSelectivity(tree, q)
	fmt.Printf("\nintro query: %s\nexact selectivity: %.0f binding tuples\n\n", q, exact)

	fmt.Printf("%-22s %-12s %-10s %s\n", "budget(struct+value)", "size", "estimate", "rel.err")
	for _, budget := range []int{4096, 2048, 1024, 512, 128} {
		syn, err := xcluster.Compress(ref, budget, budget)
		if err != nil {
			log.Fatal(err)
		}
		est := xcluster.NewEstimator(syn).Selectivity(q)
		relErr := 0.0
		if exact > 0 {
			relErr = 100 * abs(exact-est) / exact
		}
		st := xcluster.SynopsisStats(syn)
		fmt.Printf("%6dB + %6dB      %7.1fKB  %9.1f  %6.1f%%\n",
			budget, budget, st.TotalKB, est, relErr)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
