// Persistence: the optimizer-statistics lifecycle. A synopsis is built
// once with an automatically chosen structural/value budget split
// (xcluster.AutoBuild searches the ratio against a sample workload, the
// extension the paper sketches in Section 4.3), serialized to disk, and
// later reloaded by a process that never sees the database — estimates
// survive the round trip bit-for-bit.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xcluster"
	"xcluster/internal/datagen"
)

func main() {
	tree := datagen.XMark(datagen.XMarkConfig{Seed: 31, Scale: 0.5})
	fmt.Printf("document: %d elements\n", tree.Len())

	// A sample workload steers the budget split.
	var sample []*xcluster.Query
	for _, qs := range []string{
		"//item[quantity>5]",
		"//person[name contains(Smi)]",
		"//open_auction/bidder[increase>=10]",
		"//item/description[text ftcontains(vintage)]",
		"//person[./profile]",
	} {
		q, err := xcluster.ParseQuery(qs)
		if err != nil {
			log.Fatal(err)
		}
		sample = append(sample, q)
	}

	total := 24 << 10 // one unified 24 KB budget
	syn, bstr, err := xcluster.AutoBuild(tree, total, sample,
		xcluster.WithValuePaths(datagen.XMarkValuePaths()...),
		xcluster.WithPSTDepth(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-allocated: %d B structure + %d B values of %d B total\n",
		bstr, total-bstr, total)
	fmt.Printf("synopsis: %s\n", xcluster.SynopsisStats(syn))

	// Persist.
	path := filepath.Join(os.TempDir(), "xmark-synopsis.bin")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := xcluster.WriteSynopsis(f, syn); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("serialized to %s (%d bytes)\n\n", path, fi.Size())

	// A different "process": reload and estimate without the document.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := xcluster.ReadSynopsis(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}

	est := xcluster.NewEstimator(loaded)
	orig := xcluster.NewEstimator(syn)
	fmt.Printf("%-55s %10s %10s %8s\n", "query", "loaded", "original", "exact")
	for _, q := range sample {
		var a, c bytes.Buffer
		fmt.Fprintf(&a, "%.2f", est.Selectivity(q))
		fmt.Fprintf(&c, "%.2f", orig.Selectivity(q))
		if a.String() != c.String() {
			log.Fatalf("estimate diverged after reload: %s vs %s", a.String(), c.String())
		}
		fmt.Printf("%-55s %10s %10s %8.0f\n", q, a.String(), c.String(),
			xcluster.ExactSelectivity(tree, q))
	}
	fmt.Println("\nall estimates identical across the serialization round trip")
	os.Remove(path)
}
