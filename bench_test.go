// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus micro-benchmarks of the pipeline stages.
// Each experiment benchmark reports its headline numbers as custom
// metrics so `go test -bench` output documents the reproduced shapes:
//
//	go test -bench=. -benchmem
//
// The experiments run at a reduced scale (the bench fixtures are ~20% of
// the default harness scale) so the full suite completes in minutes; use
// cmd/xclusterbench for full-scale runs.
package xcluster_test

import (
	"sync"
	"testing"

	"xcluster/internal/core"
	"xcluster/internal/harness"
	"xcluster/internal/query"
	"xcluster/internal/workload"
)

// benchCfg is the shared experiment configuration for benchmarks. Scale 1
// (the harness default, ~15k-element documents) is the smallest scale at
// which the per-dataset budget balance reproduces the paper's shapes.
var benchCfg = harness.Config{Scale: 1, Seed: 42, PerClass: 30, Points: 4}

var (
	fixtureOnce sync.Once
	fixtures    map[string]*harness.Dataset
)

// datasets materializes the two benchmark datasets once per process.
func datasets(b *testing.B) map[string]*harness.Dataset {
	b.Helper()
	fixtureOnce.Do(func() {
		fixtures = make(map[string]*harness.Dataset)
		for _, name := range harness.DatasetNames() {
			d, err := harness.NewDataset(name, benchCfg)
			if err != nil {
				panic(err)
			}
			fixtures[name] = d
		}
	})
	return fixtures
}

// BenchmarkTable1DatasetCharacteristics regenerates Table 1: data set and
// reference-synopsis characteristics.
func BenchmarkTable1DatasetCharacteristics(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	var rows []harness.Table1Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range harness.DatasetNames() {
			rows = append(rows, harness.Table1(ds[name]))
		}
	}
	b.ReportMetric(float64(rows[0].Elements), "imdb-elements")
	b.ReportMetric(rows[0].RefKB, "imdb-ref-KB")
	b.ReportMetric(float64(rows[1].Elements), "xmark-elements")
	b.ReportMetric(rows[1].RefKB, "xmark-ref-KB")
}

// BenchmarkTable2WorkloadCharacteristics regenerates Table 2: average
// result sizes of the positive workloads.
func BenchmarkTable2WorkloadCharacteristics(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	var rows []harness.Table2Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range harness.DatasetNames() {
			rows = append(rows, harness.Table2(ds[name]))
		}
	}
	b.ReportMetric(rows[0].AvgStruct, "imdb-avg-struct")
	b.ReportMetric(rows[0].AvgPred, "imdb-avg-pred")
	b.ReportMetric(rows[1].AvgStruct, "xmark-avg-struct")
	b.ReportMetric(rows[1].AvgPred, "xmark-avg-pred")
}

// figure8Bench runs one panel of Figure 8 and reports the end-point
// errors: the coarsest (tag-level) and largest synopses of the sweep.
func figure8Bench(b *testing.B, name string) {
	d := datasets(b)[name]
	b.ResetTimer()
	var rows []harness.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Figure8(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(first.Overall*100, "overall%-min-budget")
	b.ReportMetric(last.Overall*100, "overall%-max-budget")
	b.ReportMetric(last.Numeric*100, "numeric%-max-budget")
	b.ReportMetric(last.String*100, "string%-max-budget")
	b.ReportMetric(last.Text*100, "text%-max-budget")
	b.ReportMetric(last.Struct*100, "struct%-max-budget")
}

// BenchmarkFigure8aIMDBError regenerates Figure 8(a): estimation error
// versus synopsis size on IMDB.
func BenchmarkFigure8aIMDBError(b *testing.B) { figure8Bench(b, "IMDB") }

// BenchmarkFigure8bXMarkError regenerates Figure 8(b): estimation error
// versus synopsis size on XMark.
func BenchmarkFigure8bXMarkError(b *testing.B) { figure8Bench(b, "XMark") }

// BenchmarkFigure9LowCountAbsoluteError regenerates Figure 9: average
// absolute error for low-count queries at the largest synopsis.
func BenchmarkFigure9LowCountAbsoluteError(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	var rows []harness.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range harness.DatasetNames() {
			r, err := harness.Figure9(ds[name], benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r...)
		}
	}
	for _, r := range rows {
		if r.N > 0 {
			b.ReportMetric(r.AbsErr, r.Dataset+"-"+r.Class.String()+"-abs")
		}
	}
}

// BenchmarkNegativeWorkload verifies the Section 6.1 prose claim: zero
// estimates for zero-selectivity queries at the smallest budget.
func BenchmarkNegativeWorkload(b *testing.B) {
	ds := datasets(b)
	b.ResetTimer()
	var rows []harness.NegativeRow
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range harness.DatasetNames() {
			r, err := harness.NegativeExperiment(ds[name], benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r...)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if r.MaxEst > worst {
			worst = r.MaxEst
		}
	}
	b.ReportMetric(worst, "worst-negative-estimate")
}

// ---- ablations ----

// BenchmarkAblationTermHist compares the end-biased term histogram
// against a conventional range-bucket histogram on term vectors (the
// Section 3 design argument).
func BenchmarkAblationTermHist(b *testing.B) {
	d := datasets(b)["IMDB"]
	b.ResetTimer()
	var rows []harness.AblationTermHistRow
	for i := 0; i < b.N; i++ {
		rows = harness.AblationTermHist(d, []int{1024, 128})
	}
	b.ReportMetric(rows[1].EndBiasedErr, "end-biased-err@128B")
	b.ReportMetric(rows[1].ConvErr, "conventional-err@128B")
	b.ReportMetric(rows[1].EndBiasedZero, "end-biased-absent@128B")
	b.ReportMetric(rows[1].ConvZero, "conventional-absent@128B")
}

// BenchmarkAblationPSTPruning compares pruning-error leaf ordering with
// naive lowest-count ordering (the st_cmprs design argument).
func BenchmarkAblationPSTPruning(b *testing.B) {
	d := datasets(b)["IMDB"]
	b.ResetTimer()
	var rows []harness.AblationPSTRow
	for i := 0; i < b.N; i++ {
		rows = harness.AblationPSTPruning(d, []float64{0.75}, 7)
	}
	b.ReportMetric(rows[0].ByErrorErr, "pruning-error-order")
	b.ReportMetric(rows[0].ByCountErr, "lowest-count-order")
}

// BenchmarkAblationBuildPolicy compares the full construction algorithm
// with the no-level-heuristic and random-merge baselines.
func BenchmarkAblationBuildPolicy(b *testing.B) {
	d := datasets(b)["IMDB"]
	b.ResetTimer()
	var rows []harness.AblationBuildRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.AblationBuild(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := map[string]string{
			"localized Δ + levels":       "full%",
			"localized Δ, no levels":     "no-levels%",
			"global (TreeSketch) metric": "global%",
			"random merges":              "random%",
		}[r.Policy]
		b.ReportMetric(r.Overall*100, name)
	}
}

// BenchmarkAblationNumericSummaries compares histogram, wavelet and
// sample NUMERIC summaries at equal budgets on range estimation (the
// paper's Section 3 note that all three tools apply).
func BenchmarkAblationNumericSummaries(b *testing.B) {
	d := datasets(b)["IMDB"]
	b.ResetTimer()
	var rows []harness.AblationNumericRow
	for i := 0; i < b.N; i++ {
		rows = harness.AblationNumericSummaries(d, []int{128}, 7)
	}
	b.ReportMetric(rows[0].Histogram, "histogram-err@128B")
	b.ReportMetric(rows[0].Wavelet, "wavelet-err@128B")
	b.ReportMetric(rows[0].Sample, "sample-err@128B")
}

// BenchmarkAutoBudgetAllocation runs the Section 4.3 future-work
// extension: the unified-budget split search versus fixed splits, scored
// on held-out queries.
func BenchmarkAutoBudgetAllocation(b *testing.B) {
	d := datasets(b)["IMDB"]
	b.ResetTimer()
	var rows []harness.AutoBudgetRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.AutoBudgetExperiment(d, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Split == "auto (sample-guided)" {
			b.ReportMetric(r.Overall*100, "auto-split%")
			b.ReportMetric(float64(r.Bstr), "auto-bstr-bytes")
		}
	}
}

// ---- micro-benchmarks ----

// BenchmarkBuildReference measures reference-synopsis construction.
func BenchmarkBuildReference(b *testing.B) {
	d := datasets(b)["IMDB"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := core.BuildReference(d.Tree, core.ReferenceOptions{ValuePaths: d.ValuePaths})
		if err != nil {
			b.Fatal(err)
		}
		_ = ref
	}
}

// BenchmarkXClusterBuild measures the two-phase compression to a mid
// budget.
func BenchmarkXClusterBuild(b *testing.B) {
	d := datasets(b)["IMDB"]
	bstr := d.Ref.StructBytes() / 20
	bval := benchCfg.ValueBudget(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.XClusterBuild(d.Ref, core.BuildOptions{StructBudget: bstr, ValueBudget: bval})
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

// benchSynopsis builds the mid-budget IMDB synopsis the estimation
// benchmarks share.
func benchSynopsis(b *testing.B) (*core.Synopsis, *harness.Dataset) {
	b.Helper()
	d := datasets(b)["IMDB"]
	s, err := benchCfg.BuildAt(d, d.Ref.StructBytes()/20)
	if err != nil {
		b.Fatal(err)
	}
	return s, d
}

// BenchmarkEstimate measures per-query estimation over a compressed
// synopsis (the operation a query optimizer issues). The workload
// repeats after the first pass, so with the default result cache this is
// dominated by cache hits; see BenchmarkEstimateCold for the uncached
// rate.
func BenchmarkEstimate(b *testing.B) {
	s, d := benchSynopsis(b)
	est := core.NewEstimator(s)
	qs := d.Workload.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Selectivity(qs[i%len(qs)].Q)
	}
}

// BenchmarkEstimateCold measures estimation with both caches disabled:
// every call pays the full compile + execute cost, the baseline the
// prepared path is measured against.
func BenchmarkEstimateCold(b *testing.B) {
	s, d := benchSynopsis(b)
	est := core.NewEstimator(s)
	est.SetCacheCapacity(0)
	est.SetPlanCacheCapacity(0)
	qs := d.Workload.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Selectivity(qs[i%len(qs)].Q)
	}
}

// BenchmarkPrepared measures executing already-compiled plans: the
// workload is Prepared once outside the timer, so each operation is the
// pure execute stage of the canonicalize → compile → execute pipeline.
// Compare ns/op with BenchmarkEstimateCold for the compilation ratio.
func BenchmarkPrepared(b *testing.B) {
	s, d := benchSynopsis(b)
	est := core.NewEstimator(s)
	est.SetCacheCapacity(0)
	qs := d.Workload.Queries
	prepared := make([]*core.PreparedQuery, len(qs))
	for i := range qs {
		pq, err := est.Prepare(qs[i].Q)
		if err != nil {
			b.Fatal(err)
		}
		prepared[i] = pq
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prepared[i%len(prepared)].Selectivity()
	}
}

// BenchmarkEstimateCacheHit measures the pure cache-hit path (one query,
// already resident).
func BenchmarkEstimateCacheHit(b *testing.B) {
	s, d := benchSynopsis(b)
	est := core.NewEstimator(s)
	q := d.Workload.Queries[0].Q
	est.Selectivity(q) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Selectivity(q)
	}
}

// BenchmarkEstimateParallel measures aggregate throughput of one shared
// estimator under GOMAXPROCS concurrent clients, cache disabled so every
// operation does real work (compare ns/op with BenchmarkEstimateCold for
// the scaling factor).
func BenchmarkEstimateParallel(b *testing.B) {
	s, d := benchSynopsis(b)
	est := core.NewEstimator(s)
	est.SetCacheCapacity(0)
	est.SetPlanCacheCapacity(0)
	qs := d.Workload.Queries
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			est.Selectivity(qs[i%len(qs)].Q)
			i++
		}
	})
}

// BenchmarkExactEvaluation measures exact binding-tuple counting over the
// document — the cost a synopsis avoids.
func BenchmarkExactEvaluation(b *testing.B) {
	d := datasets(b)["IMDB"]
	ev := query.NewEvaluator(d.Tree)
	qs := d.Workload.Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Selectivity(qs[i%len(qs)].Q)
	}
}

// BenchmarkWorkloadGeneration measures workload sampling + exact scoring.
func BenchmarkWorkloadGeneration(b *testing.B) {
	d := datasets(b)["XMark"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := workload.Generate(d.Tree, workload.Options{
			Seed: int64(i), PerClass: 5, ValuePaths: d.ValuePaths,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = w
	}
}
