package catalog

import (
	"context"
	"errors"
	"testing"
	"time"

	"xcluster/internal/query"
	"xcluster/internal/service"
)

// scatterFixture attaches three collections for one tenant and returns
// the catalog plus the shards by collection.
func scatterFixture(t *testing.T) (*Catalog, map[string]*Shard) {
	t.Helper()
	c := newTestCatalog(t, Config{},
		spec("acme", "docs"),
		spec("acme", "mail"),
		spec("acme", "wiki"),
	)
	shards := make(map[string]*Shard)
	for _, coll := range []string{"docs", "mail", "wiki"} {
		sh, err := c.Shard("acme", coll)
		if err != nil {
			t.Fatal(err)
		}
		shards[coll] = sh
	}
	return c, shards
}

func TestScatterAggregatesAcrossShards(t *testing.T) {
	c, shards := scatterFixture(t)
	qs := parseWorkload(t)

	// Sum in sorted collection order — the same order the gather uses —
	// so the float comparison below can demand bit equality.
	want := make([]float64, len(qs))
	for _, coll := range []string{"docs", "mail", "wiki"} {
		sels, err := shards[coll].Service().EstimateBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sels {
			want[i] += s
		}
	}

	res, err := c.ScatterEstimate(context.Background(), "acme", qs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("scatter incomplete: %+v", res.Errors)
	}
	if len(res.Collections) != 3 {
		t.Fatalf("collections = %v, want all 3", res.Collections)
	}
	for i := range qs {
		if res.Selectivities[i] != want[i] {
			t.Fatalf("query %d (%s): scatter %v != sum of shards %v",
				i, testWorkload[i], res.Selectivities[i], want[i])
		}
	}
	if got := c.scatterTotal["ok"].Value(); got != 1 {
		t.Fatalf("ok counter = %d, want 1", got)
	}
}

func TestScatterUnknownTenant(t *testing.T) {
	c, _ := scatterFixture(t)
	if _, err := c.ScatterEstimate(context.Background(), "nobody", parseWorkload(t)); !errors.Is(err, service.ErrUnknownTenant) {
		t.Fatalf("scatter for unknown tenant = %v, want ErrUnknownTenant", err)
	}
}

// TestScatterPartialFailure injects a hard failure into one shard and
// checks the partial-failure contract: the aggregate covers exactly the
// healthy shards, the failed one is reported with its reason, and the
// call as a whole succeeds.
func TestScatterPartialFailure(t *testing.T) {
	c, shards := scatterFixture(t)
	qs := parseWorkload(t)
	shards["mail"].estimateBatch = func(ctx context.Context, qs []*query.Query) ([]float64, error) {
		return nil, errors.New("injected shard fault")
	}

	want := make([]float64, len(qs))
	for _, coll := range []string{"docs", "wiki"} {
		sels, err := shards[coll].Service().EstimateBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sels {
			want[i] += s
		}
	}

	res, err := c.ScatterEstimate(context.Background(), "acme", qs)
	if err != nil {
		t.Fatalf("partial failure must not fail the call: %v", err)
	}
	if res.Complete() {
		t.Fatal("result claims complete coverage despite injected fault")
	}
	if len(res.Collections) != 2 || res.Collections[0] != "docs" || res.Collections[1] != "wiki" {
		t.Fatalf("collections = %v, want [docs wiki]", res.Collections)
	}
	if len(res.Errors) != 1 || res.Errors[0].Collection != "mail" || res.Errors[0].Reason != ReasonError {
		t.Fatalf("errors = %+v, want one 'error' entry for mail", res.Errors)
	}
	for i := range qs {
		if res.Selectivities[i] != want[i] {
			t.Fatalf("query %d: partial aggregate %v != sum of healthy shards %v",
				i, res.Selectivities[i], want[i])
		}
	}
	if got := c.scatterTotal["partial"].Value(); got != 1 {
		t.Fatalf("partial counter = %d, want 1", got)
	}
	if got := c.shardErrTotal[ReasonError].Value(); got != 1 {
		t.Fatalf("shard error counter = %d, want 1", got)
	}
}

// TestScatterDeadline injects a shard that never answers and checks the
// gather is deadline-bounded: the healthy shards' partial aggregate
// comes back as soon as the context expires, with the stuck shard
// reported as a deadline failure.
func TestScatterDeadline(t *testing.T) {
	c, shards := scatterFixture(t)
	qs := parseWorkload(t)
	release := make(chan struct{})
	defer close(release)
	shards["wiki"].estimateBatch = func(ctx context.Context, qs []*query.Query) ([]float64, error) {
		// Simulate a stuck shard: hold until the test ends, well past
		// the scatter deadline.
		<-release
		return nil, context.Canceled
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := c.ScatterEstimate(ctx, "acme", qs)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline partial failure must not fail the call: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("scatter took %v: gather not deadline-bounded", elapsed)
	}
	if res.Complete() {
		t.Fatal("result claims complete coverage despite stuck shard")
	}
	if len(res.Collections) != 2 {
		t.Fatalf("collections = %v, want the two healthy ones", res.Collections)
	}
	if len(res.Errors) != 1 || res.Errors[0].Collection != "wiki" || res.Errors[0].Reason != ReasonDeadline {
		t.Fatalf("errors = %+v, want one deadline entry for wiki", res.Errors)
	}
}

func TestScatterDrainingShardReported(t *testing.T) {
	c, shards := scatterFixture(t)
	shards["docs"].draining.Store(true)
	defer shards["docs"].draining.Store(false)

	res, err := c.ScatterEstimate(context.Background(), "acme", parseWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 || res.Errors[0].Collection != "docs" || res.Errors[0].Reason != ReasonDraining {
		t.Fatalf("errors = %+v, want one draining entry for docs", res.Errors)
	}
	if len(res.Collections) != 2 {
		t.Fatalf("collections = %v, want the two serving ones", res.Collections)
	}
}

func TestScatterAllShardsFailed(t *testing.T) {
	c, shards := scatterFixture(t)
	for _, sh := range shards {
		sh.estimateBatch = func(ctx context.Context, qs []*query.Query) ([]float64, error) {
			return nil, errors.New("injected total outage")
		}
	}
	res, err := c.ScatterEstimate(context.Background(), "acme", parseWorkload(t))
	if err == nil {
		t.Fatal("scatter with zero answering shards must fail the call")
	}
	if res == nil || len(res.Errors) != 3 {
		t.Fatalf("result = %+v, want all three shards in Errors", res)
	}
	if got := c.scatterTotal["failed"].Value(); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
}
