package catalog

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xcluster/internal/core"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// testDoc generates a small document whose content varies with seed, so
// different shards serve genuinely different corpora.
func testDoc(seed int) string {
	var b strings.Builder
	b.WriteString("<library>")
	for i := 0; i < 60; i++ {
		j := i + seed*13
		fmt.Fprintf(&b, "<book><title>Title %d</title><year>%d</year><pages>%d</pages>",
			j, 1950+j%60, 100+(7*j)%400)
		if j%3 == 0 {
			fmt.Fprintf(&b, "<summary>systems design analysis volume %d concurrency</summary>", j)
		}
		b.WriteString("</book>")
		if j%4 == 0 {
			fmt.Fprintf(&b, "<journal><title>Journal %d</title><year>%d</year></journal>", j, 1960+j%50)
		}
	}
	b.WriteString("</library>")
	return b.String()
}

var testWorkload = []string{
	"//book",
	"//book/title",
	"//book[year>1990]",
	"//book[year>1990]/title",
	"//book[pages>=300]",
	"//book[year>1980][pages<250]",
	"//journal[year<2000]/title",
}

// testSeed derives a deterministic per-spec document seed so the same
// spec always loads the same corpus.
func testSeed(spec ShardSpec) int {
	seed := 0
	for _, c := range []byte(spec.Tenant + "/" + spec.Collection + "/" + spec.Synopsis) {
		seed = seed*31 + int(c)
	}
	if seed < 0 {
		seed = -seed
	}
	return seed % 97
}

// testLoader builds a fresh synopsis (and tree, when the spec declares
// a document) for each spec, varying the corpus by spec identity.
func testLoader(t testing.TB) Loader {
	return func(ctx context.Context, spec ShardSpec) (*core.Synopsis, *xmltree.Tree, error) {
		tree, err := xmltree.Parse(strings.NewReader(testDoc(testSeed(spec))), xmltree.ParseOptions{})
		if err != nil {
			return nil, nil, err
		}
		ref, err := core.BuildReference(tree, core.ReferenceOptions{})
		if err != nil {
			return nil, nil, err
		}
		syn, err := core.XClusterBuild(ref, core.BuildOptions{StructBudget: 512, ValueBudget: 512})
		if err != nil {
			return nil, nil, err
		}
		if spec.Document == "" {
			tree = nil
		}
		return syn, tree, nil
	}
}

// newTestCatalog builds a catalog with the test loader and attaches the
// given specs.
func newTestCatalog(t *testing.T, cfg Config, specs ...ShardSpec) *Catalog {
	t.Helper()
	if cfg.Loader == nil {
		cfg.Loader = testLoader(t)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.DrainAll(context.Background()) //nolint:errcheck // best-effort test cleanup
	})
	for _, spec := range specs {
		if _, err := c.Attach(context.Background(), spec); err != nil {
			t.Fatalf("attach %s: %v", spec.Key(), err)
		}
	}
	return c
}

// spec returns a minimal valid ShardSpec.
func spec(tenant, collection string) ShardSpec {
	return ShardSpec{Tenant: tenant, Collection: collection, Synopsis: "mem:" + tenant + "/" + collection}
}

// parseWorkload parses the shared test workload.
func parseWorkload(t *testing.T) []*query.Query {
	t.Helper()
	qs := make([]*query.Query, len(testWorkload))
	for i, s := range testWorkload {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		qs[i] = q
	}
	return qs
}
