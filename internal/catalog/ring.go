package catalog

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultRingReplicas is the number of virtual nodes each member
// contributes to a Ring. More replicas smooth the key distribution at
// the cost of a larger (still tiny) sorted point array.
const DefaultRingReplicas = 128

// Ring is a consistent-hash ring over member names. Adding or removing
// a member moves only the keys that land on that member's arcs — on
// average 1/n of the keyspace — so attaching a shard to a collection
// re-homes a bounded slice of the corpus instead of reshuffling every
// document. Ring is not safe for concurrent mutation; the catalog
// guards it with its own lock and hands out copies of lookups only.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]struct{}
}

// ringPoint is one virtual node: a position on the ring and the member
// that owns the arc ending there.
type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (DefaultRingReplicas when <= 0).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]struct{})}
}

// ringHash positions a string on the ring: FNV-1a (64-bit) followed by
// a murmur-style finalizer. Raw FNV-1a has weak avalanche for trailing
// bytes — sequential keys like "doc-000041" land in one tight band and
// would all route to the same member — so the finalizer mixes every
// input bit across the whole word before the ring lookup.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash:  ringHash(member + "#" + strconv.Itoa(i)),
			owner: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(member string) {
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Locate returns the member owning key: the owner of the first virtual
// node at or clockwise of the key's hash. ok is false on an empty ring.
func (r *Ring) Locate(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the lowest point owns the top arc
	}
	return r.points[i].owner, true
}
