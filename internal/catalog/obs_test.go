package catalog

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xcluster/internal/obs"
	"xcluster/internal/profile"
)

// postJSONWithID is postJSON plus a client X-Request-ID header.
func postJSONWithID(t *testing.T, h http.Handler, path, body, id string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("X-Request-ID", id)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code < 300 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", path, err, w.Body.String())
		}
	}
	return w
}

// TestCatalogReadyz walks the readiness lifecycle: 503 before the first
// shard, 200 while serving, 503 again once shutdown begins (while
// /healthz stays 200 throughout).
func TestCatalogReadyz(t *testing.T) {
	c := newTestCatalog(t, Config{})
	h := c.Handler()

	if w := getPath(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable ||
		!strings.Contains(w.Body.String(), "no shards") {
		t.Fatalf("empty catalog /readyz = %d %q, want 503 no shards", w.Code, w.Body.String())
	}
	if _, err := c.Attach(context.Background(), spec("acme", "docs")); err != nil {
		t.Fatal(err)
	}
	if w := getPath(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("serving /readyz = %d %q, want 200", w.Code, w.Body.String())
	}
	c.BeginShutdown()
	if w := getPath(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable ||
		!strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("shutdown /readyz = %d %q, want 503 draining", w.Code, w.Body.String())
	}
	if w := getPath(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("shutdown /healthz = %d, want 200", w.Code)
	}
}

// TestCatalogScatterTrace is the end-to-end correlation check: one
// scattered estimate produces one trace tree whose per-shard child
// spans all carry the client's request ID and their shard identity.
func TestCatalogScatterTrace(t *testing.T) {
	_, h := httpFixture(t)

	w := postJSONWithID(t, h, "/estimate", `{"tenant":"acme","queries":["//book"]}`, "abc", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("scatter status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Request-ID"); got != "abc" {
		t.Fatalf("echoed X-Request-ID = %q, want abc", got)
	}

	w = getPath(t, h, "/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("traces status %d", w.Code)
	}
	var tr struct {
		Families []obs.FamilySnapshot `json:"families"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	var fam *obs.FamilySnapshot
	for i := range tr.Families {
		if tr.Families[i].Family == "POST /estimate" {
			fam = &tr.Families[i]
		}
	}
	if fam == nil || len(fam.Recent) == 0 {
		t.Fatalf("families = %+v, want a recorded POST /estimate tree", tr.Families)
	}
	root := fam.Recent[0]
	if root.RequestID != "abc" {
		t.Fatalf("root request ID = %q, want abc", root.RequestID)
	}
	if root.Tenant != "acme" {
		t.Fatalf("root tenant = %q, want acme (scatter target)", root.Tenant)
	}
	// One child per scattered collection, each labeled and correlated.
	var shardChildren int
	seen := map[string]bool{}
	for _, sp := range root.Spans {
		if sp.Name != "shard" {
			continue
		}
		shardChildren++
		if sp.RequestID != "abc" {
			t.Fatalf("shard span request ID = %q, want inherited abc", sp.RequestID)
		}
		if sp.Tenant != "acme" || sp.Collection == "" {
			t.Fatalf("shard span identity = %q/%q, want acme/<collection>", sp.Tenant, sp.Collection)
		}
		seen[sp.Collection] = true
	}
	if shardChildren != 2 || !seen["docs"] || !seen["mail"] {
		t.Fatalf("shard children = %d over %v, want 2 covering docs and mail", shardChildren, seen)
	}
}

// TestCatalogErrorEnvelopeRequestID: catalog error envelopes carry the
// correlation ID like the single-tenant service's do.
func TestCatalogErrorEnvelopeRequestID(t *testing.T) {
	_, h := httpFixture(t)
	w := postJSONWithID(t, h, "/estimate", `{"tenant":"nobody","collection":"docs","queries":["//a"]}`, "req-404", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("%v in %s", err, w.Body.String())
	}
	if body["error"] == "" || body["request_id"] != "req-404" {
		t.Fatalf("error envelope = %v, want error text and request_id req-404", body)
	}
}

// TestCatalogSLO: manifest objectives enable per-shard tracking, the
// /debug/slo rollup lists every shard (objective-less ones as
// disabled), and the scrape carries tenant/collection-labeled
// xcluster_slo_* series.
func TestCatalogSLO(t *testing.T) {
	withSLO := spec("acme", "mail")
	withSLO.SLOAvailability = 0.999
	withSLO.SLOLatencyMS = 5000
	c := newTestCatalog(t, Config{
		DefaultKey:       Key{Tenant: "acme", Collection: "docs"},
		UnlabeledDefault: true,
	},
		spec("acme", "docs"),
		withSLO,
	)
	h := c.Handler()
	postJSON(t, h, "/estimate", `{"tenant":"acme","collection":"mail","queries":["//book"]}`, nil)

	w := getPath(t, h, "/debug/slo")
	if w.Code != http.StatusOK {
		t.Fatalf("slo status %d", w.Code)
	}
	var resp SLOAllResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("shards = %d, want 2 (disabled ones listed too)", len(resp.Shards))
	}
	byKey := map[string]ShardSLO{}
	for _, s := range resp.Shards {
		byKey[s.Tenant+"/"+s.Collection] = s
	}
	if s := byKey["acme/docs"]; s.Enabled {
		t.Fatalf("objective-less shard reports enabled: %+v", s)
	}
	mail := byKey["acme/mail"]
	if !mail.Enabled || mail.AvailabilityObjective != 0.999 || mail.LatencyObjective != "5s" {
		t.Fatalf("mail SLO = %+v, want manifest objectives", mail)
	}
	if len(mail.Windows) != 2 || mail.Windows[0].Total != 1 {
		t.Fatalf("mail windows = %+v, want the one request counted", mail.Windows)
	}

	w = getPath(t, h, "/metrics")
	body := w.Body.String()
	for _, want := range []string{
		`xcluster_slo_availability_objective{tenant="acme",collection="mail"} 0.999`,
		`xcluster_slo_window_requests{tenant="acme",collection="mail",window="5m"} 1`,
		`xcluster_slo_burn_rate{tenant="acme",collection="mail",slo="availability",window="5m"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The objective-less shard emits no SLO series at all.
	if strings.Contains(body, `xcluster_slo_availability_objective{tenant="acme",collection="docs"}`) {
		t.Error("objective-less shard leaked SLO series into the scrape")
	}
	// Runtime telemetry is process-global: present once, unlabeled.
	if !strings.Contains(body, "xcluster_go_goroutines ") {
		t.Error("metrics missing unlabeled xcluster_go_goroutines")
	}
	if strings.Contains(body, `xcluster_go_goroutines{`) {
		t.Error("runtime series acquired shard labels; they must stay process-global")
	}
}

// TestManifestSLOValidation: bad SLO fields are rejected at parse time.
func TestManifestSLOValidation(t *testing.T) {
	bad := []string{
		`{"shards":[{"tenant":"a","collection":"b","synopsis":"s","slo_availability":1.5}]}`,
		`{"shards":[{"tenant":"a","collection":"b","synopsis":"s","slo_latency_ms":-10}]}`,
		`{"shards":[{"tenant":"a","collection":"b","synopsis":"s","slo_latency_target":0.9}]}`,
	}
	for _, m := range bad {
		if _, err := ParseManifest([]byte(m)); err == nil {
			t.Errorf("manifest %s parsed, want SLO validation error", m)
		}
	}
	good := `{"shards":[{"tenant":"a","collection":"b","synopsis":"s","slo_availability":0.99,"slo_latency_ms":250,"slo_latency_target":0.95}]}`
	man, err := ParseManifest([]byte(good))
	if err != nil {
		t.Fatalf("valid SLO manifest rejected: %v", err)
	}
	cfg := man.Shards[0].SLO()
	if !cfg.Enabled() || cfg.Availability != 0.99 || cfg.LatencyTarget != 0.95 {
		t.Fatalf("parsed SLO config = %+v", cfg)
	}
}

// TestCatalogWorkload: the merged GET /debug/workload lists every
// shard's profile with tenant/collection labels, the per-shard export
// delegates, and workload series reach the merged scrape labeled.
func TestCatalogWorkload(t *testing.T) {
	c, h := httpFixture(t)
	_ = c
	postJSON(t, h, "/estimate", `{"tenant":"acme","collection":"docs","queries":["//book","//book[year>1990]"]}`, nil)
	postJSON(t, h, "/estimate", `{"tenant":"acme","collection":"mail","queries":["//book/title"]}`, nil)

	w := getPath(t, h, "/debug/workload")
	if w.Code != http.StatusOK {
		t.Fatalf("workload status %d", w.Code)
	}
	var resp WorkloadAllResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(resp.Shards))
	}
	byKey := map[string]ShardWorkload{}
	for _, s := range resp.Shards {
		byKey[s.Tenant+"/"+s.Collection] = s
	}
	docs := byKey["acme/docs"]
	if !docs.Enabled || docs.TotalRequests != 2 || len(docs.Shapes) != 2 {
		t.Fatalf("acme/docs workload = enabled=%v total=%d shapes=%d, want 2 requests / 2 shapes",
			docs.Enabled, docs.TotalRequests, len(docs.Shapes))
	}
	if docs.Coverage.TotalBudgetBytes == 0 || len(docs.Coverage.Rows) == 0 {
		t.Fatalf("acme/docs coverage = %+v, want populated", docs.Coverage)
	}
	if mail := byKey["acme/mail"]; mail.TotalRequests != 1 {
		t.Fatalf("acme/mail total = %d, want 1", mail.TotalRequests)
	}
	if idle := byKey["globex/docs"]; !idle.Enabled || idle.TotalRequests != 0 {
		t.Fatalf("globex/docs = enabled=%v total=%d, want enabled idle shard", idle.Enabled, idle.TotalRequests)
	}

	// ?limit caps each shard's shape list.
	w = getPath(t, h, "/debug/workload?limit=1")
	var capped WorkloadAllResponse
	if err := json.Unmarshal(w.Body.Bytes(), &capped); err != nil {
		t.Fatal(err)
	}
	for _, s := range capped.Shards {
		if len(s.Shapes) > 1 {
			t.Fatalf("%s/%s shapes = %d after limit=1", s.Tenant, s.Collection, len(s.Shapes))
		}
	}
	if w = getPath(t, h, "/debug/workload?limit=x"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", w.Code)
	}

	// The export endpoint delegates per shard and yields the addressed
	// shard's artifact.
	w = getPath(t, h, "/admin/workload/export?tenant=acme&collection=docs")
	if w.Code != http.StatusOK {
		t.Fatalf("export status %d: %s", w.Code, w.Body.String())
	}
	exported, err := profile.Parse(w.Body.Bytes())
	if err != nil {
		t.Fatalf("delegated export does not parse: %v", err)
	}
	if exported.TotalRequests != 2 {
		t.Fatalf("exported total = %d, want acme/docs's 2", exported.TotalRequests)
	}

	// Workload series arrive in the merged scrape with shard labels;
	// the default shard (UnlabeledDefault) scrapes unlabeled, so a
	// converted single-tenant deployment's dashboards keep working.
	body := getPath(t, h, "/metrics").Body.String()
	for _, want := range []string{
		`xcluster_workload_requests_total{class="struct"} 1`,
		`xcluster_workload_requests_total{class="range"} 1`,
		`xcluster_workload_requests_total{tenant="acme",collection="mail",class="struct"} 1`,
		`xcluster_workload_shapes_tracked 2`,
		`xcluster_workload_shapes_tracked{tenant="acme",collection="mail"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
