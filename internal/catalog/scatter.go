package catalog

import (
	"context"
	"errors"
	"fmt"

	"xcluster/internal/obs"
	"xcluster/internal/query"
	"xcluster/internal/service"
)

// DefaultScatterWorkers bounds the scatter-gather worker pool when the
// config leaves it unset.
const DefaultScatterWorkers = 8

// Per-shard failure reasons in ScatterResult.Errors.
const (
	ReasonDeadline = "deadline" // shard did not answer before the context expired
	ReasonDraining = "draining" // shard was draining for detach
	ReasonError    = "error"    // shard answered with an error
)

// ShardError reports one shard's failure within a scatter.
type ShardError struct {
	Collection string `json:"collection"`
	Reason     string `json:"reason"`
	Error      string `json:"error"`
}

// ScatterResult is the outcome of a scatter-gather estimate: aggregate
// selectivities over the collections that answered, plus an explicit
// account of those that did not. Partial coverage is visible, never
// silent — callers see exactly which collections are missing from the
// aggregate.
type ScatterResult struct {
	// Selectivities[i] sums query i's selectivity over the answering
	// collections. Shards hold disjoint slices of the tenant's corpus,
	// so the per-shard estimates add.
	Selectivities []float64
	// Collections lists the collections included in the aggregate,
	// sorted.
	Collections []string
	// Errors lists the collections excluded from it, with reasons,
	// sorted by collection.
	Errors []ShardError
}

// Complete reports whether every shard answered.
func (r *ScatterResult) Complete() bool { return len(r.Errors) == 0 }

// ScatterEstimate fans qs out to every collection of the tenant on a
// bounded worker pool and sums the per-shard selectivities. The gather
// is deadline-aware: when ctx expires, shards that have not answered
// are reported with reason "deadline" and the partial aggregate over
// the shards that did answer is returned — a stuck shard delays the
// response only until the deadline, and its late result is discarded
// without blocking any worker (the gather channel is buffered for the
// full fan-out).
//
// The call errors only when the tenant is unknown or no shard answered;
// otherwise partial failure is expressed in ScatterResult.Errors.
func (c *Catalog) ScatterEstimate(ctx context.Context, tenant string, qs []*query.Query) (*ScatterResult, error) {
	shards, err := c.tenantShards(tenant)
	if err != nil {
		return nil, err
	}
	res := &ScatterResult{Selectivities: make([]float64, len(qs))}
	if len(shards) == 0 {
		// tenantShards never returns an empty live tenant (detaching the
		// last shard removes the tenant), but guard anyway.
		return nil, fmt.Errorf("%w: tenant %q has no collections", service.ErrUnknownCollection, tenant)
	}

	type answer struct {
		idx  int
		sels []float64
		err  error
	}
	// Buffered for the full fan-out: a worker finishing after the
	// deadline still completes its send and exits.
	answers := make(chan answer, len(shards))
	work := make(chan int)
	workers := c.cfg.ScatterWorkers
	if workers > len(shards) {
		workers = len(shards)
	}
	// Workers are not waited on: a straggler past the deadline finishes
	// its estimate, completes its buffered send, and exits on its own.
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range work {
				sh := shards[idx]
				if sh.draining.Load() {
					answers <- answer{idx: idx, err: service.ErrShardDraining}
					continue
				}
				// One child span per shard under the request's root, carrying
				// the same request ID; the shard's pipeline attaches its
				// per-estimate spans beneath it. Stragglers finishing after
				// the gather gave up still record safely — spans lock
				// per-node, and the trace store snapshots deep copies.
				sctx := ctx
				var child *obs.Span
				if sp := obs.SpanFrom(ctx); sp != nil {
					child = sp.StartChild("shard")
					child.SetShard(sh.key.Tenant, sh.key.Collection)
					sctx = obs.WithSpan(ctx, child)
				}
				sels, err := sh.estimateBatch(sctx, qs)
				if child != nil {
					child.FinishErr(err)
				}
				answers <- answer{idx: idx, sels: sels, err: err}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range shards {
			select {
			case work <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Gather until every shard reported or the deadline fired.
	answered := make([]*answer, len(shards))
	pending := len(shards)
gather:
	for pending > 0 {
		select {
		case a := <-answers:
			answered[a.idx] = &a
			pending--
		case <-ctx.Done():
			break gather
		}
	}

	for i, sh := range shards {
		a := answered[i]
		switch {
		case a == nil:
			res.Errors = append(res.Errors, ShardError{
				Collection: sh.key.Collection,
				Reason:     ReasonDeadline,
				Error:      ctx.Err().Error(),
			})
			c.shardErrTotal[ReasonDeadline].Inc()
		case a.err != nil:
			res.Errors = append(res.Errors, ShardError{
				Collection: sh.key.Collection,
				Reason:     scatterReason(a.err),
				Error:      a.err.Error(),
			})
			c.shardErrTotal[scatterReason(a.err)].Inc()
		default:
			res.Collections = append(res.Collections, sh.key.Collection)
			for qi, sel := range a.sels {
				res.Selectivities[qi] += sel
			}
		}
	}
	// shards (and therefore Errors/Collections) are already sorted by
	// collection, so the result is deterministic for a given outcome.

	switch {
	case len(res.Collections) == 0:
		c.scatterTotal["failed"].Inc()
		// Surface the first shard failure as the call error so the HTTP
		// layer can map draining/deadline to proper statuses.
		first := res.Errors[0]
		return res, fmt.Errorf("catalog: scatter for tenant %q failed on all %d collections (first: %s: %s)",
			tenant, len(shards), first.Collection, first.Error)
	case len(res.Errors) > 0:
		c.scatterTotal["partial"].Inc()
	default:
		c.scatterTotal["ok"].Inc()
	}
	return res, nil
}

// scatterReason classifies a shard error for reporting and metrics.
func scatterReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ReasonDeadline
	case errors.Is(err, service.ErrShardDraining):
		return ReasonDraining
	default:
		return ReasonError
	}
}
