package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"xcluster/internal/obs"
	"xcluster/internal/query"
	"xcluster/internal/service"
)

// EstimateRequest is the body of the catalog's POST /estimate: the
// single-tenant request shape plus optional addressing. Three forms:
//
//   - tenant and collection set: route to that shard;
//   - tenant set, collection empty: scatter-gather over every
//     collection of the tenant;
//   - neither set: serve from the configured default shard (the
//     single-tenant compatibility path — the response is byte-for-byte
//     what a standalone service would return).
type EstimateRequest struct {
	Tenant     string `json:"tenant,omitempty"`
	Collection string `json:"collection,omitempty"`
	service.EstimateRequest
}

// ScatterQueryResult is one aggregated row of a ScatterResponse,
// positional with the request's Queries.
type ScatterQueryResult struct {
	Query string `json:"query"`
	// Selectivity sums the per-collection selectivities (shards hold
	// disjoint corpora). Unset when the query failed to parse.
	Selectivity *float64 `json:"selectivity,omitempty"`
	Error       string   `json:"error,omitempty"`
	Offset      *int     `json:"offset,omitempty"`
}

// ScatterResponse is the body of a scatter-gather POST /estimate.
// Partial coverage is explicit: Collections lists what the aggregate
// includes, ShardErrors what it does not and why.
type ScatterResponse struct {
	Tenant      string               `json:"tenant"`
	Collections []string             `json:"collections"`
	Partial     bool                 `json:"partial,omitempty"`
	Results     []ScatterQueryResult `json:"results"`
	ShardErrors []ShardError         `json:"shard_errors,omitempty"`
}

// AttachResponse is the body of a successful POST /admin/catalog/attach.
type AttachResponse struct {
	Tenant     string `json:"tenant"`
	Collection string `json:"collection"`
	Generation uint64 `json:"generation"`
}

// DetachRequest is the body of POST /admin/catalog/detach.
type DetachRequest struct {
	Tenant     string `json:"tenant"`
	Collection string `json:"collection"`
}

// ListResponse is the body of GET /admin/catalog.
type ListResponse struct {
	Tenants []string    `json:"tenants"`
	Shards  []ShardInfo `json:"shards"`
}

// RouteResponse is the body of GET /admin/catalog/route.
type RouteResponse struct {
	Tenant     string `json:"tenant"`
	Key        string `json:"key"`
	Collection string `json:"collection"`
}

// SlowLogAllResponse is the body of GET /debug/slowlog/all: every
// shard's retained slow queries in one list, annotated with tenant and
// collection, most recent first.
type SlowLogAllResponse struct {
	Total   uint64             `json:"total"`
	Entries []obs.SlowLogEntry `json:"entries"`
}

// Handler returns the catalog's HTTP API. It extends the single-tenant
// service surface with addressing instead of replacing it:
//
//	POST /estimate              single-tenant body, or +{"tenant":...,"collection":...}; scatter when collection omitted
//	GET  /admin/catalog         tenants and shards
//	POST /admin/catalog/attach  body: a ShardSpec; loads and attaches the shard
//	POST /admin/catalog/detach  {"tenant":...,"collection":...}; drains and removes
//	GET  /admin/catalog/route   ?tenant=T&key=K: the collection owning document key K
//	GET  /metrics               merged Prometheus rendering: catalog series plus every shard's, labeled tenant/collection
//	GET  /debug/slowlog/all     all shards' slow queries, annotated, most recent first (?limit=N)
//	GET  /debug/traces          merged trace trees: the catalog's plus every shard's, tenant/collection-labeled
//	GET  /debug/slo             every shard's SLO report, tenant/collection-labeled
//	GET  /debug/workload        every shard's workload profile, tenant/collection-labeled (?limit=N)
//	GET  /readyz                503 before the first shard attaches and while shutting down; 200 otherwise
//	GET  /healthz, /buildinfo   served directly
//
// Every other service endpoint (/stats, /synopsis, /feedback,
// /debug/slowlog, /debug/accuracy, /debug/synopsis, /debug/budget,
// /admin/reload, /admin/rebuild, /admin/workload/export) is delegated
// per shard,
// addressed with ?tenant=T&collection=C query parameters; without them
// the default shard answers, so a converted single-tenant deployment's
// clients and scripts keep working unchanged.
//
// The handler is wrapped in the request-correlation middleware: every
// response carries X-Request-ID (honored from the request or
// generated), and a completed trace tree per request lands in the
// catalog's trace store. Delegated shard handlers see the catalog's
// root span in their context, so they attach child spans instead of
// opening a second root.
func (c *Catalog) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", c.handleEstimate)
	mux.HandleFunc("GET /admin/catalog", c.handleList)
	mux.HandleFunc("POST /admin/catalog/attach", c.handleAttach)
	mux.HandleFunc("POST /admin/catalog/detach", c.handleDetach)
	mux.HandleFunc("GET /admin/catalog/route", c.handleRoute)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog/all", c.handleSlowLogAll)
	mux.HandleFunc("GET /debug/traces", c.handleTraces)
	mux.HandleFunc("GET /debug/slo", c.handleSLO)
	mux.HandleFunc("GET /debug/workload", c.handleWorkloadAll)
	mux.HandleFunc("GET /readyz", c.handleReady)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /buildinfo", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, service.ReadBuildInfo())
	})
	for _, ep := range []string{
		"GET /stats",
		"GET /synopsis",
		"POST /feedback",
		"GET /debug/slowlog",
		"GET /debug/accuracy",
		"GET /debug/synopsis",
		"GET /debug/budget",
		"POST /admin/reload",
		"POST /admin/rebuild",
		"GET /admin/workload/export",
	} {
		mux.HandleFunc(ep, c.delegate)
	}
	return obs.TraceHandler(c.traces, mux)
}

// handleReady answers the readiness probe: 503 while shutting down and
// before the first shard — the first live synopsis generation — is
// attached, so load balancers neither route to an empty catalog nor to
// one that is draining.
func (c *Catalog) handleReady(w http.ResponseWriter, r *http.Request) {
	ready, reason := c.Ready()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleTraces merges the catalog's own trace families with every
// shard's. Shard families are prefixed "tenant/collection:" and their
// root spans labeled, so one listing covers both front-end request
// trees (whose shard children are labeled already) and traces recorded
// by shards driven directly (tests, embedded use).
func (c *Catalog) handleTraces(w http.ResponseWriter, r *http.Request) {
	families := c.traces.Snapshot()
	if families == nil {
		families = []obs.FamilySnapshot{}
	}
	for _, sh := range c.allShards() {
		for _, f := range sh.svc.Traces().Snapshot() {
			f.Family = sh.key.String() + ":" + f.Family
			labelSpans(f.Recent, sh.key)
			labelSpans(f.Slowest, sh.key)
			families = append(families, f)
		}
	}
	service.WriteJSON(w, http.StatusOK, service.TracesResponse{Families: families})
}

// labelSpans fills the shard identity into root spans that lack one.
func labelSpans(spans []obs.SpanSnapshot, k Key) {
	for i := range spans {
		if spans[i].Tenant == "" {
			spans[i].Tenant = k.Tenant
		}
		if spans[i].Collection == "" {
			spans[i].Collection = k.Collection
		}
	}
}

// ShardSLO is one shard's SLO report in the catalog's GET /debug/slo.
type ShardSLO struct {
	Tenant     string `json:"tenant"`
	Collection string `json:"collection"`
	obs.SLOReport
}

// SLOAllResponse is the body of the catalog's GET /debug/slo: every
// shard's report, including disabled ones (Enabled false), so operators
// see at a glance which tenants lack objectives.
type SLOAllResponse struct {
	Shards []ShardSLO `json:"shards"`
}

func (c *Catalog) handleSLO(w http.ResponseWriter, r *http.Request) {
	resp := SLOAllResponse{Shards: []ShardSLO{}}
	for _, sh := range c.allShards() {
		resp.Shards = append(resp.Shards, ShardSLO{
			Tenant:     sh.key.Tenant,
			Collection: sh.key.Collection,
			SLOReport:  sh.svc.SLO().Report(),
		})
	}
	service.WriteJSON(w, http.StatusOK, resp)
}

// ShardWorkload is one shard's workload profile in the catalog's
// GET /debug/workload.
type ShardWorkload struct {
	Tenant     string `json:"tenant"`
	Collection string `json:"collection"`
	service.WorkloadResponse
}

// WorkloadAllResponse is the body of the catalog's GET /debug/workload:
// every shard's live workload profile and coverage report, including
// shards with profiling disabled (Enabled false), so traffic mix and
// budget misallocation are comparable across tenants in one response.
type WorkloadAllResponse struct {
	Shards []ShardWorkload `json:"shards"`
}

func (c *Catalog) handleWorkloadAll(w http.ResponseWriter, r *http.Request) {
	limitRaw := r.URL.Query().Get("limit")
	limit, capped := 0, false
	if limitRaw != "" {
		n, err := strconv.Atoi(limitRaw)
		if err != nil || n < 0 {
			service.WriteErrorMsg(w, http.StatusBadRequest,
				fmt.Sprintf("bad limit %q: want a non-negative integer", limitRaw))
			return
		}
		limit, capped = n, true
	}
	resp := WorkloadAllResponse{Shards: []ShardWorkload{}}
	for _, sh := range c.allShards() {
		resp.Shards = append(resp.Shards, ShardWorkload{
			Tenant:           sh.key.Tenant,
			Collection:       sh.key.Collection,
			WorkloadResponse: sh.svc.WorkloadReport(limit, capped),
		})
	}
	service.WriteJSON(w, http.StatusOK, resp)
}

// shardForRequest resolves the shard a delegated request addresses from
// its ?tenant=&collection= parameters, falling back to the default
// shard when neither is present.
func (c *Catalog) shardForRequest(r *http.Request) (*Shard, error) {
	q := r.URL.Query()
	tenant, collection := q.Get("tenant"), q.Get("collection")
	if tenant == "" && collection == "" {
		return c.DefaultShard()
	}
	if tenant == "" || collection == "" {
		return nil, fmt.Errorf("%w: delegated endpoints need both tenant and collection", service.ErrUnknownCollection)
	}
	return c.Shard(tenant, collection)
}

// delegate forwards a request to the addressed shard's own handler. The
// shard's mux routes on method and path; the addressing query
// parameters are ignored by the shard's handlers.
func (c *Catalog) delegate(w http.ResponseWriter, r *http.Request) {
	sh, err := c.shardForRequest(r)
	if err != nil {
		service.WriteError(w, err)
		return
	}
	sh.svc.Handler().ServeHTTP(w, r)
}

func (c *Catalog) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, service.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		service.WriteErrorMsg(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		service.WriteErrorMsg(w, http.StatusBadRequest, "no queries")
		return
	}
	if req.Tenant == "" && req.Collection != "" {
		service.WriteErrorMsg(w, http.StatusBadRequest, "collection requires tenant")
		return
	}

	// Scatter: tenant without collection.
	if req.Tenant != "" && req.Collection == "" {
		c.scatterEstimateHTTP(w, r, req)
		return
	}

	// Routed (or default) single-shard path: the response is exactly
	// what the shard's own service would serve.
	var (
		sh  *Shard
		err error
	)
	if req.Tenant == "" {
		sh, err = c.DefaultShard()
	} else {
		sh, err = c.Shard(req.Tenant, req.Collection)
	}
	if err != nil {
		service.WriteError(w, err)
		return
	}
	if sp := obs.SpanFrom(r.Context()); sp != nil {
		sp.SetShard(sh.key.Tenant, sh.key.Collection)
	}
	resp, err := sh.svc.RunEstimateRequest(r.Context(), req.EstimateRequest)
	if err != nil {
		service.WriteError(w, err)
		return
	}
	service.WriteJSON(w, http.StatusOK, resp)
}

// scatterEstimateHTTP answers a scatter-gather estimate over HTTP.
func (c *Catalog) scatterEstimateHTTP(w http.ResponseWriter, r *http.Request, req EstimateRequest) {
	if req.Explain || req.Plan || req.Trace {
		service.WriteErrorMsg(w, http.StatusBadRequest,
			"explain/plan/trace are per-shard features; address a collection to use them")
		return
	}
	if sp := obs.SpanFrom(r.Context()); sp != nil {
		sp.SetShard(req.Tenant, "")
		sp.SetDetail(fmt.Sprintf("scatter %d queries", len(req.Queries)))
	}
	results := make([]ScatterQueryResult, len(req.Queries))
	var qs []*query.Query
	var pos []int
	for i, qstr := range req.Queries {
		results[i].Query = qstr
		q, err := query.Parse(qstr)
		if err != nil {
			results[i].Error = err.Error()
			var perr *query.ParseError
			if errors.As(err, &perr) {
				off := perr.Offset
				results[i].Offset = &off
			}
			continue
		}
		qs = append(qs, q)
		pos = append(pos, i)
	}
	res, err := c.ScatterEstimate(r.Context(), req.Tenant, qs)
	if err != nil {
		service.WriteError(w, err)
		return
	}
	for j, i := range pos {
		v := res.Selectivities[j]
		results[i].Selectivity = &v
	}
	service.WriteJSON(w, http.StatusOK, ScatterResponse{
		Tenant:      req.Tenant,
		Collections: res.Collections,
		Partial:     !res.Complete(),
		Results:     results,
		ShardErrors: res.Errors,
	})
}

func (c *Catalog) handleList(w http.ResponseWriter, r *http.Request) {
	service.WriteJSON(w, http.StatusOK, ListResponse{
		Tenants: c.Tenants(),
		Shards:  c.List(),
	})
}

func (c *Catalog) handleAttach(w http.ResponseWriter, r *http.Request) {
	var spec ShardSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, service.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		service.WriteErrorMsg(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := spec.validate(); err != nil {
		service.WriteErrorMsg(w, http.StatusBadRequest, err.Error())
		return
	}
	sh, err := c.Attach(r.Context(), spec)
	if err != nil {
		service.WriteErrorMsg(w, http.StatusConflict, err.Error())
		return
	}
	service.WriteJSON(w, http.StatusCreated, AttachResponse{
		Tenant:     sh.key.Tenant,
		Collection: sh.key.Collection,
		Generation: sh.svc.Generation(),
	})
}

func (c *Catalog) handleDetach(w http.ResponseWriter, r *http.Request) {
	var req DetachRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, service.MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		service.WriteErrorMsg(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := c.Detach(r.Context(), req.Tenant, req.Collection); err != nil {
		service.WriteError(w, err)
		return
	}
	service.WriteJSON(w, http.StatusOK, map[string]string{
		"status":     "detached",
		"tenant":     req.Tenant,
		"collection": req.Collection,
	})
}

func (c *Catalog) handleRoute(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tenant, key := q.Get("tenant"), q.Get("key")
	if tenant == "" || key == "" {
		service.WriteErrorMsg(w, http.StatusBadRequest, "route needs ?tenant=T&key=K")
		return
	}
	k, err := c.RouteDocument(tenant, key)
	if err != nil {
		service.WriteError(w, err)
		return
	}
	service.WriteJSON(w, http.StatusOK, RouteResponse{
		Tenant:     tenant,
		Key:        key,
		Collection: k.Collection,
	})
}

// shardLabels renders a shard's Prometheus label prefix. The default
// shard stays unlabeled when the catalog is configured for single-tenant
// metrics compatibility.
func (c *Catalog) shardLabels(sh *Shard) string {
	if c.cfg.UnlabeledDefault && sh.key == c.cfg.DefaultKey {
		return ""
	}
	return fmt.Sprintf("tenant=%q,collection=%q", sh.key.Tenant, sh.key.Collection)
}

func (c *Catalog) handleMetrics(w http.ResponseWriter, r *http.Request) {
	shards := c.allShards()
	parts := make([]obs.Labeled, 0, len(shards)+1)
	// Runtime series are process-global, so they are sampled into the
	// catalog's own (unlabeled) registry only — never per shard — and
	// only at scrape time. The allocs-per-op denominator sums every
	// shard's request count: allocations are process-wide too.
	var ops uint64
	for _, sh := range shards {
		ops += sh.svc.RequestsTotal()
	}
	c.runtime.Sample(c.reg)
	c.runtime.SampleAllocsPerOp(c.reg, ops)
	parts = append(parts, obs.Labeled{R: c.reg})
	for _, sh := range shards {
		sh.svc.SyncMetrics()
		parts = append(parts, obs.Labeled{Labels: c.shardLabels(sh), R: sh.reg})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheusMerged(w, parts...) //nolint:errcheck // headers are out; nothing to do
}

func (c *Catalog) handleSlowLogAll(w http.ResponseWriter, r *http.Request) {
	limitRaw := r.URL.Query().Get("limit")
	limit, capped := 0, false
	if limitRaw != "" {
		n, err := strconv.Atoi(limitRaw)
		if err != nil || n < 0 {
			service.WriteErrorMsg(w, http.StatusBadRequest,
				fmt.Sprintf("bad limit %q: want a non-negative integer", limitRaw))
			return
		}
		limit, capped = n, true
	}
	resp := SlowLogAllResponse{Entries: []obs.SlowLogEntry{}}
	for _, sh := range c.allShards() {
		slow := sh.svc.SlowLog()
		if slow == nil {
			continue
		}
		resp.Total += slow.Total()
		labels := c.shardLabels(sh) // "" for the unlabeled default shard
		for _, e := range slow.Snapshot() {
			if labels != "" {
				e.Tenant = sh.key.Tenant
				e.Collection = sh.key.Collection
			}
			resp.Entries = append(resp.Entries, e)
		}
	}
	sort.SliceStable(resp.Entries, func(i, j int) bool {
		return resp.Entries[i].Time.After(resp.Entries[j].Time)
	})
	if capped && len(resp.Entries) > limit {
		resp.Entries = resp.Entries[:limit]
	}
	service.WriteJSON(w, http.StatusOK, resp)
}
