package catalog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"xcluster/internal/obs"
)

// nameMaxLen bounds tenant and collection names.
const nameMaxLen = 128

// ValidName reports whether s is a legal tenant or collection name:
// 1-128 characters from [A-Za-z0-9._-], starting with a letter or
// digit. The restriction keeps names safe to embed verbatim in
// Prometheus label values, URLs, and log lines.
func ValidName(s string) bool {
	if len(s) == 0 || len(s) > nameMaxLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// ShardSpec declares one shard of the catalog: the (tenant, collection)
// key, where its synopsis (and optionally its source document) comes
// from, and the per-shard budgets that isolate this tenant's caches and
// shadow sampling from every other tenant's.
type ShardSpec struct {
	Tenant     string `json:"tenant"`
	Collection string `json:"collection"`
	// Synopsis locates the serialized synopsis the shard serves
	// (interpreted by the catalog's Loader; required).
	Synopsis string `json:"synopsis"`
	// Document optionally locates the source document, kept resident
	// for shadow evaluation and per-shard rebuilds.
	Document string `json:"document,omitempty"`
	// StructBudget and ValueBudget are the shard's rebuild byte budgets
	// (0: inherit from the synopsis's own fingerprint).
	StructBudget int `json:"struct_budget,omitempty"`
	ValueBudget  int `json:"value_budget,omitempty"`
	// Cache and PlanCache size the shard's result and plan caches
	// (0: service defaults; negative: disabled). Each shard owns its
	// caches, so one tenant's traffic can never evict another's entries.
	Cache     int `json:"cache,omitempty"`
	PlanCache int `json:"plan_cache,omitempty"`
	// ShadowRate, ShadowWorkers and ShadowDeadlineMS configure the
	// shard's private shadow-sampling budget (rate in (0,1] requires
	// Document). A noisy tenant exhausts only its own shadow queue.
	ShadowRate       float64 `json:"shadow_rate,omitempty"`
	ShadowWorkers    int     `json:"shadow_workers,omitempty"`
	ShadowDeadlineMS int     `json:"shadow_deadline_ms,omitempty"`
	// RebuildOnDrift triggers a background rebuild of this shard when
	// its accuracy monitor flags drift (requires Document).
	RebuildOnDrift bool `json:"rebuild_on_drift,omitempty"`
	// AdaptiveBudget makes this shard's drift-triggered rebuilds derive
	// their budget split from the shard's own workload profile via the
	// internal/budget planner (requires Document). Each shard plans
	// independently: one tenant's traffic mix never moves another
	// tenant's budget.
	AdaptiveBudget bool `json:"adaptive_budget,omitempty"`
	// SLOAvailability and SLOLatencyMS declare the shard's service-level
	// objectives: a target success fraction in (0,1) (e.g. 0.999) and a
	// latency objective in milliseconds. SLOLatencyTarget is the fraction
	// of requests that must beat the latency objective (default 0.99
	// when a latency objective is set). Either objective alone enables
	// tracking; both zero leaves the shard's SLO disabled unless the
	// daemon supplies server-wide defaults (the manifest wins).
	SLOAvailability  float64 `json:"slo_availability,omitempty"`
	SLOLatencyMS     float64 `json:"slo_latency_ms,omitempty"`
	SLOLatencyTarget float64 `json:"slo_latency_target,omitempty"`
}

// Key returns the shard's catalog key.
func (sp ShardSpec) Key() Key { return Key{Tenant: sp.Tenant, Collection: sp.Collection} }

// ShadowDeadline returns the shadow deadline as a duration (0: default).
func (sp ShardSpec) ShadowDeadline() time.Duration {
	return time.Duration(sp.ShadowDeadlineMS) * time.Millisecond
}

// SLO returns the spec's objectives as an obs.SLOConfig (zero-valued,
// i.e. disabled, when the spec declares none).
func (sp ShardSpec) SLO() obs.SLOConfig {
	return obs.SLOConfig{
		Availability:     sp.SLOAvailability,
		LatencyObjective: time.Duration(sp.SLOLatencyMS * float64(time.Millisecond)),
		LatencyTarget:    sp.SLOLatencyTarget,
	}
}

// validate rejects a malformed spec with an error naming the field.
func (sp ShardSpec) validate() error {
	if !ValidName(sp.Tenant) {
		return fmt.Errorf("catalog: bad tenant %q (want 1-%d chars of [A-Za-z0-9._-], starting alphanumeric)", sp.Tenant, nameMaxLen)
	}
	if !ValidName(sp.Collection) {
		return fmt.Errorf("catalog: tenant %s: bad collection %q (want 1-%d chars of [A-Za-z0-9._-], starting alphanumeric)", sp.Tenant, sp.Collection, nameMaxLen)
	}
	if sp.Synopsis == "" {
		return fmt.Errorf("catalog: shard %s/%s: missing synopsis", sp.Tenant, sp.Collection)
	}
	if sp.StructBudget < 0 || sp.ValueBudget < 0 {
		return fmt.Errorf("catalog: shard %s/%s: negative budget", sp.Tenant, sp.Collection)
	}
	if sp.ShadowRate < 0 || sp.ShadowRate > 1 {
		return fmt.Errorf("catalog: shard %s/%s: shadow_rate %g outside [0,1]", sp.Tenant, sp.Collection, sp.ShadowRate)
	}
	if sp.ShadowRate > 0 && sp.Document == "" {
		return fmt.Errorf("catalog: shard %s/%s: shadow_rate requires document", sp.Tenant, sp.Collection)
	}
	if sp.ShadowWorkers < 0 {
		return fmt.Errorf("catalog: shard %s/%s: negative shadow_workers", sp.Tenant, sp.Collection)
	}
	if sp.ShadowDeadlineMS < 0 {
		return fmt.Errorf("catalog: shard %s/%s: negative shadow_deadline_ms", sp.Tenant, sp.Collection)
	}
	if sp.RebuildOnDrift && sp.Document == "" {
		return fmt.Errorf("catalog: shard %s/%s: rebuild_on_drift requires document", sp.Tenant, sp.Collection)
	}
	if sp.AdaptiveBudget && sp.Document == "" {
		return fmt.Errorf("catalog: shard %s/%s: adaptive_budget requires document", sp.Tenant, sp.Collection)
	}
	if sp.SLOLatencyMS < 0 {
		return fmt.Errorf("catalog: shard %s/%s: negative slo_latency_ms", sp.Tenant, sp.Collection)
	}
	if err := sp.SLO().Validate(); err != nil {
		return fmt.Errorf("catalog: shard %s/%s: %w", sp.Tenant, sp.Collection, err)
	}
	return nil
}

// Manifest maps tenants to their document collections and per-shard
// budgets: the declarative form of a catalog, loaded by xclusterd
// -catalog at startup.
type Manifest struct {
	// DefaultTenant and DefaultCollection name the shard that answers
	// requests carrying no tenant/collection addressing — the
	// single-tenant compatibility path. Either both or neither are set,
	// and the named shard must exist.
	DefaultTenant     string `json:"default_tenant,omitempty"`
	DefaultCollection string `json:"default_collection,omitempty"`
	// ScatterWorkers bounds the scatter-gather worker pool
	// (0: DefaultScatterWorkers).
	ScatterWorkers int `json:"scatter_workers,omitempty"`
	// Shards declares the catalog's shards; at least one, with no
	// duplicate (tenant, collection) pair.
	Shards []ShardSpec `json:"shards"`
}

// DefaultKey returns the manifest's default shard key and whether one
// is configured.
func (m *Manifest) DefaultKey() (Key, bool) {
	if m.DefaultTenant == "" {
		return Key{}, false
	}
	return Key{Tenant: m.DefaultTenant, Collection: m.DefaultCollection}, true
}

// Validate checks the manifest's internal consistency: every shard spec
// well formed, no duplicate keys, the default shard (when named)
// present.
func (m *Manifest) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("catalog: manifest declares no shards")
	}
	if m.ScatterWorkers < 0 {
		return fmt.Errorf("catalog: negative scatter_workers")
	}
	if (m.DefaultTenant == "") != (m.DefaultCollection == "") {
		return fmt.Errorf("catalog: default_tenant and default_collection must be set together")
	}
	seen := make(map[Key]struct{}, len(m.Shards))
	for _, sp := range m.Shards {
		if err := sp.validate(); err != nil {
			return err
		}
		k := sp.Key()
		if _, dup := seen[k]; dup {
			return fmt.Errorf("catalog: duplicate shard %s", k)
		}
		seen[k] = struct{}{}
	}
	if def, ok := m.DefaultKey(); ok {
		if _, exists := seen[def]; !exists {
			return fmt.Errorf("catalog: default shard %s not declared", def)
		}
	}
	return nil
}

// ParseManifest decodes and validates a JSON manifest. Unknown fields
// are rejected so a typo in a budget name fails loudly at startup
// instead of silently serving with defaults.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("catalog: parsing manifest: %w", err)
	}
	// Trailing content after the manifest object is a malformed file.
	if dec.More() {
		return nil, fmt.Errorf("catalog: parsing manifest: trailing data after manifest object")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifestFile reads and parses a manifest file.
func LoadManifestFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: reading manifest: %w", err)
	}
	return ParseManifest(data)
}
