package catalog

import (
	"encoding/json"
	"strings"
	"testing"
)

const validManifest = `{
  "default_tenant": "acme",
  "default_collection": "docs",
  "scatter_workers": 4,
  "shards": [
    {"tenant": "acme", "collection": "docs", "synopsis": "a.xcs", "cache": 256},
    {"tenant": "acme", "collection": "mail", "synopsis": "b.xcs",
     "document": "b.xml", "shadow_rate": 0.25, "rebuild_on_drift": true},
    {"tenant": "globex", "collection": "docs", "synopsis": "c.xcs",
     "struct_budget": 4096, "value_budget": 2048}
  ]
}`

func TestParseManifestValid(t *testing.T) {
	m, err := ParseManifest([]byte(validManifest))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(m.Shards))
	}
	def, ok := m.DefaultKey()
	if !ok || def != (Key{Tenant: "acme", Collection: "docs"}) {
		t.Fatalf("default key = %v, %v", def, ok)
	}
	if m.ScatterWorkers != 4 {
		t.Fatalf("scatter_workers = %d", m.ScatterWorkers)
	}
	if !m.Shards[1].RebuildOnDrift || m.Shards[1].ShadowRate != 0.25 {
		t.Fatalf("shard 1 budgets not parsed: %+v", m.Shards[1])
	}
}

func TestParseManifestRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty shards", `{"shards": []}`, "no shards"},
		{"not json", `{{{`, "parsing manifest"},
		{"unknown field", `{"shards": [{"tenant":"a","collection":"b","synopsis":"s","cahce":1}]}`, "unknown field"},
		{"trailing data", `{"shards": [{"tenant":"a","collection":"b","synopsis":"s"}]} trailing`, "trailing data"},
		{"bad tenant", `{"shards": [{"tenant":"a b","collection":"c","synopsis":"s"}]}`, "bad tenant"},
		{"bad collection", `{"shards": [{"tenant":"a","collection":"c/d","synopsis":"s"}]}`, "bad collection"},
		{"leading dash", `{"shards": [{"tenant":"-a","collection":"c","synopsis":"s"}]}`, "bad tenant"},
		{"missing synopsis", `{"shards": [{"tenant":"a","collection":"c"}]}`, "missing synopsis"},
		{"duplicate shard", `{"shards": [
			{"tenant":"a","collection":"c","synopsis":"s"},
			{"tenant":"a","collection":"c","synopsis":"t"}]}`, "duplicate shard"},
		{"shadow without document", `{"shards": [{"tenant":"a","collection":"c","synopsis":"s","shadow_rate":0.5}]}`, "requires document"},
		{"shadow rate over one", `{"shards": [{"tenant":"a","collection":"c","synopsis":"s","document":"d","shadow_rate":1.5}]}`, "outside [0,1]"},
		{"rebuild without document", `{"shards": [{"tenant":"a","collection":"c","synopsis":"s","rebuild_on_drift":true}]}`, "requires document"},
		{"adaptive budget without document", `{"shards": [{"tenant":"a","collection":"c","synopsis":"s","adaptive_budget":true}]}`, "adaptive_budget requires document"},
		{"negative budget", `{"shards": [{"tenant":"a","collection":"c","synopsis":"s","struct_budget":-1}]}`, "negative budget"},
		{"negative workers", `{"scatter_workers": -2, "shards": [{"tenant":"a","collection":"c","synopsis":"s"}]}`, "negative scatter_workers"},
		{"half default", `{"default_tenant":"a","shards": [{"tenant":"a","collection":"c","synopsis":"s"}]}`, "set together"},
		{"default missing", `{"default_tenant":"x","default_collection":"y","shards": [{"tenant":"a","collection":"c","synopsis":"s"}]}`, "not declared"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseManifest([]byte(tc.in))
			if err == nil {
				t.Fatalf("ParseManifest accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "acme", "Acme-2", "a.b_c-d", "0tenant", strings.Repeat("x", 128)} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "-a", ".a", "_a", "a b", "a/b", "a\"b", "tenant\n", strings.Repeat("x", 129)} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

// FuzzParseManifest checks the parser never panics and that everything
// it accepts is internally consistent and survives a marshal/reparse
// round trip.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(validManifest))
	f.Add([]byte(`{"shards": [{"tenant":"a","collection":"b","synopsis":"s"}]}`))
	f.Add([]byte(`{"shards": []}`))
	f.Add([]byte(`{"shards": [{"tenant":"a b","collection":"c","synopsis":"s"}]}`))
	f.Add([]byte(`{"default_tenant":"a","default_collection":"b","shards":[{"tenant":"a","collection":"b","synopsis":"s","document":"d","shadow_rate":1,"rebuild_on_drift":true}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"shards": null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests validate and have well-formed names.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted manifest fails Validate: %v", err)
		}
		for _, sp := range m.Shards {
			if !ValidName(sp.Tenant) || !ValidName(sp.Collection) {
				t.Fatalf("accepted manifest has invalid names: %+v", sp)
			}
		}
		// Round trip: marshal and reparse must accept the same manifest.
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal accepted manifest: %v", err)
		}
		if _, err := ParseManifest(out); err != nil {
			t.Fatalf("reparse of marshaled manifest failed: %v\n%s", err, out)
		}
	})
}
