package catalog

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xcluster/internal/query"
	"xcluster/internal/service"
)

// postJSON posts body to the handler and decodes the JSON response.
func postJSON(t *testing.T, h http.Handler, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code < 300 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", path, err, w.Body.String())
		}
	}
	return w
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func httpFixture(t *testing.T) (*Catalog, http.Handler) {
	c := newTestCatalog(t, Config{
		DefaultKey:       Key{Tenant: "acme", Collection: "docs"},
		UnlabeledDefault: true,
	},
		spec("acme", "docs"),
		spec("acme", "mail"),
		spec("globex", "docs"),
	)
	return c, c.Handler()
}

func TestHTTPEstimateRouted(t *testing.T) {
	c, h := httpFixture(t)
	var resp struct {
		Results []struct {
			Query       string   `json:"query"`
			Selectivity *float64 `json:"selectivity"`
			Error       string   `json:"error"`
		} `json:"results"`
	}
	w := postJSON(t, h, "/estimate",
		`{"tenant":"acme","collection":"mail","queries":["//book","not a ( query"]}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}
	if resp.Results[0].Selectivity == nil {
		t.Fatalf("first query failed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Fatal("malformed query did not report an inline error")
	}

	// Cross-check the routed selectivity against the shard directly.
	sh, err := c.Shard("acme", "mail")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := query.Parse("//book")
	want, err := sh.Service().Estimate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if *resp.Results[0].Selectivity != want {
		t.Fatalf("routed estimate %v != shard estimate %v", *resp.Results[0].Selectivity, want)
	}
}

func TestHTTPEstimateDefaultShard(t *testing.T) {
	c, h := httpFixture(t)
	var resp struct {
		Results []struct {
			Selectivity *float64 `json:"selectivity"`
		} `json:"results"`
	}
	// Single-tenant body: no addressing at all.
	w := postJSON(t, h, "/estimate", `{"queries":["//book"]}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	sh, _ := c.Shard("acme", "docs")
	q, _ := query.Parse("//book")
	want, _ := sh.Service().Estimate(context.Background(), q)
	if resp.Results[0].Selectivity == nil || *resp.Results[0].Selectivity != want {
		t.Fatalf("default-shard estimate = %v, want %v", resp.Results[0].Selectivity, want)
	}
}

func TestHTTPEstimateScatter(t *testing.T) {
	c, h := httpFixture(t)
	var resp ScatterResponse
	w := postJSON(t, h, "/estimate", `{"tenant":"acme","queries":["//book"]}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Collections) != 2 || resp.Partial {
		t.Fatalf("scatter response: %+v", resp)
	}
	qs := []*query.Query{mustParse(t, "//book")}
	res, err := c.ScatterEstimate(context.Background(), "acme", qs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Selectivity == nil || *resp.Results[0].Selectivity != res.Selectivities[0] {
		t.Fatalf("HTTP scatter %v != direct scatter %v", resp.Results[0].Selectivity, res.Selectivities[0])
	}
}

func mustParse(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestHTTPEstimateErrors(t *testing.T) {
	_, h := httpFixture(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown tenant", `{"tenant":"nobody","collection":"docs","queries":["//a"]}`, http.StatusNotFound},
		{"unknown collection", `{"tenant":"acme","collection":"nope","queries":["//a"]}`, http.StatusNotFound},
		{"collection without tenant", `{"collection":"docs","queries":["//a"]}`, http.StatusBadRequest},
		{"no queries", `{"tenant":"acme"}`, http.StatusBadRequest},
		{"unknown field", `{"queries":["//a"],"tennant":"acme"}`, http.StatusBadRequest},
		{"scatter with trace", `{"tenant":"acme","trace":true,"queries":["//a"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, h, "/estimate", tc.body, nil)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error content type %q", ct)
			}
		})
	}
}

func TestHTTPAdminCatalog(t *testing.T) {
	_, h := httpFixture(t)
	var list ListResponse
	w := getPath(t, h, "/admin/catalog")
	if w.Code != http.StatusOK {
		t.Fatalf("list status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Shards) != 3 || len(list.Tenants) != 2 {
		t.Fatalf("list = %+v", list)
	}

	var att AttachResponse
	w = postJSON(t, h, "/admin/catalog/attach",
		`{"tenant":"globex","collection":"wiki","synopsis":"mem:globex/wiki"}`, &att)
	if w.Code != http.StatusCreated {
		t.Fatalf("attach status %d: %s", w.Code, w.Body.String())
	}
	if att.Tenant != "globex" || att.Collection != "wiki" {
		t.Fatalf("attach response %+v", att)
	}
	// Duplicate attach conflicts.
	w = postJSON(t, h, "/admin/catalog/attach",
		`{"tenant":"globex","collection":"wiki","synopsis":"mem:globex/wiki"}`, nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate attach status %d", w.Code)
	}
	// Invalid spec is a 400.
	w = postJSON(t, h, "/admin/catalog/attach", `{"tenant":"bad name","collection":"x","synopsis":"s"}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("invalid attach status %d", w.Code)
	}

	// Routing reaches the new shard.
	w = getPath(t, h, "/admin/catalog/route?tenant=globex&key=doc-42")
	if w.Code != http.StatusOK {
		t.Fatalf("route status %d: %s", w.Code, w.Body.String())
	}
	var route RouteResponse
	if err := json.Unmarshal(w.Body.Bytes(), &route); err != nil {
		t.Fatal(err)
	}
	if route.Collection != "docs" && route.Collection != "wiki" {
		t.Fatalf("route = %+v", route)
	}

	w = postJSON(t, h, "/admin/catalog/detach", `{"tenant":"globex","collection":"wiki"}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("detach status %d: %s", w.Code, w.Body.String())
	}
	w = postJSON(t, h, "/admin/catalog/detach", `{"tenant":"globex","collection":"wiki"}`, nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("detach of detached shard status %d", w.Code)
	}
}

func TestHTTPMetricsMerged(t *testing.T) {
	_, h := httpFixture(t)
	// Generate a little traffic so shard series exist.
	postJSON(t, h, "/estimate", `{"tenant":"acme","collection":"mail","queries":["//book"]}`, nil)
	postJSON(t, h, "/estimate", `{"queries":["//book"]}`, nil)

	w := getPath(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"xcluster_catalog_shards 3",
		// The addressed shard's series carry tenant/collection labels...
		`xcluster_requests_total{tenant="acme",collection="mail",outcome="ok"} 1`,
		`tenant="globex",collection="docs"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// ...while the unlabeled default shard keeps its single-tenant series.
	if !strings.Contains(body, `xcluster_requests_total{outcome="ok"} 1`) {
		t.Fatalf("default shard's unlabeled series missing:\n%s", body)
	}
}

func TestHTTPDelegatedEndpoints(t *testing.T) {
	_, h := httpFixture(t)
	// Addressed delegation.
	w := getPath(t, h, "/stats?tenant=acme&collection=mail")
	if w.Code != http.StatusOK {
		t.Fatalf("delegated stats status %d: %s", w.Code, w.Body.String())
	}
	var st map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if _, ok := st["served"]; !ok {
		t.Fatalf("delegated stats body: %v", st)
	}
	// Legacy path: no addressing falls through to the default shard.
	if w := getPath(t, h, "/stats"); w.Code != http.StatusOK {
		t.Fatalf("default-shard stats status %d: %s", w.Code, w.Body.String())
	}
	if w := getPath(t, h, "/synopsis?tenant=globex&collection=docs"); w.Code != http.StatusOK {
		t.Fatalf("delegated synopsis status %d", w.Code)
	}
	// /debug/budget delegates per shard: each shard reports its own plan.
	w = getPath(t, h, "/debug/budget?tenant=acme&collection=mail")
	if w.Code != http.StatusOK {
		t.Fatalf("delegated budget status %d: %s", w.Code, w.Body.String())
	}
	var budget map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &budget); err != nil {
		t.Fatal(err)
	}
	if _, ok := budget["actual"]; !ok {
		t.Fatalf("delegated budget body: %v", budget)
	}
	// Unknown shard: consistent 404 JSON.
	w = getPath(t, h, "/stats?tenant=acme&collection=nope")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown delegation status %d", w.Code)
	}
	// Half-addressed delegation is a 404 with guidance.
	w = getPath(t, h, "/stats?tenant=acme")
	if w.Code != http.StatusNotFound || !strings.Contains(w.Body.String(), "both tenant and collection") {
		t.Fatalf("half-addressed delegation: %d %s", w.Code, w.Body.String())
	}
	if w := getPath(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	if w := getPath(t, h, "/buildinfo"); w.Code != http.StatusOK {
		t.Fatalf("buildinfo status %d", w.Code)
	}
}

func TestHTTPSlowLogAll(t *testing.T) {
	c := newTestCatalog(t, Config{
		ShardOptions: func(spec ShardSpec) []service.Option {
			return []service.Option{service.WithSlowQueryLog(time.Nanosecond, 16)}
		},
		DefaultKey:       Key{Tenant: "acme", Collection: "docs"},
		UnlabeledDefault: true,
	},
		spec("acme", "docs"),
		spec("acme", "mail"),
	)
	h := c.Handler()
	postJSON(t, h, "/estimate", `{"tenant":"acme","collection":"mail","queries":["//book"]}`, nil)
	postJSON(t, h, "/estimate", `{"queries":["//book/title"]}`, nil)

	w := getPath(t, h, "/debug/slowlog/all")
	if w.Code != http.StatusOK {
		t.Fatalf("slowlog/all status %d: %s", w.Code, w.Body.String())
	}
	var resp SlowLogAllResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) < 2 {
		t.Fatalf("entries = %d, want >= 2:\n%s", len(resp.Entries), w.Body.String())
	}
	var labeled, unlabeled bool
	for _, e := range resp.Entries {
		if e.Tenant == "acme" && e.Collection == "mail" {
			labeled = true
		}
		if e.Tenant == "" && e.Collection == "" {
			unlabeled = true
		}
	}
	if !labeled || !unlabeled {
		t.Fatalf("want both an annotated mail entry and an unannotated default entry:\n%s", w.Body.String())
	}
	if w := getPath(t, h, "/debug/slowlog/all?limit=1"); w.Code != http.StatusOK {
		t.Fatalf("limited slowlog status %d", w.Code)
	} else {
		var lim SlowLogAllResponse
		if err := json.Unmarshal(w.Body.Bytes(), &lim); err != nil {
			t.Fatal(err)
		}
		if len(lim.Entries) != 1 {
			t.Fatalf("limit=1 returned %d entries", len(lim.Entries))
		}
	}
	if w := getPath(t, h, "/debug/slowlog/all?limit=bogus"); w.Code != http.StatusBadRequest {
		t.Fatalf("bogus limit status %d", w.Code)
	}
}
