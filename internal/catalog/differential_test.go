// Differential acceptance test for the multi-tenant catalog: a
// one-shard catalog must be indistinguishable from a standalone
// service.Service over the same synopsis — byte-for-byte at the HTTP
// boundary — across the full generated workloads of both harness
// datasets (IMDB and XMark).
package catalog_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xcluster/internal/catalog"
	"xcluster/internal/core"
	"xcluster/internal/harness"
	"xcluster/internal/service"
	"xcluster/internal/workload"
	"xcluster/internal/xmltree"
)

// differentialDataset is one dataset's fixture: the compressed synopsis
// and its generated workload as request strings.
type differentialDataset struct {
	name    string
	syn     *core.Synopsis
	queries []string
}

func differentialFixtures(t *testing.T) []differentialDataset {
	t.Helper()
	cfg := harness.Config{Scale: 1, Seed: 7, PerClass: 30, Points: 4}
	var out []differentialDataset
	for _, name := range harness.DatasetNames() {
		d, err := harness.NewDataset(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		syn, err := cfg.BuildAt(d, d.Ref.StructBytes()/20)
		if err != nil {
			t.Fatal(err)
		}
		var qs []string
		for i := range d.Workload.Queries {
			qs = append(qs, d.Workload.Queries[i].Q.String())
		}
		neg, err := workload.Generate(d.Tree, workload.Options{
			Seed: cfg.Seed + 1, PerClass: 5, ValuePaths: d.ValuePaths, Negative: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range neg.Queries {
			qs = append(qs, neg.Queries[i].Q.String())
		}
		out = append(out, differentialDataset{name: name, syn: syn, queries: qs})
	}
	return out
}

// postBody posts a JSON body and returns status and raw response bytes.
func postBody(h http.Handler, path, body string) (int, []byte) {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes()
}

// TestCatalogDifferentialSingleShard drives every generated query of
// both datasets through a one-shard catalog (no addressing — the
// single-tenant compatibility path) and through a standalone service
// over the same synopsis, and requires the HTTP responses to be
// byte-identical, across plain, explain, and trace request variants.
func TestCatalogDifferentialSingleShard(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full harness datasets")
	}
	total := 0
	for _, d := range differentialFixtures(t) {
		syn := d.syn
		direct := service.New(syn)
		defer direct.Close()
		directH := direct.Handler()

		cat, err := catalog.New(catalog.Config{
			Loader: func(ctx context.Context, spec catalog.ShardSpec) (*core.Synopsis, *xmltree.Tree, error) {
				return syn, nil, nil
			},
			DefaultKey:       catalog.Key{Tenant: "default", Collection: "main"},
			UnlabeledDefault: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cat.DrainAll(context.Background()) //nolint:errcheck // test cleanup
		if _, err := cat.Attach(context.Background(), catalog.ShardSpec{
			Tenant: "default", Collection: "main", Synopsis: "mem:" + d.name,
		}); err != nil {
			t.Fatal(err)
		}
		catH := cat.Handler()

		// Batch the workload so the test exercises many request cycles,
		// including repeats that hit the per-service result caches.
		const batch = 20
		for start := 0; start < len(d.queries); start += batch {
			end := start + batch
			if end > len(d.queries) {
				end = len(d.queries)
			}
			for _, variant := range []string{
				`{"queries":%s}`,
				`{"queries":%s,"explain":true}`,
				`{"queries":%s,"trace":false,"plan":true}`,
			} {
				qjson, err := json.Marshal(d.queries[start:end])
				if err != nil {
					t.Fatal(err)
				}
				body := fmt.Sprintf(variant, qjson)
				dirCode, dirBody := postBody(directH, "/estimate", body)
				catCode, catBody := postBody(catH, "/estimate", body)
				if dirCode != http.StatusOK {
					t.Fatalf("%s: direct service rejected batch %d: %d %s", d.name, start, dirCode, dirBody)
				}
				if catCode != dirCode {
					t.Fatalf("%s: status mismatch on batch %d: catalog %d, direct %d", d.name, start, catCode, dirCode)
				}
				if !bytes.Equal(catBody, dirBody) {
					t.Fatalf("%s: batch %d (%s): catalog response differs from direct service\ncatalog: %s\ndirect:  %s",
						d.name, start, variant, catBody, dirBody)
				}
			}
			total += end - start
		}

		// The explicitly addressed path answers identically to the
		// default path (same shard, same generation).
		qjson, _ := json.Marshal(d.queries[:min(batch, len(d.queries))])
		_, defBody := postBody(catH, "/estimate", fmt.Sprintf(`{"queries":%s}`, qjson))
		_, addrBody := postBody(catH, "/estimate",
			fmt.Sprintf(`{"tenant":"default","collection":"main","queries":%s}`, qjson))
		if !bytes.Equal(defBody, addrBody) {
			t.Fatalf("%s: addressed response differs from default response", d.name)
		}
	}
	if total < 200 {
		t.Fatalf("differential workload covered %d queries, want >= 200", total)
	}
}
