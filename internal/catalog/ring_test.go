package catalog

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("doc-%06d", i)
	}
	return keys
}

func locateAll(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		owner, ok := r.Locate(k)
		if !ok {
			t.Fatalf("Locate(%q) on a populated ring failed", k)
		}
		out[k] = owner
	}
	return out
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Locate("anything"); ok {
		t.Fatal("Locate succeeded on an empty ring")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	members := []string{"a", "b", "c", "d"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(8000)
	counts := make(map[string]int)
	for _, owner := range locateAll(t, r, keys) {
		counts[owner]++
	}
	// With 128 virtual nodes per member the shares should be roughly
	// even; accept a wide band to keep the test robust.
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys; distribution %v", m, 100*share, counts)
		}
	}
}

// TestRingRebalancePinning pins the consistent-hash property the catalog
// depends on: attaching a shard re-homes only the keys the new shard
// takes over — no key moves between pre-existing members — and
// detaching it restores the original assignment exactly.
func TestRingRebalancePinning(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	keys := ringKeys(6000)
	before := locateAll(t, r, keys)

	r.Add("d")
	after := locateAll(t, r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] == after[k] {
			continue
		}
		moved++
		if after[k] != "d" {
			t.Fatalf("key %q moved %s -> %s: keys may only move to the new member",
				k, before[k], after[k])
		}
	}
	// Expect roughly 1/4 of keys to move to the new member.
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding 4th member moved %.1f%% of keys, want roughly 25%%", 100*frac)
	}

	r.Remove("d")
	restored := locateAll(t, r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %q owner %s after remove, want original %s", k, restored[k], before[k])
		}
	}
}

func TestRingIdempotentMutation(t *testing.T) {
	r := NewRing(16)
	r.Add("a")
	r.Add("a")
	if got := len(r.points); got != 16 {
		t.Fatalf("double Add left %d points, want 16", got)
	}
	r.Remove("missing")
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removes: %d members, %d points", r.Len(), len(r.points))
	}
}
