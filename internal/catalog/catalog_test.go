package catalog

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xcluster/internal/core"
	"xcluster/internal/service"
	"xcluster/internal/xmltree"
)

func TestAttachResolveDetach(t *testing.T) {
	c := newTestCatalog(t, Config{},
		spec("acme", "docs"),
		spec("acme", "mail"),
		spec("globex", "docs"),
	)

	sh, err := c.Shard("acme", "docs")
	if err != nil {
		t.Fatal(err)
	}
	if sh.Key() != (Key{Tenant: "acme", Collection: "docs"}) {
		t.Fatalf("resolved wrong shard %s", sh.Key())
	}
	qs := parseWorkload(t)
	if _, err := sh.Service().EstimateBatch(context.Background(), qs); err != nil {
		t.Fatalf("estimate on attached shard: %v", err)
	}

	if _, err := c.Shard("nobody", "docs"); !errors.Is(err, service.ErrUnknownTenant) {
		t.Fatalf("unknown tenant error = %v, want ErrUnknownTenant", err)
	}
	if _, err := c.Shard("acme", "nope"); !errors.Is(err, service.ErrUnknownCollection) {
		t.Fatalf("unknown collection error = %v, want ErrUnknownCollection", err)
	}

	if got := c.Tenants(); len(got) != 2 || got[0] != "acme" || got[1] != "globex" {
		t.Fatalf("Tenants = %v", got)
	}
	list := c.List()
	if len(list) != 3 {
		t.Fatalf("List returned %d shards, want 3", len(list))
	}
	for i := 1; i < len(list); i++ {
		a, b := list[i-1], list[i]
		if a.Tenant > b.Tenant || (a.Tenant == b.Tenant && a.Collection > b.Collection) {
			t.Fatalf("List not sorted: %v before %v", a, b)
		}
	}
	if list[0].Clusters == 0 || list[0].Bytes == 0 {
		t.Fatalf("List row missing synopsis size: %+v", list[0])
	}

	if err := c.Detach(context.Background(), "acme", "mail"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Shard("acme", "mail"); !errors.Is(err, service.ErrUnknownCollection) {
		t.Fatalf("detached shard still resolvable: %v", err)
	}
	if err := c.Detach(context.Background(), "acme", "mail"); !errors.Is(err, service.ErrUnknownCollection) {
		t.Fatalf("second detach = %v, want ErrUnknownCollection", err)
	}
	// Detaching globex's only shard removes the tenant entirely.
	if err := c.Detach(context.Background(), "globex", "docs"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Shard("globex", "anything"); !errors.Is(err, service.ErrUnknownTenant) {
		t.Fatalf("tenant with no shards = %v, want ErrUnknownTenant", err)
	}
}

func TestAttachDuplicateAndInvalid(t *testing.T) {
	c := newTestCatalog(t, Config{}, spec("acme", "docs"))
	if _, err := c.Attach(context.Background(), spec("acme", "docs")); err == nil || !strings.Contains(err.Error(), "already attached") {
		t.Fatalf("duplicate attach = %v, want already-attached error", err)
	}
	if _, err := c.Attach(context.Background(), ShardSpec{Tenant: "bad name", Collection: "x", Synopsis: "s"}); err == nil {
		t.Fatal("attach with invalid tenant name succeeded")
	}
	if _, err := c.Attach(context.Background(), ShardSpec{Tenant: "ok", Collection: "x"}); err == nil {
		t.Fatal("attach without synopsis succeeded")
	}
}

func TestDrainingShardRefusesWork(t *testing.T) {
	c := newTestCatalog(t, Config{}, spec("acme", "docs"))
	sh, err := c.Shard("acme", "docs")
	if err != nil {
		t.Fatal(err)
	}
	sh.draining.Store(true)
	if _, err := c.Shard("acme", "docs"); !errors.Is(err, service.ErrShardDraining) {
		t.Fatalf("draining shard lookup = %v, want ErrShardDraining", err)
	}
	// A Detach racing an in-progress one loses the CAS and fails fast.
	if err := c.Detach(context.Background(), "acme", "docs"); !errors.Is(err, service.ErrShardDraining) {
		t.Fatalf("concurrent detach = %v, want ErrShardDraining", err)
	}
	sh.draining.Store(false)
}

func TestRouteDocumentStability(t *testing.T) {
	c := newTestCatalog(t, Config{},
		spec("acme", "docs"),
		spec("acme", "mail"),
		spec("acme", "wiki"),
	)
	seenColl := make(map[string]int)
	for _, key := range ringKeys(500) {
		k1, err := c.RouteDocument("acme", key)
		if err != nil {
			t.Fatal(err)
		}
		k2, _ := c.RouteDocument("acme", key)
		if k1 != k2 {
			t.Fatalf("routing unstable for %q: %s then %s", key, k1, k2)
		}
		if k1.Tenant != "acme" {
			t.Fatalf("routed to wrong tenant: %s", k1)
		}
		seenColl[k1.Collection]++
	}
	if len(seenColl) != 3 {
		t.Fatalf("500 keys landed on %d of 3 collections: %v", len(seenColl), seenColl)
	}
	if _, err := c.RouteDocument("nobody", "doc-1"); !errors.Is(err, service.ErrUnknownTenant) {
		t.Fatalf("route for unknown tenant = %v, want ErrUnknownTenant", err)
	}
}

func TestDrainAllClosesCatalog(t *testing.T) {
	c := newTestCatalog(t, Config{}, spec("acme", "docs"))
	if err := c.DrainAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(context.Background(), spec("acme", "more")); err == nil {
		t.Fatal("attach after DrainAll succeeded")
	}
	if got := c.List(); len(got) != 0 {
		t.Fatalf("shards after DrainAll: %v", got)
	}
}

// TestShardEstimatesMatchStandaloneService is the structural-isolation
// core of the catalog: a shard's estimates are exactly the estimates of
// a standalone service over the same synopsis, because the shard IS a
// standalone service.
func TestShardEstimatesMatchStandaloneService(t *testing.T) {
	loader := testLoader(t)
	sp := spec("acme", "docs")
	c := newTestCatalog(t, Config{Loader: loader}, sp)
	sh, err := c.Shard("acme", "docs")
	if err != nil {
		t.Fatal(err)
	}

	syn, _, err := loader(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	direct := service.New(syn)
	defer direct.Close()

	qs := parseWorkload(t)
	got, err := sh.Service().EstimateBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.EstimateBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("query %d (%s): shard %v != direct %v", i, testWorkload[i], got[i], want[i])
		}
	}
}

func TestLoaderFailure(t *testing.T) {
	c, err := New(Config{Loader: func(ctx context.Context, spec ShardSpec) (*core.Synopsis, *xmltree.Tree, error) {
		return nil, nil, errors.New("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(context.Background(), spec("acme", "docs")); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("attach with failing loader = %v, want wrapped boom", err)
	}
	if got := c.List(); len(got) != 0 {
		t.Fatalf("failed attach left shards behind: %v", got)
	}
}
