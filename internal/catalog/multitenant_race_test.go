package catalog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/service"
)

// TestMultiTenantConcurrentLifecycle is the catalog's isolation stress
// test: 32 goroutines estimate concurrently across four tenants while
// one shard rebuilds in a loop and a fifth shard attaches and detaches
// in a loop. Run with -race. It asserts:
//
//   - estimates on stable shards stay bit-for-bit equal to their
//     sequential ground truth throughout the churn;
//   - lifecycle churn on one tenant never surfaces as an error on
//     another;
//   - cache pressure is tenant-local: the hammered tenant's result
//     cache records capacity evictions while the quiet tenant's
//     records none (structural isolation — there is no shared cache to
//     fight over).
func TestMultiTenantConcurrentLifecycle(t *testing.T) {
	specs := []ShardSpec{
		// Hammered: a tiny result cache so a varied workload must evict.
		{Tenant: "alpha", Collection: "main", Synopsis: "mem:alpha", Cache: 8},
		// Quiet: a roomy cache and a fixed workload — zero evictions.
		{Tenant: "beta", Collection: "main", Synopsis: "mem:beta", Cache: 1024},
		// Rebuilt concurrently: needs its document resident.
		{Tenant: "gamma", Collection: "main", Synopsis: "mem:gamma", Document: "mem"},
		{Tenant: "delta", Collection: "main", Synopsis: "mem:delta"},
		{Tenant: "delta", Collection: "aux", Synopsis: "mem:delta-aux"},
	}
	c := newTestCatalog(t, Config{}, specs...)

	shard := func(tenant, coll string) *Shard {
		t.Helper()
		sh, err := c.Shard(tenant, coll)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	alpha, beta := shard("alpha", "main"), shard("beta", "main")
	gamma := shard("gamma", "main")

	// Varied workload for alpha (distinct cache keys), fixed for beta.
	alphaQueries := make([]*query.Query, 64)
	for i := range alphaQueries {
		q, err := query.Parse(fmt.Sprintf("//book[year>%d]", 1900+i))
		if err != nil {
			t.Fatal(err)
		}
		alphaQueries[i] = q
	}
	betaQueries := parseWorkload(t)

	alphaWant := make([]float64, len(alphaQueries))
	for i, q := range alphaQueries {
		v, err := alpha.Service().Estimate(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		alphaWant[i] = v
	}
	betaWant, err := beta.Service().EstimateBatch(context.Background(), betaQueries)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	const iters = 40
	ctx := context.Background()
	var workWG, churnWG sync.WaitGroup
	errs := make(chan error, goroutines+2)

	// Churn 1: gamma rebuilds from its resident document in a loop.
	stop := make(chan struct{})
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, err := gamma.Service().Rebuild(ctx, service.RebuildOptions{Reason: "race-test"})
			if err != nil && !errors.Is(err, service.ErrRebuildInProgress) {
				errs <- fmt.Errorf("gamma rebuild %d: %w", i, err)
				return
			}
		}
	}()
	// Churn 2: an epsilon shard attaches and detaches in a loop.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		sp := ShardSpec{Tenant: "epsilon", Collection: "burst", Synopsis: "mem:epsilon"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Attach(ctx, sp); err != nil {
				errs <- fmt.Errorf("epsilon attach %d: %w", i, err)
				return
			}
			if err := c.Detach(ctx, "epsilon", "burst"); err != nil {
				errs <- fmt.Errorf("epsilon detach %d: %w", i, err)
				return
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		workWG.Add(1)
		go func(g int) {
			defer workWG.Done()
			for r := 0; r < iters; r++ {
				switch g % 4 {
				case 0: // hammer alpha's tiny cache with rotating queries
					i := (g*iters + r) % len(alphaQueries)
					v, err := alpha.Service().Estimate(ctx, alphaQueries[i])
					if err != nil {
						errs <- fmt.Errorf("alpha estimate: %w", err)
						return
					}
					if v != alphaWant[i] {
						errs <- fmt.Errorf("alpha query %d = %v, want %v", i, v, alphaWant[i])
						return
					}
				case 1: // fixed workload against beta
					got, err := beta.Service().EstimateBatch(ctx, betaQueries)
					if err != nil {
						errs <- fmt.Errorf("beta batch: %w", err)
						return
					}
					for i := range got {
						if got[i] != betaWant[i] {
							errs <- fmt.Errorf("beta query %d = %v, want %v", i, got[i], betaWant[i])
							return
						}
					}
				case 2: // estimates against the shard that is rebuilding
					if _, err := gamma.Service().Estimate(ctx, betaQueries[r%len(betaQueries)]); err != nil {
						errs <- fmt.Errorf("gamma estimate during rebuild: %w", err)
						return
					}
				case 3: // scatter across delta's two collections; resolve
					// the churned tenant too — any state is fine, errors
					// must be the typed sentinels only
					if _, err := c.ScatterEstimate(ctx, "delta", betaQueries); err != nil {
						errs <- fmt.Errorf("delta scatter: %w", err)
						return
					}
					if _, err := c.Shard("epsilon", "burst"); err != nil &&
						!errors.Is(err, service.ErrUnknownTenant) &&
						!errors.Is(err, service.ErrUnknownCollection) &&
						!errors.Is(err, service.ErrShardDraining) {
						errs <- fmt.Errorf("epsilon lookup: non-sentinel error %w", err)
						return
					}
				}
			}
		}(g)
	}

	// The churn loops run for as long as the workers do, so lifecycle
	// transitions overlap the whole estimate load.
	workWG.Wait()
	close(stop)
	churnWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Isolation: alpha's cache was forced to evict, beta's never was.
	alphaStats := alpha.Service().Stats()
	betaStats := beta.Service().Stats()
	if alphaStats.Cache.Evictions == 0 {
		t.Errorf("alpha (cache cap 8, 64 distinct queries) recorded no evictions: %+v", alphaStats.Cache)
	}
	if betaStats.Cache.Evictions != 0 {
		t.Errorf("beta recorded %d evictions despite a roomy private cache: cross-tenant pressure should be impossible",
			betaStats.Cache.Evictions)
	}
	// The churned tenants are gone or present; either way the stable
	// tenants' shards are still resolvable and serving.
	if _, err := c.Shard("alpha", "main"); err != nil {
		t.Errorf("alpha unresolvable after churn: %v", err)
	}
	if gen := gamma.Service().Generation(); gen == 0 {
		t.Error("gamma never advanced a generation despite rebuild loop")
	}
}
