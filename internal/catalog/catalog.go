// Package catalog shards the corpus: it owns a registry of independent
// per-(tenant, collection) synopsis shards, routes documents to shards
// with a consistent-hash ring, and scatter-gathers estimates across a
// tenant's shards. Each shard is a complete service.Service — its own
// synopsis generations, hot-swap lifecycle, result/plan caches,
// accuracy monitor, shadow-sampling budget, and metrics registry — so
// tenants are isolated structurally rather than by bookkeeping: one
// tenant's traffic cannot evict another's cache entries, exhaust its
// shadow queue, or skew its accuracy series.
package catalog

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xcluster/internal/core"
	"xcluster/internal/obs"
	"xcluster/internal/query"
	"xcluster/internal/service"
	"xcluster/internal/xmltree"
)

// Key addresses one shard: a tenant and one of its collections.
type Key struct {
	Tenant     string
	Collection string
}

// String renders the key as "tenant/collection".
func (k Key) String() string { return k.Tenant + "/" + k.Collection }

// Loader materializes a shard's synopsis (and, when the spec declares a
// document, its source tree) from a ShardSpec. The catalog calls it
// outside its locks, so loads of different shards proceed in parallel.
type Loader func(ctx context.Context, spec ShardSpec) (*core.Synopsis, *xmltree.Tree, error)

// Config configures New.
type Config struct {
	// Loader materializes shard synopses. Required.
	Loader Loader
	// ShardOptions contributes extra service options per shard (e.g.
	// slow-query logs, timeouts). Applied before the catalog's own
	// options, so the catalog's per-shard registry always wins.
	ShardOptions func(spec ShardSpec) []service.Option
	// ScatterWorkers bounds the scatter-gather pool
	// (<= 0: DefaultScatterWorkers).
	ScatterWorkers int
	// DefaultKey, when non-zero, names the shard that serves requests
	// carrying no tenant/collection addressing (single-tenant
	// compatibility). The shard need not exist yet at New time.
	DefaultKey Key
	// UnlabeledDefault renders the default shard's metrics without
	// tenant/collection labels, keeping a converted single-tenant
	// deployment's /metrics byte-compatible.
	UnlabeledDefault bool
	// RingReplicas sets virtual nodes per collection on each tenant's
	// document-routing ring (<= 0: DefaultRingReplicas).
	RingReplicas int
}

// Shard is one attached (tenant, collection) member: a service plus the
// catalog bookkeeping around it.
type Shard struct {
	key  Key
	spec ShardSpec
	svc  *service.Service
	reg  *obs.Registry

	// draining flips once, when Detach claims the shard; estimates
	// observing it fail fast with ErrShardDraining.
	draining atomic.Bool

	// estimateBatch is the scatter path's estimate function; tests
	// substitute it to inject per-shard faults without touching the
	// service underneath.
	estimateBatch func(ctx context.Context, qs []*query.Query) ([]float64, error)
}

// Key returns the shard's (tenant, collection) address.
func (sh *Shard) Key() Key { return sh.key }

// Spec returns the spec the shard was attached with.
func (sh *Shard) Spec() ShardSpec { return sh.spec }

// Service returns the shard's underlying service.
func (sh *Shard) Service() *service.Service { return sh.svc }

// Registry returns the shard's private metrics registry.
func (sh *Shard) Registry() *obs.Registry { return sh.reg }

// Draining reports whether Detach has claimed the shard.
func (sh *Shard) Draining() bool { return sh.draining.Load() }

// tenantState groups a tenant's shards with the consistent-hash ring
// that routes the tenant's documents across them.
type tenantState struct {
	shards map[string]*Shard // by collection
	ring   *Ring             // members are collection names
}

// Catalog is a registry of shards addressed by (tenant, collection),
// safe for concurrent use. Attach/Detach mutate membership while
// estimates, scatters, and routing proceed against a consistent view.
type Catalog struct {
	cfg Config
	reg *obs.Registry

	mu      sync.RWMutex
	tenants map[string]*tenantState
	closed  bool

	// draining flips readiness (GET /readyz → 503) ahead of DrainAll:
	// the daemon calls BeginShutdown before closing the listener so load
	// balancers stop routing before in-flight work is waited out.
	draining atomic.Bool

	// traces retains completed request trace trees for the catalog's
	// /debug/traces; runtime samples runtime/metrics into the catalog
	// registry at scrape time.
	traces  *obs.TraceStore
	runtime *obs.RuntimeSampler

	scatterTotal  map[string]*obs.Counter // by outcome
	shardErrTotal map[string]*obs.Counter // by reason
}

// New returns an empty catalog. cfg.Loader is required.
func New(cfg Config) (*Catalog, error) {
	if cfg.Loader == nil {
		return nil, fmt.Errorf("catalog: Config.Loader is required")
	}
	if cfg.ScatterWorkers <= 0 {
		cfg.ScatterWorkers = DefaultScatterWorkers
	}
	c := &Catalog{
		cfg:     cfg,
		reg:     obs.NewRegistry(),
		tenants: make(map[string]*tenantState),
		traces:  obs.NewTraceStore(0, 0),
		runtime: obs.NewRuntimeSampler(),
	}
	c.reg.Help("xcluster_catalog_shards", "Attached shards in the catalog.")
	c.reg.Help("xcluster_catalog_scatter_total", "Scatter-gather estimate calls by outcome (ok, partial, failed).")
	c.reg.Help("xcluster_catalog_shard_errors_total", "Per-shard scatter failures by reason (deadline, draining, error).")
	c.scatterTotal = map[string]*obs.Counter{
		"ok":      c.reg.Counter("xcluster_catalog_scatter_total", `outcome="ok"`),
		"partial": c.reg.Counter("xcluster_catalog_scatter_total", `outcome="partial"`),
		"failed":  c.reg.Counter("xcluster_catalog_scatter_total", `outcome="failed"`),
	}
	c.shardErrTotal = map[string]*obs.Counter{
		ReasonDeadline: c.reg.Counter("xcluster_catalog_shard_errors_total", `reason="deadline"`),
		ReasonDraining: c.reg.Counter("xcluster_catalog_shard_errors_total", `reason="draining"`),
		ReasonError:    c.reg.Counter("xcluster_catalog_shard_errors_total", `reason="error"`),
	}
	c.reg.Gauge("xcluster_catalog_shards", "").Set(0)
	return c, nil
}

// Registry returns the catalog's own metrics registry (shard counts,
// scatter outcomes). Per-shard serving metrics live in each shard's
// registry and are merged with tenant/collection labels at render time.
func (c *Catalog) Registry() *obs.Registry { return c.reg }

// Traces returns the catalog's request trace store.
func (c *Catalog) Traces() *obs.TraceStore { return c.traces }

// BeginShutdown flips the catalog not-ready (GET /readyz → 503) without
// touching the serving paths. Call it before stopping the listener so
// load balancers drain traffic ahead of DrainAll.
func (c *Catalog) BeginShutdown() { c.draining.Store(true) }

// Ready reports whether the catalog should receive traffic, with a
// human-readable reason when it should not: false while shutting down
// or before the first shard (the first live synopsis generation) is
// attached.
func (c *Catalog) Ready() (bool, string) {
	if c.draining.Load() {
		return false, "draining"
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return false, "draining"
	}
	for _, ts := range c.tenants {
		if len(ts.shards) > 0 {
			return true, "ready"
		}
	}
	return false, "no shards attached"
}

// DefaultKey returns the configured single-tenant compatibility key and
// whether one is set.
func (c *Catalog) DefaultKey() (Key, bool) {
	return c.cfg.DefaultKey, c.cfg.DefaultKey != Key{}
}

// Attach loads the spec's synopsis and adds the shard to the catalog.
// The load (the expensive part) runs outside the catalog lock, so
// concurrent attaches of different shards overlap; a duplicate key
// loses the race and its freshly built service is closed.
func (c *Catalog) Attach(ctx context.Context, spec ShardSpec) (*Shard, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	k := spec.Key()
	// Fast-path duplicate check before paying for the load.
	c.mu.RLock()
	if ts, ok := c.tenants[k.Tenant]; ok {
		if _, dup := ts.shards[k.Collection]; dup {
			c.mu.RUnlock()
			return nil, fmt.Errorf("catalog: shard %s already attached", k)
		}
	}
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("catalog: closed")
	}

	sh, err := c.buildShard(ctx, spec)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		sh.svc.Close()
		return nil, fmt.Errorf("catalog: closed")
	}
	ts, ok := c.tenants[k.Tenant]
	if !ok {
		ts = &tenantState{
			shards: make(map[string]*Shard),
			ring:   NewRing(c.cfg.RingReplicas),
		}
		c.tenants[k.Tenant] = ts
	}
	if _, dup := ts.shards[k.Collection]; dup {
		c.mu.Unlock()
		sh.svc.Close()
		return nil, fmt.Errorf("catalog: shard %s already attached", k)
	}
	ts.shards[k.Collection] = sh
	ts.ring.Add(k.Collection)
	c.mu.Unlock()
	c.reg.Gauge("xcluster_catalog_shards", "").Add(1)
	return sh, nil
}

// buildShard loads the synopsis and assembles the shard's service with
// its private registry and the spec's budgets.
func (c *Catalog) buildShard(ctx context.Context, spec ShardSpec) (*Shard, error) {
	syn, tree, err := c.cfg.Loader(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("catalog: loading shard %s: %w", spec.Key(), err)
	}
	if syn == nil {
		return nil, fmt.Errorf("catalog: loading shard %s: loader returned no synopsis", spec.Key())
	}
	reg := obs.NewRegistry()
	var opts []service.Option
	if c.cfg.ShardOptions != nil {
		opts = append(opts, c.cfg.ShardOptions(spec)...)
	}
	if spec.Cache != 0 {
		opts = append(opts, service.WithCacheCapacity(spec.Cache))
	}
	if spec.PlanCache != 0 {
		opts = append(opts, service.WithPlanCacheCapacity(spec.PlanCache))
	}
	if tree != nil {
		opts = append(opts, service.WithDocument(tree))
	}
	if spec.ShadowRate > 0 {
		opts = append(opts, service.WithShadowSampling(spec.ShadowRate, spec.ShadowWorkers, spec.ShadowDeadline()))
	}
	if spec.RebuildOnDrift {
		opts = append(opts, service.WithRebuildOnDrift())
	}
	if spec.AdaptiveBudget {
		opts = append(opts, service.WithAdaptiveBudget())
	}
	if spec.StructBudget > 0 || spec.ValueBudget > 0 {
		opts = append(opts, service.WithRebuildBudgets(spec.StructBudget, spec.ValueBudget))
	}
	// Manifest objectives override any server-wide SLO defaults the
	// daemon put in ShardOptions (later options win).
	if spec.SLO().Enabled() {
		opts = append(opts, service.WithSLO(spec.SLO()))
	}
	// Reload re-runs the loader with the same spec, so per-shard
	// /admin/reload picks up a re-serialized synopsis.
	loader, loadSpec := c.cfg.Loader, spec
	opts = append(opts, service.WithSynopsisSource(func(ctx context.Context) (*core.Synopsis, error) {
		s, _, err := loader(ctx, loadSpec)
		return s, err
	}))
	// The shard's registry goes last so nothing in ShardOptions can
	// redirect the shard's metrics into a shared registry.
	opts = append(opts, service.WithRegistry(reg))
	svc := service.New(syn, opts...)
	sh := &Shard{key: spec.Key(), spec: spec, svc: svc, reg: reg}
	sh.estimateBatch = svc.EstimateBatch
	return sh, nil
}

// Detach drains the shard and removes it. The drain (waiting out
// in-flight estimates) runs outside the catalog lock; new estimates
// observing the draining flag fail fast with ErrShardDraining, and a
// concurrent second Detach of the same shard fails the same way.
func (c *Catalog) Detach(ctx context.Context, tenant, collection string) error {
	c.mu.RLock()
	sh, err := c.lookupLocked(tenant, collection)
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	if !sh.draining.CompareAndSwap(false, true) {
		return service.ErrShardDraining
	}
	drainErr := sh.svc.Drain(ctx)

	c.mu.Lock()
	if ts, ok := c.tenants[tenant]; ok {
		if cur, ok := ts.shards[collection]; ok && cur == sh {
			delete(ts.shards, collection)
			ts.ring.Remove(collection)
			if len(ts.shards) == 0 {
				delete(c.tenants, tenant)
			}
		}
	}
	c.mu.Unlock()
	c.reg.Gauge("xcluster_catalog_shards", "").Add(-1)
	sh.svc.Close()
	if drainErr != nil {
		return fmt.Errorf("catalog: detaching %s/%s: drain: %w", tenant, collection, drainErr)
	}
	return nil
}

// lookupLocked resolves (tenant, collection) under c.mu (either mode),
// distinguishing unknown tenant, unknown collection, and draining.
func (c *Catalog) lookupLocked(tenant, collection string) (*Shard, error) {
	ts, ok := c.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", service.ErrUnknownTenant, tenant)
	}
	sh, ok := ts.shards[collection]
	if !ok {
		return nil, fmt.Errorf("%w: %q (tenant %q)", service.ErrUnknownCollection, collection, tenant)
	}
	if sh.draining.Load() {
		return nil, fmt.Errorf("%w: %s", service.ErrShardDraining, sh.key)
	}
	return sh, nil
}

// Shard resolves a serving shard, failing with ErrUnknownTenant,
// ErrUnknownCollection, or ErrShardDraining.
func (c *Catalog) Shard(tenant, collection string) (*Shard, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lookupLocked(tenant, collection)
}

// DefaultShard resolves the single-tenant compatibility shard.
func (c *Catalog) DefaultShard() (*Shard, error) {
	def, ok := c.DefaultKey()
	if !ok {
		return nil, fmt.Errorf("%w: no default shard configured", service.ErrUnknownTenant)
	}
	return c.Shard(def.Tenant, def.Collection)
}

// RouteDocument returns the collection that owns docKey on the tenant's
// consistent-hash ring. Draining shards keep their arcs until detach
// completes, so routing stays stable during a drain.
func (c *Catalog) RouteDocument(tenant, docKey string) (Key, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tenants[tenant]
	if !ok {
		return Key{}, fmt.Errorf("%w: %q", service.ErrUnknownTenant, tenant)
	}
	coll, ok := ts.ring.Locate(docKey)
	if !ok {
		return Key{}, fmt.Errorf("%w: tenant %q has no collections", service.ErrUnknownCollection, tenant)
	}
	return Key{Tenant: tenant, Collection: coll}, nil
}

// tenantShards snapshots a tenant's shards sorted by collection,
// including draining ones (the scatter path reports those as errors
// rather than silently shrinking coverage).
func (c *Catalog) tenantShards(tenant string) ([]*Shard, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tenants[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", service.ErrUnknownTenant, tenant)
	}
	out := make([]*Shard, 0, len(ts.shards))
	for _, sh := range ts.shards {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key.Collection < out[j].key.Collection })
	return out, nil
}

// ShardInfo is one row of List: a shard's address and serving state.
type ShardInfo struct {
	Tenant     string    `json:"tenant"`
	Collection string    `json:"collection"`
	Generation uint64    `json:"generation"`
	Installed  time.Time `json:"installed"`
	Draining   bool      `json:"draining,omitempty"`
	Clusters   int       `json:"clusters"`
	Bytes      int       `json:"bytes"`
}

// allShards snapshots every shard, sorted by (tenant, collection).
func (c *Catalog) allShards() []*Shard {
	c.mu.RLock()
	shards := make([]*Shard, 0, 8)
	for _, ts := range c.tenants {
		for _, sh := range ts.shards {
			shards = append(shards, sh)
		}
	}
	c.mu.RUnlock()
	sortShards(shards)
	return shards
}

// sortShards orders shards by (tenant, collection).
func sortShards(shards []*Shard) {
	sort.Slice(shards, func(i, j int) bool {
		if shards[i].key.Tenant != shards[j].key.Tenant {
			return shards[i].key.Tenant < shards[j].key.Tenant
		}
		return shards[i].key.Collection < shards[j].key.Collection
	})
}

// List snapshots every shard, sorted by tenant then collection.
func (c *Catalog) List() []ShardInfo {
	shards := c.allShards()
	out := make([]ShardInfo, len(shards))
	for i, sh := range shards {
		syn := sh.svc.Synopsis()
		info := ShardInfo{
			Tenant:     sh.key.Tenant,
			Collection: sh.key.Collection,
			Generation: sh.svc.Generation(),
			Installed:  sh.svc.Installed(),
			Draining:   sh.draining.Load(),
		}
		if syn != nil {
			info.Clusters = syn.NumNodes()
			info.Bytes = syn.TotalBytes()
		}
		out[i] = info
	}
	return out
}

// Tenants returns the tenant names, sorted.
func (c *Catalog) Tenants() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tenants))
	for t := range c.tenants {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DrainAll drains every shard in deterministic (tenant, collection)
// order and closes the catalog; later Attach calls fail. Used at
// daemon shutdown.
func (c *Catalog) DrainAll(ctx context.Context) error {
	c.draining.Store(true)
	c.mu.Lock()
	c.closed = true
	shards := make([]*Shard, 0, 8)
	for _, ts := range c.tenants {
		for _, sh := range ts.shards {
			shards = append(shards, sh)
		}
	}
	c.tenants = make(map[string]*tenantState)
	c.mu.Unlock()
	sortShards(shards)
	var firstErr error
	for _, sh := range shards {
		sh.draining.Store(true)
		if err := sh.svc.Drain(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("catalog: draining %s: %w", sh.key, err)
		}
		sh.svc.Close()
	}
	return firstErr
}

// AttachManifest attaches every shard in the manifest, failing on the
// first error (already-attached shards stay attached).
func (c *Catalog) AttachManifest(ctx context.Context, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	for _, spec := range m.Shards {
		if _, err := c.Attach(ctx, spec); err != nil {
			return err
		}
	}
	return nil
}
