package sampling

import "xcluster/internal/wire"

// Encode writes the summary: population size, seed, and the sorted
// sample delta-encoded.
func (s *Summary) Encode(w *wire.Writer) {
	w.Float(s.total)
	w.Int(int(s.seed))
	w.Uint(uint64(len(s.sample)))
	prev := 0
	for _, v := range s.sample {
		w.Int(v - prev)
		prev = v
	}
}

// Decode reads a summary written by Encode.
func Decode(r *wire.Reader) *Summary {
	s := &Summary{total: r.Float(), seed: int64(r.Int())}
	n := int(r.Uint())
	prev := 0
	for i := 0; i < n && r.Err() == nil; i++ {
		v := prev + r.Int()
		s.sample = append(s.sample, v)
		prev = v
	}
	return s
}
