package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func TestSmallPopulationIsExact(t *testing.T) {
	values := []int{5, 1, 9, 1, 7}
	s := Build(values, 10, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 5 || s.Total() != 5 {
		t.Fatalf("size=%d total=%g", s.Size(), s.Total())
	}
	if got := s.EstimateRange(1, 1); got != 2 {
		t.Fatalf("EstimateRange(1,1) = %g", got)
	}
	if got := s.EstimateRange(0, 10); got != 5 {
		t.Fatalf("full range = %g", got)
	}
	if got := s.EstimateRange(2, 4); got != 0 {
		t.Fatalf("empty range = %g", got)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	values := make([]int, 5000)
	for i := range values {
		values[i] = rng.Intn(1000)
	}
	a := Build(values, 100, 42)
	b := Build(values, 100, 42)
	if a.Size() != b.Size() {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.sample {
		if a.sample[i] != b.sample[i] {
			t.Fatal("same seed, different samples")
		}
	}
}

func TestSamplingAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	values := make([]int, 20000)
	for i := range values {
		values[i] = rng.Intn(100) // uniform over [0,100)
	}
	s := Build(values, 500, 7)
	if s.Size() != 500 {
		t.Fatalf("Size = %d", s.Size())
	}
	// Range [0,49] holds ~50% of the population; a 500-sample estimate
	// should land within a few standard errors (~±7%).
	got := s.Selectivity(0, 49)
	if math.Abs(got-0.5) > 0.1 {
		t.Fatalf("selectivity = %g, want ~0.5", got)
	}
	// Scaling: estimates are in population units.
	if est := s.EstimateRange(0, 99); math.Abs(est-20000) > 1e-9 {
		t.Fatalf("full-range estimate = %g", est)
	}
}

func TestCompress(t *testing.T) {
	values := make([]int, 1000)
	for i := range values {
		values[i] = i
	}
	s := Build(values, 200, 3)
	c, removed := s.Compress(150)
	if removed != 150 || c.Size() != 50 {
		t.Fatalf("removed=%d size=%d", removed, c.Size())
	}
	if s.Size() != 200 {
		t.Fatal("Compress mutated receiver")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Never compresses to zero.
	c2, _ := s.Compress(1 << 20)
	if c2.Size() < 1 {
		t.Fatal("compressed away the whole sample")
	}
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	va := make([]int, 5000)
	vb := make([]int, 5000)
	for i := range va {
		va[i] = rng.Intn(50) // low values
		vb[i] = 50 + rng.Intn(50)
	}
	a := Build(va, 200, 1)
	b := Build(vb, 200, 2)
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 10000 {
		t.Fatalf("Total = %g", m.Total())
	}
	// Each half holds ~50% of the merged mass.
	if got := m.Selectivity(0, 49); math.Abs(got-0.5) > 0.12 {
		t.Fatalf("low-half selectivity = %g", got)
	}
	if got := Merge(a, nil); got.Total() != a.Total() {
		t.Fatal("Merge(a,nil) broken")
	}
}

func TestEmpty(t *testing.T) {
	s := Build(nil, 10, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.EstimateRange(0, 10) != 0 || s.Selectivity(0, 10) != 0 {
		t.Fatal("empty summary not zero")
	}
	if _, _, ok := s.Bounds(); ok {
		t.Fatal("empty summary has bounds")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := Build([]int{3, 1, 2}, 10, 1)
	s.sample[0], s.sample[2] = s.sample[2], s.sample[0] // unsort
	if err := s.Validate(); err == nil {
		t.Fatal("unsorted sample accepted")
	}
	s2 := Build([]int{1, 2}, 10, 1)
	s2.total = 1 // sample larger than population
	if err := s2.Validate(); err == nil {
		t.Fatal("oversized sample accepted")
	}
}
