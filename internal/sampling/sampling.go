// Package sampling implements random-sample synopses of numeric value
// distributions — the third NUMERIC summarization tool the paper cites
// (Lipton, Naughton, Schneider and Seshadri's sampling estimators).
// A fixed-size uniform reservoir represents the distribution; a range
// query is answered by the sample fraction scaled to the population.
// Sampling is seeded and deterministic so synopsis construction is
// reproducible.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"
)

// ValueBytes is the storage charged per retained sample value.
const ValueBytes = 4

// Summary is a uniform random sample of a numeric value collection.
type Summary struct {
	total  float64 // population size
	sample []int   // sorted sample
	seed   int64
}

// Build draws a deterministic uniform sample of size at most k from
// values.
func Build(values []int, k int, seed int64) *Summary {
	s := &Summary{total: float64(len(values)), seed: seed}
	if k <= 0 || len(values) == 0 {
		return s
	}
	if len(values) <= k {
		s.sample = append([]int(nil), values...)
	} else {
		// Vitter's reservoir algorithm R.
		rng := rand.New(rand.NewSource(seed))
		s.sample = append([]int(nil), values[:k]...)
		for i := k; i < len(values); i++ {
			if j := rng.Intn(i + 1); j < k {
				s.sample[j] = values[i]
			}
		}
	}
	sort.Ints(s.sample)
	return s
}

// Total returns the population size.
func (s *Summary) Total() float64 { return s.total }

// Size returns the number of retained sample values.
func (s *Summary) Size() int { return len(s.sample) }

// SizeBytes returns the storage charge.
func (s *Summary) SizeBytes() int { return len(s.sample) * ValueBytes }

// Bounds returns the sampled value range.
func (s *Summary) Bounds() (int, int, bool) {
	if len(s.sample) == 0 {
		return 0, 0, false
	}
	return s.sample[0], s.sample[len(s.sample)-1], true
}

// EstimateRange returns the estimated number of population values in
// [lo, hi]: the sample fraction scaled by the population size.
func (s *Summary) EstimateRange(lo, hi int) float64 {
	if len(s.sample) == 0 || hi < lo {
		return 0
	}
	first := sort.SearchInts(s.sample, lo)
	last := sort.SearchInts(s.sample, hi+1)
	return float64(last-first) / float64(len(s.sample)) * s.total
}

// Selectivity returns the estimated fraction of values in [lo, hi].
func (s *Summary) Selectivity(lo, hi int) float64 {
	if s.total == 0 {
		return 0
	}
	return s.EstimateRange(lo, hi) / s.total
}

// Compress returns a copy with b fewer sample values (a deterministic
// uniform sub-sample) and the count actually removed.
func (s *Summary) Compress(b int) (*Summary, int) {
	if b <= 0 || len(s.sample) <= 1 {
		return s, 0
	}
	keep := len(s.sample) - b
	if keep < 1 {
		keep = 1
		b = len(s.sample) - 1
	}
	out := &Summary{total: s.total, seed: s.seed + 1}
	rng := rand.New(rand.NewSource(out.seed))
	perm := rng.Perm(len(s.sample))[:keep]
	sort.Ints(perm)
	out.sample = make([]int, keep)
	for i, idx := range perm {
		out.sample[i] = s.sample[idx]
	}
	sort.Ints(out.sample)
	return out, b
}

// Merge fuses two sample summaries: a weighted sub-sample of the union
// whose size is the larger of the two inputs.
func Merge(a, b *Summary) *Summary {
	if a == nil || a.total == 0 {
		return b.clone()
	}
	if b == nil || b.total == 0 {
		return a.clone()
	}
	k := max(len(a.sample), len(b.sample))
	out := &Summary{total: a.total + b.total, seed: a.seed ^ (b.seed << 1)}
	// Weighted sampling: each input contributes proportionally to its
	// population share; deterministic via the combined seed.
	rng := rand.New(rand.NewSource(out.seed))
	fracA := a.total / out.total
	for i := 0; i < k; i++ {
		if rng.Float64() < fracA {
			out.sample = append(out.sample, a.sample[rng.Intn(len(a.sample))])
		} else {
			out.sample = append(out.sample, b.sample[rng.Intn(len(b.sample))])
		}
	}
	sort.Ints(out.sample)
	return out
}

func (s *Summary) clone() *Summary {
	if s == nil {
		return &Summary{}
	}
	out := &Summary{total: s.total, seed: s.seed, sample: append([]int(nil), s.sample...)}
	return out
}

// Validate checks internal invariants.
func (s *Summary) Validate() error {
	if s.total < 0 {
		return fmt.Errorf("sampling: negative total %g", s.total)
	}
	if float64(len(s.sample)) > s.total {
		return fmt.Errorf("sampling: sample %d larger than population %g", len(s.sample), s.total)
	}
	if !sort.IntsAreSorted(s.sample) {
		return fmt.Errorf("sampling: sample not sorted")
	}
	return nil
}
