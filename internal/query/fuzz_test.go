package query

import (
	"testing"

	"xcluster/internal/xmltree"
)

// FuzzParse checks that the query parser never panics, and that anything
// it accepts survives a String() → Parse round trip with the same
// structure (variable count and predicate kinds).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"//paper/title",
		"//paper[year>2000][abstract ftcontains(synopsis,xml)]/title[contains(Tree)]",
		"/site/regions/region/item[quantity>5]/name",
		"//*[.//profile/age>=30]/name",
		"//a[ftsim(2,x,y,z)]",
		"//paper[abstract ftsim(1,xml)]/title",
		"//y[range(3,7)]",
		"//a[contains(()]",
		"[[[",
		"//",
		"//a[",
		"//a]b",
		"//a[./b[./c[./d]]]",
		"//a[b>1][c<2][d=3]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted queries render and re-parse to the same shape.
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-parse of %q failed: %v", input, rendered, err)
		}
		if q.Vars() != q2.Vars() {
			t.Fatalf("round trip changed variable count: %d vs %d (%q -> %q)",
				q.Vars(), q2.Vars(), input, rendered)
		}
		k1, k2 := q.PredTypes(), q2.PredTypes()
		for k := range k1 {
			if !k2[k] {
				t.Fatalf("round trip lost predicate kind %v (%q -> %q)", k, input, rendered)
			}
		}
	})
}

// FuzzTokenizeAndEval pairs arbitrary parsed queries with a small fixed
// document: evaluation must terminate and return a non-negative finite
// count.
func FuzzEval(f *testing.F) {
	seeds := []string{"//a", "//a/b", "//a[.//b]", "/root//b[./a]"}
	for _, s := range seeds {
		f.Add(s)
	}
	tr := buildFuzzDoc()
	ev := NewEvaluator(tr)
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		got := ev.Selectivity(q)
		if got < 0 || got != got { // negative or NaN
			t.Fatalf("Selectivity(%q) = %v", input, got)
		}
	})
}

// buildFuzzDoc builds the small nested document the eval fuzzer runs
// against.
func buildFuzzDoc() *xmltree.Tree {
	b := xmltree.NewBuilder(nil)
	b.Open("root")
	b.Open("a")
	b.Open("b")
	b.Empty("a")
	b.Numeric("n", 5)
	b.Close()
	b.String("s", "hello world")
	b.Close()
	b.Open("b")
	b.Text("t", "alpha beta gamma")
	b.Close()
	b.Close()
	return b.Tree()
}
