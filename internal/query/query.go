// Package query implements the twig-query model of the paper: node- and
// edge-labeled query trees whose edges carry XPath expressions over the
// child and descendant axes (with wildcards) and whose nodes carry value
// predicates on NUMERIC, STRING, or TEXT element content.
//
// The package provides a parser for a practical XPath fragment, a
// programmatic builder, and an exact evaluation engine that counts binding
// tuples over an xmltree.Tree — the ground truth against which synopsis
// estimates are scored in every experiment.
//
// Following Figure 2 of the paper, bracketed branches that name a relative
// path (e.g. //paper[year>2000]) become query variables of their own: the
// selectivity of a twig is the number of assignments of document elements
// to all query variables that satisfy every structural and value
// constraint.
package query

import (
	"fmt"
	"strings"
)

// Axis is an XPath navigation axis.
type Axis uint8

const (
	// Child is the XPath child axis ("/").
	Child Axis = iota
	// Descendant is the XPath descendant axis ("//").
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Wildcard is the label that matches any element tag.
const Wildcard = "*"

// Step is one navigation step of an edge path: an axis plus a label test.
type Step struct {
	Axis  Axis
	Label string
}

func (s Step) String() string { return s.Axis.String() + s.Label }

// Matches reports whether the step's label test accepts tag.
func (s Step) Matches(tag string) bool {
	return s.Label == Wildcard || s.Label == tag
}

// Node is a query variable. Steps is the edge path edge-path(parent, this)
// from the parent variable; the element bound to this variable is the one
// reached by the final step. Pred, when non-nil, constrains the bound
// element's value.
type Node struct {
	Steps    []Step
	Pred     Pred
	Children []*Node
}

// Query is a twig query. Its implicit root variable q0 is always bound to
// the document root (as in the paper); Roots are q0's child variables.
type Query struct {
	Roots []*Node
}

// Vars returns the number of query variables (excluding the implicit q0).
func (q *Query) Vars() int {
	n := 0
	var walk func(*Node)
	walk = func(v *Node) {
		n++
		for _, c := range v.Children {
			walk(c)
		}
	}
	for _, r := range q.Roots {
		walk(r)
	}
	return n
}

// HasPred reports whether any variable carries a value predicate.
func (q *Query) HasPred() bool {
	found := false
	var walk func(*Node)
	walk = func(v *Node) {
		if v.Pred != nil {
			found = true
		}
		for _, c := range v.Children {
			walk(c)
		}
	}
	for _, r := range q.Roots {
		walk(r)
	}
	return found
}

// PredTypes returns the set of predicate kinds appearing in the query.
func (q *Query) PredTypes() map[PredKind]bool {
	kinds := make(map[PredKind]bool)
	var walk func(*Node)
	walk = func(v *Node) {
		if v.Pred != nil {
			kinds[v.Pred.Kind()] = true
		}
		for _, c := range v.Children {
			walk(c)
		}
	}
	for _, r := range q.Roots {
		walk(r)
	}
	return kinds
}

// String renders the query back into the parser's syntax. Multi-root
// queries render each root path as a bracketed branch of an implicit "/".
func (q *Query) String() string {
	var sb strings.Builder
	for i, r := range q.Roots {
		if i == 0 {
			sb.WriteString(nodeString(r, true))
		} else {
			sb.WriteString(fmt.Sprintf("[%s]", nodeString(r, false)))
		}
	}
	return sb.String()
}

func nodeString(v *Node, topLevel bool) string {
	var sb strings.Builder
	for _, s := range v.Steps {
		sb.WriteString(s.String())
	}
	if v.Pred != nil {
		sb.WriteString("[" + v.Pred.String() + "]")
	}
	// Every child variable renders as a bracketed branch: brackets are
	// what create variable boundaries in the grammar, so an unbracketed
	// continuation would re-parse as part of this variable's edge path
	// (collapsing the twig into a chain).
	for _, c := range v.Children {
		sb.WriteString("[" + nodeString(c, false) + "]")
	}
	return sb.String()
}
