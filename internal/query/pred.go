package query

import (
	"fmt"
	"strings"

	"xcluster/internal/xmltree"
)

// PredKind identifies the class of a value predicate, matching the three
// value types of the data model.
type PredKind uint8

const (
	// KindRange is a NUMERIC range predicate [l,h].
	KindRange PredKind = iota
	// KindContains is a STRING substring predicate contains(qs).
	KindContains
	// KindFTContains is a TEXT keyword predicate ftcontains(t1..tk).
	KindFTContains
	// KindFTSim is a TEXT similarity predicate ftsim(min, t1..tk): at
	// least min of the listed terms must be present.
	KindFTSim

	// numPredKinds is the sentinel one past the last kind; it keeps the
	// exhaustiveness test honest when a kind is added.
	numPredKinds
)

func (k PredKind) String() string {
	switch k {
	case KindRange:
		return "numeric"
	case KindContains:
		return "string"
	case KindFTContains:
		return "text"
	case KindFTSim:
		return "text-sim"
	default:
		return fmt.Sprintf("PredKind(%d)", uint8(k))
	}
}

// ValueType returns the element value type a predicate kind applies to
// and whether the kind is known. Estimation uses it to reject clusters
// whose value type cannot satisfy the predicate; keeping the mapping
// here (next to the kind list) means a new kind cannot silently fall
// through a copy of this switch elsewhere.
func (k PredKind) ValueType() (xmltree.ValueType, bool) {
	switch k {
	case KindRange:
		return xmltree.TypeNumeric, true
	case KindContains:
		return xmltree.TypeString, true
	case KindFTContains, KindFTSim:
		return xmltree.TypeText, true
	default:
		return 0, false
	}
}

// Pred is a value predicate attached to a query variable. Match evaluates
// the predicate against the value of a document element.
type Pred interface {
	Kind() PredKind
	Match(t *xmltree.Tree, n *xmltree.Node) bool
	String() string
}

// Range selects NUMERIC values v with Lo <= v <= Hi.
type Range struct {
	Lo, Hi int
}

// Kind implements Pred.
func (Range) Kind() PredKind { return KindRange }

// Match implements Pred.
func (p Range) Match(_ *xmltree.Tree, n *xmltree.Node) bool {
	return n.Type == xmltree.TypeNumeric && n.Num >= p.Lo && n.Num <= p.Hi
}

func (p Range) String() string { return fmt.Sprintf("range(%d,%d)", p.Lo, p.Hi) }

// Contains selects STRING values that contain Substr (like SQL LIKE
// '%Substr%').
type Contains struct {
	Substr string
}

// Kind implements Pred.
func (Contains) Kind() PredKind { return KindContains }

// Match implements Pred.
func (p Contains) Match(_ *xmltree.Tree, n *xmltree.Node) bool {
	return n.Type == xmltree.TypeString && strings.Contains(n.Str, p.Substr)
}

func (p Contains) String() string { return fmt.Sprintf("contains(%s)", p.Substr) }

// FTContains selects TEXT values whose Boolean term vector contains every
// listed term (exact term matches in the set-theoretic IR model).
type FTContains struct {
	Terms []string
}

// Kind implements Pred.
func (FTContains) Kind() PredKind { return KindFTContains }

// Match implements Pred.
func (p FTContains) Match(t *xmltree.Tree, n *xmltree.Node) bool {
	if n.Type != xmltree.TypeText {
		return false
	}
	for _, term := range p.Terms {
		id, ok := t.Dict.ID(term)
		if !ok || !n.HasTerm(id) {
			return false
		}
	}
	return true
}

func (p FTContains) String() string {
	return fmt.Sprintf("ftcontains(%s)", strings.Join(p.Terms, ","))
}

// FTSim selects TEXT values whose term vector contains at least Min of
// the listed terms — the set-theoretic document-similarity predicate of
// the Boolean IR model the paper notes its techniques also handle
// (ftcontains is the special case Min = len(Terms)).
type FTSim struct {
	Terms []string
	Min   int
}

// Kind implements Pred.
func (FTSim) Kind() PredKind { return KindFTSim }

// Match implements Pred.
func (p FTSim) Match(t *xmltree.Tree, n *xmltree.Node) bool {
	if n.Type != xmltree.TypeText {
		return false
	}
	hits := 0
	for _, term := range p.Terms {
		if id, ok := t.Dict.ID(term); ok && n.HasTerm(id) {
			hits++
			if hits >= p.Min {
				return true
			}
		}
	}
	return hits >= p.Min
}

func (p FTSim) String() string {
	return fmt.Sprintf("ftsim(%d,%s)", p.Min, strings.Join(p.Terms, ","))
}
