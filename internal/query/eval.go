package query

import (
	"sort"

	"xcluster/internal/xmltree"
)

// Evaluator counts the exact selectivity of twig queries over a document:
// the number of binding tuples, i.e. assignments of document elements to
// all query variables that satisfy every structural and value constraint.
// This is the ground truth used to score synopsis estimates.
type Evaluator struct {
	tree *xmltree.Tree
}

// NewEvaluator returns an Evaluator over tree.
func NewEvaluator(tree *xmltree.Tree) *Evaluator {
	return &Evaluator{tree: tree}
}

// Selectivity returns s(Q): the exact number of binding tuples of q. The
// count is returned as float64; binding-tuple counts are exact integers up
// to 2^53, far beyond any workload in this repository.
//
// Query paths are resolved from the virtual document node above the root
// element, so both /root-label/... and //anything work as in XPath.
func (e *Evaluator) Selectivity(q *Query) float64 {
	doc := e.docNode()
	total := 1.0
	for _, r := range q.Roots {
		total *= e.tuples(r, doc)
	}
	return total
}

// docNode returns the virtual document node: an unlabeled parent of the
// root element (the binding of the implicit query variable q0).
func (e *Evaluator) docNode() *xmltree.Node {
	return &xmltree.Node{ID: -1, Children: []*xmltree.Node{e.tree.Root}}
}

// Matches returns the elements bound to a single-variable chain starting
// at the virtual document node (used by workload generation and tests).
func (e *Evaluator) Matches(steps []Step) []*xmltree.Node {
	return e.matchSteps(e.docNode(), steps)
}

// tuples returns the number of binding tuples of the query subtree rooted
// at variable v, given that v's parent variable is bound to elem.
func (e *Evaluator) tuples(v *Node, elem *xmltree.Node) float64 {
	targets := e.matchSteps(elem, v.Steps)
	total := 0.0
	for _, t := range targets {
		if v.Pred != nil && !v.Pred.Match(e.tree, t) {
			continue
		}
		prod := 1.0
		for _, c := range v.Children {
			sub := e.tuples(c, t)
			if sub == 0 {
				prod = 0
				break
			}
			prod *= sub
		}
		total += prod
	}
	return total
}

// Binding is one assignment of document elements to the query's
// variables, in preorder over the query tree.
type Binding []*xmltree.Node

// Bindings enumerates up to limit binding tuples of q (limit <= 0: all).
// The number of bindings can be huge (it is the selectivity), so callers
// should bound it; estimation never needs this, but result inspection and
// debugging do.
func (e *Evaluator) Bindings(q *Query, limit int) []Binding {
	type varInfo struct {
		node   *Node
		parent int
	}
	var infos []varInfo
	var collect func(v *Node, parent int)
	collect = func(v *Node, parent int) {
		idx := len(infos)
		infos = append(infos, varInfo{node: v, parent: parent})
		for _, c := range v.Children {
			collect(c, idx)
		}
	}
	for _, r := range q.Roots {
		collect(r, -1)
	}

	doc := e.docNode()
	var out []Binding
	assignment := make(Binding, len(infos))
	var rec func(i int) bool
	rec = func(i int) bool {
		if limit > 0 && len(out) >= limit {
			return false
		}
		if i == len(infos) {
			out = append(out, append(Binding(nil), assignment...))
			return true
		}
		info := infos[i]
		from := doc
		if info.parent >= 0 {
			from = assignment[info.parent]
		}
		for _, tgt := range e.matchSteps(from, info.node.Steps) {
			if info.node.Pred != nil && !info.node.Pred.Match(e.tree, tgt) {
				continue
			}
			assignment[i] = tgt
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// matchSteps returns the distinct elements reached from elem by the step
// sequence, in document order. Descendant steps with a concrete label
// use the tree's label index and preorder subtree intervals instead of
// walking the subtree.
func (e *Evaluator) matchSteps(elem *xmltree.Node, steps []Step) []*xmltree.Node {
	frontier := []*xmltree.Node{elem}
	for _, s := range steps {
		var next []*xmltree.Node
		seen := make(map[int]struct{})
		add := func(n *xmltree.Node) {
			if _, dup := seen[n.ID]; !dup {
				seen[n.ID] = struct{}{}
				next = append(next, n)
			}
		}
		for _, f := range frontier {
			if s.Axis == Child {
				for _, c := range f.Children {
					if s.Matches(c.Label) {
						add(c)
					}
				}
				continue
			}
			e.addDescendants(f, s, add)
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	return frontier
}

// addDescendants visits all proper descendants of n matching step s.
func (e *Evaluator) addDescendants(n *xmltree.Node, s Step, add func(*xmltree.Node)) {
	virtual := n.ID < 0 // the document node above the root
	if s.Label != Wildcard {
		ids := e.tree.LabeledIDs(s.Label)
		if virtual {
			for _, id := range ids {
				add(e.tree.Node(id))
			}
			return
		}
		end := e.tree.SubtreeEnd(n)
		// Binary search into the sorted label index for (n.ID, end].
		lo := sort.SearchInts(ids, n.ID+1)
		for i := lo; i < len(ids) && ids[i] <= end; i++ {
			add(e.tree.Node(ids[i]))
		}
		return
	}
	// Wildcard: every node in the subtree interval.
	if virtual {
		for _, d := range e.tree.Nodes() {
			add(d)
		}
		return
	}
	end := e.tree.SubtreeEnd(n)
	for id := n.ID + 1; id <= end; id++ {
		add(e.tree.Node(id))
	}
}
