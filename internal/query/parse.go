package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// MaxBound is the open upper bound used when a comparison predicate such
// as [year>2000] leaves one side of the range unspecified.
const MaxBound = 1<<31 - 1

// Parse parses a twig query from an XPath-fragment string. The supported
// grammar covers the paper's query class:
//
//	path      := step+ bracket* (path)?          chained variables
//	step      := ("/" | "//") (ident | "*")
//	bracket   := "[" (cond | branch) "]"
//	cond      := "range(" int "," int ")"
//	           | cmp int                          e.g. >2000, <=1995, =7
//	           | "contains(" chars ")"
//	           | "ftcontains(" term ("," term)* ")"
//	branch    := "."? path-with-implicit-child [cond]
//
// Examples:
//
//	//paper[year>2000][abstract ftcontains(synopsis,xml)]/title[contains(Tree)]
//	//open_auction/bidder/increase[range(10,50)]
//	//person[.//profile/age>=30]/name
//
// Following Figure 2 of the paper, every bracketed branch that names a
// path becomes a query variable; conditions without a path apply to the
// variable whose step they follow.
func Parse(s string) (*Query, error) {
	p := &parser{s: s}
	p.skipSpace()
	if !p.peekIs('/') {
		return nil, p.errf("query must start with '/' or '//'")
	}
	root, err := p.parseChain(false)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, p.errf("trailing input %q", p.s[p.pos:])
	}
	return &Query{Roots: []*Node{root}}, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseError reports a syntax error in a query string together with the
// byte offset at which parsing failed, so callers (editors, HTTP
// services) can point at the offending position instead of grepping the
// message.
type ParseError struct {
	// Input is the full query string handed to Parse.
	Input string
	// Offset is the byte offset in Input where parsing failed.
	Offset int
	// Msg describes the failure.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query: parse error at offset %d: %s", e.Offset, e.Msg)
}

type parser struct {
	s   string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Input: p.s, Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peekIs(c byte) bool {
	return p.pos < len(p.s) && p.s[p.pos] == c
}

func (p *parser) eat(c byte) bool {
	if p.peekIs(c) {
		p.pos++
		return true
	}
	return false
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.s) && isIdentRune(rune(p.s[p.pos])) {
		p.pos++
	}
	return p.s[start:p.pos]
}

func (p *parser) number() (int, error) {
	start := p.pos
	if p.peekIs('-') {
		p.pos++
	}
	for p.pos < len(p.s) && unicode.IsDigit(rune(p.s[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("expected a number")
	}
	n, err := strconv.Atoi(p.s[start:p.pos])
	if err != nil {
		return 0, p.errf("number %q out of range", p.s[start:p.pos])
	}
	return n, nil
}

// parseSteps consumes one or more steps. When implicitChild is true, a
// leading bare identifier (branch shorthand like [year>2000]) is accepted
// as a child step.
func (p *parser) parseSteps(implicitChild bool) ([]Step, error) {
	var steps []Step
	if implicitChild {
		p.eat('.') // branch shorthand: [./x], [.//x]
		if p.pos < len(p.s) && isIdentRune(rune(p.s[p.pos])) {
			steps = append(steps, Step{Axis: Child, Label: p.ident()})
		}
	}
	for p.peekIs('/') {
		p.pos++
		axis := Child
		if p.eat('/') {
			axis = Descendant
		}
		var label string
		if p.eat('*') {
			label = Wildcard
		} else {
			label = p.ident()
			if label == "" {
				return nil, p.errf("expected element name or *")
			}
		}
		steps = append(steps, Step{Axis: axis, Label: label})
	}
	if len(steps) == 0 {
		return nil, p.errf("expected a path step")
	}
	return steps, nil
}

// parseChain parses a variable chain: steps, brackets, then an optional
// continuation path that becomes a child variable.
func (p *parser) parseChain(implicitChild bool) (*Node, error) {
	steps, err := p.parseSteps(implicitChild)
	if err != nil {
		return nil, err
	}
	node := &Node{Steps: steps}

	// An inline condition may follow the path inside a branch, separated
	// by whitespace: [abstract ftcontains(synopsis,xml)].
	p.skipSpace()
	if pred, ok, err := p.tryCond(); err != nil {
		return nil, err
	} else if ok {
		node.Pred = pred
	}

	for p.peekIs('[') {
		p.pos++
		p.skipSpace()
		if pred, ok, err := p.tryCond(); err != nil {
			return nil, err
		} else if ok {
			if node.Pred != nil {
				return nil, p.errf("variable already has a value predicate")
			}
			node.Pred = pred
		} else {
			branch, err := p.parseChain(true)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, branch)
		}
		p.skipSpace()
		if !p.eat(']') {
			return nil, p.errf("expected ']'")
		}
	}

	if p.peekIs('/') {
		child, err := p.parseChain(false)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	return node, nil
}

// tryCond attempts to parse a value condition at the current position. It
// reports (nil, false, nil) when the input is not a condition.
func (p *parser) tryCond() (Pred, bool, error) {
	rest := p.s[p.pos:]
	switch {
	case strings.HasPrefix(rest, "range("):
		p.pos += len("range(")
		lo, err := p.number()
		if err != nil {
			return nil, false, err
		}
		if !p.eat(',') {
			return nil, false, p.errf("expected ',' in range()")
		}
		p.skipSpace()
		hi, err := p.number()
		if err != nil {
			return nil, false, err
		}
		if !p.eat(')') {
			return nil, false, p.errf("expected ')' after range")
		}
		if lo > hi {
			return nil, false, p.errf("empty range [%d,%d]", lo, hi)
		}
		return Range{Lo: lo, Hi: hi}, true, nil

	case strings.HasPrefix(rest, "contains("):
		p.pos += len("contains(")
		end := strings.IndexByte(p.s[p.pos:], ')')
		if end < 0 {
			return nil, false, p.errf("unterminated contains(")
		}
		arg := p.s[p.pos : p.pos+end]
		p.pos += end + 1
		if arg == "" {
			return nil, false, p.errf("contains() needs a substring")
		}
		return Contains{Substr: arg}, true, nil

	case strings.HasPrefix(rest, "ftcontains("):
		p.pos += len("ftcontains(")
		end := strings.IndexByte(p.s[p.pos:], ')')
		if end < 0 {
			return nil, false, p.errf("unterminated ftcontains(")
		}
		arg := p.s[p.pos : p.pos+end]
		p.pos += end + 1
		var terms []string
		for _, t := range strings.Split(arg, ",") {
			t = strings.TrimSpace(strings.ToLower(t))
			if t != "" {
				terms = append(terms, t)
			}
		}
		if len(terms) == 0 {
			return nil, false, p.errf("ftcontains() needs at least one term")
		}
		return FTContains{Terms: terms}, true, nil

	case strings.HasPrefix(rest, "ftsim("):
		p.pos += len("ftsim(")
		minMatch, err := p.number()
		if err != nil {
			return nil, false, err
		}
		if !p.eat(',') {
			return nil, false, p.errf("expected ',' after ftsim threshold")
		}
		end := strings.IndexByte(p.s[p.pos:], ')')
		if end < 0 {
			return nil, false, p.errf("unterminated ftsim(")
		}
		arg := p.s[p.pos : p.pos+end]
		p.pos += end + 1
		var terms []string
		for _, t := range strings.Split(arg, ",") {
			t = strings.TrimSpace(strings.ToLower(t))
			if t != "" {
				terms = append(terms, t)
			}
		}
		if len(terms) == 0 {
			return nil, false, p.errf("ftsim() needs at least one term")
		}
		if minMatch < 1 || minMatch > len(terms) {
			return nil, false, p.errf("ftsim threshold %d out of [1,%d]", minMatch, len(terms))
		}
		return FTSim{Terms: terms, Min: minMatch}, true, nil

	case strings.HasPrefix(rest, ">="):
		p.pos += 2
		n, err := p.number()
		if err != nil {
			return nil, false, err
		}
		return Range{Lo: n, Hi: MaxBound}, true, nil
	case strings.HasPrefix(rest, "<="):
		p.pos += 2
		n, err := p.number()
		if err != nil {
			return nil, false, err
		}
		return Range{Lo: -MaxBound, Hi: n}, true, nil
	case strings.HasPrefix(rest, ">"):
		p.pos++
		n, err := p.number()
		if err != nil {
			return nil, false, err
		}
		return Range{Lo: n + 1, Hi: MaxBound}, true, nil
	case strings.HasPrefix(rest, "<"):
		p.pos++
		n, err := p.number()
		if err != nil {
			return nil, false, err
		}
		return Range{Lo: -MaxBound, Hi: n - 1}, true, nil
	case strings.HasPrefix(rest, "="):
		p.pos++
		n, err := p.number()
		if err != nil {
			return nil, false, err
		}
		return Range{Lo: n, Hi: n}, true, nil
	}
	return nil, false, nil
}
