package query

import (
	"strings"
	"testing"

	"xcluster/internal/xmltree"
)

// figure1 builds the document of Figure 1 in the paper: one author with
// two papers (years 2000 and 2002) plus keywords/abstract text, and a
// second author with one book (year 2002) with a foreword.
func figure1(t testing.TB) *xmltree.Tree {
	t.Helper()
	b := xmltree.NewBuilder(nil)
	b.Open("dblp")
	b.Open("author")
	b.String("name", "First Author")
	b.Open("paper")
	b.Numeric("year", 2000)
	b.String("title", "Counting Twig Matches in a Tree")
	b.Text("keywords", "xml summary synopsis structure estimation")
	b.Close()
	b.Open("paper")
	b.Numeric("year", 2002)
	b.String("title", "Holistic Processing")
	b.Text("abstract", "xml employs a tree structured data model where synopsis structures help")
	b.Close()
	b.Close()
	b.Open("author")
	b.String("name", "Second Author")
	b.Open("book")
	b.Numeric("year", 2002)
	b.String("title", "Database Systems The Complete Book")
	b.Text("foreword", "database systems have become an essential part of modern computing")
	b.Close()
	b.Close()
	b.Close()
	return b.Tree()
}

func TestParseSimplePath(t *testing.T) {
	q, err := Parse("//paper/title")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Vars() != 1 {
		t.Fatalf("Vars = %d, want 1 (no predicates, single chain)", q.Vars())
	}
	r := q.Roots[0]
	if len(r.Steps) != 2 {
		t.Fatalf("steps = %v", r.Steps)
	}
	if r.Steps[0] != (Step{Descendant, "paper"}) || r.Steps[1] != (Step{Child, "title"}) {
		t.Fatalf("steps = %v", r.Steps)
	}
}

func TestParsePaperIntroQuery(t *testing.T) {
	// The introduction's motivating query, in this parser's syntax.
	q, err := Parse("//paper[year>2000][abstract ftcontains(synopsis,xml)]/title[contains(Tree)]")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Variables: paper, year-branch, abstract-branch, title.
	if q.Vars() != 4 {
		t.Fatalf("Vars = %d, want 4", q.Vars())
	}
	paper := q.Roots[0]
	if len(paper.Children) != 3 {
		t.Fatalf("paper children = %d, want 3", len(paper.Children))
	}
	year := paper.Children[0]
	if r, ok := year.Pred.(Range); !ok || r.Lo != 2001 || r.Hi != MaxBound {
		t.Fatalf("year pred = %v", year.Pred)
	}
	abs := paper.Children[1]
	if ft, ok := abs.Pred.(FTContains); !ok || len(ft.Terms) != 2 {
		t.Fatalf("abstract pred = %v", abs.Pred)
	}
	title := paper.Children[2]
	if c, ok := title.Pred.(Contains); !ok || c.Substr != "Tree" {
		t.Fatalf("title pred = %v", title.Pred)
	}
}

func TestParseComparisons(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
	}{
		{"//y[>10]", 11, MaxBound},
		{"//y[>=10]", 10, MaxBound},
		{"//y[<10]", -MaxBound, 9},
		{"//y[<=10]", -MaxBound, 10},
		{"//y[=10]", 10, 10},
		{"//y[range(3,7)]", 3, 7},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		r, ok := q.Roots[0].Pred.(Range)
		if !ok || r.Lo != c.lo || r.Hi != c.hi {
			t.Errorf("%q => %+v, want [%d,%d]", c.in, q.Roots[0].Pred, c.lo, c.hi)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"paper/title",
		"//paper[",
		"//paper[range(5,2)]",
		"//paper[contains()]",
		"//paper[ftcontains()]",
		"//paper]extra",
		"///x",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", s)
		}
	}
}

func TestParseWildcardAndDeepBranch(t *testing.T) {
	q, err := Parse("//*[.//profile/age>=30]/name")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	star := q.Roots[0]
	if star.Steps[0].Label != Wildcard {
		t.Fatalf("steps = %v", star.Steps)
	}
	branch := star.Children[0]
	if len(branch.Steps) != 2 || branch.Steps[0] != (Step{Descendant, "profile"}) {
		t.Fatalf("branch steps = %v", branch.Steps)
	}
	if _, ok := branch.Pred.(Range); !ok {
		t.Fatalf("branch pred = %v", branch.Pred)
	}
}

func TestExactEvalStructural(t *testing.T) {
	tr := figure1(t)
	ev := NewEvaluator(tr)
	cases := []struct {
		q    string
		want float64
	}{
		{"//paper", 2},
		{"//author", 2},
		{"//paper/title", 2},
		{"//author/paper/year", 2},
		{"//book/year", 1},
		{"//year", 3},
		{"/dblp/author", 2},
		{"/dblp/*", 2},
		{"//*", 17}, // every element, root included (XPath semantics)
		{"//missing", 0},
		{"/dblp//title", 3},
	}
	for _, c := range cases {
		got := ev.Selectivity(MustParse(c.q))
		if got != c.want {
			t.Errorf("s(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestExactEvalValuePreds(t *testing.T) {
	tr := figure1(t)
	ev := NewEvaluator(tr)
	cases := []struct {
		q    string
		want float64
	}{
		{"//paper[year>2000]", 1},
		{"//paper[year>=2000]", 2},
		{"//paper/year[range(2000,2001)]", 1},
		{"//title[contains(Tree)]", 1},
		{"//title[contains(Book)]", 1},
		{"//title[contains(zzz)]", 0},
		{"//paper[abstract ftcontains(synopsis,xml)]", 1},
		{"//paper[keywords ftcontains(xml)]", 1},
		{"//book[foreword ftcontains(database,systems)]", 1},
		{"//book[foreword ftcontains(nonexistent)]", 0},
		// Intro query: papers after 2000 whose abstract mentions both
		// terms, and whose title contains "Tree" — paper 2 has the right
		// abstract but its title lacks "Tree", so zero tuples.
		{"//paper[year>2000][abstract ftcontains(synopsis,xml)]/title[contains(Tree)]", 0},
		{"//paper[year>2000][abstract ftcontains(synopsis,xml)]/title", 1},
	}
	for _, c := range cases {
		got := ev.Selectivity(MustParse(c.q))
		if got != c.want {
			t.Errorf("s(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBindingTupleMultiplication(t *testing.T) {
	// An author with two papers and two interests: //author[paper][interest]
	// binds (author, paper, interest) triples => 2*2 = 4 tuples.
	b := xmltree.NewBuilder(nil)
	b.Open("root")
	b.Open("author")
	b.Empty("paper")
	b.Empty("paper")
	b.Empty("interest")
	b.Empty("interest")
	b.Close()
	b.Close()
	tr := b.Tree()
	ev := NewEvaluator(tr)
	if got := ev.Selectivity(MustParse("//author[paper][interest]")); got != 4 {
		t.Fatalf("tuples = %v, want 4", got)
	}
	if got := ev.Selectivity(MustParse("//author[paper]")); got != 2 {
		t.Fatalf("tuples = %v, want 2", got)
	}
}

func TestDescendantDedup(t *testing.T) {
	// //a//b from a nested a/a/b: b is a descendant of both a elements,
	// but within one binding of the intermediate (non-variable) step the
	// target set is deduplicated; with //a as part of the same edge path
	// each distinct b counts once per edge evaluation.
	b := xmltree.NewBuilder(nil)
	b.Open("root")
	b.Open("a")
	b.Open("a")
	b.Empty("b")
	b.Close()
	b.Close()
	b.Close()
	tr := b.Tree()
	ev := NewEvaluator(tr)
	// Single variable with steps [//a, //b]: the b element must be
	// counted once, not once per a ancestor.
	if got := ev.Selectivity(MustParse("//a//b")); got != 1 {
		t.Fatalf("s(//a//b) = %v, want 1", got)
	}
	// Two variables: (a, b) assignments — both a elements pair with b.
	if got := ev.Selectivity(MustParse("//a[.//b]")); got != 2 {
		t.Fatalf("s(//a[.//b]) = %v, want 2", got)
	}
}

func TestQueryString(t *testing.T) {
	in := "//paper[year>2000]/title"
	q := MustParse(in)
	// Round-trip through String and Parse preserves semantics.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	tr := figure1(t)
	ev := NewEvaluator(tr)
	if a, b := ev.Selectivity(q), ev.Selectivity(q2); a != b {
		t.Fatalf("selectivity changed across String round-trip: %v vs %v", a, b)
	}
}

func TestPredTypes(t *testing.T) {
	q := MustParse("//paper[year>2000][abstract ftcontains(x)]/title[contains(T)]")
	kinds := q.PredTypes()
	if !kinds[KindRange] || !kinds[KindContains] || !kinds[KindFTContains] {
		t.Fatalf("kinds = %v", kinds)
	}
	if MustParse("//paper/title").HasPred() {
		t.Fatal("structural query reports predicates")
	}
}

func TestFTSimParseAndMatch(t *testing.T) {
	tr := figure1(t)
	ev := NewEvaluator(tr)
	cases := []struct {
		q    string
		want float64
	}{
		// keywords: {xml, summary, synopsis, structure, estimation};
		// abstract mentions xml+synopsis+structured...; foreword neither.
		{"//keywords[ftsim(1,xml,quantum)]", 1},
		{"//keywords[ftsim(2,xml,quantum)]", 0},
		{"//keywords[ftsim(2,xml,summary,quantum)]", 1},
		{"//paper[keywords ftsim(1,synopsis,relational)]", 1},
		{"//foreword[ftsim(1,xml,synopsis)]", 0},
	}
	for _, c := range cases {
		got := ev.Selectivity(MustParse(c.q))
		if got != c.want {
			t.Errorf("s(%s) = %v, want %v", c.q, got, c.want)
		}
	}
	// ftcontains(t1..tk) == ftsim(k, t1..tk).
	a := ev.Selectivity(MustParse("//abstract[ftcontains(xml,synopsis)]"))
	b := ev.Selectivity(MustParse("//abstract[ftsim(2,xml,synopsis)]"))
	if a != b {
		t.Fatalf("ftcontains %v != ftsim-all %v", a, b)
	}
}

func TestFTSimParseErrors(t *testing.T) {
	for _, s := range []string{
		"//a[ftsim(0,x)]",
		"//a[ftsim(3,x,y)]",
		"//a[ftsim(1,)]",
		"//a[ftsim(x,y)]",
		"//a[ftsim(1,x]",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted invalid ftsim", s)
		}
	}
}

// naiveMatch recomputes step matching by brute-force subtree walks, as a
// reference for the indexed implementation.
func naiveMatch(tr *xmltree.Tree, root *xmltree.Node, steps []Step) map[int]bool {
	frontier := map[int]bool{root.ID: true}
	byID := func(id int) *xmltree.Node {
		if id < 0 {
			return root
		}
		return tr.Node(id)
	}
	for _, s := range steps {
		next := map[int]bool{}
		for id := range frontier {
			f := byID(id)
			if s.Axis == Child {
				for _, c := range f.Children {
					if s.Matches(c.Label) {
						next[c.ID] = true
					}
				}
				continue
			}
			var walk func(n *xmltree.Node)
			walk = func(n *xmltree.Node) {
				for _, c := range n.Children {
					if s.Matches(c.Label) {
						next[c.ID] = true
					}
					walk(c)
				}
			}
			walk(f)
		}
		frontier = next
	}
	return frontier
}

func TestIndexedDescendantsMatchNaive(t *testing.T) {
	tr := figure1(t)
	ev := NewEvaluator(tr)
	stepSets := [][]Step{
		{{Descendant, "paper"}},
		{{Descendant, "year"}},
		{{Descendant, "*"}},
		{{Descendant, "author"}, {Descendant, "year"}},
		{{Descendant, "author"}, {Child, "paper"}, {Descendant, "*"}},
		{{Child, "author"}, {Descendant, "title"}},
		{{Descendant, "missing"}},
	}
	doc := &xmltree.Node{ID: -1, Children: []*xmltree.Node{tr.Root}}
	for _, steps := range stepSets {
		got := ev.matchSteps(doc, steps)
		want := naiveMatch(tr, doc, steps)
		if len(got) != len(want) {
			t.Fatalf("steps %v: %d matches, want %d", steps, len(got), len(want))
		}
		for _, n := range got {
			if !want[n.ID] {
				t.Fatalf("steps %v: unexpected match %d", steps, n.ID)
			}
		}
	}
}

func TestBindingsMatchSelectivity(t *testing.T) {
	tr := figure1(t)
	ev := NewEvaluator(tr)
	for _, qs := range []string{
		"//paper",
		"//paper[year>2000]",
		"//author[paper][./name]",
		"//paper[year>=2000]/title",
		"//missing",
	} {
		q := MustParse(qs)
		bindings := ev.Bindings(q, 0)
		if got, want := float64(len(bindings)), ev.Selectivity(q); got != want {
			t.Errorf("%s: %g bindings, selectivity %g", qs, got, want)
		}
		// Every binding satisfies its predicates and has the right arity.
		for _, b := range bindings {
			if len(b) != q.Vars() {
				t.Fatalf("%s: binding arity %d, vars %d", qs, len(b), q.Vars())
			}
			for _, n := range b {
				if n == nil {
					t.Fatalf("%s: nil element in binding", qs)
				}
			}
		}
	}
}

func TestBindingsLimit(t *testing.T) {
	tr := figure1(t)
	ev := NewEvaluator(tr)
	q := MustParse("//year")
	all := ev.Bindings(q, 0)
	if len(all) != 3 {
		t.Fatalf("bindings = %d, want 3", len(all))
	}
	capped := ev.Bindings(q, 2)
	if len(capped) != 2 {
		t.Fatalf("capped bindings = %d, want 2", len(capped))
	}
}

func TestPredKindString(t *testing.T) {
	cases := map[PredKind]string{
		KindRange:      "numeric",
		KindContains:   "string",
		KindFTContains: "text",
		KindFTSim:      "text-sim",
		PredKind(9):    "PredKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// allPreds lists one value of every Pred implementation in this package.
// Adding a Pred type without extending this list fails
// TestPredKindExhaustive's count check.
var allPreds = []Pred{
	Range{Lo: 1, Hi: 2},
	Contains{Substr: "x"},
	FTContains{Terms: []string{"x"}},
	FTSim{Terms: []string{"x", "y"}, Min: 1},
}

// TestPredKindExhaustive pins the kind system closed: every declared
// kind has a value type and a real String name, every Pred
// implementation maps to a distinct declared kind, and the
// implementation count matches the kind count — so a future kind or
// predicate type cannot silently fall through ValueType (and with it
// the estimator's type check).
func TestPredKindExhaustive(t *testing.T) {
	if got, want := len(allPreds), int(numPredKinds); got != want {
		t.Fatalf("%d Pred implementations registered for %d kinds", got, want)
	}
	seen := make(map[PredKind]Pred)
	for _, p := range allPreds {
		k := p.Kind()
		if k >= numPredKinds {
			t.Errorf("%T.Kind() = %v, outside the declared kinds", p, k)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("%T and %T share kind %v", prev, p, k)
		}
		seen[k] = p
	}
	for k := PredKind(0); k < numPredKinds; k++ {
		if _, ok := k.ValueType(); !ok {
			t.Errorf("kind %v has no value type", k)
		}
		if got := k.String(); strings.HasPrefix(got, "PredKind(") {
			t.Errorf("kind %v has no String name", k)
		}
	}
	if _, ok := numPredKinds.ValueType(); ok {
		t.Error("sentinel kind reports a value type")
	}
}

// TestFTSimRoundTrip pins the parse → String → parse invariant for the
// ftsim predicate syntax, including its distinct kind.
func TestFTSimRoundTrip(t *testing.T) {
	const in = "//paper[abstract ftsim(2,xml,synopsis,tree)]/title"
	q := MustParse(in)
	if !q.PredTypes()[KindFTSim] {
		t.Fatalf("PredTypes(%q) = %v, want KindFTSim", in, q.PredTypes())
	}
	rendered := q.String()
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse %q: %v", rendered, err)
	}
	if rendered != q2.String() {
		t.Fatalf("round trip not stable: %q vs %q", rendered, q2.String())
	}
	if !q2.PredTypes()[KindFTSim] {
		t.Fatalf("round trip lost KindFTSim: %v", q2.PredTypes())
	}
}
