package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sort"
	"sync"
	"time"
)

// This file is the request-correlation layer: request IDs threaded
// through context, trees of timed spans built as a request crosses the
// service → catalog scatter → per-shard pipeline, and a bounded
// TraceStore of completed trees in the spirit of x/net/trace — a ring
// of recent traces per request family that additionally always retains
// the slowest N, exposed at GET /debug/traces. Everything is stdlib.

// requestIDKey and spanKey are the context keys for the request ID and
// the active span. Distinct unexported struct types cannot collide with
// other packages' keys.
type (
	requestIDKey struct{}
	spanKey      struct{}
)

// MaxRequestIDLen bounds accepted X-Request-ID header values; longer
// (or non-printable) client IDs are replaced by a generated one so an
// abusive client cannot bloat traces, logs, and response headers.
const MaxRequestIDLen = 64

// NewRequestID returns a fresh 16-hex-digit request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a usable correlation key if it somehow does.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID validates a client-supplied request ID: at most
// MaxRequestIDLen bytes of printable ASCII (no spaces, quotes, or
// control bytes). It returns "" when the value is unusable.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > MaxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// WithSpan returns a context carrying sp as the active span.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the active span carried by ctx, or nil. A nil result
// means the request is not being traced (sampled out or no middleware),
// and callers skip span construction entirely — that single context
// lookup is the whole tracing-off cost on the estimate hot path.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Span is one timed node of a request's trace tree. Fields are mutated
// under the span's own mutex so a scatter worker finishing a child
// after the root was recorded (a straggler past the gather deadline)
// races neither the recorder nor a concurrent /debug/traces snapshot.
type Span struct {
	mu         sync.Mutex
	name       string
	requestID  string
	tenant     string
	collection string
	detail     string
	err        string
	start      time.Time
	d          time.Duration // 0 until Finish
	children   []*Span

	// poolable marks spans built by CompletedSpan, the only constructor
	// whose spans are recycled through spanPool when the trace store
	// evicts their tree. It is set at creation and never changes. Spans
	// from NewSpan and StartChild stay GC-managed on purpose: long-lived
	// references may outlive the store's retention (a scatter straggler
	// holds the root and its shard child through its context), and a
	// recycled span under a live reference would corrupt another
	// request's trace. CompletedSpan subtrees have no such references —
	// they are fully built before AddChild publishes them and never
	// touched by their creator again.
	poolable bool
	// storeRefs counts how many TraceStore retention slots (recent ring,
	// slowest list) hold this span as a root. Guarded by the owning
	// store's mu; the tree is released for reuse when it drops to zero.
	storeRefs int
}

// spanPool recycles CompletedSpan nodes — the per-estimate subtree that
// dominates sampled-in tracing allocations (one span per pipeline stage
// per estimate). Released spans keep their children backing array, so a
// reused estimate span appends its stage children without growing a
// fresh slice.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// NewSpan starts a span now. requestID may be "" for children; Snapshot
// omits empty fields.
func NewSpan(name, requestID string) *Span {
	return &Span{name: name, requestID: requestID, start: time.Now()}
}

// CompletedSpan builds an already-finished span from recorded timings,
// for attaching pipeline-stage measurements that were captured by other
// means (core.EstimateTrace) into a trace tree after the fact. The span
// comes from a pool fed by trace-store eviction; callers must finish
// building the subtree (SetDetail, AddChild) before attaching it to a
// live tree, and must not retain references past that attachment.
func CompletedSpan(name string, start time.Time, d time.Duration) *Span {
	sp := spanPool.Get().(*Span)
	sp.name, sp.start, sp.d = name, start, d
	sp.poolable = true
	return sp
}

// releaseTree detaches and recycles an evicted trace tree: children are
// released depth-first and cleared, and poolable spans return to
// spanPool with their fields zeroed (children keep their backing array).
// The walk holds each parent's lock while releasing its children, so it
// serializes with a straggler's AddChild on the same node: the straggler
// either attaches before the clear (and its subtree is recycled here) or
// attaches to an already-detached node, where the subtree leaks
// harmlessly to the garbage collector instead of the pool.
func releaseTree(s *Span) {
	s.mu.Lock()
	for i, c := range s.children {
		releaseTree(c)
		s.children[i] = nil
	}
	s.children = s.children[:0]
	if !s.poolable {
		s.mu.Unlock()
		return
	}
	s.name, s.requestID, s.tenant, s.collection, s.detail, s.err = "", "", "", "", "", ""
	s.start = time.Time{}
	s.d = 0
	s.mu.Unlock()
	spanPool.Put(s)
}

// RequestID returns the span's request ID.
func (s *Span) RequestID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requestID
}

// SetShard labels the span with the tenant/collection that served it.
func (s *Span) SetShard(tenant, collection string) {
	s.mu.Lock()
	s.tenant, s.collection = tenant, collection
	s.mu.Unlock()
}

// SetDetail attaches a free-form detail string (e.g. a canonical query).
func (s *Span) SetDetail(detail string) {
	s.mu.Lock()
	s.detail = detail
	s.mu.Unlock()
}

// StartChild starts and attaches a child span, inheriting the request ID.
func (s *Span) StartChild(name string) *Span {
	s.mu.Lock()
	c := &Span{name: name, requestID: s.requestID, start: time.Now()}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddChild attaches a pre-built child span (typically CompletedSpan).
func (s *Span) AddChild(c *Span) {
	if c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Finish stamps the span's duration. Calling it again is a no-op, so a
// deferred Finish after an explicit FinishErr is harmless.
func (s *Span) Finish() {
	s.mu.Lock()
	if s.d == 0 {
		s.d = time.Since(s.start)
		if s.d <= 0 {
			s.d = 1 // clamp: a finished span is distinguishable from an open one
		}
	}
	s.mu.Unlock()
}

// FinishErr stamps the duration and records err (nil leaves the span
// successful).
func (s *Span) FinishErr(err error) {
	s.mu.Lock()
	if err != nil {
		s.err = err.Error()
	}
	if s.d == 0 {
		s.d = time.Since(s.start)
		if s.d <= 0 {
			s.d = 1
		}
	}
	s.mu.Unlock()
}

// Duration returns the stamped duration (0 while the span is open).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

// SpanSnapshot is the immutable JSON rendering of one span node.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	RequestID  string         `json:"request_id,omitempty"`
	Tenant     string         `json:"tenant,omitempty"`
	Collection string         `json:"collection,omitempty"`
	Detail     string         `json:"detail,omitempty"`
	Start      time.Time      `json:"start"`
	Nanos      int64          `json:"nanos"`
	Err        string         `json:"error,omitempty"`
	Spans      []SpanSnapshot `json:"spans,omitempty"`
}

// Snapshot deep-copies the span tree under each node's lock, so it is
// safe against concurrent child attachment and straggler finishes.
func (s *Span) Snapshot() SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:       s.name,
		RequestID:  s.requestID,
		Tenant:     s.tenant,
		Collection: s.collection,
		Detail:     s.detail,
		Start:      s.start,
		Nanos:      int64(s.d),
		Err:        s.err,
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	if len(children) > 0 {
		out.Spans = make([]SpanSnapshot, len(children))
		for i, c := range children {
			out.Spans[i] = c.Snapshot()
		}
	}
	return out
}

// Trace-store defaults: per family, the ring of most recent completed
// traces and the set of slowest traces ever seen, plus a cap on the
// number of families so unknown-path 404s cannot grow the store without
// bound.
const (
	DefaultTraceRecent  = 16
	DefaultTraceSlowest = 8
	maxTraceFamilies    = 64
	otherTraceFamily    = "_other"
)

// traceFamily holds one request family's retained traces.
type traceFamily struct {
	recent []*Span // ring, next % len is the write position
	next   uint64
	total  uint64
	slow   []*Span // ascending by duration, at most slowCap entries
}

// TraceStore retains completed span trees grouped by family (the root
// span's name, e.g. "POST /estimate"): a ring of the most recent per
// family plus the slowest N per family, which survive ring turnover —
// the traces an operator actually wants when debugging a latency SLO
// burn. A nil *TraceStore is a valid disabled store: Record is a no-op
// and Snapshot returns nil.
type TraceStore struct {
	recentCap int
	slowCap   int

	mu       sync.Mutex
	families map[string]*traceFamily
}

// NewTraceStore returns a store retaining the given number of recent
// and slowest traces per family (defaults for non-positive values).
func NewTraceStore(recent, slowest int) *TraceStore {
	if recent <= 0 {
		recent = DefaultTraceRecent
	}
	if slowest <= 0 {
		slowest = DefaultTraceSlowest
	}
	return &TraceStore{
		recentCap: recent,
		slowCap:   slowest,
		families:  make(map[string]*traceFamily),
	}
}

// Record retains a finished root span. Roots beyond the family cap are
// pooled under the "_other" family rather than dropped. A root evicted
// from both retention structures (its ring slot was overwritten and it
// is not among the slowest) has its tree released back to the span pool.
func (ts *TraceStore) Record(root *Span) {
	if ts == nil || root == nil {
		return
	}
	d := root.Duration()
	root.mu.Lock()
	family := root.name
	root.mu.Unlock()

	ts.mu.Lock()
	defer ts.mu.Unlock()
	f, ok := ts.families[family]
	if !ok {
		if len(ts.families) >= maxTraceFamilies {
			family = otherTraceFamily
			f = ts.families[family]
		}
		if f == nil {
			f = &traceFamily{recent: make([]*Span, ts.recentCap)}
			ts.families[family] = f
		}
	}
	slot := f.next % uint64(len(f.recent))
	root.storeRefs++
	if old := f.recent[slot]; old != nil {
		ts.unref(old)
	}
	f.recent[slot] = root
	f.next++
	f.total++

	// Keep the slowest slowCap traces, ascending by duration: insert in
	// order, drop the fastest when over capacity (shifting in place so
	// the backing array never migrates).
	i := sort.Search(len(f.slow), func(i int) bool { return f.slow[i].Duration() >= d })
	f.slow = append(f.slow, nil)
	copy(f.slow[i+1:], f.slow[i:])
	f.slow[i] = root
	root.storeRefs++
	if len(f.slow) > ts.slowCap {
		dropped := f.slow[0]
		copy(f.slow, f.slow[1:])
		f.slow[len(f.slow)-1] = nil
		f.slow = f.slow[:len(f.slow)-1]
		ts.unref(dropped)
	}
}

// unref drops one retention reference from a root, releasing its tree
// to the span pool when no ring slot or slowest entry holds it anymore.
// Caller holds ts.mu.
func (ts *TraceStore) unref(root *Span) {
	root.storeRefs--
	if root.storeRefs == 0 {
		releaseTree(root)
	}
}

// FamilySnapshot is the JSON rendering of one family's retained traces.
type FamilySnapshot struct {
	Family string `json:"family"`
	// Total counts every trace ever recorded into the family, including
	// ones the ring has since overwritten.
	Total   uint64         `json:"total"`
	Recent  []SpanSnapshot `json:"recent,omitempty"`
	Slowest []SpanSnapshot `json:"slowest,omitempty"`
}

// Snapshot renders every family, sorted by name, most recent trace
// first and slowest trace first. The deep copy runs under the store's
// lock: a concurrent Record could otherwise evict a retained root and
// release its tree to the span pool mid-copy.
func (ts *TraceStore) Snapshot() []FamilySnapshot {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	type fam struct {
		name string
		fs   FamilySnapshot
	}
	fams := make([]fam, 0, len(ts.families))
	for name, f := range ts.families {
		fs := FamilySnapshot{Family: name, Total: f.total}
		n := f.next
		if n > uint64(len(f.recent)) {
			n = uint64(len(f.recent))
		}
		for i := uint64(0); i < n; i++ {
			sp := f.recent[(f.next-1-i)%uint64(len(f.recent))]
			fs.Recent = append(fs.Recent, sp.Snapshot())
		}
		for i := len(f.slow) - 1; i >= 0; i-- { // descending by duration
			fs.Slowest = append(fs.Slowest, f.slow[i].Snapshot())
		}
		fams = append(fams, fam{name: name, fs: fs})
	}
	ts.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := make([]FamilySnapshot, len(fams))
	for i, f := range fams {
		out[i] = f.fs
	}
	return out
}

// TraceHandler wraps an HTTP handler with request correlation: it
// honors a well-formed client X-Request-ID (generating one otherwise),
// echoes it on the response before the handler runs (so error renderers
// can read it back from the response headers), threads it through the
// request context, and — unless an enclosing handler already opened one
// (the catalog delegating to a shard's handler) — opens a root span for
// the request and records the finished tree into store. store may be
// nil: requests still get correlated IDs, spans are never created, and
// nothing is retained.
func TraceHandler(store *TraceStore, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		id := RequestIDFrom(ctx)
		if id == "" {
			if id = SanitizeRequestID(r.Header.Get("X-Request-ID")); id == "" {
				id = NewRequestID()
			}
			ctx = WithRequestID(ctx, id)
		}
		w.Header().Set("X-Request-ID", id)
		if store != nil && SpanFrom(ctx) == nil {
			root := NewSpan(r.Method+" "+r.URL.Path, id)
			ctx = WithSpan(ctx, root)
			defer func() {
				root.Finish()
				store.Record(root)
			}()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
