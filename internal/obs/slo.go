package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file tracks per-shard SLOs: an availability objective (fraction
// of requests that must succeed) and a latency objective (fraction of
// requests that must finish under a threshold), each evaluated over
// short and long trailing windows as error-budget burn rates — the
// standard multi-window multi-burn-rate alerting setup. Burn rate is
// badRate / (1 - objective): 1.0 means the error budget is being spent
// exactly as fast as it accrues; a 5m burn of 14 with a 1h burn above 1
// is a page. Exposed at GET /debug/slo and as xcluster_slo_* gauges.

// SLOConfig is a shard's objectives. The zero value disables tracking.
type SLOConfig struct {
	// Availability is the target fraction of requests that succeed,
	// e.g. 0.999. Zero disables the availability SLO.
	Availability float64
	// LatencyObjective is the threshold under which a request counts as
	// fast. Zero disables the latency SLO.
	LatencyObjective time.Duration
	// LatencyTarget is the target fraction of requests under
	// LatencyObjective (default 0.99 when a latency objective is set).
	LatencyTarget float64
}

// Enabled reports whether any objective is configured.
func (c SLOConfig) Enabled() bool { return c.Availability > 0 || c.LatencyObjective > 0 }

// withDefaults fills derived defaults.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyObjective > 0 && c.LatencyTarget == 0 {
		c.LatencyTarget = 0.99
	}
	return c
}

// Validate rejects objectives outside their meaningful ranges. Both
// objectives are optional, but a configured one must leave a non-zero
// error budget (a 1.0 target divides burn rates by zero).
func (c SLOConfig) Validate() error {
	if c.Availability < 0 || c.Availability >= 1 {
		if c.Availability != 0 {
			return fmt.Errorf("obs: availability objective %v outside (0, 1)", c.Availability)
		}
	}
	if c.LatencyObjective < 0 {
		return fmt.Errorf("obs: negative latency objective %v", c.LatencyObjective)
	}
	if c.LatencyTarget != 0 {
		if c.LatencyTarget < 0 || c.LatencyTarget >= 1 {
			return fmt.Errorf("obs: latency target %v outside (0, 1)", c.LatencyTarget)
		}
		if c.LatencyObjective == 0 {
			return fmt.Errorf("obs: latency target %v without a latency objective", c.LatencyTarget)
		}
	}
	return nil
}

// Window geometry: 10-second buckets covering the long window, so the
// 5m window reads 30 buckets and the 1h window reads all 360. Counts
// are windowed (the registry's cumulative histograms cannot yield a
// trailing 5m rate without scrape-side state, so the tracker keeps its
// own ring).
const (
	sloBucketSeconds = 10
	sloNumBuckets    = 360 // 1h of 10s buckets
	sloShortBuckets  = 30  // 5m
)

// sloBucket is one 10-second accumulation slot. epoch is the absolute
// bucket index it currently holds; a reader or writer seeing a stale
// epoch resets the slot. All fields are atomic: Observe on the estimate
// hot path takes no lock.
type sloBucket struct {
	epoch  atomic.Int64
	total  atomic.Uint64
	errors atomic.Uint64
	slow   atomic.Uint64
}

// SLOTracker accumulates request outcomes into a bucket ring and
// reports burn rates over 5m/1h windows. A nil *SLOTracker is a valid
// disabled tracker: Observe is a no-op, Report returns a disabled
// report, Sync emits nothing.
type SLOTracker struct {
	cfg     SLOConfig
	buckets [sloNumBuckets]sloBucket
	now     func() time.Time // injectable for deterministic tests
}

// NewSLOTracker returns a tracker for cfg, or nil when cfg disables
// tracking.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if !cfg.Enabled() {
		return nil
	}
	return &SLOTracker{cfg: cfg.withDefaults(), now: time.Now}
}

// Config returns the tracked objectives (zero when disabled).
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// bucketAt returns the slot for the absolute bucket index, resetting it
// if it still holds counts from a previous ring pass. The CAS keeps
// concurrent resetters from double-clearing a slot another writer has
// started filling; the small count loss when a reset races an Add is an
// accepted trade for a lock-free hot path.
func (t *SLOTracker) bucketAt(epoch int64) *sloBucket {
	b := &t.buckets[epoch%sloNumBuckets]
	for {
		cur := b.epoch.Load()
		if cur == epoch {
			return b
		}
		if b.epoch.CompareAndSwap(cur, epoch) {
			b.total.Store(0)
			b.errors.Store(0)
			b.slow.Store(0)
			return b
		}
	}
}

// Observe records one request outcome: its latency and whether it
// failed.
func (t *SLOTracker) Observe(d time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.observeEpoch(t.now().Unix()/sloBucketSeconds, d, failed)
}

// ObserveAt is Observe with the request's wall-clock time supplied by
// the caller, sparing the serving hot path a clock read it has already
// paid for. The injected test clock is ignored: at is authoritative.
func (t *SLOTracker) ObserveAt(at time.Time, d time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.observeEpoch(at.Unix()/sloBucketSeconds, d, failed)
}

func (t *SLOTracker) observeEpoch(epoch int64, d time.Duration, failed bool) {
	b := t.bucketAt(epoch)
	b.total.Add(1)
	if failed {
		b.errors.Add(1)
	}
	if t.cfg.LatencyObjective > 0 && d > t.cfg.LatencyObjective {
		b.slow.Add(1)
	}
}

// SLOWindowReport is one trailing window's readout.
type SLOWindowReport struct {
	Window    string  `json:"window"`
	Total     uint64  `json:"total"`
	Errors    uint64  `json:"errors"`
	Slow      uint64  `json:"slow"`
	ErrorRate float64 `json:"error_rate"`
	SlowRate  float64 `json:"slow_rate"`
	// AvailabilityBurnRate is ErrorRate / (1 - availability objective);
	// LatencyBurnRate is SlowRate / (1 - latency target). 1.0 means the
	// error budget is consumed exactly as fast as it accrues. Zero when
	// the corresponding objective is not configured.
	AvailabilityBurnRate float64 `json:"availability_burn_rate"`
	LatencyBurnRate      float64 `json:"latency_burn_rate"`
}

// SLOReport is the GET /debug/slo payload for one shard.
type SLOReport struct {
	Enabled               bool              `json:"enabled"`
	AvailabilityObjective float64           `json:"availability_objective,omitempty"`
	LatencyObjective      string            `json:"latency_objective,omitempty"`
	LatencyObjectiveNanos int64             `json:"latency_objective_nanos,omitempty"`
	LatencyTarget         float64           `json:"latency_target,omitempty"`
	Windows               []SLOWindowReport `json:"windows,omitempty"`
}

// window sums the trailing n buckets ending at the current epoch.
func (t *SLOTracker) window(name string, nBuckets int) SLOWindowReport {
	epoch := t.now().Unix() / sloBucketSeconds
	w := SLOWindowReport{Window: name}
	for i := 0; i < nBuckets; i++ {
		e := epoch - int64(i)
		if e < 0 {
			break
		}
		b := &t.buckets[e%sloNumBuckets]
		if b.epoch.Load() != e {
			continue // slot holds another ring pass (or was never written)
		}
		w.Total += b.total.Load()
		w.Errors += b.errors.Load()
		w.Slow += b.slow.Load()
	}
	if w.Total > 0 {
		w.ErrorRate = float64(w.Errors) / float64(w.Total)
		w.SlowRate = float64(w.Slow) / float64(w.Total)
		if t.cfg.Availability > 0 {
			w.AvailabilityBurnRate = w.ErrorRate / (1 - t.cfg.Availability)
		}
		if t.cfg.LatencyObjective > 0 {
			w.LatencyBurnRate = w.SlowRate / (1 - t.cfg.LatencyTarget)
		}
	}
	return w
}

// sloWindows are the reported trailing windows.
var sloWindows = []struct {
	name    string
	buckets int
}{
	{"5m", sloShortBuckets},
	{"1h", sloNumBuckets},
}

// Report renders the tracker's current state.
func (t *SLOTracker) Report() SLOReport {
	if t == nil {
		return SLOReport{}
	}
	rep := SLOReport{
		Enabled:               true,
		AvailabilityObjective: t.cfg.Availability,
		LatencyTarget:         t.cfg.LatencyTarget,
	}
	if t.cfg.LatencyObjective > 0 {
		rep.LatencyObjective = t.cfg.LatencyObjective.String()
		rep.LatencyObjectiveNanos = int64(t.cfg.LatencyObjective)
	}
	for _, w := range sloWindows {
		rep.Windows = append(rep.Windows, t.window(w.name, w.buckets))
	}
	return rep
}

// Sync mirrors the tracker into r's xcluster_slo_* gauges: the
// configured objectives plus, per window, the windowed request counts
// and both burn rates. Series names and label sets are fixed, so the
// scrape shape is deterministic (golden-tested); values move with
// traffic. Called at scrape time alongside the registry's other
// mirrored series.
func (t *SLOTracker) Sync(r *Registry) {
	if t == nil {
		return
	}
	r.Help("xcluster_slo_availability_objective", "Configured availability objective (0 when disabled).")
	r.Help("xcluster_slo_latency_objective_seconds", "Configured latency objective in seconds (0 when disabled).")
	r.Help("xcluster_slo_latency_target", "Configured fraction of requests required under the latency objective.")
	r.Help("xcluster_slo_burn_rate", "Error-budget burn rate per SLO and trailing window (1.0 = budget spent exactly at the sustainable rate).")
	r.Help("xcluster_slo_window_requests", "Requests observed in the trailing window.")
	r.Help("xcluster_slo_window_errors", "Failed requests in the trailing window.")
	r.Help("xcluster_slo_window_slow", "Requests over the latency objective in the trailing window.")
	r.Gauge("xcluster_slo_availability_objective", "").Set(t.cfg.Availability)
	r.Gauge("xcluster_slo_latency_objective_seconds", "").Set(t.cfg.LatencyObjective.Seconds())
	r.Gauge("xcluster_slo_latency_target", "").Set(t.cfg.LatencyTarget)
	for _, w := range sloWindows {
		rep := t.window(w.name, w.buckets)
		wl := fmt.Sprintf("window=%q", w.name)
		r.Gauge("xcluster_slo_window_requests", wl).Set(float64(rep.Total))
		r.Gauge("xcluster_slo_window_errors", wl).Set(float64(rep.Errors))
		r.Gauge("xcluster_slo_window_slow", wl).Set(float64(rep.Slow))
		r.Gauge("xcluster_slo_burn_rate", fmt.Sprintf("slo=%q,%s", "availability", wl)).Set(rep.AvailabilityBurnRate)
		r.Gauge("xcluster_slo_burn_rate", fmt.Sprintf("slo=%q,%s", "latency", wl)).Set(rep.LatencyBurnRate)
	}
}
