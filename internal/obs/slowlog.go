package obs

import (
	"sync"
	"time"
)

// DefaultSlowLogCapacity is the ring size used when NewSlowLog is given
// a non-positive capacity.
const DefaultSlowLogCapacity = 128

// SlowLogSpan is one pipeline-stage timing of a slow query.
type SlowLogSpan struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// SlowLogEntry is one captured slow query: its canonical form, a
// one-line plan summary, the estimate it produced, and where the time
// went. Total is the human-readable rendering of TotalNanos; Record
// fills it when the caller leaves it empty.
type SlowLogEntry struct {
	Time time.Time `json:"time"`
	// Tenant and Collection identify the shard that served the query in
	// a multi-tenant catalog; both stay empty (and absent from the JSON)
	// in single-tenant deployments, whose log shape is unchanged.
	Tenant     string `json:"tenant,omitempty"`
	Collection string `json:"collection,omitempty"`
	// RequestID correlates the entry with the request's trace tree
	// (GET /debug/traces) and the daemon's log lines; empty for work
	// that arrived outside the HTTP layer.
	RequestID string `json:"request_id,omitempty"`
	// ShapeID is the canonical query-shape identifier assigned by the
	// workload profiler, so slow-log rows join against the shape table
	// at GET /debug/workload; empty when profiling is disabled.
	ShapeID    string        `json:"shape_id,omitempty"`
	Query      string        `json:"query"`
	Plan       string        `json:"plan,omitempty"`
	Estimate   float64       `json:"estimate"`
	Total      string        `json:"total"`
	TotalNanos int64         `json:"total_nanos"`
	Spans      []SlowLogSpan `json:"spans,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent queries
// whose total latency met a threshold. A nil *SlowLog is a valid
// disabled log: Record is a no-op and Snapshot returns nil.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	ring  []SlowLogEntry
	next  uint64 // monotonically increasing write position
	total uint64 // entries ever recorded
}

// NewSlowLog returns a log capturing entries with TotalNanos at or
// above threshold, retaining the most recent capacity entries
// (DefaultSlowLogCapacity when capacity <= 0). A non-positive threshold
// returns nil: the disabled log.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if threshold <= 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultSlowLogCapacity
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowLogEntry, capacity)}
}

// Threshold returns the capture threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record captures the entry if it meets the threshold, reporting
// whether it did. Entries below the threshold (and every entry, on a
// disabled log) are dropped.
func (l *SlowLog) Record(e SlowLogEntry) bool {
	if l == nil || time.Duration(e.TotalNanos) < l.threshold {
		return false
	}
	if e.Total == "" {
		e.Total = time.Duration(e.TotalNanos).String()
	}
	l.mu.Lock()
	l.ring[l.next%uint64(len(l.ring))] = e
	l.next++
	l.total++
	l.mu.Unlock()
	return true
}

// Total returns how many entries were ever recorded (including ones the
// ring has since overwritten).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained entries, most recent first.
func (l *SlowLog) Snapshot() []SlowLogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if n > uint64(len(l.ring)) {
		n = uint64(len(l.ring))
	}
	out := make([]SlowLogEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, l.ring[(l.next-1-i)%uint64(len(l.ring))])
	}
	return out
}
