package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSLOConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  SLOConfig
		ok   bool
	}{
		{"zero (disabled)", SLOConfig{}, true},
		{"availability only", SLOConfig{Availability: 0.999}, true},
		{"latency only", SLOConfig{LatencyObjective: 50 * time.Millisecond}, true},
		{"both with target", SLOConfig{Availability: 0.99, LatencyObjective: time.Second, LatencyTarget: 0.95}, true},
		{"availability 1.0", SLOConfig{Availability: 1}, false},
		{"availability negative", SLOConfig{Availability: -0.1}, false},
		{"latency negative", SLOConfig{LatencyObjective: -time.Second}, false},
		{"target without objective", SLOConfig{LatencyTarget: 0.9}, false},
		{"target 1.0", SLOConfig{LatencyObjective: time.Second, LatencyTarget: 1}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSLOTrackerDisabled(t *testing.T) {
	if tr := NewSLOTracker(SLOConfig{}); tr != nil {
		t.Fatal("zero config must return a nil (disabled) tracker")
	}
	var tr *SLOTracker
	tr.Observe(time.Second, true) // no panic
	if rep := tr.Report(); rep.Enabled {
		t.Fatal("nil tracker reports enabled")
	}
	tr.Sync(NewRegistry()) // no panic
}

func TestSLOLatencyTargetDefault(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{LatencyObjective: time.Second})
	if got := tr.Config().LatencyTarget; got != 0.99 {
		t.Fatalf("defaulted latency target = %v, want 0.99", got)
	}
}

// The window tests share one deterministic fixture shape: every derived
// rate is an exact binary float (objectives of 0.5, counts that are
// powers of two), so equality checks and the golden rendering are
// stable.
func TestSLOTrackerWindows(t *testing.T) {
	t0 := time.Unix(3_600_000, 0)
	tr := NewSLOTracker(SLOConfig{
		Availability:     0.5,
		LatencyObjective: 100 * time.Millisecond,
		LatencyTarget:    0.5,
	})
	tr.now = func() time.Time { return t0 }
	// 350s ago: inside the 1h window, outside the 5m window.
	old := t0.Add(-350 * time.Second)
	for i := 0; i < 8; i++ {
		tr.ObserveAt(old, time.Millisecond, false)
	}
	// Now: 8 requests — 4 failed, 2 slow, 2 fast successes.
	for i := 0; i < 4; i++ {
		tr.ObserveAt(t0, time.Millisecond, true)
	}
	for i := 0; i < 2; i++ {
		tr.ObserveAt(t0, 500*time.Millisecond, false)
	}
	for i := 0; i < 2; i++ {
		tr.ObserveAt(t0, time.Millisecond, false)
	}

	rep := tr.Report()
	if !rep.Enabled || len(rep.Windows) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	w5, w1h := rep.Windows[0], rep.Windows[1]
	if w5.Window != "5m" || w1h.Window != "1h" {
		t.Fatalf("window order = %q, %q", w5.Window, w1h.Window)
	}
	if w5.Total != 8 || w5.Errors != 4 || w5.Slow != 2 {
		t.Fatalf("5m = %+v, want 8 total / 4 errors / 2 slow", w5)
	}
	if w1h.Total != 16 || w1h.Errors != 4 || w1h.Slow != 2 {
		t.Fatalf("1h = %+v, want 16 total / 4 errors / 2 slow", w1h)
	}
	// Burn = badRate / (1 - objective); all values exact binary floats.
	if w5.AvailabilityBurnRate != 1 || w5.LatencyBurnRate != 0.5 {
		t.Fatalf("5m burns = %v / %v, want 1 / 0.5", w5.AvailabilityBurnRate, w5.LatencyBurnRate)
	}
	if w1h.AvailabilityBurnRate != 0.5 || w1h.LatencyBurnRate != 0.25 {
		t.Fatalf("1h burns = %v / %v, want 0.5 / 0.25", w1h.AvailabilityBurnRate, w1h.LatencyBurnRate)
	}
}

func TestSLOTrackerWindowRotation(t *testing.T) {
	now := time.Unix(3_600_000, 0)
	tr := NewSLOTracker(SLOConfig{Availability: 0.5})
	tr.now = func() time.Time { return now }
	tr.Observe(time.Millisecond, true)
	if got := tr.Report().Windows[0].Total; got != 1 {
		t.Fatalf("5m total = %d, want 1", got)
	}
	// 6 minutes later the 5m window is empty, the 1h window is not.
	now = now.Add(6 * time.Minute)
	rep := tr.Report()
	if got := rep.Windows[0].Total; got != 0 {
		t.Fatalf("5m total after 6min = %d, want 0", got)
	}
	if got := rep.Windows[1].Total; got != 1 {
		t.Fatalf("1h total after 6min = %d, want 1", got)
	}
	// A full ring pass later (> 1h) the old bucket's epoch is stale and
	// the slot is reused, not double-counted.
	now = now.Add(2 * time.Hour)
	tr.Observe(time.Millisecond, false)
	rep = tr.Report()
	if got := rep.Windows[1].Total; got != 1 {
		t.Fatalf("1h total after ring reuse = %d, want 1 (old pass expired)", got)
	}
}

// TestSLOSyncGolden pins the exact Prometheus rendering of the
// xcluster_slo_* series: family order, label order, and values (the
// fixture's rates are exact binary floats, so rendering is stable).
func TestSLOSyncGolden(t *testing.T) {
	t0 := time.Unix(3_600_000, 0)
	tr := NewSLOTracker(SLOConfig{
		Availability:     0.5,
		LatencyObjective: 100 * time.Millisecond,
		LatencyTarget:    0.5,
	})
	tr.now = func() time.Time { return t0 }
	old := t0.Add(-350 * time.Second)
	for i := 0; i < 8; i++ {
		tr.ObserveAt(old, time.Millisecond, false)
	}
	for i := 0; i < 4; i++ {
		tr.ObserveAt(t0, time.Millisecond, true)
	}
	for i := 0; i < 2; i++ {
		tr.ObserveAt(t0, 500*time.Millisecond, false)
	}
	for i := 0; i < 2; i++ {
		tr.ObserveAt(t0, time.Millisecond, false)
	}

	reg := NewRegistry()
	tr.Sync(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP xcluster_slo_availability_objective Configured availability objective (0 when disabled).
# TYPE xcluster_slo_availability_objective gauge
xcluster_slo_availability_objective 0.5
# HELP xcluster_slo_burn_rate Error-budget burn rate per SLO and trailing window (1.0 = budget spent exactly at the sustainable rate).
# TYPE xcluster_slo_burn_rate gauge
xcluster_slo_burn_rate{slo="availability",window="1h"} 0.5
xcluster_slo_burn_rate{slo="availability",window="5m"} 1
xcluster_slo_burn_rate{slo="latency",window="1h"} 0.25
xcluster_slo_burn_rate{slo="latency",window="5m"} 0.5
# HELP xcluster_slo_latency_objective_seconds Configured latency objective in seconds (0 when disabled).
# TYPE xcluster_slo_latency_objective_seconds gauge
xcluster_slo_latency_objective_seconds 0.1
# HELP xcluster_slo_latency_target Configured fraction of requests required under the latency objective.
# TYPE xcluster_slo_latency_target gauge
xcluster_slo_latency_target 0.5
# HELP xcluster_slo_window_errors Failed requests in the trailing window.
# TYPE xcluster_slo_window_errors gauge
xcluster_slo_window_errors{window="1h"} 4
xcluster_slo_window_errors{window="5m"} 4
# HELP xcluster_slo_window_requests Requests observed in the trailing window.
# TYPE xcluster_slo_window_requests gauge
xcluster_slo_window_requests{window="1h"} 16
xcluster_slo_window_requests{window="5m"} 8
# HELP xcluster_slo_window_slow Requests over the latency objective in the trailing window.
# TYPE xcluster_slo_window_slow gauge
xcluster_slo_window_slow{window="1h"} 2
xcluster_slo_window_slow{window="5m"} 2
`
	if got := sb.String(); got != want {
		t.Fatalf("golden mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSLOTrackerConcurrent exercises the lock-free bucket ring from
// many goroutines with a moving clock — meaningful under -race.
func TestSLOTrackerConcurrent(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Availability: 0.999, LatencyObjective: time.Millisecond})
	base := time.Unix(3_600_000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				at := base.Add(time.Duration(i%40) * 7 * time.Second)
				tr.ObserveAt(at, time.Duration(i)*time.Microsecond, i%5 == 0)
				if i%100 == 0 {
					tr.Report()
				}
			}
		}(g)
	}
	wg.Wait()
	if rep := tr.Report(); !rep.Enabled {
		t.Fatal("tracker disabled after concurrent use")
	}
}
