package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func entry(query string, total time.Duration) SlowLogEntry {
	return SlowLogEntry{Query: query, TotalNanos: total.Nanoseconds()}
}

func TestSlowLogDisabled(t *testing.T) {
	if l := NewSlowLog(0, 16); l != nil {
		t.Fatalf("NewSlowLog(0, _) = %v, want nil (disabled)", l)
	}
	var l *SlowLog
	if l.Record(entry("q", time.Second)) {
		t.Error("nil log recorded an entry")
	}
	if l.Snapshot() != nil {
		t.Error("nil log Snapshot != nil")
	}
	if l.Total() != 0 || l.Threshold() != 0 {
		t.Error("nil log has non-zero Total or Threshold")
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 8)
	if l.Record(entry("fast", 9*time.Millisecond)) {
		t.Error("recorded an entry below threshold")
	}
	if !l.Record(entry("slow", 10*time.Millisecond)) {
		t.Error("dropped an entry at threshold")
	}
	if got := l.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1", got)
	}
	if got := l.Threshold(); got != 10*time.Millisecond {
		t.Fatalf("Threshold = %v, want 10ms", got)
	}
}

func TestSlowLogNewestFirstAndWrap(t *testing.T) {
	l := NewSlowLog(time.Nanosecond, 4)
	for i := 0; i < 6; i++ {
		l.Record(entry(fmt.Sprintf("q%d", i), time.Duration(i+1)*time.Millisecond))
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want capacity 4", len(got))
	}
	for i, want := range []string{"q5", "q4", "q3", "q2"} {
		if got[i].Query != want {
			t.Errorf("Snapshot[%d].Query = %q, want %q (newest first)", i, got[i].Query, want)
		}
	}
	if l.Total() != 6 {
		t.Errorf("Total = %d, want 6 (counts overwritten entries)", l.Total())
	}
}

func TestSlowLogDefaultCapacity(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 0)
	for i := 0; i < DefaultSlowLogCapacity+10; i++ {
		l.Record(entry("q", time.Second))
	}
	if got := len(l.Snapshot()); got != DefaultSlowLogCapacity {
		t.Fatalf("Snapshot len = %d, want %d", got, DefaultSlowLogCapacity)
	}
}

// TestSlowLogConcurrent races 32 writers against readers; run under
// -race this is the slow log's thread-safety proof.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(time.Nanosecond, 32)
	const goroutines = 32
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Record(entry(fmt.Sprintf("g%d-%d", g, i), time.Millisecond))
				if i%50 == 0 {
					if snap := l.Snapshot(); len(snap) > 32 {
						t.Errorf("Snapshot len %d exceeds capacity", len(snap))
					}
					l.Total()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Total(); got != goroutines*perG {
		t.Fatalf("Total = %d, want %d", got, goroutines*perG)
	}
	if got := len(l.Snapshot()); got != 32 {
		t.Fatalf("Snapshot len = %d, want full ring of 32", got)
	}
}
