package obs

import (
	"fmt"
	"math"
	"runtime/metrics"
	"sync"
)

// This file samples the Go runtime's own telemetry (runtime/metrics)
// into a Registry as xcluster_go_* series at scrape time: heap and
// total memory, GC activity, goroutine/scheduler state, and the GC
// pause and scheduling-latency distributions as quantile gauges. The
// ROADMAP's zero-alloc serving work needs exactly these as a pinned
// baseline; sampling at scrape time keeps the cost off the hot path.

// runtimeQuantiles are the points reported from runtime histograms
// (GC pauses, scheduler latencies).
var runtimeQuantiles = []float64{0.5, 0.9, 0.99}

// runtimeGauges maps runtime/metrics names sampled as instantaneous
// gauges to their exported series.
var runtimeGauges = []struct{ src, name, help string }{
	{"/sched/goroutines:goroutines", "xcluster_go_goroutines", "Live goroutines."},
	{"/sched/gomaxprocs:threads", "xcluster_go_gomaxprocs", "GOMAXPROCS."},
	{"/memory/classes/heap/objects:bytes", "xcluster_go_heap_objects_bytes", "Bytes occupied by live and dead heap objects."},
	{"/memory/classes/total:bytes", "xcluster_go_memory_total_bytes", "Total memory mapped by the Go runtime."},
	{"/gc/heap/goal:bytes", "xcluster_go_gc_heap_goal_bytes", "Heap size target of the next GC cycle."},
}

// runtimeCounters maps monotonic runtime/metrics values to exported
// counter series; the sampler mirrors the absolute value via deltas.
var runtimeCounters = []struct{ src, name, help string }{
	{"/gc/heap/allocs:objects", "xcluster_go_heap_allocs_total", "Heap objects allocated since process start."},
	{"/gc/heap/allocs:bytes", "xcluster_go_heap_alloc_bytes_total", "Heap bytes allocated since process start."},
	{"/gc/cycles/total:gc-cycles", "xcluster_go_gc_cycles_total", "Completed GC cycles."},
}

// runtimeHists maps runtime histogram distributions to exported
// quantile-gauge families.
var runtimeHists = []struct{ src, name, help string }{
	{"/gc/pauses:seconds", "xcluster_go_gc_pause_seconds", "Distribution of stop-the-world GC pause latencies (quantile gauges sampled at scrape time)."},
	{"/sched/latencies:seconds", "xcluster_go_sched_latency_seconds", "Distribution of goroutine scheduling latencies (quantile gauges sampled at scrape time)."},
}

// RuntimeSampler reads a fixed runtime/metrics sample set into a
// Registry. It keeps the previous monotonic readings so counter series
// advance by deltas (Prometheus counters must never be Set), and reuses
// its sample buffer across scrapes. Methods are serialized internally;
// one sampler serves one registry owner (a service or a catalog).
type RuntimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	last    map[string]uint64 // previous reading per monotonic source
	helped  bool
}

// NewRuntimeSampler returns a sampler over the fixed xcluster_go_*
// sample set.
func NewRuntimeSampler() *RuntimeSampler {
	n := len(runtimeGauges) + len(runtimeCounters) + len(runtimeHists)
	rs := &RuntimeSampler{
		samples: make([]metrics.Sample, 0, n),
		last:    make(map[string]uint64, len(runtimeCounters)),
	}
	for _, g := range runtimeGauges {
		rs.samples = append(rs.samples, metrics.Sample{Name: g.src})
	}
	for _, c := range runtimeCounters {
		rs.samples = append(rs.samples, metrics.Sample{Name: c.src})
	}
	for _, h := range runtimeHists {
		rs.samples = append(rs.samples, metrics.Sample{Name: h.src})
	}
	return rs
}

// Sample reads the runtime metric set and updates r's xcluster_go_*
// series. Metrics this Go version does not export are skipped.
func (rs *RuntimeSampler) Sample(r *Registry) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.helped {
		for _, g := range runtimeGauges {
			r.Help(g.name, g.help)
		}
		for _, c := range runtimeCounters {
			r.Help(c.name, c.help)
		}
		for _, h := range runtimeHists {
			r.Help(h.name, h.help)
		}
		rs.helped = true
	}
	metrics.Read(rs.samples)
	byName := make(map[string]*metrics.Sample, len(rs.samples))
	for i := range rs.samples {
		byName[rs.samples[i].Name] = &rs.samples[i]
	}
	for _, g := range runtimeGauges {
		if v, ok := sampleFloat(byName[g.src]); ok {
			r.Gauge(g.name, "").Set(v)
		}
	}
	for _, c := range runtimeCounters {
		s := byName[c.src]
		if s == nil || s.Value.Kind() != metrics.KindUint64 {
			continue
		}
		cur := s.Value.Uint64()
		if prev, ok := rs.last[c.src]; ok && cur >= prev {
			r.Counter(c.name, "").Add(cur - prev)
		} else {
			r.Counter(c.name, "").Add(cur)
		}
		rs.last[c.src] = cur
	}
	for _, h := range runtimeHists {
		s := byName[h.src]
		if s == nil || s.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		hist := s.Value.Float64Histogram()
		for _, q := range runtimeQuantiles {
			label := fmt.Sprintf("quantile=%q", formatFloat(q))
			r.Gauge(h.name, label).Set(histQuantile(hist, q))
		}
	}
}

// sampleFloat converts a gauge-style sample to float64.
func sampleFloat(s *metrics.Sample) (float64, bool) {
	if s == nil {
		return 0, false
	}
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64()), true
	case metrics.KindFloat64:
		return s.Value.Float64(), true
	}
	return 0, false
}

// histQuantile reads the q-quantile out of a runtime cumulative-count
// histogram, reporting the upper bound of the bucket where the
// cumulative count crosses q (the last finite bound for the +Inf
// bucket). Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want == 0 {
		want = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= want {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// HeapAllocObjects reads the process's cumulative heap allocation count
// directly. Benchmarks diff it around a measured loop to report
// allocs/op without the testing package.
func HeapAllocObjects() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// SampleAllocsPerOp sets the xcluster_go_estimate_allocs_per_op gauge
// from the change in process-wide heap allocations divided by the
// change in served operations since the previous scrape. It is an
// approximation — background work (shadow sampling, rebuilds) allocates
// into the same numerator — but tracks the hot path closely on a busy
// server; BENCH_obs.json pins the exact per-op number in isolation.
func (rs *RuntimeSampler) SampleAllocsPerOp(r *Registry, ops uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	const (
		srcKey = "allocs_per_op:allocs"
		opsKey = "allocs_per_op:ops"
	)
	cur := HeapAllocObjects()
	prevAllocs, ok1 := rs.last[srcKey]
	prevOps, ok2 := rs.last[opsKey]
	rs.last[srcKey] = cur
	rs.last[opsKey] = ops
	r.Help("xcluster_go_estimate_allocs_per_op",
		"Approximate process heap allocations per served estimate between the last two scrapes.")
	g := r.Gauge("xcluster_go_estimate_allocs_per_op", "")
	if !ok1 || !ok2 || ops <= prevOps || cur < prevAllocs {
		g.Set(0)
		return
	}
	g.Set(float64(cur-prevAllocs) / float64(ops-prevOps))
}
