package obs

import (
	"runtime"
	"strings"
	"testing"
)

// skeleton strips sample values from a Prometheus rendering, keeping
// comment lines and series references: the deterministic shape of a
// scrape whose values move with the runtime.
func skeleton(render string) []string {
	var out []string
	for _, line := range strings.Split(strings.TrimSuffix(render, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			out = append(out, line)
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			out = append(out, line[:i])
		}
	}
	return out
}

// TestRuntimeSampleGolden pins the shape of the xcluster_go_* scrape:
// series names, label sets, and ordering are exact; values (which move
// with the live runtime) are stripped, so the test cannot flake.
func TestRuntimeSampleGolden(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler()
	runtime.GC() // ensure the pause histogram is populated
	rs.Sample(reg)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := skeleton(sb.String())
	want := []string{
		"# HELP xcluster_go_gc_cycles_total Completed GC cycles.",
		"# TYPE xcluster_go_gc_cycles_total counter",
		"xcluster_go_gc_cycles_total",
		"# HELP xcluster_go_gc_heap_goal_bytes Heap size target of the next GC cycle.",
		"# TYPE xcluster_go_gc_heap_goal_bytes gauge",
		"xcluster_go_gc_heap_goal_bytes",
		"# HELP xcluster_go_gc_pause_seconds Distribution of stop-the-world GC pause latencies (quantile gauges sampled at scrape time).",
		"# TYPE xcluster_go_gc_pause_seconds gauge",
		`xcluster_go_gc_pause_seconds{quantile="0.5"}`,
		`xcluster_go_gc_pause_seconds{quantile="0.9"}`,
		`xcluster_go_gc_pause_seconds{quantile="0.99"}`,
		"# HELP xcluster_go_gomaxprocs GOMAXPROCS.",
		"# TYPE xcluster_go_gomaxprocs gauge",
		"xcluster_go_gomaxprocs",
		"# HELP xcluster_go_goroutines Live goroutines.",
		"# TYPE xcluster_go_goroutines gauge",
		"xcluster_go_goroutines",
		"# HELP xcluster_go_heap_alloc_bytes_total Heap bytes allocated since process start.",
		"# TYPE xcluster_go_heap_alloc_bytes_total counter",
		"xcluster_go_heap_alloc_bytes_total",
		"# HELP xcluster_go_heap_allocs_total Heap objects allocated since process start.",
		"# TYPE xcluster_go_heap_allocs_total counter",
		"xcluster_go_heap_allocs_total",
		"# HELP xcluster_go_heap_objects_bytes Bytes occupied by live and dead heap objects.",
		"# TYPE xcluster_go_heap_objects_bytes gauge",
		"xcluster_go_heap_objects_bytes",
		"# HELP xcluster_go_memory_total_bytes Total memory mapped by the Go runtime.",
		"# TYPE xcluster_go_memory_total_bytes gauge",
		"xcluster_go_memory_total_bytes",
		"# HELP xcluster_go_sched_latency_seconds Distribution of goroutine scheduling latencies (quantile gauges sampled at scrape time).",
		"# TYPE xcluster_go_sched_latency_seconds gauge",
		`xcluster_go_sched_latency_seconds{quantile="0.5"}`,
		`xcluster_go_sched_latency_seconds{quantile="0.9"}`,
		`xcluster_go_sched_latency_seconds{quantile="0.99"}`,
	}
	if len(got) != len(want) {
		t.Fatalf("scrape skeleton has %d lines, want %d\n--- got ---\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("skeleton line %d = %q, want %q", i, got[i], want[i])
		}
	}

	// A second sample must keep the exact same shape.
	rs.Sample(reg)
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got2 := skeleton(sb.String())
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("second-sample skeleton line %d = %q, want %q", i, got2[i], want[i])
		}
	}
}

// TestRuntimeCounterMonotonic checks the delta mirroring: counters only
// grow across samples (Prometheus counters must never be Set backward).
func TestRuntimeCounterMonotonic(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler()
	rs.Sample(reg)
	first := reg.Counter("xcluster_go_heap_allocs_total", "").Value()
	if first == 0 {
		t.Fatal("first sample mirrored 0 heap allocations")
	}
	// Allocate and resample: the counter must advance by the delta, not
	// restart from the absolute reading.
	sink := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 16))
	}
	_ = sink
	runtime.GC() // flush per-P allocation stat caches
	rs.Sample(reg)
	second := reg.Counter("xcluster_go_heap_allocs_total", "").Value()
	if second <= first {
		t.Fatalf("counter did not advance: %d then %d", first, second)
	}
}

func TestHeapAllocObjects(t *testing.T) {
	a := HeapAllocObjects()
	if a == 0 {
		t.Fatal("HeapAllocObjects() = 0")
	}
	sink := make([][]byte, 0, 100)
	for i := 0; i < 100; i++ {
		sink = append(sink, make([]byte, 8))
	}
	_ = sink
	runtime.GC() // flush per-P allocation stat caches
	if b := HeapAllocObjects(); b <= a {
		t.Fatalf("allocation counter did not advance: %d then %d", a, b)
	}
}

func TestSampleAllocsPerOp(t *testing.T) {
	reg := NewRegistry()
	rs := NewRuntimeSampler()
	g := reg.Gauge("xcluster_go_estimate_allocs_per_op", "")

	rs.SampleAllocsPerOp(reg, 0)
	if got := g.Value(); got != 0 {
		t.Fatalf("first scrape allocs/op = %v, want 0 (no baseline yet)", got)
	}
	sink := make([][]byte, 0, 5000)
	for i := 0; i < 5000; i++ {
		sink = append(sink, make([]byte, 8))
	}
	_ = sink
	runtime.GC() // flush per-P allocation stat caches
	rs.SampleAllocsPerOp(reg, 100)
	if got := g.Value(); got <= 0 {
		t.Fatalf("allocs/op after 100 ops = %v, want > 0", got)
	}
	// Ops not advancing (no traffic between scrapes) reads as 0, not a
	// division blow-up.
	rs.SampleAllocsPerOp(reg, 100)
	if got := g.Value(); got != 0 {
		t.Fatalf("allocs/op with no new ops = %v, want 0", got)
	}
}
