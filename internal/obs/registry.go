// Package obs is the repository's stdlib-only observability layer: a
// metrics registry of atomic counters, gauges, and fixed-bucket latency
// histograms with exact percentile readouts, rendered in Prometheus
// text format, plus a ring-buffer slow-query log (slowlog.go).
//
// The registry is the concrete implementation behind the small
// MetricSink interface internal/core defines (Add/Observe), so the core
// estimation pipeline and synopsis build can emit metrics without
// depending on this package; internal/service and the daemons hold the
// registry directly and expose it at GET /metrics.
//
// All metric operations are safe for concurrent use and lock-free on
// the hot path (counter increments, bucket increments); only the exact
// percentile sample ring takes a mutex.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the counter. It exists for mirrored counters whose
// source of truth lives elsewhere (e.g. the estimator's internal LRU
// counters, synced at scrape time so /stats and /metrics agree).
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; safe concurrently).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histWindow is the number of recent observations a histogram retains
// for exact percentile readouts (the bucket counts are unbounded).
const histWindow = 4096

// DefaultLatencyBuckets are the histogram bounds used when none are
// given: exponential-ish latency buckets in seconds from 5µs to 10s.
var DefaultLatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram (Prometheus-style cumulative
// buckets at render time) that additionally keeps a ring of the most
// recent histWindow raw observations, so percentile readouts are exact
// over the recent window rather than bucket-interpolated.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated

	mu   sync.Mutex
	ring []float64
	next uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		ring:   make([]float64, histWindow),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.mu.Lock()
	h.ring[h.next%histWindow] = v
	h.next++
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// samples copies the retained ring, sorted ascending.
func (h *Histogram) samples() []float64 {
	h.mu.Lock()
	n := h.next
	if n > histWindow {
		n = histWindow
	}
	out := make([]float64, n)
	copy(out, h.ring[:n])
	h.mu.Unlock()
	sort.Float64s(out)
	return out
}

// quantileOf indexes a sorted sample slice the same way the previous
// service stats did (p=0.5 → s[n/2]), keeping /stats readouts stable.
func quantileOf(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	i := int(p * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// Quantile returns the exact p-quantile (0 < p < 1) over the retained
// window of recent observations, or 0 with no observations.
func (h *Histogram) Quantile(p float64) float64 { return quantileOf(h.samples(), p) }

// HistogramSnapshot is a point-in-time readout of a histogram.
type HistogramSnapshot struct {
	// Count and Sum cover every observation ever made.
	Count uint64
	Sum   float64
	// Samples is the number of recent observations behind the exact
	// percentiles (at most the retained window).
	Samples       int
	P50, P95, P99 float64
}

// Snapshot returns counters and exact percentiles in one pass.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := h.samples()
	return HistogramSnapshot{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Samples: len(s),
		P50:     quantileOf(s, 0.50),
		P95:     quantileOf(s, 0.95),
		P99:     quantileOf(s, 0.99),
	}
}

// metricKey identifies one series: a metric name plus its rendered
// label pairs (e.g. `stage="compile"`, possibly empty).
type metricKey struct{ name, labels string }

// Registry is a set of named metrics. Series are created on first use
// and live for the registry's lifetime. A metric name must be used with
// a single kind (counter, gauge, or histogram); reusing a name across
// kinds renders two conflicting families and is a caller bug.
type Registry struct {
	mu       sync.RWMutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
		help:     make(map[string]string),
	}
}

// Help sets the HELP text rendered for a metric name.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Counter returns the counter series for (name, labels), creating it on
// first use. labels is a rendered Prometheus label list without braces,
// e.g. `outcome="ok"`, or "" for none.
func (r *Registry) Counter(name, labels string) *Counter {
	k := metricKey{name, labels}
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[k]; !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge series for (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, labels string) *Gauge {
	k := metricKey{name, labels}
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[k]; !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram series for (name, labels), creating
// it with the given bucket bounds on first use (nil bounds selects
// DefaultLatencyBuckets). Later calls ignore bounds: the first
// registration wins.
func (r *Registry) Histogram(name, labels string, bounds []float64) *Histogram {
	k := metricKey{name, labels}
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[k]; !ok {
		h = newHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// Add increments the counter series by delta (rounded to the nearest
// integer). Together with Observe it makes *Registry satisfy the
// MetricSink interface internal/core defines.
func (r *Registry) Add(name, labels string, delta float64) {
	r.Counter(name, labels).Add(uint64(delta + 0.5))
}

// Observe records value into the histogram series (default latency
// buckets on first use).
func (r *Registry) Observe(name, labels string, value float64) {
	r.Histogram(name, labels, nil).Observe(value)
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesRef renders `name{labels}` (or bare name), with extra appended
// to the label list when non-empty (used for the le bucket label).
func seriesRef(name, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label string, histograms as cumulative _bucket/_sum/_count
// series. The output is deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusMerged(w, Labeled{R: r})
}

// Labeled pairs a registry with base labels prepended to every series it
// contributes to a merged rendering (e.g. `tenant="acme",collection="docs"`
// for one shard's registry; "" contributes the series unchanged).
type Labeled struct {
	Labels string
	R      *Registry
}

// joinLabels renders base labels before series labels, either possibly
// empty.
func joinLabels(base, labels string) string {
	if base == "" {
		return labels
	}
	if labels == "" {
		return base
	}
	return base + "," + labels
}

// WritePrometheusMerged renders several registries as one Prometheus
// exposition, each part's series carrying its base labels: the
// multi-tenant scrape shape, where every shard owns a registry and the
// catalog renders them side by side under tenant/collection labels.
// Families appearing in several parts render once (first help text
// wins); a single unlabeled part renders byte-identically to that
// registry's own WritePrometheus. Metric names must keep a single kind
// across all parts, as within one registry.
func WritePrometheusMerged(w io.Writer, parts ...Labeled) error {
	type series struct {
		labels string
		c      *Counter
		g      *Gauge
		h      *Histogram
	}
	families := make(map[string][]series)
	kind := make(map[string]string)
	help := make(map[string]string)
	for _, part := range parts {
		r := part.R
		if r == nil {
			continue
		}
		r.mu.RLock()
		for k, c := range r.counters {
			families[k.name] = append(families[k.name], series{labels: joinLabels(part.Labels, k.labels), c: c})
			kind[k.name] = "counter"
		}
		for k, g := range r.gauges {
			families[k.name] = append(families[k.name], series{labels: joinLabels(part.Labels, k.labels), g: g})
			kind[k.name] = "gauge"
		}
		for k, h := range r.hists {
			families[k.name] = append(families[k.name], series{labels: joinLabels(part.Labels, k.labels), h: h})
			kind[k.name] = "histogram"
		}
		for name, text := range r.help {
			if _, ok := help[name]; !ok {
				help[name] = text
			}
		}
		r.mu.RUnlock()
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		ss := families[name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		if text, ok := help[name]; ok {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, escapeHelp(text))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, kind[name])
		for _, s := range ss {
			switch {
			case s.c != nil:
				fmt.Fprintf(&sb, "%s %d\n", seriesRef(name, s.labels, ""), s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&sb, "%s %s\n", seriesRef(name, s.labels, ""), formatFloat(s.g.Value()))
			case s.h != nil:
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(&sb, "%s %d\n",
						seriesRef(name+"_bucket", s.labels, `le="`+formatFloat(bound)+`"`), cum)
				}
				fmt.Fprintf(&sb, "%s %d\n",
					seriesRef(name+"_bucket", s.labels, `le="+Inf"`), s.h.Count())
				fmt.Fprintf(&sb, "%s %s\n", seriesRef(name+"_sum", s.labels, ""), formatFloat(s.h.Sum()))
				fmt.Fprintf(&sb, "%s %d\n", seriesRef(name+"_count", s.labels, ""), s.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Snapshot flattens the registry into a series → value map for embedding
// in JSON reports (bench output): counters and gauges directly, and for
// each histogram its _count, _sum, and exact p50/p95/p99 readouts.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[metricKey]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()

	out := make(map[string]float64)
	for k, c := range counters {
		out[seriesRef(k.name, k.labels, "")] = float64(c.Value())
	}
	for k, g := range gauges {
		out[seriesRef(k.name, k.labels, "")] = g.Value()
	}
	for k, h := range hists {
		snap := h.Snapshot()
		out[seriesRef(k.name+"_count", k.labels, "")] = float64(snap.Count)
		out[seriesRef(k.name+"_sum", k.labels, "")] = snap.Sum
		out[seriesRef(k.name+"_p50", k.labels, "")] = snap.P50
		out[seriesRef(k.name+"_p95", k.labels, "")] = snap.P95
		out[seriesRef(k.name+"_p99", k.labels, "")] = snap.P99
	}
	return out
}
