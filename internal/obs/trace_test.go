package obs

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"
)

func TestSanitizeRequestID(t *testing.T) {
	long := make([]byte, MaxRequestIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	cases := []struct {
		in, want string
	}{
		{"abc", "abc"},
		{"req-123_456.7", "req-123_456.7"},
		{"", ""},
		{string(long), ""},
		{"has space", ""},
		{"has\ttab", ""},
		{`has"quote`, ""},
		{`has\backslash`, ""},
		{"ctrl\x01", ""},
		{"non-ascii\xc3\xa9", ""},
	}
	for _, c := range cases {
		if got := SanitizeRequestID(c.in); got != c.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNewRequestID(t *testing.T) {
	id := NewRequestID()
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("NewRequestID() = %q, want 16 hex digits", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("two generated IDs collided: %q", id)
	}
	if SanitizeRequestID(id) != id {
		t.Fatalf("generated ID %q does not survive its own sanitizer", id)
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("root", "req-1")
	child := root.StartChild("child")
	if got := child.RequestID(); got != "req-1" {
		t.Fatalf("child request ID = %q, want inherited %q", got, "req-1")
	}
	child.SetShard("acme", "docs")
	child.SetDetail("//a/b")
	grand := CompletedSpan("stage", time.Now(), 5*time.Millisecond)
	child.AddChild(grand)
	child.AddChild(nil) // no-op
	child.FinishErr(errors.New("boom"))
	root.Finish()
	root.Finish() // idempotent

	if d := root.Duration(); d <= 0 {
		t.Fatalf("finished root duration = %v, want > 0", d)
	}
	snap := root.Snapshot()
	if snap.Name != "root" || snap.RequestID != "req-1" {
		t.Fatalf("root snapshot = %+v", snap)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("root has %d children, want 1", len(snap.Spans))
	}
	cs := snap.Spans[0]
	if cs.Tenant != "acme" || cs.Collection != "docs" || cs.Detail != "//a/b" || cs.Err != "boom" {
		t.Fatalf("child snapshot = %+v", cs)
	}
	if len(cs.Spans) != 1 || cs.Spans[0].Name != "stage" || cs.Spans[0].Nanos != int64(5*time.Millisecond) {
		t.Fatalf("grandchild snapshot = %+v", cs.Spans)
	}
}

func TestSpanFinishClampsToPositive(t *testing.T) {
	sp := NewSpan("fast", "")
	sp.Finish()
	if d := sp.Duration(); d < 1 {
		t.Fatalf("finished duration = %v, want >= 1ns (clamped)", d)
	}
}

// recordedSpan builds a finished root with a given family name and
// duration for store tests.
func recordedSpan(family string, d time.Duration) *Span {
	return CompletedSpan(family, time.Now(), d)
}

func TestTraceStoreRingAndSlowest(t *testing.T) {
	ts := NewTraceStore(4, 2)
	for i := 1; i <= 10; i++ {
		ts.Record(recordedSpan("POST /estimate", time.Duration(i)*time.Millisecond))
	}
	fams := ts.Snapshot()
	if len(fams) != 1 {
		t.Fatalf("families = %d, want 1", len(fams))
	}
	f := fams[0]
	if f.Family != "POST /estimate" || f.Total != 10 {
		t.Fatalf("family = %q total = %d, want POST /estimate / 10", f.Family, f.Total)
	}
	// Recent: last 4, most recent first.
	wantRecent := []int64{10, 9, 8, 7}
	if len(f.Recent) != len(wantRecent) {
		t.Fatalf("recent = %d entries, want %d", len(f.Recent), len(wantRecent))
	}
	for i, w := range wantRecent {
		if got := f.Recent[i].Nanos; got != w*int64(time.Millisecond) {
			t.Errorf("recent[%d] = %dns, want %dms", i, got, w)
		}
	}
	// Slowest: top 2, slowest first, surviving ring turnover.
	wantSlow := []int64{10, 9}
	if len(f.Slowest) != len(wantSlow) {
		t.Fatalf("slowest = %d entries, want %d", len(f.Slowest), len(wantSlow))
	}
	for i, w := range wantSlow {
		if got := f.Slowest[i].Nanos; got != w*int64(time.Millisecond) {
			t.Errorf("slowest[%d] = %dns, want %dms", i, got, w)
		}
	}
}

func TestTraceStoreSlowestSurvivesRing(t *testing.T) {
	ts := NewTraceStore(2, 1)
	ts.Record(recordedSpan("f", 100*time.Millisecond))
	for i := 0; i < 10; i++ {
		ts.Record(recordedSpan("f", time.Millisecond))
	}
	f := ts.Snapshot()[0]
	if len(f.Slowest) != 1 || f.Slowest[0].Nanos != int64(100*time.Millisecond) {
		t.Fatalf("slowest = %+v, want the 100ms outlier retained", f.Slowest)
	}
	for _, r := range f.Recent {
		if r.Nanos == int64(100*time.Millisecond) {
			t.Fatalf("the outlier should have been evicted from the recent ring")
		}
	}
}

func TestTraceStoreFamilyCap(t *testing.T) {
	ts := NewTraceStore(2, 1)
	for i := 0; i < maxTraceFamilies+5; i++ {
		ts.Record(recordedSpan(fmt.Sprintf("GET /junk/%d", i), time.Millisecond))
	}
	fams := ts.Snapshot()
	if len(fams) != maxTraceFamilies+1 {
		t.Fatalf("families = %d, want %d (cap) + 1 (_other)", len(fams), maxTraceFamilies)
	}
	var other *FamilySnapshot
	for i := range fams {
		if fams[i].Family == otherTraceFamily {
			other = &fams[i]
		}
	}
	if other == nil || other.Total != 5 {
		t.Fatalf("overflow family = %+v, want %q with total 5", other, otherTraceFamily)
	}
}

func TestNilTraceStore(t *testing.T) {
	var ts *TraceStore
	ts.Record(recordedSpan("f", time.Millisecond)) // no panic
	if snap := ts.Snapshot(); snap != nil {
		t.Fatalf("nil store snapshot = %v, want nil", snap)
	}
}

// TestTraceStoreConcurrent hammers one store (and one shared root span)
// from 32 goroutines while snapshots run — meaningful under -race.
func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(8, 4)
	shared := NewSpan("shared", "req-shared")
	const goroutines = 32
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0: // record fresh roots
					sp := NewSpan(fmt.Sprintf("fam-%d", g%8), "")
					sp.Finish()
					ts.Record(sp)
				case 1: // straggler children on a shared, already-recorded root
					c := shared.StartChild("late")
					c.SetShard("t", "c")
					c.FinishErr(nil)
				case 2: // snapshot the store
					ts.Snapshot()
				case 3: // snapshot the contended span tree
					shared.Snapshot()
				}
			}
		}(g)
	}
	shared.Finish()
	ts.Record(shared)
	wg.Wait()
	if got := ts.Snapshot(); len(got) == 0 {
		t.Fatal("no families recorded")
	}
}

func TestTraceHandlerHonorsClientID(t *testing.T) {
	ts := NewTraceStore(4, 2)
	var seenID string
	h := TraceHandler(ts, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenID = RequestIDFrom(r.Context())
		if sp := SpanFrom(r.Context()); sp == nil {
			t.Error("no span in handler context")
		} else if sp.RequestID() != "abc" {
			t.Errorf("span request ID = %q, want abc", sp.RequestID())
		}
	}))
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-ID", "abc")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "abc" {
		t.Fatalf("echoed X-Request-ID = %q, want abc", got)
	}
	if seenID != "abc" {
		t.Fatalf("context request ID = %q, want abc", seenID)
	}
	fams := ts.Snapshot()
	if len(fams) != 1 || fams[0].Family != "GET /x" {
		t.Fatalf("families = %+v, want one GET /x", fams)
	}
	if got := fams[0].Recent[0].RequestID; got != "abc" {
		t.Fatalf("recorded root request ID = %q, want abc", got)
	}
}

func TestTraceHandlerGeneratesID(t *testing.T) {
	h := TraceHandler(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for _, bad := range []string{"", "has space", "x\x00y"} {
		req := httptest.NewRequest("GET", "/x", nil)
		if bad != "" {
			req.Header.Set("X-Request-ID", bad)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		got := rec.Header().Get("X-Request-ID")
		if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
			t.Fatalf("X-Request-ID for client id %q = %q, want generated 16 hex digits", bad, got)
		}
	}
}

// TestTraceHandlerNested checks the delegation shape: an outer handler
// (the catalog) already opened a root span, so the inner TraceHandler
// (a shard's service) must not open a second root or re-record.
func TestTraceHandlerNested(t *testing.T) {
	outer := NewTraceStore(4, 2)
	inner := NewTraceStore(4, 2)
	innerH := TraceHandler(inner, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sp := SpanFrom(r.Context()); sp == nil || sp.RequestID() != "abc" {
			t.Error("inner handler does not see the outer root span")
		}
	}))
	outerH := TraceHandler(outer, innerH)
	req := httptest.NewRequest("GET", "/stats", nil)
	req.Header.Set("X-Request-ID", "abc")
	outerH.ServeHTTP(httptest.NewRecorder(), req)
	if got := len(inner.Snapshot()); got != 0 {
		t.Fatalf("inner store recorded %d families, want 0 (outer owns the root)", got)
	}
	if got := len(outer.Snapshot()); got != 1 {
		t.Fatalf("outer store recorded %d families, want 1", got)
	}
}
