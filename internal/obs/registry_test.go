package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
	c.Store(2)
	if got := c.Value(); got != 2 {
		t.Fatalf("after Store(2): Value() = %d, want 2", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.25)
	g.Add(-0.75)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value() = %g, want 3", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.Sum != 5050 || snap.Samples != 100 {
		t.Fatalf("snapshot = %+v, want Count=100 Sum=5050 Samples=100", snap)
	}
	// quantileOf indexes s[int(p*n)], the convention the service stats
	// have always used: p50 of 1..100 is s[50] = 51.
	if snap.P50 != 51 || snap.P95 != 96 || snap.P99 != 100 {
		t.Fatalf("quantiles = %g/%g/%g, want 51/96/100", snap.P50, snap.P95, snap.P99)
	}
	if got := h.Quantile(0.5); got != 51 {
		t.Fatalf("Quantile(0.5) = %g, want 51", got)
	}
}

func TestHistogramRingWindow(t *testing.T) {
	h := newHistogram(nil)
	// Overfill the ring: the first histWindow observations are 0, then
	// histWindow more at 7 overwrite them entirely.
	for i := 0; i < histWindow; i++ {
		h.Observe(0)
	}
	for i := 0; i < histWindow; i++ {
		h.Observe(7)
	}
	snap := h.Snapshot()
	if snap.Count != 2*histWindow {
		t.Fatalf("Count = %d, want %d", snap.Count, 2*histWindow)
	}
	if snap.Samples != histWindow {
		t.Fatalf("Samples = %d, want %d", snap.Samples, histWindow)
	}
	if snap.P50 != 7 || snap.P99 != 7 {
		t.Fatalf("percentiles over retained window = %g/%g, want 7/7", snap.P50, snap.P99)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram(nil)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("Quantile on empty histogram = %g, want 0", got)
	}
}

// TestRegistryConcurrent hammers one registry from 32 goroutines that
// race series creation, increments, observations, and renders. Run
// under -race this is the registry's thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 32
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			labels := fmt.Sprintf(`worker="%d"`, g%4)
			for i := 0; i < perG; i++ {
				r.Counter("reqs_total", labels).Inc()
				r.Add("adds_total", "", 1)
				r.Observe("lat_seconds", labels, float64(i)/perG)
				r.Gauge("inflight", "").Add(1)
				r.Gauge("inflight", "").Add(-1)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	var total uint64
	for g := 0; g < 4; g++ {
		total += r.Counter("reqs_total", fmt.Sprintf(`worker="%d"`, g)).Value()
	}
	if total != goroutines*perG {
		t.Fatalf("reqs_total sum = %d, want %d", total, goroutines*perG)
	}
	if got := r.Counter("adds_total", "").Value(); got != goroutines*perG {
		t.Fatalf("adds_total = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("inflight", "").Value(); got != 0 {
		t.Fatalf("inflight = %g, want 0", got)
	}
	var count uint64
	for g := 0; g < 4; g++ {
		count += r.Histogram("lat_seconds", fmt.Sprintf(`worker="%d"`, g), nil).Count()
	}
	if count != goroutines*perG {
		t.Fatalf("lat_seconds count = %d, want %d", count, goroutines*perG)
	}
}

// TestWritePrometheusGolden pins the exact text exposition output:
// families sorted by name, series by label string, cumulative buckets,
// HELP escaping — a scrape of this registry must parse as version 0.0.4.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("test_requests_total", "Total requests.")
	r.Counter("test_requests_total", `outcome="ok"`).Add(3)
	r.Counter("test_requests_total", `outcome="error"`).Inc()
	r.Gauge("test_inflight", "").Set(2.5)
	h := r.Histogram("test_seconds", "", []float64{0.1, 1})
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)

	want := `# TYPE test_inflight gauge
test_inflight 2.5
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{outcome="error"} 1
test_requests_total{outcome="ok"} 3
# TYPE test_seconds histogram
test_seconds_bucket{le="0.1"} 1
test_seconds_bucket{le="1"} 2
test_seconds_bucket{le="+Inf"} 3
test_seconds_sum 5.5625
test_seconds_count 3
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if sb.String() != want {
		t.Errorf("WritePrometheus output mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}

	// Rendering twice must produce identical output (determinism).
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb.String() != sb2.String() {
		t.Errorf("WritePrometheus is not deterministic")
	}
}

// TestWritePrometheusMerged pins the multi-registry rendering: two
// "shard" registries under tenant/collection base labels plus one
// unlabeled catalog registry merge into a single exposition with each
// family rendered once and every labeled series carrying its base
// labels first.
func TestWritePrometheusMerged(t *testing.T) {
	catalog := NewRegistry()
	catalog.Help("test_shards", "Attached shards.")
	catalog.Gauge("test_shards", "").Set(2)

	a := NewRegistry()
	a.Help("test_requests_total", "Total requests.")
	a.Counter("test_requests_total", `outcome="ok"`).Add(3)
	ha := a.Histogram("test_seconds", "", []float64{1})
	ha.Observe(0.5)

	b := NewRegistry()
	b.Help("test_requests_total", "Total requests (duplicate help, first wins).")
	b.Counter("test_requests_total", `outcome="ok"`).Add(5)
	b.Counter("test_requests_total", "").Inc()

	want := `# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{tenant="acme",collection="docs",outcome="ok"} 3
test_requests_total{tenant="beta",collection="logs"} 1
test_requests_total{tenant="beta",collection="logs",outcome="ok"} 5
# TYPE test_seconds histogram
test_seconds_bucket{tenant="acme",collection="docs",le="1"} 1
test_seconds_bucket{tenant="acme",collection="docs",le="+Inf"} 1
test_seconds_sum{tenant="acme",collection="docs"} 0.5
test_seconds_count{tenant="acme",collection="docs"} 1
# HELP test_shards Attached shards.
# TYPE test_shards gauge
test_shards 2
`
	var sb strings.Builder
	if err := WritePrometheusMerged(&sb,
		Labeled{R: catalog},
		Labeled{Labels: `tenant="acme",collection="docs"`, R: a},
		Labeled{Labels: `tenant="beta",collection="logs"`, R: b},
	); err != nil {
		t.Fatalf("WritePrometheusMerged: %v", err)
	}
	if sb.String() != want {
		t.Errorf("merged output mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}

	// A single unlabeled part is byte-identical to the registry's own
	// rendering: the single-tenant scrape is unchanged by the merge path.
	var direct, merged strings.Builder
	if err := a.WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheusMerged(&merged, Labeled{R: a}); err != nil {
		t.Fatal(err)
	}
	if direct.String() != merged.String() {
		t.Errorf("unlabeled merge diverges from WritePrometheus:\n%s\nvs\n%s",
			merged.String(), direct.String())
	}

	// A nil registry part contributes nothing rather than panicking.
	if err := WritePrometheusMerged(io.Discard, Labeled{Labels: `x="y"`}); err != nil {
		t.Fatalf("nil part: %v", err)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Help("m_total", "line one\nline \\ two")
	r.Counter("m_total", "").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := "# HELP m_total line one\\nline \\\\ two\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped HELP %q not found in:\n%s", want, sb.String())
	}
}

func TestSnapshotFlattening(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", `k="v"`).Add(7)
	r.Gauge("g", "").Set(1.5)
	h := r.Histogram("h_seconds", "", nil)
	h.Observe(2)
	h.Observe(4)

	snap := r.Snapshot()
	if got := snap[`c_total{k="v"}`]; got != 7 {
		t.Errorf(`c_total{k="v"} = %g, want 7`, got)
	}
	if got := snap["g"]; got != 1.5 {
		t.Errorf("g = %g, want 1.5", got)
	}
	if got := snap["h_seconds_count"]; got != 2 {
		t.Errorf("h_seconds_count = %g, want 2", got)
	}
	if got := snap["h_seconds_sum"]; got != 6 {
		t.Errorf("h_seconds_sum = %g, want 6", got)
	}
	if got := snap["h_seconds_p50"]; got != 4 {
		t.Errorf("h_seconds_p50 = %g, want 4 (s[int(0.5*2)])", got)
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", "", []float64{1, 2})
	h2 := r.Histogram("h", "", []float64{10, 20, 30})
	if h1 != h2 {
		t.Fatalf("same (name, labels) returned distinct histograms")
	}
	if len(h1.bounds) != 2 {
		t.Fatalf("bounds = %v, want the first registration's [1 2]", h1.bounds)
	}
}
