package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xcluster/internal/query"
)

// header identifies the workload file format (version 1).
const header = "# xcluster workload v1"

// WriteTo serializes the workload as a line-oriented text file — one
// query per line with its class and exact selectivity — so a generated
// (and exactly-scored) workload can be reused across runs and machines
// without re-evaluating the document. It implements io.WriterTo.
func (w *Workload) WriteTo(out io.Writer) (int64, error) {
	bw := bufio.NewWriter(out)
	n := 0
	write := func(s string) error {
		m, err := bw.WriteString(s)
		n += m
		return err
	}
	if err := write(header + "\n"); err != nil {
		return int64(n), err
	}
	for _, q := range w.Queries {
		if err := write(fmt.Sprintf("%s\t%g\t%s\n", q.Class, q.True, q.Q)); err != nil {
			return int64(n), err
		}
	}
	return int64(n), bw.Flush()
}

// Read parses a workload written by WriteTo, re-parsing every query.
func Read(r io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("workload: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != header {
		return nil, fmt.Errorf("workload: bad header %q", got)
	}
	classByName := map[string]Class{
		Struct.String():  Struct,
		Numeric.String(): Numeric,
		String.String():  String,
		Text.String():    Text,
	}
	w := &Workload{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.SplitN(text, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: line %d: want class<TAB>selectivity<TAB>query", line)
		}
		class, ok := classByName[parts[0]]
		if !ok {
			return nil, fmt.Errorf("workload: line %d: unknown class %q", line, parts[0])
		}
		sel, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: selectivity: %v", line, err)
		}
		q, err := query.Parse(parts[2])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", line, err)
		}
		w.Queries = append(w.Queries, Query{Q: q, Class: class, True: sel})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("workload: no queries")
	}
	return w, nil
}
