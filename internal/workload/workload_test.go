package workload

import (
	"math"
	"testing"

	"xcluster/internal/datagen"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

func testTree(t testing.TB) *xmltree.Tree {
	t.Helper()
	return datagen.IMDB(datagen.IMDBConfig{Seed: 5, Movies: 120, Shows: 40})
}

func TestGeneratePositive(t *testing.T) {
	tr := testTree(t)
	w, err := Generate(tr, Options{Seed: 1, PerClass: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 80 {
		t.Fatalf("queries = %d, want 80", len(w.Queries))
	}
	ev := query.NewEvaluator(tr)
	for _, q := range w.Queries {
		if q.True <= 0 {
			t.Fatalf("positive workload query %s has selectivity %g", q.Q, q.True)
		}
		// Stored true selectivity matches re-evaluation.
		if got := ev.Selectivity(q.Q); got != q.True {
			t.Fatalf("stored %g, re-evaluated %g for %s", q.True, got, q.Q)
		}
	}
	// Class purity: predicate kinds match the class.
	for _, q := range w.Queries {
		kinds := q.Q.PredTypes()
		switch q.Class {
		case Struct:
			if len(kinds) != 0 {
				t.Fatalf("struct query %s has predicates", q.Q)
			}
		case Numeric:
			if !kinds[query.KindRange] || kinds[query.KindContains] || kinds[query.KindFTContains] {
				t.Fatalf("numeric query %s has kinds %v", q.Q, kinds)
			}
		case String:
			if !kinds[query.KindContains] {
				t.Fatalf("string query %s has kinds %v", q.Q, kinds)
			}
		case Text:
			if !kinds[query.KindFTContains] {
				t.Fatalf("text query %s has kinds %v", q.Q, kinds)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tr := testTree(t)
	a, _ := Generate(tr, Options{Seed: 9, PerClass: 10})
	b, _ := Generate(tr, Options{Seed: 9, PerClass: 10})
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("same seed, different workloads")
	}
	for i := range a.Queries {
		if a.Queries[i].Q.String() != b.Queries[i].Q.String() {
			t.Fatalf("query %d differs: %s vs %s", i, a.Queries[i].Q, b.Queries[i].Q)
		}
	}
}

func TestGenerateNegative(t *testing.T) {
	tr := testTree(t)
	w, err := Generate(tr, Options{Seed: 2, PerClass: 10, Negative: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if q.Class == Struct {
			continue // structural twigs are sampled from the data, so positive
		}
		if q.True != 0 {
			t.Fatalf("negative query %s has selectivity %g", q.Q, q.True)
		}
	}
}

func TestSanityBound(t *testing.T) {
	w := &Workload{}
	for i := 1; i <= 100; i++ {
		w.Queries = append(w.Queries, Query{True: float64(i)})
	}
	// 10th percentile of 1..100 is ~11 (index 10).
	if got := w.SanityBound(); got != 11 {
		t.Fatalf("SanityBound = %g, want 11", got)
	}
	// Bound never drops below 1.
	w2 := &Workload{Queries: []Query{{True: 0.1}, {True: 0.2}, {True: 100}}}
	if got := w2.SanityBound(); got != 1 {
		t.Fatalf("SanityBound = %g, want 1", got)
	}
}

func TestRelError(t *testing.T) {
	if got := RelError(100, 90, 10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelError = %g", got)
	}
	// Sanity bound caps the contribution of tiny counts.
	if got := RelError(1, 11, 10); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("RelError with sanity = %g", got)
	}
	if got := RelError(0, 0, 0); got != 0 {
		t.Fatalf("RelError(0,0,0) = %g", got)
	}
}

func TestEvaluatePerfectEstimator(t *testing.T) {
	tr := testTree(t)
	w, _ := Generate(tr, Options{Seed: 3, PerClass: 10})
	ev := query.NewEvaluator(tr)
	rep := w.Evaluate(ev.Selectivity)
	if rep.Overall != 0 {
		t.Fatalf("perfect estimator has error %g", rep.Overall)
	}
	for c, e := range rep.ByClass {
		if e != 0 {
			t.Fatalf("class %v error %g", c, e)
		}
	}
}

func TestEvaluateZeroEstimator(t *testing.T) {
	tr := testTree(t)
	w, _ := Generate(tr, Options{Seed: 3, PerClass: 10})
	rep := w.Evaluate(func(*query.Query) float64 { return 0 })
	// Every positive query is missed entirely: error near 1 (exactly 1
	// for queries above the sanity bound).
	if rep.Overall < 0.5 || rep.Overall > 1 {
		t.Fatalf("zero estimator error = %g", rep.Overall)
	}
}

func TestLowCountAndAbsError(t *testing.T) {
	qs := []Query{{True: 1}, {True: 2}, {True: 50}}
	low := LowCount(qs, 10)
	if len(low) != 2 {
		t.Fatalf("LowCount = %d", len(low))
	}
	got := AvgAbsError(low, func(*query.Query) float64 { return 2 })
	if math.Abs(got-0.5) > 1e-12 { // |1-2|=1, |2-2|=0 → avg 0.5
		t.Fatalf("AvgAbsError = %g", got)
	}
	if AvgAbsError(nil, nil) != 0 {
		t.Fatal("empty AvgAbsError")
	}
}

func TestAvgTrue(t *testing.T) {
	qs := []Query{{True: 10}, {True: 30}}
	if got := AvgTrue(qs); got != 20 {
		t.Fatalf("AvgTrue = %g", got)
	}
}

func TestPredicatePathPurity(t *testing.T) {
	// XMark has nested description texts that are NOT on the summarized
	// value paths; a generated text query must never reach them (the
	// paper samples twigs from the reference synopsis, so predicate
	// paths are unambiguous).
	tr := datagen.XMark(datagen.XMarkConfig{Seed: 9, Scale: 0.3})
	paths := datagen.XMarkValuePaths()
	wanted := make(map[string]bool, len(paths))
	for _, p := range paths {
		wanted[p] = true
	}
	w, err := Generate(tr, Options{Seed: 2, PerClass: 15, ValuePaths: paths})
	if err != nil {
		t.Fatal(err)
	}
	ev := query.NewEvaluator(tr)
	for _, q := range w.Queries {
		if q.Class == Struct {
			continue
		}
		root := q.Q.Roots[0]
		for _, branch := range root.Children {
			if branch.Pred == nil {
				continue
			}
			steps := append(append([]query.Step{}, root.Steps...), branch.Steps...)
			for _, m := range ev.Matches(steps) {
				if !wanted[m.Path()] {
					t.Fatalf("query %s: predicate branch reaches unsummarized path %s", q.Q, m.Path())
				}
			}
		}
	}
}
