// Package workload generates the random twig-query workloads of the
// experimental study and computes its error metrics. Following Section
// 6.1 of the paper, positive workloads are produced by sampling twigs
// from the document (biased toward high counts) and attaching random
// predicates at nodes with values; negative workloads attach
// unsatisfiable predicates and verify zero true selectivity. Accuracy is
// quantified by the average absolute relative error with a sanity bound
// set to the 10-percentile of true workload counts.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// Class partitions workload queries the way Figure 8 reports them:
// structure-only twigs and twigs with predicates on one value type.
type Class uint8

const (
	// Struct marks twigs without value predicates.
	Struct Class = iota
	// Numeric marks twigs with range predicates.
	Numeric
	// String marks twigs with substring predicates.
	String
	// Text marks twigs with keyword predicates.
	Text
)

func (c Class) String() string {
	switch c {
	case Struct:
		return "Struct"
	case Numeric:
		return "Numeric"
	case String:
		return "String"
	case Text:
		return "Text"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Classes lists all workload classes in report order.
func Classes() []Class { return []Class{Numeric, String, Text, Struct} }

// Query is one workload entry with its exact selectivity.
type Query struct {
	Q     *query.Query
	Class Class
	True  float64
}

// Workload is a set of scored queries.
type Workload struct {
	Queries []Query
}

// Options configure workload generation.
type Options struct {
	Seed int64
	// PerClass is the number of queries generated for each class
	// (default 50).
	PerClass int
	// ValuePaths restricts predicate targets to elements on the listed
	// root label paths — the paper attaches predicates at "nodes with
	// values" of the reference synopsis, i.e. the summarized value paths.
	// Nil allows every value-bearing element.
	ValuePaths []string
	// Negative generates zero-selectivity queries instead of positive
	// ones.
	Negative bool
	// MaxTries bounds retries per query (default 50).
	MaxTries int
}

func (o Options) withDefaults() Options {
	if o.PerClass == 0 {
		o.PerClass = 50
	}
	if o.MaxTries == 0 {
		o.MaxTries = 50
	}
	return o
}

// Generate builds a workload over the document.
func Generate(tree *xmltree.Tree, opts Options) (*Workload, error) {
	opts = opts.withDefaults()
	g := &generator{
		tree: tree,
		ev:   query.NewEvaluator(tree),
		r:    rand.New(rand.NewSource(opts.Seed)),
		opts: opts,
	}
	g.index()
	w := &Workload{}
	for _, class := range Classes() {
		made := 0
		for made < opts.PerClass {
			q, ok := g.tryQuery(class)
			if !ok {
				break // class not supported by this document
			}
			w.Queries = append(w.Queries, q)
			made++
		}
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("workload: document yields no queries")
	}
	return w, nil
}

// ByClass returns the subset of queries in the given class.
func (w *Workload) ByClass(c Class) []Query {
	var out []Query
	for _, q := range w.Queries {
		if q.Class == c {
			out = append(out, q)
		}
	}
	return out
}

// generator holds the sampling state.
type generator struct {
	tree *xmltree.Tree
	ev   *query.Evaluator
	r    *rand.Rand
	opts Options
	// valueNodes indexes value-bearing elements by type.
	valueNodes map[xmltree.ValueType][]*xmltree.Node
	// valuePaths indexes those same elements per root path, so sampling
	// can alternate between count-biased (element-uniform) and
	// path-uniform choices.
	valuePaths map[xmltree.ValueType]map[string][]*xmltree.Node
	all        []*xmltree.Node
	wanted     map[string]bool // allowed predicate paths (nil = all)
}

func (g *generator) index() {
	if g.opts.ValuePaths != nil {
		g.wanted = make(map[string]bool, len(g.opts.ValuePaths))
		for _, p := range g.opts.ValuePaths {
			g.wanted[p] = true
		}
	}
	g.valueNodes = make(map[xmltree.ValueType][]*xmltree.Node)
	g.valuePaths = make(map[xmltree.ValueType]map[string][]*xmltree.Node)
	for _, n := range g.tree.Nodes() {
		if len(n.Children) > 0 {
			// Structural twigs anchor at internal elements so they carry
			// branches (leaf anchors degenerate to simple paths).
			g.all = append(g.all, n)
		}
		if n.Type != xmltree.TypeNull && (g.wanted == nil || g.wanted[n.Path()]) {
			g.valueNodes[n.Type] = append(g.valueNodes[n.Type], n)
			byPath := g.valuePaths[n.Type]
			if byPath == nil {
				byPath = make(map[string][]*xmltree.Node)
				g.valuePaths[n.Type] = byPath
			}
			byPath[n.Path()] = append(byPath[n.Path()], n)
		}
	}
}

// tryQuery makes up to MaxTries attempts to build a query of the class
// with the required (non-)zero selectivity.
func (g *generator) tryQuery(class Class) (Query, bool) {
	for try := 0; try < g.opts.MaxTries; try++ {
		q := g.buildQuery(class)
		if q == nil {
			return Query{}, false
		}
		sel := g.ev.Selectivity(q)
		if g.opts.Negative {
			if sel == 0 {
				return Query{Q: q, Class: class, True: 0}, true
			}
			continue
		}
		if sel > 0 {
			return Query{Q: q, Class: class, True: sel}, true
		}
	}
	return Query{}, false
}

// buildQuery assembles one random twig of the class.
func (g *generator) buildQuery(class Class) *query.Query {
	if class == Struct {
		return g.buildStruct()
	}
	vt := map[Class]xmltree.ValueType{
		Numeric: xmltree.TypeNumeric,
		String:  xmltree.TypeString,
		Text:    xmltree.TypeText,
	}[class]
	pool := g.valueNodes[vt]
	if len(pool) == 0 {
		return nil
	}
	// Half the picks are element-uniform (biasing toward high-count
	// paths, as in the paper); half are path-uniform so every summarized
	// value path contributes queries.
	v := pool[g.r.Intn(len(pool))]
	if byPath := g.valuePaths[vt]; len(byPath) > 1 && g.r.Intn(2) == 0 {
		paths := make([]string, 0, len(byPath))
		for p := range byPath {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pp := byPath[paths[g.r.Intn(len(paths))]]
		v = pp[g.r.Intn(len(pp))]
	}
	anchor := v.Parent
	if anchor == nil {
		return nil
	}
	anchorVar := g.pathVariable(anchor)
	pred := g.makePred(v)
	if pred == nil {
		return nil
	}
	branch := &query.Node{
		Steps: []query.Step{{Axis: query.Child, Label: v.Label}},
		Pred:  pred,
	}
	// The paper samples twigs from the reference synopsis, so a
	// predicate path always denotes one synopsis cluster. A randomly
	// shortened path (//title) can be ambiguous — it may also reach
	// same-label elements outside the sampled value path — in which case
	// we fall back to the full, unambiguous root path.
	if !g.pureTarget(anchorVar.Steps, branch.Steps, v.Path()) {
		anchorVar = g.fullPathVariable(anchor)
	}
	anchorVar.Children = append(anchorVar.Children, branch)
	// Occasionally attach a second branch: a structural sibling or a
	// second same-class predicate.
	if g.r.Intn(3) == 0 {
		if extra := g.extraBranch(anchor, v, vt); extra != nil {
			if extra.Pred == nil || g.pureTarget(anchorVar.Steps, extra.Steps, anchor.Path()+"/"+extra.Steps[len(extra.Steps)-1].Label) {
				anchorVar.Children = append(anchorVar.Children, extra)
			}
		}
	}
	return &query.Query{Roots: []*query.Node{anchorVar}}
}

// pureTarget reports whether every element reached by anchorSteps
// followed by branchSteps lies on the given root label path.
func (g *generator) pureTarget(anchorSteps, branchSteps []query.Step, wantPath string) bool {
	steps := make([]query.Step, 0, len(anchorSteps)+len(branchSteps))
	steps = append(steps, anchorSteps...)
	steps = append(steps, branchSteps...)
	for _, m := range g.ev.Matches(steps) {
		if m.Path() != wantPath {
			return false
		}
	}
	return true
}

// fullPathVariable builds a variable with the exact root-to-e child path
// (no shortening, no wildcards).
func (g *generator) fullPathVariable(e *xmltree.Node) *query.Node {
	var labels []string
	for n := e; n != nil; n = n.Parent {
		labels = append(labels, n.Label)
	}
	steps := make([]query.Step, len(labels))
	for i := range labels {
		steps[i] = query.Step{Axis: query.Child, Label: labels[len(labels)-1-i]}
	}
	return &query.Node{Steps: steps}
}

// buildStruct builds a structure-only twig around a random element:
// multi-branch twigs with branches up to two levels deep, the query shape
// that stresses the synopsis's structural-independence assumptions.
func (g *generator) buildStruct() *query.Query {
	e := g.all[g.r.Intn(len(g.all))]
	v := g.pathVariable(e)
	if len(e.Children) > 0 {
		nBranches := 1 + g.r.Intn(2)
		used := make(map[string]bool)
		for i := 0; i < nBranches; i++ {
			c := e.Children[g.r.Intn(len(e.Children))]
			if used[c.Label] {
				continue
			}
			used[c.Label] = true
			branch := &query.Node{
				Steps: []query.Step{{Axis: query.Child, Label: c.Label}},
			}
			// Half the time, extend the branch one more level.
			if len(c.Children) > 0 && g.r.Intn(2) == 0 {
				cc := c.Children[g.r.Intn(len(c.Children))]
				branch.Steps = append(branch.Steps, query.Step{Axis: query.Child, Label: cc.Label})
			}
			v.Children = append(v.Children, branch)
		}
	}
	return &query.Query{Roots: []*query.Node{v}}
}

// pathVariable builds a single query variable whose edge path reaches
// elements like e: the root-to-e label path, randomly shortened with a
// descendant step and sprinkled with wildcards.
func (g *generator) pathVariable(e *xmltree.Node) *query.Node {
	var labels []string
	for n := e; n != nil; n = n.Parent {
		labels = append(labels, n.Label)
	}
	// Reverse into root-first order.
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	steps := make([]query.Step, 0, len(labels))
	start := 0
	desc := false
	if len(labels) > 1 && g.r.Intn(2) == 0 {
		// Start with // at a random depth.
		start = 1 + g.r.Intn(len(labels)-1)
		desc = true
	}
	for i := start; i < len(labels); i++ {
		axis := query.Child
		if desc && i == start {
			axis = query.Descendant
		}
		label := labels[i]
		// Wildcards only on intermediate steps, sparingly.
		if i > start && i < len(labels)-1 && g.r.Intn(8) == 0 {
			label = query.Wildcard
		}
		steps = append(steps, query.Step{Axis: axis, Label: label})
	}
	return &query.Node{Steps: steps}
}

// makePred derives a predicate from the value of v: positive workloads
// take it from the actual value, negative workloads make it
// unsatisfiable.
func (g *generator) makePred(v *xmltree.Node) query.Pred {
	if g.opts.Negative {
		return g.makeNegativePred(v)
	}
	switch v.Type {
	case xmltree.TypeNumeric:
		// A range around the observed value; one-sided half the time.
		span := 1 << g.r.Intn(8)
		switch g.r.Intn(3) {
		case 0:
			return query.Range{Lo: v.Num - span, Hi: v.Num + g.r.Intn(span+1)}
		case 1:
			return query.Range{Lo: v.Num, Hi: query.MaxBound}
		default:
			return query.Range{Lo: -query.MaxBound, Hi: v.Num + g.r.Intn(span+1)}
		}
	case xmltree.TypeString:
		// Substring predicates are word fragments of the observed value
		// (like the paper's contains(Tree) / contains(ACM) examples);
		// fragments spanning word boundaries are both unrealistic and
		// pathological for Markovian PST estimation.
		words := strings.Fields(v.Str)
		var candidates []string
		for _, w := range words {
			if len(w) >= 2 {
				candidates = append(candidates, w)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
		w := candidates[g.r.Intn(len(candidates))]
		n := 2 + g.r.Intn(4)
		if n > len(w) {
			n = len(w)
		}
		start := g.r.Intn(len(w) - n + 1)
		return query.Contains{Substr: w[start : start+n]}
	case xmltree.TypeText:
		if len(v.Terms) == 0 {
			return nil
		}
		k := 1
		if len(v.Terms) > 1 && g.r.Intn(3) == 0 {
			k = 2
		}
		terms := make([]string, 0, k)
		seen := make(map[int]bool)
		for len(terms) < k {
			id := v.Terms[g.r.Intn(len(v.Terms))]
			if !seen[id] {
				seen[id] = true
				terms = append(terms, g.tree.Dict.Term(id))
			}
		}
		return query.FTContains{Terms: terms}
	}
	return nil
}

// makeNegativePred builds a predicate no element satisfies.
func (g *generator) makeNegativePred(v *xmltree.Node) query.Pred {
	switch v.Type {
	case xmltree.TypeNumeric:
		return query.Range{Lo: query.MaxBound - 1000 + g.r.Intn(500), Hi: query.MaxBound}
	case xmltree.TypeString:
		// '~' never appears in generated strings.
		return query.Contains{Substr: "~" + strings.Repeat("q", 1+g.r.Intn(3))}
	case xmltree.TypeText:
		return query.FTContains{Terms: []string{fmt.Sprintf("zzunseen%d", g.r.Intn(1000))}}
	}
	return nil
}

// extraBranch returns a second branch under the anchor: a same-class
// predicate on a different value child when available, otherwise a
// structural existence branch.
func (g *generator) extraBranch(anchor, used *xmltree.Node, vt xmltree.ValueType) *query.Node {
	var valueKids, structKids []*xmltree.Node
	for _, c := range anchor.Children {
		if c == used {
			continue
		}
		if c.Type == vt && (g.wanted == nil || g.wanted[c.Path()]) {
			valueKids = append(valueKids, c)
		} else if c.Type == xmltree.TypeNull {
			structKids = append(structKids, c)
		}
	}
	if len(valueKids) > 0 && g.r.Intn(2) == 0 {
		c := valueKids[g.r.Intn(len(valueKids))]
		if pred := g.makePred(c); pred != nil {
			return &query.Node{
				Steps: []query.Step{{Axis: query.Child, Label: c.Label}},
				Pred:  pred,
			}
		}
	}
	if len(structKids) > 0 {
		c := structKids[g.r.Intn(len(structKids))]
		return &query.Node{
			Steps: []query.Step{{Axis: query.Child, Label: c.Label}},
		}
	}
	return nil
}

// SanityBound returns the 10-percentile of positive true counts: the
// bound s such that 90% of workload queries have true result size >= s.
func (w *Workload) SanityBound() float64 {
	counts := make([]float64, 0, len(w.Queries))
	for _, q := range w.Queries {
		counts = append(counts, q.True)
	}
	sort.Float64s(counts)
	if len(counts) == 0 {
		return 1
	}
	b := counts[len(counts)/10]
	if b < 1 {
		b = 1
	}
	return b
}
