package workload

import (
	"math"

	"xcluster/internal/accuracy"
	"xcluster/internal/query"
)

// EstimateFunc maps a query to an estimated selectivity (typically an
// Estimator bound to a synopsis).
type EstimateFunc func(*query.Query) float64

// RelError returns the absolute relative error |c − e| / max(c, sanity)
// of one estimate, the paper's per-query accuracy metric. It delegates
// to internal/accuracy, the metric's single implementation shared with
// the online monitor.
func RelError(trueSel, est, sanity float64) float64 {
	return accuracy.RelError(trueSel, est, sanity)
}

// AvgRelError returns the average absolute relative error of the
// estimator over the queries, with the given sanity bound.
func AvgRelError(qs []Query, est EstimateFunc, sanity float64) float64 {
	if len(qs) == 0 {
		return 0
	}
	total := 0.0
	for _, q := range qs {
		total += RelError(q.True, est(q.Q), sanity)
	}
	return total / float64(len(qs))
}

// AvgAbsError returns the average absolute error |c − e| of the estimator
// over the queries (the Figure 9 metric).
func AvgAbsError(qs []Query, est EstimateFunc) float64 {
	if len(qs) == 0 {
		return 0
	}
	total := 0.0
	for _, q := range qs {
		total += math.Abs(q.True - est(q.Q))
	}
	return total / float64(len(qs))
}

// LowCount returns the queries whose true selectivity falls below the
// sanity bound (the Figure 9 slice).
func LowCount(qs []Query, bound float64) []Query {
	var out []Query
	for _, q := range qs {
		if q.True < bound {
			out = append(out, q)
		}
	}
	return out
}

// AvgTrue returns the average true result size of the queries (Table 2).
func AvgTrue(qs []Query) float64 {
	if len(qs) == 0 {
		return 0
	}
	total := 0.0
	for _, q := range qs {
		total += q.True
	}
	return total / float64(len(qs))
}

// Report is one row of the Figure 8 error curves: the per-class and
// overall average relative errors of a synopsis on a workload.
type Report struct {
	ByClass map[Class]float64
	Overall float64
	Sanity  float64
}

// Evaluate scores an estimator on the workload with the workload's own
// sanity bound.
func (w *Workload) Evaluate(est EstimateFunc) Report {
	sanity := w.SanityBound()
	rep := Report{ByClass: make(map[Class]float64), Sanity: sanity}
	for _, c := range Classes() {
		rep.ByClass[c] = AvgRelError(w.ByClass(c), est, sanity)
	}
	rep.Overall = AvgRelError(w.Queries, est, sanity)
	return rep
}
