package workload

import (
	"bytes"
	"strings"
	"testing"

	"xcluster/internal/datagen"
	"xcluster/internal/query"
)

func TestWorkloadRoundTrip(t *testing.T) {
	tr := datagen.IMDB(datagen.IMDBConfig{Seed: 5, Movies: 80, Shows: 30})
	w, err := Generate(tr, Options{Seed: 1, PerClass: 8, ValuePaths: datagen.IMDBValuePaths()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Queries) != len(w.Queries) {
		t.Fatalf("queries %d -> %d", len(w.Queries), len(back.Queries))
	}
	ev := query.NewEvaluator(tr)
	for i, q := range back.Queries {
		if q.Class != w.Queries[i].Class || q.True != w.Queries[i].True {
			t.Fatalf("query %d metadata changed: %+v vs %+v", i, q, w.Queries[i])
		}
		// The re-parsed query evaluates to the stored selectivity.
		if got := ev.Selectivity(q.Q); got != q.True {
			t.Fatalf("query %d (%s): stored %g, evaluates to %g", i, q.Q, q.True, got)
		}
	}
	if back.SanityBound() != w.SanityBound() {
		t.Fatal("sanity bound changed")
	}
}

func TestWorkloadReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "not a workload\n",
		"bad fields": header + "\nStruct only-two-fields\n",
		"bad class":  header + "\nWeird\t1\t//a\n",
		"bad number": header + "\nStruct\txyz\t//a\n",
		"bad query":  header + "\nStruct\t1\tnot-a-query\n",
		"no queries": header + "\n# just a comment\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWorkloadReadSkipsComments(t *testing.T) {
	in := header + "\n# comment\n\nStruct\t42\t//movie\n"
	w, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 1 || w.Queries[0].True != 42 {
		t.Fatalf("parsed %+v", w.Queries)
	}
}
