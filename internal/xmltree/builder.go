package xmltree

// Builder assembles a document tree programmatically. Generators and tests
// use it instead of round-tripping through XML text.
type Builder struct {
	dict  *Dict
	root  *Node
	stack []*Node
}

// NewBuilder returns a Builder that interns TEXT terms into dict (a fresh
// dictionary is created when nil).
func NewBuilder(dict *Dict) *Builder {
	if dict == nil {
		dict = NewDict()
	}
	return &Builder{dict: dict}
}

// Dict returns the builder's term dictionary.
func (b *Builder) Dict() *Dict { return b.dict }

// push attaches a node under the current open element (or as root).
func (b *Builder) push(n *Node) *Node {
	if len(b.stack) > 0 {
		p := b.stack[len(b.stack)-1]
		n.Parent = p
		p.Children = append(p.Children, n)
	} else if b.root == nil {
		b.root = n
	} else {
		panic("xmltree: Builder: multiple roots")
	}
	return n
}

// Open starts a structural element and makes it the current element.
func (b *Builder) Open(label string) *Builder {
	n := b.push(&Node{Label: label})
	b.stack = append(b.stack, n)
	return b
}

// Close ends the current element.
func (b *Builder) Close() *Builder {
	if len(b.stack) == 0 {
		panic("xmltree: Builder: Close without Open")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Numeric adds a NUMERIC-valued leaf element.
func (b *Builder) Numeric(label string, v int) *Builder {
	b.push(&Node{Label: label, Type: TypeNumeric, Num: v})
	return b
}

// String adds a STRING-valued leaf element.
func (b *Builder) String(label, v string) *Builder {
	b.push(&Node{Label: label, Type: TypeString, Str: v})
	return b
}

// Text adds a TEXT-valued leaf element, interning the raw text.
func (b *Builder) Text(label, text string) *Builder {
	b.push(&Node{Label: label, Type: TypeText, Terms: b.dict.InternText(text)})
	return b
}

// TextTerms adds a TEXT-valued leaf element from pre-tokenized terms.
func (b *Builder) TextTerms(label string, terms []string) *Builder {
	b.push(&Node{Label: label, Type: TypeText, Terms: b.dict.InternTerms(terms)})
	return b
}

// Empty adds a structural leaf element with no value.
func (b *Builder) Empty(label string) *Builder {
	b.push(&Node{Label: label})
	return b
}

// Tree finalizes the document. It panics if elements remain open or
// nothing was built.
func (b *Builder) Tree() *Tree {
	if len(b.stack) != 0 {
		panic("xmltree: Builder: unclosed elements")
	}
	if b.root == nil {
		panic("xmltree: Builder: empty document")
	}
	return NewTree(b.root, b.dict)
}
