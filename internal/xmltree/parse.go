package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TypeHint decides the value type of an element that carries character
// data. It receives the root label path of the element (e.g.
// "/site/item/price") and the raw text, and returns the type to assign.
type TypeHint func(path, text string) ValueType

// DefaultTypeHint infers a value type from the text alone: integers become
// NUMERIC, short strings (at most five index terms) become STRING, and
// longer free text becomes TEXT. This matches the paper's convention that
// NUMERIC values live in an integer domain, STRING values are short
// (titles, names), and TEXT values are free text (abstracts, forewords).
func DefaultTypeHint(path, text string) ValueType {
	if _, err := strconv.Atoi(strings.TrimSpace(text)); err == nil {
		return TypeNumeric
	}
	if len(Tokenize(text)) > 5 {
		return TypeText
	}
	return TypeString
}

// ParseOptions configures Parse.
type ParseOptions struct {
	// Hint decides value types; DefaultTypeHint is used when nil.
	Hint TypeHint
	// Dict is the term dictionary to intern TEXT terms into; a fresh one
	// is created when nil.
	Dict *Dict
	// Attributes maps XML attributes to child elements labeled "@name"
	// carrying the attribute value (typed via Hint). The paper's data
	// model is element-only, but real data sets (including the original
	// XMark) carry ids and refs as attributes; this folds them into the
	// model instead of dropping them.
	Attributes bool
}

// Parse reads an XML document into a Tree. Elements whose content is pure
// character data become typed value nodes; mixed and element-only content
// contributes structure only. Attributes are ignored (the paper's model is
// element-only; generators emit attribute-free documents).
func Parse(r io.Reader, opts ParseOptions) (*Tree, error) {
	hint := opts.Hint
	if hint == nil {
		hint = DefaultTypeHint
	}
	dict := opts.Dict
	if dict == nil {
		dict = NewDict()
	}

	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	var textStack []*strings.Builder

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: t.Name.Local}
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("xmltree: parse: multiple root elements")
			}
			if opts.Attributes {
				for _, a := range t.Attr {
					c := &Node{Label: "@" + a.Name.Local, Parent: n}
					assignValue(c, hint(n.Path()+"/@"+a.Name.Local, a.Value), a.Value, dict)
					n.Children = append(n.Children, c)
				}
			}
			stack = append(stack, n)
			textStack = append(textStack, &strings.Builder{})
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", t.Name.Local)
			}
			n := stack[len(stack)-1]
			text := strings.TrimSpace(textStack[len(textStack)-1].String())
			stack = stack[:len(stack)-1]
			textStack = textStack[:len(textStack)-1]
			if text != "" && len(n.Children) == 0 {
				assignValue(n, hint(n.Path(), text), text, dict)
			}
		case xml.CharData:
			if len(textStack) > 0 {
				textStack[len(textStack)-1].Write(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unbalanced document")
	}
	return NewTree(root, dict), nil
}

// assignValue stores text on n under the given type, interning TEXT terms
// into dict.
func assignValue(n *Node, vt ValueType, text string, dict *Dict) {
	switch vt {
	case TypeNumeric:
		num, err := strconv.Atoi(strings.TrimSpace(text))
		if err != nil {
			// The hint lied; fall back to STRING so no data is lost.
			n.Type = TypeString
			n.Str = text
			return
		}
		n.Type = TypeNumeric
		n.Num = num
	case TypeString:
		n.Type = TypeString
		n.Str = text
	case TypeText:
		n.Type = TypeText
		n.Terms = dict.InternText(text)
	default:
		n.Type = TypeNull
	}
}

// Write serializes the tree back to XML with two-space indentation. TEXT
// values are written as the space-joined dictionary terms of their vector
// (the Boolean model retains term sets, not the original prose).
func Write(w io.Writer, t *Tree) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := writeNode(enc, t, t.Root); err != nil {
		return err
	}
	return enc.Flush()
}

func writeNode(enc *xml.Encoder, t *Tree, n *Node) error {
	start := xml.StartElement{Name: xml.Name{Local: n.Label}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	switch n.Type {
	case TypeNumeric:
		if err := enc.EncodeToken(xml.CharData(strconv.Itoa(n.Num))); err != nil {
			return err
		}
	case TypeString:
		if err := enc.EncodeToken(xml.CharData(n.Str)); err != nil {
			return err
		}
	case TypeText:
		terms := make([]string, len(n.Terms))
		for i, id := range n.Terms {
			terms[i] = t.Dict.Term(id)
		}
		if err := enc.EncodeToken(xml.CharData(strings.Join(terms, " "))); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := writeNode(enc, t, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}
