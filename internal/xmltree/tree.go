// Package xmltree implements the XML data model used throughout the
// XCluster reproduction: a large node-labeled tree T(V,E) in which every
// element node carries a label (tag) and, optionally, a typed value
// (NUMERIC, STRING, or TEXT).
//
// The package also provides a parser and writer built on encoding/xml, a
// free-text tokenizer, and a global term dictionary that maps index terms
// to dense integer ids (the Boolean-vector representation of TEXT values
// from the paper's IR model).
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// ValueType identifies the data type of an element's value. Elements
// without values are mapped to TypeNull, mirroring the paper's special
// null data type.
type ValueType uint8

const (
	// TypeNull marks elements that carry no value.
	TypeNull ValueType = iota
	// TypeNumeric marks integer-valued elements in the domain {0..M-1}.
	TypeNumeric
	// TypeString marks short string values queried with substring
	// (contains) predicates.
	TypeString
	// TypeText marks free-text values queried with IR-style keyword
	// (ftcontains) predicates; they are modeled as Boolean term vectors
	// over the document's term dictionary.
	TypeText
)

// String returns the conventional name of the value type.
func (t ValueType) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeNumeric:
		return "numeric"
	case TypeString:
		return "string"
	case TypeText:
		return "text"
	default:
		return fmt.Sprintf("ValueType(%d)", uint8(t))
	}
}

// Node is a single element node of the document tree.
type Node struct {
	// ID is the preorder identifier of the node within its Tree, assigned
	// by the Tree builder; the root has ID 0.
	ID int
	// Label is the element tag.
	Label string
	// Type is the data type of the node's value.
	Type ValueType
	// Num is the numeric value when Type == TypeNumeric.
	Num int
	// Str is the string value when Type == TypeString.
	Str string
	// Terms is the sorted set of dictionary term ids present in the
	// node's free text when Type == TypeText (the Boolean term vector in
	// sparse form).
	Terms []int
	// Parent is the parent element, nil for the root.
	Parent *Node
	// Children are the element's child elements in document order.
	Children []*Node
}

// IsLeaf reports whether the node has no child elements.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// HasTerm reports whether term id t appears in the node's TEXT value.
// Terms must be sorted, which the Tree builder guarantees.
func (n *Node) HasTerm(t int) bool {
	i := sort.SearchInts(n.Terms, t)
	return i < len(n.Terms) && n.Terms[i] == t
}

// Path returns the root-to-node label path, e.g. "/site/people/person".
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Label
	}
	return n.Parent.Path() + "/" + n.Label
}

// Tree is an entire XML document: the root element plus the shared term
// dictionary used by every TEXT value in the document.
type Tree struct {
	Root *Node
	// Dict maps free-text terms to the dense ids used in Node.Terms.
	Dict *Dict
	// nodes holds every node indexed by ID (preorder).
	nodes []*Node
	// subtreeEnd[i] is the largest preorder ID inside node i's subtree,
	// so i's descendants are exactly the IDs in (i, subtreeEnd[i]].
	subtreeEnd []int
	// byLabel indexes node IDs (sorted) per label.
	byLabel map[string][]int
}

// NewTree wraps a root node (with its descendants already linked) into a
// Tree, assigning preorder IDs and normalizing term vectors. dict may be
// nil when the document has no TEXT content.
func NewTree(root *Node, dict *Dict) *Tree {
	if dict == nil {
		dict = NewDict()
	}
	t := &Tree{Root: root, Dict: dict}
	t.reindex()
	return t
}

// reindex assigns preorder IDs, collects the node slice, and builds the
// subtree-interval and label indexes that back descendant navigation.
func (t *Tree) reindex() {
	t.nodes = t.nodes[:0]
	t.byLabel = make(map[string][]int)
	var walk func(n *Node)
	walk = func(n *Node) {
		n.ID = len(t.nodes)
		t.nodes = append(t.nodes, n)
		t.byLabel[n.Label] = append(t.byLabel[n.Label], n.ID)
		if n.Type == TypeText && !sort.IntsAreSorted(n.Terms) {
			sort.Ints(n.Terms)
		}
		for _, c := range n.Children {
			c.Parent = n
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	t.subtreeEnd = make([]int, len(t.nodes))
	var mark func(n *Node) int
	mark = func(n *Node) int {
		end := n.ID
		for _, c := range n.Children {
			end = mark(c)
		}
		t.subtreeEnd[n.ID] = end
		return end
	}
	if t.Root != nil {
		mark(t.Root)
	}
}

// SubtreeEnd returns the largest preorder ID within n's subtree: n's
// proper descendants are exactly the nodes with IDs in (n.ID, end].
func (t *Tree) SubtreeEnd(n *Node) int { return t.subtreeEnd[n.ID] }

// LabeledIDs returns the sorted preorder IDs of all nodes with the given
// label (nil if none). The slice is owned by the tree.
func (t *Tree) LabeledIDs(label string) []int { return t.byLabel[label] }

// Len returns the number of element nodes in the document.
func (t *Tree) Len() int { return len(t.nodes) }

// Node returns the node with the given preorder ID.
func (t *Tree) Node(id int) *Node { return t.nodes[id] }

// Nodes returns all nodes in preorder. The slice is owned by the tree and
// must not be mutated.
func (t *Tree) Nodes() []*Node { return t.nodes }

// Walk visits every node in preorder.
func (t *Tree) Walk(fn func(*Node)) {
	for _, n := range t.nodes {
		fn(n)
	}
}

// Stats summarizes the document for reporting (Table 1 of the paper).
type Stats struct {
	Elements   int // total element count
	ValueNodes int // elements with non-null values
	ByType     map[ValueType]int
	Labels     int // distinct tags
	MaxDepth   int
	Terms      int // dictionary size
}

// ComputeStats derives document statistics in a single pass.
func (t *Tree) ComputeStats() Stats {
	s := Stats{ByType: make(map[ValueType]int), Terms: t.Dict.Len()}
	labels := make(map[string]struct{})
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Elements++
		labels[n.Label] = struct{}{}
		if n.Type != TypeNull {
			s.ValueNodes++
		}
		s.ByType[n.Type]++
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 1)
	}
	s.Labels = len(labels)
	return s
}

// PathNodes returns all nodes whose root path equals path (a
// "/a/b/c"-style label path).
func (t *Tree) PathNodes(path string) []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Path() == path {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural invariants of the tree: parent/child links
// are mutual, IDs are preorder, and term vectors are sorted sets within
// the dictionary. It returns the first violation found.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("xmltree: nil root")
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("xmltree: root has a parent")
	}
	want := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.ID != want {
			return fmt.Errorf("xmltree: node %q has id %d, want %d", n.Label, n.ID, want)
		}
		want++
		if strings.TrimSpace(n.Label) == "" {
			return fmt.Errorf("xmltree: node %d has empty label", n.ID)
		}
		if n.Type == TypeText {
			for i, term := range n.Terms {
				if i > 0 && n.Terms[i-1] >= term {
					return fmt.Errorf("xmltree: node %d has unsorted/duplicate terms", n.ID)
				}
				if term < 0 || term >= t.Dict.Len() {
					return fmt.Errorf("xmltree: node %d references unknown term %d", n.ID, term)
				}
			}
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("xmltree: node %d child %d has wrong parent", n.ID, c.ID)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if want != len(t.nodes) {
		return fmt.Errorf("xmltree: index holds %d nodes, tree has %d", len(t.nodes), want)
	}
	return nil
}
