package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

// paperExample builds the bibliographic document of Figure 1 in the paper:
// a dblp root with authors, each with a name and paper/book sub-elements
// carrying year (NUMERIC), title (STRING) and abstract/keywords/foreword
// (TEXT) values.
func paperExample(t testing.TB) *Tree {
	t.Helper()
	b := NewBuilder(nil)
	b.Open("dblp")
	b.Open("author")
	b.String("name", "N. Polyzotis")
	b.Open("paper")
	b.Numeric("year", 2000)
	b.String("title", "Counting Twig Matches")
	b.Text("keywords", "XML summary synopsis estimation")
	b.Close()
	b.Open("paper")
	b.Numeric("year", 2002)
	b.String("title", "Holistic Twig Joins")
	b.Text("abstract", "XML employs a tree structured data model for queries")
	b.Close()
	b.Close()
	b.Open("author")
	b.String("name", "M. Garofalakis")
	b.Open("book")
	b.Numeric("year", 2002)
	b.String("title", "Database Systems")
	b.Text("foreword", "Database systems have become essential infrastructure for applications")
	b.Close()
	b.Close()
	b.Close()
	return b.Tree()
}

func TestBuilderPaperExample(t *testing.T) {
	tr := paperExample(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tr.Len(); got != 17 {
		t.Fatalf("Len = %d, want 17", got)
	}
	if tr.Root.Label != "dblp" {
		t.Fatalf("root label = %q", tr.Root.Label)
	}
	st := tr.ComputeStats()
	if st.Elements != 17 || st.ValueNodes != 11 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByType[TypeNumeric] != 3 || st.ByType[TypeString] != 5 || st.ByType[TypeText] != 3 {
		t.Fatalf("type counts = %v", st.ByType)
	}
	if st.MaxDepth != 4 {
		t.Fatalf("MaxDepth = %d, want 4", st.MaxDepth)
	}
}

func TestNodePath(t *testing.T) {
	tr := paperExample(t)
	years := tr.PathNodes("/dblp/author/paper/year")
	if len(years) != 2 {
		t.Fatalf("got %d year nodes under paper, want 2", len(years))
	}
	for _, y := range years {
		if y.Type != TypeNumeric {
			t.Fatalf("year node has type %v", y.Type)
		}
	}
	if got := tr.PathNodes("/dblp/author/book/year"); len(got) != 1 {
		t.Fatalf("book years = %d, want 1", len(got))
	}
}

func TestHasTerm(t *testing.T) {
	tr := paperExample(t)
	kw := tr.PathNodes("/dblp/author/paper/keywords")[0]
	id, ok := tr.Dict.ID("xml")
	if !ok {
		t.Fatal("term xml not interned")
	}
	if !kw.HasTerm(id) {
		t.Fatal("keywords should contain xml")
	}
	if kw.HasTerm(tr.Dict.Len() + 5) {
		t.Fatal("HasTerm true for unknown id")
	}
}

func TestParseRoundTrip(t *testing.T) {
	tr := paperExample(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Parse(&buf, ParseOptions{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), tr.Len())
	}
	// Values survive with types intact.
	y := back.PathNodes("/dblp/author/paper/year")
	if len(y) != 2 || y[0].Type != TypeNumeric || y[0].Num != 2000 {
		t.Fatalf("year after round trip: %+v", y)
	}
	titles := back.PathNodes("/dblp/author/book/title")
	if len(titles) != 1 || titles[0].Type != TypeString || titles[0].Str != "Database Systems" {
		t.Fatalf("title after round trip: %+v", titles)
	}
	fw := back.PathNodes("/dblp/author/book/foreword")
	if len(fw) != 1 || fw[0].Type != TypeText {
		t.Fatalf("foreword after round trip: %+v", fw)
	}
	if id, ok := back.Dict.ID("database"); !ok || !fw[0].HasTerm(id) {
		t.Fatal("foreword lost the term 'database'")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"unbalanced": "<a><b></a>",
		"two roots":  "<a></a><b></b>",
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc), ParseOptions{}); err == nil {
			t.Errorf("%s: Parse accepted %q", name, doc)
		}
	}
}

func TestDefaultTypeHint(t *testing.T) {
	cases := []struct {
		text string
		want ValueType
	}{
		{"1984", TypeNumeric},
		{"  42 ", TypeNumeric},
		{"Database Systems", TypeString},
		{"one two three four five six seven", TypeText},
	}
	for _, c := range cases {
		if got := DefaultTypeHint("/x", c.text); got != c.want {
			t.Errorf("hint(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("XML, employs a Tree-structured data-model!")
	want := []string{"xml", "employs", "tree", "structured", "data", "model"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("xml")
	b := d.Intern("tree")
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if again := d.Intern("xml"); again != a {
		t.Fatalf("re-intern changed id: %d != %d", again, a)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Term(a) != "xml" {
		t.Fatalf("Term(%d) = %q", a, d.Term(a))
	}
}

func TestInternTextDedup(t *testing.T) {
	d := NewDict()
	ids := d.InternText("xml xml tree xml tree")
	if len(ids) != 2 {
		t.Fatalf("InternText kept duplicates: %v", ids)
	}
	if ids[0] >= ids[1] {
		t.Fatalf("ids not sorted: %v", ids)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := paperExample(t)
	// Break a parent pointer.
	tr.Root.Children[0].Children[1].Parent = tr.Root
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate missed a broken parent pointer")
	}
}

func TestMixedContentIsStructural(t *testing.T) {
	doc := "<a>hello<b>5</b></a>"
	tr, err := Parse(strings.NewReader(doc), ParseOptions{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Root.Type != TypeNull {
		t.Fatalf("mixed-content root got type %v", tr.Root.Type)
	}
	if tr.Root.Children[0].Type != TypeNumeric {
		t.Fatalf("b should be numeric, got %v", tr.Root.Children[0].Type)
	}
}

func TestSubtreeEndAndLabelIndex(t *testing.T) {
	tr := paperExample(t)
	// Root's subtree covers everything.
	if got := tr.SubtreeEnd(tr.Root); got != tr.Len()-1 {
		t.Fatalf("root SubtreeEnd = %d, want %d", got, tr.Len()-1)
	}
	// A leaf's subtree is itself.
	leaf := tr.PathNodes("/dblp/author/paper/year")[0]
	if got := tr.SubtreeEnd(leaf); got != leaf.ID {
		t.Fatalf("leaf SubtreeEnd = %d, want %d", got, leaf.ID)
	}
	// The interval (n.ID, end] is exactly n's proper descendants.
	for _, n := range tr.Nodes() {
		end := tr.SubtreeEnd(n)
		count := 0
		var walk func(x *Node)
		walk = func(x *Node) {
			for _, c := range x.Children {
				count++
				if c.ID <= n.ID || c.ID > end {
					t.Fatalf("descendant %d outside (%d,%d]", c.ID, n.ID, end)
				}
				walk(c)
			}
		}
		walk(n)
		if count != end-n.ID {
			t.Fatalf("node %d: %d descendants, interval holds %d", n.ID, count, end-n.ID)
		}
	}
	// Label index is sorted and complete.
	ids := tr.LabeledIDs("year")
	if len(ids) != 3 {
		t.Fatalf("year ids = %v", ids)
	}
	for i, id := range ids {
		if tr.Node(id).Label != "year" {
			t.Fatalf("id %d is %s", id, tr.Node(id).Label)
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatal("label index not sorted")
		}
	}
	if tr.LabeledIDs("missing") != nil {
		t.Fatal("missing label returned ids")
	}
}

func TestParseAttributes(t *testing.T) {
	doc := `<site><item id="42" featured="yes"><name>Brass Compass</name></item></site>`
	// Default: attributes ignored.
	plain, err := Parse(strings.NewReader(doc), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 3 {
		t.Fatalf("plain Len = %d, want 3", plain.Len())
	}
	// With Attributes: @id and @featured become typed children.
	withAttrs, err := Parse(strings.NewReader(doc), ParseOptions{Attributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if withAttrs.Len() != 5 {
		t.Fatalf("attr Len = %d, want 5", withAttrs.Len())
	}
	if err := withAttrs.Validate(); err != nil {
		t.Fatal(err)
	}
	ids := withAttrs.PathNodes("/site/item/@id")
	if len(ids) != 1 || ids[0].Type != TypeNumeric || ids[0].Num != 42 {
		t.Fatalf("@id = %+v", ids)
	}
	feat := withAttrs.PathNodes("/site/item/@featured")
	if len(feat) != 1 || feat[0].Type != TypeString || feat[0].Str != "yes" {
		t.Fatalf("@featured = %+v", feat)
	}
}
