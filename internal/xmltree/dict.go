package xmltree

import (
	"sort"
	"strings"
	"unicode"
)

// Dict is the term dictionary underlying the Boolean-vector model of TEXT
// values: a bijection between index terms and dense integer ids.
type Dict struct {
	terms []string
	ids   map[string]int
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int)}
}

// Intern returns the id for term, adding it to the dictionary if absent.
func (d *Dict) Intern(term string) int {
	if id, ok := d.ids[term]; ok {
		return id
	}
	id := len(d.terms)
	d.terms = append(d.terms, term)
	d.ids[term] = id
	return id
}

// ID returns the id for term and whether the term is present.
func (d *Dict) ID(term string) (int, bool) {
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the term with the given id.
func (d *Dict) Term(id int) string { return d.terms[id] }

// Len returns the number of distinct terms.
func (d *Dict) Len() int { return len(d.terms) }

// Terms returns all terms ordered by id. The slice is owned by the
// dictionary and must not be mutated.
func (d *Dict) Terms() []string { return d.terms }

// Tokenize splits free text into lowercase index terms, dropping
// punctuation and single-character tokens. This is the standard Boolean-IR
// normalization assumed by the paper's TEXT model.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		f = strings.ToLower(f)
		if len(f) > 1 {
			out = append(out, f)
		}
	}
	return out
}

// InternText tokenizes text and returns the sorted set of distinct term
// ids (the sparse Boolean vector of the paper's IR model).
func (d *Dict) InternText(text string) []int {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	set := make(map[int]struct{}, len(toks))
	for _, tok := range toks {
		set[d.Intern(tok)] = struct{}{}
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// InternTerms interns a pre-tokenized set of terms, returning sorted
// distinct ids.
func (d *Dict) InternTerms(terms []string) []int {
	set := make(map[int]struct{}, len(terms))
	for _, t := range terms {
		set[d.Intern(t)] = struct{}{}
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
