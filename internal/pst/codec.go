package pst

import (
	"sort"

	"xcluster/internal/wire"
)

// Encode writes the tree: header fields, then the trie in preorder (per
// node: child count, then per child its symbol, count, and subtree).
func (t *Tree) Encode(w *wire.Writer) {
	w.Float(t.root.count)
	w.Uint(uint64(t.maxDepth))
	w.Uint(uint64(t.exactDepth))
	var enc func(n *node)
	enc = func(n *node) {
		w.Uint(uint64(len(n.children)))
		syms := make([]int, 0, len(n.children))
		for c := range n.children {
			syms = append(syms, int(c))
		}
		sort.Ints(syms)
		for _, ci := range syms {
			c := byte(ci)
			ch := n.children[c]
			w.Uint(uint64(c))
			w.Float(ch.count)
			enc(ch)
		}
	}
	enc(t.root)
}

// Decode reads a tree written by Encode.
func Decode(r *wire.Reader) *Tree {
	t := &Tree{root: &node{count: r.Float()}}
	t.maxDepth = int(r.Uint())
	t.exactDepth = int(r.Uint())
	var dec func(n *node, depth int)
	dec = func(n *node, depth int) {
		cnt := int(r.Uint())
		if r.Err() != nil || depth > 64 || cnt > 256 {
			if cnt > 256 || depth > 64 {
				// Corrupt stream; poison via an impossible read.
				r.Uint()
			}
			return
		}
		for i := 0; i < cnt && r.Err() == nil; i++ {
			c := byte(r.Uint())
			ch := n.ensureChild(c)
			ch.count = r.Float()
			t.nodes++
			dec(ch, depth+1)
		}
	}
	dec(t.root, 0)
	return t
}
