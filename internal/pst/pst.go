// Package pst implements Pruned Suffix Trees, the STRING value summary of
// XCluster nodes: a depth-bounded trie over all substrings of a string
// collection, annotated with document-frequency counts (how many strings
// contain each substring).
//
// Following the paper's modification of the original PST proposal, the
// tree always retains at least one node for every symbol that appears in
// the distribution (depth-1 nodes are never pruned), which keeps negative
// substring queries at zero estimated selectivity. Longer query strings
// are estimated with the maximal-overlap Markovian scheme of Jagadish, Ng
// and Srivastava (PODS'99): the query is parsed greedily into maximal
// retained substrings and conditional probabilities are chained across
// their overlaps.
package pst

import (
	"fmt"
	"math"
	"sort"
)

// NodeBytes is the storage charged per trie node (symbol, count, child
// pointer) by the synopsis size accounting.
const NodeBytes = 6

// DefaultMaxDepth bounds the substring length recorded by detailed
// (reference-synopsis) PSTs.
const DefaultMaxDepth = 4

type node struct {
	children map[byte]*node
	count    float64
}

func (n *node) child(c byte) *node {
	if n.children == nil {
		return nil
	}
	return n.children[c]
}

func (n *node) ensureChild(c byte) *node {
	if n.children == nil {
		n.children = make(map[byte]*node)
	}
	ch := n.children[c]
	if ch == nil {
		ch = &node{}
		n.children[c] = ch
	}
	return ch
}

// Tree is a pruned suffix tree over a collection of strings. The zero
// value is unusable; use Build or Merge.
type Tree struct {
	root     *node // count = number of strings
	maxDepth int
	nodes    int // trie nodes, root excluded
	// exactDepth is the substring length up to which absence from the
	// trie is definitive (true zero count). A freshly built tree retains
	// every substring up to maxDepth; pruning reduces the guarantee to
	// depth 1 (the one-node-per-symbol invariant).
	exactDepth int
}

// Build constructs a detailed PST over the collection, recording every
// substring of length at most maxDepth (DefaultMaxDepth when <= 0). Each
// string contributes at most one count per distinct substring (document
// frequency).
func Build(strs []string, maxDepth int) *Tree {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	t := &Tree{root: &node{count: float64(len(strs))}, maxDepth: maxDepth, exactDepth: maxDepth}
	for _, s := range strs {
		t.insertString(s)
	}
	return t
}

// insertString adds every distinct substring of s (up to maxDepth) with a
// count of one. Deduplication walks all start positions but bumps a node
// only on the first visit per string, using a per-call stamp.
func (t *Tree) insertString(s string) {
	type stamp map[*node]struct{}
	seen := make(stamp)
	for i := 0; i < len(s); i++ {
		cur := t.root
		for j := i; j < len(s) && j-i < t.maxDepth; j++ {
			next := cur.child(s[j])
			if next == nil {
				next = cur.ensureChild(s[j])
				t.nodes++
			}
			cur = next
			if _, dup := seen[cur]; !dup {
				seen[cur] = struct{}{}
				cur.count++
			}
		}
	}
}

// Count returns the number of summarized strings.
func (t *Tree) Count() float64 { return t.root.count }

// Nodes returns the number of trie nodes (root excluded).
func (t *Tree) Nodes() int { return t.nodes }

// SizeBytes returns the storage charge of the tree.
func (t *Tree) SizeBytes() int { return t.nodes * NodeBytes }

// MaxDepth returns the depth bound of retained substrings.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// lookup returns the node for substring s, or nil if not fully retained.
func (t *Tree) lookup(s string) *node {
	cur := t.root
	for i := 0; i < len(s); i++ {
		cur = cur.child(s[i])
		if cur == nil {
			return nil
		}
	}
	return cur
}

// freq returns the document-frequency count of substring s, or -1 if s is
// not retained. freq("") is the string count.
func (t *Tree) freq(s string) float64 {
	n := t.lookup(s)
	if n == nil {
		return -1
	}
	return n.count
}

// Freq returns the document-frequency count of substring s, or -1 when
// s is not fully retained. Freq("") is the string count.
func (t *Tree) Freq(s string) float64 { return t.freq(s) }

// longestPrefix returns the length of the longest prefix of s retained in
// the tree.
func (t *Tree) longestPrefix(s string) int {
	cur := t.root
	for i := 0; i < len(s); i++ {
		cur = cur.child(s[i])
		if cur == nil {
			return i
		}
	}
	return len(s)
}

// Selectivity estimates the fraction of strings containing qs as a
// substring. Fully-retained substrings are answered exactly; longer ones
// use the maximal-overlap Markovian estimate.
func (t *Tree) Selectivity(qs string) float64 {
	if t.root.count == 0 {
		return 0
	}
	if qs == "" {
		return 1
	}
	n := float64(t.root.count)
	if f := t.freq(qs); f >= 0 {
		return f / n
	}
	if len(qs) <= t.exactDepth {
		return 0 // absence within the exact depth is definitive
	}
	// Maximal-overlap parse. m[i] = longest retained prefix of qs[i:].
	m := make([]int, len(qs))
	for i := range qs {
		m[i] = t.longestPrefix(qs[i:])
	}
	if m[0] == 0 {
		return 0 // leading symbol unseen
	}
	prob := t.freq(qs[:m[0]]) / n
	prevStart, covered := 0, m[0]
	for covered < len(qs) {
		// Choose the piece starting in (prevStart, covered] that extends
		// coverage the furthest.
		bestS, bestEnd := -1, covered
		for s := prevStart + 1; s <= covered; s++ {
			if end := s + m[s]; end > bestEnd {
				bestS, bestEnd = s, end
			}
		}
		if bestS < 0 {
			return 0 // symbol at position `covered` unseen
		}
		piece := qs[bestS:bestEnd]
		overlap := qs[bestS:covered]
		fo := n
		if overlap != "" {
			fo = t.freq(overlap) // retained: it is a prefix of piece
		}
		if fo <= 0 {
			return 0
		}
		prob *= t.freq(piece) / fo
		prevStart, covered = bestS, bestEnd
	}
	if prob > 1 {
		prob = 1
	}
	return prob
}

// EstimateCount returns the estimated number of strings containing qs.
func (t *Tree) EstimateCount(qs string) float64 {
	return t.Selectivity(qs) * t.root.count
}

// Merge fuses two PSTs into a summary of the union of their string
// collections: the union of retained substrings with summed counts (the
// paper's STRING fusion f()).
func Merge(a, b *Tree) *Tree {
	if a == nil {
		return b.Clone()
	}
	if b == nil {
		return a.Clone()
	}
	out := &Tree{
		root:       &node{count: a.root.count + b.root.count},
		maxDepth:   max(a.maxDepth, b.maxDepth),
		exactDepth: min(a.exactDepth, b.exactDepth),
	}
	var add func(dst, src *node)
	add = func(dst, src *node) {
		for c, sc := range src.children {
			dc := dst.child(c)
			if dc == nil {
				dc = dst.ensureChild(c)
				out.nodes++
			}
			dc.count += sc.count
			add(dc, sc)
		}
	}
	// Union by cloning a's shape then folding b in. out.nodes counts
	// every created node.
	add(out.root, a.root)
	add(out.root, b.root)
	return out
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	out := &Tree{root: &node{count: t.root.count}, maxDepth: t.maxDepth, nodes: t.nodes, exactDepth: t.exactDepth}
	var cp func(dst, src *node)
	cp = func(dst, src *node) {
		for c, sc := range src.children {
			dc := dst.ensureChild(c)
			dc.count = sc.count
			cp(dc, sc)
		}
	}
	cp(out.root, t.root)
	return out
}

// leafInfo identifies a prunable leaf by its substring path.
type leafInfo struct {
	path  string
	err   float64
	count float64
}

// leaves collects all prunable leaves (depth >= 2, no children) with
// their pruning errors.
func (t *Tree) leaves() []leafInfo {
	var out []leafInfo
	var walk func(n *node, path []byte)
	walk = func(n *node, path []byte) {
		for c, ch := range n.children {
			p := append(path, c)
			if len(ch.children) == 0 {
				if len(p) >= 2 {
					s := string(p)
					out = append(out, leafInfo{path: s, err: t.pruneError(s, ch.count), count: ch.count})
				}
			} else {
				walk(ch, p)
			}
			path = p[:len(p)-1]
		}
	}
	walk(t.root, nil)
	return out
}

// pruneError quantifies how much the estimate for substring s degrades if
// its node (with exact count f) is pruned: |f - markovEstimate(s)|, where
// the Markov estimate chains the parent substring with the longest
// retained proper suffix — exactly the estimate Selectivity would produce
// once the node is gone.
func (t *Tree) pruneError(s string, f float64) float64 {
	n := t.root.count
	if n == 0 {
		return 0
	}
	parent := s[:len(s)-1]
	fp := t.freq(parent)
	if fp <= 0 {
		return f
	}
	// Longest proper suffix still retained in full.
	for j := 1; j < len(s); j++ {
		fs := t.freq(s[j:])
		if fs < 0 {
			continue
		}
		fo := n
		if j < len(s)-1 {
			fo = t.freq(s[j : len(s)-1])
		}
		if fo <= 0 {
			continue
		}
		est := fp * fs / fo
		return math.Abs(f - est)
	}
	return f
}

// Prune removes up to b leaves in ascending pruning-error order, never
// removing depth-1 nodes (the one-node-per-symbol invariant). It returns
// the number of nodes actually removed. Pruning mutates the tree.
func (t *Tree) Prune(b int) int {
	removed := 0
	for removed < b {
		ls := t.leaves()
		if len(ls) == 0 {
			break
		}
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].err != ls[j].err {
				return ls[i].err < ls[j].err
			}
			// Ties (common at error 0): prune deeper leaves first — they
			// carry the least residual information — and spread within a
			// depth by hash so no alphabet region is systematically
			// favored. Both keys are deterministic.
			if len(ls[i].path) != len(ls[j].path) {
				return len(ls[i].path) > len(ls[j].path)
			}
			hi, hj := pathHash(ls[i].path), pathHash(ls[j].path)
			if hi != hj {
				return hi < hj
			}
			return ls[i].path < ls[j].path
		})
		// Remove as many of this round's lowest-error leaves as allowed;
		// removing a leaf can expose its parent as a new leaf, so
		// re-collect after each batch.
		batch := b - removed
		if batch > len(ls) {
			batch = len(ls)
		}
		for i := 0; i < batch; i++ {
			t.removeLeaf(ls[i].path)
			removed++
		}
		t.exactDepth = 1
	}
	return removed
}

// PruneLowestCount removes up to b leaves in ascending count order,
// ignoring pruning errors. This is the naive baseline the paper's
// pruning-error scheme is measured against (low count does not imply the
// Markov estimate reconstructs the substring well).
func (t *Tree) PruneLowestCount(b int) int {
	removed := 0
	for removed < b {
		ls := t.leaves()
		if len(ls) == 0 {
			break
		}
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].count != ls[j].count {
				return ls[i].count < ls[j].count
			}
			return ls[i].path < ls[j].path // deterministic tie-break
		})
		batch := b - removed
		if batch > len(ls) {
			batch = len(ls)
		}
		for i := 0; i < batch; i++ {
			t.removeLeaf(ls[i].path)
			removed++
		}
		t.exactDepth = 1
	}
	return removed
}

// pathHash is a deterministic FNV-1a spreader for pruning tie-breaks.
func pathHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// removeLeaf unlinks the node at path (which must be a leaf).
func (t *Tree) removeLeaf(path string) {
	cur := t.root
	for i := 0; i < len(path)-1; i++ {
		cur = cur.child(path[i])
		if cur == nil {
			return
		}
	}
	last := path[len(path)-1]
	if ch := cur.child(last); ch != nil {
		if len(ch.children) != 0 {
			panic(fmt.Sprintf("pst: removeLeaf(%q): not a leaf", path))
		}
		delete(cur.children, last)
		t.nodes--
	}
}

// Substrings invokes fn for every retained substring and its count, in
// depth-first order. Returning false stops the walk.
func (t *Tree) Substrings(fn func(s string, count float64) bool) {
	var walk func(n *node, path []byte) bool
	walk = func(n *node, path []byte) bool {
		// Deterministic order: sorted symbols.
		syms := make([]int, 0, len(n.children))
		for c := range n.children {
			syms = append(syms, int(c))
		}
		sort.Ints(syms)
		for _, ci := range syms {
			c := byte(ci)
			ch := n.children[c]
			p := append(path, c)
			if !fn(string(p), ch.count) {
				return false
			}
			if !walk(ch, p) {
				return false
			}
			path = p[:len(p)-1]
		}
		return true
	}
	walk(t.root, nil)
}

// Validate checks the monotonicity invariant (every node's count is at
// most its parent's) and the node-count bookkeeping.
func (t *Tree) Validate() error {
	seen := 0
	var walk func(n *node, parentCount float64, depth int) error
	walk = func(n *node, parentCount float64, depth int) error {
		for c, ch := range n.children {
			seen++
			if ch.count > parentCount+1e-9 {
				return fmt.Errorf("pst: monotonicity violated at symbol %q depth %d: %g > %g",
					string(c), depth+1, ch.count, parentCount)
			}
			if ch.count <= 0 {
				return fmt.Errorf("pst: non-positive count at symbol %q depth %d", string(c), depth+1)
			}
			if err := walk(ch, ch.count, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.root.count, 0); err != nil {
		return err
	}
	if seen != t.nodes {
		return fmt.Errorf("pst: node count %d, bookkeeping says %d", seen, t.nodes)
	}
	return nil
}
