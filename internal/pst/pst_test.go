package pst

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"xcluster/internal/wire"
)

// trueSel returns the exact fraction of strs containing qs.
func trueSel(strs []string, qs string) float64 {
	if len(strs) == 0 {
		return 0
	}
	n := 0
	for _, s := range strs {
		if strings.Contains(s, qs) {
			n++
		}
	}
	return float64(n) / float64(len(strs))
}

func TestExactForRetainedSubstrings(t *testing.T) {
	strs := []string{"database", "data", "base", "databank", "abase"}
	tr := Build(strs, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 5 {
		t.Fatalf("Count = %g", tr.Count())
	}
	for _, qs := range []string{"d", "a", "dat", "data", "base", "bas", "ban", "ab"} {
		got := tr.Selectivity(qs)
		want := trueSel(strs, qs)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("sel(%q) = %g, want %g", qs, got, want)
		}
	}
}

func TestNegativeQueriesAreZero(t *testing.T) {
	strs := []string{"alpha", "beta", "gamma"}
	tr := Build(strs, 4)
	for _, qs := range []string{"z", "zz", "alphaz", "xy"} {
		if got := tr.Selectivity(qs); got != 0 {
			t.Errorf("sel(%q) = %g, want 0 (symbol absent)", qs, got)
		}
	}
}

func TestMarkovEstimateForLongStrings(t *testing.T) {
	// Depth 3 retains trigrams; "database" needs chaining.
	strs := []string{"database", "database", "database", "dataset"}
	tr := Build(strs, 3)
	got := tr.Selectivity("database")
	want := 0.75
	// The Markov chain should land in the right ballpark (the chain is
	// exact when conditional independence holds; here it nearly does).
	if got < 0.3 || got > 1.0 {
		t.Fatalf("sel(database) = %g, want near %g", got, want)
	}
	// And the unrelated long string estimates to (near) zero.
	if got := tr.Selectivity("basedata"); got > 0.8 {
		t.Fatalf("sel(basedata) = %g, suspiciously high", got)
	}
}

func TestEmptyCollection(t *testing.T) {
	tr := Build(nil, 4)
	if tr.Selectivity("a") != 0 || tr.Count() != 0 {
		t.Fatal("empty PST misbehaves")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyQueryString(t *testing.T) {
	tr := Build([]string{"ab"}, 4)
	if got := tr.Selectivity(""); got != 1 {
		t.Fatalf("sel(\"\") = %g, want 1", got)
	}
}

func TestMergeMatchesUnionBuild(t *testing.T) {
	a := []string{"database", "data", "index"}
	b := []string{"base", "databank", "index"}
	ta := Build(a, 4)
	tb := Build(b, 4)
	m := Merge(ta, tb)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	u := Build(append(append([]string{}, a...), b...), 4)
	if m.Count() != u.Count() {
		t.Fatalf("merged count %g, want %g", m.Count(), u.Count())
	}
	if m.Nodes() != u.Nodes() {
		t.Fatalf("merged nodes %d, want %d", m.Nodes(), u.Nodes())
	}
	for _, qs := range []string{"data", "base", "ind", "x", "q"} {
		if got, want := m.Selectivity(qs), u.Selectivity(qs); math.Abs(got-want) > 1e-9 {
			t.Errorf("sel(%q): merged %g, union-built %g", qs, got, want)
		}
	}
	// Merge with nil is a clone.
	c := Merge(ta, nil)
	if c.Count() != ta.Count() || c.Nodes() != ta.Nodes() {
		t.Fatal("Merge(a, nil) not a clone")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := Build([]string{"abc", "abd"}, 3)
	cl := tr.Clone()
	n := tr.Nodes()
	cl.Prune(2)
	if tr.Nodes() != n {
		t.Fatal("pruning the clone mutated the original")
	}
}

func TestPruneReducesNodesKeepsSymbols(t *testing.T) {
	strs := []string{"database", "dataset", "databank", "index", "indices"}
	tr := Build(strs, 4)
	before := tr.Nodes()
	removed := tr.Prune(10)
	if removed != 10 {
		t.Fatalf("removed %d, want 10", removed)
	}
	if tr.Nodes() != before-10 {
		t.Fatalf("nodes %d, want %d", tr.Nodes(), before-10)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every symbol of the data still has its depth-1 node: negative
	// queries on unseen symbols are still zero, seen symbols non-zero.
	for _, c := range "database" {
		if tr.Selectivity(string(c)) == 0 {
			t.Errorf("symbol %q lost after pruning", string(c))
		}
	}
	if tr.Selectivity("z") != 0 {
		t.Error("unseen symbol gained selectivity")
	}
}

func TestPruneToMinimum(t *testing.T) {
	strs := []string{"abcd", "bcde"}
	tr := Build(strs, 4)
	tr.Prune(1 << 20) // prune everything prunable
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Only depth-1 nodes remain.
	tr.Substrings(func(s string, _ float64) bool {
		if len(s) > 1 {
			t.Errorf("substring %q survived unlimited pruning", s)
		}
		return true
	})
}

func TestPruningErrorOrder(t *testing.T) {
	// f(x)=f(y)=f(xy)=3 so the Markov estimate for "xy" is 9/8 (error
	// 1.875); f(a)=f(b)=3 but f(ab)=1 so the estimate 9/8 is nearly
	// right (error 0.125). The pruning scheme must drop "ab" first.
	strs := []string{"xy", "xy", "xy", "ab", "a", "b", "a", "b"}
	tr := Build(strs, 2)
	var errXY, errAB float64
	tr.Substrings(func(s string, c float64) bool {
		switch s {
		case "xy":
			errXY = tr.pruneError(s, c)
		case "ab":
			errAB = tr.pruneError(s, c)
		}
		return true
	})
	if errAB >= errXY {
		t.Fatalf("pruneError(ab)=%g should be < pruneError(xy)=%g", errAB, errXY)
	}
	tr.Prune(1)
	retained := make(map[string]bool)
	tr.Substrings(func(s string, _ float64) bool {
		retained[s] = true
		return true
	})
	if retained["ab"] {
		t.Fatal("Prune(1) kept the low-error leaf ab")
	}
	if !retained["xy"] {
		t.Fatal("Prune(1) removed the high-error leaf xy")
	}
}

func TestSubstringsEnumeration(t *testing.T) {
	tr := Build([]string{"ab"}, 2)
	var got []string
	tr.Substrings(func(s string, c float64) bool {
		got = append(got, s)
		return true
	})
	want := map[string]bool{"a": true, "ab": true, "b": true}
	if len(got) != len(want) {
		t.Fatalf("Substrings = %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("unexpected substring %q", s)
		}
	}
}

func TestRandomizedAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := "abcdef"
	var strs []string
	for i := 0; i < 200; i++ {
		n := rng.Intn(12) + 1
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		strs = append(strs, sb.String())
	}
	tr := Build(strs, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Retained-length queries are exact.
	for i := 0; i < 50; i++ {
		n := rng.Intn(4) + 1
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		qs := sb.String()
		if got, want := tr.Selectivity(qs), trueSel(strs, qs); math.Abs(got-want) > 1e-9 {
			t.Fatalf("sel(%q) = %g, want %g", qs, got, want)
		}
	}
	// Longer queries stay within [0,1] and are zero when truly absent
	// symbols appear.
	for i := 0; i < 50; i++ {
		n := rng.Intn(6) + 5
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		got := tr.Selectivity(sb.String())
		if got < 0 || got > 1 {
			t.Fatalf("sel(%q) = %g out of [0,1]", sb.String(), got)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	tr := Build([]string{"ab"}, 2)
	if tr.SizeBytes() != tr.Nodes()*NodeBytes {
		t.Fatalf("SizeBytes = %d", tr.SizeBytes())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := Build([]string{"database", "dataset", "index", "index"}, 4)
	tr.Prune(3) // exercise exactDepth serialization too
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	tr.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back := Decode(wire.NewReader(&buf))
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Count() != tr.Count() || back.Nodes() != tr.Nodes() || back.MaxDepth() != tr.MaxDepth() {
		t.Fatalf("shape changed: %g/%g strings, %d/%d nodes",
			back.Count(), tr.Count(), back.Nodes(), tr.Nodes())
	}
	for _, qs := range []string{"data", "index", "base", "q", "datab", "zzz"} {
		if a, b := tr.Selectivity(qs), back.Selectivity(qs); a != b {
			t.Fatalf("sel(%q): %g -> %g", qs, a, b)
		}
	}
}

func TestDecodeGuardsAgainstCorruptStreams(t *testing.T) {
	// A stream claiming an absurd child count must not allocate wildly
	// or recurse forever.
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Float(5)   // count
	w.Uint(4)    // maxDepth
	w.Uint(4)    // exactDepth
	w.Uint(9999) // child count: corrupt
	_ = w.Flush()
	r := wire.NewReader(&buf)
	_ = Decode(r)
	if r.Err() == nil {
		t.Fatal("corrupt child count accepted silently")
	}
}

func TestEstimateCount(t *testing.T) {
	tr := Build([]string{"data", "data", "base"}, 4)
	if got := tr.EstimateCount("data"); got != 2 {
		t.Fatalf("EstimateCount(data) = %g, want 2", got)
	}
	if got := tr.EstimateCount("zz"); got != 0 {
		t.Fatalf("EstimateCount(zz) = %g, want 0", got)
	}
}
