package datagen

import "strings"

// Word lists backing the synthetic generators. Titles, names and free
// text are assembled from these so that substring and term predicates hit
// realistic, skewed distributions.

var titleWords = []string{
	"Shadow", "Night", "Return", "Last", "First", "Dark", "Light", "City",
	"Dream", "Storm", "River", "Mountain", "Secret", "Lost", "Hidden",
	"Broken", "Silent", "Golden", "Iron", "Crystal", "Fire", "Ice",
	"Winter", "Summer", "Autumn", "Spring", "King", "Queen", "Empire",
	"Kingdom", "War", "Peace", "Love", "Death", "Life", "Time", "Space",
	"Star", "Moon", "Sun", "Ocean", "Desert", "Forest", "Garden", "House",
	"Road", "Bridge", "Tower", "Castle", "Island", "Journey", "Escape",
	"Revenge", "Promise", "Memory", "Destiny", "Legacy", "Honor", "Glory",
	"Freedom", "Justice", "Truth", "Lies", "Game", "Code", "Heart",
	"Mind", "Soul", "Blood", "Bone", "Stone", "Steel", "Glass", "Paper",
	"Letter", "Song", "Dance", "Whisper", "Echo", "Mirror", "Window",
}

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
	"Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
	"Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty",
	"Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven",
	"Kimberly", "Andrew", "Emily", "Paul", "Donna", "Joshua", "Michelle",
	"Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George",
	"Melissa", "Timothy", "Deborah",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
	"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
	"Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
	"King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
	"Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell",
	"Mitchell", "Carter", "Roberts",
}

// commonTerms is the shared free-text vocabulary; term choice is
// Zipf-skewed so a few terms dominate and most are rare (the distribution
// end-biased term histograms are designed for).
var commonTerms = []string{
	"story", "young", "family", "world", "finds", "must", "life", "new",
	"years", "love", "becomes", "discovers", "small", "town", "friends",
	"father", "mother", "journey", "dangerous", "mysterious", "secret",
	"past", "future", "city", "home", "against", "fight", "save",
	"ancient", "power", "evil", "dark", "forces", "battle", "truth",
	"hidden", "woman", "man", "child", "brother", "sister", "escape",
	"survive", "murder", "crime", "detective", "police", "war", "soldier",
	"mission", "agent", "spy", "heist", "plan", "revenge", "betrayal",
	"redemption", "hope", "dream", "nightmare", "haunted", "ghost",
	"monster", "alien", "planet", "ship", "crew", "island", "village",
	"kingdom", "prince", "princess", "magic", "curse", "prophecy",
	"chosen", "destiny", "quest", "treasure", "gold", "money", "rich",
	"poor", "struggle", "triumph", "tragedy", "comedy", "romance",
	"adventure", "epic", "legendary", "forgotten", "memory", "identity",
	"double", "twist", "ending", "beginning", "final", "ultimate",
}

// genreTerms gives each genre its own sub-vocabulary, creating the
// path/value correlations the paper's clustering is meant to capture.
var genreTerms = map[string][]string{
	"action":   {"explosion", "chase", "gunfight", "helicopter", "bomb", "hostage", "assassin", "commando", "warrior", "combat"},
	"drama":    {"courtroom", "illness", "divorce", "grief", "reconciliation", "sacrifice", "dignity", "poverty", "ambition", "conscience"},
	"comedy":   {"hilarious", "mishap", "wedding", "roommate", "disguise", "prank", "awkward", "slapstick", "satire", "farce"},
	"scifi":    {"robot", "cyborg", "wormhole", "galaxy", "clone", "mutation", "dystopia", "android", "starship", "quantum"},
	"horror":   {"demon", "possession", "cabin", "ritual", "undead", "vampire", "werewolf", "seance", "exorcism", "slasher"},
	"thriller": {"conspiracy", "blackmail", "stalker", "kidnapping", "witness", "forgery", "cartel", "informant", "undercover", "sabotage"},
}

var genres = []string{"action", "drama", "comedy", "scifi", "horror", "thriller"}

// auctionTerms is the vocabulary of XMark-like item and auction
// descriptions.
var auctionTerms = []string{
	"condition", "excellent", "vintage", "rare", "original", "authentic",
	"shipping", "included", "warranty", "refund", "payment", "delivery",
	"antique", "collectible", "edition", "limited", "signed", "sealed",
	"boxed", "mint", "used", "refurbished", "handmade", "imported",
	"quality", "premium", "genuine", "certified", "appraised", "estate",
	"auction", "bidder", "reserve", "increment", "closing", "listing",
	"gramophone", "typewriter", "porcelain", "mahogany", "brass",
	"copper", "silver", "leather", "ivory", "marble", "crystal", "amber",
	"tapestry", "manuscript", "engraving", "lithograph", "sculpture",
	"pendant", "brooch", "locket", "timepiece", "chronometer", "sextant",
	"compass", "telescope", "microscope", "barometer", "instrument",
	"violin", "cello", "clarinet", "accordion", "harmonica", "banjo",
}

// showWords flavor TV-show titles so the tag-level merge of movie and
// show title clusters visibly blurs the substring distribution (the
// string-error-vs-budget effect of Figure 8a).
var showWords = []string{
	"Show", "Chronicles", "Files", "Live", "Tonight", "Weekly", "Diaries",
	"Tales", "Stories", "Report", "Hour", "Factor", "Zone", "Patrol",
	"Squad", "Unit", "Division", "Agency", "Bureau", "Lab",
}

// itemWords flavor XMark item names (auction merchandise), distinct from
// person names so tag-level "name" merges blur both distributions.
var itemWords = []string{
	"Vintage", "Antique", "Brass", "Copper", "Silver", "Porcelain",
	"Mahogany", "Leather", "Crystal", "Marble", "Compass", "Telescope",
	"Gramophone", "Typewriter", "Tapestry", "Manuscript", "Engraving",
	"Sculpture", "Pendant", "Brooch", "Locket", "Timepiece", "Violin",
	"Cello", "Clarinet", "Accordion", "Lantern", "Sextant", "Barometer",
	"Cabinet", "Bureau", "Chest", "Mirror", "Candlestick", "Chandelier",
}

// xmarkTextTerms is the auction-description vocabulary: the core auction
// terms plus a long Zipf tail assembled from the other word lists. The
// tail makes sampled keyword predicates frequently hit rare terms, giving
// XMark TEXT queries the very low true selectivities the paper reports
// (and the correspondingly inflated relative errors of Figure 8(b),
// explained by the low absolute errors of Figure 9).
var xmarkTextTerms = buildXMarkTextTerms()

func buildXMarkTextTerms() []string {
	out := make([]string, 0, len(auctionTerms)+len(titleWords)+len(itemWords)+len(lastNames))
	out = append(out, auctionTerms...)
	add := func(words []string) {
		for _, w := range words {
			out = append(out, strings.ToLower(w))
		}
	}
	add(titleWords)
	add(itemWords)
	add(lastNames)
	return out
}

var regionNames = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var interestCategories = []string{
	"music", "sports", "travel", "cooking", "gardening", "photography",
	"reading", "cinema", "theatre", "painting",
}
