package datagen

import "xcluster/internal/xmltree"

// XMarkConfig sizes the XMark-like generator. The zero value is upgraded
// to defaults producing roughly 13,000 elements; Scale multiplies all
// entity counts (Scale 16 approximates the paper's 206,130-element
// document).
type XMarkConfig struct {
	Seed       int64
	Items      int
	People     int
	Open       int
	Closed     int
	Categories int
	Scale      float64
}

func (c XMarkConfig) withDefaults() XMarkConfig {
	if c.Items == 0 {
		c.Items = 400
	}
	if c.People == 0 {
		c.People = 500
	}
	if c.Open == 0 {
		c.Open = 240
	}
	if c.Closed == 0 {
		c.Closed = 160
	}
	if c.Categories == 0 {
		c.Categories = 40
	}
	if c.Scale > 0 {
		c.Items = int(float64(c.Items) * c.Scale)
		c.People = int(float64(c.People) * c.Scale)
		c.Open = int(float64(c.Open) * c.Scale)
		c.Closed = int(float64(c.Closed) * c.Scale)
		c.Categories = int(float64(c.Categories) * c.Scale)
	}
	return c
}

// XMarkValuePaths returns the nine value paths summarized in the XMark
// experiments, mirroring the paper's "9 for XMark".
func XMarkValuePaths() []string {
	return []string{
		"/site/regions/region/item/name",
		"/site/regions/region/item/quantity",
		"/site/regions/region/item/description/text",
		"/site/people/person/name",
		"/site/people/person/profile/age",
		"/site/people/person/profile/income",
		"/site/open_auctions/open_auction/initial",
		"/site/open_auctions/open_auction/bidder/increase",
		"/site/open_auctions/open_auction/annotation/description/text",
	}
}

// XMark generates an auction-site document following the published XMark
// schema: regions with items, registered people with profiles, open
// auctions with bidder histories, closed auctions, and categories.
// Descriptions are recursive parlist/listitem trees (the source of
// XMark's structural heterogeneity) terminating in TEXT leaves; TEXT
// terms are low-selectivity (a large vocabulary over short snippets),
// which reproduces the paper's Figure 8(b)/9 observation that XMark TEXT
// predicates have tiny true selectivities.
func XMark(cfg XMarkConfig) *xmltree.Tree {
	cfg = cfg.withDefaults()
	g := newGen(cfg.Seed)
	b := xmltree.NewBuilder(nil)
	b.Open("site")

	// description emits a description subtree: a text leaf, optionally
	// wrapped in recursive parlist/listitem structure of depth <= 2.
	var description func(depth int)
	description = func(depth int) {
		b.Open("description")
		if depth < 2 && g.r.Intn(3) == 0 {
			b.Open("parlist")
			n := 1 + g.r.Intn(2)
			for i := 0; i < n; i++ {
				b.Open("listitem")
				description(depth + 1)
				b.Close()
			}
			b.Close()
		} else {
			b.Text("text", g.text(12+g.r.Intn(25), xmarkTextTerms, nil))
		}
		b.Close()
	}

	b.Open("regions")
	perRegion := cfg.Items / len(regionNames)
	for ri, region := range regionNames {
		b.Open("region")
		b.String("rname", region)
		n := perRegion
		if ri == 0 {
			n += cfg.Items - perRegion*len(regionNames)
		}
		for i := 0; i < n; i++ {
			// Correlation: early regions (big markets) list bulk items.
			quantity := 1 + g.zipfIndex(20)
			if ri < 2 {
				quantity += g.r.Intn(10)
			}
			b.Open("item")
			b.String("name", g.itemName())
			b.Numeric("quantity", quantity)
			description(0)
			if quantity > 5 {
				b.Empty("payment") // bulk items have payment terms
			}
			if g.r.Intn(3) == 0 {
				b.Empty("shipping")
			}
			if g.r.Intn(5) == 0 {
				b.Open("mailbox")
				for m := 0; m <= g.r.Intn(3); m++ {
					b.Empty("mail")
				}
				b.Close()
			}
			b.Close()
		}
		b.Close()
	}
	b.Close()

	b.Open("people")
	for i := 0; i < cfg.People; i++ {
		b.Open("person")
		b.String("name", g.personName())
		if g.r.Intn(4) != 0 {
			b.String("emailaddress", "mailto:"+g.pick(lastNames)+"@example.com")
		}
		if g.r.Intn(3) != 0 { // profiles are optional, as in XMark
			b.Open("profile")
			b.Numeric("age", 18+g.zipfIndex(60))
			b.Numeric("income", 20000+100*g.zipfIndex(2000))
			nInt := g.zipfIndex(5)
			for k := 0; k < nInt; k++ {
				b.Open("interest")
				b.String("category", g.zipfPick(interestCategories))
				b.Close()
			}
			b.Close()
		}
		b.Close()
	}
	b.Close()

	b.Open("open_auctions")
	for i := 0; i < cfg.Open; i++ {
		// Correlation: high-value auctions attract long bidder
		// histories with large increments.
		initial := 1 + g.zipfIndex(500)
		nBids := g.zipfIndex(6)
		if initial > 100 {
			nBids += 2 + g.zipfIndex(8)
		}
		b.Open("open_auction")
		b.Numeric("initial", initial)
		for k := 0; k < nBids; k++ {
			b.Open("bidder")
			inc := 1 + g.zipfIndex(30)
			if initial > 100 {
				inc += 10 + g.r.Intn(20)
			}
			b.Numeric("increase", inc)
			if g.r.Intn(4) == 0 {
				b.Empty("personref")
			}
			b.Close()
		}
		b.Open("annotation")
		description(0)
		b.Close()
		b.Empty("itemref")
		b.Empty("seller")
		if g.r.Intn(3) == 0 {
			b.Empty("privacy")
		}
		b.Close()
	}
	b.Close()

	b.Open("closed_auctions")
	for i := 0; i < cfg.Closed; i++ {
		b.Open("closed_auction")
		b.Numeric("price", 1+g.zipfIndex(800))
		b.Empty("buyer")
		b.Empty("seller")
		b.Empty("itemref")
		b.Close()
	}
	b.Close()

	b.Open("categories")
	for i := 0; i < cfg.Categories; i++ {
		b.Open("category")
		b.String("cname", g.title())
		b.Text("cdescription", g.text(4+g.r.Intn(6), xmarkTextTerms, nil))
		b.Close()
	}
	b.Close()

	b.Close()
	return b.Tree()
}
