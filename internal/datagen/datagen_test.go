package datagen

import (
	"testing"

	"xcluster/internal/xmltree"
)

func TestIMDBDeterministic(t *testing.T) {
	a := IMDB(IMDBConfig{Seed: 7, Movies: 50, Shows: 20})
	b := IMDB(IMDBConfig{Seed: 7, Movies: 50, Shows: 20})
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Len(), b.Len())
	}
	c := IMDB(IMDBConfig{Seed: 8, Movies: 50, Shows: 20})
	sa, sc := a.ComputeStats(), c.ComputeStats()
	if a.Len() == c.Len() && sa.ValueNodes == sc.ValueNodes && sa.Terms == sc.Terms {
		t.Error("different seeds produced identical documents")
	}
}

func TestIMDBShape(t *testing.T) {
	tr := IMDB(IMDBConfig{Seed: 1, Movies: 200, Shows: 60})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.Elements < 1500 {
		t.Fatalf("too few elements: %d", st.Elements)
	}
	// All three value types are present.
	for _, vt := range []xmltree.ValueType{xmltree.TypeNumeric, xmltree.TypeString, xmltree.TypeText} {
		if st.ByType[vt] == 0 {
			t.Errorf("no %v values", vt)
		}
	}
	// Every declared value path exists with the right type.
	wantType := map[string]xmltree.ValueType{
		"/imdb/movie/title":           xmltree.TypeString,
		"/imdb/movie/year":            xmltree.TypeNumeric,
		"/imdb/movie/plot":            xmltree.TypeText,
		"/imdb/movie/cast/actor/name": xmltree.TypeString,
		"/imdb/show/title":            xmltree.TypeString,
		"/imdb/show/year":             xmltree.TypeNumeric,
		"/imdb/show/plot":             xmltree.TypeText,
	}
	if len(IMDBValuePaths()) != 7 {
		t.Fatalf("IMDB value paths = %d, want 7", len(IMDBValuePaths()))
	}
	for _, p := range IMDBValuePaths() {
		nodes := tr.PathNodes(p)
		if len(nodes) == 0 {
			t.Errorf("value path %s empty", p)
			continue
		}
		if nodes[0].Type != wantType[p] {
			t.Errorf("path %s has type %v, want %v", p, nodes[0].Type, wantType[p])
		}
	}
	// Genre-year correlation: average drama year < average scifi year.
	sum := map[string]float64{}
	cnt := map[string]float64{}
	for _, m := range tr.PathNodes("/imdb/movie") {
		var genre string
		var year int
		for _, c := range m.Children {
			switch c.Label {
			case "genre":
				genre = c.Str
			case "year":
				year = c.Num
			}
		}
		sum[genre] += float64(year)
		cnt[genre]++
	}
	if cnt["drama"] > 5 && cnt["scifi"] > 5 {
		if sum["drama"]/cnt["drama"] >= sum["scifi"]/cnt["scifi"] {
			t.Errorf("genre-year correlation missing: drama %g vs scifi %g",
				sum["drama"]/cnt["drama"], sum["scifi"]/cnt["scifi"])
		}
	}
}

func TestXMarkShape(t *testing.T) {
	tr := XMark(XMarkConfig{Seed: 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.Elements < 5000 {
		t.Fatalf("too few elements: %d", st.Elements)
	}
	if len(XMarkValuePaths()) != 9 {
		t.Fatalf("XMark value paths = %d, want 9", len(XMarkValuePaths()))
	}
	for _, p := range XMarkValuePaths() {
		if len(tr.PathNodes(p)) == 0 {
			t.Errorf("value path %s empty", p)
		}
	}
	// Recursive descriptions: nested parlist paths must exist.
	nested := tr.PathNodes("/site/regions/region/item/description/parlist/listitem/description/text")
	if len(nested) == 0 {
		t.Error("no recursive description structure generated")
	}
	// XMark root structure.
	if tr.Root.Label != "site" {
		t.Fatalf("root = %s", tr.Root.Label)
	}
	sections := map[string]bool{}
	for _, c := range tr.Root.Children {
		sections[c.Label] = true
	}
	for _, want := range []string{"regions", "people", "open_auctions", "closed_auctions", "categories"} {
		if !sections[want] {
			t.Errorf("missing section %s", want)
		}
	}
}

func TestXMarkScale(t *testing.T) {
	small := XMark(XMarkConfig{Seed: 3, Scale: 0.5})
	big := XMark(XMarkConfig{Seed: 3, Scale: 2})
	if big.Len() <= small.Len()*2 {
		t.Fatalf("scaling broken: %d vs %d", small.Len(), big.Len())
	}
}

func TestIMDBScale(t *testing.T) {
	small := IMDB(IMDBConfig{Seed: 3, Scale: 0.5})
	big := IMDB(IMDBConfig{Seed: 3, Scale: 2})
	if big.Len() <= small.Len()*2 {
		t.Fatalf("scaling broken: %d vs %d", small.Len(), big.Len())
	}
}
