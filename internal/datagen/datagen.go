// Package datagen produces the two seeded synthetic XML data sets of the
// experimental study. The paper evaluates on a subset of the real-life
// IMDB database and on the XMark benchmark; neither is redistributable
// here, so the generators reproduce the statistical properties the
// experiments depend on — element-count scale, mixed NUMERIC / STRING /
// TEXT content under fixed value paths, Zipf-skewed fan-outs and value
// distributions, structural heterogeneity (optional sections, recursive
// description trees), and deliberate path-to-value correlations — as
// documented in DESIGN.md.
package datagen

import (
	"math/rand"
	"strings"
)

// gen wraps a seeded source with the sampling helpers the two generators
// share.
type gen struct {
	r *rand.Rand
}

func newGen(seed int64) *gen {
	return &gen{r: rand.New(rand.NewSource(seed))}
}

// pick returns a uniformly random element of list.
func (g *gen) pick(list []string) string {
	return list[g.r.Intn(len(list))]
}

// zipfIndex returns an index in [0, n) with a Zipf(s=1.1) skew toward 0.
func (g *gen) zipfIndex(n int) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(g.r, 1.1, 1, uint64(n-1))
	return int(z.Uint64())
}

// zipfPick returns a Zipf-skewed element of list (earlier entries are
// more frequent).
func (g *gen) zipfPick(list []string) string {
	return list[g.zipfIndex(len(list))]
}

// title assembles a 1-4 word title such as "The Silent River Returns".
func (g *gen) title() string {
	n := 1 + g.r.Intn(3)
	parts := make([]string, 0, n+1)
	if g.r.Intn(3) == 0 {
		parts = append(parts, "The")
	}
	for i := 0; i < n; i++ {
		parts = append(parts, g.zipfPick(titleWords))
	}
	return strings.Join(parts, " ")
}

// showTitle assembles a TV-show title such as "The Weekly Report", drawn
// from a vocabulary disjoint from movie titles: when the tag-level
// synopsis merges the two title clusters, its pooled substring
// distribution misestimates both, which finer structure budgets repair
// (the Figure 8a string series).
func (g *gen) showTitle() string {
	parts := []string{}
	if g.r.Intn(2) == 0 {
		parts = append(parts, "The")
	}
	parts = append(parts, g.zipfPick(showWords), g.zipfPick(showWords))
	return strings.Join(parts, " ")
}

// itemName assembles an auction-item name such as "Vintage Brass Compass".
func (g *gen) itemName() string {
	n := 2 + g.r.Intn(2)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.zipfPick(itemWords)
	}
	return strings.Join(parts, " ")
}

// personName assembles "First Last" with Zipf-skewed name frequencies
// (as in real name distributions), so pruned suffix trees that retain the
// high-count substrings keep most of the probability mass.
func (g *gen) personName() string {
	return g.zipfPick(firstNames) + " " + g.zipfPick(lastNames)
}

// text assembles a free-text snippet of roughly n terms drawn with Zipf
// skew from base plus (optionally) a genre vocabulary.
func (g *gen) text(n int, base []string, extra []string) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if extra != nil && g.r.Intn(3) == 0 {
			sb.WriteString(g.zipfPick(extra))
		} else {
			sb.WriteString(g.zipfPick(base))
		}
	}
	return sb.String()
}

// yearFor correlates publication years with genres: older genres skew
// earlier, newer genres later. This is a deliberate path/value
// correlation the reference synopsis (one incoming path per cluster) can
// capture and the tag-level baseline cannot.
func (g *gen) yearFor(genre string) int {
	base := 1960
	switch genre {
	case "drama":
		base = 1950
	case "comedy":
		base = 1970
	case "action", "thriller":
		base = 1985
	case "scifi", "horror":
		base = 1995
	}
	span := 2005 - base
	// Triangular-ish skew toward the recent end.
	a, b := g.r.Intn(span+1), g.r.Intn(span+1)
	if a < b {
		a = b
	}
	return base + a
}
