package datagen

import "xcluster/internal/xmltree"

// IMDBConfig sizes the IMDB-like generator. The zero value is upgraded to
// defaults producing roughly 12,000 elements; Scale multiplies the movie
// and show counts (Scale 20 approximates the paper's 236,822-element
// subset).
type IMDBConfig struct {
	Seed   int64
	Movies int
	Shows  int
	Scale  float64
}

func (c IMDBConfig) withDefaults() IMDBConfig {
	if c.Movies == 0 {
		c.Movies = 800
	}
	if c.Shows == 0 {
		c.Shows = 400
	}
	if c.Scale > 0 {
		c.Movies = int(float64(c.Movies) * c.Scale)
		c.Shows = int(float64(c.Shows) * c.Scale)
	}
	return c
}

// IMDBValuePaths returns the seven value paths summarized in the IMDB
// experiments, mirroring the paper's "total of 7 paths for IMDB".
func IMDBValuePaths() []string {
	return []string{
		"/imdb/movie/title",
		"/imdb/movie/year",
		"/imdb/movie/plot",
		"/imdb/movie/cast/actor/name",
		"/imdb/show/title",
		"/imdb/show/year",
		"/imdb/show/plot",
	}
}

// IMDB generates a movie-database document: movies (title, year, genre,
// plot, cast of actors, optional awards) and TV shows (title, year,
// seasons, summary). Structure and values are heterogeneous: cast sizes
// are Zipf-skewed, award sections appear on a minority of movies, years
// and plot vocabulary correlate with genre.
func IMDB(cfg IMDBConfig) *xmltree.Tree {
	cfg = cfg.withDefaults()
	g := newGen(cfg.Seed)
	b := xmltree.NewBuilder(nil)
	b.Open("imdb")
	for i := 0; i < cfg.Movies; i++ {
		genre := g.zipfPick(genres)
		year := g.yearFor(genre)
		// Correlations the tag-level baseline cannot see: awarded movies
		// are disproportionately recent dramas with large casts.
		awarded := g.r.Intn(5) == 0
		if genre == "drama" && year > 1990 {
			awarded = awarded || g.r.Intn(3) == 0
		}
		b.Open("movie")
		b.String("title", g.title())
		b.Numeric("year", year)
		b.String("genre", genre)
		b.Text("plot", g.text(8+g.r.Intn(18), commonTerms, genreTerms[genre]))
		b.Open("cast")
		nActors := 1 + g.zipfIndex(6)
		if awarded {
			nActors += 2 + g.r.Intn(4)
		}
		for a := 0; a < nActors; a++ {
			b.Open("actor")
			b.String("name", g.personName())
			if a == 0 && nActors > 2 {
				b.Empty("star") // leading-role marker: structural variation
			}
			b.Close()
		}
		b.Close()
		if g.r.Intn(3) == 0 {
			b.Open("crew")
			b.Open("director")
			b.String("dname", g.personName())
			b.Close()
			if g.r.Intn(2) == 0 {
				b.Open("writer")
				b.String("dname", g.personName())
				b.Close()
			}
			b.Close()
		}
		if awarded {
			b.Open("awards")
			for w := 0; w <= g.r.Intn(3); w++ {
				b.Empty("award")
			}
			b.Close()
		}
		if year > 1995 && g.r.Intn(2) == 0 {
			b.Open("releases")
			for rel := 0; rel <= g.r.Intn(3); rel++ {
				b.Empty("release")
			}
			b.Close()
		}
		b.Close()
	}
	for i := 0; i < cfg.Shows; i++ {
		// Correlation: networked shows run much longer.
		networked := g.r.Intn(3) != 0
		seasons := 1 + g.zipfIndex(4)
		if networked {
			seasons += g.zipfIndex(10)
		}
		b.Open("show")
		b.String("title", g.showTitle())
		b.Numeric("year", 1980+g.r.Intn(26))
		b.Numeric("seasons", seasons)
		// Shows carry a plot too; at the tag level it merges with movie
		// plots (whose vocabulary is genre-flavored), blurring both.
		b.Text("plot", g.text(6+g.r.Intn(12), commonTerms, showWords))
		if networked {
			b.Open("network")
			b.Empty("channel")
			if g.r.Intn(3) == 0 {
				b.Empty("syndicated")
			}
			b.Close()
		}
		b.Close()
	}
	b.Close()
	return b.Tree()
}
