package wavelet

import (
	"math"
	"math/rand"
	"testing"
)

func trueRange(values []int, lo, hi int) float64 {
	n := 0
	for _, v := range values {
		if v >= lo && v <= hi {
			n++
		}
	}
	return float64(n)
}

func TestFullCoefficientsExact(t *testing.T) {
	values := []int{1, 1, 2, 5, 5, 5, 9, 12}
	s := Build(values, 0) // all coefficients: lossless
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Total() != 8 {
		t.Fatalf("Total = %g", s.Total())
	}
	cases := [][2]int{{1, 1}, {2, 2}, {5, 5}, {9, 9}, {12, 12}, {1, 12}, {3, 4}, {6, 8}, {0, 0}, {13, 20}}
	for _, c := range cases {
		got := s.EstimateRange(c[0], c[1])
		want := trueRange(values, c[0], c[1])
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("EstimateRange(%d,%d) = %g, want %g", c[0], c[1], got, want)
		}
	}
}

func TestEmpty(t *testing.T) {
	s := Build(nil, 10)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.EstimateRange(0, 100) != 0 || s.Selectivity(0, 100) != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestThresholdedApproximation(t *testing.T) {
	// A skewed distribution: a heavy spike plus uniform noise. Retaining
	// few coefficients must keep the spike's mass roughly right.
	rng := rand.New(rand.NewSource(3))
	var values []int
	for i := 0; i < 1000; i++ {
		values = append(values, 50)
	}
	for i := 0; i < 200; i++ {
		values = append(values, rng.Intn(128))
	}
	s := Build(values, 8)
	if s.Coeffs() > 8 {
		t.Fatalf("Coeffs = %d", s.Coeffs())
	}
	got := s.EstimateRange(50, 50)
	if got < 500 {
		t.Fatalf("spike estimate = %g, want near 1000", got)
	}
	// Full range stays near the total.
	if full := s.EstimateRange(0, 127); math.Abs(full-1200) > 300 {
		t.Fatalf("full-range estimate = %g, want near 1200", full)
	}
}

func TestWideDomainGrid(t *testing.T) {
	// A domain far wider than MaxCells must be gridded, not exploded.
	values := []int{0, 1000000}
	s := Build(values, 0)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.EstimateRange(0, 1000000); math.Abs(got-2) > 1e-9 {
		t.Fatalf("full range = %g", got)
	}
	// Mass is localized around the two endpoints.
	left := s.EstimateRange(0, 500)
	if left < 0.5 || left > 1.5 {
		t.Fatalf("left mass = %g", left)
	}
}

func TestCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	values := make([]int, 500)
	for i := range values {
		values[i] = rng.Intn(256)
	}
	s := Build(values, 0)
	before := s.Coeffs()
	c, dropped := s.Compress(before / 2)
	if dropped != before/2 {
		t.Fatalf("dropped %d, want %d", dropped, before/2)
	}
	if c.Coeffs() != before-dropped {
		t.Fatalf("Coeffs = %d", c.Coeffs())
	}
	// Receiver untouched.
	if s.Coeffs() != before {
		t.Fatal("Compress mutated receiver")
	}
	// Estimates remain sane.
	if got := c.EstimateRange(0, 255); math.Abs(got-500) > 250 {
		t.Fatalf("full range after compress = %g", got)
	}
	// Always keeps at least one coefficient.
	c2, _ := s.Compress(1 << 20)
	if c2.Coeffs() < 1 {
		t.Fatal("compressed away everything")
	}
}

func TestMerge(t *testing.T) {
	a := Build([]int{1, 2, 3, 4, 5}, 0)
	b := Build([]int{4, 5, 6, 7}, 0)
	m := Merge(a, b, 0)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 9 {
		t.Fatalf("Total = %g", m.Total())
	}
	if got := m.EstimateRange(1, 7); math.Abs(got-9) > 1e-6 {
		t.Fatalf("full range = %g", got)
	}
	if got := m.EstimateRange(4, 5); math.Abs(got-4) > 1e-6 {
		t.Fatalf("overlap range = %g, want 4", got)
	}
	// Nil/empty merges.
	if got := Merge(a, nil, 0); got.Total() != a.Total() {
		t.Fatal("Merge(a,nil) broken")
	}
	if got := Merge(nil, b, 0); got.Total() != b.Total() {
		t.Fatal("Merge(nil,b) broken")
	}
}

func TestRandomizedLosslessAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		n := rng.Intn(200) + 1
		values := make([]int, n)
		for i := range values {
			values[i] = rng.Intn(300)
		}
		s := Build(values, 0)
		for q := 0; q < 20; q++ {
			lo := rng.Intn(300)
			hi := lo + rng.Intn(100)
			got := s.EstimateRange(lo, hi)
			want := trueRange(values, lo, hi)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("iter %d: range [%d,%d] = %g, want %g", iter, lo, hi, got, want)
			}
		}
	}
}

func TestSelectivityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	values := make([]int, 300)
	for i := range values {
		values[i] = rng.Intn(1000)
	}
	s := Build(values, 12) // heavy thresholding
	for q := 0; q < 50; q++ {
		lo := rng.Intn(1000)
		hi := lo + rng.Intn(500)
		sel := s.Selectivity(lo, hi)
		if sel < 0 || sel > 1 {
			t.Fatalf("selectivity %g out of [0,1]", sel)
		}
	}
}
