package wavelet

import (
	"sort"

	"xcluster/internal/wire"
)

// Encode writes the summary: domain, grid, total, and the retained
// coefficients sorted by index.
func (s *Summary) Encode(w *wire.Writer) {
	w.Int(s.lo)
	w.Int(s.hi)
	w.Int(s.cell)
	w.Int(s.n)
	w.Float(s.total)
	w.Uint(uint64(len(s.coeffs)))
	idxs := make([]int, 0, len(s.coeffs))
	for i := range s.coeffs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	prev := 0
	for _, i := range idxs {
		w.Uint(uint64(i - prev))
		w.Float(s.coeffs[i])
		prev = i
	}
}

// Decode reads a summary written by Encode.
func Decode(r *wire.Reader) *Summary {
	s := &Summary{
		lo:     r.Int(),
		hi:     r.Int(),
		cell:   r.Int(),
		n:      r.Int(),
		total:  r.Float(),
		coeffs: make(map[int]float64),
	}
	n := int(r.Uint())
	prev := 0
	for i := 0; i < n && r.Err() == nil; i++ {
		idx := prev + int(r.Uint())
		s.coeffs[idx] = r.Float()
		prev = idx
	}
	return s
}
