// Package wavelet implements Haar-wavelet synopses of numeric frequency
// distributions — the alternative NUMERIC summarization tool the paper
// cites (Matias, Vitter and Wang, SIGMOD'98). The frequency vector over
// the value domain is transformed into the Haar error tree and only the
// largest-magnitude coefficients are retained; range-sum queries are
// answered by accumulating the retained coefficients' contributions.
//
// Wide domains are first snapped to a grid of at most MaxCells cells so
// the transform stays small; within a cell the distribution is assumed
// uniform, mirroring the histogram package's bucket-uniformity
// assumption.
package wavelet

import (
	"fmt"
	"math"
	"sort"
)

// CoeffBytes is the storage charged per retained coefficient (index +
// value).
const CoeffBytes = 8

// MaxCells caps the grid resolution of the underlying frequency vector.
const MaxCells = 4096

// Summary is a Haar-wavelet synopsis of a numeric frequency
// distribution. The zero value is unusable; use Build or Merge.
type Summary struct {
	lo, hi int     // value domain covered
	cell   int     // domain width per grid cell (>= 1)
	n      int     // number of grid cells (power of two)
	total  float64 // number of summarized values
	// coeffs maps Haar error-tree indices to unnormalized coefficient
	// values. Index 0 is the overall average; index i >= 1 is the
	// difference coefficient of the standard error-tree layout.
	coeffs map[int]float64
}

// Build constructs a wavelet summary of values retaining at most
// maxCoeffs coefficients (<= 0 keeps all non-zero coefficients).
func Build(values []int, maxCoeffs int) *Summary {
	s := &Summary{coeffs: make(map[int]float64)}
	if len(values) == 0 {
		s.cell, s.n = 1, 1
		return s
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	s.lo, s.hi = lo, hi
	width := hi - lo + 1
	s.cell = (width + MaxCells - 1) / MaxCells
	cells := (width + s.cell - 1) / s.cell
	s.n = 1
	for s.n < cells {
		s.n *= 2
	}
	freq := make([]float64, s.n)
	for _, v := range values {
		freq[(v-lo)/s.cell]++
	}
	s.total = float64(len(values))
	s.encode(freq, maxCoeffs)
	return s
}

// encode runs the Haar transform on freq and retains the largest
// normalized coefficients.
func (s *Summary) encode(freq []float64, maxCoeffs int) {
	n := len(freq)
	// Standard bottom-up Haar decomposition: averages and differences.
	avgs := append([]float64(nil), freq...)
	type coeff struct {
		idx  int
		val  float64
		norm float64 // normalized magnitude for thresholding
	}
	var all []coeff
	for length := n; length > 1; length /= 2 {
		next := make([]float64, length/2)
		for i := 0; i < length/2; i++ {
			a, b := avgs[2*i], avgs[2*i+1]
			next[i] = (a + b) / 2
			diff := (a - b) / 2
			// Error-tree index of this difference coefficient.
			idx := length/2 + i
			if diff != 0 {
				// Normalized magnitude |c| * sqrt(support length).
				support := float64(n) / float64(length/2)
				all = append(all, coeff{idx: idx, val: diff, norm: math.Abs(diff) * math.Sqrt(support)})
			}
		}
		avgs = next
	}
	if avgs[0] != 0 {
		all = append(all, coeff{idx: 0, val: avgs[0], norm: math.Abs(avgs[0]) * math.Sqrt(float64(n))})
	}
	if maxCoeffs > 0 && len(all) > maxCoeffs {
		sort.Slice(all, func(i, j int) bool { return all[i].norm > all[j].norm })
		all = all[:maxCoeffs]
	}
	for _, c := range all {
		s.coeffs[c.idx] = c.val
	}
}

// reconstructCell returns the approximate frequency of grid cell i.
func (s *Summary) reconstructCell(i int) float64 {
	// Walk the error tree from the root to leaf i.
	val := s.coeffs[0]
	// The path is determined by the bits of i, from the top level down.
	levels := 0
	for 1<<levels < s.n {
		levels++
	}
	for l := 0; l < levels; l++ {
		// At level l (from the root), the relevant difference
		// coefficient index is 2^l + (i >> (levels-l-1+0)) / 2 ... use
		// the standard layout: coefficient idx = 2^l + prefix(i, l).
		prefix := i >> (levels - l)
		idx := 1<<l + prefix
		c := s.coeffs[idx]
		if c != 0 {
			// Left half adds +c, right half adds -c.
			bit := (i >> (levels - l - 1)) & 1
			if bit == 0 {
				val += c
			} else {
				val -= c
			}
		}
	}
	return val
}

// Total returns the number of summarized values.
func (s *Summary) Total() float64 { return s.total }

// Coeffs returns the number of retained coefficients.
func (s *Summary) Coeffs() int { return len(s.coeffs) }

// SizeBytes returns the storage charge.
func (s *Summary) SizeBytes() int { return len(s.coeffs) * CoeffBytes }

// Bounds returns the covered value domain.
func (s *Summary) Bounds() (int, int, bool) {
	if s.total == 0 {
		return 0, 0, false
	}
	return s.lo, s.hi, true
}

// EstimateRange returns the estimated number of values in [lo, hi].
func (s *Summary) EstimateRange(lo, hi int) float64 {
	if s.total == 0 || hi < lo || hi < s.lo || lo > s.hi {
		return 0
	}
	if lo < s.lo {
		lo = s.lo
	}
	if hi > s.hi {
		hi = s.hi
	}
	first := (lo - s.lo) / s.cell
	last := (hi - s.lo) / s.cell
	est := 0.0
	for i := first; i <= last; i++ {
		f := s.reconstructCell(i)
		if f <= 0 {
			continue
		}
		// Partial cell overlap at the edges (uniform within a cell).
		// The final cell is clamped to the data domain so no mass is
		// attributed to values beyond it.
		cellLo := s.lo + i*s.cell
		cellHi := min(cellLo+s.cell-1, s.hi)
		ovLo, ovHi := max(lo, cellLo), min(hi, cellHi)
		if ovHi < ovLo {
			continue
		}
		est += f * float64(ovHi-ovLo+1) / float64(cellHi-cellLo+1)
	}
	if est < 0 {
		est = 0
	}
	if est > s.total {
		est = s.total
	}
	return est
}

// Selectivity returns the fraction of values in [lo, hi].
func (s *Summary) Selectivity(lo, hi int) float64 {
	if s.total == 0 {
		return 0
	}
	return s.EstimateRange(lo, hi) / s.total
}

// Compress returns a copy retaining b fewer coefficients (smallest
// normalized magnitudes dropped) and the count actually dropped.
func (s *Summary) Compress(b int) (*Summary, int) {
	if b <= 0 || len(s.coeffs) <= 1 {
		return s, 0
	}
	type coeff struct {
		idx  int
		norm float64
	}
	all := make([]coeff, 0, len(s.coeffs))
	for idx, val := range s.coeffs {
		support := float64(s.n)
		if idx > 0 {
			l := 0
			for 1<<(l+1) <= idx {
				l++
			}
			support = float64(s.n) / float64(int(1)<<l)
		}
		all = append(all, coeff{idx: idx, norm: math.Abs(val) * math.Sqrt(support)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].norm != all[j].norm {
			return all[i].norm < all[j].norm
		}
		return all[i].idx < all[j].idx
	})
	if b > len(all)-1 {
		b = len(all) - 1 // always keep at least one coefficient
	}
	out := &Summary{lo: s.lo, hi: s.hi, cell: s.cell, n: s.n, total: s.total, coeffs: make(map[int]float64, len(s.coeffs)-b)}
	drop := make(map[int]struct{}, b)
	for _, c := range all[:b] {
		drop[c.idx] = struct{}{}
	}
	for idx, val := range s.coeffs {
		if _, gone := drop[idx]; !gone {
			out.coeffs[idx] = val
		}
	}
	return out, b
}

// Merge fuses two wavelet summaries by reconstructing both approximate
// frequency vectors over the union domain and re-encoding their sum.
func Merge(a, b *Summary, maxCoeffs int) *Summary {
	if a == nil || a.total == 0 {
		return b.clone()
	}
	if b == nil || b.total == 0 {
		return a.clone()
	}
	lo := min(a.lo, b.lo)
	hi := max(a.hi, b.hi)
	out := &Summary{lo: lo, hi: hi, coeffs: make(map[int]float64), total: a.total + b.total}
	width := hi - lo + 1
	out.cell = (width + MaxCells - 1) / MaxCells
	cells := (width + out.cell - 1) / out.cell
	out.n = 1
	for out.n < cells {
		out.n *= 2
	}
	freq := make([]float64, out.n)
	for _, src := range []*Summary{a, b} {
		for i := 0; i < src.n; i++ {
			f := src.reconstructCell(i)
			if f <= 0 {
				continue
			}
			cellLo := src.lo + i*src.cell
			if cellLo > src.hi {
				break
			}
			freq[(cellLo-lo)/out.cell] += f
		}
	}
	out.encode(freq, maxCoeffs)
	return out
}

func (s *Summary) clone() *Summary {
	if s == nil {
		return &Summary{cell: 1, n: 1, coeffs: make(map[int]float64)}
	}
	out := *s
	out.coeffs = make(map[int]float64, len(s.coeffs))
	for k, v := range s.coeffs {
		out.coeffs[k] = v
	}
	return &out
}

// Validate checks internal invariants.
func (s *Summary) Validate() error {
	if s.n < 1 || s.n&(s.n-1) != 0 {
		return fmt.Errorf("wavelet: grid size %d not a power of two", s.n)
	}
	if s.cell < 1 {
		return fmt.Errorf("wavelet: cell width %d", s.cell)
	}
	if s.total < 0 {
		return fmt.Errorf("wavelet: negative total %g", s.total)
	}
	return nil
}
