package histogram

import "xcluster/internal/wire"

// Encode writes the histogram: total, then per-bucket bounds and counts.
func (h *Histogram) Encode(w *wire.Writer) {
	w.Float(h.total)
	w.Uint(uint64(len(h.buckets)))
	for _, b := range h.buckets {
		w.Int(b.Lo)
		w.Int(b.Hi)
		w.Float(b.Count)
	}
}

// Decode reads a histogram written by Encode.
func Decode(r *wire.Reader) *Histogram {
	h := &Histogram{total: r.Float()}
	n := int(r.Uint())
	for i := 0; i < n && r.Err() == nil; i++ {
		h.buckets = append(h.buckets, Bucket{Lo: r.Int(), Hi: r.Int(), Count: r.Float()})
	}
	return h
}
