// Package histogram implements bucketized frequency summaries for the
// NUMERIC values of XCluster nodes: construction from raw values, range
// selectivity estimation under the conventional continuous-interpolation
// uniformity assumption, bucket alignment and merging (used when two
// synopsis nodes are fused), and adjacent-bucket compression (the paper's
// hist_cmprs operation).
package histogram

import (
	"fmt"
	"math"
	"sort"
)

// Bucket covers the inclusive integer range [Lo, Hi] and holds Count
// values. Counts become fractional after alignment splits.
type Bucket struct {
	Lo, Hi int
	Count  float64
}

func (b Bucket) width() float64 { return float64(b.Hi - b.Lo + 1) }

// Histogram is an ordered sequence of non-overlapping buckets. The zero
// value summarizes an empty collection.
type Histogram struct {
	buckets []Bucket
	total   float64
}

// BucketBytes is the storage charged per bucket (two boundaries plus a
// count) by the synopsis size accounting.
const BucketBytes = 8

// Build constructs a histogram over values with at most maxBuckets
// buckets. Buckets are equi-depth over the sorted values, with boundary
// snapping so equal values never straddle buckets. maxBuckets <= 0 means
// one bucket per distinct value (the detailed form used by the reference
// synopsis).
func Build(values []int, maxBuckets int) *Histogram {
	if len(values) == 0 {
		return &Histogram{}
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)

	// Distinct values with frequencies.
	type vf struct {
		v int
		f float64
	}
	var dist []vf
	for _, v := range sorted {
		if n := len(dist); n > 0 && dist[n-1].v == v {
			dist[n-1].f++
		} else {
			dist = append(dist, vf{v: v, f: 1})
		}
	}

	h := &Histogram{total: float64(len(sorted))}
	if maxBuckets <= 0 || maxBuckets >= len(dist) {
		for _, d := range dist {
			h.buckets = append(h.buckets, Bucket{Lo: d.v, Hi: d.v, Count: d.f})
		}
		return h
	}

	// Equi-depth over distinct values: close a bucket when its count
	// reaches total/maxBuckets.
	target := h.total / float64(maxBuckets)
	cur := Bucket{Lo: dist[0].v, Hi: dist[0].v}
	remaining := maxBuckets
	for i, d := range dist {
		cur.Hi = d.v
		cur.Count += d.f
		left := len(dist) - i - 1
		if (cur.Count >= target && remaining > 1 && left > 0) || left == 0 {
			h.buckets = append(h.buckets, cur)
			remaining--
			if left > 0 {
				cur = Bucket{Lo: dist[i+1].v, Hi: dist[i+1].v}
			}
		}
	}
	return h
}

// BuildMaxDiff constructs a histogram over values with at most maxBuckets
// buckets using MaxDiff(V,F) boundary placement (Poosala, Ioannidis, Haas
// and Shekita, SIGMOD'96 — the paper's reference for improved range-
// predicate histograms): bucket boundaries are inserted at the
// maxBuckets-1 largest adjacent frequency differences of the sorted
// distinct values, so spikes get isolated into their own buckets.
// maxBuckets <= 0 falls back to the detailed form.
func BuildMaxDiff(values []int, maxBuckets int) *Histogram {
	if len(values) == 0 {
		return &Histogram{}
	}
	if maxBuckets <= 0 {
		return Build(values, 0)
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	type vf struct {
		v int
		f float64
	}
	var dist []vf
	for _, v := range sorted {
		if n := len(dist); n > 0 && dist[n-1].v == v {
			dist[n-1].f++
		} else {
			dist = append(dist, vf{v: v, f: 1})
		}
	}
	if maxBuckets >= len(dist) {
		return Build(values, 0)
	}
	// Rank gaps between adjacent distinct values by |Δfrequency|.
	type gap struct {
		idx  int // boundary after dist[idx]
		diff float64
	}
	gaps := make([]gap, 0, len(dist)-1)
	for i := 0; i+1 < len(dist); i++ {
		gaps = append(gaps, gap{idx: i, diff: math.Abs(dist[i+1].f - dist[i].f)})
	}
	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].diff != gaps[j].diff {
			return gaps[i].diff > gaps[j].diff
		}
		return gaps[i].idx < gaps[j].idx
	})
	cut := make(map[int]bool, maxBuckets-1)
	for i := 0; i < maxBuckets-1 && i < len(gaps); i++ {
		cut[gaps[i].idx] = true
	}
	h := &Histogram{total: float64(len(sorted))}
	cur := Bucket{Lo: dist[0].v, Hi: dist[0].v}
	for i, d := range dist {
		cur.Hi = d.v
		cur.Count += d.f
		if cut[i] || i == len(dist)-1 {
			h.buckets = append(h.buckets, cur)
			if i+1 < len(dist) {
				cur = Bucket{Lo: dist[i+1].v, Hi: dist[i+1].v}
			}
		}
	}
	return h
}

// Total returns the number of summarized values.
func (h *Histogram) Total() float64 { return h.total }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// SizeBytes returns the storage charge of the histogram.
func (h *Histogram) SizeBytes() int { return len(h.buckets) * BucketBytes }

// Buckets returns a copy of the buckets (for inspection and tests).
func (h *Histogram) Buckets() []Bucket { return append([]Bucket(nil), h.buckets...) }

// Bounds returns the [min,max] domain covered; ok is false when empty.
func (h *Histogram) Bounds() (lo, hi int, ok bool) {
	if len(h.buckets) == 0 {
		return 0, 0, false
	}
	return h.buckets[0].Lo, h.buckets[len(h.buckets)-1].Hi, true
}

// EstimateRange returns the estimated number of values in [lo, hi] under
// the uniformity assumption within each bucket.
func (h *Histogram) EstimateRange(lo, hi int) float64 {
	if hi < lo {
		return 0
	}
	est := 0.0
	for _, b := range h.buckets {
		if b.Hi < lo || b.Lo > hi {
			continue
		}
		ovLo, ovHi := max(lo, b.Lo), min(hi, b.Hi)
		est += b.Count * float64(ovHi-ovLo+1) / b.width()
	}
	return est
}

// Selectivity returns the fraction of values in [lo, hi].
func (h *Histogram) Selectivity(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	return h.EstimateRange(lo, hi) / h.total
}

// Boundaries returns the sorted upper bucket boundaries; these are the
// atomic prefix-range predicates [min, h] of the Δ metric.
func (h *Histogram) Boundaries() []int {
	out := make([]int, len(h.buckets))
	for i, b := range h.buckets {
		out[i] = b.Hi
	}
	return out
}

// Merge fuses two histograms into a summary of the union of their value
// collections: boundaries are aligned (splitting counts uniformly) and
// aligned bucket counts are summed — the paper's NUMERIC fusion f().
func Merge(a, b *Histogram) *Histogram {
	if a == nil || len(a.buckets) == 0 {
		return b.clone()
	}
	if b == nil || len(b.buckets) == 0 {
		return a.clone()
	}
	// Collect the union of boundary edges. Each bucket [Lo,Hi] induces
	// edges Lo and Hi+1 on the integer line.
	edgeSet := make(map[int]struct{})
	for _, h := range []*Histogram{a, b} {
		for _, bk := range h.buckets {
			edgeSet[bk.Lo] = struct{}{}
			edgeSet[bk.Hi+1] = struct{}{}
		}
	}
	edges := make([]int, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Ints(edges)

	out := &Histogram{total: a.total + b.total}
	for i := 0; i+1 < len(edges); i++ {
		lo, hi := edges[i], edges[i+1]-1
		c := a.EstimateRange(lo, hi) + b.EstimateRange(lo, hi)
		if c > 0 {
			out.buckets = append(out.buckets, Bucket{Lo: lo, Hi: hi, Count: c})
		}
	}
	out.coalesceZeroGaps()
	return out
}

// coalesceZeroGaps merges adjacent buckets whose union loses no
// information (identical density), keeping merged histograms small.
func (h *Histogram) coalesceZeroGaps() {
	if len(h.buckets) < 2 {
		return
	}
	out := h.buckets[:1]
	for _, b := range h.buckets[1:] {
		last := &out[len(out)-1]
		// Merge exactly-adjacent buckets with equal density.
		if last.Hi+1 == b.Lo {
			d1 := last.Count / last.width()
			d2 := b.Count / b.width()
			if math.Abs(d1-d2) < 1e-12 {
				last.Hi = b.Hi
				last.Count += b.Count
				continue
			}
		}
		out = append(out, b)
	}
	h.buckets = out
}

func (h *Histogram) clone() *Histogram {
	if h == nil {
		return &Histogram{}
	}
	return &Histogram{buckets: append([]Bucket(nil), h.buckets...), total: h.total}
}

// MergeAdjacent returns a copy of h with buckets i and i+1 fused into one
// bucket spanning both ranges (counts summed). It panics on a bad index.
func (h *Histogram) MergeAdjacent(i int) *Histogram {
	if i < 0 || i+1 >= len(h.buckets) {
		panic(fmt.Sprintf("histogram: MergeAdjacent(%d) with %d buckets", i, len(h.buckets)))
	}
	out := h.clone()
	a, b := out.buckets[i], out.buckets[i+1]
	out.buckets[i] = Bucket{Lo: a.Lo, Hi: b.Hi, Count: a.Count + b.Count}
	out.buckets = append(out.buckets[:i+1], out.buckets[i+2:]...)
	return out
}

// CompressOnce performs one hist_cmprs step (b=1): it fuses the adjacent
// bucket pair whose merge least perturbs the atomic prefix-range
// estimates, returning the compressed copy. ok is false when fewer than
// two buckets remain.
func (h *Histogram) CompressOnce() (*Histogram, bool) {
	if len(h.buckets) < 2 {
		return h, false
	}
	bestI, bestErr := -1, math.Inf(1)
	for i := 0; i+1 < len(h.buckets); i++ {
		a, b := h.buckets[i], h.buckets[i+1]
		// Merging [aLo,aHi] and [bLo,bHi] only changes estimates for
		// prefix ranges ending inside the union; the squared error of
		// the atomic predicate at the internal boundary captures it.
		merged := Bucket{Lo: a.Lo, Hi: b.Hi, Count: a.Count + b.Count}
		before := a.Count
		after := merged.Count * float64(a.Hi-a.Lo+1) / merged.width()
		d := before - after
		err := d * d
		if err < bestErr {
			bestErr = err
			bestI = i
		}
	}
	return h.MergeAdjacent(bestI), true
}

// Validate checks internal invariants: ordered, non-overlapping buckets
// with non-negative counts summing to Total.
func (h *Histogram) Validate() error {
	sum := 0.0
	for i, b := range h.buckets {
		if b.Hi < b.Lo {
			return fmt.Errorf("histogram: bucket %d has inverted range [%d,%d]", i, b.Lo, b.Hi)
		}
		if b.Count < 0 {
			return fmt.Errorf("histogram: bucket %d has negative count", i)
		}
		if i > 0 && h.buckets[i-1].Hi >= b.Lo {
			return fmt.Errorf("histogram: buckets %d and %d overlap", i-1, i)
		}
		sum += b.Count
	}
	if math.Abs(sum-h.total) > 1e-6*math.Max(1, h.total) {
		return fmt.Errorf("histogram: bucket counts sum to %g, total is %g", sum, h.total)
	}
	return nil
}
