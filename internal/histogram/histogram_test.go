package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	h := Build(nil, 10)
	if h.Total() != 0 || h.NumBuckets() != 0 {
		t.Fatalf("empty histogram: total=%g buckets=%d", h.Total(), h.NumBuckets())
	}
	if got := h.EstimateRange(0, 100); got != 0 {
		t.Fatalf("EstimateRange on empty = %g", got)
	}
	if got := h.Selectivity(0, 100); got != 0 {
		t.Fatalf("Selectivity on empty = %g", got)
	}
}

func TestDetailedIsExact(t *testing.T) {
	vals := []int{1, 1, 2, 5, 5, 5, 9}
	h := Build(vals, 0) // detailed: one bucket per distinct value
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 4 {
		t.Fatalf("buckets = %d, want 4", h.NumBuckets())
	}
	cases := []struct {
		lo, hi int
		want   float64
	}{
		{1, 1, 2}, {2, 2, 1}, {5, 5, 3}, {9, 9, 1},
		{0, 0, 0}, {3, 4, 0}, {1, 9, 7}, {2, 5, 4}, {6, 8, 0},
	}
	for _, c := range cases {
		if got := h.EstimateRange(c.lo, c.hi); got != c.want {
			t.Errorf("EstimateRange(%d,%d) = %g, want %g", c.lo, c.hi, got, c.want)
		}
	}
}

func TestEquiDepthRespectsBudget(t *testing.T) {
	vals := make([]int, 1000)
	for i := range vals {
		vals[i] = i % 97
	}
	for _, mb := range []int{1, 2, 5, 10, 50} {
		h := Build(vals, mb)
		if err := h.Validate(); err != nil {
			t.Fatalf("maxBuckets=%d: %v", mb, err)
		}
		if h.NumBuckets() > mb {
			t.Errorf("maxBuckets=%d produced %d buckets", mb, h.NumBuckets())
		}
		if h.Total() != 1000 {
			t.Errorf("total = %g", h.Total())
		}
		// Full-domain selectivity is 1.
		if got := h.Selectivity(0, 96); math.Abs(got-1) > 1e-9 {
			t.Errorf("full-range selectivity = %g", got)
		}
	}
}

func TestEqualValuesNeverStraddle(t *testing.T) {
	// 500 copies of value 7 and a few others: value 7 must live in one
	// bucket so point queries stay exact.
	vals := make([]int, 0, 510)
	for i := 0; i < 500; i++ {
		vals = append(vals, 7)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 100+i)
	}
	h := Build(vals, 3)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	got := h.EstimateRange(7, 7)
	if got < 400 {
		t.Fatalf("point estimate for heavy value = %g, want near 500", got)
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a := Build([]int{1, 2, 3, 4, 5}, 0)
	b := Build([]int{4, 5, 6, 7}, 2)
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 9 {
		t.Fatalf("merged total = %g, want 9", m.Total())
	}
	if got := m.EstimateRange(1, 7); math.Abs(got-9) > 1e-9 {
		t.Fatalf("full range = %g, want 9", got)
	}
	// Merge with empty is identity.
	if got := Merge(a, &Histogram{}); got.Total() != a.Total() || got.NumBuckets() != a.NumBuckets() {
		t.Fatal("merge with empty not identity")
	}
	if got := Merge(nil, b); got.Total() != b.Total() {
		t.Fatal("merge nil,b not b")
	}
}

func TestMergeAlignmentSplitsUniformly(t *testing.T) {
	// a: one bucket [0,9] count 10; b: one bucket [5,14] count 10.
	a := &Histogram{buckets: []Bucket{{Lo: 0, Hi: 9, Count: 10}}, total: 10}
	b := &Histogram{buckets: []Bucket{{Lo: 5, Hi: 14, Count: 10}}, total: 10}
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overlap region [5,9] should hold 5 (from a) + 5 (from b) = 10.
	if got := m.EstimateRange(5, 9); math.Abs(got-10) > 1e-9 {
		t.Fatalf("overlap estimate = %g, want 10", got)
	}
	if got := m.EstimateRange(0, 4); math.Abs(got-5) > 1e-9 {
		t.Fatalf("left estimate = %g, want 5", got)
	}
}

func TestMergeAdjacent(t *testing.T) {
	h := Build([]int{1, 1, 5, 5, 9}, 0)
	m := h.MergeAdjacent(0)
	if m.NumBuckets() != 2 {
		t.Fatalf("buckets = %d, want 2", m.NumBuckets())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original is untouched.
	if h.NumBuckets() != 3 {
		t.Fatal("MergeAdjacent mutated receiver")
	}
	if got := m.EstimateRange(1, 5); math.Abs(got-4) > 1e-9 {
		t.Fatalf("range estimate = %g, want 4", got)
	}
}

func TestCompressOnceReducesBuckets(t *testing.T) {
	vals := []int{1, 1, 1, 1, 2, 50, 51, 52, 90, 90, 90}
	h := Build(vals, 0)
	n := h.NumBuckets()
	c, ok := h.CompressOnce()
	if !ok {
		t.Fatal("CompressOnce failed")
	}
	if c.NumBuckets() != n-1 {
		t.Fatalf("buckets = %d, want %d", c.NumBuckets(), n-1)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Total() != h.Total() {
		t.Fatal("compression changed total")
	}
	// Compress down to one bucket; then no further compression.
	for {
		var more bool
		c, more = c.CompressOnce()
		if !more {
			break
		}
	}
	if c.NumBuckets() != 1 {
		t.Fatalf("final buckets = %d, want 1", c.NumBuckets())
	}
}

func TestCompressPrefersLowErrorPair(t *testing.T) {
	// Buckets with equal density [0,0]:5 and [1,1]:5 merge losslessly,
	// unlike the skewed pair {50:100, 90:1}.
	h := &Histogram{
		buckets: []Bucket{{0, 0, 5}, {1, 1, 5}, {50, 50, 100}, {90, 90, 1}},
		total:   111,
	}
	c, _ := h.CompressOnce()
	// The first two should be merged: estimates unchanged.
	if got := c.EstimateRange(0, 0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("lossless pair not chosen: est(0,0) = %g", got)
	}
	if got := c.EstimateRange(50, 50); math.Abs(got-100) > 1e-9 {
		t.Fatalf("heavy bucket disturbed: %g", got)
	}
}

func TestBoundaries(t *testing.T) {
	h := Build([]int{1, 5, 9}, 0)
	bs := h.Boundaries()
	if len(bs) != 3 || bs[0] != 1 || bs[1] != 5 || bs[2] != 9 {
		t.Fatalf("Boundaries = %v", bs)
	}
}

// Property: estimates over the full domain always equal the total, and
// range estimates are monotone in the range and bounded by the total.
func TestQuickEstimateInvariants(t *testing.T) {
	f := func(raw []uint8, mbRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int, len(raw))
		for i, v := range raw {
			vals[i] = int(v)
		}
		mb := int(mbRaw%20) + 1
		h := Build(vals, mb)
		if h.Validate() != nil {
			return false
		}
		lo, hi, _ := h.Bounds()
		full := h.EstimateRange(lo, hi)
		if math.Abs(full-h.Total()) > 1e-6*math.Max(1, h.Total()) {
			return false
		}
		// Monotonicity over nested ranges.
		a := h.EstimateRange(lo, lo+(hi-lo)/2)
		b := h.EstimateRange(lo, hi)
		return a <= b+1e-9 && b <= h.Total()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging preserves totals and full-domain estimates.
func TestQuickMergeTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n1, n2 := rng.Intn(50)+1, rng.Intn(50)+1
		v1 := make([]int, n1)
		v2 := make([]int, n2)
		for j := range v1 {
			v1[j] = rng.Intn(100)
		}
		for j := range v2 {
			v2[j] = rng.Intn(200)
		}
		a := Build(v1, rng.Intn(8)+1)
		b := Build(v2, rng.Intn(8)+1)
		m := Merge(a, b)
		if err := m.Validate(); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if math.Abs(m.Total()-float64(n1+n2)) > 1e-6 {
			t.Fatalf("iter %d: total %g, want %d", i, m.Total(), n1+n2)
		}
		lo, hi, _ := m.Bounds()
		if got := m.EstimateRange(lo, hi); math.Abs(got-m.Total()) > 1e-6 {
			t.Fatalf("iter %d: full estimate %g vs total %g", i, got, m.Total())
		}
	}
}

func TestMaxDiffIsolatesSpikes(t *testing.T) {
	// A huge spike at 50 amid a uniform floor: MaxDiff must put the
	// spike in its own bucket even with few buckets.
	var vals []int
	for i := 0; i < 100; i++ {
		vals = append(vals, i)
	}
	for i := 0; i < 900; i++ {
		vals = append(vals, 50)
	}
	h := BuildMaxDiff(vals, 4)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() > 4 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	got := h.EstimateRange(50, 50)
	if got < 850 {
		t.Fatalf("spike estimate = %g, want near 901", got)
	}
	// An equi-depth histogram with the same budget smears the spike less
	// precisely than MaxDiff only if boundaries differ; at minimum
	// MaxDiff must not be worse on the spike point query.
	eq := Build(vals, 4)
	if eqGot := eq.EstimateRange(50, 50); got < eqGot-1e-9 {
		t.Fatalf("MaxDiff (%g) worse than equi-depth (%g) on the spike", got, eqGot)
	}
}

func TestMaxDiffDegenerateCases(t *testing.T) {
	if h := BuildMaxDiff(nil, 4); h.Total() != 0 {
		t.Fatal("empty build")
	}
	// Budget >= distinct values → detailed (exact).
	h := BuildMaxDiff([]int{1, 2, 3}, 10)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if got := h.EstimateRange(v, v); got != 1 {
			t.Fatalf("point %d = %g", v, got)
		}
	}
	// maxBuckets <= 0 → detailed.
	d := BuildMaxDiff([]int{5, 5, 9}, 0)
	if d.NumBuckets() != 2 {
		t.Fatalf("detailed buckets = %d", d.NumBuckets())
	}
}

func TestMaxDiffBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]int, 2000)
	for i := range vals {
		vals[i] = rng.Intn(500)
	}
	for _, mb := range []int{1, 3, 8, 32} {
		h := BuildMaxDiff(vals, mb)
		if h.NumBuckets() > mb {
			t.Fatalf("mb=%d: buckets = %d", mb, h.NumBuckets())
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("mb=%d: %v", mb, err)
		}
		if h.Total() != 2000 {
			t.Fatalf("total = %g", h.Total())
		}
	}
}

func TestBucketsAndSize(t *testing.T) {
	h := Build([]int{1, 5, 9}, 0)
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("Buckets = %v", bs)
	}
	// The copy is independent.
	bs[0].Count = 999
	if h.Buckets()[0].Count == 999 {
		t.Fatal("Buckets returned internal storage")
	}
	if h.SizeBytes() != 3*BucketBytes {
		t.Fatalf("SizeBytes = %d", h.SizeBytes())
	}
}
