package accuracy

import (
	"math"
	"strings"
	"testing"

	"xcluster/internal/obs"
	"xcluster/internal/query"
)

// obsPair feeds one estimate/truth pair with a known relative error:
// truth 100 and sanity 10 make the error exactly |100−est|/100.
func obsPair(m *Monitor, q *query.Query, relErr float64) {
	m.Observe(q, 100*(1-relErr), 100)
}

func TestMonitorReport(t *testing.T) {
	m := NewMonitor()
	qStruct := query.MustParse("//book/title")
	qRange := query.MustParse("//book[year>1990]")

	obsPair(m, qStruct, 0.1)
	obsPair(m, qStruct, 0.3)
	obsPair(m, qRange, 0.5)

	rep := m.Report()
	if rep.SanityBound != DefaultSanityBound || rep.Window != DefaultWindow {
		t.Fatalf("report config = %+v", rep)
	}
	if rep.Samples != 3 {
		t.Fatalf("samples = %d, want 3", rep.Samples)
	}
	if want := (0.1 + 0.3 + 0.5) / 3; math.Abs(rep.AvgRelError-want) > 1e-12 {
		t.Fatalf("avg = %g, want %g", rep.AvgRelError, want)
	}
	// Zero-sample classes are omitted; observed ones appear in report
	// order with their own averages.
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %+v, want struct and range only", rep.Classes)
	}
	st := rep.Classes[0]
	if st.Class != "struct" || st.Samples != 2 || math.Abs(st.AvgRelError-0.2) > 1e-12 {
		t.Fatalf("struct report = %+v", st)
	}
	if st.RecentSamples != 2 || math.Abs(st.RecentAvg-0.2) > 1e-12 {
		t.Fatalf("struct rolling state = %+v", st)
	}
	rg := rep.Classes[1]
	if rg.Class != "range" || rg.Samples != 1 || math.Abs(rg.AvgRelError-0.5) > 1e-12 {
		t.Fatalf("range report = %+v", rg)
	}
	if got := m.Drifted(); len(got) != 0 {
		t.Fatalf("Drifted() = %v on a fresh monitor", got)
	}
}

// TestMonitorDriftTrip simulates a degraded synopsis: a class whose
// error has been small for long enough to establish a baseline suddenly
// answers much worse. The rolling window must trip the drift gauge and
// fire the callback exactly once.
func TestMonitorDriftTrip(t *testing.T) {
	reg := obs.NewRegistry()
	var events []DriftEvent
	m := NewMonitor(
		WithWindow(8),
		WithMonitorRegistry(reg),
		WithOnDrift(func(ev DriftEvent) { events = append(events, ev) }),
	)
	q := query.MustParse("//book[year>1990]")

	// Healthy phase: enough samples at 1% error to fill the window and
	// scroll a baseline out of it.
	for i := 0; i < 16; i++ {
		obsPair(m, q, 0.01)
	}
	if len(events) != 0 || len(m.Drifted()) != 0 {
		t.Fatalf("healthy phase tripped drift: %v", events)
	}

	// Degraded phase: the synopsis now answers at 50% error.
	for i := 0; i < 8; i++ {
		obsPair(m, q, 0.5)
	}
	if len(events) != 1 {
		t.Fatalf("drift events = %d, want exactly 1 (fire on transition only)", len(events))
	}
	ev := events[0]
	if ev.Class != Range {
		t.Fatalf("drift class = %v, want Range", ev.Class)
	}
	if ev.Recent <= ev.Baseline || ev.Ratio < DefaultDriftFactor {
		t.Fatalf("drift event = %+v, want recent >> baseline", ev)
	}
	if got := m.Drifted(); len(got) != 1 || got[0] != Range {
		t.Fatalf("Drifted() = %v, want [Range]", got)
	}
	rep := m.Report()
	for _, c := range rep.Classes {
		if c.Class == "range" && !c.Drifted {
			t.Fatalf("report does not flag range as drifted: %+v", c)
		}
	}

	// The gauge mirrors the flag.
	if got := reg.Gauge(MetricDrifted, `class="range"`).Value(); got != 1 {
		t.Fatalf("drifted gauge = %g, want 1", got)
	}
	if got := reg.Counter(MetricSamplesTotal, `class="range"`).Value(); got != 24 {
		t.Fatalf("samples counter = %d, want 24", got)
	}
}

// TestMonitorPrometheusGolden pins the exact Prometheus rendering of
// the accuracy series: all five classes pre-registered, labeled
// histograms with cumulative buckets, and the drift gauges.
func TestMonitorPrometheusGolden(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(WithMonitorRegistry(reg))
	// struct: error 0.1; range: error 1.
	m.Observe(query.MustParse("//book/title"), 90, 100)
	m.Observe(query.MustParse("//book[year>1990]"), 100, 50)

	want := `# HELP xcluster_accuracy_drift_ratio Rolling mean error over pre-window baseline, by predicate class.
# TYPE xcluster_accuracy_drift_ratio gauge
xcluster_accuracy_drift_ratio{class="ftcontains"} 0
xcluster_accuracy_drift_ratio{class="ftsim"} 0
xcluster_accuracy_drift_ratio{class="range"} 0
xcluster_accuracy_drift_ratio{class="struct"} 0
xcluster_accuracy_drift_ratio{class="substring"} 0
# HELP xcluster_accuracy_drifted 1 while the class's rolling error exceeds the drift threshold.
# TYPE xcluster_accuracy_drifted gauge
xcluster_accuracy_drifted{class="ftcontains"} 0
xcluster_accuracy_drifted{class="ftsim"} 0
xcluster_accuracy_drifted{class="range"} 0
xcluster_accuracy_drifted{class="struct"} 0
xcluster_accuracy_drifted{class="substring"} 0
# HELP xcluster_accuracy_error Relative error of shadow-checked estimates, by predicate class.
# TYPE xcluster_accuracy_error histogram
xcluster_accuracy_error_bucket{class="ftcontains",le="0.01"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="0.025"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="0.05"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="0.1"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="0.25"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="0.5"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="1"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="2.5"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="5"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="10"} 0
xcluster_accuracy_error_bucket{class="ftcontains",le="+Inf"} 0
xcluster_accuracy_error_sum{class="ftcontains"} 0
xcluster_accuracy_error_count{class="ftcontains"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="0.01"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="0.025"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="0.05"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="0.1"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="0.25"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="0.5"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="1"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="2.5"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="5"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="10"} 0
xcluster_accuracy_error_bucket{class="ftsim",le="+Inf"} 0
xcluster_accuracy_error_sum{class="ftsim"} 0
xcluster_accuracy_error_count{class="ftsim"} 0
xcluster_accuracy_error_bucket{class="range",le="0.01"} 0
xcluster_accuracy_error_bucket{class="range",le="0.025"} 0
xcluster_accuracy_error_bucket{class="range",le="0.05"} 0
xcluster_accuracy_error_bucket{class="range",le="0.1"} 0
xcluster_accuracy_error_bucket{class="range",le="0.25"} 0
xcluster_accuracy_error_bucket{class="range",le="0.5"} 0
xcluster_accuracy_error_bucket{class="range",le="1"} 1
xcluster_accuracy_error_bucket{class="range",le="2.5"} 1
xcluster_accuracy_error_bucket{class="range",le="5"} 1
xcluster_accuracy_error_bucket{class="range",le="10"} 1
xcluster_accuracy_error_bucket{class="range",le="+Inf"} 1
xcluster_accuracy_error_sum{class="range"} 1
xcluster_accuracy_error_count{class="range"} 1
xcluster_accuracy_error_bucket{class="struct",le="0.01"} 0
xcluster_accuracy_error_bucket{class="struct",le="0.025"} 0
xcluster_accuracy_error_bucket{class="struct",le="0.05"} 0
xcluster_accuracy_error_bucket{class="struct",le="0.1"} 1
xcluster_accuracy_error_bucket{class="struct",le="0.25"} 1
xcluster_accuracy_error_bucket{class="struct",le="0.5"} 1
xcluster_accuracy_error_bucket{class="struct",le="1"} 1
xcluster_accuracy_error_bucket{class="struct",le="2.5"} 1
xcluster_accuracy_error_bucket{class="struct",le="5"} 1
xcluster_accuracy_error_bucket{class="struct",le="10"} 1
xcluster_accuracy_error_bucket{class="struct",le="+Inf"} 1
xcluster_accuracy_error_sum{class="struct"} 0.1
xcluster_accuracy_error_count{class="struct"} 1
xcluster_accuracy_error_bucket{class="substring",le="0.01"} 0
xcluster_accuracy_error_bucket{class="substring",le="0.025"} 0
xcluster_accuracy_error_bucket{class="substring",le="0.05"} 0
xcluster_accuracy_error_bucket{class="substring",le="0.1"} 0
xcluster_accuracy_error_bucket{class="substring",le="0.25"} 0
xcluster_accuracy_error_bucket{class="substring",le="0.5"} 0
xcluster_accuracy_error_bucket{class="substring",le="1"} 0
xcluster_accuracy_error_bucket{class="substring",le="2.5"} 0
xcluster_accuracy_error_bucket{class="substring",le="5"} 0
xcluster_accuracy_error_bucket{class="substring",le="10"} 0
xcluster_accuracy_error_bucket{class="substring",le="+Inf"} 0
xcluster_accuracy_error_sum{class="substring"} 0
xcluster_accuracy_error_count{class="substring"} 0
# HELP xcluster_accuracy_recent_error Rolling-window mean relative error, by predicate class.
# TYPE xcluster_accuracy_recent_error gauge
xcluster_accuracy_recent_error{class="ftcontains"} 0
xcluster_accuracy_recent_error{class="ftsim"} 0
xcluster_accuracy_recent_error{class="range"} 1
xcluster_accuracy_recent_error{class="struct"} 0.1
xcluster_accuracy_recent_error{class="substring"} 0
# HELP xcluster_accuracy_samples_total Estimate/ground-truth pairs observed, by predicate class.
# TYPE xcluster_accuracy_samples_total counter
xcluster_accuracy_samples_total{class="ftcontains"} 0
xcluster_accuracy_samples_total{class="ftsim"} 0
xcluster_accuracy_samples_total{class="range"} 1
xcluster_accuracy_samples_total{class="struct"} 1
xcluster_accuracy_samples_total{class="substring"} 0
`
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if sb.String() != want {
		t.Errorf("accuracy series mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}
