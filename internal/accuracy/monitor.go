package accuracy

import (
	"sync"

	"xcluster/internal/obs"
	"xcluster/internal/query"
)

// Registry metric names the monitor emits. The serving layer registers
// help text for them so one registry aggregates serving latency and
// estimation accuracy side by side.
const (
	// MetricErrorHistogram is a histogram of per-estimate relative
	// errors, labeled class="struct|range|substring|ftcontains|ftsim".
	MetricErrorHistogram = "xcluster_accuracy_error"
	// MetricRecentError is a gauge of the rolling-window mean error per
	// class.
	MetricRecentError = "xcluster_accuracy_recent_error"
	// MetricDriftRatio is a gauge of recent/baseline mean error per
	// class (0 until the baseline exists).
	MetricDriftRatio = "xcluster_accuracy_drift_ratio"
	// MetricDrifted is a 0/1 gauge per class: 1 while the class's
	// rolling error exceeds the drift threshold.
	MetricDrifted = "xcluster_accuracy_drifted"
	// MetricSamplesTotal counts observed estimate/truth pairs per class.
	MetricSamplesTotal = "xcluster_accuracy_samples_total"
)

// DefaultErrorBuckets are the histogram bounds of MetricErrorHistogram:
// relative-error ratios from 1% to 10x.
var DefaultErrorBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Monitor defaults.
const (
	// DefaultWindow is the rolling-window size per class.
	DefaultWindow = 128
	// DefaultDriftFactor flags a class when its rolling mean error
	// exceeds this multiple of the pre-window baseline mean.
	DefaultDriftFactor = 2.0
	// DefaultMinDelta additionally requires the rolling mean to exceed
	// the baseline by this absolute margin, so near-zero errors cannot
	// trip the gauge on noise.
	DefaultMinDelta = 0.05
)

// DriftEvent describes one drift-flag transition of a class.
type DriftEvent struct {
	Class    Class
	Recent   float64 // rolling-window mean error
	Baseline float64 // mean error of all samples before the window
	Ratio    float64 // Recent / Baseline
}

// MonitorOption configures NewMonitor.
type MonitorOption func(*Monitor)

// WithSanity sets the sanity bound of the error metric (default
// DefaultSanityBound, the paper's s = 10).
func WithSanity(s float64) MonitorOption {
	return func(m *Monitor) {
		if s > 0 {
			m.sanity = s
		}
	}
}

// WithWindow sets the rolling-window size per class (default
// DefaultWindow).
func WithWindow(n int) MonitorOption {
	return func(m *Monitor) {
		if n > 0 {
			m.window = n
		}
	}
}

// WithDriftFactor sets the multiple of the baseline mean at which the
// rolling mean flags drift (default DefaultDriftFactor).
func WithDriftFactor(f float64) MonitorOption {
	return func(m *Monitor) {
		if f > 0 {
			m.factor = f
		}
	}
}

// WithMinDelta sets the absolute margin the rolling mean must exceed
// the baseline by before drift is flagged (default DefaultMinDelta).
func WithMinDelta(d float64) MonitorOption {
	return func(m *Monitor) {
		if d >= 0 {
			m.minDelta = d
		}
	}
}

// WithMonitorRegistry routes the monitor's per-class error histograms
// and drift gauges into a metrics registry.
func WithMonitorRegistry(r *obs.Registry) MonitorOption {
	return func(m *Monitor) { m.reg = r }
}

// WithOnDrift installs a callback fired once per false→true drift-flag
// transition of a class (e.g. to log a warning). It runs on the
// observing goroutine with no monitor lock held. Repeated options
// chain: every installed callback fires, in installation order, so a
// logging hook and a rebuild trigger compose.
func WithOnDrift(fn func(DriftEvent)) MonitorOption {
	return func(m *Monitor) {
		if prev := m.onDrift; prev != nil {
			m.onDrift = func(ev DriftEvent) {
				prev(ev)
				fn(ev)
			}
			return
		}
		m.onDrift = fn
	}
}

// classState aggregates one class's errors: lifetime sum/count plus a
// rolling window for drift detection.
type classState struct {
	count   uint64
	sum     float64
	ring    []float64
	ringSum float64
	next    int
	filled  int
	drifted bool
}

// Monitor aggregates estimate/ground-truth pairs into per-class error
// statistics with the paper's relative-error metric. All methods are
// safe for concurrent use.
type Monitor struct {
	sanity   float64
	window   int
	factor   float64
	minDelta float64
	onDrift  func(DriftEvent)
	reg      *obs.Registry

	// Pre-resolved registry series per class (nil without a registry).
	hists   [NumClasses]*obs.Histogram
	recent  [NumClasses]*obs.Gauge
	ratio   [NumClasses]*obs.Gauge
	flagged [NumClasses]*obs.Gauge
	samples [NumClasses]*obs.Counter

	mu      sync.Mutex
	classes [NumClasses]classState
}

// NewMonitor returns a monitor with the paper's default sanity bound
// and the default drift policy.
func NewMonitor(opts ...MonitorOption) *Monitor {
	m := &Monitor{
		sanity:   DefaultSanityBound,
		window:   DefaultWindow,
		factor:   DefaultDriftFactor,
		minDelta: DefaultMinDelta,
	}
	for _, opt := range opts {
		opt(m)
	}
	for i := range m.classes {
		m.classes[i].ring = make([]float64, m.window)
	}
	if m.reg != nil {
		m.reg.Help(MetricErrorHistogram, "Relative error of shadow-checked estimates, by predicate class.")
		m.reg.Help(MetricRecentError, "Rolling-window mean relative error, by predicate class.")
		m.reg.Help(MetricDriftRatio, "Rolling mean error over pre-window baseline, by predicate class.")
		m.reg.Help(MetricDrifted, "1 while the class's rolling error exceeds the drift threshold.")
		m.reg.Help(MetricSamplesTotal, "Estimate/ground-truth pairs observed, by predicate class.")
		for _, c := range Classes() {
			labels := `class="` + c.String() + `"`
			m.hists[c] = m.reg.Histogram(MetricErrorHistogram, labels, DefaultErrorBuckets)
			m.recent[c] = m.reg.Gauge(MetricRecentError, labels)
			m.ratio[c] = m.reg.Gauge(MetricDriftRatio, labels)
			m.flagged[c] = m.reg.Gauge(MetricDrifted, labels)
			m.samples[c] = m.reg.Counter(MetricSamplesTotal, labels)
		}
	}
	return m
}

// SanityBound returns the monitor's sanity bound.
func (m *Monitor) SanityBound() float64 { return m.sanity }

// Observe records one estimate/ground-truth pair: it classifies the
// query, scores the estimate with the relative-error metric, and
// updates the class's lifetime and rolling statistics. It reports the
// class and error so callers can log or return them.
func (m *Monitor) Observe(q *query.Query, est, truth float64) (Class, float64) {
	c := Classify(q)
	err := RelError(truth, est, m.sanity)

	m.mu.Lock()
	st := &m.classes[c]
	st.count++
	st.sum += err
	if st.filled == len(st.ring) {
		st.ringSum -= st.ring[st.next]
	} else {
		st.filled++
	}
	st.ring[st.next] = err
	st.ringSum += err
	st.next = (st.next + 1) % len(st.ring)

	recent, baseline, ratio, drifted := m.driftLocked(st)
	tripped := drifted && !st.drifted
	st.drifted = drifted
	m.mu.Unlock()

	if m.reg != nil {
		m.hists[c].Observe(err)
		m.samples[c].Inc()
		m.recent[c].Set(recent)
		m.ratio[c].Set(ratio)
		flag := 0.0
		if drifted {
			flag = 1
		}
		m.flagged[c].Set(flag)
	}
	if tripped && m.onDrift != nil {
		m.onDrift(DriftEvent{Class: c, Recent: recent, Baseline: baseline, Ratio: ratio})
	}
	return c, err
}

// driftLocked computes the class's rolling mean, pre-window baseline,
// their ratio, and whether the drift threshold is exceeded. The
// baseline is the mean of every sample that has scrolled out of the
// window — comparing the live window against established history, so a
// synopsis that was always bad does not self-normalize.
func (m *Monitor) driftLocked(st *classState) (recent, baseline, ratio float64, drifted bool) {
	if st.filled > 0 {
		recent = st.ringSum / float64(st.filled)
	}
	before := st.count - uint64(st.filled)
	if before == 0 {
		return recent, 0, 0, false
	}
	baseline = (st.sum - st.ringSum) / float64(before)
	if baseline > 0 {
		ratio = recent / baseline
	}
	drifted = st.filled == len(st.ring) &&
		recent >= m.factor*baseline &&
		recent-baseline >= m.minDelta
	return recent, baseline, ratio, drifted
}

// ClassReport is the point-in-time accuracy state of one class.
type ClassReport struct {
	Class string `json:"class"`
	// Samples counts observed estimate/truth pairs.
	Samples uint64 `json:"samples"`
	// AvgRelError is the lifetime mean relative error.
	AvgRelError float64 `json:"avg_rel_error"`
	// RecentAvg is the rolling-window mean; RecentSamples how many
	// samples it covers (at most the window).
	RecentAvg     float64 `json:"recent_avg"`
	RecentSamples int     `json:"recent_samples"`
	// Baseline is the mean error of samples before the window (0 until
	// the window has scrolled).
	Baseline float64 `json:"baseline"`
	// DriftRatio is RecentAvg / Baseline (0 without a baseline).
	DriftRatio float64 `json:"drift_ratio"`
	// Drifted reports whether the class currently exceeds the drift
	// threshold.
	Drifted bool `json:"drifted"`
}

// Report is a point-in-time snapshot of the monitor.
type Report struct {
	SanityBound float64 `json:"sanity_bound"`
	Window      int     `json:"window"`
	DriftFactor float64 `json:"drift_factor"`
	// Samples and AvgRelError aggregate every class.
	Samples     uint64  `json:"samples"`
	AvgRelError float64 `json:"avg_rel_error"`
	// Classes lists per-class state in report order, omitting classes
	// with no samples.
	Classes []ClassReport `json:"classes"`
}

// Report snapshots the monitor.
func (m *Monitor) Report() Report {
	rep := Report{SanityBound: m.sanity, Window: m.window, DriftFactor: m.factor}
	m.mu.Lock()
	defer m.mu.Unlock()
	var totalN uint64
	var totalSum float64
	for _, c := range Classes() {
		st := &m.classes[c]
		if st.count == 0 {
			continue
		}
		totalN += st.count
		totalSum += st.sum
		recent, baseline, ratio, _ := m.driftLocked(st)
		rep.Classes = append(rep.Classes, ClassReport{
			Class:         c.String(),
			Samples:       st.count,
			AvgRelError:   st.sum / float64(st.count),
			RecentAvg:     recent,
			RecentSamples: st.filled,
			Baseline:      baseline,
			DriftRatio:    ratio,
			Drifted:       st.drifted,
		})
	}
	rep.Samples = totalN
	if totalN > 0 {
		rep.AvgRelError = totalSum / float64(totalN)
	}
	return rep
}

// Drifted returns the classes currently flagged as drifted.
func (m *Monitor) Drifted() []Class {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Class
	for _, c := range Classes() {
		if m.classes[c].drifted {
			out = append(out, c)
		}
	}
	return out
}
