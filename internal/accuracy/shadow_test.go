package accuracy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"xcluster/internal/query"
)

// instantTruth answers every query with a fixed exact count.
func instantTruth(v float64) TruthFunc {
	return func(ctx context.Context, q *query.Query) (float64, error) { return v, nil }
}

func TestShadowRateOneObservesAll(t *testing.T) {
	mon := NewMonitor()
	sh := NewShadow(mon, instantTruth(100), 1, 2, time.Second, 0)
	q := query.MustParse("//book/title")
	const n = 200
	for i := 0; i < n; i++ {
		if !sh.Offer(q, 90) {
			t.Fatalf("offer %d not sampled at rate 1", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sh.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := sh.Stats()
	if st.Offered != n || st.Sampled != n || st.Observed != n {
		t.Fatalf("stats = %+v, want everything sampled and observed", st)
	}
	if st.QueueDrops+st.DeadlineDrops+st.ErrorDrops != 0 {
		t.Fatalf("drops on an instant evaluator: %+v", st)
	}
	rep := mon.Report()
	if rep.Samples != n {
		t.Fatalf("monitor samples = %d, want %d", rep.Samples, n)
	}
	// est 90 vs truth 100 is 0.1 relative error (up to summation
	// rounding across n samples).
	if math.Abs(rep.AvgRelError-0.1) > 1e-12 {
		t.Fatalf("avg = %g, want 0.1", rep.AvgRelError)
	}
	sh.Close()
}

// TestShadowSamplingRateDeterministic: the fixed-point accumulator
// samples exactly rate*n of n offers (no randomness).
func TestShadowSamplingRateDeterministic(t *testing.T) {
	sh := NewShadow(NewMonitor(), instantTruth(1), 0.25, 1, time.Second, 0)
	defer sh.Close()
	q := query.MustParse("//book")
	for i := 0; i < 1000; i++ {
		sh.Offer(q, 1)
	}
	if st := sh.Stats(); st.Sampled != 250 {
		t.Fatalf("sampled = %d of 1000 at rate 0.25, want exactly 250", st.Sampled)
	}

	// Rate 0 samples nothing.
	off := NewShadow(NewMonitor(), instantTruth(1), 0, 1, time.Second, 0)
	defer off.Close()
	for i := 0; i < 100; i++ {
		if off.Offer(q, 1) {
			t.Fatal("rate 0 sampled an offer")
		}
	}
	if st := off.Stats(); st.Sampled != 0 || st.Offered != 100 {
		t.Fatalf("rate-0 stats = %+v", st)
	}
}

// TestShadowConcurrentOffers hammers one sampler from 32 goroutines.
// Run under -race this is the sampler's thread-safety proof; the
// deterministic accumulator still samples every offer at rate 1.
func TestShadowConcurrentOffers(t *testing.T) {
	mon := NewMonitor()
	sh := NewShadow(mon, instantTruth(100), 1, 4, 5*time.Second, 0)
	const goroutines = 32
	const perG = 100
	qs := make([]*query.Query, goroutines)
	for g := range qs {
		qs[g] = query.MustParse(fmt.Sprintf("//book[year>%d]", 1900+g))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sh.Offer(qs[g], 50)
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sh.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	sh.Close()

	st := sh.Stats()
	const total = goroutines * perG
	if st.Offered != total || st.Sampled != total {
		t.Fatalf("stats = %+v, want %d offered and sampled", st, total)
	}
	// Every sample is accounted for: observed or counted as a drop.
	if st.Observed+st.QueueDrops+st.DeadlineDrops+st.ErrorDrops != total {
		t.Fatalf("samples leak: %+v does not sum to %d", st, total)
	}
	if rep := mon.Report(); rep.Samples != st.Observed {
		t.Fatalf("monitor samples = %d, sampler observed %d", rep.Samples, st.Observed)
	}
}

// TestShadowDeadlineDrop: a ground-truth evaluation that outlives the
// deadline increments the drop counter and never reaches the monitor —
// and the Offer that enqueued it succeeded immediately, so the serving
// path never noticed.
func TestShadowDeadlineDrop(t *testing.T) {
	mon := NewMonitor()
	blocking := func(ctx context.Context, q *query.Query) (float64, error) {
		<-ctx.Done() // honor the deadline the way the exact evaluator does
		return 0, ctx.Err()
	}
	sh := NewShadow(mon, blocking, 1, 1, 10*time.Millisecond, 0)
	q := query.MustParse("//book")
	if !sh.Offer(q, 7) {
		t.Fatal("offer not sampled")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sh.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	sh.Close()
	st := sh.Stats()
	if st.DeadlineDrops != 1 || st.Observed != 0 {
		t.Fatalf("stats = %+v, want 1 deadline drop and 0 observed", st)
	}
	if rep := mon.Report(); rep.Samples != 0 {
		t.Fatalf("dropped sample reached the monitor: %+v", rep)
	}
}

// TestShadowErrorDrop: evaluator failures are error drops, not deadline
// drops.
func TestShadowErrorDrop(t *testing.T) {
	failing := func(ctx context.Context, q *query.Query) (float64, error) {
		return 0, errors.New("no such label")
	}
	sh := NewShadow(NewMonitor(), failing, 1, 1, time.Second, 0)
	sh.Offer(query.MustParse("//book"), 7)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sh.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	sh.Close()
	if st := sh.Stats(); st.ErrorDrops != 1 || st.DeadlineDrops != 0 {
		t.Fatalf("stats = %+v, want 1 error drop", st)
	}
}

func TestShadowOfferAfterClose(t *testing.T) {
	sh := NewShadow(NewMonitor(), instantTruth(1), 1, 1, time.Second, 0)
	sh.Close()
	sh.Close() // idempotent
	if sh.Offer(query.MustParse("//book"), 1) {
		t.Fatal("Offer succeeded after Close")
	}
	if st := sh.Stats(); st.QueueDrops != 1 {
		t.Fatalf("stats = %+v, want the post-close offer counted as a queue drop", st)
	}
}
