// Package accuracy is the estimation-quality feedback loop of the
// serving stack: the paper's error metric (average absolute relative
// error with a sanity bound, Section 6) as one shared implementation,
// a per-predicate-class classification of twig queries, an online
// Monitor that aggregates estimate/ground-truth pairs into registry
// histograms and rolling-window drift gauges, and a Shadow sampler
// that re-runs a fraction of live estimates through an exact evaluator
// on a bounded worker pool so shadow work can never affect serving
// latency.
//
// The metric functions here are the single source of truth for every
// error number the repository reports: internal/workload delegates its
// RelError/AvgRelError to them, and the harness ablations score their
// probe sets through Avg.
package accuracy

import "math"

// DefaultSanityBound is the paper's sanity bound s = 10 (Section 6):
// relative errors are measured against max(true, s) so that queries
// with tiny true counts cannot inflate the average without bound.
const DefaultSanityBound = 10

// RelError returns the absolute relative error |truth − est| /
// max(truth, sanity) of one estimate — the paper's per-query accuracy
// metric (EXPERIMENTS.md scores every figure with it). A zero
// denominator (truth and sanity both zero) yields 0.
func RelError(truth, est, sanity float64) float64 {
	denom := math.Max(truth, sanity)
	if denom == 0 {
		return 0
	}
	return math.Abs(truth-est) / denom
}

// Avg returns the average of RelError over positionally paired truths
// and estimates (0 when empty). The slices must have equal length.
func Avg(truths, ests []float64, sanity float64) float64 {
	if len(truths) == 0 {
		return 0
	}
	total := 0.0
	for i, truth := range truths {
		total += RelError(truth, ests[i], sanity)
	}
	return total / float64(len(truths))
}
