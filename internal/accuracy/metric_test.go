package accuracy

import (
	"math"
	"testing"
)

// TestRelErrorDefinition pins RelError to the definition every
// EXPERIMENTS.md number is scored with: the absolute relative error
// |true − est| / max(true, s) with the paper's sanity bound s = 10
// (Section 6 of the paper).
func TestRelErrorDefinition(t *testing.T) {
	cases := []struct {
		truth, est, sanity, want float64
	}{
		{100, 50, 10, 0.5},  // truth dominates the denominator
		{100, 150, 10, 0.5}, // symmetric in over/under-estimation
		{100, 100, 10, 0},   // exact
		{2, 4, 10, 0.2},     // sanity bound caps tiny-truth inflation
		{0, 5, 10, 0.5},     // empty result, bounded by s
		{0, 0, 10, 0},       // empty result, exact
		{0, 5, 0, 0},        // degenerate: no denominator at all
		{10, 0, 10, 1},      // truth == sanity
		{1e6, 999900, 10, 1e-4},
	}
	for _, c := range cases {
		if got := RelError(c.truth, c.est, c.sanity); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelError(%g, %g, %g) = %g, want %g", c.truth, c.est, c.sanity, got, c.want)
		}
	}
	// The sanity bound is the paper's s = 10.
	if DefaultSanityBound != 10 {
		t.Errorf("DefaultSanityBound = %v, want the paper's 10", DefaultSanityBound)
	}
}

func TestAvg(t *testing.T) {
	truths := []float64{100, 2, 0, 50}
	ests := []float64{50, 4, 5, 50}
	// Per-pair errors with s = 10: 0.5, 0.2, 0.5, 0.
	want := (0.5 + 0.2 + 0.5 + 0) / 4
	if got := Avg(truths, ests, 10); math.Abs(got-want) > 1e-12 {
		t.Errorf("Avg = %g, want %g", got, want)
	}
	if got := Avg(nil, nil, 10); got != 0 {
		t.Errorf("Avg(empty) = %g, want 0", got)
	}
	// Avg must equal the mean of RelError over the pairs, whatever the
	// sanity bound.
	for _, s := range []float64{1, 10, 100} {
		sum := 0.0
		for i := range truths {
			sum += RelError(truths[i], ests[i], s)
		}
		if got, want := Avg(truths, ests, s), sum/float64(len(truths)); math.Abs(got-want) > 1e-12 {
			t.Errorf("Avg(s=%g) = %g, want mean of RelError %g", s, got, want)
		}
	}
}
