package accuracy

import (
	"testing"

	"xcluster/internal/query"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		q    string
		want Class
	}{
		{"//book", Struct},
		{"//book/title", Struct},
		{"/library//book[year]/title", Struct}, // existence predicate is structural
		{"//book[year>1990]", Range},
		{"//book[year range(1960,1975)]", Range},
		{"//book[pages<=250]/title", Range},
		{"//book[title contains(Tree)]", Substring},
		{"//book[summary ftcontains(xml,synopsis)]", FTContains},
		{"//book[summary ftsim(2,xml,synopsis)]", FTSim},
		// The first predicate in preorder decides, however deep it sits.
		{"//library/book/title[contains(Tree)]", Substring},
		{"//book[year>1990][summary ftcontains(xml)]", Range},
	}
	for _, c := range cases {
		q, err := query.Parse(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if got := Classify(q); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	want := []string{"struct", "range", "substring", "ftcontains", "ftsim"}
	cs := Classes()
	if len(cs) != int(NumClasses) || len(cs) != len(want) {
		t.Fatalf("Classes() = %v, want %d classes", cs, NumClasses)
	}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Errorf("class %d = %q, want %q", i, c.String(), want[i])
		}
	}
}
