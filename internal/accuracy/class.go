package accuracy

import (
	"fmt"

	"xcluster/internal/query"
)

// Class partitions queries by the value-predicate kind that drives
// their estimation error: structure-only twigs, numeric ranges,
// substring predicates, and the two full-text predicate forms. It is
// finer than workload.Class (which folds ftcontains and ftsim into one
// Text class) because the two full-text estimators share a term
// histogram but combine it differently, and their errors drift
// independently.
type Class uint8

const (
	// Struct marks twigs without value predicates.
	Struct Class = iota
	// Range marks twigs whose first predicate is a numeric range.
	Range
	// Substring marks twigs whose first predicate is contains().
	Substring
	// FTContains marks twigs whose first predicate is ftcontains().
	FTContains
	// FTSim marks twigs whose first predicate is ftsim().
	FTSim

	// NumClasses is the sentinel one past the last class.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Struct:
		return "struct"
	case Range:
		return "range"
	case Substring:
		return "substring"
	case FTContains:
		return "ftcontains"
	case FTSim:
		return "ftsim"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Classes lists all classes in report order.
func Classes() []Class {
	return []Class{Struct, Range, Substring, FTContains, FTSim}
}

// Classify returns the class of a query: the kind of the first value
// predicate in preorder over the query tree, or Struct when the twig
// carries no predicate. Mixed-predicate twigs are rare in generated
// workloads and deterministic classification by the first predicate
// keeps online and offline aggregation in agreement.
func Classify(q *query.Query) Class {
	var first func(v *query.Node) (Class, bool)
	first = func(v *query.Node) (Class, bool) {
		if v.Pred != nil {
			switch v.Pred.Kind() {
			case query.KindRange:
				return Range, true
			case query.KindContains:
				return Substring, true
			case query.KindFTContains:
				return FTContains, true
			case query.KindFTSim:
				return FTSim, true
			}
		}
		for _, c := range v.Children {
			if cl, ok := first(c); ok {
				return cl, true
			}
		}
		return Struct, false
	}
	for _, r := range q.Roots {
		if cl, ok := first(r); ok {
			return cl
		}
	}
	return Struct
}
