package accuracy

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"xcluster/internal/query"
)

// TruthFunc computes the exact selectivity of a query (typically
// query.Evaluator.Selectivity over a resident document). It must honor
// ctx: a deadline or cancellation error is reported as a dropped
// shadow sample, never as a serving failure.
type TruthFunc func(ctx context.Context, q *query.Query) (float64, error)

// Shadow defaults.
const (
	// DefaultShadowWorkers is the worker-pool size when none is given.
	DefaultShadowWorkers = 1
	// DefaultShadowDeadline bounds one exact evaluation, measured from
	// enqueue (queue wait counts against it).
	DefaultShadowDeadline = 2 * time.Second
	// DefaultShadowQueue is the pending-job buffer; offers beyond it
	// are dropped, never blocked on.
	DefaultShadowQueue = 256
)

// shadowUnit is the fixed-point denominator of the sampling
// accumulator: one sample fires per unit crossed.
const shadowUnit = 1 << 20

// ShadowStats is a point-in-time readout of the sampler.
type ShadowStats struct {
	// Rate is the configured sampling fraction; Workers the pool size;
	// DeadlineNanos the per-evaluation deadline.
	Rate          float64 `json:"rate"`
	Workers       int     `json:"workers"`
	DeadlineNanos int64   `json:"deadline_nanos"`
	// Offered counts estimates presented to the sampler; Sampled the
	// ones selected for shadow evaluation.
	Offered uint64 `json:"offered"`
	Sampled uint64 `json:"sampled"`
	// Observed counts evaluations that completed and reached the
	// monitor.
	Observed uint64 `json:"observed"`
	// QueueDrops, DeadlineDrops and ErrorDrops count sampled estimates
	// lost to a full queue, an expired deadline, and evaluator errors.
	QueueDrops    uint64 `json:"queue_drops"`
	DeadlineDrops uint64 `json:"deadline_drops"`
	ErrorDrops    uint64 `json:"error_drops"`
}

// shadowJob pairs one served estimate with its query for exact
// re-evaluation.
type shadowJob struct {
	q   *query.Query
	est float64
	enq time.Time
}

// Shadow re-runs a sampled fraction of served estimates through an
// exact evaluator on a fixed worker pool and feeds the estimate/truth
// pairs into a Monitor. Offer never blocks and never fails the caller:
// overload and deadline expiry surface only as drop counters.
type Shadow struct {
	mon      *Monitor
	truth    TruthFunc
	rate     float64
	stride   uint64
	deadline time.Duration
	workers  int

	acc      atomic.Uint64 // fixed-point sampling accumulator
	offered  atomic.Uint64
	sampled  atomic.Uint64
	observed atomic.Uint64
	queueD   atomic.Uint64
	deadD    atomic.Uint64
	errD     atomic.Uint64

	mu     sync.RWMutex // guards closed vs. queue close
	closed bool
	queue  chan shadowJob
	jobs   sync.WaitGroup // in-flight sampled jobs, for Drain
	wg     sync.WaitGroup // worker goroutines
}

// NewShadow starts a sampler feeding mon through truth. rate is
// clamped to [0, 1]; workers, deadline, and queueCap fall back to the
// defaults when non-positive. The workers run until Close.
func NewShadow(mon *Monitor, truth TruthFunc, rate float64, workers int, deadline time.Duration, queueCap int) *Shadow {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if workers <= 0 {
		workers = DefaultShadowWorkers
	}
	if deadline <= 0 {
		deadline = DefaultShadowDeadline
	}
	if queueCap <= 0 {
		queueCap = DefaultShadowQueue
	}
	s := &Shadow{
		mon:      mon,
		truth:    truth,
		rate:     rate,
		stride:   uint64(rate * shadowUnit),
		deadline: deadline,
		workers:  workers,
		queue:    make(chan shadowJob, queueCap),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Monitor returns the monitor the sampler feeds.
func (s *Shadow) Monitor() *Monitor { return s.mon }

// Offer presents one served estimate for shadow evaluation and reports
// whether it was sampled and enqueued. It never blocks: unsampled
// estimates, a full queue, and a closed sampler all return false
// immediately.
func (s *Shadow) Offer(q *query.Query, est float64) bool {
	s.offered.Add(1)
	if s.stride == 0 {
		return false
	}
	// Deterministic fixed-point sampling: each Offer advances the
	// accumulator by rate; crossing a unit boundary selects the sample.
	// Lock-free and exact in aggregate (n offers yield ~n*rate samples;
	// every offer at rate 1).
	after := s.acc.Add(s.stride)
	if after/shadowUnit == (after-s.stride)/shadowUnit {
		return false
	}
	s.sampled.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.queueD.Add(1)
		return false
	}
	s.jobs.Add(1)
	select {
	case s.queue <- shadowJob{q: q, est: est, enq: time.Now()}:
		return true
	default:
		s.jobs.Done()
		s.queueD.Add(1)
		return false
	}
}

// worker drains the queue, evaluating each job under the deadline
// (measured from enqueue, so queue wait counts) and feeding completed
// pairs into the monitor.
func (s *Shadow) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		ctx, cancel := context.WithDeadline(context.Background(), job.enq.Add(s.deadline))
		truth, err := s.truth(ctx, job.q)
		expired := ctx.Err() != nil // read before cancel poisons it
		cancel()
		switch {
		case err == nil:
			s.mon.Observe(job.q, job.est, truth)
			s.observed.Add(1)
		case expired || errors.Is(err, context.DeadlineExceeded):
			s.deadD.Add(1)
		default:
			s.errD.Add(1)
		}
		s.jobs.Done()
	}
}

// Drain blocks until every sampled job enqueued before the call has
// been evaluated or dropped, or until ctx ends (returning its error).
func (s *Shadow) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting new samples, processes the queued ones, and
// waits for the workers to exit. Safe to call once; Offer after Close
// counts a queue drop.
func (s *Shadow) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the sampler's counters.
func (s *Shadow) Stats() ShadowStats {
	return ShadowStats{
		Rate:          s.rate,
		Workers:       s.workers,
		DeadlineNanos: s.deadline.Nanoseconds(),
		Offered:       s.offered.Load(),
		Sampled:       s.sampled.Load(),
		Observed:      s.observed.Load(),
		QueueDrops:    s.queueD.Load(),
		DeadlineDrops: s.deadD.Load(),
		ErrorDrops:    s.errD.Load(),
	}
}
