package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xcluster/internal/core"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// testDoc generates a document with enough tag and value variety that a
// small structural budget forces real cluster merges.
func testDoc() string {
	var b strings.Builder
	b.WriteString("<library>")
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, "<book><title>Title %d</title><year>%d</year><pages>%d</pages>",
			i, 1950+i%60, 100+(7*i)%400)
		if i%3 == 0 {
			fmt.Fprintf(&b, "<summary>systems design analysis volume %d concurrency</summary>", i)
		}
		b.WriteString("</book>")
		if i%4 == 0 {
			fmt.Fprintf(&b, "<journal><title>Journal %d</title><year>%d</year></journal>", i, 1960+i%50)
		}
	}
	b.WriteString("</library>")
	return b.String()
}

var testWorkload = []string{
	"//book",
	"//book/title",
	"//book[year>1990]",
	"//book[year>1990]/title",
	"//book[pages>=300]",
	"//book[year>1980][pages<250]",
	"//book[summary ftcontains(concurrency)]",
	"//book[title contains(Title 1)]",
	"//journal[year<2000]/title",
	"//library/book[year range(1960,1975)]",
}

// newTestSynopsis builds a compressed synopsis of testDoc.
func newTestSynopsis(t *testing.T) *core.Synopsis {
	t.Helper()
	tree, err := xmltree.Parse(strings.NewReader(testDoc()), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.BuildReference(tree, core.ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := core.XClusterBuild(ref, core.BuildOptions{StructBudget: 512, ValueBudget: 512})
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

func parseWorkload(t *testing.T) []*query.Query {
	t.Helper()
	qs := make([]*query.Query, len(testWorkload))
	for i, s := range testWorkload {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		qs[i] = q
	}
	return qs
}

// sequentialAnswers computes the ground truth with a fresh, cache-less
// estimator: the values every concurrent path must reproduce bit-for-bit.
func sequentialAnswers(syn *core.Synopsis, qs []*query.Query) []float64 {
	est := core.NewEstimator(syn)
	est.SetCacheCapacity(0)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = est.Selectivity(q)
	}
	return out
}

func TestEstimateMatchesSequential(t *testing.T) {
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	want := sequentialAnswers(syn, qs)
	svc := New(syn)
	for i, q := range qs {
		got, err := svc.Estimate(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("query %d (%s): service %v != sequential %v", i, testWorkload[i], got, want[i])
		}
	}
	if st := svc.Stats(); st.Served != uint64(len(qs)) {
		t.Fatalf("served = %d, want %d", st.Served, len(qs))
	}
}

func TestEstimateBatchMatchesSequential(t *testing.T) {
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	want := sequentialAnswers(syn, qs)
	// A big batch exercises the worker pool; results must stay positional.
	const rep = 16
	big := make([]*query.Query, 0, rep*len(qs))
	for r := 0; r < rep; r++ {
		big = append(big, qs...)
	}
	svc := New(syn, WithWorkers(8))
	got, err := svc.EstimateBatch(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big) {
		t.Fatalf("len = %d, want %d", len(got), len(big))
	}
	for i, v := range got {
		if v != want[i%len(qs)] {
			t.Fatalf("batch[%d]: %v != sequential %v", i, v, want[i%len(qs)])
		}
	}
	// The empty batch is a no-op, not an error.
	if out, err := svc.EstimateBatch(context.Background(), nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

// TestConcurrentHammer drives one shared Estimator and one Service from
// 32 goroutines with a mixed twig workload and requires every answer to
// match the sequential ground truth bit-for-bit. Run under -race.
func TestConcurrentHammer(t *testing.T) {
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	want := sequentialAnswers(syn, qs)
	svc := New(syn, WithWorkers(4))
	shared := svc.Estimator()

	const goroutines = 32
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the workload in its own rotation
				// so different queries are in flight at the same time.
				i := (g + r) % len(qs)
				if v := shared.Selectivity(qs[i]); v != want[i] {
					errs <- fmt.Errorf("goroutine %d: estimator %s = %v, want %v", g, testWorkload[i], v, want[i])
					return
				}
				v, err := svc.Estimate(context.Background(), qs[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: service: %v", g, err)
					return
				}
				if v != want[i] {
					errs <- fmt.Errorf("goroutine %d: service %s = %v, want %v", g, testWorkload[i], v, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := svc.Stats()
	if st.Served != goroutines*rounds {
		t.Fatalf("served = %d, want %d", st.Served, goroutines*rounds)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hits after %d repeated queries: %+v", goroutines*rounds, st.Cache)
	}
}

func TestTimeoutAndCancellation(t *testing.T) {
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)

	// The cache would short-circuit before the deadline check, so these
	// paths run uncached.
	svc := New(syn, WithCacheCapacity(0), WithTimeout(time.Nanosecond))
	if _, err := svc.Estimate(context.Background(), qs[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout: %v, want DeadlineExceeded", err)
	}
	if _, err := svc.EstimateBatch(context.Background(), qs); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch timeout: %v, want DeadlineExceeded", err)
	}
	if st := svc.Stats(); st.Failed == 0 || st.Served != 0 {
		t.Fatalf("stats after timeouts: %+v", st)
	}

	svc2 := New(syn, WithCacheCapacity(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc2.Estimate(ctx, qs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel: %v, want Canceled", err)
	}
	_, err := svc2.EstimateBatch(ctx, qs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch cancel: %v, want Canceled", err)
	}
	if !strings.Contains(err.Error(), "query") {
		t.Fatalf("batch error %q does not identify the failing query", err)
	}
}

func TestStatsPercentiles(t *testing.T) {
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	svc := New(syn)
	for r := 0; r < 3; r++ {
		if _, err := svc.EstimateBatch(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Served != uint64(3*len(qs)) {
		t.Fatalf("served = %d", st.Served)
	}
	if st.LatencySamples != 3*len(qs) {
		t.Fatalf("latency samples = %d", st.LatencySamples)
	}
	if st.P50 < 0 || st.P99 < st.P50 {
		t.Fatalf("p50 = %v, p99 = %v", st.P50, st.P99)
	}
	// Rounds 2 and 3 repeat round 1's queries, so the cache must hit.
	if st.Cache.Hits < uint64(2*len(qs)) {
		t.Fatalf("cache hits = %d, want >= %d", st.Cache.Hits, 2*len(qs))
	}
	if st.Cache.HitRate() <= 0 || st.Cache.HitRate() > 1 {
		t.Fatalf("hit rate = %v", st.Cache.HitRate())
	}
	if st.Uptime <= 0 {
		t.Fatalf("uptime = %v", st.Uptime)
	}
}

// TestEstimateBatchCompilesOnce pins the batch pipeline's compile-once
// guarantee: a batch full of repeated query shapes compiles each
// distinct shape exactly once, no matter how many workers race over it
// (plan-cache misses count compilations).
func TestEstimateBatchCompilesOnce(t *testing.T) {
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	const rep = 32
	big := make([]*query.Query, 0, rep*len(qs))
	for r := 0; r < rep; r++ {
		// Re-parse so repeated shapes are distinct *query.Query values:
		// dedup must happen on the canonical string, not on pointers.
		for _, s := range testWorkload {
			big = append(big, query.MustParse(s))
		}
	}
	// Result cache off so every execution reaches the plan layer.
	svc := New(syn, WithWorkers(8), WithCacheCapacity(0))
	if _, err := svc.EstimateBatch(context.Background(), big); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats().PlanCache
	if st.Misses != uint64(len(qs)) {
		t.Fatalf("plan-cache misses = %d, want exactly %d (one compile per distinct shape)", st.Misses, len(qs))
	}
	if st.Hits == 0 {
		t.Fatalf("plan cache never hit across %d repeated executions: %+v", rep*len(qs), st)
	}
	// A second identical batch compiles nothing new.
	if _, err := svc.EstimateBatch(context.Background(), big); err != nil {
		t.Fatal(err)
	}
	if after := svc.Stats().PlanCache; after.Misses != st.Misses {
		t.Fatalf("second batch recompiled: misses %d -> %d", st.Misses, after.Misses)
	}

	// With the plan cache disabled the batch still answers correctly.
	want := sequentialAnswers(syn, qs)
	svc2 := New(syn, WithWorkers(8), WithCacheCapacity(0), WithPlanCacheCapacity(0))
	got, err := svc2.EstimateBatch(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != want[i%len(qs)] {
			t.Fatalf("uncached batch[%d]: %v != sequential %v", i, v, want[i%len(qs)])
		}
	}
	if st := svc2.Stats().PlanCache; st != (core.CacheStats{}) {
		t.Fatalf("disabled plan cache reports %+v", st)
	}
}

func TestExplainPlan(t *testing.T) {
	svc := New(newTestSynopsis(t))
	out, err := svc.ExplainPlan(query.MustParse("//book[year>1990]/title"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan //book[", "subproblems", "lowered steps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ExplainPlan output missing %q:\n%s", want, out)
		}
	}
	// A query over labels absent from the synopsis still has a plan (an
	// empty one); only malformed queries error.
	if _, err := svc.ExplainPlan(query.MustParse("//nosuchtag")); err != nil {
		t.Fatalf("ExplainPlan(//nosuchtag): %v", err)
	}
}

func TestExplain(t *testing.T) {
	syn := newTestSynopsis(t)
	svc := New(syn)
	lines := svc.Explain(query.MustParse("//book[year>1990]"), 3)
	if len(lines) == 0 {
		t.Fatal("no embeddings explained")
	}
	for _, l := range lines {
		if !strings.Contains(l, "->") {
			t.Fatalf("embedding %q has no tuple count", l)
		}
	}
}
