package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// testTree parses testDoc into the tree form WithDocument wants.
func testTree(t *testing.T) *xmltree.Tree {
	t.Helper()
	tree, err := xmltree.Parse(strings.NewReader(testDoc()), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// coldAnswers builds a brand-new synopsis from the document with the
// given budgets and answers the workload with a cache-less estimator:
// the bit-for-bit ground truth a post-rebuild service must reproduce.
func coldAnswers(t *testing.T, tree *xmltree.Tree, bstr, bval int, qs []*query.Query) []float64 {
	t.Helper()
	ref, err := core.BuildReference(tree, core.ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := core.XClusterBuild(ref, core.BuildOptions{StructBudget: bstr, ValueBudget: bval})
	if err != nil {
		t.Fatal(err)
	}
	return sequentialAnswers(syn, qs)
}

func TestReloadSwapsGeneration(t *testing.T) {
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	want := sequentialAnswers(syn, qs)

	var loads, swapsA, swapsB atomic.Int64
	svc := New(syn,
		WithSynopsisSource(func(ctx context.Context) (*core.Synopsis, error) {
			loads.Add(1)
			return newTestSynopsis(t), nil
		}),
		// Repeated WithOnSwap options chain.
		WithOnSwap(func(ev SwapEvent) { swapsA.Add(1) }),
		WithOnSwap(func(ev SwapEvent) { swapsB.Add(1) }),
	)
	if g := svc.Generation(); g != 0 {
		t.Fatalf("initial generation = %d, want 0", g)
	}
	ev, err := svc.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.OldGeneration != 0 || ev.NewGeneration != 1 || ev.Reason != "reload" {
		t.Fatalf("swap event %+v", ev)
	}
	if loads.Load() != 1 || swapsA.Load() != 1 || swapsB.Load() != 1 {
		t.Fatalf("loads=%d swapsA=%d swapsB=%d, want 1/1/1", loads.Load(), swapsA.Load(), swapsB.Load())
	}
	if g := svc.Generation(); g != 1 {
		t.Fatalf("generation after reload = %d, want 1", g)
	}
	// The reloaded synopsis came from the same document and budgets, so
	// estimates stay bit-for-bit identical across the swap.
	for i, q := range qs {
		got, err := svc.Estimate(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("post-reload %s = %v, want %v", testWorkload[i], got, want[i])
		}
	}
	if st := svc.Stats(); st.Generation != 1 || st.Swaps != 1 {
		t.Fatalf("stats generation=%d swaps=%d, want 1/1", st.Generation, st.Swaps)
	}

	// Without a source, Reload fails typed.
	if _, err := New(newTestSynopsis(t)).Reload(context.Background()); !errors.Is(err, ErrNoSource) {
		t.Fatalf("no-source reload: %v, want ErrNoSource", err)
	}
}

func TestRebuildBitForBit(t *testing.T) {
	tree := testTree(t)
	qs := parseWorkload(t)
	svc := New(newTestSynopsis(t), WithDocument(tree))

	ev, err := svc.Rebuild(context.Background(), RebuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.NewGeneration != 1 || ev.Reason != "rebuild" {
		t.Fatalf("swap event %+v", ev)
	}
	st := svc.RebuildStatus()
	if st.Running || st.Phase != PhaseIdle || st.LastOutcome != "ok" || st.LastGeneration != 1 {
		t.Fatalf("rebuild status %+v", st)
	}
	// The request carried no budgets, so the rebuild inherited the
	// current fingerprint's (512/512 from newTestSynopsis). Post-swap
	// estimates must be bit-for-bit what a cold estimator over the same
	// document and budgets produces.
	want := coldAnswers(t, tree, 512, 512, qs)
	for i, q := range qs {
		got, err := svc.Estimate(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("post-rebuild %s = %v, want cold %v", testWorkload[i], got, want[i])
		}
	}
	fp := svc.Synopsis().Fingerprint()
	if fp.StructBudget != 512 || fp.ValueBudget != 512 {
		t.Fatalf("rebuilt budgets %d/%d, want 512/512", fp.StructBudget, fp.ValueBudget)
	}
	if fp.DocHash == 0 || fp.BuiltAtUnix == 0 {
		t.Fatalf("rebuilt fingerprint not stamped: %+v", fp)
	}

	// Explicit budgets win over the inherited ones.
	ev, err = svc.Rebuild(context.Background(), RebuildOptions{StructBudget: 2048, ValueBudget: 2048, Reason: "resize"})
	if err != nil {
		t.Fatal(err)
	}
	if ev.NewGeneration != 2 || ev.Reason != "resize" {
		t.Fatalf("resize swap event %+v", ev)
	}
	if fp := svc.Synopsis().Fingerprint(); fp.StructBudget != 2048 || fp.ValueBudget != 2048 {
		t.Fatalf("resized budgets %d/%d, want 2048/2048", fp.StructBudget, fp.ValueBudget)
	}
	want = coldAnswers(t, tree, 2048, 2048, qs)
	for i, q := range qs {
		if got, _ := svc.Estimate(context.Background(), q); got != want[i] {
			t.Fatalf("post-resize %s = %v, want cold %v", testWorkload[i], got, want[i])
		}
	}
}

func TestRebuildErrors(t *testing.T) {
	// No resident document: typed failure, nothing swapped.
	svc := New(newTestSynopsis(t))
	if _, err := svc.Rebuild(context.Background(), RebuildOptions{}); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("no-document rebuild: %v, want ErrNoDocument", err)
	}
	if g := svc.Generation(); g != 0 {
		t.Fatalf("generation moved to %d on failed rebuild", g)
	}

	// A cancelled context aborts the rebuild; the old generation keeps
	// serving and the failure lands in RebuildStatus.
	svc2 := New(newTestSynopsis(t), WithDocument(testTree(t)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc2.Rebuild(ctx, RebuildOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rebuild: %v, want context.Canceled", err)
	}
	st := svc2.RebuildStatus()
	if st.LastOutcome != "error" || st.LastError == "" {
		t.Fatalf("status after cancelled rebuild %+v", st)
	}
	if g := svc2.Generation(); g != 0 {
		t.Fatalf("generation moved to %d on cancelled rebuild", g)
	}
	// The service still answers.
	if _, err := svc2.Estimate(context.Background(), query.MustParse("//book")); err != nil {
		t.Fatal(err)
	}
}

// TestSwapInvalidatesCachesAndPlans proves the swap drops both the
// result and the plan cache, and that traced estimates never mix plans
// across generations: every trace's PlanGeneration equals its
// Generation, before and after the swap.
func TestSwapInvalidatesCachesAndPlans(t *testing.T) {
	tree := testTree(t)
	qs := parseWorkload(t)
	svc := New(newTestSynopsis(t), WithDocument(tree))

	// Populate both caches on the old generation and hold its estimator
	// the way a pinned in-flight request would.
	oldEst := svc.Estimator()
	for _, q := range qs {
		if _, tr, err := svc.EstimateTraced(context.Background(), q); err != nil {
			t.Fatal(err)
		} else if tr.Generation != 0 || tr.PlanGeneration != 0 {
			t.Fatalf("pre-swap trace generations %d/%d, want 0/0", tr.Generation, tr.PlanGeneration)
		}
	}
	if oldEst.CacheStats().Len == 0 || oldEst.PlanCacheStats().Len == 0 {
		t.Fatalf("caches not populated: %+v %+v", oldEst.CacheStats(), oldEst.PlanCacheStats())
	}

	if _, err := svc.Rebuild(context.Background(), RebuildOptions{}); err != nil {
		t.Fatal(err)
	}

	// The outgoing estimator's caches were invalidated by the swap, so a
	// straggler holding it cannot be served anything computed against
	// the retired generation.
	if n := oldEst.CacheStats().Len; n != 0 {
		t.Fatalf("old result cache still holds %d entries after swap", n)
	}
	if n := oldEst.PlanCacheStats().Len; n != 0 {
		t.Fatalf("old plan cache still holds %d entries after swap", n)
	}

	// Post-swap traces run entirely inside generation 1: fresh compiles,
	// never a generation-0 plan.
	newEst := svc.Estimator()
	if newEst == oldEst {
		t.Fatal("swap did not replace the estimator")
	}
	for i, q := range qs {
		_, tr, err := svc.EstimateTraced(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Generation != 1 {
			t.Fatalf("%s: post-swap trace generation %d, want 1", testWorkload[i], tr.Generation)
		}
		if tr.PlanGeneration != tr.Generation {
			t.Fatalf("%s: plan generation %d crossed into estimate generation %d",
				testWorkload[i], tr.PlanGeneration, tr.Generation)
		}
		if tr.ResultCacheHit || tr.PlanCacheHit {
			t.Fatalf("%s: first post-swap run hit a cache (result=%v plan=%v)",
				testWorkload[i], tr.ResultCacheHit, tr.PlanCacheHit)
		}
	}
}

// TestRebuildSingleFlight: concurrent rebuilds collapse to one winner;
// the rest fail fast with ErrRebuildInProgress and nothing stacks.
func TestRebuildSingleFlight(t *testing.T) {
	svc := New(newTestSynopsis(t), WithDocument(testTree(t)))
	const callers = 8
	var ok, busy atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := svc.Rebuild(context.Background(), RebuildOptions{})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrRebuildInProgress):
				busy.Add(1)
			default:
				t.Errorf("rebuild: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load() < 1 {
		t.Fatalf("no rebuild succeeded (ok=%d busy=%d)", ok.Load(), busy.Load())
	}
	if ok.Load()+busy.Load() != callers {
		t.Fatalf("ok=%d busy=%d, want %d total", ok.Load(), busy.Load(), callers)
	}
	if g := svc.Generation(); g != uint64(ok.Load()) {
		t.Fatalf("generation %d after %d successful rebuilds", g, ok.Load())
	}
}

// TestHammerWhileSwapping drives 32 goroutines of estimates while the
// synopsis is rebuilt and hot swapped underneath them. Run under -race.
// Every request must succeed, every answer must be bit-for-bit the
// sequential ground truth (the rebuilds use the same document and
// budgets, so old and new generations agree), and no trace may pair an
// estimate with a plan from another generation.
func TestHammerWhileSwapping(t *testing.T) {
	tree := testTree(t)
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	want := sequentialAnswers(syn, qs)
	svc := New(syn, WithDocument(tree), WithWorkers(4))

	const goroutines = 32
	const rounds = 30
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(qs)
				v, tr, err := svc.EstimateTraced(context.Background(), qs[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if v != want[i] {
					errs <- fmt.Errorf("goroutine %d: %s = %v, want %v", g, testWorkload[i], v, want[i])
					return
				}
				if tr.PlanGeneration != tr.Generation {
					errs <- fmt.Errorf("goroutine %d: plan generation %d vs estimate generation %d",
						g, tr.PlanGeneration, tr.Generation)
					return
				}
				// Batches pin one slot: a swap mid-batch must not split
				// the batch across generations.
				if r%7 == 0 {
					batch := qs[:3]
					vs, trs, err := svc.EstimateBatchTraced(context.Background(), batch)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: batch: %v", g, err)
						return
					}
					for j, bv := range vs {
						if bv != want[j] {
							errs <- fmt.Errorf("goroutine %d: batch[%d] = %v, want %v", g, j, bv, want[j])
							return
						}
					}
					gen := trs[0].Generation
					for j, btr := range trs {
						if btr.Generation != gen || btr.PlanGeneration != gen {
							errs <- fmt.Errorf("goroutine %d: batch[%d] generations %d/%d split from batch generation %d",
								g, j, btr.Generation, btr.PlanGeneration, gen)
							return
						}
					}
				}
			}
		}(g)
	}

	close(start)
	// Swap repeatedly while the hammer runs.
	const swaps = 4
	for i := 0; i < swaps; i++ {
		if _, err := svc.Rebuild(context.Background(), RebuildOptions{}); err != nil {
			t.Fatalf("rebuild %d: %v", i, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := svc.Stats()
	if st.Failed != 0 {
		t.Fatalf("%d failed requests under swap load", st.Failed)
	}
	if st.Generation != swaps || st.Swaps != swaps {
		t.Fatalf("generation=%d swaps=%d, want %d/%d", st.Generation, st.Swaps, swaps, swaps)
	}
}

// TestAdminRebuildHTTP is the acceptance path over the wire: POST
// /admin/rebuild lands while 32 goroutines hammer POST /estimate, with
// zero failed requests; /debug/synopsis reports the new generation and
// the rebuild outcome; post-swap estimates are bit-for-bit a cold
// build's answers; the lifecycle metrics are exported.
func TestAdminRebuildHTTP(t *testing.T) {
	tree := testTree(t)
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	want := sequentialAnswers(syn, qs)
	svc := New(syn, WithDocument(tree), WithWorkers(4))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	estBody, _ := json.Marshal(EstimateRequest{Queries: testWorkload})
	checkEstimate := func(code int, body []byte) error {
		if code != http.StatusOK {
			return fmt.Errorf("POST /estimate: %d: %s", code, body)
		}
		var er EstimateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			return fmt.Errorf("POST /estimate: %v", err)
		}
		if len(er.Results) != len(testWorkload) {
			return fmt.Errorf("POST /estimate: %d results", len(er.Results))
		}
		for i, res := range er.Results {
			if res.Error != "" || res.Selectivity == nil {
				return fmt.Errorf("query %q failed: %q", res.Query, res.Error)
			}
			if *res.Selectivity != want[i] {
				return fmt.Errorf("query %q = %v, want %v", res.Query, *res.Selectivity, want[i])
			}
		}
		return nil
	}

	const goroutines = 32
	const rounds = 10
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				if err := checkEstimate(post("/estimate", string(estBody))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	close(start)

	// The rebuild lands mid-hammer.
	code, body := post("/admin/rebuild", `{"reason":"acceptance"}`)
	if code != http.StatusOK {
		t.Fatalf("POST /admin/rebuild: %d: %s", code, body)
	}
	var ev SwapEvent
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.NewGeneration != 1 || ev.Reason != "acceptance" {
		t.Fatalf("rebuild swap event %+v", ev)
	}
	// A rebuild against a service without a second document is busy at
	// most transiently; an immediate duplicate while idle succeeds, so
	// exercise the 409 path with a concurrent pair instead: one sync
	// call is already done, so just verify the endpoint rejects garbage.
	if code, _ := post("/admin/rebuild", `{"struct_budget":"nope"}`); code != http.StatusBadRequest {
		t.Fatalf("malformed rebuild body: %d, want 400", code)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := svc.Stats(); st.Failed != 0 {
		t.Fatalf("%d failed requests during rebuild", st.Failed)
	}

	// /debug/synopsis reports the new generation and the outcome.
	resp, err := http.Get(srv.URL + "/debug/synopsis")
	if err != nil {
		t.Fatal(err)
	}
	var dbg SynopsisDebugResponse
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dbg.Version.Generation != 1 {
		t.Fatalf("/debug/synopsis generation %d, want 1", dbg.Version.Generation)
	}
	if dbg.Version.DocHash == "" || dbg.Version.StructBudget != 512 || dbg.Version.ValueBudget != 512 {
		t.Fatalf("/debug/synopsis version %+v", dbg.Version)
	}
	if dbg.Rebuild.LastOutcome != "ok" || dbg.Rebuild.LastGeneration != 1 {
		t.Fatalf("/debug/synopsis rebuild %+v", dbg.Rebuild)
	}

	// Post-swap estimates are bit-for-bit a cold build's answers.
	cold := coldAnswers(t, tree, 512, 512, qs)
	for i, q := range qs {
		got, err := svc.Estimate(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != cold[i] {
			t.Fatalf("post-swap %s = %v, want cold %v", testWorkload[i], got, cold[i])
		}
	}

	// Async mode: 202 now, generation bump eventually.
	code, body = post("/admin/rebuild", `{"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("async rebuild: %d: %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Generation() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("async rebuild never landed; status %+v", svc.RebuildStatus())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The lifecycle metrics are exported.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"xcluster_synopsis_generation 2",
		`xcluster_rebuilds_total{outcome="ok"} 2`,
		"xcluster_rebuild_seconds_count 2",
		"xcluster_synopsis_swaps_total 2",
	} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Fatalf("/metrics missing %q:\n%s", series, metrics)
		}
	}

	// /admin/reload without a configured source: 412, still serving.
	if code, _ := post("/admin/reload", ""); code != http.StatusPreconditionFailed {
		t.Fatalf("reload without source: %d, want 412", code)
	}
}

// TestRebuildOnDrift: a drift-flag transition triggers a background
// rebuild when WithRebuildOnDrift is set.
func TestRebuildOnDrift(t *testing.T) {
	tree := testTree(t)
	var drifts atomic.Int64
	svc := New(newTestSynopsis(t),
		WithDocument(tree),
		WithRebuildOnDrift(),
		WithAccuracy(
			accuracy.WithWindow(4),
			accuracy.WithDriftFactor(2),
			accuracy.WithMinDelta(0.01),
			accuracy.WithOnDrift(func(ev accuracy.DriftEvent) { drifts.Add(1) }),
		),
	)
	q := query.MustParse("//book[year>1990]")
	// Establish an accurate baseline, then let the window fill with
	// large errors: the false→true transition fires the rebuild.
	for i := 0; i < 8; i++ {
		svc.Monitor().Observe(q, 100, 100)
	}
	for i := 0; i < 4; i++ {
		svc.Monitor().Observe(q, 100, 1000)
	}
	if drifts.Load() == 0 {
		t.Fatal("drift callback never fired")
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Generation() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drift-triggered rebuild never landed; status %+v", svc.RebuildStatus())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := svc.RebuildStatus(); st.LastOutcome != "ok" {
		t.Fatalf("drift rebuild status %+v", st)
	}
}

// TestHammerWhileParallelBuilding re-runs the swap hammer with the
// rebuild's merge engine fanned out over 4 evaluation workers
// (WithBuildWorkers). Run under -race: the build workers share the
// builder's memo/caches while 32 goroutines estimate against the
// serving slot. Worker count must never leak into results — answers
// stay bit-for-bit the sequential ground truth across every swap — and
// each rebuild's swap event must carry its construction stats.
func TestHammerWhileParallelBuilding(t *testing.T) {
	tree := testTree(t)
	syn := newTestSynopsis(t)
	qs := parseWorkload(t)
	want := sequentialAnswers(syn, qs)

	var events []SwapEvent
	var evMu sync.Mutex
	svc := New(syn,
		WithDocument(tree),
		WithWorkers(4),
		WithBuildWorkers(4),
		WithOnSwap(func(ev SwapEvent) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		}),
	)

	const goroutines = 32
	const rounds = 20
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(qs)
				v, err := svc.Estimate(context.Background(), qs[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if v != want[i] {
					errs <- fmt.Errorf("goroutine %d: %s = %v, want %v", g, testWorkload[i], v, want[i])
					return
				}
			}
		}(g)
	}

	close(start)
	const swaps = 3
	for i := 0; i < swaps; i++ {
		ev, err := svc.Rebuild(context.Background(), RebuildOptions{})
		if err != nil {
			t.Fatalf("rebuild %d: %v", i, err)
		}
		if ev.Build == nil {
			t.Fatalf("rebuild %d: swap event carries no build stats", i)
		}
		if ev.Build.Workers != 4 {
			t.Fatalf("rebuild %d: build ran with %d workers, want 4", i, ev.Build.Workers)
		}
		// The test document fits its budget with few or no merges, so
		// only the phase timings are guaranteed to be non-trivial.
		if ev.Build.ValueSeconds <= 0 {
			t.Fatalf("rebuild %d: no value-phase time recorded: %+v", i, ev.Build)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := svc.Stats(); st.Failed != 0 {
		t.Fatalf("%d failed requests under parallel-build load", st.Failed)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) != swaps {
		t.Fatalf("%d swap events, want %d", len(events), swaps)
	}
	for i, ev := range events {
		if ev.Build == nil {
			t.Fatalf("swap event %d has no build stats", i)
		}
	}
	if st := svc.RebuildStatus(); st.LastBuildStats == nil || st.LastBuildStats.Workers != 4 {
		t.Fatalf("rebuild status missing build stats: %+v", st)
	}
}
