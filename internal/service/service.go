// Package service turns an XCluster synopsis into a concurrent
// selectivity-estimation service: the deployment shape of the paper's
// optimizer statistics, where one small immutable synopsis answers
// estimate requests from many query-optimizer workers at once.
//
// A Service wraps a synopsis and a shared thread-safe Estimator and
// offers batch estimation with a bounded worker pool, per-request
// deadlines via context, and an observable Stats snapshot (queries
// served, cache hit rate, latency percentiles from a ring buffer). The
// HTTP layer in http.go exposes the same operations over JSON for
// cmd/xclusterd.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xcluster/internal/core"
	"xcluster/internal/query"
)

// Option configures New.
type Option func(*Service)

// WithWorkers caps the number of goroutines EstimateBatch uses
// (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithTimeout sets a per-request deadline applied to every Estimate and
// EstimateBatch call on top of the caller's context (0 disables).
func WithTimeout(d time.Duration) Option {
	return func(s *Service) { s.timeout = d }
}

// WithCacheCapacity sets the shared estimator's query-result cache
// capacity (<= 0 disables caching).
func WithCacheCapacity(n int) Option {
	return func(s *Service) { s.est.SetCacheCapacity(n) }
}

// WithPlanCacheCapacity sets the shared estimator's compiled-plan cache
// capacity (<= 0 disables plan caching, so every uncached estimate
// recompiles).
func WithPlanCacheCapacity(n int) Option {
	return func(s *Service) { s.est.SetPlanCacheCapacity(n) }
}

// WithUninformedSel sets the estimator's selectivity for predicates on
// unsummarized type-matching clusters.
func WithUninformedSel(sel float64) Option {
	return func(s *Service) { s.est.UninformedSel = sel }
}

// latWindow is the number of recent per-query latencies retained for
// percentile reporting.
const latWindow = 4096

// Service is a concurrent estimation service over one immutable
// synopsis. All methods are safe for concurrent use.
type Service struct {
	syn     *core.Synopsis
	est     *core.Estimator
	workers int
	timeout time.Duration

	served atomic.Uint64
	failed atomic.Uint64
	start  time.Time

	// lat is a ring buffer of recent per-query latencies; idx is the
	// next write position (monotonically increasing, wrapped on read).
	latMu sync.Mutex
	lat   [latWindow]time.Duration
	idx   uint64
}

// New returns a service over the synopsis. The service owns a shared
// estimator configured by the options; configuration after New is not
// synchronized.
func New(syn *core.Synopsis, opts ...Option) *Service {
	s := &Service{
		syn:     syn,
		est:     core.NewEstimator(syn),
		workers: runtime.GOMAXPROCS(0),
		start:   time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Synopsis returns the served synopsis.
func (s *Service) Synopsis() *core.Synopsis { return s.syn }

// Estimator returns the shared estimator (for callers that want direct
// access, e.g. Explain).
func (s *Service) Estimator() *core.Estimator { return s.est }

// Estimate answers one query under the service's deadline.
func (s *Service) Estimate(ctx context.Context, q *query.Query) (float64, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	return s.estimateOne(ctx, q)
}

// estimateOne runs one estimate, recording latency and counters.
func (s *Service) estimateOne(ctx context.Context, q *query.Query) (float64, error) {
	t0 := time.Now()
	v, err := s.est.SelectivityContext(ctx, q)
	if err != nil {
		s.failed.Add(1)
		return 0, err
	}
	s.observe(time.Since(t0))
	s.served.Add(1)
	return v, nil
}

// EstimateBatch answers a batch of queries with a worker pool of up to
// WithWorkers goroutines (default GOMAXPROCS). Results are positional:
// out[i] is the selectivity of qs[i]. The first context error aborts the
// remaining work and is returned; already-computed entries stay in the
// slice.
//
// Before fanning out, the batch compiles each distinct query shape
// exactly once (grouped by canonical string, sequentially, so racing
// workers never compile the same shape twice); the workers then execute
// through the estimator's plan and result caches.
func (s *Service) EstimateBatch(ctx context.Context, qs []*query.Query) ([]float64, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	out := make([]float64, len(qs))
	if len(qs) == 0 {
		return out, nil
	}
	if err := s.prepareShapes(qs); err != nil {
		return out, err
	}
	workers := s.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			v, err := s.estimateOne(ctx, q)
			if err != nil {
				return out, fmt.Errorf("service: query %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		batchErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) || stop.Load() {
					return
				}
				v, err := s.estimateOne(ctx, qs[i])
				if err != nil {
					errMu.Lock()
					if batchErr == nil {
						batchErr = fmt.Errorf("service: query %d: %w", i, err)
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	return out, batchErr
}

// prepareShapes compiles each distinct query shape in the batch once,
// seeding the estimator's plan cache. With the plan cache disabled this
// is a no-op (per-call compilation is what the caller asked for).
func (s *Service) prepareShapes(qs []*query.Query) error {
	if s.est.PlanCacheStats().Capacity == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(qs))
	for i, q := range qs {
		key := q.String()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		if _, err := s.est.Prepare(q); err != nil {
			return fmt.Errorf("service: query %d: %w", i, err)
		}
	}
	return nil
}

// ExplainPlan compiles one query and renders its compiled plan: the
// resolved frontier clusters, bound term weights, and subproblem
// structure of the canonicalize → compile → execute pipeline.
func (s *Service) ExplainPlan(q *query.Query) (string, error) {
	pq, err := s.est.Prepare(q)
	if err != nil {
		return "", err
	}
	return pq.ExplainPlan(), nil
}

// Explain returns up to limit formatted embeddings (query variables →
// synopsis clusters with per-embedding tuple counts) for one query.
func (s *Service) Explain(q *query.Query, limit int) []string {
	ems := s.est.Explain(q, limit)
	out := make([]string, len(ems))
	for i, em := range ems {
		out[i] = s.syn.FormatEmbedding(em)
	}
	return out
}

// observe records one latency sample in the ring buffer.
func (s *Service) observe(d time.Duration) {
	s.latMu.Lock()
	s.lat[s.idx%latWindow] = d
	s.idx++
	s.latMu.Unlock()
}

// Stats is a point-in-time snapshot of the service.
type Stats struct {
	// Served counts successfully answered queries; Failed counts
	// queries aborted by cancellation or deadline.
	Served, Failed uint64
	// Cache is the shared estimator's result-cache snapshot.
	Cache core.CacheStats
	// PlanCache is the shared estimator's compiled-plan cache snapshot;
	// its Misses count how many query shapes were compiled.
	PlanCache core.CacheStats
	// P50 and P99 are latency percentiles over the last LatencySamples
	// answered queries.
	P50, P99 time.Duration
	// LatencySamples is the number of samples behind P50/P99 (at most
	// the ring-buffer window).
	LatencySamples int
	// Uptime is the time since New.
	Uptime time.Duration
}

// Stats snapshots the counters, cache state, and latency percentiles.
func (s *Service) Stats() Stats {
	s.latMu.Lock()
	n := int(s.idx)
	if n > latWindow {
		n = latWindow
	}
	samples := make([]time.Duration, n)
	copy(samples, s.lat[:n])
	s.latMu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	st := Stats{
		Served:         s.served.Load(),
		Failed:         s.failed.Load(),
		Cache:          s.est.CacheStats(),
		PlanCache:      s.est.PlanCacheStats(),
		LatencySamples: n,
		Uptime:         time.Since(s.start),
	}
	if n > 0 {
		st.P50 = samples[n/2]
		st.P99 = samples[(n*99)/100]
	}
	return st
}
