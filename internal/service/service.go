// Package service turns an XCluster synopsis into a concurrent
// selectivity-estimation service: the deployment shape of the paper's
// optimizer statistics, where one small immutable synopsis answers
// estimate requests from many query-optimizer workers at once.
//
// A Service wraps a synopsis and a shared thread-safe Estimator and
// offers batch estimation with a bounded worker pool, per-request
// deadlines via context, and full observability: every estimate runs
// the traced canonicalize → compile → execute pipeline, emitting
// per-stage latencies, cache outcomes, and request counters into an
// internal/obs metrics registry (exported in Prometheus text format at
// GET /metrics), recording queries above a threshold in a ring-buffer
// slow-query log, and returning per-stage spans inline on request. The
// HTTP layer in http.go exposes the same operations over JSON for
// cmd/xclusterd.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/budget"
	"xcluster/internal/core"
	"xcluster/internal/obs"
	"xcluster/internal/profile"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// Option configures New.
type Option func(*Service)

// WithWorkers caps the number of goroutines EstimateBatch uses
// (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithTimeout sets a per-request deadline applied to every Estimate and
// EstimateBatch call on top of the caller's context (0 disables).
func WithTimeout(d time.Duration) Option {
	return func(s *Service) { s.timeout = d }
}

// WithCacheCapacity sets the estimator query-result cache capacity
// (<= 0 disables caching). The setting is part of the service's stored
// estimator configuration: every estimator the lifecycle installs — the
// initial one and every reload/rebuild replacement — is configured
// identically.
func WithCacheCapacity(n int) Option {
	return func(s *Service) { s.cacheCap, s.cacheCapSet = n, true }
}

// WithPlanCacheCapacity sets the estimator compiled-plan cache capacity
// (<= 0 disables plan caching, so every uncached estimate recompiles).
// Applied to every estimator the lifecycle installs, like
// WithCacheCapacity.
func WithPlanCacheCapacity(n int) Option {
	return func(s *Service) { s.planCap, s.planCapSet = n, true }
}

// WithUninformedSel sets the estimator's selectivity for predicates on
// unsummarized type-matching clusters. Applied to every estimator the
// lifecycle installs.
func WithUninformedSel(sel float64) Option {
	return func(s *Service) { s.uninformedSel = sel }
}

// WithRegistry makes the service emit into a caller-owned metrics
// registry instead of creating its own (e.g. to share one registry
// across a build pipeline and the serving path).
func WithRegistry(r *obs.Registry) Option {
	return func(s *Service) { s.reg = r }
}

// WithSlowQueryLog enables the slow-query log: estimates whose total
// latency reaches threshold are captured (canonical query, plan
// summary, stage timings, estimate) in a ring of the given capacity
// (obs.DefaultSlowLogCapacity when <= 0). A non-positive threshold
// leaves the log disabled.
func WithSlowQueryLog(threshold time.Duration, capacity int) Option {
	return func(s *Service) { s.slow = obs.NewSlowLog(threshold, capacity) }
}

// WithShadowSampling enables shadow accuracy evaluation: rate (0..1]
// of served estimates are re-run through the exact evaluator on a pool
// of workers goroutines, each evaluation bounded by deadline (measured
// from enqueue; accuracy.DefaultShadowDeadline when <= 0). Shadow work
// is queued and dropped under overload — it can never block or fail a
// client estimate. Requires a ground-truth source: WithDocument or
// WithTruthFunc; without one, shadow sampling stays off.
func WithShadowSampling(rate float64, workers int, deadline time.Duration) Option {
	return func(s *Service) {
		s.shadowRate = rate
		s.shadowWorkers = workers
		s.shadowDeadline = deadline
	}
}

// WithDocument makes the source document resident so shadow sampling
// can compute exact ground truth with internal/query's evaluator.
func WithDocument(tree *xmltree.Tree) Option {
	return func(s *Service) { s.doc = tree }
}

// WithTruthFunc overrides the ground-truth source for shadow sampling
// (it wins over WithDocument). Deployments that cannot keep the
// document resident can plug a remote exact-evaluation client; tests
// use it to force deadline expiry.
func WithTruthFunc(fn accuracy.TruthFunc) Option {
	return func(s *Service) { s.truth = fn }
}

// WithAccuracy forwards options to the service's accuracy monitor
// (sanity bound, drift window/threshold, drift callback).
func WithAccuracy(opts ...accuracy.MonitorOption) Option {
	return func(s *Service) { s.monOpts = append(s.monOpts, opts...) }
}

// WithSLO configures the service's availability/latency objectives.
// Every traced estimate's outcome feeds multi-window (5m/1h)
// error-budget burn rates, reported at GET /debug/slo and as
// xcluster_slo_* gauges. The zero config (the default) disables
// tracking at zero hot-path cost.
func WithSLO(cfg obs.SLOConfig) Option {
	return func(s *Service) { s.sloCfg = cfg }
}

// WithWorkloadProfile configures the live workload profiler: capacity
// is the number of distinct query shapes its space-saving table tracks
// (profile.DefaultCapacity when 0; negative disables profiling
// entirely), window the rolling-window width behind rates and traffic
// shares (profile.DefaultWindow when 0). The profiler is on by
// default: its hot-path cost is a handful of atomic updates per
// estimate (priced by BENCH_workload.json), and its output —
// GET /debug/workload, xcluster_workload_* series, and the exported
// WorkloadProfile artifact — is what workload-adaptive rebuilds
// consume.
func WithWorkloadProfile(capacity int, window time.Duration) Option {
	return func(s *Service) { s.profCap, s.profWindow = capacity, window }
}

// WithTraceStore overrides the request trace store. The default is a
// fresh store with the obs package's default retention; nil disables
// request tracing entirely (requests still get correlated IDs, but no
// span trees are built or retained).
func WithTraceStore(ts *obs.TraceStore) Option {
	return func(s *Service) { s.traces, s.tracesSet = ts, true }
}

// Service is a concurrent estimation service over an immutable synopsis
// generation. All methods are safe for concurrent use.
//
// The synopsis and its estimator live in an atomically swappable slot:
// Reload and Rebuild install a replacement generation without stopping
// the serving path (see lifecycle.go). Each estimate pins the slot it
// started on, so in-flight requests finish coherently on the old
// generation while new requests see the new one.
type Service struct {
	// cur is the serving slot (synopsis + estimator + install time).
	// Always non-nil after New.
	cur     atomic.Pointer[slot]
	workers int
	timeout time.Duration
	start   time.Time

	// Stored estimator configuration, replayed onto every estimator the
	// lifecycle installs so generations only differ by their synopsis.
	cacheCap      int
	cacheCapSet   bool
	planCap       int
	planCapSet    bool
	uninformedSel float64

	// Lifecycle state: swapMu serializes installs, gen numbers them,
	// rebuilding single-flights Rebuild, source re-reads the synopsis
	// for Reload, onSwap observes transitions. See lifecycle.go.
	swapMu         sync.Mutex
	rebuilding     atomic.Bool
	source         func(context.Context) (*core.Synopsis, error)
	onSwap         func(SwapEvent)
	rebuildOnDrift bool
	rbMu           sync.Mutex
	rb             RebuildStatus
	defaultBstr    int
	defaultBval    int
	refOpts        core.ReferenceOptions
	buildWorkers   int

	// Adaptive budget planning (see adaptive.go): planMu guards the
	// last planner run recorded for GET /debug/budget.
	adaptiveBudget   bool
	planMu           sync.Mutex
	lastPlanInputs   *budget.Inputs
	lastPlanDecision *budget.Decision

	// reg aggregates every metric the service and its estimator emit;
	// slow is the optional slow-query ring (nil when disabled).
	reg  *obs.Registry
	slow *obs.SlowLog

	// prof sketches the live workload (nil when disabled via
	// WithWorkloadProfile with a negative capacity).
	prof       *profile.Profiler
	profCap    int
	profWindow time.Duration

	// Request-correlation and SLO state: traces retains completed span
	// trees for GET /debug/traces (nil: tracing disabled), slo tracks
	// error-budget burn rates (nil: no objectives configured), runtime
	// samples runtime/metrics into the registry at scrape time, and
	// draining flips GET /readyz to 503 once Drain starts.
	traces    *obs.TraceStore
	tracesSet bool
	slo       *obs.SLOTracker
	sloCfg    obs.SLOConfig
	runtime   *obs.RuntimeSampler
	draining  atomic.Bool

	// Accuracy monitoring: mon aggregates estimate/truth pairs (always
	// on — POST /feedback feeds it even without shadow sampling);
	// shadow re-runs sampled estimates through truth (nil when disabled
	// or no ground-truth source is configured).
	mon            *accuracy.Monitor
	shadow         *accuracy.Shadow
	doc            *xmltree.Tree
	truth          accuracy.TruthFunc
	monOpts        []accuracy.MonitorOption
	shadowRate     float64
	shadowWorkers  int
	shadowDeadline time.Duration

	// Registry series the hot path holds directly (no per-event lookup).
	served       *obs.Counter // xcluster_requests_total{outcome="ok"}
	failed       *obs.Counter // xcluster_requests_total{outcome="error"}
	reqHist      *obs.Histogram
	batches      *obs.Counter
	batchQueries *obs.Counter
	slowTotal    *obs.Counter
	inflight     *obs.Gauge
	genGauge     *obs.Gauge     // xcluster_synopsis_generation
	rebuildsOK   *obs.Counter   // xcluster_rebuilds_total{outcome="ok"}
	rebuildsErr  *obs.Counter   // xcluster_rebuilds_total{outcome="error"}
	rebuildHist  *obs.Histogram // xcluster_rebuild_seconds
	swaps        *obs.Counter   // xcluster_synopsis_swaps_total

	// inflightWG tracks in-flight Estimate/EstimateBatch calls so Drain
	// can wait for them during graceful shutdown.
	inflightWG sync.WaitGroup
}

// New returns a service over the synopsis. The service owns the
// estimator of each installed generation, configured by the options;
// configuration after New is not synchronized.
func New(syn *core.Synopsis, opts ...Option) *Service {
	s := &Service{
		workers: runtime.GOMAXPROCS(0),
		start:   time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	if !s.tracesSet {
		s.traces = obs.NewTraceStore(0, 0)
	}
	s.slo = obs.NewSLOTracker(s.sloCfg)
	s.runtime = obs.NewRuntimeSampler()
	if s.profCap >= 0 {
		s.prof = profile.New(s.profCap, s.profWindow)
	}
	s.wireMetrics()
	// Install the initial generation. The artifact keeps whatever
	// generation its fingerprint carries (0 for fresh builds and legacy
	// files); only swaps advance it.
	s.cur.Store(s.newSlot(syn))
	s.genGauge.Set(float64(syn.Fingerprint().Generation))
	s.rb.Phase = PhaseIdle
	monOpts := []accuracy.MonitorOption{accuracy.WithMonitorRegistry(s.reg)}
	monOpts = append(monOpts, s.monOpts...)
	if s.rebuildOnDrift {
		monOpts = append(monOpts, accuracy.WithOnDrift(func(ev accuracy.DriftEvent) {
			// Busy and no-document outcomes land in RebuildStatus; drift
			// rebuilds are best-effort by design.
			go func() {
				_, _ = s.Rebuild(context.Background(), RebuildOptions{
					Reason:   "drift:" + ev.Class.String(),
					Adaptive: s.adaptiveBudget,
				})
			}()
		}))
	}
	s.mon = accuracy.NewMonitor(monOpts...)
	if s.truth == nil && s.doc != nil {
		ev := query.NewEvaluator(s.doc)
		s.truth = func(ctx context.Context, q *query.Query) (float64, error) {
			// The exact evaluator is not interruptible mid-walk; honoring
			// the deadline at the boundaries still bounds queue-delayed
			// work and reports late results as drops.
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			v := ev.Selectivity(q)
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return v, nil
		}
	}
	if s.shadowRate > 0 && s.truth != nil {
		s.shadow = accuracy.NewShadow(s.mon, s.truth,
			s.shadowRate, s.shadowWorkers, s.shadowDeadline, 0)
	}
	return s
}

// Close stops the shadow sampler's workers after processing the queued
// samples. The serving paths stay usable (shadow offers after Close
// are counted as drops); call it when retiring the service.
func (s *Service) Close() {
	if s.shadow != nil {
		s.shadow.Close()
	}
}

// wireMetrics registers help text and resolves the hot-path series.
// (Each generation's estimator gets its metric sink pointed at the
// registry by newSlot.)
func (s *Service) wireMetrics() {
	r := s.reg
	r.Help("xcluster_requests_total", "Estimate queries answered, by outcome.")
	r.Help("xcluster_request_seconds", "End-to-end latency of successfully answered estimates.")
	r.Help("xcluster_batches_total", "Estimate batches served.")
	r.Help("xcluster_batch_queries_total", "Queries submitted across all batches.")
	r.Help("xcluster_slow_queries_total", "Estimates captured by the slow-query log.")
	r.Help("xcluster_inflight_estimates", "Estimates currently executing.")
	r.Help("xcluster_estimator_cache_hits_total", "All-time estimator cache hits (matches /stats).")
	r.Help("xcluster_estimator_cache_misses_total", "All-time estimator cache misses (matches /stats).")
	r.Help("xcluster_estimator_cache_entries", "Current estimator cache occupancy.")
	r.Help("xcluster_synopsis_bytes", "Size of the served synopsis by component.")
	r.Help("xcluster_uptime_seconds", "Seconds since the service was created.")
	r.Help("xcluster_shadow_sampled_total", "Estimates selected for shadow exact evaluation.")
	r.Help("xcluster_shadow_observed_total", "Shadow evaluations that completed and reached the accuracy monitor.")
	r.Help("xcluster_shadow_dropped_total", "Sampled estimates lost to overload, deadline expiry, or evaluator errors.")
	r.Help("xcluster_synopsis_generation", "Build generation of the currently served synopsis.")
	r.Help("xcluster_rebuilds_total", "Synopsis rebuilds attempted, by outcome.")
	r.Help("xcluster_budget_plan_total_bytes", "Total byte budget of the serving synopsis's plan.")
	r.Help("xcluster_budget_plan_provenance", "1 for the serving plan's provenance (static, auto, workload), 0 otherwise.")
	r.Help("xcluster_budget_planned_bytes", "Planned byte budget of the serving synopsis by component (0 when the plan leaves the component unsplit).")
	r.Help("xcluster_budget_actual_bytes", "Realized bytes of the serving synopsis by component.")
	r.Help("xcluster_rebuild_seconds", "End-to-end wall time of successful synopsis rebuilds (build through swap).")
	r.Help("xcluster_synopsis_swaps_total", "Synopsis hot swaps performed (reloads and rebuilds).")
	if s.prof != nil {
		r.Help("xcluster_workload_requests_total", "Estimates profiled by the workload profiler, by accuracy class.")
		r.Help("xcluster_workload_errors_total", "Failed estimates profiled by the workload profiler, by accuracy class.")
		r.Help("xcluster_workload_class_share", "Rolling-window traffic share per accuracy class.")
		r.Help("xcluster_workload_pain_score", "Traffic share times relative error per accuracy class.")
		r.Help("xcluster_workload_shapes_tracked", "Distinct query shapes currently tracked by the workload profiler.")
		r.Help("xcluster_workload_shape_evictions_total", "Shapes displaced from the profiler's bounded top-K table.")
	}
	r.Help(core.MetricPipelineStageSeconds, "Wall time per estimation pipeline stage.")
	r.Help(core.MetricCacheLookupsTotal, "Estimate-pipeline cache lookups, by cache and outcome.")
	r.Help(core.MetricBuildPhaseSeconds, "Synopsis build phase wall time.")
	r.Help(core.MetricBuildMergesTotal, "Node merges applied by synopsis builds.")
	r.Help(core.MetricBuildPairsTotal, "Merge-candidate evaluations by synopsis builds, by outcome (computed, memo_hit, memo_partial).")
	s.served = r.Counter("xcluster_requests_total", `outcome="ok"`)
	s.failed = r.Counter("xcluster_requests_total", `outcome="error"`)
	s.reqHist = r.Histogram("xcluster_request_seconds", "", nil)
	s.batches = r.Counter("xcluster_batches_total", "")
	s.batchQueries = r.Counter("xcluster_batch_queries_total", "")
	s.slowTotal = r.Counter("xcluster_slow_queries_total", "")
	s.inflight = r.Gauge("xcluster_inflight_estimates", "")
	s.genGauge = r.Gauge("xcluster_synopsis_generation", "")
	s.rebuildsOK = r.Counter("xcluster_rebuilds_total", `outcome="ok"`)
	s.rebuildsErr = r.Counter("xcluster_rebuilds_total", `outcome="error"`)
	s.rebuildHist = r.Histogram("xcluster_rebuild_seconds", "", nil)
	s.swaps = r.Counter("xcluster_synopsis_swaps_total", "")
}

// syncRegistry mirrors scrape-time state into the registry: the
// estimator's authoritative cache counters (the same values /stats
// reports, so the two views cannot disagree), cache occupancy, synopsis
// size, and uptime. Called before every /metrics render.
func (s *Service) syncRegistry() {
	r := s.reg
	sl := s.cur.Load()
	for _, c := range []struct {
		label string
		stats core.CacheStats
	}{
		{`cache="result"`, sl.est.CacheStats()},
		{`cache="plan"`, sl.est.PlanCacheStats()},
	} {
		r.Counter("xcluster_estimator_cache_hits_total", c.label).Store(c.stats.Hits)
		r.Counter("xcluster_estimator_cache_misses_total", c.label).Store(c.stats.Misses)
		r.Gauge("xcluster_estimator_cache_entries", c.label).Set(float64(c.stats.Len))
	}
	r.Gauge("xcluster_synopsis_bytes", `component="struct"`).Set(float64(sl.syn.StructBytes()))
	r.Gauge("xcluster_synopsis_bytes", `component="value"`).Set(float64(sl.syn.ValueBytes()))
	r.Gauge("xcluster_uptime_seconds", "").Set(time.Since(s.start).Seconds())
	if s.shadow != nil {
		st := s.shadow.Stats()
		r.Counter("xcluster_shadow_sampled_total", "").Store(st.Sampled)
		r.Counter("xcluster_shadow_observed_total", "").Store(st.Observed)
		r.Counter("xcluster_shadow_dropped_total", `reason="queue_full"`).Store(st.QueueDrops)
		r.Counter("xcluster_shadow_dropped_total", `reason="deadline"`).Store(st.DeadlineDrops)
		r.Counter("xcluster_shadow_dropped_total", `reason="error"`).Store(st.ErrorDrops)
	}
	if s.prof != nil {
		s.prof.Sync(r, s.mon.Report(), time.Now())
	}
	s.syncBudgetGauges()
	s.slo.Sync(r)
}

// SyncMetrics mirrors scrape-time state (cache counters and occupancy,
// synopsis size, uptime, shadow counters) into the service's registry.
// The service's own /metrics handler calls it before rendering; the
// multi-tenant catalog front-end calls it for each shard before a
// merged render.
func (s *Service) SyncMetrics() { s.syncRegistry() }

// Ready reports whether the service should receive traffic: true until
// Drain starts. GET /readyz renders it; /healthz stays a pure liveness
// probe.
func (s *Service) Ready() bool { return !s.draining.Load() }

// Traces returns the request trace store (nil when disabled).
func (s *Service) Traces() *obs.TraceStore { return s.traces }

// SLO returns the SLO tracker (nil when no objectives are configured).
func (s *Service) SLO() *obs.SLOTracker { return s.slo }

// RequestsTotal returns the number of estimates ever answered (served
// plus failed) — the ops denominator front-ends use for allocs-per-op
// sampling.
func (s *Service) RequestsTotal() uint64 { return s.served.Value() + s.failed.Value() }

// Synopsis returns the currently served synopsis generation.
func (s *Service) Synopsis() *core.Synopsis { return s.cur.Load().syn }

// Estimator returns the current generation's estimator (for callers
// that want direct access, e.g. Explain). A hot swap replaces it; hold
// the returned pointer across related calls if cross-call consistency
// matters.
func (s *Service) Estimator() *core.Estimator { return s.cur.Load().est }

// Registry returns the service's metrics registry.
func (s *Service) Registry() *obs.Registry { return s.reg }

// SlowLog returns the slow-query log (nil when disabled).
func (s *Service) SlowLog() *obs.SlowLog { return s.slow }

// Monitor returns the accuracy monitor (always non-nil; it aggregates
// shadow samples and pushed feedback).
func (s *Service) Monitor() *accuracy.Monitor { return s.mon }

// Shadow returns the shadow sampler (nil when shadow sampling is
// disabled or no ground-truth source was configured).
func (s *Service) Shadow() *accuracy.Shadow { return s.shadow }

// Workload returns the live workload profiler (nil when disabled).
func (s *Service) Workload() *profile.Profiler { return s.prof }

// WorkloadProfile captures the live workload as a versioned,
// persistable artifact with class error and pain joined from the
// accuracy monitor — the body of GET /admin/workload/export.
func (s *Service) WorkloadProfile() (profile.Profile, error) {
	if s.prof == nil {
		return profile.Profile{}, ErrNoProfiler
	}
	return s.prof.Profile(time.Now(), s.mon.Report()), nil
}

// Estimate answers one query under the service's deadline.
func (s *Service) Estimate(ctx context.Context, q *query.Query) (float64, error) {
	v, _, err := s.EstimateTraced(ctx, q)
	return v, err
}

// EstimateTraced answers one query under the service's deadline and
// returns the per-stage pipeline trace alongside the estimate.
func (s *Service) EstimateTraced(ctx context.Context, q *query.Query) (float64, *core.EstimateTrace, error) {
	s.inflightWG.Add(1)
	defer s.inflightWG.Done()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	return s.estimateOne(ctx, s.cur.Load(), q)
}

// estimateOne runs one traced estimate against the pinned slot,
// recording latency, counters, and — above the threshold — a slow-query
// log entry. The caller pins the slot so one logical operation (a
// single estimate, or a whole batch) runs coherently on one generation
// even while a hot swap installs the next.
func (s *Service) estimateOne(ctx context.Context, sl *slot, q *query.Query) (float64, *core.EstimateTrace, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	t0 := time.Now()
	v, tr, err := sl.est.SelectivityTraced(ctx, q)
	d := time.Since(t0)
	// One context lookup is the whole per-estimate tracing cost when the
	// request carries no span (untraced callers, or tracing disabled).
	sp := obs.SpanFrom(ctx)
	// The profiler reuses the trace's canonical string and hash, so its
	// hit path is a read-locked map probe plus atomic counter bumps.
	shapeID := ""
	if s.prof != nil && tr != nil {
		shapeID = s.prof.Record(t0, q, tr.Canonical, tr.CanonicalHash, d, tr.Estimate, err != nil)
	}
	if err != nil {
		s.failed.Inc()
		s.slo.ObserveAt(t0, d, true)
		if sp != nil {
			sp.AddChild(estimateSpan(t0, d, tr, err))
		}
		return 0, tr, err
	}
	s.reqHist.Observe(d.Seconds())
	s.served.Inc()
	s.slo.ObserveAt(t0, d, false)
	if sp != nil {
		sp.AddChild(estimateSpan(t0, d, tr, nil))
	}
	s.recordSlow(ctx, sl, q, tr, v, d, shapeID)
	if s.shadow != nil {
		// Pair the trace's estimate with exact ground truth off the
		// serving path; Offer never blocks.
		s.shadow.Offer(q, tr.Estimate)
	}
	return v, tr, nil
}

// estimateSpan renders one completed estimate (and its pipeline-stage
// timings) as a span subtree for the request's trace.
func estimateSpan(start time.Time, d time.Duration, tr *core.EstimateTrace, err error) *obs.Span {
	sp := obs.CompletedSpan("estimate", start, d)
	if tr != nil {
		sp.SetDetail(tr.Canonical)
		for _, st := range tr.Spans {
			sp.AddChild(obs.CompletedSpan(st.Stage, start.Add(st.Offset), st.Duration))
		}
	}
	if err != nil {
		sp.FinishErr(err)
	}
	return sp
}

// recordSlow captures one answered estimate in the slow-query log when
// its latency reaches the threshold. The plan summary is resolved
// through the plan cache, so the extra cost is paid only by queries
// already slow enough to log.
func (s *Service) recordSlow(ctx context.Context, sl *slot, q *query.Query, tr *core.EstimateTrace, v float64, d time.Duration, shapeID string) {
	if s.slow == nil || d < s.slow.Threshold() {
		return
	}
	planSummary := ""
	if pq, err := sl.est.Prepare(q); err == nil {
		planSummary = pq.PlanSummary()
	}
	spans := make([]obs.SlowLogSpan, len(tr.Spans))
	for i, sp := range tr.Spans {
		spans[i] = obs.SlowLogSpan{Stage: sp.Stage, Nanos: sp.Duration.Nanoseconds()}
	}
	if s.slow.Record(obs.SlowLogEntry{
		Time:       time.Now(),
		RequestID:  obs.RequestIDFrom(ctx),
		ShapeID:    shapeID,
		Query:      tr.Canonical,
		Plan:       planSummary,
		Estimate:   v,
		TotalNanos: d.Nanoseconds(),
		Spans:      spans,
	}) {
		s.slowTotal.Inc()
	}
}

// EstimateBatch answers a batch of queries with a worker pool of up to
// WithWorkers goroutines (default GOMAXPROCS). Results are positional:
// out[i] is the selectivity of qs[i]. The first context error aborts the
// remaining work and is returned; already-computed entries stay in the
// slice.
//
// Before fanning out, the batch compiles each distinct query shape
// exactly once (grouped by canonical string, sequentially, so racing
// workers never compile the same shape twice); the workers then execute
// through the estimator's plan and result caches.
func (s *Service) EstimateBatch(ctx context.Context, qs []*query.Query) ([]float64, error) {
	out, _, err := s.EstimateBatchTraced(ctx, qs)
	return out, err
}

// EstimateBatchTraced is EstimateBatch returning, additionally, the
// positional per-stage pipeline traces (trace entries for queries the
// batch never reached are nil).
func (s *Service) EstimateBatchTraced(ctx context.Context, qs []*query.Query) ([]float64, []*core.EstimateTrace, error) {
	s.inflightWG.Add(1)
	defer s.inflightWG.Done()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	out := make([]float64, len(qs))
	trs := make([]*core.EstimateTrace, len(qs))
	if len(qs) == 0 {
		return out, trs, nil
	}
	s.batches.Inc()
	s.batchQueries.Add(uint64(len(qs)))
	// Pin one generation for the whole batch: every query of the batch
	// is answered by the same synopsis even if a swap lands mid-batch.
	sl := s.cur.Load()
	if err := s.prepareShapes(sl, qs); err != nil {
		return out, trs, err
	}
	workers := s.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			v, tr, err := s.estimateOne(ctx, sl, q)
			trs[i] = tr
			if err != nil {
				return out, trs, fmt.Errorf("service: query %d: %w", i, err)
			}
			out[i] = v
		}
		return out, trs, nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		batchErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) || stop.Load() {
					return
				}
				v, tr, err := s.estimateOne(ctx, sl, qs[i])
				trs[i] = tr
				if err != nil {
					errMu.Lock()
					if batchErr == nil {
						batchErr = fmt.Errorf("service: query %d: %w", i, err)
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	return out, trs, batchErr
}

// prepareShapes compiles each distinct query shape in the batch once,
// seeding the estimator's plan cache. With the plan cache disabled this
// is a no-op (per-call compilation is what the caller asked for).
func (s *Service) prepareShapes(sl *slot, qs []*query.Query) error {
	if sl.est.PlanCacheStats().Capacity == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(qs))
	for i, q := range qs {
		key := q.String()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		if _, err := sl.est.Prepare(q); err != nil {
			return fmt.Errorf("service: query %d: %w", i, err)
		}
	}
	return nil
}

// Drain blocks until every in-flight Estimate and EstimateBatch call
// has returned, or until ctx ends (returning its error). Call it during
// graceful shutdown after the listener has stopped accepting requests;
// work submitted concurrently with Drain is not guaranteed to be
// waited for.
func (s *Service) Drain(ctx context.Context) error {
	// Readiness flips before the wait starts: GET /readyz reports 503
	// from here on, so load balancers stop routing while in-flight work
	// finishes.
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflightWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ExplainPlan compiles one query and renders its compiled plan: the
// resolved frontier clusters, bound term weights, and subproblem
// structure of the canonicalize → compile → execute pipeline.
func (s *Service) ExplainPlan(q *query.Query) (string, error) {
	pq, err := s.cur.Load().est.Prepare(q)
	if err != nil {
		return "", err
	}
	return pq.ExplainPlan(), nil
}

// Explain returns up to limit formatted embeddings (query variables →
// synopsis clusters with per-embedding tuple counts) for one query.
func (s *Service) Explain(q *query.Query, limit int) []string {
	sl := s.cur.Load()
	ems := sl.est.Explain(q, limit)
	out := make([]string, len(ems))
	for i, em := range ems {
		out[i] = sl.syn.FormatEmbedding(em)
	}
	return out
}

// Stats is a point-in-time snapshot of the service.
type Stats struct {
	// Served counts successfully answered queries; Failed counts
	// queries aborted by cancellation or deadline.
	Served, Failed uint64
	// Cache is the shared estimator's result-cache snapshot.
	Cache core.CacheStats
	// PlanCache is the shared estimator's compiled-plan cache snapshot;
	// its Misses count how many query shapes were compiled.
	PlanCache core.CacheStats
	// P50, P95 and P99 are latency percentiles over the last
	// LatencySamples answered queries, read from the same shared
	// histogram /metrics exports (the two views cannot disagree).
	P50, P95, P99 time.Duration
	// LatencySamples is the number of samples behind the percentiles
	// (at most the histogram's retained window).
	LatencySamples int
	// SlowQueries counts estimates captured by the slow-query log.
	SlowQueries uint64
	// Uptime is the time since New.
	Uptime time.Duration
	// Generation is the build generation of the synopsis currently
	// serving; Swaps counts the hot swaps performed since New.
	Generation uint64
	Swaps      uint64
}

// Stats snapshots the counters, cache state, and latency percentiles.
// Cache statistics belong to the current generation's estimator (they
// reset on a hot swap, together with the caches themselves).
func (s *Service) Stats() Stats {
	snap := s.reqHist.Snapshot()
	sl := s.cur.Load()
	return Stats{
		Served:         s.served.Value(),
		Failed:         s.failed.Value(),
		Cache:          sl.est.CacheStats(),
		PlanCache:      sl.est.PlanCacheStats(),
		Generation:     sl.syn.Fingerprint().Generation,
		Swaps:          s.swaps.Value(),
		P50:            secondsDuration(snap.P50),
		P95:            secondsDuration(snap.P95),
		P99:            secondsDuration(snap.P99),
		LatencySamples: snap.Samples,
		SlowQueries:    s.slow.Total(),
		Uptime:         time.Since(s.start),
	}
}

// secondsDuration converts a seconds float into a Duration.
func secondsDuration(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}
