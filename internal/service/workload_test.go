package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"xcluster/internal/profile"
)

// getJSON GETs a path from the test server and decodes its JSON body.
func getJSON(t *testing.T, srv *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decode %q: %v", path, body, err)
		}
	}
	return resp
}

// driveWorkload runs every test query through the service a few times.
func driveWorkload(t *testing.T, svc *Service, rounds int) {
	t.Helper()
	qs := parseWorkload(t)
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for _, q := range qs {
			if _, err := svc.Estimate(ctx, q); err != nil {
				t.Fatalf("estimate %s: %v", q, err)
			}
		}
	}
}

func TestWorkloadEndpointReportsTraffic(t *testing.T) {
	svc := New(newTestSynopsis(t))
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	driveWorkload(t, svc, 3)

	var resp WorkloadResponse
	if got := getJSON(t, srv, "/debug/workload", &resp); got.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/workload = %d", got.StatusCode)
	}
	if !resp.Enabled {
		t.Fatal("profiling not enabled by default")
	}
	if want := uint64(3 * len(testWorkload)); resp.TotalRequests != want {
		t.Fatalf("total requests = %d, want %d", resp.TotalRequests, want)
	}
	// The 10 test queries all have distinct shapes; every row carries a
	// join ID.
	if len(resp.Shapes) != len(testWorkload) {
		t.Fatalf("shapes = %d, want %d", len(resp.Shapes), len(testWorkload))
	}
	for _, sh := range resp.Shapes {
		if len(sh.ID) != 16 || sh.Count == 0 {
			t.Fatalf("shape row = %+v", sh)
		}
	}
	// Coverage joins the served synopsis's budget: total bytes match
	// /debug/synopsis and every class has a row.
	var syn SynopsisDebugResponse
	getJSON(t, srv, "/debug/synopsis", &syn)
	wantTotal := syn.Budget.NodeBytes + syn.Budget.EdgeBytes +
		syn.Budget.HistogramBytes + syn.Budget.PSTBytes + syn.Budget.TermHistBytes
	if resp.Coverage.TotalBudgetBytes != wantTotal {
		t.Fatalf("coverage budget = %d, want %d", resp.Coverage.TotalBudgetBytes, wantTotal)
	}
	if len(resp.Coverage.Rows) != len(resp.Classes) {
		t.Fatalf("coverage rows = %d, classes = %d", len(resp.Coverage.Rows), len(resp.Classes))
	}

	// ?limit caps the shape list; a bad limit is a 400.
	var capped WorkloadResponse
	getJSON(t, srv, "/debug/workload?limit=2", &capped)
	if len(capped.Shapes) != 2 {
		t.Fatalf("limited shapes = %d, want 2", len(capped.Shapes))
	}
	if got := getJSON(t, srv, "/debug/workload?limit=-1", nil); got.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", got.StatusCode)
	}
}

func TestWorkloadExportRoundTrip(t *testing.T) {
	svc := New(newTestSynopsis(t))
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	driveWorkload(t, svc, 2)

	resp, err := http.Get(srv.URL + "/admin/workload/export")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d (%v)", resp.StatusCode, err)
	}
	// The exported bytes are the canonical artifact: they parse, verify,
	// and re-encode byte-identically.
	parsed, err := profile.Parse(body)
	if err != nil {
		t.Fatalf("exported artifact does not parse: %v", err)
	}
	if parsed.Version != profile.ProfileVersion || parsed.Fingerprint == "" {
		t.Fatalf("artifact identity = v%d %q", parsed.Version, parsed.Fingerprint)
	}
	if want := uint64(2 * len(testWorkload)); parsed.TotalRequests != want {
		t.Fatalf("exported requests = %d, want %d", parsed.TotalRequests, want)
	}
	again, err := profile.Encode(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(body) {
		t.Fatal("exported bytes are not Encode's canonical form")
	}
	// The artifact snapshot matches a fresh in-process profile of the
	// same (undisturbed) profiler: export is a faithful capture.
	direct, err := svc.WorkloadProfile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Snapshot.Classes, parsed.Snapshot.Classes) {
		t.Fatalf("exported classes diverge from live profile:\n got %+v\nwant %+v",
			parsed.Snapshot.Classes, direct.Snapshot.Classes)
	}
}

func TestWorkloadDisabled(t *testing.T) {
	svc := New(newTestSynopsis(t), WithWorkloadProfile(-1, 0))
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	driveWorkload(t, svc, 1)

	var resp WorkloadResponse
	if got := getJSON(t, srv, "/debug/workload", &resp); got.StatusCode != http.StatusOK || resp.Enabled {
		t.Fatalf("disabled workload = %d enabled=%v, want 200/false", got.StatusCode, resp.Enabled)
	}
	if got := getJSON(t, srv, "/admin/workload/export", nil); got.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("disabled export status = %d, want 412", got.StatusCode)
	}
	// No xcluster_workload_* series when disabled.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(metrics), "xcluster_workload_") {
		t.Fatal("disabled profiler still exports xcluster_workload_* series")
	}
}

func TestWorkloadMetricsExported(t *testing.T) {
	svc := New(newTestSynopsis(t))
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	driveWorkload(t, svc, 1)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, line := range []string{
		"# HELP xcluster_workload_requests_total",
		"# TYPE xcluster_workload_requests_total counter",
		`xcluster_workload_requests_total{class="struct"} 2`,
		`xcluster_workload_requests_total{class="range"} 6`,
		`xcluster_workload_requests_total{class="substring"} 1`,
		`xcluster_workload_requests_total{class="ftcontains"} 1`,
		`xcluster_workload_requests_total{class="ftsim"} 0`,
		"xcluster_workload_shapes_tracked 10",
		"xcluster_workload_shape_evictions_total 0",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("missing %q in /metrics", line)
		}
	}
}

func TestSlowLogCarriesShapeID(t *testing.T) {
	// Threshold 1ns: every estimate is slow, so log rows and workload
	// shapes must join on shape_id.
	svc := New(newTestSynopsis(t), WithSlowQueryLog(time.Nanosecond, 16))
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	driveWorkload(t, svc, 1)

	var slow SlowLogResponse
	getJSON(t, srv, "/debug/slowlog", &slow)
	if len(slow.Entries) == 0 {
		t.Fatal("no slow-log entries at 1ns threshold")
	}
	var work WorkloadResponse
	getJSON(t, srv, "/debug/workload", &work)
	shapes := make(map[string]string)
	for _, sh := range work.Shapes {
		shapes[sh.ID] = sh.Shape
	}
	for _, e := range slow.Entries {
		if e.ShapeID == "" {
			t.Fatalf("slow-log entry %q has no shape_id", e.Query)
		}
		if _, ok := shapes[e.ShapeID]; !ok {
			t.Fatalf("slow-log shape_id %q (query %q) not in /debug/workload", e.ShapeID, e.Query)
		}
	}
}

func TestRebuildStampsWorkloadFingerprint(t *testing.T) {
	svc := New(newTestSynopsis(t), WithDocument(newTestTree(t)))
	defer svc.Close()
	driveWorkload(t, svc, 1)
	wantFP := svc.Workload().Fingerprint(time.Now())
	if wantFP == "" {
		t.Fatal("live profiler has empty fingerprint")
	}
	ev, err := svc.Rebuild(context.Background(), RebuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.WorkloadFingerprint != wantFP {
		t.Fatalf("swap fingerprint = %q, want %q", ev.WorkloadFingerprint, wantFP)
	}

	// With profiling disabled the field stays empty (and absent in JSON).
	off := New(newTestSynopsis(t), WithDocument(newTestTree(t)), WithWorkloadProfile(-1, 0))
	defer off.Close()
	ev, err = off.Rebuild(context.Background(), RebuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.WorkloadFingerprint != "" {
		t.Fatalf("disabled-profiler swap fingerprint = %q, want empty", ev.WorkloadFingerprint)
	}
}
