package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"xcluster/internal/obs"
)

// postJSONWithID is postJSON plus a client-supplied X-Request-ID header.
func postJSONWithID(t *testing.T, srv *httptest.Server, path, body, id string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestHTTPReadyz: /readyz is 200 until draining starts, then 503 —
// while /healthz (liveness) stays 200 through the whole shutdown.
func TestHTTPReadyz(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, raw := getBody(t, srv, "/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ready") {
		t.Fatalf("fresh /readyz = %d %q, want 200 ready", resp.StatusCode, raw)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, raw = getBody(t, srv, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "draining") {
		t.Fatalf("draining /readyz = %d %q, want 503 draining", resp.StatusCode, raw)
	}
	if resp, _ := getBody(t, srv, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200 (process is alive)", resp.StatusCode)
	}
}

// TestHTTPRequestIDEcho: a well-formed client X-Request-ID comes back on
// the response; a missing or malformed one is replaced by a generated ID.
func TestHTTPRequestIDEcho(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, _ := postJSONWithID(t, srv, "/estimate", `{"queries":["//book/title"]}`, "req-echo-1")
	if got := resp.Header.Get("X-Request-ID"); got != "req-echo-1" {
		t.Fatalf("echoed X-Request-ID = %q, want req-echo-1", got)
	}

	gen := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, bad := range []string{"", "has space"} {
		resp, _ := postJSONWithID(t, srv, "/estimate", `{"queries":["//book/title"]}`, bad)
		if got := resp.Header.Get("X-Request-ID"); !gen.MatchString(got) {
			t.Fatalf("X-Request-ID for client id %q = %q, want generated 16 hex digits", bad, got)
		}
	}
}

// TestHTTPRequestIDInErrorEnvelope: whole-request failures echo the
// request ID inside the JSON error body, so a client log line holds
// everything needed to find the trace.
func TestHTTPRequestIDInErrorEnvelope(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, raw := postJSONWithID(t, srv, "/estimate", `{"queries":[]}`, "req-err-1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var body map[string]string
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if body["error"] == "" || body["request_id"] != "req-err-1" {
		t.Fatalf("error envelope = %v, want error text and request_id req-err-1", body)
	}
}

// TestHTTPDebugTraces: an estimate request leaves one trace tree in
// /debug/traces whose root carries the client's request ID and whose
// children are the per-estimate pipeline spans.
func TestHTTPDebugTraces(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	postJSONWithID(t, srv, "/estimate", `{"queries":["//book[year>1990]/title"]}`, "req-trace-1")

	resp, raw := getBody(t, srv, "/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var tr TracesResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	var fam *obs.FamilySnapshot
	for i := range tr.Families {
		if tr.Families[i].Family == "POST /estimate" {
			fam = &tr.Families[i]
		}
	}
	if fam == nil {
		t.Fatalf("families = %+v, want POST /estimate", tr.Families)
	}
	root := fam.Recent[0]
	if root.RequestID != "req-trace-1" {
		t.Fatalf("root request ID = %q, want req-trace-1", root.RequestID)
	}
	if root.Nanos <= 0 {
		t.Fatalf("root span nanos = %d, want > 0", root.Nanos)
	}
	var est *obs.SpanSnapshot
	for i := range root.Spans {
		if root.Spans[i].Name == "estimate" {
			est = &root.Spans[i]
		}
	}
	if est == nil {
		t.Fatalf("root children = %+v, want an estimate span", root.Spans)
	}
	if est.Detail == "" || len(est.Spans) == 0 {
		t.Fatalf("estimate span = %+v, want canonical detail and pipeline-stage children", est)
	}
}

// TestHTTPDebugSLO: without objectives the endpoint reports disabled;
// with objectives, traffic lands in the trailing windows.
func TestHTTPDebugSLO(t *testing.T) {
	plain := New(newTestSynopsis(t))
	srv := httptest.NewServer(plain.Handler())
	resp, raw := getBody(t, srv, "/debug/slo")
	srv.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if rep.Enabled {
		t.Fatalf("default service SLO report = %+v, want disabled", rep)
	}

	svc := New(newTestSynopsis(t), WithSLO(obs.SLOConfig{
		Availability:     0.999,
		LatencyObjective: 5 * time.Second,
	}))
	srv = httptest.NewServer(svc.Handler())
	defer srv.Close()
	postJSON(t, srv, "/estimate", `{"queries":["//book/title","//journal/title"]}`)
	_, raw = getBody(t, srv, "/debug/slo")
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if !rep.Enabled || rep.AvailabilityObjective != 0.999 || rep.LatencyObjective != "5s" {
		t.Fatalf("report = %+v, want enabled with configured objectives", rep)
	}
	if rep.LatencyTarget != 0.99 {
		t.Fatalf("latency target = %v, want defaulted 0.99", rep.LatencyTarget)
	}
	if len(rep.Windows) != 2 || rep.Windows[0].Window != "5m" || rep.Windows[1].Window != "1h" {
		t.Fatalf("windows = %+v, want 5m then 1h", rep.Windows)
	}
	if got := rep.Windows[0].Total; got != 2 {
		t.Fatalf("5m window total = %d, want 2", got)
	}

	// The scrape mirrors the same numbers as xcluster_slo_* series.
	_, raw = getBody(t, srv, "/metrics")
	for _, want := range []string{
		"xcluster_slo_availability_objective 0.999",
		`xcluster_slo_window_requests{window="5m"} 2`,
		`xcluster_slo_burn_rate{slo="availability",window="5m"} 0`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHTTPMetricsRuntimeSeries: the scrape carries the sampled
// runtime-telemetry series.
func TestHTTPMetricsRuntimeSeries(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	postJSON(t, srv, "/estimate", `{"queries":["//book/title"]}`)
	_, raw := getBody(t, srv, "/metrics")
	for _, want := range []string{
		"# TYPE xcluster_go_goroutines gauge",
		"# TYPE xcluster_go_heap_allocs_total counter",
		`xcluster_go_gc_pause_seconds{quantile="0.99"}`,
		`xcluster_go_sched_latency_seconds{quantile="0.5"}`,
		"xcluster_go_estimate_allocs_per_op",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHTTPSlowLogRequestID: slow-log entries captured during an HTTP
// request carry that request's correlation ID.
func TestHTTPSlowLogRequestID(t *testing.T) {
	svc := New(newTestSynopsis(t), WithSlowQueryLog(time.Nanosecond, 4))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	postJSONWithID(t, srv, "/estimate", `{"queries":["//book[year>1990]/title"]}`, "req-slow-1")

	_, raw := getBody(t, srv, "/debug/slowlog")
	var sl SlowLogResponse
	if err := json.Unmarshal(raw, &sl); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if len(sl.Entries) == 0 {
		t.Fatal("no slow-log entries captured")
	}
	if got := sl.Entries[0].RequestID; got != "req-slow-1" {
		t.Fatalf("slow-log request ID = %q, want req-slow-1", got)
	}
}
