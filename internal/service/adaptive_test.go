package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xcluster/internal/core"
)

// legacySynopsis strips the build fingerprint's budgets and plan,
// emulating an artifact from before budgets were recorded.
func legacySynopsis(t *testing.T) *core.Synopsis {
	t.Helper()
	syn := newTestSynopsis(t)
	fp := syn.Fingerprint()
	fp.StructBudget, fp.ValueBudget = 0, 0
	fp.Plan = core.BudgetPlan{}
	syn.SetFingerprint(fp)
	return syn
}

// profileTraffic pushes the test workload through the service so the
// profiler has a live class mix to plan from.
func profileTraffic(t *testing.T, svc *Service) {
	t.Helper()
	for _, q := range parseWorkload(t) {
		if _, err := svc.Estimate(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRebuildBudgetPrecedence pins the documented budget chain:
// explicit options > adaptive plan > fingerprint budgets >
// WithRebuildBudgets defaults > the serving synopsis's actual sizes.
func TestRebuildBudgetPrecedence(t *testing.T) {
	tree := testTree(t)

	t.Run("explicit beats fingerprint and planner", func(t *testing.T) {
		svc := New(newTestSynopsis(t), WithDocument(tree))
		defer svc.Close()
		profileTraffic(t, svc)
		ev, err := svc.Rebuild(context.Background(), RebuildOptions{
			StructBudget: 700, ValueBudget: 300, Adaptive: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fp := svc.Synopsis().Fingerprint()
		if fp.StructBudget != 700 || fp.ValueBudget != 300 {
			t.Fatalf("explicit budgets lost: got %d/%d", fp.StructBudget, fp.ValueBudget)
		}
		// The operator override wins over Adaptive, so the plan stays
		// static — the planner must not have re-split the total.
		if ev.Plan == nil || ev.Plan.Provenance != core.ProvenanceStatic {
			t.Fatalf("explicit rebuild plan = %+v, want static provenance", ev.Plan)
		}
	})

	t.Run("fingerprint budgets inherited", func(t *testing.T) {
		svc := New(newTestSynopsis(t), WithDocument(tree), WithRebuildBudgets(9999, 9999))
		defer svc.Close()
		if _, err := svc.Rebuild(context.Background(), RebuildOptions{}); err != nil {
			t.Fatal(err)
		}
		// newTestSynopsis was built at 512/512; the fingerprint outranks
		// the WithRebuildBudgets defaults.
		fp := svc.Synopsis().Fingerprint()
		if fp.StructBudget != 512 || fp.ValueBudget != 512 {
			t.Fatalf("fingerprint budgets not inherited: got %d/%d", fp.StructBudget, fp.ValueBudget)
		}
	})

	t.Run("defaults cover legacy artifacts", func(t *testing.T) {
		svc := New(legacySynopsis(t), WithDocument(tree), WithRebuildBudgets(800, 400))
		defer svc.Close()
		if _, err := svc.Rebuild(context.Background(), RebuildOptions{}); err != nil {
			t.Fatal(err)
		}
		fp := svc.Synopsis().Fingerprint()
		if fp.StructBudget != 800 || fp.ValueBudget != 400 {
			t.Fatalf("WithRebuildBudgets defaults not used: got %d/%d", fp.StructBudget, fp.ValueBudget)
		}
	})

	t.Run("actual sizes are the last resort", func(t *testing.T) {
		syn := legacySynopsis(t)
		wantStr, wantVal := syn.StructBytes(), syn.ValueBytes()
		svc := New(syn, WithDocument(tree))
		defer svc.Close()
		if _, err := svc.Rebuild(context.Background(), RebuildOptions{}); err != nil {
			t.Fatal(err)
		}
		fp := svc.Synopsis().Fingerprint()
		if fp.StructBudget != wantStr || fp.ValueBudget != wantVal {
			t.Fatalf("actual sizes not used: got %d/%d, want %d/%d",
				fp.StructBudget, fp.ValueBudget, wantStr, wantVal)
		}
	})

	t.Run("adaptive re-splits the inherited total", func(t *testing.T) {
		svc := New(newTestSynopsis(t), WithDocument(tree), WithAdaptiveBudget())
		defer svc.Close()
		profileTraffic(t, svc)
		ev, err := svc.Rebuild(context.Background(), RebuildOptions{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		if ev.Plan == nil || ev.Plan.Provenance != core.ProvenanceWorkload {
			t.Fatalf("adaptive rebuild plan = %+v, want workload provenance", ev.Plan)
		}
		if ev.Plan.TotalBytes != 1024 {
			t.Fatalf("planner changed the total: %d, want 1024", ev.Plan.TotalBytes)
		}
	})
}

// TestAdaptiveRebuildSwapEvent is the acceptance contract: a
// workload-adaptive rebuild's SwapEvent carries the plan with workload
// provenance, the WorkloadProfile fingerprint it derived from, and the
// realized split for planned-vs-actual comparison.
func TestAdaptiveRebuildSwapEvent(t *testing.T) {
	svc := New(newTestSynopsis(t), WithDocument(testTree(t)))
	defer svc.Close()
	profileTraffic(t, svc)

	ev, err := svc.Rebuild(context.Background(), RebuildOptions{Adaptive: true, Reason: "drift:range"})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Plan == nil {
		t.Fatal("adaptive swap event has no plan")
	}
	if ev.Plan.Provenance != core.ProvenanceWorkload {
		t.Fatalf("plan provenance = %q, want workload", ev.Plan.Provenance)
	}
	if ev.Plan.WorkloadFingerprint == "" {
		t.Fatal("plan lost its workload fingerprint")
	}
	if ev.ActualSplit == nil {
		t.Fatal("swap event has no actual split")
	}
	if got := ev.ActualSplit.NodeBytes + ev.ActualSplit.EdgeBytes +
		ev.ActualSplit.HistogramBytes + ev.ActualSplit.PSTBytes + ev.ActualSplit.TermHistBytes; got <= 0 {
		t.Fatalf("actual split is empty: %+v", ev.ActualSplit)
	}
	// The installed generation serves under the planned split.
	if fp := svc.Synopsis().Fingerprint(); fp.Plan != *ev.Plan {
		t.Fatalf("serving plan %+v != swap event plan %+v", fp.Plan, *ev.Plan)
	}

	// The planner run is recorded for /debug/budget.
	rep := svc.BudgetReport()
	if rep.LastDecision == nil || rep.LastInputs == nil {
		t.Fatal("budget report lost the last planner run")
	}
	if rep.Current.Provenance != core.ProvenanceWorkload {
		t.Fatalf("budget report current plan = %+v", rep.Current)
	}
	if rep.Next == nil {
		t.Fatalf("budget report has no dry-run decision: %+v", rep)
	}
}

// TestAdaptiveRebuildNeedsProfiler: Adaptive fails typed when workload
// profiling was disabled.
func TestAdaptiveRebuildNeedsProfiler(t *testing.T) {
	svc := New(newTestSynopsis(t), WithDocument(testTree(t)), WithWorkloadProfile(-1, 0))
	defer svc.Close()
	if _, err := svc.Rebuild(context.Background(), RebuildOptions{Adaptive: true}); !errors.Is(err, ErrNoProfiler) {
		t.Fatalf("adaptive rebuild without profiler: %v, want ErrNoProfiler", err)
	}
}

// TestHTTPBudgetAndAdaptiveRebuild drives the HTTP surface: POST
// /admin/rebuild {"adaptive":true} plans from the live profile, and
// GET /debug/budget reports the plan, splits, and dry-run.
func TestHTTPBudgetAndAdaptiveRebuild(t *testing.T) {
	svc := New(newTestSynopsis(t), WithDocument(testTree(t)), WithAdaptiveBudget())
	defer svc.Close()
	profileTraffic(t, svc)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/admin/rebuild", "application/json",
		strings.NewReader(`{"adaptive":true,"reason":"ops"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild status = %d", resp.StatusCode)
	}
	var ev SwapEvent
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Plan == nil || ev.Plan.Provenance != core.ProvenanceWorkload {
		t.Fatalf("HTTP adaptive rebuild plan = %+v", ev.Plan)
	}

	bresp, err := http.Get(srv.URL + "/debug/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/budget status = %d", bresp.StatusCode)
	}
	var rep BudgetResponse
	if err := json.NewDecoder(bresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Adaptive {
		t.Fatal("budget report does not reflect WithAdaptiveBudget")
	}
	if rep.Current.Provenance != core.ProvenanceWorkload {
		t.Fatalf("budget report current = %+v", rep.Current)
	}
	if rep.Next == nil || rep.LastDecision == nil {
		t.Fatalf("budget report missing planner runs: %+v", rep)
	}
	if rep.Actual.NodeBytes <= 0 {
		t.Fatalf("budget report actual split empty: %+v", rep.Actual)
	}

	// The scrape surface exports the plan gauges.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, series := range []string{
		"xcluster_budget_plan_total_bytes",
		`xcluster_budget_planned_bytes{component="struct"}`,
		`xcluster_budget_actual_bytes{component="histogram"}`,
		`xcluster_budget_plan_provenance{provenance="workload"} 1`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("metrics missing %s", series)
		}
	}
}
