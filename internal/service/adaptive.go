package service

import (
	"time"

	"xcluster/internal/budget"
	"xcluster/internal/core"
	"xcluster/internal/profile"
)

// WithAdaptiveBudget turns on workload-adaptive budget planning:
// drift-triggered rebuilds derive their BudgetPlan from the live
// workload profile via the internal/budget planner instead of
// inheriting the previous split verbatim. Manual rebuilds opt in per
// request (RebuildOptions.Adaptive, or {"adaptive":true} on
// POST /admin/rebuild). Requires the workload profiler (on by
// default); adaptive rebuilds fail with ErrNoProfiler when it was
// disabled.
func WithAdaptiveBudget() Option {
	return func(s *Service) { s.adaptiveBudget = true }
}

// AdaptiveBudget reports whether WithAdaptiveBudget was configured.
func (s *Service) AdaptiveBudget() bool { return s.adaptiveBudget }

// actualSplit measures the synopsis's realized byte split by component
// — the planner's presence/proportion signal and the "actual" half of
// every planned-vs-actual comparison.
func actualSplit(syn *core.Synopsis) profile.BudgetSplit {
	b := synopsisBudget(syn)
	return profile.BudgetSplit{
		NodeBytes:      b.NodeBytes,
		EdgeBytes:      b.EdgeBytes,
		HistogramBytes: b.HistogramBytes,
		PSTBytes:       b.PSTBytes,
		TermHistBytes:  b.TermHistBytes,
	}
}

// budgetInputs assembles the planner inputs an adaptive rebuild of
// total bytes would run on right now: the live profile (with accuracy
// joined), the serving synopsis's actual split, and the serving plan
// for hysteresis.
func (s *Service) budgetInputs(total int) (budget.Inputs, error) {
	if s.prof == nil {
		return budget.Inputs{}, ErrNoProfiler
	}
	prof := s.prof.Profile(time.Now(), s.mon.Report())
	sl := s.cur.Load()
	return budget.Inputs{
		TotalBytes:          total,
		Classes:             prof.Classes,
		WorkloadFingerprint: prof.Fingerprint,
		Actual:              actualSplit(sl.syn),
		Current:             sl.syn.Fingerprint().Plan,
	}, nil
}

// planAdaptive runs the planner for a rebuild of total bytes and
// records the inputs and decision for GET /debug/budget.
func (s *Service) planAdaptive(total int) (budget.Decision, error) {
	in, err := s.budgetInputs(total)
	if err != nil {
		return budget.Decision{}, err
	}
	d, err := budget.Plan(in)
	if err != nil {
		return budget.Decision{}, err
	}
	s.planMu.Lock()
	s.lastPlanInputs = &in
	s.lastPlanDecision = &d
	s.planMu.Unlock()
	return d, nil
}

// rebuildTotal is the total byte budget a budget-less rebuild inherits:
// per group, the serving fingerprint's budgets, then the
// WithRebuildBudgets defaults, then the serving synopsis's actual
// sizes — the same chain rebuild walks (steps 3–5 of the precedence
// documented there).
func (s *Service) rebuildTotal() int {
	cur := s.cur.Load()
	fp := cur.syn.Fingerprint()
	bstr := fp.StructBudget
	if bstr <= 0 {
		bstr = s.defaultBstr
	}
	if bstr <= 0 {
		bstr = cur.syn.StructBytes()
	}
	bval := fp.ValueBudget
	if bval <= 0 {
		bval = s.defaultBval
	}
	if bval <= 0 {
		bval = cur.syn.ValueBytes()
	}
	return bstr + bval
}

// BudgetResponse is the body of GET /debug/budget: the serving
// generation's plan and realized split, the planner run behind the
// last adaptive rebuild, and a dry-run of what the next adaptive
// rebuild would choose on the live profile.
type BudgetResponse struct {
	// Adaptive reports whether WithAdaptiveBudget is configured (drift
	// rebuilds plan automatically).
	Adaptive bool `json:"adaptive"`
	// Current is the plan the serving synopsis was built under (zero
	// for legacy artifacts built before plans existed).
	Current core.BudgetPlan `json:"current,omitzero"`
	// Actual is the serving synopsis's realized byte split, for
	// planned-vs-actual comparison against Current.
	Actual profile.BudgetSplit `json:"actual"`
	// LastInputs and LastDecision are the planner run behind the most
	// recent adaptive rebuild of this process (absent before the first).
	LastInputs   *budget.Inputs   `json:"last_inputs,omitempty"`
	LastDecision *budget.Decision `json:"last_decision,omitempty"`
	// Next is a dry-run: the decision an adaptive rebuild started now
	// would get, on the live profile and inherited total. NextError
	// explains its absence (e.g. profiling disabled).
	Next      *budget.Decision `json:"next,omitempty"`
	NextError string           `json:"next_error,omitempty"`
}

// BudgetReport builds the GET /debug/budget body. Exported so the
// multi-tenant catalog front-end renders the same view per shard.
func (s *Service) BudgetReport() BudgetResponse {
	sl := s.cur.Load()
	resp := BudgetResponse{
		Adaptive: s.adaptiveBudget,
		Current:  sl.syn.Fingerprint().Plan,
		Actual:   actualSplit(sl.syn),
	}
	s.planMu.Lock()
	resp.LastInputs, resp.LastDecision = s.lastPlanInputs, s.lastPlanDecision
	s.planMu.Unlock()
	// The dry-run never touches lastPlan state: /debug/budget is
	// read-only and must not perturb the hysteresis history.
	in, err := s.budgetInputs(s.rebuildTotal())
	if err == nil {
		var d budget.Decision
		if d, err = budget.Plan(in); err == nil {
			resp.Next = &d
		}
	}
	if err != nil {
		resp.NextError = err.Error()
	}
	return resp
}

// syncBudgetGauges mirrors the serving plan and realized split into
// xcluster_budget_* series at scrape time.
func (s *Service) syncBudgetGauges() {
	r := s.reg
	sl := s.cur.Load()
	plan := sl.syn.Fingerprint().Plan
	split := actualSplit(sl.syn)
	r.Gauge("xcluster_budget_plan_total_bytes", "").Set(float64(plan.TotalBytes))
	for _, prov := range []core.Provenance{core.ProvenanceStatic, core.ProvenanceAuto, core.ProvenanceWorkload} {
		v := 0.0
		if plan.Provenance == prov {
			v = 1
		}
		r.Gauge("xcluster_budget_plan_provenance", `provenance="`+string(prov)+`"`).Set(v)
	}
	for _, c := range []struct {
		component       string
		planned, actual int
	}{
		{"struct", plan.StructBudget(), split.NodeBytes + split.EdgeBytes},
		{"histogram", plan.HistogramBytes, split.HistogramBytes},
		{"pst", plan.PSTBytes, split.PSTBytes},
		{"termhist", plan.TermHistBytes, split.TermHistBytes},
	} {
		label := `component="` + c.component + `"`
		r.Gauge("xcluster_budget_planned_bytes", label).Set(float64(c.planned))
		r.Gauge("xcluster_budget_actual_bytes", label).Set(float64(c.actual))
	}
}
