package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"xcluster/internal/core"
	"xcluster/internal/query"
)

func getBody(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestHTTPTrace exercises "trace":true: every result carries spans that
// start at parse, cover the pipeline stages, and sum to at most the
// reported total.
func TestHTTPTrace(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := `{"queries":["//book[year>1990]/title","//journal/title"],"trace":true}`
	resp, raw := postJSON(t, srv, "/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var er EstimateResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	for i, res := range er.Results {
		tr := res.Trace
		if tr == nil {
			t.Fatalf("result %d has no trace: %+v", i, res)
		}
		if len(tr.Spans) == 0 || tr.Spans[0].Stage != core.StageParse {
			t.Fatalf("result %d spans = %+v, want parse first", i, tr.Spans)
		}
		var sum int64
		seen := make(map[string]bool)
		for _, sp := range tr.Spans {
			if sp.Nanos < 0 {
				t.Errorf("result %d: negative span %+v", i, sp)
			}
			sum += sp.Nanos
			seen[sp.Stage] = true
		}
		if sum > tr.TotalNanos {
			t.Errorf("result %d: span sum %d exceeds total %d", i, sum, tr.TotalNanos)
		}
		// The batch path compiles each shape up front (prepareShapes), so
		// the traced call hits the plan cache rather than compiling.
		for _, stage := range []string{core.StageCanonicalize, core.StagePlanCache, core.StageExecute} {
			if !seen[stage] {
				t.Errorf("result %d: cold trace missing stage %q: %+v", i, stage, tr.Spans)
			}
		}
		if tr.ResultCacheHit {
			t.Errorf("result %d: cold request reported a result-cache hit", i)
		}
		if !tr.PlanCacheHit {
			t.Errorf("result %d: want plan_cache_hit (batch pre-compiles shapes)", i)
		}
	}

	// The identical request again: the result cache answers, and the
	// trace says so.
	_, raw = postJSON(t, srv, "/estimate", body)
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	for i, res := range er.Results {
		if res.Trace == nil || !res.Trace.ResultCacheHit {
			t.Errorf("repeat result %d: want result_cache_hit, got %+v", i, res.Trace)
		}
	}

	// Without "trace":true no trace is attached.
	_, raw = postJSON(t, srv, "/estimate", `{"queries":["//book/title"]}`)
	var plain EstimateResponse
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if plain.Results[0].Trace != nil {
		t.Errorf("untraced request returned a trace: %+v", plain.Results[0].Trace)
	}
}

// TestHTTPMetrics scrapes /metrics after traffic and checks the
// families the service promises, including that the mirrored estimator
// cache counters agree exactly with /stats.
func TestHTTPMetrics(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	postJSON(t, srv, "/estimate", `{"queries":["//book/title","//book[year>1990]"]}`)
	postJSON(t, srv, "/estimate", `{"queries":["//book/title"]}`)
	// Pushed ground truth lands in the accuracy series.
	postJSON(t, srv, "/feedback", `{"feedback":[{"query":"//book/title","true":120}]}`)

	resp, raw := getBody(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		// 3 estimates plus the one the feedback handler runs to pair
		// with the pushed ground truth.
		`xcluster_requests_total{outcome="ok"} 4`,
		"# TYPE xcluster_request_seconds histogram",
		"xcluster_request_seconds_count 4",
		`xcluster_pipeline_stage_seconds_bucket{stage="execute",`,
		`xcluster_pipeline_stage_seconds_bucket{stage="parse",`,
		`xcluster_cache_lookups_total{cache="result",outcome="hit"} 2`,
		`xcluster_cache_lookups_total{cache="result",outcome="miss"} 2`,
		`xcluster_synopsis_bytes{component="struct"}`,
		"xcluster_batches_total 2",
		"xcluster_batch_queries_total 3",
		"# HELP xcluster_requests_total Estimate queries answered, by outcome.",
		// The accuracy series exist from startup for every class; the
		// feedback pair above is the one struct observation.
		"# HELP xcluster_accuracy_error Relative error of shadow-checked estimates, by predicate class.",
		"# TYPE xcluster_accuracy_error histogram",
		`xcluster_accuracy_error_bucket{class="struct",le="+Inf"} 1`,
		`xcluster_accuracy_samples_total{class="struct"} 1`,
		`xcluster_accuracy_samples_total{class="range"} 0`,
		`xcluster_accuracy_drifted{class="struct"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The mirrored counters must equal the /stats numbers bit-for-bit:
	// both come from the estimator's own cache counters.
	st := svc.Stats()
	for _, c := range []struct {
		series string
		want   uint64
	}{
		{`xcluster_estimator_cache_hits_total{cache="result"} `, st.Cache.Hits},
		{`xcluster_estimator_cache_misses_total{cache="result"} `, st.Cache.Misses},
		{`xcluster_estimator_cache_hits_total{cache="plan"} `, st.PlanCache.Hits},
		{`xcluster_estimator_cache_misses_total{cache="plan"} `, st.PlanCache.Misses},
	} {
		found := false
		for _, line := range strings.Split(text, "\n") {
			v, ok := strings.CutPrefix(line, c.series)
			if !ok {
				continue
			}
			found = true
			got, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				t.Errorf("parsing %q: %v", line, err)
			} else if got != c.want {
				t.Errorf("%s= %d, /stats says %d", c.series, got, c.want)
			}
		}
		if !found {
			t.Errorf("/metrics missing series %q", c.series)
		}
	}
}

// TestHTTPSlowLog drives a service whose slow-query threshold captures
// everything, then reads the log back over HTTP.
func TestHTTPSlowLog(t *testing.T) {
	svc := New(newTestSynopsis(t), WithSlowQueryLog(time.Nanosecond, 4))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	postJSON(t, srv, "/estimate", `{"queries":["//book[year>1990]/title","//journal/title"]}`)

	resp, raw := getBody(t, srv, "/debug/slowlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sl SlowLogResponse
	if err := json.Unmarshal(raw, &sl); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if sl.ThresholdNanos != 1 {
		t.Errorf("threshold_nanos = %d, want 1", sl.ThresholdNanos)
	}
	if sl.Total != 2 || len(sl.Entries) != 2 {
		t.Fatalf("total = %d, entries = %d, want 2 and 2", sl.Total, len(sl.Entries))
	}
	for _, e := range sl.Entries {
		if e.Query == "" || e.TotalNanos <= 0 {
			t.Errorf("entry = %+v, want query and positive total", e)
		}
		// Total is the human-readable rendering of TotalNanos.
		if e.Total != time.Duration(e.TotalNanos).String() {
			t.Errorf("entry total = %q, want %q", e.Total, time.Duration(e.TotalNanos).String())
		}
		if !strings.Contains(e.Plan, "subproblems") {
			t.Errorf("entry plan = %q, want a plan summary", e.Plan)
		}
		if len(e.Spans) == 0 {
			t.Errorf("entry %q has no spans", e.Query)
		}
	}
	if st := svc.Stats(); st.SlowQueries != 2 {
		t.Errorf("Stats().SlowQueries = %d, want 2", st.SlowQueries)
	}

	// ?limit=N caps the entries while Total still counts everything.
	_, raw = getBody(t, srv, "/debug/slowlog?limit=1")
	var capped SlowLogResponse
	if err := json.Unmarshal(raw, &capped); err != nil {
		t.Fatal(err)
	}
	if len(capped.Entries) != 1 || capped.Total != 2 {
		t.Errorf("limit=1: entries = %d, total = %d, want 1 and 2", len(capped.Entries), capped.Total)
	}
	if resp, _ := getBody(t, srv, "/debug/slowlog?limit=-3"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit status = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPSlowLogDisabled: the default service has no slow-query log,
// and the endpoint reports it as disabled rather than failing.
func TestHTTPSlowLogDisabled(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	postJSON(t, srv, "/estimate", `{"queries":["//book/title"]}`)
	resp, raw := getBody(t, srv, "/debug/slowlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sl SlowLogResponse
	if err := json.Unmarshal(raw, &sl); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if sl.ThresholdNanos != 0 || sl.Total != 0 || len(sl.Entries) != 0 {
		t.Errorf("disabled slowlog = %+v, want zero threshold and no entries", sl)
	}
}

func TestHTTPBuildInfo(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, raw := getBody(t, srv, "/buildinfo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var bi BuildInfo
	if err := json.Unmarshal(raw, &bi); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if bi.GoVersion == "" {
		t.Errorf("buildinfo = %+v, want a go_version", bi)
	}
	if bi.Module != "xcluster" {
		t.Errorf("module = %q, want xcluster", bi.Module)
	}
	if s := bi.String(); !strings.Contains(s, bi.GoVersion) {
		t.Errorf("String() = %q, want it to include the Go version", s)
	}
}

// TestDrain: Drain returns immediately with nothing in flight, honors
// its context while work is in flight, and completes once the work does.
func TestDrain(t *testing.T) {
	svc := New(newTestSynopsis(t))

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("idle Drain = %v", err)
	}

	svc.inflightWG.Add(1) // simulate an in-flight estimate
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Fatal("Drain with in-flight work and an expired context returned nil")
	}

	done := make(chan error, 1)
	go func() { done <- svc.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	svc.inflightWG.Done()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain after work finished = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after the in-flight work finished")
	}
}

// TestStatsMatchesRegistry: the one-histogram design means /stats
// percentiles and /metrics are read from the same series.
func TestStatsMatchesRegistry(t *testing.T) {
	svc := New(newTestSynopsis(t))
	for _, qs := range testWorkload {
		if _, err := svc.Estimate(context.Background(), query.MustParse(qs)); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	snap := svc.reqHist.Snapshot()
	if st.LatencySamples != snap.Samples {
		t.Errorf("LatencySamples = %d, histogram says %d", st.LatencySamples, snap.Samples)
	}
	if st.P50 != secondsDuration(snap.P50) || st.P99 != secondsDuration(snap.P99) {
		t.Errorf("stats percentiles %v/%v diverge from histogram %g/%g",
			st.P50, st.P99, snap.P50, snap.P99)
	}
	if got := svc.served.Value(); got != st.Served {
		t.Errorf("served counter = %d, stats = %d", got, st.Served)
	}
}
