package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"xcluster/internal/core"
	"xcluster/internal/profile"
)

// Lifecycle errors, tested with errors.Is by the HTTP layer.
var (
	// ErrNoSource reports a Reload on a service configured without
	// WithSynopsisSource.
	ErrNoSource = errors.New("service: no synopsis source configured (WithSynopsisSource)")
	// ErrNoDocument reports a Rebuild on a service without a resident
	// source document (WithDocument).
	ErrNoDocument = errors.New("service: no resident document to rebuild from (WithDocument)")
	// ErrRebuildInProgress reports a Rebuild submitted while another
	// rebuild is running; rebuilds are single-flight.
	ErrRebuildInProgress = errors.New("service: rebuild already in progress")
)

// slot is one installed synopsis generation: the synopsis, its
// estimator, and when it went live. A slot is immutable; the lifecycle
// replaces the whole slot atomically, and each estimate pins the slot
// it started on, so a request never observes a half-swapped pair.
type slot struct {
	syn       *core.Synopsis
	est       *core.Estimator
	installed time.Time
}

// newSlot builds a fully configured slot for syn: a fresh estimator
// carrying the service's stored configuration and the shared metric
// sink. Every generation is constructed through here, so a rebuilt
// estimator is indistinguishable from a cold start over the same
// synopsis.
func (s *Service) newSlot(syn *core.Synopsis) *slot {
	est := core.NewEstimator(syn)
	if s.cacheCapSet {
		est.SetCacheCapacity(s.cacheCap)
	}
	if s.planCapSet {
		est.SetPlanCacheCapacity(s.planCap)
	}
	est.UninformedSel = s.uninformedSel
	est.SetMetricSink(s.reg)
	return &slot{syn: syn, est: est, installed: time.Now()}
}

// SwapEvent describes one completed synopsis hot swap.
type SwapEvent struct {
	// OldGeneration and NewGeneration are the build generations before
	// and after the swap.
	OldGeneration uint64 `json:"old_generation"`
	NewGeneration uint64 `json:"new_generation"`
	// Reason records what triggered the swap ("reload", "rebuild",
	// "drift:<class>", ...).
	Reason string `json:"reason"`
	// Nodes and TotalBytes describe the installed synopsis.
	Nodes      int `json:"nodes"`
	TotalBytes int `json:"total_bytes"`
	// Duration is the wall time of the whole operation (load or build,
	// estimator construction, swap).
	Duration time.Duration `json:"-"`
	// DurationString mirrors Duration for the JSON rendering.
	DurationString string `json:"duration"`
	// Build carries the construction statistics when the swap came from
	// a Rebuild (nil for reloads, whose synopsis was built elsewhere).
	Build *core.BuildStats `json:"build,omitempty"`
	// Plan is the budget plan the installed generation was built under
	// (provenance included; nil for legacy artifacts that carry none).
	// ActualSplit is the realized byte split, so every swap records
	// planned versus actual.
	Plan        *core.BudgetPlan     `json:"plan,omitempty"`
	ActualSplit *profile.BudgetSplit `json:"actual_split,omitempty"`
	// WorkloadFingerprint is the workload profiler's mix fingerprint at
	// swap time (empty when profiling is disabled), recording which
	// traffic mix was live when the generation was installed — the
	// anchor for auditing workload-adaptive rebuilds later.
	WorkloadFingerprint string `json:"workload_fingerprint,omitempty"`
}

// WithSynopsisSource configures where Reload re-reads the synopsis from
// (e.g. a closure reopening the -syn file). Without it Reload fails
// with ErrNoSource.
func WithSynopsisSource(load func(context.Context) (*core.Synopsis, error)) Option {
	return func(s *Service) { s.source = load }
}

// WithOnSwap installs an observer fired after every completed hot swap
// (initial installation excluded), on the goroutine that performed the
// swap. Repeated options chain in installation order.
func WithOnSwap(fn func(SwapEvent)) Option {
	return func(s *Service) {
		if prev := s.onSwap; prev != nil {
			s.onSwap = func(ev SwapEvent) {
				prev(ev)
				fn(ev)
			}
			return
		}
		s.onSwap = fn
	}
}

// WithRebuildOnDrift makes an accuracy drift transition trigger a
// background Rebuild (single-flight; a drift storm cannot stack
// rebuilds). Requires a resident document; without one the triggered
// rebuilds fail into RebuildStatus and the drift logging still fires.
func WithRebuildOnDrift() Option {
	return func(s *Service) { s.rebuildOnDrift = true }
}

// WithRebuildBudgets sets the default byte budgets Rebuild uses when
// the request does not carry its own and the current synopsis's
// fingerprint has none (e.g. it came from a legacy v1 artifact).
func WithRebuildBudgets(structBudget, valueBudget int) Option {
	return func(s *Service) { s.defaultBstr, s.defaultBval = structBudget, valueBudget }
}

// WithReferenceOptions sets the reference-synopsis options Rebuild uses
// (value paths, summary detail). The zero value summarizes every
// value-bearing path with default detail.
func WithReferenceOptions(o core.ReferenceOptions) Option {
	return func(s *Service) { s.refOpts = o }
}

// WithBuildWorkers sets the number of goroutines Rebuild's compression
// phase uses to evaluate merge candidates (0 = GOMAXPROCS). The count
// affects only build speed, never the produced synopsis.
func WithBuildWorkers(n int) Option {
	return func(s *Service) { s.buildWorkers = n }
}

// Generation returns the build generation of the currently served
// synopsis.
func (s *Service) Generation() uint64 {
	return s.cur.Load().syn.Fingerprint().Generation
}

// Installed returns when the current generation went live.
func (s *Service) Installed() time.Time {
	return s.cur.Load().installed
}

// install stamps syn with the next generation, builds its estimator,
// and swaps it in. In-flight estimates finish on the slot they pinned;
// the outgoing estimator's result and plan caches are invalidated in
// one atomic epoch bump so nothing computed against the old generation
// can be served again.
func (s *Service) install(syn *core.Synopsis, reason string, d time.Duration, build *core.BuildStats) SwapEvent {
	s.swapMu.Lock()
	old := s.cur.Load()
	fp := syn.Fingerprint()
	fp.Generation = old.syn.Fingerprint().Generation + 1
	syn.SetFingerprint(fp)
	s.cur.Store(s.newSlot(syn))
	s.genGauge.Set(float64(fp.Generation))
	s.swaps.Inc()
	s.swapMu.Unlock()
	old.est.InvalidateCaches()
	split := actualSplit(syn)
	ev := SwapEvent{
		OldGeneration:       old.syn.Fingerprint().Generation,
		NewGeneration:       fp.Generation,
		Reason:              reason,
		Nodes:               syn.NumNodes(),
		TotalBytes:          syn.TotalBytes(),
		Duration:            d,
		DurationString:      d.String(),
		Build:               build,
		ActualSplit:         &split,
		WorkloadFingerprint: s.prof.Fingerprint(time.Now()),
	}
	if plan := fp.Plan; !plan.IsZero() {
		ev.Plan = &plan
	}
	if s.onSwap != nil {
		s.onSwap(ev)
	}
	return ev
}

// Reload re-reads the synopsis through the configured source and hot
// swaps it in (e.g. after `xcluster build` wrote a fresh artifact over
// the served file). Serving continues on the old generation until the
// new one is fully constructed.
func (s *Service) Reload(ctx context.Context) (SwapEvent, error) {
	if s.source == nil {
		return SwapEvent{}, ErrNoSource
	}
	t0 := time.Now()
	syn, err := s.source(ctx)
	if err != nil {
		return SwapEvent{}, fmt.Errorf("service: reload: %w", err)
	}
	if err := syn.Validate(); err != nil {
		return SwapEvent{}, fmt.Errorf("service: reload: %w", err)
	}
	return s.install(syn, "reload", time.Since(t0), nil), nil
}

// RebuildOptions parameterize one Rebuild.
type RebuildOptions struct {
	// StructBudget and ValueBudget are the byte budgets of the new
	// synopsis. Nonpositive values inherit down the precedence chain
	// documented on rebuild.
	StructBudget int `json:"struct_budget,omitempty"`
	ValueBudget  int `json:"value_budget,omitempty"`
	// Adaptive asks the internal/budget planner to re-split the
	// inherited total budget from the live workload profile (ignored
	// when explicit budgets are given — an operator override always
	// wins). Drift-triggered rebuilds set it when WithAdaptiveBudget is
	// configured.
	Adaptive bool `json:"adaptive,omitempty"`
	// Reason is recorded in the swap event and rebuild status
	// ("rebuild" when empty).
	Reason string `json:"reason,omitempty"`
}

// Rebuild phases, reported by RebuildStatus while a rebuild runs.
const (
	PhaseIdle      = "idle"
	PhaseReference = "reference"
	PhaseCompress  = "compress"
	PhaseInstall   = "install"
)

// RebuildStatus is a snapshot of the single-flight rebuilder.
type RebuildStatus struct {
	// Running reports an in-flight rebuild; Phase localizes it
	// (reference → compress → install; "idle" when not running).
	Running bool   `json:"running"`
	Phase   string `json:"phase"`
	// StartedAt is the running rebuild's start time (zero when idle).
	StartedAt time.Time `json:"started_at,omitzero"`
	// LastOutcome ("ok" / "error", empty before the first attempt),
	// LastError, LastDuration and LastGeneration describe the most
	// recently finished rebuild.
	LastOutcome    string        `json:"last_outcome,omitempty"`
	LastError      string        `json:"last_error,omitempty"`
	LastDuration   time.Duration `json:"-"`
	LastDurationMS int64         `json:"last_duration_ms,omitempty"`
	LastGeneration uint64        `json:"last_generation,omitempty"`
	// LastBuildStats is the construction profile of the most recent
	// successful rebuild (pairs evaluated, memo hit rate, phase times).
	LastBuildStats *core.BuildStats `json:"last_build,omitempty"`
}

// RebuildStatus snapshots the rebuilder.
func (s *Service) RebuildStatus() RebuildStatus {
	s.rbMu.Lock()
	defer s.rbMu.Unlock()
	return s.rb
}

// setPhase publishes the running rebuild's phase.
func (s *Service) setPhase(phase string) {
	s.rbMu.Lock()
	s.rb.Phase = phase
	s.rbMu.Unlock()
}

// Rebuild reconstructs the synopsis from the resident source document —
// reference construction, then the budgeted XCLUSTERBUILD compression —
// and hot swaps the result in. It is single-flight (a concurrent call
// fails fast with ErrRebuildInProgress), cancellable through ctx (the
// compression phases poll it), and reports build-phase timings into the
// metrics registry. Serving is never interrupted: estimates keep
// running on the old generation until the swap, and post-swap estimates
// are bit-for-bit what a cold estimator over the same document and
// budgets would produce.
func (s *Service) Rebuild(ctx context.Context, opts RebuildOptions) (SwapEvent, error) {
	if s.doc == nil {
		return SwapEvent{}, ErrNoDocument
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		return SwapEvent{}, ErrRebuildInProgress
	}
	defer s.rebuilding.Store(false)

	t0 := time.Now()
	s.rbMu.Lock()
	s.rb.Running = true
	s.rb.Phase = PhaseReference
	s.rb.StartedAt = t0
	s.rbMu.Unlock()

	ev, err := s.rebuild(ctx, opts, t0)

	s.rbMu.Lock()
	s.rb.Running = false
	s.rb.Phase = PhaseIdle
	s.rb.StartedAt = time.Time{}
	s.rb.LastDuration = time.Since(t0)
	s.rb.LastDurationMS = s.rb.LastDuration.Milliseconds()
	if err != nil {
		s.rb.LastOutcome = "error"
		s.rb.LastError = err.Error()
	} else {
		s.rb.LastOutcome = "ok"
		s.rb.LastError = ""
		s.rb.LastGeneration = ev.NewGeneration
		s.rb.LastBuildStats = ev.Build
	}
	s.rbMu.Unlock()
	if err != nil {
		s.rebuildsErr.Inc()
		return SwapEvent{}, err
	}
	s.rebuildsOK.Inc()
	s.rebuildHist.Observe(ev.Duration.Seconds())
	return ev, nil
}

// rebuild is Rebuild's body: build the new generation off the serving
// path, then install it.
//
// Budget precedence, highest to lowest (contractual — tested by
// TestRebuildBudgetPrecedence, documented in DESIGN.md §16):
//
//  1. Explicit RebuildOptions budgets: an operator override beats
//     everything, including the adaptive planner.
//  2. Adaptive plan: with opts.Adaptive set and no explicit budgets,
//     the internal/budget planner re-splits the total inherited from
//     steps 3–5 according to the live workload profile.
//  3. The serving fingerprint's budgets (rebuild what was built).
//  4. The WithRebuildBudgets defaults (legacy artifacts carry no
//     fingerprint budgets).
//  5. The serving synopsis's actual struct/value sizes (last resort:
//     rebuild at the size being served).
//
// Each group (struct, value) walks 3–5 independently; the adaptive
// planner then redistributes their sum, so step 2 changes the split,
// never the total.
func (s *Service) rebuild(ctx context.Context, opts RebuildOptions, t0 time.Time) (SwapEvent, error) {
	cur := s.cur.Load()
	fp := cur.syn.Fingerprint()
	explicit := opts.StructBudget > 0 || opts.ValueBudget > 0
	if opts.StructBudget <= 0 {
		opts.StructBudget = fp.StructBudget
	}
	if opts.StructBudget <= 0 {
		opts.StructBudget = s.defaultBstr
	}
	if opts.StructBudget <= 0 {
		opts.StructBudget = cur.syn.StructBytes()
	}
	if opts.ValueBudget <= 0 {
		opts.ValueBudget = fp.ValueBudget
	}
	if opts.ValueBudget <= 0 {
		opts.ValueBudget = s.defaultBval
	}
	if opts.ValueBudget <= 0 {
		opts.ValueBudget = cur.syn.ValueBytes()
	}
	if opts.Reason == "" {
		opts.Reason = "rebuild"
	}
	var plan *core.BudgetPlan
	if opts.Adaptive && !explicit {
		d, err := s.planAdaptive(opts.StructBudget + opts.ValueBudget)
		if err != nil {
			return SwapEvent{}, fmt.Errorf("service: rebuild: %w", err)
		}
		p := d.Plan
		plan = &p
		// The plan carries the group budgets; the build resolves them
		// from it (passing both would be a conflict).
		opts.StructBudget, opts.ValueBudget = 0, 0
	}

	ref, err := core.BuildReference(s.doc, s.refOpts)
	if err != nil {
		return SwapEvent{}, fmt.Errorf("service: rebuild: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return SwapEvent{}, fmt.Errorf("service: rebuild: %w", err)
	}
	s.setPhase(PhaseCompress)
	var st core.BuildStats
	built, err := core.XClusterBuildContext(ctx, ref, core.BuildOptions{
		StructBudget: opts.StructBudget,
		ValueBudget:  opts.ValueBudget,
		Plan:         plan,
		Workers:      s.buildWorkers,
		Metrics:      s.reg,
		Stats:        &st,
	})
	if err != nil {
		return SwapEvent{}, fmt.Errorf("service: rebuild: %w", err)
	}
	s.setPhase(PhaseInstall)
	return s.install(built, opts.Reason, time.Since(t0), &st), nil
}
