package service

import (
	"fmt"
	"runtime/debug"
)

// BuildInfo identifies the running binary: module version, VCS
// revision, and Go toolchain, read from the build metadata the Go
// linker stamps into every binary (runtime/debug.ReadBuildInfo). It is
// the body of GET /buildinfo and the output of xclusterd -version.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`
}

// ReadBuildInfo reads the binary's build metadata. Fields missing from
// the binary (e.g. VCS stamps in a `go test` binary) are left empty.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.VCSTime = s.Value
		case "vcs.modified":
			out.Dirty = s.Value == "true"
		}
	}
	return out
}

// String renders a one-line human-readable form for -version output.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "unknown"
	}
	if b.Dirty {
		rev += "+dirty"
	}
	version := b.Version
	if version == "" {
		version = "(devel)"
	}
	return fmt.Sprintf("%s %s (%s) %s", b.Module, version, rev, b.GoVersion)
}
