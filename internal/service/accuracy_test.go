package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/query"
	"xcluster/internal/workload"
	"xcluster/internal/xmltree"
)

// newTestTree parses testDoc into the document the shadow evaluator
// runs against.
func newTestTree(t *testing.T) *xmltree.Tree {
	t.Helper()
	tree, err := xmltree.Parse(strings.NewReader(testDoc()), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestShadowDifferential is the tentpole acceptance check: with
// shadow-rate 1.0 over the test workload, the per-class average
// relative errors reported by GET /debug/accuracy must match
// workload.AvgRelError computed offline on the same query set — the
// online monitor and the offline harness share one metric.
func TestShadowDifferential(t *testing.T) {
	tree := newTestTree(t)
	syn := newTestSynopsis(t)
	svc := New(syn,
		WithDocument(tree),
		WithShadowSampling(1.0, 2, 10*time.Second),
	)
	defer svc.Close()
	if svc.Shadow() == nil {
		t.Fatal("shadow sampler not created")
	}

	qs := parseWorkload(t)
	for i, q := range qs {
		if _, err := svc.Estimate(context.Background(), q); err != nil {
			t.Fatalf("query %d (%s): %v", i, testWorkload[i], err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shadow().Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := svc.Shadow().Stats()
	if st.Sampled != uint64(len(qs)) || st.Observed != uint64(len(qs)) {
		t.Fatalf("shadow stats = %+v, want all %d queries observed at rate 1", st, len(qs))
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, raw := getBody(t, srv, "/debug/accuracy")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var ar AccuracyResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if ar.Shadow == nil || ar.Shadow.Observed != uint64(len(qs)) {
		t.Fatalf("accuracy response shadow = %+v", ar.Shadow)
	}
	if ar.Samples != uint64(len(qs)) {
		t.Fatalf("samples = %d, want %d", ar.Samples, len(qs))
	}

	// The shadow counters mirror into /metrics at scrape time.
	_, mraw := getBody(t, srv, "/metrics")
	mtext := string(mraw)
	for _, want := range []string{
		"# HELP xcluster_shadow_sampled_total Estimates selected for shadow exact evaluation.",
		"xcluster_shadow_sampled_total 10",
		"xcluster_shadow_observed_total 10",
		`xcluster_shadow_dropped_total{reason="deadline"} 0`,
		`xcluster_shadow_dropped_total{reason="queue_full"} 0`,
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Offline reference: exact truths from the document, estimates from
	// the same synopsis, grouped by the same classifier, averaged by the
	// harness metric with the monitor's sanity bound.
	ev := query.NewEvaluator(tree)
	sanity := svc.Monitor().SanityBound()
	byClass := make(map[string][]workload.Query)
	for _, q := range qs {
		byClass[accuracy.Classify(q).String()] = append(byClass[accuracy.Classify(q).String()],
			workload.Query{Q: q, True: ev.Selectivity(q)})
	}
	est := func(q *query.Query) float64 {
		v, err := svc.Estimate(context.Background(), q)
		if err != nil {
			t.Fatalf("estimate %s: %v", q, err)
		}
		return v
	}
	seen := 0
	for _, cr := range ar.Classes {
		ref, ok := byClass[cr.Class]
		if !ok {
			t.Errorf("monitor reports class %q the offline grouping lacks", cr.Class)
			continue
		}
		seen++
		want := workload.AvgRelError(ref, est, sanity)
		if math.Abs(cr.AvgRelError-want) > 1e-9 {
			t.Errorf("class %s: online avg %g, offline workload.AvgRelError %g",
				cr.Class, cr.AvgRelError, want)
		}
		if cr.Samples != uint64(len(ref)) {
			t.Errorf("class %s: %d samples, offline set has %d", cr.Class, cr.Samples, len(ref))
		}
	}
	if seen != len(byClass) {
		t.Errorf("monitor reports %d classes, offline grouping has %d", seen, len(byClass))
	}
}

// TestShadowDeadlineNeverFailsClient: a ground-truth source slower than
// the shadow deadline only increments the drop counter; every client
// estimate still succeeds, untouched.
func TestShadowDeadlineNeverFailsClient(t *testing.T) {
	syn := newTestSynopsis(t)
	blocking := func(ctx context.Context, q *query.Query) (float64, error) {
		<-ctx.Done() // the evaluator honors ctx, then reports why it stopped
		return 0, ctx.Err()
	}
	svc := New(syn,
		WithTruthFunc(blocking),
		WithShadowSampling(1.0, 1, 5*time.Millisecond),
	)
	defer svc.Close()

	qs := parseWorkload(t)[:3]
	want := sequentialAnswers(syn, qs)
	for i, q := range qs {
		got, err := svc.Estimate(context.Background(), q)
		if err != nil {
			t.Fatalf("client estimate %d failed under a stuck shadow evaluator: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("estimate %d = %v, want %v", i, got, want[i])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shadow().Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := svc.Shadow().Stats()
	if st.DeadlineDrops != uint64(len(qs)) || st.Observed != 0 {
		t.Fatalf("shadow stats = %+v, want every sample a deadline drop", st)
	}
	if rep := svc.Monitor().Report(); rep.Samples != 0 {
		t.Fatalf("dropped samples reached the monitor: %+v", rep)
	}
	if s := svc.Stats(); s.Failed != 0 || s.Served != uint64(len(qs)) {
		t.Fatalf("service stats = %+v, want all served and none failed", s)
	}
}

// TestHTTPFeedback exercises POST /feedback: pushed ground truth feeds
// the monitor, per-entry failures stay inline.
func TestHTTPFeedback(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := `{"feedback":[
		{"query":"//book[year>1990]","true":60},
		{"query":"//book[","true":1},
		{"query":"//book/title","true":120}
	]}`
	resp, raw := postJSON(t, srv, "/feedback", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if fr.Accepted != 2 || len(fr.Results) != 3 {
		t.Fatalf("accepted = %d, results = %d, want 2 of 3", fr.Accepted, len(fr.Results))
	}
	if fr.Results[0].Class != "range" || fr.Results[2].Class != "struct" {
		t.Errorf("classes = %q, %q, want range and struct",
			fr.Results[0].Class, fr.Results[2].Class)
	}
	if fr.Results[1].Error == "" {
		t.Errorf("malformed query produced no inline error: %+v", fr.Results[1])
	}
	if fr.Results[0].RelError < 0 {
		t.Errorf("rel_error = %g, want >= 0", fr.Results[0].RelError)
	}

	rep := svc.Monitor().Report()
	if rep.Samples != 2 {
		t.Fatalf("monitor samples = %d, want the 2 accepted entries", rep.Samples)
	}

	// Whole-request failures use status codes.
	if resp, _ := postJSON(t, srv, "/feedback", `{"feedback":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty feedback status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv, "/feedback", `{nonsense`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPSynopsisDebug: the introspection endpoint's budget split must
// be internally consistent with /synopsis totals, the cluster list
// sorted by cardinality, and ?limit honored.
func TestHTTPSynopsisDebug(t *testing.T) {
	syn := newTestSynopsis(t)
	svc := New(syn)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, raw := getBody(t, srv, "/debug/synopsis")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sd SynopsisDebugResponse
	if err := json.Unmarshal(raw, &sd); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if sd.Clusters != syn.NumNodes() || sd.Edges != syn.NumEdges() {
		t.Fatalf("clusters/edges = %d/%d, synopsis has %d/%d",
			sd.Clusters, sd.Edges, syn.NumNodes(), syn.NumEdges())
	}
	if got := sd.Budget.NodeBytes + sd.Budget.EdgeBytes; got != sd.StructBytes {
		t.Errorf("node+edge bytes = %d, struct bytes = %d", got, sd.StructBytes)
	}
	if got := sd.Budget.HistogramBytes + sd.Budget.PSTBytes + sd.Budget.TermHistBytes; got != sd.ValueBytes {
		t.Errorf("summary byte split sums to %d, value bytes = %d", got, sd.ValueBytes)
	}
	if sd.TotalBytes != sd.StructBytes+sd.ValueBytes {
		t.Errorf("total = %d, want %d", sd.TotalBytes, sd.StructBytes+sd.ValueBytes)
	}
	if len(sd.ClusterDetail) != syn.NumNodes() {
		t.Fatalf("detail rows = %d, want %d", len(sd.ClusterDetail), syn.NumNodes())
	}
	withSummary := 0
	for i, row := range sd.ClusterDetail {
		if row.Label == "" || row.Count <= 0 {
			t.Errorf("row %d = %+v, want a label and positive count", i, row)
		}
		if i > 0 && row.Count > sd.ClusterDetail[i-1].Count {
			t.Errorf("rows not sorted by descending count at %d: %g > %g",
				i, row.Count, sd.ClusterDetail[i-1].Count)
		}
		if row.Summary != "" {
			withSummary++
			switch row.Summary {
			case "histogram", "pst", "termhist":
			default:
				t.Errorf("row %d summary = %q", i, row.Summary)
			}
			if row.SummaryBytes <= 0 {
				t.Errorf("row %d has a summary but %d bytes", i, row.SummaryBytes)
			}
		}
	}
	if withSummary != syn.NumValueNodes() {
		t.Errorf("%d rows carry summaries, synopsis has %d value nodes", withSummary, syn.NumValueNodes())
	}

	// ?limit caps the detail list without touching the totals.
	_, raw = getBody(t, srv, "/debug/synopsis?limit=2")
	var capped SynopsisDebugResponse
	if err := json.Unmarshal(raw, &capped); err != nil {
		t.Fatal(err)
	}
	if len(capped.ClusterDetail) != 2 || capped.Clusters != sd.Clusters {
		t.Errorf("limit=2: rows = %d, clusters = %d", len(capped.ClusterDetail), capped.Clusters)
	}
	if resp, _ := getBody(t, srv, "/debug/synopsis?limit=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status = %d, want 400", resp.StatusCode)
	}
}

// TestMonitorAlwaysAvailable: without shadow sampling or a document the
// monitor still exists, so /feedback and /debug/accuracy work and the
// accuracy series are pre-registered in /metrics.
func TestMonitorAlwaysAvailable(t *testing.T) {
	svc := New(newTestSynopsis(t))
	if svc.Monitor() == nil {
		t.Fatal("Monitor() = nil on a default service")
	}
	if svc.Shadow() != nil {
		t.Fatal("Shadow() != nil without shadow sampling")
	}
	svc.Close() // must be safe with no sampler

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, raw := getBody(t, srv, "/debug/accuracy")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ar AccuracyResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if ar.Samples != 0 || ar.Shadow != nil {
		t.Errorf("idle accuracy report = %+v", ar)
	}
	if ar.SanityBound != accuracy.DefaultSanityBound {
		t.Errorf("sanity bound = %g, want the paper's %d", ar.SanityBound, accuracy.DefaultSanityBound)
	}
}
