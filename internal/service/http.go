package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/obs"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// maxRequestBytes bounds the size of a POST /estimate body.
const maxRequestBytes = 1 << 20

// EstimateRequest is the body of POST /estimate.
type EstimateRequest struct {
	// Queries are twig queries in the XPath fragment ParseQuery accepts.
	Queries []string `json:"queries"`
	// Explain asks for the top synopsis embeddings of each query.
	Explain bool `json:"explain,omitempty"`
	// Plan asks for each query's compiled plan (the canonicalize →
	// compile → execute pipeline's executable form, rendered).
	Plan bool `json:"plan,omitempty"`
	// Trace asks for each query's per-stage pipeline spans (parse,
	// canonicalize, cache lookups, compile, execute).
	Trace bool `json:"trace,omitempty"`
}

// TraceSpan is one timed pipeline stage of an answered query.
type TraceSpan struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// TraceInfo is the inline pipeline trace of one answered query. The
// span durations sum to at most TotalNanos (inter-stage bookkeeping is
// not attributed to any stage).
type TraceInfo struct {
	TotalNanos     int64       `json:"total_nanos"`
	ResultCacheHit bool        `json:"result_cache_hit"`
	PlanCacheHit   bool        `json:"plan_cache_hit"`
	Subproblems    int         `json:"subproblems,omitempty"`
	Spans          []TraceSpan `json:"spans"`
}

// EstimateResult is one entry of an EstimateResponse, positional with the
// request's Queries. Exactly one of Selectivity and Error is set; parse
// failures additionally carry the byte offset of the failure.
type EstimateResult struct {
	Query       string     `json:"query"`
	Selectivity *float64   `json:"selectivity,omitempty"`
	Error       string     `json:"error,omitempty"`
	Offset      *int       `json:"offset,omitempty"`
	Explain     []string   `json:"explain,omitempty"`
	Plan        string     `json:"plan,omitempty"`
	Trace       *TraceInfo `json:"trace,omitempty"`
}

// EstimateResponse is the body of a successful POST /estimate.
type EstimateResponse struct {
	Results []EstimateResult `json:"results"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Served            uint64  `json:"served"`
	Failed            uint64  `json:"failed"`
	CacheHits         uint64  `json:"cache_hits"`
	CacheMisses       uint64  `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	CacheLen          int     `json:"cache_len"`
	CacheCapacity     int     `json:"cache_capacity"`
	PlanCacheHits     uint64  `json:"plan_cache_hits"`
	PlanCacheMisses   uint64  `json:"plan_cache_misses"`
	PlanCacheHitRate  float64 `json:"plan_cache_hit_rate"`
	PlanCacheLen      int     `json:"plan_cache_len"`
	PlanCacheCapacity int     `json:"plan_cache_capacity"`
	P50               string  `json:"p50"`
	P95               string  `json:"p95"`
	P99               string  `json:"p99"`
	LatencySamples    int     `json:"latency_samples"`
	SlowQueries       uint64  `json:"slow_queries"`
	Uptime            string  `json:"uptime"`
}

// SynopsisResponse is the body of GET /synopsis: the size and composition
// of the served synopsis.
type SynopsisResponse struct {
	Nodes       int `json:"nodes"`
	ValueNodes  int `json:"value_nodes"`
	Edges       int `json:"edges"`
	StructBytes int `json:"struct_bytes"`
	ValueBytes  int `json:"value_bytes"`
	TotalBytes  int `json:"total_bytes"`
}

// SlowLogResponse is the body of GET /debug/slowlog.
type SlowLogResponse struct {
	// ThresholdNanos is the capture threshold (0: log disabled).
	ThresholdNanos int64 `json:"threshold_nanos"`
	// Total counts entries ever captured, including ones the ring has
	// since overwritten.
	Total uint64 `json:"total"`
	// Entries are the retained slow queries, most recent first (capped
	// by the request's ?limit=N).
	Entries []obs.SlowLogEntry `json:"entries"`
}

// FeedbackEntry is one pushed ground-truth observation: a query and
// the exact result size the deployment measured for it.
type FeedbackEntry struct {
	Query string  `json:"query"`
	True  float64 `json:"true"`
}

// FeedbackRequest is the body of POST /feedback, for deployments that
// do not keep the document resident: the query processor reports exact
// result sizes it observed, and the service pairs them with its own
// estimates to feed the accuracy monitor.
type FeedbackRequest struct {
	Feedback []FeedbackEntry `json:"feedback"`
}

// FeedbackResult is one entry of a FeedbackResponse, positional with
// the request. Exactly one of Class and Error is set.
type FeedbackResult struct {
	Query    string  `json:"query"`
	Class    string  `json:"class,omitempty"`
	Estimate float64 `json:"estimate,omitempty"`
	RelError float64 `json:"rel_error,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// FeedbackResponse is the body of a successful POST /feedback.
type FeedbackResponse struct {
	Accepted int              `json:"accepted"`
	Results  []FeedbackResult `json:"results"`
}

// AccuracyResponse is the body of GET /debug/accuracy: the monitor's
// per-class error report plus, when shadow sampling is on, the
// sampler's counters.
type AccuracyResponse struct {
	accuracy.Report
	Shadow *accuracy.ShadowStats `json:"shadow,omitempty"`
}

// SynopsisCluster is one cluster row of GET /debug/synopsis.
type SynopsisCluster struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
	Path  string `json:"path,omitempty"`
	// Count is the cluster cardinality |extent(u)|.
	Count float64 `json:"count"`
	// Children is the out-degree (distinct child clusters).
	Children int `json:"children"`
	// Summary and SummaryBytes describe the value summary ("histogram",
	// "pst", or "termhist"; absent on structure-only clusters).
	Summary      string `json:"summary,omitempty"`
	SummaryBytes int    `json:"summary_bytes,omitempty"`
}

// SynopsisBudget is the storage split of the served synopsis: the
// structural charge by component and the value charge by summary kind.
type SynopsisBudget struct {
	NodeBytes int `json:"node_bytes"`
	EdgeBytes int `json:"edge_bytes"`
	// HistogramBytes, PSTBytes and TermHistBytes split the value budget
	// across numeric histograms, pruned suffix trees, and end-biased
	// term histograms.
	HistogramBytes int `json:"histogram_bytes"`
	PSTBytes       int `json:"pst_bytes"`
	TermHistBytes  int `json:"termhist_bytes"`
}

// SynopsisDebugResponse is the body of GET /debug/synopsis: read-only
// introspection of where the budget went, so accuracy reports can be
// correlated with the synopsis's spending.
type SynopsisDebugResponse struct {
	Clusters      int            `json:"clusters"`
	ValueClusters int            `json:"value_clusters"`
	Edges         int            `json:"edges"`
	StructBytes   int            `json:"struct_bytes"`
	ValueBytes    int            `json:"value_bytes"`
	TotalBytes    int            `json:"total_bytes"`
	Budget        SynopsisBudget `json:"budget"`
	// ClusterDetail lists clusters by descending cardinality (capped by
	// the request's ?limit=N).
	ClusterDetail []SynopsisCluster `json:"cluster_detail"`
}

// explainLimit caps the embeddings returned per query when Explain is set.
const explainLimit = 5

// Handler returns the service's HTTP API:
//
//	POST /estimate        {"queries":["//a[b>1]",...],"explain":false,"trace":false}
//	POST /feedback        {"feedback":[{"query":"//a[b>1]","true":42},...]}
//	GET  /stats           counters, cache hit rates, latency percentiles
//	GET  /metrics         the metrics registry in Prometheus text format
//	GET  /debug/slowlog   the slow-query ring buffer, most recent first (?limit=N)
//	GET  /debug/accuracy  per-class estimation error, drift flags, shadow counters
//	GET  /debug/synopsis  cluster cardinalities and the synopsis budget split (?limit=N)
//	GET  /buildinfo       module version, VCS revision, Go version
//	GET  /synopsis        size and composition of the served synopsis
//	GET  /healthz         liveness probe
//
// Per-query failures (parse errors, unknown labels) are reported inline in
// the results array; whole-request failures (malformed JSON, deadline
// exceeded) use HTTP status codes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /feedback", s.handleFeedback)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)
	mux.HandleFunc("GET /debug/accuracy", s.handleAccuracy)
	mux.HandleFunc("GET /debug/synopsis", s.handleSynopsisDebug)
	mux.HandleFunc("GET /buildinfo", s.handleBuildInfo)
	mux.HandleFunc("GET /synopsis", s.handleSynopsis)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "no queries")
		return
	}

	results := make([]EstimateResult, len(req.Queries))
	var qs []*query.Query      // parsed queries, in request order
	var pos []int              // pos[j] = results index of qs[j]
	var parsed []time.Duration // parsed[j] = parse time of qs[j]
	for i, qstr := range req.Queries {
		results[i].Query = qstr
		t0 := time.Now()
		q, err := query.Parse(qstr)
		d := time.Since(t0)
		s.reg.Observe(core.MetricPipelineStageSeconds, `stage="`+core.StageParse+`"`, d.Seconds())
		if err != nil {
			results[i].Error = err.Error()
			var perr *query.ParseError
			if errors.As(err, &perr) {
				off := perr.Offset
				results[i].Offset = &off
			}
			continue
		}
		qs = append(qs, q)
		pos = append(pos, i)
		parsed = append(parsed, d)
	}

	sels, traces, err := s.EstimateBatchTraced(r.Context(), qs)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	for j, i := range pos {
		v := sels[j]
		results[i].Selectivity = &v
		if req.Trace && traces[j] != nil {
			results[i].Trace = renderTrace(parsed[j], traces[j])
		}
		if req.Explain {
			results[i].Explain = s.Explain(qs[j], explainLimit)
		}
		if req.Plan {
			plan, err := s.ExplainPlan(qs[j])
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			results[i].Plan = plan
		}
	}
	writeJSON(w, http.StatusOK, EstimateResponse{Results: results})
}

// renderTrace combines the HTTP layer's parse span with the core
// pipeline trace into the wire form. The reported total covers parse
// through execute, so the spans sum to at most the total.
func renderTrace(parse time.Duration, tr *core.EstimateTrace) *TraceInfo {
	ti := &TraceInfo{
		TotalNanos:     (parse + tr.Total).Nanoseconds(),
		ResultCacheHit: tr.ResultCacheHit,
		PlanCacheHit:   tr.PlanCacheHit,
		Subproblems:    tr.Subproblems,
		Spans:          make([]TraceSpan, 0, len(tr.Spans)+1),
	}
	ti.Spans = append(ti.Spans, TraceSpan{Stage: core.StageParse, Nanos: parse.Nanoseconds()})
	for _, sp := range tr.Spans {
		ti.Spans = append(ti.Spans, TraceSpan{Stage: sp.Stage, Nanos: sp.Duration.Nanoseconds()})
	}
	return ti
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Served:            st.Served,
		Failed:            st.Failed,
		CacheHits:         st.Cache.Hits,
		CacheMisses:       st.Cache.Misses,
		CacheHitRate:      st.Cache.HitRate(),
		CacheLen:          st.Cache.Len,
		CacheCapacity:     st.Cache.Capacity,
		PlanCacheHits:     st.PlanCache.Hits,
		PlanCacheMisses:   st.PlanCache.Misses,
		PlanCacheHitRate:  st.PlanCache.HitRate(),
		PlanCacheLen:      st.PlanCache.Len,
		PlanCacheCapacity: st.PlanCache.Capacity,
		P50:               st.P50.String(),
		P95:               st.P95.String(),
		P99:               st.P99.String(),
		LatencySamples:    st.LatencySamples,
		SlowQueries:       st.SlowQueries,
		Uptime:            st.Uptime.String(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncRegistry()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // headers are out; nothing to do
}

// parseLimit reads a non-negative ?limit=N query parameter. A missing
// or empty parameter yields (0, false): no cap.
func parseLimit(r *http.Request) (int, bool, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("bad limit %q: want a non-negative integer", raw)
	}
	return n, true, nil
}

func (s *Service) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	limit, capped, err := parseLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	entries := s.slow.Snapshot()
	if capped && len(entries) > limit {
		entries = entries[:limit]
	}
	if entries == nil {
		entries = []obs.SlowLogEntry{}
	}
	writeJSON(w, http.StatusOK, SlowLogResponse{
		ThresholdNanos: s.slow.Threshold().Nanoseconds(),
		Total:          s.slow.Total(),
		Entries:        entries,
	})
}

func (s *Service) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Feedback) == 0 {
		httpError(w, http.StatusBadRequest, "no feedback")
		return
	}
	resp := FeedbackResponse{Results: make([]FeedbackResult, len(req.Feedback))}
	for i, fb := range req.Feedback {
		resp.Results[i].Query = fb.Query
		q, err := query.Parse(fb.Query)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		est, err := s.Estimate(r.Context(), q)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		class, relErr := s.mon.Observe(q, est, fb.True)
		resp.Results[i].Class = class.String()
		resp.Results[i].Estimate = est
		resp.Results[i].RelError = relErr
		resp.Accepted++
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	resp := AccuracyResponse{Report: s.mon.Report()}
	if s.shadow != nil {
		st := s.shadow.Stats()
		resp.Shadow = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// summaryKind names a value summary for introspection output.
func summaryKind(vt xmltree.ValueType) string {
	switch vt {
	case xmltree.TypeNumeric:
		return "histogram"
	case xmltree.TypeString:
		return "pst"
	case xmltree.TypeText:
		return "termhist"
	default:
		return ""
	}
}

func (s *Service) handleSynopsisDebug(w http.ResponseWriter, r *http.Request) {
	limit, capped, err := parseLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := SynopsisDebugResponse{
		Clusters:      s.syn.NumNodes(),
		ValueClusters: s.syn.NumValueNodes(),
		Edges:         s.syn.NumEdges(),
		StructBytes:   s.syn.StructBytes(),
		ValueBytes:    s.syn.ValueBytes(),
		TotalBytes:    s.syn.TotalBytes(),
		Budget: SynopsisBudget{
			NodeBytes: s.syn.NumNodes() * core.NodeBytes,
			EdgeBytes: s.syn.NumEdges() * core.EdgeBytes,
		},
	}
	nodes := s.syn.Nodes()
	resp.ClusterDetail = make([]SynopsisCluster, 0, len(nodes))
	for _, n := range nodes {
		row := SynopsisCluster{
			ID:       int(n.ID),
			Label:    n.Label,
			Path:     n.Path,
			Count:    n.Count,
			Children: len(n.Children),
		}
		if n.VSum != nil {
			bytes := n.VSum.SizeBytes()
			row.Summary = summaryKind(n.VSum.Type())
			row.SummaryBytes = bytes
			switch n.VSum.Type() {
			case xmltree.TypeNumeric:
				resp.Budget.HistogramBytes += bytes
			case xmltree.TypeString:
				resp.Budget.PSTBytes += bytes
			case xmltree.TypeText:
				resp.Budget.TermHistBytes += bytes
			}
		}
		resp.ClusterDetail = append(resp.ClusterDetail, row)
	}
	// Largest extents first: the clusters where the budget matters most.
	sort.SliceStable(resp.ClusterDetail, func(i, j int) bool {
		return resp.ClusterDetail[i].Count > resp.ClusterDetail[j].Count
	})
	if capped && len(resp.ClusterDetail) > limit {
		resp.ClusterDetail = resp.ClusterDetail[:limit]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ReadBuildInfo())
}

func (s *Service) handleSynopsis(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SynopsisResponse{
		Nodes:       s.syn.NumNodes(),
		ValueNodes:  s.syn.NumValueNodes(),
		Edges:       s.syn.NumEdges(),
		StructBytes: s.syn.StructBytes(),
		ValueBytes:  s.syn.ValueBytes(),
		TotalBytes:  s.syn.TotalBytes(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing to do
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
