package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/core"
	"xcluster/internal/obs"
	"xcluster/internal/profile"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// maxRequestBytes bounds the size of a POST /estimate body.
const maxRequestBytes = 1 << 20

// MaxRequestBytes is the request-body bound shared by every JSON
// endpoint of this service and of the multi-tenant catalog front-end
// built on top of it.
const MaxRequestBytes = maxRequestBytes

// Catalog addressing errors. The sentinels live here, next to their
// HTTP mapping (ErrorStatus), so the single-tenant service and the
// multi-tenant catalog front-end report unknown-resource and draining
// failures with one consistent JSON body instead of generic 500s. Test
// with errors.Is; re-exported at the repository root.
var (
	// ErrUnknownTenant reports a request addressing a tenant the
	// catalog has no shards for (HTTP 404).
	ErrUnknownTenant = errors.New("service: unknown tenant")
	// ErrUnknownCollection reports a request addressing a collection
	// the tenant does not have (HTTP 404).
	ErrUnknownCollection = errors.New("service: unknown collection")
	// ErrShardDraining reports a request addressing a shard that is
	// being detached: in-flight work finishes, new work is refused
	// (HTTP 503).
	ErrShardDraining = errors.New("service: shard draining")
	// ErrNoProfiler reports a workload-profile operation on a service
	// whose profiler was disabled (HTTP 412).
	ErrNoProfiler = errors.New("service: workload profiling disabled (WithWorkloadProfile)")
)

// ErrorStatus maps a service or catalog error to its HTTP status:
// unknown tenants and collections are 404, draining shards and expired
// deadlines 503, rebuild conflicts 409, missing preconditions 412, and
// anything else 500.
func ErrorStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant), errors.Is(err, ErrUnknownCollection):
		return http.StatusNotFound
	case errors.Is(err, ErrShardDraining),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrRebuildInProgress):
		return http.StatusConflict
	case errors.Is(err, ErrNoSource), errors.Is(err, ErrNoDocument), errors.Is(err, ErrNoProfiler):
		return http.StatusPreconditionFailed
	default:
		return http.StatusInternalServerError
	}
}

// WriteError writes err as the service's standard JSON error body with
// the ErrorStatus status code.
func WriteError(w http.ResponseWriter, err error) {
	httpError(w, ErrorStatus(err), err.Error())
}

// WriteErrorMsg writes an error envelope with an explicit status. Like
// WriteError it echoes the request ID set by the correlation middleware
// into the body, so front-ends (the catalog) get correlated error
// envelopes without threading IDs through their call sites.
func WriteErrorMsg(w http.ResponseWriter, status int, msg string) {
	httpError(w, status, msg)
}

// WriteJSON writes v as an indented JSON response body with the given
// status, the rendering every endpoint of the service (and the catalog
// front-end) uses.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, v)
}

// EstimateRequest is the body of POST /estimate.
type EstimateRequest struct {
	// Queries are twig queries in the XPath fragment ParseQuery accepts.
	Queries []string `json:"queries"`
	// Explain asks for the top synopsis embeddings of each query.
	Explain bool `json:"explain,omitempty"`
	// Plan asks for each query's compiled plan (the canonicalize →
	// compile → execute pipeline's executable form, rendered).
	Plan bool `json:"plan,omitempty"`
	// Trace asks for each query's per-stage pipeline spans (parse,
	// canonicalize, cache lookups, compile, execute).
	Trace bool `json:"trace,omitempty"`
}

// TraceSpan is one timed pipeline stage of an answered query.
// OffsetNanos places the stage's start relative to the start of the
// estimate (omitted when zero; the parse span runs before the
// estimate's timeline starts).
type TraceSpan struct {
	Stage       string `json:"stage"`
	OffsetNanos int64  `json:"offset_nanos,omitempty"`
	Nanos       int64  `json:"nanos"`
}

// TraceInfo is the inline pipeline trace of one answered query. The
// span durations sum to at most TotalNanos (inter-stage bookkeeping is
// not attributed to any stage).
type TraceInfo struct {
	TotalNanos     int64       `json:"total_nanos"`
	ResultCacheHit bool        `json:"result_cache_hit"`
	PlanCacheHit   bool        `json:"plan_cache_hit"`
	Subproblems    int         `json:"subproblems,omitempty"`
	Spans          []TraceSpan `json:"spans"`
}

// EstimateResult is one entry of an EstimateResponse, positional with the
// request's Queries. Exactly one of Selectivity and Error is set; parse
// failures additionally carry the byte offset of the failure.
type EstimateResult struct {
	Query       string     `json:"query"`
	Selectivity *float64   `json:"selectivity,omitempty"`
	Error       string     `json:"error,omitempty"`
	Offset      *int       `json:"offset,omitempty"`
	Explain     []string   `json:"explain,omitempty"`
	Plan        string     `json:"plan,omitempty"`
	Trace       *TraceInfo `json:"trace,omitempty"`
}

// EstimateResponse is the body of a successful POST /estimate.
type EstimateResponse struct {
	Results []EstimateResult `json:"results"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Served            uint64  `json:"served"`
	Failed            uint64  `json:"failed"`
	CacheHits         uint64  `json:"cache_hits"`
	CacheMisses       uint64  `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	CacheLen          int     `json:"cache_len"`
	CacheCapacity     int     `json:"cache_capacity"`
	PlanCacheHits     uint64  `json:"plan_cache_hits"`
	PlanCacheMisses   uint64  `json:"plan_cache_misses"`
	PlanCacheHitRate  float64 `json:"plan_cache_hit_rate"`
	PlanCacheLen      int     `json:"plan_cache_len"`
	PlanCacheCapacity int     `json:"plan_cache_capacity"`
	P50               string  `json:"p50"`
	P95               string  `json:"p95"`
	P99               string  `json:"p99"`
	LatencySamples    int     `json:"latency_samples"`
	SlowQueries       uint64  `json:"slow_queries"`
	Uptime            string  `json:"uptime"`
}

// SynopsisResponse is the body of GET /synopsis: the size and composition
// of the served synopsis.
type SynopsisResponse struct {
	Nodes       int `json:"nodes"`
	ValueNodes  int `json:"value_nodes"`
	Edges       int `json:"edges"`
	StructBytes int `json:"struct_bytes"`
	ValueBytes  int `json:"value_bytes"`
	TotalBytes  int `json:"total_bytes"`
}

// SlowLogResponse is the body of GET /debug/slowlog.
type SlowLogResponse struct {
	// ThresholdNanos is the capture threshold (0: log disabled).
	ThresholdNanos int64 `json:"threshold_nanos"`
	// Total counts entries ever captured, including ones the ring has
	// since overwritten.
	Total uint64 `json:"total"`
	// Entries are the retained slow queries, most recent first (capped
	// by the request's ?limit=N).
	Entries []obs.SlowLogEntry `json:"entries"`
}

// FeedbackEntry is one pushed ground-truth observation: a query and
// the exact result size the deployment measured for it.
type FeedbackEntry struct {
	Query string  `json:"query"`
	True  float64 `json:"true"`
}

// FeedbackRequest is the body of POST /feedback, for deployments that
// do not keep the document resident: the query processor reports exact
// result sizes it observed, and the service pairs them with its own
// estimates to feed the accuracy monitor.
type FeedbackRequest struct {
	Feedback []FeedbackEntry `json:"feedback"`
}

// FeedbackResult is one entry of a FeedbackResponse, positional with
// the request. Exactly one of Class and Error is set.
type FeedbackResult struct {
	Query    string  `json:"query"`
	Class    string  `json:"class,omitempty"`
	Estimate float64 `json:"estimate,omitempty"`
	RelError float64 `json:"rel_error,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// FeedbackResponse is the body of a successful POST /feedback.
type FeedbackResponse struct {
	Accepted int              `json:"accepted"`
	Results  []FeedbackResult `json:"results"`
}

// AccuracyResponse is the body of GET /debug/accuracy: the monitor's
// per-class error report plus, when shadow sampling is on, the
// sampler's counters.
type AccuracyResponse struct {
	accuracy.Report
	Shadow *accuracy.ShadowStats `json:"shadow,omitempty"`
}

// SynopsisCluster is one cluster row of GET /debug/synopsis.
type SynopsisCluster struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
	Path  string `json:"path,omitempty"`
	// Count is the cluster cardinality |extent(u)|.
	Count float64 `json:"count"`
	// Children is the out-degree (distinct child clusters).
	Children int `json:"children"`
	// Summary and SummaryBytes describe the value summary ("histogram",
	// "pst", or "termhist"; absent on structure-only clusters).
	Summary      string `json:"summary,omitempty"`
	SummaryBytes int    `json:"summary_bytes,omitempty"`
}

// SynopsisBudget is the storage split of the served synopsis: the
// structural charge by component and the value charge by summary kind.
type SynopsisBudget struct {
	NodeBytes int `json:"node_bytes"`
	EdgeBytes int `json:"edge_bytes"`
	// HistogramBytes, PSTBytes and TermHistBytes split the value budget
	// across numeric histograms, pruned suffix trees, and end-biased
	// term histograms.
	HistogramBytes int `json:"histogram_bytes"`
	PSTBytes       int `json:"pst_bytes"`
	TermHistBytes  int `json:"termhist_bytes"`
}

// SynopsisVersion is the build-identity section of GET /debug/synopsis:
// the served generation's fingerprint plus the codec version this build
// writes.
type SynopsisVersion struct {
	// Generation is the build generation of the serving synopsis;
	// InstalledAt is when it went live in this process.
	Generation  uint64    `json:"generation"`
	InstalledAt time.Time `json:"installed_at"`
	// CodecVersion is the file format version WriteTo produces.
	CodecVersion int `json:"codec_version"`
	// DocHash fingerprints the source document (hex; empty for legacy
	// artifacts that carry no fingerprint).
	DocHash string `json:"doc_hash,omitempty"`
	// StructBudget/ValueBudget are the build byte budgets;
	// BuildOptions the non-default reference options.
	StructBudget int    `json:"struct_budget,omitempty"`
	ValueBudget  int    `json:"value_budget,omitempty"`
	BuildOptions string `json:"build_options,omitempty"`
	// BuiltAt and BuildNanos record when and how long the synopsis
	// build ran (zero for legacy artifacts).
	BuiltAt    time.Time `json:"built_at,omitzero"`
	BuildNanos int64     `json:"build_nanos,omitempty"`
}

// SynopsisDebugResponse is the body of GET /debug/synopsis: read-only
// introspection of where the budget went, so accuracy reports can be
// correlated with the synopsis's spending, plus the serving
// generation's build identity and the rebuilder's status.
type SynopsisDebugResponse struct {
	Clusters      int             `json:"clusters"`
	ValueClusters int             `json:"value_clusters"`
	Edges         int             `json:"edges"`
	StructBytes   int             `json:"struct_bytes"`
	ValueBytes    int             `json:"value_bytes"`
	TotalBytes    int             `json:"total_bytes"`
	Version       SynopsisVersion `json:"version"`
	Rebuild       RebuildStatus   `json:"rebuild"`
	Budget        SynopsisBudget  `json:"budget"`
	// ClusterDetail lists clusters by descending cardinality (capped by
	// the request's ?limit=N).
	ClusterDetail []SynopsisCluster `json:"cluster_detail"`
}

// RebuildRequest is the (optional) body of POST /admin/rebuild.
type RebuildRequest struct {
	// StructBudget and ValueBudget override the new synopsis's byte
	// budgets (nonpositive or absent: keep the current ones).
	StructBudget int `json:"struct_budget,omitempty"`
	ValueBudget  int `json:"value_budget,omitempty"`
	// Adaptive asks the workload-adaptive planner to re-split the
	// inherited total (ignored when explicit budgets are given; 412
	// when the workload profiler is disabled).
	Adaptive bool `json:"adaptive,omitempty"`
	// Async returns 202 immediately and rebuilds in the background;
	// poll GET /debug/synopsis for the outcome.
	Async bool `json:"async,omitempty"`
	// Reason is recorded in the swap event and logs.
	Reason string `json:"reason,omitempty"`
}

// explainLimit caps the embeddings returned per query when Explain is set.
const explainLimit = 5

// Handler returns the service's HTTP API:
//
//	POST /estimate        {"queries":["//a[b>1]",...],"explain":false,"trace":false}
//	POST /feedback        {"feedback":[{"query":"//a[b>1]","true":42},...]}
//	GET  /stats           counters, cache hit rates, latency percentiles
//	GET  /metrics         the metrics registry in Prometheus text format
//	GET  /debug/slowlog   the slow-query ring buffer, most recent first (?limit=N)
//	GET  /debug/accuracy  per-class estimation error, drift flags, shadow counters
//	GET  /debug/synopsis  cluster cardinalities, budget split, build identity, rebuild status (?limit=N)
//	POST /admin/reload    hot swap: re-read the synopsis from its source
//	POST /admin/rebuild   hot swap: rebuild from the resident document {"struct_budget":N,"value_budget":N,"async":false}
//	GET  /buildinfo       module version, VCS revision, Go version
//	GET  /synopsis        size and composition of the served synopsis
//	GET  /healthz         liveness probe
//	GET  /readyz          readiness probe (503 while draining)
//	GET  /debug/traces    retained request trace trees per family
//	GET  /debug/slo       availability/latency error-budget burn rates
//	GET  /debug/workload  live workload profile: shape top-K, class mix, pain scores, coverage (?limit=N)
//	GET  /debug/budget    serving budget plan, planned vs actual split, last planner run, next-rebuild dry run
//	GET  /admin/workload/export  the versioned WorkloadProfile JSON artifact
//
// Every request is wrapped in request correlation: a well-formed client
// X-Request-ID is honored (one is generated otherwise), echoed on the
// response and in error envelopes, and threaded through the context to
// pipeline spans, the slow-query log, and the trace store.
//
// Per-query failures (parse errors, unknown labels) are reported inline in
// the results array; whole-request failures (malformed JSON, deadline
// exceeded) use HTTP status codes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /feedback", s.handleFeedback)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)
	mux.HandleFunc("GET /debug/accuracy", s.handleAccuracy)
	mux.HandleFunc("GET /debug/synopsis", s.handleSynopsisDebug)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/slo", s.handleSLO)
	mux.HandleFunc("GET /debug/workload", s.handleWorkload)
	mux.HandleFunc("GET /debug/budget", s.handleBudget)
	mux.HandleFunc("GET /admin/workload/export", s.handleWorkloadExport)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	mux.HandleFunc("POST /admin/rebuild", s.handleRebuild)
	mux.HandleFunc("GET /buildinfo", s.handleBuildInfo)
	mux.HandleFunc("GET /synopsis", s.handleSynopsis)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return obs.TraceHandler(s.traces, mux)
}

// handleReady implements GET /readyz: 200 while the service should
// receive traffic, 503 once draining starts. Distinct from /healthz,
// which stays 200 through a graceful shutdown (the process is alive).
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// TracesResponse is the body of GET /debug/traces.
type TracesResponse struct {
	Families []obs.FamilySnapshot `json:"families"`
}

// handleTraces implements GET /debug/traces: the retained request trace
// trees, grouped by family, most recent and slowest first.
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	fams := s.traces.Snapshot()
	if fams == nil {
		fams = []obs.FamilySnapshot{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Families: fams})
}

// handleSLO implements GET /debug/slo: the configured objectives and
// multi-window burn rates ({"enabled":false} when none are configured).
func (s *Service) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Report())
}

// WorkloadResponse is the body of GET /debug/workload: the profiler's
// snapshot (shape top-K, class mix with pain scores) plus the synopsis
// coverage report comparing the observed class mix against the served
// synopsis's budget byte split. Enabled is false (and everything else
// zero) when profiling was disabled.
type WorkloadResponse struct {
	Enabled bool `json:"enabled"`
	profile.Snapshot
	Coverage profile.CoverageReport `json:"coverage"`
}

// WorkloadReport builds the GET /debug/workload body: snapshot, pain
// join, and coverage against the serving generation's budget split.
// limit caps the shape list when capped is true. Exported so the
// multi-tenant catalog renders the same rows per shard.
func (s *Service) WorkloadReport(limit int, capped bool) WorkloadResponse {
	if s.prof == nil {
		return WorkloadResponse{}
	}
	snap := s.prof.Snapshot(time.Now())
	snap.Join(s.mon.Report())
	if capped && len(snap.Shapes) > limit {
		snap.Shapes = snap.Shapes[:limit]
	}
	b := synopsisBudget(s.cur.Load().syn)
	return WorkloadResponse{
		Enabled:  true,
		Snapshot: snap,
		Coverage: profile.Coverage(snap.Classes, profile.BudgetSplit{
			NodeBytes:      b.NodeBytes,
			EdgeBytes:      b.EdgeBytes,
			HistogramBytes: b.HistogramBytes,
			PSTBytes:       b.PSTBytes,
			TermHistBytes:  b.TermHistBytes,
		}),
	}
}

// handleWorkload implements GET /debug/workload.
func (s *Service) handleWorkload(w http.ResponseWriter, r *http.Request) {
	limit, capped, err := parseLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.WorkloadReport(limit, capped))
}

// handleBudget implements GET /debug/budget: the serving generation's
// budget plan with planned-vs-actual bytes, the planner run behind the
// last adaptive rebuild, and a dry-run of the next one.
func (s *Service) handleBudget(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.BudgetReport())
}

// handleWorkloadExport implements GET /admin/workload/export: the
// versioned WorkloadProfile artifact in its canonical file encoding
// (profile.Encode), so the body can be saved and fed back through
// profile.Parse byte-for-byte. 412 when profiling is disabled.
func (s *Service) handleWorkloadExport(w http.ResponseWriter, r *http.Request) {
	p, err := s.WorkloadProfile()
	if err != nil {
		WriteError(w, err)
		return
	}
	b, err := profile.Encode(p)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b) //nolint:errcheck // headers are out; nothing to do
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "no queries")
		return
	}
	resp, err := s.RunEstimateRequest(r.Context(), req)
	if err != nil {
		WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// RunEstimateRequest answers one EstimateRequest end to end: it parses
// each query (per-query failures land inline in the results), runs the
// parseable ones as one batch pinned to a single synopsis generation,
// and renders traces, explanations, and plans as requested. It is the
// body of POST /estimate, exported so the multi-tenant catalog
// front-end can route the same request shape to a shard — the
// single-tenant response is byte-for-byte what this service's own
// handler returns. A non-nil error is a whole-request failure (map it
// with ErrorStatus).
func (s *Service) RunEstimateRequest(ctx context.Context, req EstimateRequest) (EstimateResponse, error) {
	results := make([]EstimateResult, len(req.Queries))
	var qs []*query.Query      // parsed queries, in request order
	var pos []int              // pos[j] = results index of qs[j]
	var parsed []time.Duration // parsed[j] = parse time of qs[j]
	for i, qstr := range req.Queries {
		results[i].Query = qstr
		t0 := time.Now()
		q, err := query.Parse(qstr)
		d := time.Since(t0)
		s.reg.Observe(core.MetricPipelineStageSeconds, `stage="`+core.StageParse+`"`, d.Seconds())
		if err != nil {
			results[i].Error = err.Error()
			var perr *query.ParseError
			if errors.As(err, &perr) {
				off := perr.Offset
				results[i].Offset = &off
			}
			continue
		}
		qs = append(qs, q)
		pos = append(pos, i)
		parsed = append(parsed, d)
	}

	sels, traces, err := s.EstimateBatchTraced(ctx, qs)
	if err != nil {
		return EstimateResponse{}, err
	}
	for j, i := range pos {
		v := sels[j]
		results[i].Selectivity = &v
		if req.Trace && traces[j] != nil {
			results[i].Trace = renderTrace(parsed[j], traces[j])
		}
		if req.Explain {
			results[i].Explain = s.Explain(qs[j], explainLimit)
		}
		if req.Plan {
			plan, err := s.ExplainPlan(qs[j])
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			results[i].Plan = plan
		}
	}
	return EstimateResponse{Results: results}, nil
}

// renderTrace combines the HTTP layer's parse span with the core
// pipeline trace into the wire form. The reported total covers parse
// through execute, so the spans sum to at most the total.
func renderTrace(parse time.Duration, tr *core.EstimateTrace) *TraceInfo {
	ti := &TraceInfo{
		TotalNanos:     (parse + tr.Total).Nanoseconds(),
		ResultCacheHit: tr.ResultCacheHit,
		PlanCacheHit:   tr.PlanCacheHit,
		Subproblems:    tr.Subproblems,
		Spans:          make([]TraceSpan, 0, len(tr.Spans)+1),
	}
	ti.Spans = append(ti.Spans, TraceSpan{Stage: core.StageParse, Nanos: parse.Nanoseconds()})
	for _, sp := range tr.Spans {
		ti.Spans = append(ti.Spans, TraceSpan{
			Stage:       sp.Stage,
			OffsetNanos: sp.Offset.Nanoseconds(),
			Nanos:       sp.Duration.Nanoseconds(),
		})
	}
	return ti
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Served:            st.Served,
		Failed:            st.Failed,
		CacheHits:         st.Cache.Hits,
		CacheMisses:       st.Cache.Misses,
		CacheHitRate:      st.Cache.HitRate(),
		CacheLen:          st.Cache.Len,
		CacheCapacity:     st.Cache.Capacity,
		PlanCacheHits:     st.PlanCache.Hits,
		PlanCacheMisses:   st.PlanCache.Misses,
		PlanCacheHitRate:  st.PlanCache.HitRate(),
		PlanCacheLen:      st.PlanCache.Len,
		PlanCacheCapacity: st.PlanCache.Capacity,
		P50:               st.P50.String(),
		P95:               st.P95.String(),
		P99:               st.P99.String(),
		LatencySamples:    st.LatencySamples,
		SlowQueries:       st.SlowQueries,
		Uptime:            st.Uptime.String(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncRegistry()
	// Runtime telemetry is process-global and sampled only at scrape
	// time; the hot path never touches runtime/metrics. The allocs/op
	// gauge divides the process allocation delta by the served delta
	// between scrapes.
	s.runtime.Sample(s.reg)
	s.runtime.SampleAllocsPerOp(s.reg, s.served.Value()+s.failed.Value())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // headers are out; nothing to do
}

// parseLimit reads a non-negative ?limit=N query parameter. A missing
// or empty parameter yields (0, false): no cap.
func parseLimit(r *http.Request) (int, bool, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("bad limit %q: want a non-negative integer", raw)
	}
	return n, true, nil
}

func (s *Service) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	limit, capped, err := parseLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	entries := s.slow.Snapshot()
	if capped && len(entries) > limit {
		entries = entries[:limit]
	}
	if entries == nil {
		entries = []obs.SlowLogEntry{}
	}
	writeJSON(w, http.StatusOK, SlowLogResponse{
		ThresholdNanos: s.slow.Threshold().Nanoseconds(),
		Total:          s.slow.Total(),
		Entries:        entries,
	})
}

func (s *Service) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Feedback) == 0 {
		httpError(w, http.StatusBadRequest, "no feedback")
		return
	}
	resp := FeedbackResponse{Results: make([]FeedbackResult, len(req.Feedback))}
	for i, fb := range req.Feedback {
		resp.Results[i].Query = fb.Query
		q, err := query.Parse(fb.Query)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		est, err := s.Estimate(r.Context(), q)
		if err != nil {
			resp.Results[i].Error = err.Error()
			continue
		}
		class, relErr := s.mon.Observe(q, est, fb.True)
		resp.Results[i].Class = class.String()
		resp.Results[i].Estimate = est
		resp.Results[i].RelError = relErr
		resp.Accepted++
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	resp := AccuracyResponse{Report: s.mon.Report()}
	if s.shadow != nil {
		st := s.shadow.Stats()
		resp.Shadow = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// summaryKind names a value summary for introspection output.
func summaryKind(vt xmltree.ValueType) string {
	switch vt {
	case xmltree.TypeNumeric:
		return "histogram"
	case xmltree.TypeString:
		return "pst"
	case xmltree.TypeText:
		return "termhist"
	default:
		return ""
	}
}

// synopsisBudget computes the storage split of a synopsis: structural
// charge from the cluster and edge counts, value charge by summary
// kind. Shared by GET /debug/synopsis and the workload coverage report.
func synopsisBudget(syn *core.Synopsis) SynopsisBudget {
	b := SynopsisBudget{
		NodeBytes: syn.NumNodes() * core.NodeBytes,
		EdgeBytes: syn.NumEdges() * core.EdgeBytes,
	}
	for _, n := range syn.Nodes() {
		if n.VSum == nil {
			continue
		}
		bytes := n.VSum.SizeBytes()
		switch n.VSum.Type() {
		case xmltree.TypeNumeric:
			b.HistogramBytes += bytes
		case xmltree.TypeString:
			b.PSTBytes += bytes
		case xmltree.TypeText:
			b.TermHistBytes += bytes
		}
	}
	return b
}

func (s *Service) handleSynopsisDebug(w http.ResponseWriter, r *http.Request) {
	limit, capped, err := parseLimit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sl := s.cur.Load()
	fp := sl.syn.Fingerprint()
	ver := SynopsisVersion{
		Generation:   fp.Generation,
		InstalledAt:  sl.installed,
		CodecVersion: core.CodecVersion,
		StructBudget: fp.StructBudget,
		ValueBudget:  fp.ValueBudget,
		BuildOptions: fp.BuildOptions,
		BuildNanos:   fp.BuildNanos,
	}
	if fp.DocHash != 0 {
		ver.DocHash = fmt.Sprintf("%016x", fp.DocHash)
	}
	if fp.BuiltAtUnix != 0 {
		ver.BuiltAt = time.Unix(fp.BuiltAtUnix, 0).UTC()
	}
	resp := SynopsisDebugResponse{
		Clusters:      sl.syn.NumNodes(),
		ValueClusters: sl.syn.NumValueNodes(),
		Edges:         sl.syn.NumEdges(),
		StructBytes:   sl.syn.StructBytes(),
		ValueBytes:    sl.syn.ValueBytes(),
		TotalBytes:    sl.syn.TotalBytes(),
		Version:       ver,
		Rebuild:       s.RebuildStatus(),
		Budget:        synopsisBudget(sl.syn),
	}
	nodes := sl.syn.Nodes()
	resp.ClusterDetail = make([]SynopsisCluster, 0, len(nodes))
	for _, n := range nodes {
		row := SynopsisCluster{
			ID:       int(n.ID),
			Label:    n.Label,
			Path:     n.Path,
			Count:    n.Count,
			Children: len(n.Children),
		}
		if n.VSum != nil {
			row.Summary = summaryKind(n.VSum.Type())
			row.SummaryBytes = n.VSum.SizeBytes()
		}
		resp.ClusterDetail = append(resp.ClusterDetail, row)
	}
	// Largest extents first: the clusters where the budget matters most.
	sort.SliceStable(resp.ClusterDetail, func(i, j int) bool {
		return resp.ClusterDetail[i].Count > resp.ClusterDetail[j].Count
	})
	if capped && len(resp.ClusterDetail) > limit {
		resp.ClusterDetail = resp.ClusterDetail[:limit]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ReadBuildInfo())
}

func (s *Service) handleSynopsis(w http.ResponseWriter, r *http.Request) {
	syn := s.cur.Load().syn
	writeJSON(w, http.StatusOK, SynopsisResponse{
		Nodes:       syn.NumNodes(),
		ValueNodes:  syn.NumValueNodes(),
		Edges:       syn.NumEdges(),
		StructBytes: syn.StructBytes(),
		ValueBytes:  syn.ValueBytes(),
		TotalBytes:  syn.TotalBytes(),
	})
}

// handleReload implements POST /admin/reload: re-read the synopsis
// through the configured source and hot swap it in. 412 when no source
// is configured; the response is the completed SwapEvent.
func (s *Service) handleReload(w http.ResponseWriter, r *http.Request) {
	ev, err := s.Reload(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoSource) {
			status = http.StatusPreconditionFailed
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ev)
}

// handleRebuild implements POST /admin/rebuild: rebuild the synopsis
// from the resident document with (optionally) new budgets and hot swap
// it in. The body is optional. With "async":true the rebuild runs in
// the background and 202 returns immediately; otherwise the response is
// the completed SwapEvent. 409 while another rebuild runs, 412 without
// a resident document.
func (s *Service) handleRebuild(w http.ResponseWriter, r *http.Request) {
	var req RebuildRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	opts := RebuildOptions{
		StructBudget: req.StructBudget,
		ValueBudget:  req.ValueBudget,
		Adaptive:     req.Adaptive,
		Reason:       req.Reason,
	}
	if req.Async {
		if s.doc == nil {
			httpError(w, http.StatusPreconditionFailed, ErrNoDocument.Error())
			return
		}
		go func() {
			// Outcome and error land in RebuildStatus (GET /debug/synopsis).
			_, _ = s.Rebuild(context.Background(), opts)
		}()
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "rebuild started"})
		return
	}
	ev, err := s.Rebuild(r.Context(), opts)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrRebuildInProgress):
			status = http.StatusConflict
		case errors.Is(err, ErrNoDocument):
			status = http.StatusPreconditionFailed
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ev)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing to do
}

func httpError(w http.ResponseWriter, status int, msg string) {
	body := map[string]string{"error": msg}
	// The correlation middleware sets the response header before the
	// handler runs, so error envelopes can echo the request ID without
	// threading it through every call site. (encoding/json renders map
	// keys sorted, so the body stays deterministic.)
	if id := w.Header().Get("X-Request-ID"); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, status, body)
}
