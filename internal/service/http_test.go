package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestHTTPEstimate(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := `{"queries":["//book[year>1990]","//book[year>","//journal/title"],"explain":true}`
	resp, raw := postJSON(t, srv, "/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var er EstimateResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if len(er.Results) != 3 {
		t.Fatalf("results = %+v", er.Results)
	}
	// Good queries: selectivity plus (explain=true) embeddings.
	for _, i := range []int{0, 2} {
		r := er.Results[i]
		if r.Selectivity == nil || r.Error != "" {
			t.Fatalf("result %d = %+v", i, r)
		}
		if len(r.Explain) == 0 {
			t.Fatalf("result %d has no explain lines", i)
		}
	}
	// The malformed query fails inline with its byte offset; the others
	// are still answered.
	bad := er.Results[1]
	if bad.Selectivity != nil || bad.Error == "" {
		t.Fatalf("bad result = %+v", bad)
	}
	if bad.Offset == nil || *bad.Offset != len("//book[year>") {
		t.Fatalf("bad offset = %v", bad.Offset)
	}

	// plan=true returns each query's rendered compiled plan.
	resp, raw = postJSON(t, srv, "/estimate", `{"queries":["//book[year>1990]/title"],"plan":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d, body %s", resp.StatusCode, raw)
	}
	var pr EstimateResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("%v in %s", err, raw)
	}
	if len(pr.Results) != 1 || pr.Results[0].Selectivity == nil {
		t.Fatalf("plan results = %+v", pr.Results)
	}
	plan := pr.Results[0].Plan
	if !strings.Contains(plan, "plan //book[") || !strings.Contains(plan, "subproblems") {
		t.Fatalf("plan field = %q", plan)
	}

	// Whole-request failures are HTTP errors.
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"queries":[]}`, http.StatusBadRequest},
		{`{not json`, http.StatusBadRequest},
		{`{"queries":["//book"],"bogus":1}`, http.StatusBadRequest},
	} {
		resp, _ := postJSON(t, srv, "/estimate", tc.body)
		if resp.StatusCode != tc.code {
			t.Fatalf("body %q: status = %d, want %d", tc.body, resp.StatusCode, tc.code)
		}
	}

	// Wrong method on a method-scoped route.
	resp, err := http.Get(srv.URL + "/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /estimate: status = %d", resp.StatusCode)
	}
}

func TestHTTPStatsAndSynopsis(t *testing.T) {
	svc := New(newTestSynopsis(t))
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Serve a batch twice so /stats shows traffic and cache hits.
	for i := 0; i < 2; i++ {
		resp, raw := postJSON(t, srv, "/estimate", `{"queries":["//book[year>1990]","//book/title"]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate status = %d, body %s", resp.StatusCode, raw)
		}
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 4 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheHits < 2 || st.CacheHitRate <= 0 {
		t.Fatalf("cache stats = %+v", st)
	}
	if st.LatencySamples != 4 || st.P50 == "" || st.Uptime == "" {
		t.Fatalf("latency stats = %+v", st)
	}
	// Two distinct shapes were compiled once each; the repeat batch and
	// repeated executions hit the plan cache.
	if st.PlanCacheMisses != 2 || st.PlanCacheLen != 2 {
		t.Fatalf("plan cache stats = %+v", st)
	}
	if st.PlanCacheHits == 0 || st.PlanCacheHitRate <= 0 || st.PlanCacheCapacity == 0 {
		t.Fatalf("plan cache stats = %+v", st)
	}

	resp, err = http.Get(srv.URL + "/synopsis")
	if err != nil {
		t.Fatal(err)
	}
	var syn SynopsisResponse
	err = json.NewDecoder(resp.Body).Decode(&syn)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if syn.Nodes == 0 || syn.Edges == 0 || syn.TotalBytes == 0 {
		t.Fatalf("synopsis = %+v", syn)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 16)
	n, _ := resp.Body.Read(b)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(b[:n]), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b[:n])
	}
}
