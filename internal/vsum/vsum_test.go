package vsum

import (
	"math"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

func numNodes(vals ...int) []*xmltree.Node {
	out := make([]*xmltree.Node, len(vals))
	for i, v := range vals {
		out[i] = &xmltree.Node{Label: "y", Type: xmltree.TypeNumeric, Num: v}
	}
	return out
}

func strNodes(vals ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(vals))
	for i, v := range vals {
		out[i] = &xmltree.Node{Label: "t", Type: xmltree.TypeString, Str: v}
	}
	return out
}

func textNodes(d *xmltree.Dict, texts ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(texts))
	for i, v := range texts {
		out[i] = &xmltree.Node{Label: "a", Type: xmltree.TypeText, Terms: d.InternText(v)}
	}
	return out
}

func TestFromNodesDispatch(t *testing.T) {
	d := xmltree.NewDict()
	cases := []struct {
		nodes []*xmltree.Node
		want  xmltree.ValueType
	}{
		{numNodes(1, 2, 3), xmltree.TypeNumeric},
		{strNodes("ab", "cd"), xmltree.TypeString},
		{textNodes(d, "xml tree synopsis"), xmltree.TypeText},
	}
	for _, c := range cases {
		s, err := FromNodes(c.nodes, BuildOptions{})
		if err != nil {
			t.Fatalf("%v: %v", c.want, err)
		}
		if s.Type() != c.want {
			t.Fatalf("type = %v, want %v", s.Type(), c.want)
		}
		if s.Count() != float64(len(c.nodes)) {
			t.Fatalf("count = %g", s.Count())
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFromNodesErrors(t *testing.T) {
	if _, err := FromNodes(nil, BuildOptions{}); err == nil {
		t.Fatal("empty extent accepted")
	}
	mixed := append(numNodes(1), strNodes("x")...)
	if _, err := FromNodes(mixed, BuildOptions{}); err == nil {
		t.Fatal("mixed types accepted")
	}
	null := []*xmltree.Node{{Label: "e"}}
	if _, err := FromNodes(null, BuildOptions{}); err == nil {
		t.Fatal("null type accepted")
	}
}

func TestNumericPredSel(t *testing.T) {
	s, _ := FromNodes(numNodes(1990, 1995, 2000, 2005), BuildOptions{})
	if got := s.PredSel(query.Range{Lo: 2000, Hi: 2010}, nil); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("range sel = %g, want 0.5", got)
	}
	// Wrong predicate kind → 0.
	if got := s.PredSel(query.Contains{Substr: "x"}, nil); got != 0 {
		t.Fatalf("mismatched pred sel = %g", got)
	}
}

func TestNumericAtomics(t *testing.T) {
	s, _ := FromNodes(numNodes(1, 5, 9, 12), BuildOptions{})
	atoms := s.Atomics(0)
	if len(atoms) != 4 {
		t.Fatalf("atomics = %d, want 4", len(atoms))
	}
	// Selectivities are monotone in the prefix bound and end at 1.
	prev := 0.0
	for _, a := range atoms {
		sel := s.AtomicSel(a)
		if sel < prev-1e-9 {
			t.Fatalf("prefix selectivity not monotone: %g after %g", sel, prev)
		}
		prev = sel
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Fatalf("last prefix selectivity = %g, want 1", prev)
	}
	// Capped enumeration keeps the final boundary.
	capped := s.Atomics(2)
	if len(capped) != 2 {
		t.Fatalf("capped atomics = %d", len(capped))
	}
	if got := s.AtomicSel(capped[len(capped)-1]); math.Abs(got-1) > 1e-9 {
		t.Fatalf("capped last selectivity = %g", got)
	}
}

func TestStringPredSelAndAtomics(t *testing.T) {
	s, _ := FromNodes(strNodes("Tree", "Trie", "Graph"), BuildOptions{})
	if got := s.PredSel(query.Contains{Substr: "Tr"}, nil); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("contains sel = %g", got)
	}
	if got := s.PredSel(query.Range{Lo: 0, Hi: 1}, nil); got != 0 {
		t.Fatalf("mismatched pred sel = %g", got)
	}
	atoms := s.Atomics(5)
	if len(atoms) != 5 {
		t.Fatalf("capped atomics = %d", len(atoms))
	}
	for _, a := range atoms {
		if sel := s.AtomicSel(a); sel <= 0 || sel > 1 {
			t.Fatalf("atomic %q sel = %g", a.Sub, sel)
		}
	}
}

func TestTextPredSel(t *testing.T) {
	d := xmltree.NewDict()
	nodes := textNodes(d,
		"xml synopsis summary estimation",
		"xml tree structure",
		"relational database theory")
	s, _ := FromNodes(nodes, BuildOptions{})
	if got := s.PredSel(query.FTContains{Terms: []string{"xml"}}, d); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("ft sel = %g", got)
	}
	// Conjunction multiplies.
	got := s.PredSel(query.FTContains{Terms: []string{"xml", "synopsis"}}, d)
	want := (2.0 / 3) * (1.0 / 3)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("conj sel = %g, want %g", got, want)
	}
	// Unknown term → 0.
	if got := s.PredSel(query.FTContains{Terms: []string{"quantum"}}, d); got != 0 {
		t.Fatalf("unknown term sel = %g", got)
	}
}

func TestFuseMatchesUnion(t *testing.T) {
	a, _ := FromNodes(numNodes(1, 2, 3), BuildOptions{})
	b, _ := FromNodes(numNodes(3, 4), BuildOptions{})
	f := a.Fuse(b)
	if f.Count() != 5 {
		t.Fatalf("fused count = %g", f.Count())
	}
	u, _ := FromNodes(numNodes(1, 2, 3, 3, 4), BuildOptions{})
	for _, a := range u.Atomics(0) {
		if got, want := f.AtomicSel(a), u.AtomicSel(a); math.Abs(got-want) > 1e-9 {
			t.Fatalf("prefix [%d,%d]: fused %g, union %g", a.Lo, a.Hi, got, want)
		}
	}
}

func TestFusePanicsOnTypeMismatch(t *testing.T) {
	a, _ := FromNodes(numNodes(1), BuildOptions{})
	b, _ := FromNodes(strNodes("x"), BuildOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type fuse did not panic")
		}
	}()
	a.Fuse(b)
}

func TestCompressOnceAllTypes(t *testing.T) {
	d := xmltree.NewDict()
	sums := []Summary{}
	n, _ := FromNodes(numNodes(1, 5, 9, 13, 17), BuildOptions{})
	sums = append(sums, n)
	s, _ := FromNodes(strNodes("database", "dataset", "index"), BuildOptions{})
	sums = append(sums, s)
	tx, _ := FromNodes(textNodes(d,
		"alpha beta gamma delta", "alpha beta", "alpha epsilon zeta"), BuildOptions{})
	sums = append(sums, tx)

	for _, s := range sums {
		before := s.SizeBytes()
		c, saved, steps := s.Compress(1)
		if steps == 0 {
			t.Fatalf("%v: Compress failed", s.Type())
		}
		if saved <= 0 {
			t.Fatalf("%v: saved %d bytes", s.Type(), saved)
		}
		if c.SizeBytes() != before-saved {
			t.Fatalf("%v: size %d, want %d", s.Type(), c.SizeBytes(), before-saved)
		}
		if c.Count() != s.Count() {
			t.Fatalf("%v: compression changed count", s.Type())
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%v: %v", s.Type(), err)
		}
	}
}

func TestCompressToExhaustion(t *testing.T) {
	var s Summary
	s, _ = FromNodes(numNodes(1, 2, 3, 4), BuildOptions{})
	for i := 0; ; i++ {
		next, _, steps := s.Compress(1)
		if steps == 0 {
			break
		}
		s = next
		if i > 100 {
			t.Fatal("compression did not terminate")
		}
	}
	if s.SizeBytes() == 0 {
		t.Fatal("summary vanished entirely")
	}
}

func TestTextFTSimEstimation(t *testing.T) {
	d := xmltree.NewDict()
	nodes := textNodes(d,
		"alpha beta",
		"alpha gamma",
		"beta gamma",
		"delta")
	s, _ := FromNodes(nodes, BuildOptions{})
	// f(alpha)=f(beta)=f(gamma)=0.5, f(delta)=0.25.
	// P(>=1 of alpha,beta) = 1 - 0.5*0.5 = 0.75.
	got := s.PredSel(query.FTSim{Terms: []string{"alpha", "beta"}, Min: 1}, d)
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("ftsim(1) = %g, want 0.75", got)
	}
	// P(both) = 0.25 — identical to ftcontains.
	sim := s.PredSel(query.FTSim{Terms: []string{"alpha", "beta"}, Min: 2}, d)
	conj := s.PredSel(query.FTContains{Terms: []string{"alpha", "beta"}}, d)
	if math.Abs(sim-conj) > 1e-9 {
		t.Fatalf("ftsim-all %g != ftcontains %g", sim, conj)
	}
	// Unknown terms contribute probability 0 but do not zero the rest.
	got = s.PredSel(query.FTSim{Terms: []string{"alpha", "zzz"}, Min: 1}, d)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ftsim with unknown = %g, want 0.5", got)
	}
}

func TestMaxSummaryBytesCap(t *testing.T) {
	// A large detailed summary must be compressed to fit the cap.
	vals := make([]*xmltree.Node, 0, 400)
	for i := 0; i < 400; i++ {
		vals = append(vals, &xmltree.Node{Label: "y", Type: xmltree.TypeNumeric, Num: i * 3})
	}
	s, err := FromNodes(vals, BuildOptions{MaxSummaryBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if s.SizeBytes() > 128 {
		t.Fatalf("size %d exceeds 128B cap", s.SizeBytes())
	}
	if s.Count() != 400 {
		t.Fatalf("count = %g", s.Count())
	}
	// Uncapped stays detailed.
	d, _ := FromNodes(vals, BuildOptions{})
	if d.SizeBytes() <= 128 {
		t.Fatal("uncapped summary suspiciously small")
	}
}
