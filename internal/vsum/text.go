package vsum

import (
	"fmt"

	"xcluster/internal/query"
	"xcluster/internal/termhist"
	"xcluster/internal/xmltree"
)

// Text summarizes TEXT values with an end-biased term histogram over the
// centroid of the elements' Boolean term vectors.
type Text struct {
	H *termhist.Hist
}

// NewText builds a detailed text summary (every term frequency exact).
func NewText(vectors [][]int) *Text {
	return &Text{H: termhist.Build(vectors)}
}

// Type implements Summary.
func (s *Text) Type() xmltree.ValueType { return xmltree.TypeText }

// Count implements Summary.
func (s *Text) Count() float64 { return s.H.Count() }

// SizeBytes implements Summary.
func (s *Text) SizeBytes() int { return s.H.SizeBytes() }

// Atomics implements Summary: individual terms, preferring the indexed
// (high-frequency) ones, padded with uniform-bucket terms under the cap.
func (s *Text) Atomics(limit int) []Atomic {
	terms := s.H.TopTerms()
	if limit > 0 && len(terms) > limit {
		terms = terms[:limit]
	}
	if limit <= 0 || len(terms) < limit {
		budget := 0
		if limit > 0 {
			budget = limit - len(terms)
		} else {
			budget = s.H.BucketTerms()
		}
		terms = append(terms, s.H.BucketSample(budget)...)
	}
	out := make([]Atomic, len(terms))
	for i, t := range terms {
		out[i] = Atomic{Kind: xmltree.TypeText, Term: t}
	}
	return out
}

// AtomicSel implements Summary.
func (s *Text) AtomicSel(a Atomic) float64 {
	if a.Kind != xmltree.TypeText {
		return 0
	}
	return s.H.Frequency(a.Term)
}

// PredSel implements Summary.
func (s *Text) PredSel(p query.Pred, dict *xmltree.Dict) float64 {
	switch ft := p.(type) {
	case query.FTContains:
		sel := 1.0
		for _, term := range ft.Terms {
			id, known := dict.ID(term)
			if !known {
				return 0 // term absent from the whole document
			}
			sel *= s.H.Frequency(id)
			if sel == 0 {
				return 0
			}
		}
		return sel
	case query.FTSim:
		// P(at least Min of the terms present) under term independence:
		// the Poisson-binomial tail, computed by dynamic programming
		// over the per-term frequencies.
		probs := make([]float64, len(ft.Terms))
		for i, term := range ft.Terms {
			if id, known := dict.ID(term); known {
				probs[i] = s.H.Frequency(id)
			}
		}
		dp := make([]float64, len(probs)+1)
		dp[0] = 1
		for _, q := range probs {
			for j := len(probs); j >= 1; j-- {
				dp[j] = dp[j]*(1-q) + dp[j-1]*q
			}
			dp[0] *= 1 - q
		}
		tail := 0.0
		for j := ft.Min; j <= len(probs); j++ {
			tail += dp[j]
		}
		return tail
	default:
		return 0
	}
}

// Fuse implements Summary.
func (s *Text) Fuse(other Summary) Summary {
	o, ok := other.(*Text)
	if !ok {
		panic(fmt.Sprintf("vsum: fusing text with %T", other))
	}
	return &Text{H: termhist.Merge(s.H, o.H)}
}

// Compress implements Summary (tv_cmprs): it demotes at least b
// low-frequency indexed terms into the uniform bucket. Because demoting a
// scattered term can add an RLE run without shrinking the summary, the
// step keeps doubling the demotion count until the byte size actually
// decreases (or the index is exhausted).
func (s *Text) Compress(b int) (Summary, int, int) {
	if b < 1 {
		b = 1
	}
	for ; ; b *= 2 {
		c, n := s.H.Compress(b)
		if n == 0 {
			return s, 0, 0
		}
		if saved := s.H.SizeBytes() - c.SizeBytes(); saved > 0 {
			return &Text{H: c}, saved, n
		}
		if n < b {
			// Everything is demoted and the size still did not drop; no
			// further compression is useful.
			return s, 0, 0
		}
	}
}

// Validate implements Summary.
func (s *Text) Validate() error { return s.H.Validate() }
