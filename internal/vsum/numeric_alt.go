package vsum

import (
	"fmt"

	"xcluster/internal/query"
	"xcluster/internal/sampling"
	"xcluster/internal/wavelet"
	"xcluster/internal/xmltree"
)

// NumericKind selects the NUMERIC summarization tool. The paper focuses
// on histograms but notes that "several known tools can be employed,
// including histograms, wavelets, and random sampling"; all three are
// implemented and compared in the ablation benchmarks.
type NumericKind uint8

const (
	// KindHistogram is the paper's primary choice (default).
	KindHistogram NumericKind = iota
	// KindWavelet uses Haar-wavelet synopses.
	KindWavelet
	// KindSample uses uniform random samples.
	KindSample
)

// NumericWavelet summarizes NUMERIC values with a Haar-wavelet synopsis.
type NumericWavelet struct {
	S *wavelet.Summary
}

// NewNumericWavelet builds a wavelet summary (maxCoeffs <= 0 keeps every
// non-zero coefficient, the detailed form).
func NewNumericWavelet(values []int, maxCoeffs int) *NumericWavelet {
	return &NumericWavelet{S: wavelet.Build(values, maxCoeffs)}
}

// Type implements Summary.
func (s *NumericWavelet) Type() xmltree.ValueType { return xmltree.TypeNumeric }

// Count implements Summary.
func (s *NumericWavelet) Count() float64 { return s.S.Total() }

// SizeBytes implements Summary.
func (s *NumericWavelet) SizeBytes() int { return s.S.SizeBytes() }

// Atomics implements Summary: prefix ranges at evenly spaced points of
// the covered domain.
func (s *NumericWavelet) Atomics(limit int) []Atomic {
	lo, hi, ok := s.S.Bounds()
	if !ok {
		return nil
	}
	if limit <= 0 || limit > 16 {
		limit = 16
	}
	out := make([]Atomic, 0, limit)
	for i := 1; i <= limit; i++ {
		h := lo + (hi-lo)*i/limit
		out = append(out, Atomic{Kind: xmltree.TypeNumeric, Lo: lo, Hi: h})
	}
	return out
}

// AtomicSel implements Summary.
func (s *NumericWavelet) AtomicSel(a Atomic) float64 {
	if a.Kind != xmltree.TypeNumeric {
		return 0
	}
	return s.S.Selectivity(a.Lo, a.Hi)
}

// PredSel implements Summary.
func (s *NumericWavelet) PredSel(p query.Pred, _ *xmltree.Dict) float64 {
	r, ok := p.(query.Range)
	if !ok {
		return 0
	}
	return s.S.Selectivity(r.Lo, r.Hi)
}

// Fuse implements Summary.
func (s *NumericWavelet) Fuse(other Summary) Summary {
	o, ok := other.(*NumericWavelet)
	if !ok {
		panic(fmt.Sprintf("vsum: fusing wavelet with %T", other))
	}
	return &NumericWavelet{S: wavelet.Merge(s.S, o.S, 0)}
}

// Compress implements Summary: drops the b smallest-magnitude
// coefficients.
func (s *NumericWavelet) Compress(b int) (Summary, int, int) {
	c, dropped := s.S.Compress(b)
	if dropped == 0 {
		return s, 0, 0
	}
	return &NumericWavelet{S: c}, s.S.SizeBytes() - c.SizeBytes(), dropped
}

// Validate implements Summary.
func (s *NumericWavelet) Validate() error { return s.S.Validate() }

// NumericSample summarizes NUMERIC values with a uniform random sample.
type NumericSample struct {
	S *sampling.Summary
}

// NewNumericSample builds a sample summary of size at most k (<= 0 uses
// the full collection).
func NewNumericSample(values []int, k int, seed int64) *NumericSample {
	if k <= 0 {
		k = len(values)
	}
	return &NumericSample{S: sampling.Build(values, k, seed)}
}

// Type implements Summary.
func (s *NumericSample) Type() xmltree.ValueType { return xmltree.TypeNumeric }

// Count implements Summary.
func (s *NumericSample) Count() float64 { return s.S.Total() }

// SizeBytes implements Summary.
func (s *NumericSample) SizeBytes() int { return s.S.SizeBytes() }

// Atomics implements Summary: prefix ranges at evenly spaced points of
// the sampled domain.
func (s *NumericSample) Atomics(limit int) []Atomic {
	lo, hi, ok := s.S.Bounds()
	if !ok {
		return nil
	}
	if limit <= 0 || limit > 16 {
		limit = 16
	}
	out := make([]Atomic, 0, limit)
	for i := 1; i <= limit; i++ {
		h := lo + (hi-lo)*i/limit
		out = append(out, Atomic{Kind: xmltree.TypeNumeric, Lo: lo, Hi: h})
	}
	return out
}

// AtomicSel implements Summary.
func (s *NumericSample) AtomicSel(a Atomic) float64 {
	if a.Kind != xmltree.TypeNumeric {
		return 0
	}
	return s.S.Selectivity(a.Lo, a.Hi)
}

// PredSel implements Summary.
func (s *NumericSample) PredSel(p query.Pred, _ *xmltree.Dict) float64 {
	r, ok := p.(query.Range)
	if !ok {
		return 0
	}
	return s.S.Selectivity(r.Lo, r.Hi)
}

// Fuse implements Summary.
func (s *NumericSample) Fuse(other Summary) Summary {
	o, ok := other.(*NumericSample)
	if !ok {
		panic(fmt.Sprintf("vsum: fusing sample with %T", other))
	}
	return &NumericSample{S: sampling.Merge(s.S, o.S)}
}

// Compress implements Summary: removes b sample values.
func (s *NumericSample) Compress(b int) (Summary, int, int) {
	c, removed := s.S.Compress(b)
	if removed == 0 {
		return s, 0, 0
	}
	return &NumericSample{S: c}, s.S.SizeBytes() - c.SizeBytes(), removed
}

// Validate implements Summary.
func (s *NumericSample) Validate() error { return s.S.Validate() }
