package vsum

import (
	"math"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

func altNodes(vals ...int) []*xmltree.Node {
	out := make([]*xmltree.Node, len(vals))
	for i, v := range vals {
		out[i] = &xmltree.Node{ID: i, Label: "y", Type: xmltree.TypeNumeric, Num: v}
	}
	return out
}

func TestNumericKindDispatch(t *testing.T) {
	nodes := altNodes(1, 5, 9, 13)
	for kind, wantType := range map[NumericKind]string{
		KindHistogram: "*vsum.Numeric",
		KindWavelet:   "*vsum.NumericWavelet",
		KindSample:    "*vsum.NumericSample",
	} {
		s, err := FromNodes(nodes, BuildOptions{Numeric: kind})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if got := typeName(s); got != wantType {
			t.Fatalf("kind %d: built %s, want %s", kind, got, wantType)
		}
		if s.Count() != 4 {
			t.Fatalf("kind %d: count %g", kind, s.Count())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
	}
}

func typeName(s Summary) string {
	switch s.(type) {
	case *Numeric:
		return "*vsum.Numeric"
	case *NumericWavelet:
		return "*vsum.NumericWavelet"
	case *NumericSample:
		return "*vsum.NumericSample"
	}
	return "?"
}

func TestAltSummariesBehaveLikeSummaries(t *testing.T) {
	vals := []int{1, 2, 3, 10, 10, 10, 20, 30}
	for _, s := range []Summary{
		NewNumericWavelet(vals, 0),
		NewNumericSample(vals, 0, 1),
	} {
		// Detailed forms answer the full range exactly.
		if got := s.PredSel(query.Range{Lo: 0, Hi: 100}, nil); math.Abs(got-1) > 1e-9 {
			t.Fatalf("%T: full-range sel %g", s, got)
		}
		// The heavy value carries ~3/8 of the mass.
		got := s.PredSel(query.Range{Lo: 10, Hi: 10}, nil)
		if math.Abs(got-3.0/8) > 0.15 {
			t.Fatalf("%T: point sel %g, want ~0.375", s, got)
		}
		// Mismatched predicate kind → 0.
		if got := s.PredSel(query.Contains{Substr: "x"}, nil); got != 0 {
			t.Fatalf("%T: mismatched pred %g", s, got)
		}
		// Atomics are monotone prefix ranges.
		atoms := s.Atomics(8)
		prev := 0.0
		for _, a := range atoms {
			sel := s.AtomicSel(a)
			if sel < prev-1e-9 {
				t.Fatalf("%T: atomics not monotone", s)
			}
			prev = sel
		}
		// Compression shrinks without changing the count.
		c, saved, steps := s.Compress(2)
		if steps > 0 {
			if saved <= 0 || c.Count() != s.Count() {
				t.Fatalf("%T: compress saved=%d count=%g", s, saved, c.Count())
			}
		}
	}
}

func TestAltFuse(t *testing.T) {
	aw := NewNumericWavelet([]int{1, 2, 3}, 0)
	bw := NewNumericWavelet([]int{10, 20}, 0)
	fw := aw.Fuse(bw)
	if fw.Count() != 5 {
		t.Fatalf("wavelet fuse count = %g", fw.Count())
	}
	if got := fw.PredSel(query.Range{Lo: 0, Hi: 100}, nil); math.Abs(got-1) > 1e-6 {
		t.Fatalf("wavelet fuse full sel = %g", got)
	}
	as := NewNumericSample([]int{1, 2, 3}, 0, 1)
	bs := NewNumericSample([]int{10, 20}, 0, 2)
	fs := as.Fuse(bs)
	if fs.Count() != 5 {
		t.Fatalf("sample fuse count = %g", fs.Count())
	}
}

func TestAltFusePanicsAcrossKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind fuse did not panic")
		}
	}()
	NewNumericWavelet([]int{1}, 0).Fuse(NewNumeric([]int{1}, 0))
}
