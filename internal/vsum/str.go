package vsum

import (
	"fmt"
	"sort"

	"xcluster/internal/pst"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// String summarizes STRING values with a pruned suffix tree.
type String struct {
	T *pst.Tree
}

// NewString builds a detailed PST summary.
func NewString(strs []string, maxDepth int) *String {
	return &String{T: pst.Build(strs, maxDepth)}
}

// Type implements Summary.
func (s *String) Type() xmltree.ValueType { return xmltree.TypeString }

// Count implements Summary.
func (s *String) Count() float64 { return s.T.Count() }

// SizeBytes implements Summary.
func (s *String) SizeBytes() int { return s.T.SizeBytes() }

// Atomics implements Summary: the substrings retained in the PST. When a
// cap applies, the highest-count substrings are kept (they dominate the
// squared-error sums of the Δ metric).
func (s *String) Atomics(limit int) []Atomic {
	type sc struct {
		sub   string
		count float64
	}
	var all []sc
	s.T.Substrings(func(str string, count float64) bool {
		all = append(all, sc{sub: str, count: count})
		return true
	})
	if limit > 0 && len(all) > limit {
		sort.Slice(all, func(i, j int) bool {
			if all[i].count != all[j].count {
				return all[i].count > all[j].count
			}
			return all[i].sub < all[j].sub
		})
		all = all[:limit]
	}
	out := make([]Atomic, len(all))
	for i, x := range all {
		out[i] = Atomic{Kind: xmltree.TypeString, Sub: x.sub}
	}
	return out
}

// AtomicSel implements Summary.
func (s *String) AtomicSel(a Atomic) float64 {
	if a.Kind != xmltree.TypeString {
		return 0
	}
	return s.T.Selectivity(a.Sub)
}

// PredSel implements Summary.
func (s *String) PredSel(p query.Pred, _ *xmltree.Dict) float64 {
	c, ok := p.(query.Contains)
	if !ok {
		return 0
	}
	return s.T.Selectivity(c.Substr)
}

// Fuse implements Summary.
func (s *String) Fuse(other Summary) Summary {
	o, ok := other.(*String)
	if !ok {
		panic(fmt.Sprintf("vsum: fusing string with %T", other))
	}
	return &String{T: pst.Merge(s.T, o.T)}
}

// FuseAtomicSel implements FusedSeler. The fused PST holds the union
// of the two trees' retained substrings with summed counts, so for a
// substring retained in either tree the fused selectivity is
// (freq_s + freq_o) / (count_s + count_o) — the additions in the same
// order pst.Merge would perform them, so the result is bit-for-bit the
// fused tree's answer without building it. A substring absent from
// both trees (impossible for atomics drawn from this pair, but legal
// input) falls back to a real fusion.
func (s *String) FuseAtomicSel(other Summary, a Atomic) float64 {
	o, ok := other.(*String)
	if !ok {
		panic(fmt.Sprintf("vsum: fusing string with %T", other))
	}
	if a.Kind != xmltree.TypeString {
		return 0
	}
	n := s.T.Count() + o.T.Count()
	if n == 0 {
		return 0
	}
	if a.Sub == "" {
		return 1
	}
	fs, fo := s.T.Freq(a.Sub), o.T.Freq(a.Sub)
	if fs < 0 && fo < 0 {
		return s.Fuse(other).AtomicSel(a)
	}
	f := 0.0
	if fs >= 0 {
		f += fs
	}
	if fo >= 0 {
		f += fo
	}
	return f / n
}

// Compress implements Summary (st_cmprs): it prunes up to b leaves in
// ascending pruning-error order on a copy.
func (s *String) Compress(b int) (Summary, int, int) {
	cl := s.T.Clone()
	removed := cl.Prune(b)
	if removed == 0 {
		return s, 0, 0
	}
	return &String{T: cl}, s.T.SizeBytes() - cl.SizeBytes(), removed
}

// Validate implements Summary.
func (s *String) Validate() error { return s.T.Validate() }
