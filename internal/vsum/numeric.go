package vsum

import (
	"fmt"

	"xcluster/internal/histogram"
	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// Numeric summarizes NUMERIC values with a bucketized histogram.
type Numeric struct {
	H *histogram.Histogram
}

// NewNumeric builds a numeric summary (maxBuckets <= 0 keeps one bucket
// per distinct value, the detailed reference form).
func NewNumeric(values []int, maxBuckets int) *Numeric {
	return &Numeric{H: histogram.Build(values, maxBuckets)}
}

// Type implements Summary.
func (s *Numeric) Type() xmltree.ValueType { return xmltree.TypeNumeric }

// Count implements Summary.
func (s *Numeric) Count() float64 { return s.H.Total() }

// SizeBytes implements Summary.
func (s *Numeric) SizeBytes() int { return s.H.SizeBytes() }

// Atomics implements Summary: prefix ranges [domainMin, h] at every
// bucket boundary, per Section 4.1 of the paper (prefix ranges avoid
// introducing zero-count holes in merged histograms).
func (s *Numeric) Atomics(limit int) []Atomic {
	lo, _, ok := s.H.Bounds()
	if !ok {
		return nil
	}
	bounds := s.H.Boundaries()
	if limit > 0 && len(bounds) > limit {
		// Thin evenly, always keeping the last boundary.
		thinned := make([]int, 0, limit)
		step := float64(len(bounds)) / float64(limit)
		for i := 0; i < limit; i++ {
			thinned = append(thinned, bounds[int(float64(i)*step)])
		}
		thinned[limit-1] = bounds[len(bounds)-1]
		bounds = thinned
	}
	out := make([]Atomic, len(bounds))
	for i, h := range bounds {
		out[i] = Atomic{Kind: xmltree.TypeNumeric, Lo: lo, Hi: h}
	}
	return out
}

// AtomicSel implements Summary.
func (s *Numeric) AtomicSel(a Atomic) float64 {
	if a.Kind != xmltree.TypeNumeric {
		return 0
	}
	return s.H.Selectivity(a.Lo, a.Hi)
}

// PredSel implements Summary.
func (s *Numeric) PredSel(p query.Pred, _ *xmltree.Dict) float64 {
	r, ok := p.(query.Range)
	if !ok {
		return 0
	}
	return s.H.Selectivity(r.Lo, r.Hi)
}

// Fuse implements Summary.
func (s *Numeric) Fuse(other Summary) Summary {
	o, ok := other.(*Numeric)
	if !ok {
		panic(fmt.Sprintf("vsum: fusing numeric with %T", other))
	}
	return &Numeric{H: histogram.Merge(s.H, o.H)}
}

// Compress implements Summary (hist_cmprs): up to b adjacent-bucket
// merges, each chosen to least perturb the atomic prefix-range estimates.
func (s *Numeric) Compress(b int) (Summary, int, int) {
	h := s.H
	steps := 0
	for steps < b {
		c, ok := h.CompressOnce()
		if !ok {
			break
		}
		h = c
		steps++
	}
	if steps == 0 {
		return s, 0, 0
	}
	return &Numeric{H: h}, s.H.SizeBytes() - h.SizeBytes(), steps
}

// Validate implements Summary.
func (s *Numeric) Validate() error { return s.H.Validate() }
