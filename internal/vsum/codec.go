package vsum

import (
	"fmt"

	"xcluster/internal/histogram"
	"xcluster/internal/pst"
	"xcluster/internal/sampling"
	"xcluster/internal/termhist"
	"xcluster/internal/wavelet"
	"xcluster/internal/wire"
)

// Wire tags for the concrete summary implementations. The first three
// coincide with the xmltree.ValueType values of the summaries' types.
const (
	tagHistogram = 1
	tagPST       = 2
	tagTermHist  = 3
	tagWavelet   = 4
	tagSample    = 5
)

// Encode writes a summary with a one-byte implementation tag.
func Encode(w *wire.Writer, s Summary) {
	switch v := s.(type) {
	case *Numeric:
		w.Uint(tagHistogram)
		v.H.Encode(w)
	case *String:
		w.Uint(tagPST)
		v.T.Encode(w)
	case *Text:
		w.Uint(tagTermHist)
		v.H.Encode(w)
	case *NumericWavelet:
		w.Uint(tagWavelet)
		v.S.Encode(w)
	case *NumericSample:
		w.Uint(tagSample)
		v.S.Encode(w)
	default:
		panic(fmt.Sprintf("vsum: Encode: unknown summary %T", s))
	}
}

// Decode reads a summary written by Encode.
func Decode(r *wire.Reader) (Summary, error) {
	tag := r.Uint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	switch tag {
	case tagHistogram:
		return &Numeric{H: histogram.Decode(r)}, r.Err()
	case tagPST:
		return &String{T: pst.Decode(r)}, r.Err()
	case tagTermHist:
		return &Text{H: termhist.Decode(r)}, r.Err()
	case tagWavelet:
		return &NumericWavelet{S: wavelet.Decode(r)}, r.Err()
	case tagSample:
		return &NumericSample{S: sampling.Decode(r)}, r.Err()
	default:
		return nil, fmt.Errorf("vsum: Decode: unknown summary type %d", tag)
	}
}
