package vsum

import (
	"bytes"
	"math"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/wire"
	"xcluster/internal/xmltree"
)

// roundTrip encodes and decodes a summary.
func roundTrip(t *testing.T, s Summary) Summary {
	t.Helper()
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	Encode(w, s)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestCodecAllSummaryKinds(t *testing.T) {
	d := xmltree.NewDict()
	vals := []int{1, 5, 5, 9, 42, 42, 42, 100}
	texts := textNodes(d, "alpha beta gamma", "alpha delta", "beta epsilon zeta")
	var textVecs [][]int
	for _, n := range texts {
		textVecs = append(textVecs, n.Terms)
	}

	summaries := []Summary{
		NewNumeric(vals, 3),
		NewNumericWavelet(vals, 6),
		NewNumericSample(vals, 5, 7),
		NewString([]string{"database", "dataset", "index"}, 4),
		NewText(textVecs),
	}
	// Also a compressed text histogram so the RLE bucket is non-empty.
	tx := NewText(textVecs)
	cApplied, _, steps := tx.Compress(3)
	if steps > 0 {
		summaries = append(summaries, cApplied)
	}

	preds := []query.Pred{
		query.Range{Lo: 0, Hi: 50},
		query.Range{Lo: 42, Hi: 42},
		query.Contains{Substr: "data"},
		query.FTContains{Terms: []string{"alpha"}},
		query.FTSim{Terms: []string{"alpha", "beta"}, Min: 1},
	}
	for _, s := range summaries {
		back := roundTrip(t, s)
		if back.Type() != s.Type() {
			t.Fatalf("%T: type changed to %v", s, back.Type())
		}
		if back.Count() != s.Count() {
			t.Fatalf("%T: count %g -> %g", s, s.Count(), back.Count())
		}
		if back.SizeBytes() != s.SizeBytes() {
			t.Fatalf("%T: size %d -> %d", s, s.SizeBytes(), back.SizeBytes())
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%T: %v", s, err)
		}
		for _, p := range preds {
			a, b := s.PredSel(p, d), back.PredSel(p, d)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%T pred %v: %g -> %g", s, p, a, b)
			}
		}
		// Atomics survive too.
		for _, at := range s.Atomics(8) {
			if x, y := s.AtomicSel(at), back.AtomicSel(at); math.Abs(x-y) > 1e-12 {
				t.Fatalf("%T atomic %+v: %g -> %g", s, at, x, y)
			}
		}
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	// Unknown tag.
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Uint(99)
	_ = w.Flush()
	if _, err := Decode(wire.NewReader(&buf)); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// Truncated stream.
	var buf2 bytes.Buffer
	w2 := wire.NewWriter(&buf2)
	Encode(w2, NewNumeric([]int{1, 2, 3}, 0))
	_ = w2.Flush()
	data := buf2.Bytes()
	if _, err := Decode(wire.NewReader(bytes.NewReader(data[:len(data)/2]))); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
