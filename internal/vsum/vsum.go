// Package vsum unifies the three value-summary mechanisms of the
// XCluster framework — numeric histograms, pruned suffix trees, and
// end-biased term histograms — behind one interface used by the synopsis
// core: selectivity estimation for query predicates, enumeration of
// atomic predicates for the Δ clustering-error metric, fusion on node
// merges, and single-step compression for the value-compression phase.
package vsum

import (
	"fmt"

	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// Atomic is one atomic value predicate of the Δ metric: a prefix range
// [Lo, Hi] for NUMERIC summaries, a retained substring for STRING
// summaries, or a single term for TEXT summaries.
type Atomic struct {
	Kind xmltree.ValueType
	Lo   int    // numeric: domain minimum
	Hi   int    // numeric: prefix upper bound
	Sub  string // string: substring
	Term int    // text: term id
}

// Summary is a compact approximation of the value distribution of an
// XCluster node's extent.
type Summary interface {
	// Type is the value type summarized.
	Type() xmltree.ValueType
	// Count is the number of values summarized.
	Count() float64
	// SizeBytes is the storage charge of the summary.
	SizeBytes() int
	// Atomics enumerates up to limit atomic predicates for the Δ metric
	// (limit <= 0 means no cap).
	Atomics(limit int) []Atomic
	// AtomicSel returns the selectivity (fraction in [0,1]) of an atomic
	// predicate.
	AtomicSel(a Atomic) float64
	// PredSel returns the selectivity of a query value predicate; dict
	// resolves TEXT terms.
	PredSel(p query.Pred, dict *xmltree.Dict) float64
	// Fuse combines the summary with other (same type) into a summary of
	// the union of the two value collections.
	Fuse(other Summary) Summary
	// Compress returns a copy compressed by up to b elementary steps
	// (bucket merges, leaf prunings, or term demotions — the b parameter
	// of hist_cmprs/st_cmprs/tv_cmprs) along with the bytes saved and
	// the steps actually performed. steps == 0 means no further
	// compression is possible; otherwise saved > 0. The receiver is
	// never mutated.
	Compress(b int) (s Summary, saved int, steps int)
	// Validate checks internal invariants.
	Validate() error
}

// FusedSeler is an optional Summary extension: summaries that can
// answer selectivity questions about s.Fuse(other) without
// materializing the fused summary implement it. FuseAtomicSel must
// return exactly — bit for bit — what s.Fuse(other).AtomicSel(a)
// would: the Δ evaluator treats the fast path as a pure optimization,
// and synopsis builds must not depend on whether it was taken.
type FusedSeler interface {
	FuseAtomicSel(other Summary, a Atomic) float64
}

// FromNodes builds a detailed summary of the values of nodes, which must
// all share the same non-null value type. opts tune the detailed forms.
func FromNodes(nodes []*xmltree.Node, opts BuildOptions) (Summary, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("vsum: FromNodes on empty extent")
	}
	vt := nodes[0].Type
	for _, n := range nodes {
		if n.Type != vt {
			return nil, fmt.Errorf("vsum: mixed value types %v and %v", vt, n.Type)
		}
	}
	switch vt {
	case xmltree.TypeNumeric:
		vals := make([]int, len(nodes))
		for i, n := range nodes {
			vals[i] = n.Num
		}
		var s Summary
		switch opts.Numeric {
		case KindWavelet:
			s = NewNumericWavelet(vals, 0)
		case KindSample:
			s = NewNumericSample(vals, 0, int64(len(vals))*7919+int64(nodes[0].ID))
		default:
			s = NewNumeric(vals, opts.HistBuckets)
		}
		return capSummary(s, opts.MaxSummaryBytes), nil
	case xmltree.TypeString:
		strs := make([]string, len(nodes))
		for i, n := range nodes {
			strs[i] = n.Str
		}
		return capSummary(NewString(strs, opts.PSTDepth), opts.MaxSummaryBytes), nil
	case xmltree.TypeText:
		vecs := make([][]int, len(nodes))
		for i, n := range nodes {
			vecs[i] = n.Terms
		}
		return capSummary(NewText(vecs), opts.MaxSummaryBytes), nil
	default:
		return nil, fmt.Errorf("vsum: cannot summarize %v values", vt)
	}
}

// BuildOptions tune the detailed summaries of the reference synopsis.
type BuildOptions struct {
	// Numeric selects the NUMERIC summarization tool (histogram,
	// wavelet, or sample; histogram is the paper's default).
	Numeric NumericKind
	// HistBuckets caps the buckets of a detailed NUMERIC histogram
	// (<= 0: one bucket per distinct value).
	HistBuckets int
	// PSTDepth bounds retained substring length (<= 0: pst.DefaultMaxDepth).
	PSTDepth int
	// MaxSummaryBytes caps each detailed summary's storage, compressing
	// with the summary's own lowest-error operations until it fits
	// (<= 0: unbounded). The paper's reference summaries are detailed
	// but compact (its references average a few hundred bytes per value
	// node); an unbounded detailed form duplicates heavily across the
	// many small clusters of the reference partition.
	MaxSummaryBytes int
}

// capSummary compresses s until it fits within maxBytes.
func capSummary(s Summary, maxBytes int) Summary {
	if maxBytes <= 0 {
		return s
	}
	for s.SizeBytes() > maxBytes {
		next, _, steps := s.Compress(8)
		if steps == 0 {
			break
		}
		s = next
	}
	return s
}
