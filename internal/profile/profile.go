package profile

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/query"
)

// Sizing defaults. The lookup cache (canonical-hash → shape entry) is
// larger than the shape table because many canonicals (distinct
// predicate constants) map onto one shape; when it fills it is cleared
// wholesale and repopulated by subsequent misses, so its memory stays
// bounded no matter how many distinct constants the workload carries.
const (
	// DefaultCapacity is the default number of distinct query shapes
	// the space-saving table tracks.
	DefaultCapacity = 256
	// DefaultWindow is the default rolling-window width behind rates
	// and traffic shares.
	DefaultWindow = 60 * time.Second
	// lookupFactor scales the canonical-lookup cache relative to the
	// shape capacity.
	lookupFactor = 8
)

// shapeEntry is one tracked shape. Hot-path counters are atomics
// bumped under the profiler's read lock; identity fields are immutable
// after admission, so the hot path never takes the write lock.
type shapeEntry struct {
	shape string
	id    string // 16-hex of hash64(shape), pre-rendered (no per-hit alloc)
	class accuracy.Class
	// errBound is the space-saving overestimate bound inherited from
	// the evicted minimum at admission (0 for shapes admitted into a
	// non-full table). count - errBound occurrences were truly observed.
	errBound uint64
	// evicted flips when the entry loses its table slot; stale lookup
	// cache hits check it and fall through to the admission path.
	evicted atomic.Bool

	count   atomic.Uint64 // space-saving count (includes errBound)
	failed  atomic.Uint64
	latNs   atomic.Int64
	selBits atomic.Uint64 // float64 bits of the selectivity sum
	winCur  atomic.Uint64 // current rolling-window count
	winPrev atomic.Uint64 // previous full window's count
}

// bump records one occurrence into the entry's counters. Callers hold
// the profiler's read lock, so window rotation (write lock) never
// interleaves with a bump.
func (e *shapeEntry) bump(d time.Duration, estimate float64, failed bool) {
	e.count.Add(1)
	e.winCur.Add(1)
	e.latNs.Add(d.Nanoseconds())
	addFloat(&e.selBits, estimate)
	if failed {
		e.failed.Add(1)
	}
}

// classCounters holds one accuracy class's eviction residue: the
// truly-observed statistics of shapes the bounded table displaced,
// folded in under the write lock when their entry is evicted or the
// profiler resets. Class totals at snapshot time are this residue plus
// the live entries' observed statistics, so they stay exact even when
// shape counts are sketched — without a second set of atomic bumps on
// the hot path.
type classCounters struct {
	count   atomic.Uint64
	failed  atomic.Uint64
	latNs   atomic.Int64
	selBits atomic.Uint64
	winCur  atomic.Uint64
	winPrev atomic.Uint64
}

// absorb folds an evicted entry's observed statistics into the
// residue. Callers hold the write lock, so no bump races the folds.
func (c *classCounters) absorb(e *shapeEntry) {
	c.count.Add(e.count.Load() - e.errBound)
	c.failed.Add(e.failed.Load())
	c.latNs.Add(e.latNs.Load())
	addFloat(&c.selBits, loadFloat(&e.selBits))
	c.winCur.Add(e.winCur.Load())
	c.winPrev.Add(e.winPrev.Load())
}

// addFloat accumulates v into a float64 stored as atomic bits.
func addFloat(b *atomic.Uint64, v float64) {
	for {
		old := b.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if b.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Profiler sketches the live workload. The serving hot path calls
// Record once per estimate; everything else (snapshots, Prometheus
// sync, profile export) reads off the hot path.
//
// Concurrency: a canonical already in the lookup cache costs one
// RLock, one map read, and four atomic updates on its own entry — no
// allocation, no write lock, no shared-counter contention (class
// aggregates are derived at snapshot time from the entries plus the
// eviction residue). The write lock is taken only on admission (a
// canonical or shape seen for the first time, or re-seen after
// eviction), window rotation (once per window), snapshots, and Reset.
//
// Shapes are identified by 64-bit hashes; a collision merges two
// shapes' statistics, which is acceptable for a frequency sketch and
// astronomically unlikely at the table sizes involved.
//
// A nil *Profiler is a valid disabled profiler: Record reports "" and
// every accessor returns zero values.
type Profiler struct {
	capacity  int
	window    time.Duration
	lookupCap int

	// windowStart is the unix-nano start of the current window, read
	// lock-free on the hot path to decide whether rotation is due.
	windowStart atomic.Int64
	evictions   atomic.Uint64

	mu      sync.RWMutex
	lookup  map[uint64]*shapeEntry // canonical hash → entry (cache)
	shapes  map[string]*shapeEntry // shape → entry (authoritative, ≤ capacity)
	residue [accuracy.NumClasses]classCounters
}

// New returns a profiler tracking up to capacity shapes
// (DefaultCapacity when <= 0) over rolling windows of width window
// (DefaultWindow when <= 0).
func New(capacity int, window time.Duration) *Profiler {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if window <= 0 {
		window = DefaultWindow
	}
	p := &Profiler{
		capacity:  capacity,
		window:    window,
		lookupCap: capacity * lookupFactor,
		lookup:    make(map[uint64]*shapeEntry, capacity*lookupFactor),
		shapes:    make(map[string]*shapeEntry, capacity),
	}
	p.windowStart.Store(time.Now().UnixNano())
	return p
}

// Capacity returns the shape-table capacity (0 on a nil profiler).
func (p *Profiler) Capacity() int {
	if p == nil {
		return 0
	}
	return p.capacity
}

// Window returns the rolling-window width (0 on a nil profiler).
func (p *Profiler) Window() time.Duration {
	if p == nil {
		return 0
	}
	return p.window
}

// Record sketches one served estimate: the query q, its canonical
// string and hash (hash 0 recomputes from canonical — callers on the
// traced pipeline pass core's EstimateTrace.CanonicalHash so the
// string is hashed once per request), its latency, the estimate it
// produced, and whether it failed. now is the estimate's start time
// (the caller already has it; Record never reads the clock).
//
// It returns the shape's pre-rendered 16-hex ID — the join key between
// /debug/slowlog entries and /debug/workload shapes — or "" on a nil
// profiler.
func (p *Profiler) Record(now time.Time, q *query.Query, canonical string, hash uint64, d time.Duration, estimate float64, failed bool) string {
	if p == nil {
		return ""
	}
	if hash == 0 {
		hash = hash64(canonical)
	}
	p.maybeRotate(now)
	p.mu.RLock()
	if e := p.lookup[hash]; e != nil && !e.evicted.Load() {
		e.bump(d, estimate, failed)
		p.mu.RUnlock()
		return e.id
	}
	p.mu.RUnlock()
	return p.admit(q, hash, d, estimate, failed)
}

// admit is Record's miss path: compute the shape (the only per-record
// allocation, paid once per distinct canonical), classify it, and
// install it in the space-saving table, evicting the minimum-count
// shape when the table is full.
func (p *Profiler) admit(q *query.Query, hash uint64, d time.Duration, estimate float64, failed bool) string {
	shape := ShapeOf(q)
	p.mu.Lock()
	e := p.shapes[shape]
	if e == nil {
		var inherited uint64
		if len(p.shapes) >= p.capacity {
			victim := p.minEntry()
			delete(p.shapes, victim.shape)
			victim.evicted.Store(true)
			p.evictions.Add(1)
			// The victim's truly-observed traffic moves into its class's
			// residue so class totals stay exact.
			p.residue[victim.class].absorb(victim)
			// Space-saving: the newcomer inherits the evicted minimum's
			// count as its overestimate bound — it may have occurred up
			// to that many times while untracked.
			inherited = victim.count.Load()
		}
		e = &shapeEntry{
			shape:    shape,
			id:       shapeID(shape),
			class:    accuracy.Classify(q),
			errBound: inherited,
		}
		e.count.Store(inherited)
		p.shapes[shape] = e
	}
	if len(p.lookup) >= p.lookupCap {
		clear(p.lookup)
	}
	p.lookup[hash] = e
	e.bump(d, estimate, failed)
	p.mu.Unlock()
	return e.id
}

// minEntry scans the full table for the eviction victim: the
// minimum-count entry, ties broken toward the lexicographically
// largest shape. Both keys are deterministic, so eviction order does
// not depend on map iteration order. O(capacity), paid only when a new
// shape displaces one from a full table.
func (p *Profiler) minEntry() *shapeEntry {
	var victim *shapeEntry
	for _, e := range p.shapes {
		if victim == nil {
			victim = e
			continue
		}
		c, vc := e.count.Load(), victim.count.Load()
		if c < vc || (c == vc && e.shape > victim.shape) {
			victim = e
		}
	}
	return victim
}

// maybeRotate advances the rolling window when it has expired: the
// current window's counts become the previous window's, lock-free
// checked on every Record but taking the write lock at most once per
// window per profiler.
func (p *Profiler) maybeRotate(now time.Time) {
	nowNs := now.UnixNano()
	ws := p.windowStart.Load()
	if nowNs-ws < int64(p.window) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ws = p.windowStart.Load()
	elapsed := nowNs - ws
	if elapsed < int64(p.window) {
		return // another goroutine rotated first
	}
	// More than two windows idle: both generations are stale.
	stale := elapsed >= 2*int64(p.window)
	for _, e := range p.shapes {
		rotate(&e.winCur, &e.winPrev, stale)
	}
	for i := range p.residue {
		rotate(&p.residue[i].winCur, &p.residue[i].winPrev, stale)
	}
	p.windowStart.Store(nowNs)
}

func rotate(cur, prev *atomic.Uint64, stale bool) {
	c := cur.Swap(0)
	if stale {
		c = 0
	}
	prev.Store(c)
}

// Reset clears every counter, shape, and cached lookup, starting a
// fresh profile (e.g. after exporting one for an adaptive rebuild).
func (p *Profiler) Reset(now time.Time) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	clear(p.lookup)
	for _, e := range p.shapes {
		e.evicted.Store(true)
	}
	clear(p.shapes)
	for i := range p.residue {
		c := &p.residue[i]
		c.count.Store(0)
		c.failed.Store(0)
		c.latNs.Store(0)
		c.selBits.Store(0)
		c.winCur.Store(0)
		c.winPrev.Store(0)
	}
	p.evictions.Store(0)
	p.windowStart.Store(now.UnixNano())
}
