package profile

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/query"
)

// buildProfile produces a populated artifact for codec tests.
func buildProfile(t *testing.T) Profile {
	t.Helper()
	p := New(8, time.Minute)
	now := time.Now()
	for _, s := range []string{
		"//book[year>1990]", "//book[year>2005]", "//book",
		"//book[title contains(x)]", "//book[summary ftcontains(y)]",
	} {
		q := mustParse(t, s)
		p.Record(now, q, q.String(), 0, 2*time.Millisecond, 0.25, false)
	}
	rep := accuracy.Report{Classes: []accuracy.ClassReport{
		{Class: "range", Samples: 3, AvgRelError: 0.4},
	}}
	return p.Profile(now, rep)
}

func TestProfileRoundTrip(t *testing.T) {
	orig := buildProfile(t)
	if orig.Version != ProfileVersion || orig.Fingerprint == "" {
		t.Fatalf("artifact identity = v%d %q", orig.Version, orig.Fingerprint)
	}
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	// Export → parse must reproduce the snapshot exactly, field for
	// field — the acceptance contract of the WorkloadProfile artifact.
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, orig)
	}
	// And re-encoding the parsed artifact is byte-identical.
	data2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Fatal("re-encoded artifact differs from original bytes")
	}
}

func TestParseRejectsWrongVersion(t *testing.T) {
	p := buildProfile(t)
	p.Version = ProfileVersion + 1
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); !errors.Is(err, ErrProfileVersion) {
		t.Fatalf("parse of v%d = %v, want ErrProfileVersion", p.Version, err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	data, err := Encode(buildProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), `"version"`, `"surprise": 1, "version"`, 1)
	if _, err := Parse([]byte(mutated)); err == nil {
		t.Fatal("parse accepted an unknown field")
	}
}

func TestParseRejectsFingerprintMismatch(t *testing.T) {
	p := buildProfile(t)
	p.Fingerprint = "0000000000000000"
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Parse(data)
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("parse of tampered profile = %v, want fingerprint mismatch", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	data, err := Encode(buildProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(append(data, []byte("{}")...)); err == nil {
		t.Fatal("parse accepted trailing data")
	}
}

func TestFingerprintIgnoresCaptureTime(t *testing.T) {
	p := New(8, time.Minute)
	now := time.Now()
	q := mustParse(t, "//book")
	record(p, now, q)
	a := p.Profile(now, accuracy.Report{})
	b := p.Profile(now.Add(time.Hour), accuracy.Report{})
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("identical traffic fingerprints differ: %q vs %q", a.Fingerprint, b.Fingerprint)
	}
	record(p, now, mustParse(t, "//book/title"))
	if c := p.Profile(now, accuracy.Report{}); c.Fingerprint == a.Fingerprint {
		t.Fatal("fingerprint unchanged after new traffic")
	}
}

// FuzzParseProfile throws arbitrary bytes at the artifact parser: it
// must never panic, and anything it accepts must re-encode and re-parse
// to the same artifact.
func FuzzParseProfile(f *testing.F) {
	p := New(4, time.Minute)
	now := time.Unix(1700000000, 0)
	for _, s := range []string{"//book", "//book[year>1990]"} {
		q, err := query.Parse(s)
		if err != nil {
			f.Fatal(err)
		}
		p.Record(now, q, q.String(), 0, time.Millisecond, 0.5, false)
	}
	if data, err := Encode(p.Profile(now, accuracy.Report{})); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"fingerprint":"x"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return
		}
		out, err := Encode(parsed)
		if err != nil {
			t.Fatalf("accepted profile failed to encode: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("re-encoded accepted profile failed to parse: %v", err)
		}
		if !reflect.DeepEqual(again, parsed) {
			t.Fatal("accepted profile is not a round-trip fixed point")
		}
	})
}
