package profile

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/obs"
)

// ShapeStat is one tracked shape's statistics in a Snapshot.
type ShapeStat struct {
	// ID is the shape's 16-hex identifier; slow-query-log entries carry
	// the same ID, so /debug/slowlog rows join against these.
	ID    string `json:"id"`
	Shape string `json:"shape"`
	Class string `json:"class"`
	// Count is the space-saving frequency estimate; CountError bounds
	// its overestimate (the true count lies in [Count-CountError, Count]).
	Count      uint64 `json:"count"`
	CountError uint64 `json:"count_error,omitempty"`
	Failed     uint64 `json:"failed,omitempty"`
	// RatePerSec is the shape's observed rate over the rolling window.
	RatePerSec float64 `json:"rate_per_sec"`
	// AvgLatencyNanos and AvgSelectivity average over the occurrences
	// actually observed (Count - CountError).
	AvgLatencyNanos int64   `json:"avg_latency_nanos"`
	AvgSelectivity  float64 `json:"avg_selectivity"`
}

// ClassStat is one accuracy class's aggregate in a Snapshot. Unlike
// shape rows, class totals are exact: they count every request, even
// ones whose shape the bounded table evicted.
type ClassStat struct {
	Class      string  `json:"class"`
	Count      uint64  `json:"count"`
	Failed     uint64  `json:"failed"`
	RatePerSec float64 `json:"rate_per_sec"`
	// TrafficShare is the class's fraction of rolling-window traffic
	// (lifetime traffic when the window is empty).
	TrafficShare    float64 `json:"traffic_share"`
	AvgLatencyNanos int64   `json:"avg_latency_nanos"`
	AvgSelectivity  float64 `json:"avg_selectivity"`
	// RelError is the accuracy monitor's error for the class, filled by
	// Join: the rolling-window mean when the monitor has recent
	// samples, the lifetime mean otherwise (ErrorSource says which).
	RelError    float64 `json:"rel_error"`
	ErrorSource string  `json:"error_source,omitempty"`
	// Pain is TrafficShare × RelError: how much this class's error
	// hurts the live workload. A rarely-queried class with terrible
	// error scores low; a hot class with modest error scores high.
	Pain float64 `json:"pain"`
}

// Snapshot is a point-in-time view of the profiler, shared by
// GET /debug/workload and the exported WorkloadProfile artifact.
type Snapshot struct {
	WindowSeconds float64 `json:"window_seconds"`
	Capacity      int     `json:"capacity"`
	// TotalRequests and TotalErrors are lifetime (exact) totals.
	TotalRequests uint64 `json:"total_requests"`
	TotalErrors   uint64 `json:"total_errors"`
	TrackedShapes int    `json:"tracked_shapes"`
	// Evictions counts shapes displaced from the full table; nonzero
	// means the shape list is a sketch of a wider shape population.
	Evictions uint64 `json:"evictions"`
	// Classes always lists every accuracy class in report order, zero
	// rows included, so class mixes compare across snapshots.
	Classes []ClassStat `json:"classes"`
	// Shapes sorts by Count descending, shape ascending (deterministic
	// under ties).
	Shapes []ShapeStat `json:"shapes"`
}

// Snapshot renders the profiler's state at time now. The rolling rate
// of each row blends the current partial window with the decaying
// remainder of the previous one (a standard sliding-window estimate).
// Returns the zero Snapshot on a nil profiler.
func (p *Profiler) Snapshot(now time.Time) Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := Snapshot{
		WindowSeconds: p.window.Seconds(),
		Capacity:      p.capacity,
		TrackedShapes: len(p.shapes),
		Evictions:     p.evictions.Load(),
	}
	// prevWeight is the surviving fraction of the previous window in
	// the sliding estimate; elapsed is clamped to the window width.
	elapsed := now.UnixNano() - p.windowStart.Load()
	if elapsed < 0 {
		elapsed = 0
	}
	if elapsed > int64(p.window) {
		elapsed = int64(p.window)
	}
	prevWeight := float64(int64(p.window)-elapsed) / float64(p.window)
	windowed := func(cur, prev uint64) float64 {
		return float64(cur) + float64(prev)*prevWeight
	}

	// Entries in deterministic (count descending, shape ascending)
	// order: both the shape rows and the class aggregation below walk
	// this list, so two snapshots of unchanged state are bit-identical
	// — float sums are order-sensitive in their last ulp.
	entries := make([]*shapeEntry, 0, len(p.shapes))
	for _, e := range p.shapes {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		ci, cj := entries[i].count.Load(), entries[j].count.Load()
		if ci != cj {
			return ci > cj
		}
		return entries[i].shape < entries[j].shape
	})

	// Class aggregates: the eviction residue plus the live entries'
	// observed statistics. Every Record bumps exactly one live entry and
	// eviction folds the victim's observed traffic into the residue, so
	// these totals are exact even though shape counts are sketched.
	type classAgg struct {
		count, failed, winCur, winPrev uint64
		latNs                          int64
		sel                            float64
	}
	agg := make([]classAgg, accuracy.NumClasses)
	for i := range p.residue {
		c := &p.residue[i]
		agg[i] = classAgg{
			count:   c.count.Load(),
			failed:  c.failed.Load(),
			winCur:  c.winCur.Load(),
			winPrev: c.winPrev.Load(),
			latNs:   c.latNs.Load(),
			sel:     loadFloat(&c.selBits),
		}
	}
	for _, e := range entries {
		a := &agg[e.class]
		a.count += e.count.Load() - e.errBound
		a.failed += e.failed.Load()
		a.winCur += e.winCur.Load()
		a.winPrev += e.winPrev.Load()
		a.latNs += e.latNs.Load()
		a.sel += loadFloat(&e.selBits)
	}

	var winTotal, lifeTotal float64
	classWin := make([]float64, accuracy.NumClasses)
	for i := range agg {
		classWin[i] = windowed(agg[i].winCur, agg[i].winPrev)
		winTotal += classWin[i]
		lifeTotal += float64(agg[i].count)
	}
	for _, cl := range accuracy.Classes() {
		a := &agg[cl]
		st := ClassStat{
			Class:      cl.String(),
			Count:      a.count,
			Failed:     a.failed,
			RatePerSec: classWin[cl] / p.window.Seconds(),
		}
		if winTotal > 0 {
			st.TrafficShare = classWin[cl] / winTotal
		} else if lifeTotal > 0 {
			st.TrafficShare = float64(a.count) / lifeTotal
		}
		if a.count > 0 {
			st.AvgLatencyNanos = a.latNs / int64(a.count)
			st.AvgSelectivity = a.sel / float64(a.count)
		}
		snap.Classes = append(snap.Classes, st)
		snap.TotalRequests += a.count
		snap.TotalErrors += a.failed
	}

	snap.Shapes = make([]ShapeStat, 0, len(entries))
	for _, e := range entries {
		count := e.count.Load()
		observed := count - e.errBound
		st := ShapeStat{
			ID:         e.id,
			Shape:      e.shape,
			Class:      e.class.String(),
			Count:      count,
			CountError: e.errBound,
			Failed:     e.failed.Load(),
			RatePerSec: windowed(e.winCur.Load(), e.winPrev.Load()) / p.window.Seconds(),
		}
		if observed > 0 {
			st.AvgLatencyNanos = e.latNs.Load() / int64(observed)
			st.AvgSelectivity = loadFloat(&e.selBits) / float64(observed)
		}
		snap.Shapes = append(snap.Shapes, st)
	}
	return snap
}

// loadFloat reads a float64 accumulated as atomic bits (see addFloat).
func loadFloat(b *atomic.Uint64) float64 {
	return math.Float64frombits(b.Load())
}

// Join fills each class row's RelError and Pain from the accuracy
// monitor's report: the class's rolling-window mean error when the
// monitor has recent samples, its lifetime mean otherwise. Classes the
// monitor has never scored keep RelError 0 — no error signal, no pain.
func (s *Snapshot) Join(rep accuracy.Report) {
	byClass := make(map[string]accuracy.ClassReport, len(rep.Classes))
	for _, c := range rep.Classes {
		byClass[c.Class] = c
	}
	for i := range s.Classes {
		cr, ok := byClass[s.Classes[i].Class]
		if !ok {
			continue
		}
		if cr.RecentSamples > 0 {
			s.Classes[i].RelError = cr.RecentAvg
			s.Classes[i].ErrorSource = "recent"
		} else if cr.Samples > 0 {
			s.Classes[i].RelError = cr.AvgRelError
			s.Classes[i].ErrorSource = "lifetime"
		}
		s.Classes[i].Pain = s.Classes[i].TrafficShare * s.Classes[i].RelError
	}
}

// Sync mirrors the profiler into xcluster_workload_* registry series;
// the service calls it at scrape time, never on the hot path. rep is
// the accuracy monitor's report backing the pain gauges.
func (p *Profiler) Sync(r *obs.Registry, rep accuracy.Report, now time.Time) {
	if p == nil {
		return
	}
	snap := p.Snapshot(now)
	snap.Join(rep)
	for _, c := range snap.Classes {
		label := `class="` + c.Class + `"`
		r.Counter("xcluster_workload_requests_total", label).Store(c.Count)
		r.Counter("xcluster_workload_errors_total", label).Store(c.Failed)
		r.Gauge("xcluster_workload_class_share", label).Set(c.TrafficShare)
		r.Gauge("xcluster_workload_pain_score", label).Set(c.Pain)
	}
	r.Gauge("xcluster_workload_shapes_tracked", "").Set(float64(snap.TrackedShapes))
	r.Counter("xcluster_workload_shape_evictions_total", "").Store(snap.Evictions)
}

// Coverage thresholds: a class is flagged as starved when it carries
// at least MinCoverageShare of the traffic but its synopsis component
// holds less than 1/CoverageSlack of a proportional budget share.
const (
	MinCoverageShare = 0.05
	CoverageSlack    = 2.0
)

// BudgetSplit is the served synopsis's byte split by component, the
// same numbers GET /debug/synopsis reports.
type BudgetSplit struct {
	NodeBytes      int `json:"node_bytes"`
	EdgeBytes      int `json:"edge_bytes"`
	HistogramBytes int `json:"histogram_bytes"`
	PSTBytes       int `json:"pst_bytes"`
	TermHistBytes  int `json:"termhist_bytes"`
}

// CoverageRow compares one class's observed traffic against the
// synopsis bytes funding the summaries that answer it.
type CoverageRow struct {
	Class string `json:"class"`
	// Component names the synopsis component that serves the class:
	// struct (nodes+edges), histogram, pst, or termhist. ftcontains and
	// ftsim share the termhist component.
	Component    string  `json:"component"`
	TrafficShare float64 `json:"traffic_share"`
	Pain         float64 `json:"pain"`
	BudgetBytes  int     `json:"budget_bytes"`
	BudgetShare  float64 `json:"budget_share"`
	// Pressure is TrafficShare / BudgetShare (0 when the component has
	// no budget — see Starved).
	Pressure float64 `json:"pressure"`
	// Starved flags misallocation: the class carries a material traffic
	// share but its component's budget share lags by more than
	// CoverageSlack (or is zero).
	Starved bool `json:"starved,omitempty"`
}

// CoverageReport is the synopsis coverage section of
// GET /debug/workload: observed class mix versus budget byte split.
type CoverageReport struct {
	TotalBudgetBytes int           `json:"total_budget_bytes"`
	Rows             []CoverageRow `json:"rows"`
	// Starved lists the flagged classes (report order).
	Starved []string `json:"starved,omitempty"`
}

// classComponent maps an accuracy class to the budget component that
// answers its predicates.
func classComponent(class string, b BudgetSplit) (string, int) {
	switch class {
	case accuracy.Range.String():
		return "histogram", b.HistogramBytes
	case accuracy.Substring.String():
		return "pst", b.PSTBytes
	case accuracy.FTContains.String(), accuracy.FTSim.String():
		return "termhist", b.TermHistBytes
	default:
		return "struct", b.NodeBytes + b.EdgeBytes
	}
}

// Coverage joins the snapshot's class mix (after Join, so pain scores
// are populated) against the synopsis budget split, flagging classes
// whose traffic outruns their component's funding.
func Coverage(classes []ClassStat, b BudgetSplit) CoverageReport {
	total := b.NodeBytes + b.EdgeBytes + b.HistogramBytes + b.PSTBytes + b.TermHistBytes
	rep := CoverageReport{TotalBudgetBytes: total, Rows: make([]CoverageRow, 0, len(classes))}
	for _, c := range classes {
		component, bytes := classComponent(c.Class, b)
		row := CoverageRow{
			Class:        c.Class,
			Component:    component,
			TrafficShare: c.TrafficShare,
			Pain:         c.Pain,
			BudgetBytes:  bytes,
		}
		if total > 0 {
			row.BudgetShare = float64(bytes) / float64(total)
		}
		if row.BudgetShare > 0 {
			row.Pressure = row.TrafficShare / row.BudgetShare
		}
		if c.TrafficShare >= MinCoverageShare &&
			row.BudgetShare*CoverageSlack < c.TrafficShare {
			row.Starved = true
			rep.Starved = append(rep.Starved, c.Class)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
