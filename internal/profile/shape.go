// Package profile is the live workload profiler: a lock-light,
// bounded sketch of the query shapes a serving hot path actually sees.
// It canonicalizes each query into a predicate-elided shape, counts
// shapes in a space-saving top-K frequency table, tracks per-shape and
// per-class rates, latency, and selectivity over rolling windows, and
// joins the accuracy monitor's per-class error into a traffic×error
// "pain" score — the workload side of the accuracy loop that a
// workload-adaptive budget allocator consumes. Snapshots render at
// GET /debug/workload, mirror into xcluster_workload_* Prometheus
// series at scrape time, and persist as a versioned WorkloadProfile
// JSON artifact (codec.go).
package profile

import (
	"fmt"
	"strings"

	"xcluster/internal/query"
)

// shapePlaceholder replaces every predicate constant in a shape string,
// so queries differing only in constants collapse into one shape.
const shapePlaceholder = "?"

// ShapeOf canonicalizes a query into its shape: the query's structure
// (steps, axes, branching) plus each predicate's kind, with constant
// values elided. //book[year range(1990,2000)] and
// //book[year range(1960,1975)] share the shape //book[year range(?)];
// they differ only in constants the optimizer binds at runtime.
func ShapeOf(q *query.Query) string {
	var sb strings.Builder
	for i, r := range q.Roots {
		if i == 0 {
			shapeNode(&sb, r)
		} else {
			sb.WriteString("[")
			shapeNode(&sb, r)
			sb.WriteString("]")
		}
	}
	return sb.String()
}

// shapeNode mirrors query.Query's renderer with predicates elided to
// kind(?) placeholders. Branch structure is preserved exactly: brackets
// are what create variable boundaries in the query grammar.
func shapeNode(sb *strings.Builder, v *query.Node) {
	for _, s := range v.Steps {
		sb.WriteString(s.String())
	}
	if v.Pred != nil {
		sb.WriteString("[")
		sb.WriteString(predShape(v.Pred))
		sb.WriteString("]")
	}
	for _, c := range v.Children {
		sb.WriteString("[")
		shapeNode(sb, c)
		sb.WriteString("]")
	}
}

// predShape renders a predicate with its constants elided.
func predShape(p query.Pred) string {
	switch p.Kind() {
	case query.KindRange:
		return "range(" + shapePlaceholder + ")"
	case query.KindContains:
		return "contains(" + shapePlaceholder + ")"
	case query.KindFTContains:
		return "ftcontains(" + shapePlaceholder + ")"
	case query.KindFTSim:
		return "ftsim(" + shapePlaceholder + ")"
	default:
		return p.Kind().String() + "(" + shapePlaceholder + ")"
	}
}

// shapeID renders a shape's 16-hex identifier — the join key shared by
// /debug/workload, slow-query-log entries, and exported profiles.
func shapeID(shape string) string {
	return fmt.Sprintf("%016x", hash64(shape))
}

// hash64 is FNV-1a over s — the same canonical-string hash
// core.SelectivityTraced stamps on every trace (EstimateTrace
// CanonicalHash), recomputed here only for callers that bypass the
// traced pipeline.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
