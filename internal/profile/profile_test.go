package profile

import (
	"strings"
	"sync"
	"testing"
	"time"

	"xcluster/internal/accuracy"
	"xcluster/internal/obs"
	"xcluster/internal/query"
)

// mustParse parses a query or fails the test.
func mustParse(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return q
}

// record sketches one query with fixed latency/selectivity, hashing the
// canonical itself (hash 0) the way an untraced caller would.
func record(p *Profiler, now time.Time, q *query.Query) string {
	return p.Record(now, q, q.String(), 0, time.Millisecond, 0.5, false)
}

func TestShapeOfElidesConstants(t *testing.T) {
	cases := []struct {
		a, b string // queries that must share one shape
		want string
	}{
		{"//book[year>1990]", "//book[year>2005]", "//book[/year[range(?)]]"},
		{"//book[year range(1960,1975)]", "//book[year range(1,2)]", "//book[/year[range(?)]]"},
		{"//book[title contains(Title 1)]", "//book[title contains(zzz)]", "//book[/title[contains(?)]]"},
		{"//book[summary ftcontains(concurrency)]", "//book[summary ftcontains(x)]", "//book[/summary[ftcontains(?)]]"},
		{"//book", "//book", "//book"},
	}
	for _, c := range cases {
		sa, sb := ShapeOf(mustParse(t, c.a)), ShapeOf(mustParse(t, c.b))
		if sa != c.want || sb != c.want {
			t.Errorf("ShapeOf(%q)=%q ShapeOf(%q)=%q, want both %q", c.a, sa, c.b, sb, c.want)
		}
	}
	// Different predicate paths and branch structures stay distinct.
	distinct := []string{
		"//book",
		"//book/title",
		"//book[year>1990]",
		"//book[pages>=300]",
		"//book[year>1980][pages<250]",
		"//book[year>1990]/title",
	}
	seen := make(map[string]string)
	for _, s := range distinct {
		sh := ShapeOf(mustParse(t, s))
		if prev, dup := seen[sh]; dup {
			t.Errorf("shape %q collides: %q and %q", sh, prev, s)
		}
		seen[sh] = s
	}
}

func TestRecordCountsAndShapeIDJoin(t *testing.T) {
	p := New(8, time.Minute)
	now := time.Now()
	q1 := mustParse(t, "//book[year>1990]")
	q2 := mustParse(t, "//book[year>2005]") // same shape, different constant
	id1 := record(p, now, q1)
	id2 := record(p, now, q2)
	if id1 == "" || id1 != id2 {
		t.Fatalf("same-shape queries got IDs %q and %q, want equal and nonempty", id1, id2)
	}
	p.Record(now, q1, q1.String(), 0, 3*time.Millisecond, 0.25, true)

	snap := p.Snapshot(now)
	if snap.TotalRequests != 3 || snap.TotalErrors != 1 {
		t.Fatalf("totals = %d/%d, want 3/1", snap.TotalRequests, snap.TotalErrors)
	}
	if snap.TrackedShapes != 1 || len(snap.Shapes) != 1 {
		t.Fatalf("tracked %d shapes (%d rows), want 1", snap.TrackedShapes, len(snap.Shapes))
	}
	sh := snap.Shapes[0]
	if sh.ID != id1 || sh.Shape != "//book[/year[range(?)]]" || sh.Class != "range" {
		t.Fatalf("shape row = %+v", sh)
	}
	if sh.Count != 3 || sh.CountError != 0 || sh.Failed != 1 {
		t.Fatalf("shape counters = %d/%d/%d, want 3/0/1", sh.Count, sh.CountError, sh.Failed)
	}
	// Class totals: all three records are range-class.
	for _, c := range snap.Classes {
		want := uint64(0)
		if c.Class == "range" {
			want = 3
		}
		if c.Count != want {
			t.Errorf("class %s count = %d, want %d", c.Class, c.Count, want)
		}
	}
}

func TestSnapshotListsEveryClassInOrder(t *testing.T) {
	p := New(4, time.Minute)
	snap := p.Snapshot(time.Now())
	if len(snap.Classes) != int(accuracy.NumClasses) {
		t.Fatalf("classes = %d, want %d", len(snap.Classes), accuracy.NumClasses)
	}
	for i, cl := range accuracy.Classes() {
		if snap.Classes[i].Class != cl.String() {
			t.Fatalf("class[%d] = %q, want %q", i, snap.Classes[i].Class, cl)
		}
	}
}

func TestSpaceSavingEvictionBounds(t *testing.T) {
	p := New(2, time.Minute)
	now := time.Now()
	qa := mustParse(t, "//book")       // shape //book
	qb := mustParse(t, "//book/title") // shape //book/title
	qc := mustParse(t, "//book[year>1990]")
	for i := 0; i < 5; i++ {
		record(p, now, qa)
	}
	for i := 0; i < 2; i++ {
		record(p, now, qb)
	}
	// Table full (a:5, b:2). A third shape evicts the minimum (b) and
	// inherits its count as the overestimate bound.
	record(p, now, qc)
	snap := p.Snapshot(now)
	if snap.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", snap.Evictions)
	}
	byShape := make(map[string]ShapeStat)
	for _, s := range snap.Shapes {
		byShape[s.Shape] = s
	}
	if _, still := byShape["//book/title"]; still {
		t.Fatal("minimum-count shape //book/title survived eviction")
	}
	c := byShape["//book[/year[range(?)]]"]
	if c.Count != 3 || c.CountError != 2 {
		t.Fatalf("newcomer count/error = %d/%d, want 3/2 (inherited bound)", c.Count, c.CountError)
	}
	// True count (1) lies within [Count-CountError, Count] = [1, 3].
	if lo := c.Count - c.CountError; lo > 1 || c.Count < 1 {
		t.Fatalf("true count 1 outside [%d, %d]", lo, c.Count)
	}
	// The exact class totals are unaffected by the sketch: 5 struct
	// (//book) + 2 struct (//book/title) + 1 range.
	for _, cl := range snap.Classes {
		switch cl.Class {
		case "struct":
			if cl.Count != 7 {
				t.Errorf("struct count = %d, want 7 (exact despite eviction)", cl.Count)
			}
		case "range":
			if cl.Count != 1 {
				t.Errorf("range count = %d, want 1", cl.Count)
			}
		}
	}
}

func TestEvictionTieBreakIsDeterministic(t *testing.T) {
	// Two entries at equal count: the lexicographically largest shape is
	// evicted, regardless of map iteration order. Run repeatedly to
	// shake out order dependence.
	for trial := 0; trial < 20; trial++ {
		p := New(2, time.Minute)
		now := time.Now()
		record(p, now, mustParse(t, "//book"))       // shape //book
		record(p, now, mustParse(t, "//book/title")) // shape //book/title (larger)
		record(p, now, mustParse(t, "//library/book"))
		for _, s := range p.Snapshot(now).Shapes {
			if s.Shape == "//book/title" {
				t.Fatalf("trial %d: tie evicted //book, want //book/title (lexicographically largest)", trial)
			}
		}
	}
}

func TestRollingWindowRates(t *testing.T) {
	window := time.Minute
	p := New(8, window)
	t0 := time.Now()
	q := mustParse(t, "//book")
	for i := 0; i < 60; i++ {
		record(p, t0, q)
	}
	// Snapshot at window start: full previous-window weight is 1 but the
	// previous window is empty; the 60 current-window hits over 60s → 1/s.
	snap := p.Snapshot(t0)
	if got := snap.Shapes[0].RatePerSec; got != 1 {
		t.Fatalf("rate at window start = %v, want 1", got)
	}
	// Rotation: a record one window later moves cur → prev. Half a
	// window after that, the sliding estimate keeps half the old window.
	p.Record(t0.Add(window), q, q.String(), 0, time.Millisecond, 0.5, false)
	snap = p.Snapshot(t0.Add(window + window/2))
	got := snap.Shapes[0].RatePerSec
	want := (1.0 + 60.0*0.5) / 60.0 // 1 current + 60 prev × ½ weight, over 60s
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sliding rate = %v, want %v", got, want)
	}
	// Two idle windows: both generations are stale, rates drop to zero.
	p.Record(t0.Add(4*window), q, q.String(), 0, time.Millisecond, 0.5, false)
	snap = p.Snapshot(t0.Add(4 * window))
	if got := snap.Shapes[0].RatePerSec; got*60 != 1 {
		t.Fatalf("post-idle rate = %v, want 1/60 (stale windows zeroed)", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := New(2, time.Minute)
	now := time.Now()
	record(p, now, mustParse(t, "//book"))
	record(p, now, mustParse(t, "//book/title"))
	record(p, now, mustParse(t, "//library/book")) // forces one eviction
	p.Reset(now)
	snap := p.Snapshot(now)
	if snap.TotalRequests != 0 || snap.TrackedShapes != 0 || snap.Evictions != 0 || len(snap.Shapes) != 0 {
		t.Fatalf("post-reset snapshot = %+v", snap)
	}
	// The profiler keeps working after a reset.
	if id := record(p, now, mustParse(t, "//book")); id == "" {
		t.Fatal("record after reset returned empty shape ID")
	}
}

func TestNilProfilerIsDisabled(t *testing.T) {
	var p *Profiler
	if id := record(p, time.Now(), mustParse(t, "//book")); id != "" {
		t.Fatalf("nil profiler returned shape ID %q", id)
	}
	if got := p.Snapshot(time.Now()); got.Capacity != 0 || len(got.Classes) != 0 {
		t.Fatalf("nil snapshot = %+v", got)
	}
	if p.Capacity() != 0 || p.Window() != 0 || p.Fingerprint(time.Now()) != "" {
		t.Fatal("nil profiler accessors not zero")
	}
	p.Reset(time.Now())
	p.Sync(obs.NewRegistry(), accuracy.Report{}, time.Now())
}

// TestConcurrentRecordSnapshotReset is the -race hammer: 32 goroutines
// mixing hot-path records (cache hits and admissions), snapshots, syncs,
// and resets against one small profiler, so evictions and lookup-cache
// clears interleave with reads.
func TestConcurrentRecordSnapshotReset(t *testing.T) {
	p := New(4, 10*time.Millisecond) // tiny window so rotation fires too
	queries := []*query.Query{
		mustParse(t, "//book"),
		mustParse(t, "//book/title"),
		mustParse(t, "//book[year>1990]"),
		mustParse(t, "//book[pages>=300]"),
		mustParse(t, "//book[title contains(x)]"),
		mustParse(t, "//book[summary ftcontains(y)]"),
		mustParse(t, "//library/book"),
	}
	reg := obs.NewRegistry()
	const goroutines = 32
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				switch g % 8 {
				case 6:
					p.Snapshot(time.Now())
				case 7:
					if i%100 == 0 {
						p.Reset(time.Now())
					} else {
						p.Sync(reg, accuracy.Report{}, time.Now())
					}
				default:
					q := queries[(g+i)%len(queries)]
					p.Record(time.Now(), q, q.String(), 0, time.Microsecond, 0.5, i%17 == 0)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := p.Snapshot(time.Now())
	if snap.TrackedShapes > 4 {
		t.Fatalf("tracked %d shapes, capacity 4", snap.TrackedShapes)
	}
	for _, s := range snap.Shapes {
		if s.Count < s.CountError {
			t.Fatalf("shape %q count %d < error bound %d", s.Shape, s.Count, s.CountError)
		}
	}
}

func TestJoinFillsErrorAndPain(t *testing.T) {
	snap := Snapshot{Classes: []ClassStat{
		{Class: "struct", TrafficShare: 0.5},
		{Class: "range", TrafficShare: 0.4},
		{Class: "substring", TrafficShare: 0.1},
	}}
	snap.Join(accuracy.Report{Classes: []accuracy.ClassReport{
		{Class: "struct", Samples: 10, AvgRelError: 0.3, RecentSamples: 4, RecentAvg: 0.2},
		{Class: "range", Samples: 10, AvgRelError: 0.8},
	}})
	if c := snap.Classes[0]; c.RelError != 0.2 || c.ErrorSource != "recent" || c.Pain != 0.5*0.2 {
		t.Fatalf("struct join = %+v (want recent 0.2, pain 0.1)", c)
	}
	if c := snap.Classes[1]; c.RelError != 0.8 || c.ErrorSource != "lifetime" || c.Pain != float64(0.4)*float64(0.8) {
		t.Fatalf("range join = %+v (want lifetime 0.8, pain 0.32)", c)
	}
	if c := snap.Classes[2]; c.RelError != 0 || c.ErrorSource != "" || c.Pain != 0 {
		t.Fatalf("unscored class join = %+v (want zeros)", c)
	}
}

func TestCoverageFlagsStarvedClasses(t *testing.T) {
	classes := []ClassStat{
		{Class: "struct", TrafficShare: 0.30},
		{Class: "range", TrafficShare: 0.40, Pain: 0.2}, // histogram-funded
		{Class: "substring", TrafficShare: 0.25},        // pst has zero budget
		{Class: "ftcontains", TrafficShare: 0.04},       // below MinCoverageShare
		{Class: "ftsim", TrafficShare: 0.01},
	}
	b := BudgetSplit{NodeBytes: 600, EdgeBytes: 200, HistogramBytes: 150, PSTBytes: 0, TermHistBytes: 50}
	rep := Coverage(classes, b)
	if rep.TotalBudgetBytes != 1000 {
		t.Fatalf("total budget = %d, want 1000", rep.TotalBudgetBytes)
	}
	rows := make(map[string]CoverageRow)
	for _, r := range rep.Rows {
		rows[r.Class] = r
	}
	// struct: 80% of budget vs 30% traffic — healthy.
	if r := rows["struct"]; r.Component != "struct" || r.BudgetBytes != 800 || r.Starved {
		t.Fatalf("struct row = %+v", r)
	}
	// range: 15% budget vs 40% traffic → 0.15×2 < 0.40: starved, and
	// pressure = 0.40/0.15.
	r := rows["range"]
	if r.Component != "histogram" || !r.Starved {
		t.Fatalf("range row = %+v, want starved histogram", r)
	}
	if want := 0.40 / 0.15; r.Pressure < want-1e-9 || r.Pressure > want+1e-9 {
		t.Fatalf("range pressure = %v, want %v", r.Pressure, want)
	}
	// substring: material traffic, zero budget → starved, pressure 0.
	if r := rows["substring"]; !r.Starved || r.Pressure != 0 || r.Component != "pst" {
		t.Fatalf("substring row = %+v", r)
	}
	// ftcontains/ftsim: below the share floor → never flagged.
	if rows["ftcontains"].Starved || rows["ftsim"].Starved {
		t.Fatal("sub-threshold classes flagged as starved")
	}
	if len(rep.Starved) != 2 || rep.Starved[0] != "range" || rep.Starved[1] != "substring" {
		t.Fatalf("starved list = %v, want [range substring]", rep.Starved)
	}
}

// TestSyncGoldenPrometheus pins the xcluster_workload_* series shape:
// the exact counter lines for a deterministic single-class load, and
// the presence of every gauge series.
func TestSyncGoldenPrometheus(t *testing.T) {
	p := New(8, time.Minute)
	now := time.Now()
	q := mustParse(t, "//book[year>1990]")
	for i := 0; i < 4; i++ {
		p.Record(now, q, q.String(), 0, time.Millisecond, 0.5, i == 0)
	}
	reg := obs.NewRegistry()
	p.Sync(reg, accuracy.Report{}, now)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, line := range []string{
		`xcluster_workload_requests_total{class="struct"} 0`,
		`xcluster_workload_requests_total{class="range"} 4`,
		`xcluster_workload_requests_total{class="substring"} 0`,
		`xcluster_workload_requests_total{class="ftcontains"} 0`,
		`xcluster_workload_requests_total{class="ftsim"} 0`,
		`xcluster_workload_errors_total{class="range"} 1`,
		`xcluster_workload_class_share{class="range"} 1`,
		`xcluster_workload_shapes_tracked 1`,
		`xcluster_workload_shape_evictions_total 0`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("missing series line %q in:\n%s", line, text)
		}
	}
	for _, series := range []string{
		`xcluster_workload_pain_score{class="struct"}`,
		`xcluster_workload_pain_score{class="range"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing series %q", series)
		}
	}
}
