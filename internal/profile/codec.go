package profile

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"xcluster/internal/accuracy"
)

// ProfileVersion is the WorkloadProfile file-format version this build
// writes and the only one Parse accepts.
const ProfileVersion = 1

// ErrProfileVersion reports a profile whose version this build cannot
// read; test with errors.Is.
var ErrProfileVersion = errors.New("profile: unsupported workload profile version")

// Profile is the versioned, persistable WorkloadProfile artifact: a
// Snapshot plus identity. It is the contract a workload-adaptive
// rebuild consumes — exported at GET /admin/workload/export, parsed
// back with Parse, and identified by Fingerprint (also stamped into
// rebuild SwapEvents, so a swap records the workload mix that was live
// when it happened).
type Profile struct {
	Version        int   `json:"version"`
	CapturedAtUnix int64 `json:"captured_at_unix"`
	// Fingerprint identifies the workload mix: a 16-hex hash over the
	// class and shape counts (capture time and rates excluded, so two
	// captures of identical traffic fingerprint identically).
	Fingerprint string `json:"fingerprint"`
	Snapshot
}

// Profile captures the profiler at time now as a persistable artifact,
// with class error and pain joined from rep.
func (p *Profiler) Profile(now time.Time, rep accuracy.Report) Profile {
	snap := p.Snapshot(now)
	snap.Join(rep)
	return Profile{
		Version:        ProfileVersion,
		CapturedAtUnix: now.Unix(),
		Fingerprint:    snap.fingerprint(),
		Snapshot:       snap,
	}
}

// Fingerprint returns the 16-hex fingerprint of the current workload
// mix ("" on a nil profiler) without building a full artifact.
func (p *Profiler) Fingerprint(now time.Time) string {
	if p == nil {
		return ""
	}
	snap := p.Snapshot(now)
	return snap.fingerprint()
}

// fingerprint hashes the snapshot's identity-bearing fields: version,
// shape capacity, window, and the class and shape counts. Rates,
// latencies, and join results are derived views and excluded.
func (s *Snapshot) fingerprint() string {
	var b bytes.Buffer
	b.WriteString("v")
	b.WriteString(strconv.Itoa(ProfileVersion))
	b.WriteString("|cap=")
	b.WriteString(strconv.Itoa(s.Capacity))
	b.WriteString("|win=")
	b.WriteString(strconv.FormatFloat(s.WindowSeconds, 'g', -1, 64))
	for _, c := range s.Classes {
		fmt.Fprintf(&b, "|c:%s=%d/%d", c.Class, c.Count, c.Failed)
	}
	for _, sh := range s.Shapes {
		fmt.Fprintf(&b, "|s:%s=%d-%d", sh.ID, sh.Count, sh.CountError)
	}
	return fmt.Sprintf("%016x", hash64(b.String()))
}

// Encode renders the profile as its canonical JSON file form.
func Encode(p Profile) ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("profile: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Parse decodes and validates a WorkloadProfile file: unknown fields
// are rejected (a field this build does not know is a format it does
// not speak), the version must match, and the recorded fingerprint
// must agree with one recomputed from the contents — a profile edited
// or truncated in transit fails loudly instead of silently steering a
// rebuild. Parse(Encode(p)) returns p exactly.
func Parse(data []byte) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("profile: parse: %w", err)
	}
	if err := checkTrailer(dec); err != nil {
		return Profile{}, err
	}
	if p.Version != ProfileVersion {
		return Profile{}, fmt.Errorf("%w: file version %d, this build reads %d",
			ErrProfileVersion, p.Version, ProfileVersion)
	}
	if got := p.Snapshot.fingerprint(); got != p.Fingerprint {
		return Profile{}, fmt.Errorf("profile: parse: fingerprint mismatch: file says %s, contents hash to %s",
			p.Fingerprint, got)
	}
	return p, nil
}

// checkTrailer rejects trailing garbage after the JSON document.
func checkTrailer(dec *json.Decoder) error {
	if _, err := dec.Token(); err == nil {
		return errors.New("profile: parse: trailing data after profile document")
	}
	return nil
}
