package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// randomTree generates a random document with heterogeneous structure and
// values: a configurable mix of optional sections, repeated children, and
// typed leaves.
func randomTree(rng *rand.Rand, elements int) *xmltree.Tree {
	b := xmltree.NewBuilder(nil)
	labels := []string{"a", "b", "c", "d"}
	terms := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	words := []string{"foo", "bar", "baz", "qux"}
	count := 1
	b.Open("root")
	var grow func(depth int)
	grow = func(depth int) {
		for count < elements && depth < 5 {
			switch rng.Intn(6) {
			case 0:
				b.Numeric("num", rng.Intn(100))
				count++
			case 1:
				b.String("str", words[rng.Intn(len(words))]+words[rng.Intn(len(words))])
				count++
			case 2:
				b.Text("txt", terms[rng.Intn(len(terms))]+" "+terms[rng.Intn(len(terms))])
				count++
			case 3:
				b.Empty(labels[rng.Intn(len(labels))])
				count++
			default:
				b.Open(labels[rng.Intn(len(labels))])
				count++
				grow(depth + 1)
				b.Close()
			}
			if rng.Intn(3) == 0 {
				return
			}
		}
	}
	for count < elements {
		grow(1)
	}
	b.Close()
	return b.Tree()
}

// randomStructQuery samples a structural twig from the document (an
// element's ancestor path plus optional branches), guaranteed positive.
func randomStructQuery(rng *rand.Rand, tr *xmltree.Tree) *query.Query {
	nodes := tr.Nodes()
	e := nodes[rng.Intn(len(nodes))]
	var labels []string
	for n := e; n != nil; n = n.Parent {
		labels = append(labels, n.Label)
	}
	steps := make([]query.Step, 0, len(labels))
	start := rng.Intn(len(labels))
	for i := len(labels) - 1 - start; i >= 0; i-- {
		axis := query.Child
		if i == len(labels)-1-start && start > 0 {
			axis = query.Descendant
		}
		steps = append(steps, query.Step{Axis: axis, Label: labels[i]})
	}
	v := &query.Node{Steps: steps}
	if len(e.Children) > 0 && rng.Intn(2) == 0 {
		c := e.Children[rng.Intn(len(e.Children))]
		v.Children = append(v.Children, &query.Node{
			Steps: []query.Step{{Axis: query.Child, Label: c.Label}},
		})
	}
	return &query.Query{Roots: []*query.Node{v}}
}

// TestPropertyReferenceStructuralExactness: on any document, the
// reference synopsis (lossless count-stable partition) must estimate any
// structural twig exactly.
func TestPropertyReferenceStructuralExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		tr := randomTree(rng, 80+rng.Intn(200))
		if err := tr.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		ref, err := BuildReference(tr, ReferenceOptions{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := ref.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		est := NewEstimator(ref)
		ev := query.NewEvaluator(tr)
		for q := 0; q < 20; q++ {
			qq := randomStructQuery(rng, tr)
			got, want := est.Selectivity(qq), ev.Selectivity(qq)
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("iter %d query %s: estimated %g, exact %g", iter, qq, got, want)
			}
		}
	}
}

// TestPropertyMergeSequencePreservesMass: any sequence of random valid
// merges keeps the synopsis valid, preserves the total extent, and keeps
// per-label element totals (so unqualified //label counts stay exact).
func TestPropertyMergeSequencePreservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 15; iter++ {
		tr := randomTree(rng, 150)
		ref, err := BuildReference(tr, ReferenceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		labelMass := make(map[string]float64)
		for _, n := range ref.Nodes() {
			labelMass[n.Label] += n.Count
		}
		s := ref.Clone()
		for merges := 0; merges < 100; merges++ {
			nodes := s.Nodes()
			var u, v *Node
			found := false
			for tries := 0; tries < 50 && !found; tries++ {
				u = nodes[rng.Intn(len(nodes))]
				v = nodes[rng.Intn(len(nodes))]
				found = Compatible(u, v)
			}
			if !found {
				break
			}
			if _, err := s.Merge(u.ID, v.ID); err != nil {
				t.Fatalf("iter %d merge %d: %v", iter, merges, err)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if math.Abs(s.TotalExtent()-float64(tr.Len())) > 1e-9 {
			t.Fatalf("iter %d: extent %g, want %d", iter, s.TotalExtent(), tr.Len())
		}
		got := make(map[string]float64)
		for _, n := range s.Nodes() {
			got[n.Label] += n.Count
		}
		for label, mass := range labelMass {
			if math.Abs(got[label]-mass) > 1e-9 {
				t.Fatalf("iter %d: label %s mass %g, want %g", iter, label, got[label], mass)
			}
		}
		// Estimates stay finite and positive for every present label.
		// (Accuracy bounds are not an invariant here: these merges are
		// adversarially random, and cycle truncation on pathological
		// merge sequences can lose substantial mass — the Δ-guided
		// builder avoids such merges, which TestPropertyBuildAtAnyBudget
		// checks.)
		est := NewEstimator(s)
		for label := range labelMass {
			got := est.Selectivity(query.MustParse("//" + label))
			if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
				t.Fatalf("iter %d: s(//%s) = %v", iter, label, got)
			}
		}
	}
}

// TestPropertyDeltaNonNegative: the clustering-error metric is a sum of
// squares and must never be negative, and must be 0 when a cluster is
// "merged" with a structurally identical twin.
func TestPropertyDeltaNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 15; iter++ {
		tr := randomTree(rng, 120)
		ref, err := BuildReference(tr, ReferenceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		nodes := ref.Nodes()
		checked := 0
		for i := 0; i < len(nodes) && checked < 30; i++ {
			for j := i + 1; j < len(nodes) && checked < 30; j++ {
				if !Compatible(nodes[i], nodes[j]) {
					continue
				}
				delta, saved, err := ref.MergeDelta(nodes[i].ID, nodes[j].ID, 16)
				if err != nil {
					t.Fatal(err)
				}
				if delta < 0 {
					t.Fatalf("iter %d: negative Δ %g", iter, delta)
				}
				if saved <= 0 {
					t.Fatalf("iter %d: non-positive savings %d", iter, saved)
				}
				checked++
			}
		}
	}
}

// TestPropertyBuildAtAnyBudget: XClusterBuild succeeds and validates at
// arbitrary budget pairs, including degenerate ones.
func TestPropertyBuildAtAnyBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := randomTree(rng, 300)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	budgets := []struct{ bstr, bval int }{
		{0, 0},
		{0, 1 << 20},
		{1 << 20, 0},
		{1 << 20, 1 << 20},
		{ref.StructBytes() / 2, ref.ValueBytes() / 2},
		{1, 1},
	}
	ev := query.NewEvaluator(tr)
	exactAll := ev.Selectivity(query.MustParse("//*"))
	for _, b := range budgets {
		s, err := XClusterBuild(ref, BuildOptions{StructBudget: b.bstr, ValueBudget: b.bval, Hm: 200, Hl: 100})
		if err != nil {
			t.Fatalf("budget %+v: %v", b, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("budget %+v: %v", b, err)
		}
		// Merging same-label nested clusters can create cycles, where
		// path-product estimation is inherently approximate; require the
		// global element count to stay within a small constant factor
		// (and exact when no compression happened).
		est := NewEstimator(s)
		got := est.Selectivity(query.MustParse("//*"))
		if got < exactAll/3 || got > exactAll*3 {
			t.Fatalf("budget %+v: s(//*) = %g, want within 3x of %g", b, got, exactAll)
		}
		if s.NumNodes() == ref.NumNodes() && math.Abs(got-exactAll) > 1e-6*exactAll {
			t.Fatalf("budget %+v: uncompressed synopsis inexact: %g vs %g", b, got, exactAll)
		}
	}
}

// TestPropertyEstimatesFinite: estimates are always finite and
// non-negative on heavily merged synopses (where cycles can appear).
func TestPropertyEstimatesFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 10; iter++ {
		tr := randomTree(rng, 200)
		ref, err := BuildReference(tr, ReferenceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := XClusterBuild(ref, BuildOptions{StructBudget: 0, ValueBudget: 0, Hm: 200, Hl: 100})
		if err != nil {
			t.Fatal(err)
		}
		est := NewEstimator(s)
		for q := 0; q < 20; q++ {
			qq := randomStructQuery(rng, tr)
			got := est.Selectivity(qq)
			if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
				t.Fatalf("iter %d: s(%s) = %v", iter, qq, got)
			}
		}
	}
}

// TestPropertyCloneEquivalence: a clone estimates identically to the
// original for a battery of queries.
func TestPropertyCloneEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := randomTree(rng, 200)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	cl := ref.Clone()
	a, b := NewEstimator(ref), NewEstimator(cl)
	for q := 0; q < 30; q++ {
		qq := randomStructQuery(rng, tr)
		x, y := a.Selectivity(qq), b.Selectivity(qq)
		if math.Abs(x-y) > 1e-9*math.Max(1, x) {
			t.Fatalf("clone diverges on %s: %g vs %g", qq, x, y)
		}
	}
}

// TestPropertyReferenceValuePredicatesExactAnchored: single-predicate
// queries anchored at an exact value path are answered exactly by the
// reference synopsis (tight clusters + detailed summaries).
func TestPropertyReferenceValuePredicatesExactAnchored(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 10; iter++ {
		tr := randomTree(rng, 200)
		ref, err := BuildReference(tr, ReferenceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		est := NewEstimator(ref)
		ev := query.NewEvaluator(tr)
		for q := 0; q < 15; q++ {
			lo := rng.Intn(100)
			hi := lo + rng.Intn(40)
			qq := query.MustParse(fmt.Sprintf("//num[range(%d,%d)]", lo, hi))
			got, want := est.Selectivity(qq), ev.Selectivity(qq)
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("iter %d: s(%s) = %g, want %g", iter, qq, got, want)
			}
		}
	}
}
