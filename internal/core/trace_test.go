package core

import (
	"context"
	"sync"
	"testing"

	"xcluster/internal/query"
)

// fakeSink collects MetricSink emissions for assertions.
type fakeSink struct {
	mu       sync.Mutex
	adds     map[string]float64 // name{labels} → summed delta
	observes map[string]int     // name{labels} → observation count
}

func newFakeSink() *fakeSink {
	return &fakeSink{adds: make(map[string]float64), observes: make(map[string]int)}
}

func (f *fakeSink) key(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func (f *fakeSink) Add(name, labels string, delta float64) {
	f.mu.Lock()
	f.adds[f.key(name, labels)] += delta
	f.mu.Unlock()
}

func (f *fakeSink) Observe(name, labels string, value float64) {
	f.mu.Lock()
	f.observes[f.key(name, labels)]++
	f.mu.Unlock()
}

func tracedFixture(t *testing.T) *Estimator {
	t.Helper()
	ref, err := BuildReference(figure1(t), ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return NewEstimator(ref)
}

func TestSelectivityTracedMatchesSelectivity(t *testing.T) {
	est := tracedFixture(t)
	plain := tracedFixture(t)
	for _, qs := range []string{
		"//paper/title",
		"//paper[year>2000]/title",
		"//*[year>2000]",
		"/dblp/*",
	} {
		q := query.MustParse(qs)
		got, tr, err := est.SelectivityTraced(context.Background(), q)
		if err != nil {
			t.Fatalf("SelectivityTraced(%s): %v", qs, err)
		}
		if want := plain.Selectivity(q); got != want {
			t.Errorf("traced s(%s) = %g, untraced %g", qs, got, want)
		}
		if tr.Canonical != q.String() {
			t.Errorf("Canonical = %q, want %q", tr.Canonical, q.String())
		}
		if tr.SpanSum() > tr.Total {
			t.Errorf("s(%s): SpanSum %v exceeds Total %v", qs, tr.SpanSum(), tr.Total)
		}
	}
}

func TestSelectivityTracedStages(t *testing.T) {
	est := tracedFixture(t)
	q := query.MustParse("//paper[year>2000]/title")

	// Cold call: canonicalize, result-cache miss, plan-cache miss,
	// compile, execute — in that order.
	_, tr, err := est.SelectivityTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{StageCanonicalize, StageResultCache, StagePlanCache, StageCompile, StageExecute}
	if len(tr.Spans) != len(wantStages) {
		t.Fatalf("cold spans = %v, want stages %v", tr.Spans, wantStages)
	}
	for i, sp := range tr.Spans {
		if sp.Stage != wantStages[i] {
			t.Errorf("cold span[%d] = %q, want %q", i, sp.Stage, wantStages[i])
		}
	}
	if tr.ResultCacheHit || tr.PlanCacheHit {
		t.Errorf("cold call reported cache hits: %+v", tr)
	}
	if tr.Subproblems <= 0 {
		t.Errorf("cold Subproblems = %d, want > 0", tr.Subproblems)
	}

	// Warm call: the result cache answers; no plan stages.
	_, tr, err = est.SelectivityTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ResultCacheHit {
		t.Fatalf("second call missed the result cache: %+v", tr)
	}
	wantStages = []string{StageCanonicalize, StageResultCache}
	if len(tr.Spans) != len(wantStages) {
		t.Fatalf("warm spans = %v, want stages %v", tr.Spans, wantStages)
	}
	if tr.Subproblems != 0 {
		t.Errorf("warm Subproblems = %d, want 0 (no plan consulted)", tr.Subproblems)
	}
}

func TestSelectivityTracedPlanCacheHit(t *testing.T) {
	est := tracedFixture(t)
	est.SetCacheCapacity(0) // result cache off: every call reaches the plan stage
	q := query.MustParse("//paper/title")

	_, tr, err := est.SelectivityTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PlanCacheHit {
		t.Fatal("first call hit the plan cache")
	}
	_, tr, err = est.SelectivityTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.PlanCacheHit {
		t.Fatal("second call missed the plan cache")
	}
	for _, sp := range tr.Spans {
		if sp.Stage == StageCompile {
			t.Errorf("plan-cache hit still compiled: %v", tr.Spans)
		}
		if sp.Stage == StageResultCache {
			t.Errorf("disabled result cache still looked up: %v", tr.Spans)
		}
	}
}

func TestSelectivityContextRoutesThroughSink(t *testing.T) {
	est := tracedFixture(t)
	sink := newFakeSink()
	est.SetMetricSink(sink)
	q := query.MustParse("//paper/title")

	if _, err := est.SelectivityContext(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := est.SelectivityContext(context.Background(), q); err != nil {
		t.Fatal(err)
	}

	for _, stage := range []string{StageCanonicalize, StageResultCache, StageCompile, StageExecute} {
		k := MetricPipelineStageSeconds + `{stage="` + stage + `"}`
		if sink.observes[k] == 0 {
			t.Errorf("no observations for %s; got %v", k, sink.observes)
		}
	}
	if got := sink.adds[MetricCacheLookupsTotal+`{cache="result",outcome="miss"}`]; got != 1 {
		t.Errorf("result-cache misses = %g, want 1", got)
	}
	if got := sink.adds[MetricCacheLookupsTotal+`{cache="result",outcome="hit"}`]; got != 1 {
		t.Errorf("result-cache hits = %g, want 1", got)
	}
}

func TestBuildPhaseMetrics(t *testing.T) {
	ref, err := BuildReference(figure1(t), ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sink := newFakeSink()
	if _, err := XClusterBuild(ref, BuildOptions{
		StructBudget: ref.StructBytes() / 2,
		ValueBudget:  1 << 20,
		Metrics:      sink,
	}); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"merge", "value"} {
		k := MetricBuildPhaseSeconds + `{phase="` + phase + `"}`
		if sink.observes[k] != 1 {
			t.Errorf("build phase %s observed %d times, want 1 (%v)", phase, sink.observes[k], sink.observes)
		}
	}
}
