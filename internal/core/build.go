package core

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xcluster/internal/vsum"
	"xcluster/internal/xmltree"
)

// BuildOptions configure XClusterBuild.
type BuildOptions struct {
	// StructBudget is Bstr: the byte budget for nodes, edges and edge
	// counts.
	StructBudget int
	// ValueBudget is Bval: the byte budget for value summaries.
	ValueBudget int
	// Plan, when non-nil, supplies the budgets as a first-class
	// BudgetPlan: StructBudget/ValueBudget are taken from the plan
	// (setting them alongside a disagreeing plan is an error), a
	// non-zero value split directs the per-kind value phase, and the
	// plan (provenance, workload fingerprint, split) is stamped into
	// the build fingerprint. A nil Plan synthesizes a static plan from
	// the two ints — the exact legacy code path, bit for bit.
	Plan *BudgetPlan
	// Hm caps the candidate-merge pool; Hl is the replenish threshold
	// (the paper uses 10000 / 5000).
	Hm, Hl int
	// AtomicCap bounds atomic predicates per summary in Δ evaluations
	// (DefaultAtomicCap when 0).
	AtomicCap int
	// PairWindow bounds, within a sorted candidate group, how far apart
	// two nodes may sit to be proposed as a merge pair. This keeps
	// candidate generation near-linear in group size; the pool cap Hm
	// provides the same guarantee in the paper.
	PairWindow int
	// CompressStep is the b parameter of the value-compression
	// operations; 0 picks it adaptively from the remaining excess.
	CompressStep int
	// NoLevelHeuristic disables the bottom-up level stratification of
	// build_pool, admitting candidates from every level immediately
	// (ablation of the Figure 6 heuristic).
	NoLevelHeuristic bool
	// RandomMerges replaces the marginal-loss candidate selection with
	// uniformly random compatible merges (ablation of the Δ metric);
	// RandomSeed drives the choice.
	RandomMerges bool
	// RandomSeed seeds RandomMerges.
	RandomSeed int64
	// Workers caps the goroutines evaluating candidate Δs (0 means
	// GOMAXPROCS, 1 is fully serial; negative is rejected). The worker
	// count never changes the result: candidate evaluations are pure,
	// order is restored before ranking, and the pool's strict total
	// order (marginal loss, then mass, then (u, v)) makes the merge
	// sequence identical at any parallelism.
	Workers int
	// NoDeltaMemo disables the pair-Δ memo table, recomputing every
	// candidate from scratch — the pre-memo behavior, kept for ablation
	// and as the benchmark baseline.
	NoDeltaMemo bool
	// Progress, when non-nil, receives periodic BuildProgress snapshots
	// from the build goroutine (synchronously; keep the callback cheap).
	Progress func(BuildProgress)
	// Stats, when non-nil, is filled with the build's BuildStats when
	// XClusterBuildContext returns successfully.
	Stats *BuildStats
	// Metrics, when non-nil, receives per-phase build wall times
	// (MetricBuildPhaseSeconds with phase="merge"/"value") and the
	// BuildStats counters (MetricBuildPairsTotal, MetricBuildMergesTotal)
	// from XClusterBuildContext.
	Metrics MetricSink
	// GlobalMetric replaces the paper's localized Δ with the
	// TreeSketch-style global clustering metric: the increase in
	// squared structural-centroid distance between the reference
	// partition and the current clustering. It requires keeping the
	// reference synopsis and a member index in memory throughout the
	// build — exactly the overhead Section 4.1 argues the localized
	// metric avoids — and ignores value distributions. For ablation use.
	GlobalMetric bool
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.Hm == 0 {
		o.Hm = 10000
	}
	if o.Hl == 0 {
		o.Hl = o.Hm / 2
	}
	if o.AtomicCap == 0 {
		o.AtomicCap = DefaultAtomicCap
	}
	if o.PairWindow == 0 {
		o.PairWindow = 8
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// BuildStats summarizes the work one XClusterBuild performed. Retrieve
// it via BuildOptions.Stats.
type BuildStats struct {
	// Workers is the resolved Δ-evaluation worker count.
	Workers int `json:"workers"`
	// Merges is the number of node merges applied.
	Merges int64 `json:"merges"`
	// PairsEvaluated counts full Δ evaluations (memo misses included).
	PairsEvaluated int64 `json:"pairs_evaluated"`
	// MemoHits counts candidate lookups answered from the pair-Δ memo
	// table instead of a fresh evaluation.
	MemoHits int64 `json:"memo_hits"`
	// MemoPartialHits counts lookups where the cached clustering-error
	// term was reused and only the integer structural savings were
	// recomputed (an endpoint's parent set changed, its centroid state
	// did not; see delta.go).
	MemoPartialHits int64 `json:"memo_partial_hits"`
	// PoolBuilds counts candidate-pool (re)constructions.
	PoolBuilds int64 `json:"pool_builds"`
	// MergeSeconds and ValueSeconds are the per-phase wall times.
	MergeSeconds float64 `json:"merge_seconds"`
	ValueSeconds float64 `json:"value_seconds"`
}

// MemoHitRate is the fraction of candidate lookups the memo table
// absorbed (0 when the memo is disabled).
func (s BuildStats) MemoHitRate() float64 {
	hits := s.MemoHits + s.MemoPartialHits
	lookups := hits + s.PairsEvaluated
	if lookups == 0 {
		return 0
	}
	return float64(hits) / float64(lookups)
}

// BuildProgress is a point-in-time snapshot of a running build,
// delivered to BuildOptions.Progress from the build goroutine.
type BuildProgress struct {
	// Phase is "merge" or "value".
	Phase string `json:"phase"`
	// StructBytes/ValueBytes are the current sizes; the budgets are the
	// targets the phase is compressing toward.
	StructBytes  int `json:"struct_bytes"`
	StructBudget int `json:"struct_budget"`
	ValueBytes   int `json:"value_bytes"`
	ValueBudget  int `json:"value_budget"`
	// Merges, PairsEvaluated and MemoHits mirror BuildStats so far.
	Merges         int64 `json:"merges"`
	PairsEvaluated int64 `json:"pairs_evaluated"`
	MemoHits       int64 `json:"memo_hits"`
	// Elapsed is the wall time since the build started.
	Elapsed time.Duration `json:"elapsed"`
}

// XClusterBuild runs the paper's two-phase construction (Figure 5) on a
// reference synopsis: a structure-value merge phase compresses the graph
// within StructBudget by applying minimum-marginal-loss node merges from
// a bounded, level-stratified candidate pool; a value-summary compression
// phase then compresses the per-node value summaries within ValueBudget.
// The reference synopsis is not modified.
func XClusterBuild(ref *Synopsis, opts BuildOptions) (*Synopsis, error) {
	return XClusterBuildContext(context.Background(), ref, opts)
}

// XClusterBuildContext is XClusterBuild with cancellation: the merge
// phase checks ctx at every pool (re)build and periodically while
// draining it, and the value phase checks between compression steps, so
// huge builds abort within a bounded amount of work of ctx ending. The
// error is ctx.Err() when cancellation caused the abort.
func XClusterBuildContext(ctx context.Context, ref *Synopsis, opts BuildOptions) (*Synopsis, error) {
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: build workers must be non-negative (0 = GOMAXPROCS), got %d", opts.Workers)
	}
	plan, err := opts.resolvePlan()
	if err != nil {
		return nil, err
	}
	opts.Plan = &plan
	opts.StructBudget = plan.StructBudget()
	opts.ValueBudget = plan.ValueBudget()
	opts = opts.withDefaults()
	buildStart := time.Now()
	b := newBuilder(ctx, ref.Clone(), opts)
	if opts.GlobalMetric {
		b.ref = ref
		b.members = make(map[NodeID][]NodeID, len(ref.nodes))
		b.refToCur = make(map[NodeID]NodeID, len(ref.nodes))
		for id := range ref.nodes {
			b.members[id] = []NodeID{id}
			b.refToCur[id] = id
		}
	}
	phaseStart := time.Now()
	if opts.RandomMerges {
		if err := b.randomMergePhase(); err != nil {
			return nil, err
		}
	} else if err := b.mergePhase(); err != nil {
		return nil, err
	}
	b.stats.MergeSeconds = time.Since(phaseStart).Seconds()
	if opts.Metrics != nil {
		opts.Metrics.Observe(MetricBuildPhaseSeconds, `phase="merge"`, b.stats.MergeSeconds)
	}
	phaseStart = time.Now()
	if err := b.valuePhase(); err != nil {
		return nil, err
	}
	b.stats.ValueSeconds = time.Since(phaseStart).Seconds()
	if opts.Metrics != nil {
		opts.Metrics.Observe(MetricBuildPhaseSeconds, `phase="value"`, b.stats.ValueSeconds)
		opts.Metrics.Add(MetricBuildMergesTotal, "", float64(b.stats.Merges))
		opts.Metrics.Add(MetricBuildPairsTotal, `outcome="computed"`, float64(b.stats.PairsEvaluated))
		opts.Metrics.Add(MetricBuildPairsTotal, `outcome="memo_hit"`, float64(b.stats.MemoHits))
		opts.Metrics.Add(MetricBuildPairsTotal, `outcome="memo_partial"`, float64(b.stats.MemoPartialHits))
	}
	if opts.Stats != nil {
		*opts.Stats = b.stats
	}
	s := b.s
	// Stamp the build identity: the doc hash and option summary arrive
	// via the reference's fingerprint (through Clone); the compression
	// pass adds its budgets and timing. Workers and the memo are
	// deliberately absent: they must not affect the output, so they are
	// not part of the synopsis identity.
	s.fp.StructBudget = opts.StructBudget
	s.fp.ValueBudget = opts.ValueBudget
	s.fp.Plan = plan
	s.fp.BuiltAtUnix = time.Now().Unix()
	s.fp.BuildNanos = time.Since(buildStart).Nanoseconds()
	return s, nil
}

// resolvePlan turns the options' budget configuration into one
// normalized BudgetPlan: the explicit Plan when set (its budgets must
// not disagree with any raw ints also set), otherwise a static plan
// synthesized from StructBudget/ValueBudget.
func (o BuildOptions) resolvePlan() (BudgetPlan, error) {
	if o.Plan == nil {
		return PlanFromBudgets(o.StructBudget, o.ValueBudget), nil
	}
	plan, err := o.Plan.Normalize()
	if err != nil {
		return BudgetPlan{}, err
	}
	if o.StructBudget != 0 && o.StructBudget != plan.StructBudget() {
		return BudgetPlan{}, fmt.Errorf("core: StructBudget %d conflicts with plan Bstr %d", o.StructBudget, plan.StructBudget())
	}
	if o.ValueBudget != 0 && o.ValueBudget != plan.ValueBudget() {
		return BudgetPlan{}, fmt.Errorf("core: ValueBudget %d conflicts with plan Bval %d", o.ValueBudget, plan.ValueBudget())
	}
	return plan, nil
}

// newBuilder assembles a builder with its incremental indexes. The memo
// table serves only the default Δ policy: the global metric's Δ depends
// on the whole reference-to-cluster assignment (any merge anywhere
// shifts it), which the neighborhood version stamps do not cover.
func newBuilder(ctx context.Context, s *Synopsis, opts BuildOptions) *builder {
	b := &builder{
		s: s, opts: opts, ctx: ctx,
		ver:   make(map[NodeID]int),
		cver:  make(map[NodeID]int),
		start: time.Now(),
	}
	b.stats.Workers = opts.Workers
	if !opts.NoDeltaMemo && !opts.GlobalMetric && !opts.RandomMerges {
		b.memo = make(map[pairKey]memoEntry)
		b.sigs = make(map[NodeID]sigEntry)
		b.evalc = &evalCache{}
	}
	return b
}

// randomMergePhase merges uniformly random compatible pairs until the
// structural budget is met — the no-Δ baseline for ablation runs.
func (b *builder) randomMergePhase() error {
	rng := rand.New(rand.NewSource(b.opts.RandomSeed))
	for b.s.StructBytes() > b.opts.StructBudget {
		groups := make(map[groupKey][]*Node)
		for _, n := range b.s.nodes {
			k := nodeGroup(n)
			groups[k] = append(groups[k], n)
		}
		var mergeable []groupKey
		for k, members := range groups {
			if len(members) >= 2 {
				mergeable = append(mergeable, k)
			}
		}
		if len(mergeable) == 0 {
			return nil
		}
		sort.Slice(mergeable, func(i, j int) bool {
			if mergeable[i].label != mergeable[j].label {
				return mergeable[i].label < mergeable[j].label
			}
			return mergeable[i].vt < mergeable[j].vt
		})
		members := groups[mergeable[rng.Intn(len(mergeable))]]
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		i := rng.Intn(len(members))
		j := rng.Intn(len(members) - 1)
		if j >= i {
			j++
		}
		if _, err := b.s.Merge(members[i].ID, members[j].ID); err != nil {
			return fmt.Errorf("core: randomMergePhase: %w", err)
		}
		b.stats.Merges++
	}
	return nil
}

// XClusterSweep builds synopses for several structural budgets in one
// pass. Greedy merging does not depend on the budget (a smaller budget's
// merge sequence is a prefix extension of a larger one's), so the merge
// phase runs once toward the smallest budget, snapshotting the synopsis
// as it crosses each requested budget; each snapshot then gets its own
// value-compression phase. The result matches XClusterBuild at every
// budget while paying for one merge phase instead of len(budgets).
// Results are returned in the order of structBudgets.
func XClusterSweep(ref *Synopsis, structBudgets []int, valueBudget int, opts BuildOptions) ([]*Synopsis, error) {
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: build workers must be non-negative (0 = GOMAXPROCS), got %d", opts.Workers)
	}
	opts = opts.withDefaults()
	if opts.RandomMerges || opts.GlobalMetric {
		return nil, fmt.Errorf("core: XClusterSweep supports only the default policy")
	}
	// Work over distinct budgets in descending order.
	desc := append([]int(nil), structBudgets...)
	sort.Sort(sort.Reverse(sort.IntSlice(desc)))
	minBudget := desc[len(desc)-1]

	b := newBuilder(nil, ref.Clone(), opts)
	b.opts.StructBudget = minBudget

	snapshots := make(map[int]*Synopsis, len(desc))
	pending := desc
	takeDue := func() {
		for len(pending) > 0 && b.s.StructBytes() <= pending[0] {
			if _, dup := snapshots[pending[0]]; !dup {
				snapshots[pending[0]] = b.s.Clone()
			}
			pending = pending[1:]
		}
	}
	takeDue()
	b.onMerge = takeDue
	if err := b.mergePhase(); err != nil {
		return nil, err
	}
	// Budgets below the merge floor get the final state.
	for _, budget := range pending {
		snapshots[budget] = b.s.Clone()
	}

	// Independent value phases, in parallel.
	distinct := make([]int, 0, len(snapshots))
	for budget := range snapshots {
		distinct = append(distinct, budget)
	}
	sort.Ints(distinct)
	var wg sync.WaitGroup
	next := make(chan int)
	workers := opts.Workers
	if workers > len(distinct) {
		workers = len(distinct)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for budget := range next {
				vopts := opts
				vopts.ValueBudget = valueBudget
				vopts.Progress = nil
				vb := newBuilder(nil, snapshots[budget], vopts)
				vb.valuePhase()
			}
		}()
	}
	for _, budget := range distinct {
		next <- budget
	}
	close(next)
	wg.Wait()

	out := make([]*Synopsis, len(structBudgets))
	for i, budget := range structBudgets {
		out[i] = snapshots[budget]
	}
	return out, nil
}

// builder holds the mutable state of one XClusterBuild run.
type builder struct {
	s    *Synopsis
	opts BuildOptions
	// ctx, when non-nil, is polled at phase boundaries so callers can
	// abort long builds.
	ctx context.Context
	// onMerge, when set, runs after every applied merge (used by
	// XClusterSweep to snapshot budget crossings).
	onMerge func()
	// ver tracks node adjacency versions so queued candidates whose
	// neighborhoods changed are lazily re-evaluated (the paper recomputes
	// marginal losses in the merged nodes' neighborhood eagerly). cver
	// tracks only centroid-affecting changes (a node's own children or
	// summary) so the memo can keep a pair's error term across
	// parent-side churn; see the invalidation rule in delta.go.
	ver  map[NodeID]int
	cver map[NodeID]int
	// memo caches pair-Δ evaluations keyed by oriented pair, validated
	// against ver stamps (nil when disabled; see delta.go).
	memo map[pairKey]memoEntry
	// sigs caches childSig per node version: the signature only changes
	// when a node's child set does, which always bumps its version.
	sigs map[NodeID]sigEntry
	// evalc caches summary-derived state across Δ evaluations (nil when
	// the memo is disabled; see delta.go).
	evalc *evalCache
	// groups indexes live node ids by merge-compatibility group in
	// ascending id order, so follow-up pairing touches one group instead
	// of scanning (and sorting) every node per merge. Group membership
	// is invariant during the merge phase: Merge preserves label, value
	// type and summary presence.
	groups map[groupKey][]NodeID
	// stats accumulates the BuildStats counters.
	stats BuildStats
	// start anchors BuildProgress.Elapsed.
	start time.Time
	// Global-metric state (GlobalMetric only): the reference synopsis,
	// the reference nodes absorbed by each current cluster, and the
	// inverse map.
	ref      *Synopsis
	members  map[NodeID][]NodeID
	refToCur map[NodeID]NodeID
}

// sigEntry is one cached childSig, valid while the node's version holds.
type sigEntry struct {
	ver int
	sig string
}

// emitProgress delivers a BuildProgress snapshot, when configured.
// valueBytes < 0 means "compute it here" (it is an O(nodes) walk, only
// worth doing when someone is listening).
func (b *builder) emitProgress(phase string, valueBytes int) {
	if b.opts.Progress == nil {
		return
	}
	if valueBytes < 0 {
		valueBytes = b.s.ValueBytes()
	}
	b.opts.Progress(BuildProgress{
		Phase:          phase,
		StructBytes:    b.s.StructBytes(),
		StructBudget:   b.opts.StructBudget,
		ValueBytes:     valueBytes,
		ValueBudget:    b.opts.ValueBudget,
		Merges:         b.stats.Merges,
		PairsEvaluated: b.stats.PairsEvaluated,
		MemoHits:       b.stats.MemoHits,
		Elapsed:        time.Since(b.start),
	})
}

// ---- candidate pool ----

type mergeCand struct {
	u, v       NodeID
	delta      float64
	saved      int
	marginal   float64
	mass       float64 // combined extent, the tie spreader
	verU, verV int
}

type candHeap []*mergeCand

func (h candHeap) Len() int { return len(h) }

// Less is a strict total order so the pop sequence — and therefore the
// whole build — is deterministic: marginal loss, then smaller combined
// extent (ties — typically free zero-Δ merges — consume small clusters
// first instead of cascading one group into a giant cluster), then node
// ids.
func (h candHeap) Less(i, j int) bool {
	if h[i].marginal != h[j].marginal {
		return h[i].marginal < h[j].marginal
	}
	if h[i].mass != h[j].mass {
		return h[i].mass < h[j].mass
	}
	if h[i].u != h[j].u {
		return h[i].u < h[j].u
	}
	return h[i].v < h[j].v
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(*mergeCand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// evalCands resolves Δ and marginal loss for proposed pairs, dropping
// infeasible ones. Order is preserved. Memo hits are answered serially;
// the remaining misses are pure, read-only evaluations, so they fan out
// over opts.Workers goroutines; results are stored back into the memo
// serially. Slot i of the result belongs to pair i regardless of which
// worker computed it, so worker count and scheduling cannot change the
// candidate ranking.
func (b *builder) evalCands(proposed []*mergeCand) []*mergeCand {
	results := make([]*mergeCand, len(proposed))
	var misses []int
	if b.memo != nil {
		for i, p := range proposed {
			if c, hit := b.memoLookup(p.u, p.v); hit {
				results[i] = c
			} else {
				misses = append(misses, i)
			}
		}
	} else {
		misses = make([]int, len(proposed))
		for i := range proposed {
			misses[i] = i
		}
	}
	workers := b.opts.Workers
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = b.computeCand(proposed[i].u, proposed[i].v)
				}
			}()
		}
		for _, i := range misses {
			next <- i
		}
		close(next)
		wg.Wait()
	} else {
		for _, i := range misses {
			results[i] = b.computeCand(proposed[i].u, proposed[i].v)
		}
	}
	b.stats.PairsEvaluated += int64(len(misses))
	if b.memo != nil {
		for _, i := range misses {
			b.memoStore(proposed[i].u, proposed[i].v, results[i])
		}
	}
	out := proposed[:0]
	for _, c := range results {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

// newCand evaluates the merge (u, v) through the memo table, returning
// nil when it cannot be applied. Serial callers only; parallel workers
// go through computeCand and store afterwards.
func (b *builder) newCand(u, v NodeID) *mergeCand {
	if b.memo != nil {
		if c, hit := b.memoLookup(u, v); hit {
			return c
		}
		c := b.computeCand(u, v)
		b.stats.PairsEvaluated++
		b.memoStore(u, v, c)
		return c
	}
	c := b.computeCand(u, v)
	b.stats.PairsEvaluated++
	return c
}

// computeCand evaluates the merge (u, v) from scratch, returning nil
// when it cannot be applied. It is read-only against the builder, so
// concurrent calls are safe.
func (b *builder) computeCand(u, v NodeID) *mergeCand {
	var (
		delta float64
		saved int
		err   error
	)
	if b.opts.GlobalMetric {
		delta, saved, err = b.globalDelta(u, v)
	} else {
		delta, saved, err = b.s.mergeDeltaCached(u, v, b.opts.AtomicCap, b.evalc)
	}
	if err != nil {
		return nil
	}
	if saved < 1 {
		saved = 1
	}
	return &mergeCand{
		u: u, v: v, delta: delta, saved: saved,
		marginal: delta / float64(saved),
		mass:     b.s.nodes[u].Count + b.s.nodes[v].Count,
		verU:     b.ver[u], verV: b.ver[v],
	}
}

// refCentroid maps a reference node's structural centroid onto the
// current clustering: for each reference child edge, the average count is
// attributed to the current cluster holding that reference child (u and
// v remapped to the placeholder).
func (b *builder) refCentroid(refID, u, v NodeID) map[NodeID]float64 {
	out := make(map[NodeID]float64)
	for c, avg := range b.ref.nodes[refID].Children {
		t := b.refToCur[c]
		if t == u || t == v {
			t = placeholderID
		}
		out[t] += avg
	}
	return out
}

// centroidDist2 returns the squared L2 distance between two sparse
// centroids.
func centroidDist2(a, bb map[NodeID]float64) float64 {
	d := 0.0
	for t, x := range a {
		diff := x - bb[t]
		d += diff * diff
	}
	for t, y := range bb {
		if _, seen := a[t]; !seen {
			d += y * y
		}
	}
	return d
}

// globalDelta is the TreeSketch-style clustering metric: the increase in
// Σ_r |r| · dist²(centroid(r), centroid(cluster(r))) caused by fusing u
// and v, computed against the reference partition.
func (b *builder) globalDelta(uid, vid NodeID) (float64, int, error) {
	u, v := b.s.nodes[uid], b.s.nodes[vid]
	if u == nil || v == nil {
		return 0, 0, fmt.Errorf("core: globalDelta(%d,%d): node gone", uid, vid)
	}
	if !Compatible(u, v) {
		return 0, 0, fmt.Errorf("core: globalDelta(%d,%d): incompatible", uid, vid)
	}
	wCentroid := mergedChildren(u, v, placeholderID)
	// Current centroids with u/v self-references remapped, so reference
	// centroids are compared in the same coordinate system.
	curCentroid := func(x *Node) map[NodeID]float64 {
		out := make(map[NodeID]float64, len(x.Children))
		for c, avg := range x.Children {
			t := c
			if t == uid || t == vid {
				t = placeholderID
			}
			out[t] += avg
		}
		return out
	}
	cu, cv := curCentroid(u), curCentroid(v)
	delta := 0.0
	for _, x := range []*Node{u, v} {
		cur := cu
		if x == v {
			cur = cv
		}
		for _, r := range b.members[x.ID] {
			rc := b.refCentroid(r, uid, vid)
			w := b.ref.nodes[r].Count
			delta += w * (centroidDist2(rc, wCentroid) - centroidDist2(rc, cur))
		}
	}
	if delta < 0 {
		delta = 0 // numerical noise; the reference distance is a lower bound
	}
	// Structural savings are metric-independent.
	return delta, b.s.mergeSavings(u, v, len(wCentroid)), nil
}

type groupKey struct {
	label string
	vt    xmltree.ValueType
	hasV  bool
}

func nodeGroup(n *Node) groupKey {
	return groupKey{label: n.Label, vt: n.VType, hasV: n.HasValues()}
}

// childSig is a cheap similarity key: nodes pointing to similar child
// sets sort near each other, so the PairWindow pairing proposes the
// merges most likely to have low Δ (the paper's "clusters are similar if
// they point to similar children" intuition).
func childSig(n *Node) string {
	ids := make([]int, 0, len(n.Children))
	for c := range n.Children {
		ids = append(ids, int(c))
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(id))
		sb.WriteByte(',')
	}
	return sb.String()
}

// memberSort orders a candidate group by (childSig, Count, ID) — a
// strict total order, so the result is unique — keeping the decorated
// signature slice in lockstep with the nodes.
type memberSort struct {
	members []*Node
	sigs    []string
}

func (m *memberSort) Len() int { return len(m.members) }
func (m *memberSort) Swap(i, j int) {
	m.members[i], m.members[j] = m.members[j], m.members[i]
	m.sigs[i], m.sigs[j] = m.sigs[j], m.sigs[i]
}
func (m *memberSort) Less(i, j int) bool {
	if m.sigs[i] != m.sigs[j] {
		return m.sigs[i] < m.sigs[j]
	}
	if m.members[i].Count != m.members[j].Count {
		return m.members[i].Count < m.members[j].Count
	}
	return m.members[i].ID < m.members[j].ID
}

// nodeSig returns childSig(n), served from the per-version signature
// cache when enabled: a node's signature only changes when its child
// set does, and every child-set change bumps the node's version.
func (b *builder) nodeSig(n *Node) string {
	if b.sigs == nil {
		return childSig(n)
	}
	if e, ok := b.sigs[n.ID]; ok && e.ver == b.ver[n.ID] {
		return e.sig
	}
	sig := childSig(n)
	b.sigs[n.ID] = sigEntry{ver: b.ver[n.ID], sig: sig}
	return sig
}

// buildPool implements build_pool (Figure 6): it proposes merge
// candidates among label/type-compatible nodes at level <= l, keeping the
// pool within Hm by evicting the highest marginal losses.
func (b *builder) buildPool(l int, levels map[NodeID]int) *candHeap {
	b.stats.PoolBuilds++
	groups := make(map[groupKey][]*Node)
	var keys []groupKey
	for _, n := range b.s.Nodes() { // sorted by id: deterministic groups
		if levels[n.ID] <= l {
			k := nodeGroup(n)
			if groups[k] == nil {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], n)
		}
	}
	var cands []*mergeCand
	for _, k := range keys {
		members := groups[k]
		if len(members) < 2 {
			continue
		}
		// Decorate with signatures once per member: recomputing them
		// inside the comparator would cost O(m log m) string builds.
		sigs := make([]string, len(members))
		for i, n := range members {
			sigs[i] = b.nodeSig(n)
		}
		sort.Sort(&memberSort{members: members, sigs: sigs})
		for i := range members {
			for j := i + 1; j <= i+b.opts.PairWindow && j < len(members); j++ {
				cands = append(cands, &mergeCand{u: members[i].ID, v: members[j].ID})
			}
		}
	}
	// Candidate Δ evaluations are independent and read-only against the
	// synopsis, so they run in parallel; the deterministic ordering comes
	// from the sort and the heap's strict total order afterwards.
	cands = b.evalCands(cands)
	if len(cands) > b.opts.Hm {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].marginal != cands[j].marginal {
				return cands[i].marginal < cands[j].marginal
			}
			if cands[i].u != cands[j].u {
				return cands[i].u < cands[j].u
			}
			return cands[i].v < cands[j].v
		})
		cands = cands[:b.opts.Hm]
	}
	h := candHeap(cands)
	heap.Init(&h)
	return &h
}

// ---- phase 1: structure-value merge ----

// cancelled returns the builder context's error, if any.
func (b *builder) cancelled() error {
	if b.ctx == nil {
		return nil
	}
	return b.ctx.Err()
}

func (b *builder) mergePhase() error {
	opts := b.opts
	b.initGroups()
	defer b.emitProgress("merge", -1)
	l := 1
	for b.s.StructBytes() > opts.StructBudget {
		if err := b.cancelled(); err != nil {
			return err
		}
		b.memoSweep()
		levels := b.s.Levels()
		maxLvl := 0
		for _, lv := range levels {
			if lv > maxLvl && lv < int(^uint(0)>>1) {
				maxLvl = lv
			}
		}
		if opts.NoLevelHeuristic || l > maxLvl+1 {
			l = maxLvl + 1
		}
		// Grow the pool level by level until it holds more than Hl
		// candidates (or every level is admitted): low-level merges must
		// compete with higher-level ones on marginal loss rather than
		// being exhausted first.
		pool := b.buildPool(l, levels)
		for pool.Len() <= opts.Hl && l <= maxLvl {
			l++
			pool = b.buildPool(l, levels)
		}
		if pool.Len() == 0 {
			return nil // nothing left to merge; budget unreachable
		}
		// Drain down to Hl, then replenish; once every level is in the
		// pool, drain fully.
		stopAt := opts.Hl
		if l > maxLvl {
			stopAt = 0
		}
		merged := 0
		maxNewLevel := 0
		for pops := 0; pool.Len() > stopAt && b.s.StructBytes() > opts.StructBudget; pops++ {
			if pops%256 == 0 {
				if err := b.cancelled(); err != nil {
					return err
				}
				if pops%1024 == 0 {
					b.emitProgress("merge", -1)
				}
			}
			c := heap.Pop(pool).(*mergeCand)
			u, v := b.s.nodes[c.u], b.s.nodes[c.v]
			if u == nil || v == nil {
				continue // consumed by an earlier merge
			}
			if b.ver[c.u] != c.verU || b.ver[c.v] != c.verV {
				// Neighborhood changed: recompute the marginal loss.
				if fresh := b.newCand(c.u, c.v); fresh != nil {
					heap.Push(pool, fresh)
				}
				continue
			}
			w, err := b.applyMerge(c.u, c.v)
			if err != nil {
				return fmt.Errorf("core: mergePhase: %w", err)
			}
			merged++
			if lw := min(levels[c.u], levels[c.v]); lw > maxNewLevel {
				maxNewLevel = lw
			}
			// Propose follow-up merges pairing w within its group.
			b.pairNew(w, pool, l, levels)
		}
		if b.s.StructBytes() <= opts.StructBudget {
			return nil
		}
		if merged == 0 {
			return nil // pool drained with nothing applicable
		}
		if next := maxNewLevel + 1; next > l {
			l = next
		}
	}
	return nil
}

// applyMerge performs the merge (u, v) and maintains the builder's
// incremental state: version stamps (which double as memo
// invalidation), the group index, global-metric membership, stats and
// the sweep snapshot hook. Every merge the builder applies must go
// through here.
func (b *builder) applyMerge(u, v NodeID) (*Node, error) {
	w, err := b.s.Merge(u, v)
	if err != nil {
		return nil, err
	}
	if b.opts.GlobalMetric {
		b.members[w.ID] = append(b.members[u], b.members[v]...)
		for _, r := range b.members[w.ID] {
			b.refToCur[r] = w.ID
		}
		delete(b.members, u)
		delete(b.members, v)
	}
	b.stats.Merges++
	b.touchNeighborhood(w)
	b.groupsOnMerge(u, v, w)
	if b.onMerge != nil {
		b.onMerge()
	}
	return w, nil
}

// touchNeighborhood bumps the versions of a freshly merged node and its
// neighbors so queued candidates referencing them are re-evaluated.
// These bumps are also the memo table's invalidation: they cover the
// full dependency set of every Δ the merge could have changed (see the
// invalidation rule in delta.go).
func (b *builder) touchNeighborhood(w *Node) {
	b.ver[w.ID]++
	b.cver[w.ID]++
	for c := range w.Children {
		// Only the child's Parents changed: its centroid state (own
		// children, count, summary) is intact, so cver stays put and
		// memoized error terms involving it remain exact.
		b.ver[c]++
	}
	for p := range w.Parents {
		// The parent's child set changed: full invalidation.
		b.ver[p]++
		b.cver[p]++
	}
}

// initGroups builds the merge-compatibility group index: live node ids
// per group, ascending.
func (b *builder) initGroups() {
	b.groups = make(map[groupKey][]NodeID)
	for _, n := range b.s.Nodes() { // sorted by id: ascending members
		k := nodeGroup(n)
		b.groups[k] = append(b.groups[k], n.ID)
	}
}

// groupsOnMerge replaces u and v with w in their (shared) group. Merged
// ids are fresh maxima, so appending w keeps the slice ascending.
func (b *builder) groupsOnMerge(u, v NodeID, w *Node) {
	if b.groups == nil {
		return
	}
	k := nodeGroup(w)
	ids := b.groups[k]
	out := ids[:0]
	for _, id := range ids {
		if id != u && id != v {
			out = append(out, id)
		}
	}
	b.groups[k] = append(out, w.ID)
}

// pairNew proposes up to PairWindow merges pairing the new node w with
// other members of its group at the current level bound. The group
// index yields the same candidates, in the same ascending-id order, as
// the full node scan it replaced — without sorting every live node on
// every merge.
func (b *builder) pairNew(w *Node, pool *candHeap, l int, levels map[NodeID]int) {
	added := 0
	for _, id := range b.groups[nodeGroup(w)] {
		if id == w.ID {
			continue
		}
		if lv, ok := levels[id]; ok && lv > l {
			continue
		}
		if c := b.newCand(w.ID, id); c != nil {
			heap.Push(pool, c)
			added++
			if added >= b.opts.PairWindow {
				return
			}
		}
	}
}

// ---- phase 2: value-summary compression ----

type valCand struct {
	u        NodeID
	base     vsum.Summary // summary the candidate was computed against
	next     vsum.Summary
	delta    float64
	saved    int
	marginal float64
}

type valHeap []*valCand

func (h valHeap) Len() int { return len(h) }

// Less is a strict total order (marginal loss, then node id) for
// deterministic compression sequences.
func (h valHeap) Less(i, j int) bool {
	if h[i].marginal != h[j].marginal {
		return h[i].marginal < h[j].marginal
	}
	return h[i].u < h[j].u
}
func (h valHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *valHeap) Push(x any)   { *h = append(*h, x.(*valCand)) }
func (h *valHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// compressStep picks the b parameter for the next value-compression
// candidate: the configured constant, or an excess-proportional adaptive
// value (large early steps, b=1 near the budget).
func (b *builder) compressStep(excess int) int {
	if b.opts.CompressStep > 0 {
		return b.opts.CompressStep
	}
	step := excess / 2048
	if step < 1 {
		return 1
	}
	if step > 256 {
		return 256
	}
	return step
}

// newValCand evaluates one compression op for node u, or nil when the
// summary cannot shrink further.
func (b *builder) newValCand(u *Node, excess int) *valCand {
	if u.VSum == nil {
		return nil
	}
	next, saved, steps := u.VSum.Compress(b.compressStep(excess))
	if steps == 0 {
		return nil
	}
	delta, err := b.s.CompressDelta(u.ID, next, b.opts.AtomicCap)
	if err != nil {
		return nil
	}
	if saved < 1 {
		saved = 1
	}
	return &valCand{
		u: u.ID, base: u.VSum, next: next,
		delta: delta, saved: saved, marginal: delta / float64(saved),
	}
}

// valuePhase compresses value summaries within ValueBudget. When the
// resolved plan splits the value budget across summary kinds, each kind
// is first compressed toward its own sub-budget (so a workload-derived
// plan can, say, spend PST bytes on term histograms); the global pass
// then enforces the Bval total exactly as in the paper, reclaiming any
// slack a kind could not use. Unsplit plans — every legacy caller —
// take only the global pass, bit for bit the original behavior.
func (b *builder) valuePhase() error {
	if p := b.opts.Plan; p != nil && p.HasValueSplit() {
		for _, vt := range []xmltree.ValueType{xmltree.TypeNumeric, xmltree.TypeString, xmltree.TypeText} {
			vt := vt
			err := b.compressValues(p.valueKindBudget(vt), func(n *Node) bool {
				return n.VSum != nil && n.VSum.Type() == vt
			})
			if err != nil {
				return err
			}
		}
	}
	return b.compressValues(b.opts.ValueBudget, func(n *Node) bool { return n.VSum != nil })
}

// compressValues runs one minimum-marginal-loss compression pass over
// the summaries include admits, stopping when their combined charge
// fits budget or no admitted summary can shrink further.
func (b *builder) compressValues(budget int, include func(*Node) bool) error {
	cur := 0
	for _, n := range b.s.Nodes() {
		if include(n) {
			cur += n.VSum.SizeBytes()
		}
	}
	if cur <= budget {
		return nil
	}
	defer func() { b.emitProgress("value", b.s.ValueBytes()) }()
	var h valHeap
	for _, n := range b.s.Nodes() {
		if !include(n) {
			continue
		}
		if c := b.newValCand(n, cur-budget); c != nil {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	for pops := 0; cur > budget && h.Len() > 0; pops++ {
		if pops%256 == 0 {
			if err := b.cancelled(); err != nil {
				return err
			}
			if pops%1024 == 0 {
				b.emitProgress("value", cur)
			}
		}
		c := heap.Pop(&h).(*valCand)
		n := b.s.nodes[c.u]
		if n == nil || n.VSum != c.base {
			// Stale candidate (summary already replaced); re-evaluate.
			if n != nil {
				if fresh := b.newValCand(n, cur-budget); fresh != nil {
					heap.Push(&h, fresh)
				}
			}
			continue
		}
		n.VSum = c.next
		cur -= c.saved
		if fresh := b.newValCand(n, cur-budget); fresh != nil {
			heap.Push(&h, fresh)
		}
	}
	return nil
}
