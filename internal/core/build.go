package core

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xcluster/internal/vsum"
	"xcluster/internal/xmltree"
)

// BuildOptions configure XClusterBuild.
type BuildOptions struct {
	// StructBudget is Bstr: the byte budget for nodes, edges and edge
	// counts.
	StructBudget int
	// ValueBudget is Bval: the byte budget for value summaries.
	ValueBudget int
	// Hm caps the candidate-merge pool; Hl is the replenish threshold
	// (the paper uses 10000 / 5000).
	Hm, Hl int
	// AtomicCap bounds atomic predicates per summary in Δ evaluations
	// (DefaultAtomicCap when 0).
	AtomicCap int
	// PairWindow bounds, within a sorted candidate group, how far apart
	// two nodes may sit to be proposed as a merge pair. This keeps
	// candidate generation near-linear in group size; the pool cap Hm
	// provides the same guarantee in the paper.
	PairWindow int
	// CompressStep is the b parameter of the value-compression
	// operations; 0 picks it adaptively from the remaining excess.
	CompressStep int
	// NoLevelHeuristic disables the bottom-up level stratification of
	// build_pool, admitting candidates from every level immediately
	// (ablation of the Figure 6 heuristic).
	NoLevelHeuristic bool
	// RandomMerges replaces the marginal-loss candidate selection with
	// uniformly random compatible merges (ablation of the Δ metric);
	// RandomSeed drives the choice.
	RandomMerges bool
	// RandomSeed seeds RandomMerges.
	RandomSeed int64
	// Metrics, when non-nil, receives per-phase build wall times
	// (MetricBuildPhaseSeconds with phase="merge"/"value") from
	// XClusterBuildContext.
	Metrics MetricSink
	// GlobalMetric replaces the paper's localized Δ with the
	// TreeSketch-style global clustering metric: the increase in
	// squared structural-centroid distance between the reference
	// partition and the current clustering. It requires keeping the
	// reference synopsis and a member index in memory throughout the
	// build — exactly the overhead Section 4.1 argues the localized
	// metric avoids — and ignores value distributions. For ablation use.
	GlobalMetric bool
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.Hm == 0 {
		o.Hm = 10000
	}
	if o.Hl == 0 {
		o.Hl = o.Hm / 2
	}
	if o.AtomicCap == 0 {
		o.AtomicCap = DefaultAtomicCap
	}
	if o.PairWindow == 0 {
		o.PairWindow = 8
	}
	return o
}

// XClusterBuild runs the paper's two-phase construction (Figure 5) on a
// reference synopsis: a structure-value merge phase compresses the graph
// within StructBudget by applying minimum-marginal-loss node merges from
// a bounded, level-stratified candidate pool; a value-summary compression
// phase then compresses the per-node value summaries within ValueBudget.
// The reference synopsis is not modified.
func XClusterBuild(ref *Synopsis, opts BuildOptions) (*Synopsis, error) {
	return XClusterBuildContext(context.Background(), ref, opts)
}

// XClusterBuildContext is XClusterBuild with cancellation: the merge
// phase checks ctx at every pool (re)build and periodically while
// draining it, and the value phase checks between compression steps, so
// huge builds abort within a bounded amount of work of ctx ending. The
// error is ctx.Err() when cancellation caused the abort.
func XClusterBuildContext(ctx context.Context, ref *Synopsis, opts BuildOptions) (*Synopsis, error) {
	opts = opts.withDefaults()
	buildStart := time.Now()
	s := ref.Clone()
	b := &builder{s: s, opts: opts, ver: make(map[NodeID]int), ctx: ctx}
	if opts.GlobalMetric {
		b.ref = ref
		b.members = make(map[NodeID][]NodeID, len(ref.nodes))
		b.refToCur = make(map[NodeID]NodeID, len(ref.nodes))
		for id := range ref.nodes {
			b.members[id] = []NodeID{id}
			b.refToCur[id] = id
		}
	}
	phaseStart := time.Now()
	if opts.RandomMerges {
		if err := b.randomMergePhase(); err != nil {
			return nil, err
		}
	} else if err := b.mergePhase(); err != nil {
		return nil, err
	}
	if opts.Metrics != nil {
		opts.Metrics.Observe(MetricBuildPhaseSeconds, `phase="merge"`, time.Since(phaseStart).Seconds())
	}
	phaseStart = time.Now()
	if err := b.valuePhase(); err != nil {
		return nil, err
	}
	if opts.Metrics != nil {
		opts.Metrics.Observe(MetricBuildPhaseSeconds, `phase="value"`, time.Since(phaseStart).Seconds())
	}
	// Stamp the build identity: the doc hash and option summary arrive
	// via the reference's fingerprint (through Clone); the compression
	// pass adds its budgets and timing.
	s.fp.StructBudget = opts.StructBudget
	s.fp.ValueBudget = opts.ValueBudget
	s.fp.BuiltAtUnix = time.Now().Unix()
	s.fp.BuildNanos = time.Since(buildStart).Nanoseconds()
	return s, nil
}

// randomMergePhase merges uniformly random compatible pairs until the
// structural budget is met — the no-Δ baseline for ablation runs.
func (b *builder) randomMergePhase() error {
	rng := rand.New(rand.NewSource(b.opts.RandomSeed))
	for b.s.StructBytes() > b.opts.StructBudget {
		groups := make(map[groupKey][]*Node)
		for _, n := range b.s.nodes {
			k := nodeGroup(n)
			groups[k] = append(groups[k], n)
		}
		var mergeable []groupKey
		for k, members := range groups {
			if len(members) >= 2 {
				mergeable = append(mergeable, k)
			}
		}
		if len(mergeable) == 0 {
			return nil
		}
		sort.Slice(mergeable, func(i, j int) bool {
			if mergeable[i].label != mergeable[j].label {
				return mergeable[i].label < mergeable[j].label
			}
			return mergeable[i].vt < mergeable[j].vt
		})
		members := groups[mergeable[rng.Intn(len(mergeable))]]
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		i := rng.Intn(len(members))
		j := rng.Intn(len(members) - 1)
		if j >= i {
			j++
		}
		if _, err := b.s.Merge(members[i].ID, members[j].ID); err != nil {
			return fmt.Errorf("core: randomMergePhase: %w", err)
		}
	}
	return nil
}

// XClusterSweep builds synopses for several structural budgets in one
// pass. Greedy merging does not depend on the budget (a smaller budget's
// merge sequence is a prefix extension of a larger one's), so the merge
// phase runs once toward the smallest budget, snapshotting the synopsis
// as it crosses each requested budget; each snapshot then gets its own
// value-compression phase. The result matches XClusterBuild at every
// budget while paying for one merge phase instead of len(budgets).
// Results are returned in the order of structBudgets.
func XClusterSweep(ref *Synopsis, structBudgets []int, valueBudget int, opts BuildOptions) ([]*Synopsis, error) {
	opts = opts.withDefaults()
	if opts.RandomMerges || opts.GlobalMetric {
		return nil, fmt.Errorf("core: XClusterSweep supports only the default policy")
	}
	// Work over distinct budgets in descending order.
	desc := append([]int(nil), structBudgets...)
	sort.Sort(sort.Reverse(sort.IntSlice(desc)))
	minBudget := desc[len(desc)-1]

	s := ref.Clone()
	b := &builder{s: s, opts: opts, ver: make(map[NodeID]int)}
	b.opts.StructBudget = minBudget

	snapshots := make(map[int]*Synopsis, len(desc))
	pending := desc
	takeDue := func() {
		for len(pending) > 0 && b.s.StructBytes() <= pending[0] {
			if _, dup := snapshots[pending[0]]; !dup {
				snapshots[pending[0]] = b.s.Clone()
			}
			pending = pending[1:]
		}
	}
	takeDue()
	b.onMerge = takeDue
	if err := b.mergePhase(); err != nil {
		return nil, err
	}
	// Budgets below the merge floor get the final state.
	for _, budget := range pending {
		snapshots[budget] = b.s.Clone()
	}

	// Independent value phases, in parallel.
	distinct := make([]int, 0, len(snapshots))
	for budget := range snapshots {
		distinct = append(distinct, budget)
	}
	sort.Ints(distinct)
	var wg sync.WaitGroup
	next := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(distinct) {
		workers = len(distinct)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for budget := range next {
				vb := &builder{s: snapshots[budget], opts: opts, ver: make(map[NodeID]int)}
				vb.opts.ValueBudget = valueBudget
				vb.valuePhase()
			}
		}()
	}
	for _, budget := range distinct {
		next <- budget
	}
	close(next)
	wg.Wait()

	out := make([]*Synopsis, len(structBudgets))
	for i, budget := range structBudgets {
		out[i] = snapshots[budget]
	}
	return out, nil
}

// builder holds the mutable state of one XClusterBuild run.
type builder struct {
	s    *Synopsis
	opts BuildOptions
	// ctx, when non-nil, is polled at phase boundaries so callers can
	// abort long builds.
	ctx context.Context
	// onMerge, when set, runs after every applied merge (used by
	// XClusterSweep to snapshot budget crossings).
	onMerge func()
	// ver tracks node adjacency versions so queued candidates whose
	// neighborhoods changed are lazily re-evaluated (the paper recomputes
	// marginal losses in the merged nodes' neighborhood eagerly).
	ver map[NodeID]int
	// Global-metric state (GlobalMetric only): the reference synopsis,
	// the reference nodes absorbed by each current cluster, and the
	// inverse map.
	ref      *Synopsis
	members  map[NodeID][]NodeID
	refToCur map[NodeID]NodeID
}

// ---- candidate pool ----

type mergeCand struct {
	u, v       NodeID
	delta      float64
	saved      int
	marginal   float64
	mass       float64 // combined extent, the tie spreader
	verU, verV int
}

type candHeap []*mergeCand

func (h candHeap) Len() int { return len(h) }

// Less is a strict total order so the pop sequence — and therefore the
// whole build — is deterministic: marginal loss, then smaller combined
// extent (ties — typically free zero-Δ merges — consume small clusters
// first instead of cascading one group into a giant cluster), then node
// ids.
func (h candHeap) Less(i, j int) bool {
	if h[i].marginal != h[j].marginal {
		return h[i].marginal < h[j].marginal
	}
	if h[i].mass != h[j].mass {
		return h[i].mass < h[j].mass
	}
	if h[i].u != h[j].u {
		return h[i].u < h[j].u
	}
	return h[i].v < h[j].v
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(*mergeCand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// evalCands computes Δ and marginal loss for proposed pairs in parallel,
// dropping infeasible ones. Order is preserved.
func (b *builder) evalCands(proposed []*mergeCand) []*mergeCand {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(proposed) {
		workers = len(proposed)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int, workers)
		results := make([]*mergeCand, len(proposed))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = b.newCand(proposed[i].u, proposed[i].v)
				}
			}()
		}
		for i := range proposed {
			next <- i
		}
		close(next)
		wg.Wait()
		out := proposed[:0]
		for _, c := range results {
			if c != nil {
				out = append(out, c)
			}
		}
		return out
	}
	out := proposed[:0]
	for _, p := range proposed {
		if c := b.newCand(p.u, p.v); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// newCand evaluates the merge (u, v), returning nil when it cannot be
// applied.
func (b *builder) newCand(u, v NodeID) *mergeCand {
	var (
		delta float64
		saved int
		err   error
	)
	if b.opts.GlobalMetric {
		delta, saved, err = b.globalDelta(u, v)
	} else {
		delta, saved, err = b.s.MergeDelta(u, v, b.opts.AtomicCap)
	}
	if err != nil {
		return nil
	}
	if saved < 1 {
		saved = 1
	}
	return &mergeCand{
		u: u, v: v, delta: delta, saved: saved,
		marginal: delta / float64(saved),
		mass:     b.s.nodes[u].Count + b.s.nodes[v].Count,
		verU:     b.ver[u], verV: b.ver[v],
	}
}

// refCentroid maps a reference node's structural centroid onto the
// current clustering: for each reference child edge, the average count is
// attributed to the current cluster holding that reference child (u and
// v remapped to the placeholder).
func (b *builder) refCentroid(refID, u, v NodeID) map[NodeID]float64 {
	out := make(map[NodeID]float64)
	for c, avg := range b.ref.nodes[refID].Children {
		t := b.refToCur[c]
		if t == u || t == v {
			t = placeholderID
		}
		out[t] += avg
	}
	return out
}

// centroidDist2 returns the squared L2 distance between two sparse
// centroids.
func centroidDist2(a, bb map[NodeID]float64) float64 {
	d := 0.0
	for t, x := range a {
		diff := x - bb[t]
		d += diff * diff
	}
	for t, y := range bb {
		if _, seen := a[t]; !seen {
			d += y * y
		}
	}
	return d
}

// globalDelta is the TreeSketch-style clustering metric: the increase in
// Σ_r |r| · dist²(centroid(r), centroid(cluster(r))) caused by fusing u
// and v, computed against the reference partition.
func (b *builder) globalDelta(uid, vid NodeID) (float64, int, error) {
	u, v := b.s.nodes[uid], b.s.nodes[vid]
	if u == nil || v == nil {
		return 0, 0, fmt.Errorf("core: globalDelta(%d,%d): node gone", uid, vid)
	}
	if !Compatible(u, v) {
		return 0, 0, fmt.Errorf("core: globalDelta(%d,%d): incompatible", uid, vid)
	}
	wCentroid, _ := mergedEdges(u, v, placeholderID)
	// Current centroids with u/v self-references remapped, so reference
	// centroids are compared in the same coordinate system.
	curCentroid := func(x *Node) map[NodeID]float64 {
		out := make(map[NodeID]float64, len(x.Children))
		for c, avg := range x.Children {
			t := c
			if t == uid || t == vid {
				t = placeholderID
			}
			out[t] += avg
		}
		return out
	}
	cu, cv := curCentroid(u), curCentroid(v)
	delta := 0.0
	for _, x := range []*Node{u, v} {
		cur := cu
		if x == v {
			cur = cv
		}
		for _, r := range b.members[x.ID] {
			rc := b.refCentroid(r, uid, vid)
			w := b.ref.nodes[r].Count
			delta += w * (centroidDist2(rc, wCentroid) - centroidDist2(rc, cur))
		}
	}
	if delta < 0 {
		delta = 0 // numerical noise; the reference distance is a lower bound
	}
	// Structural savings are metric-independent.
	return delta, b.s.mergeSavings(u, v, len(wCentroid)), nil
}

type groupKey struct {
	label string
	vt    xmltree.ValueType
	hasV  bool
}

func nodeGroup(n *Node) groupKey {
	return groupKey{label: n.Label, vt: n.VType, hasV: n.HasValues()}
}

// childSig is a cheap similarity key: nodes pointing to similar child
// sets sort near each other, so the PairWindow pairing proposes the
// merges most likely to have low Δ (the paper's "clusters are similar if
// they point to similar children" intuition).
func childSig(n *Node) string {
	ids := make([]int, 0, len(n.Children))
	for c := range n.Children {
		ids = append(ids, int(c))
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(id))
		sb.WriteByte(',')
	}
	return sb.String()
}

// buildPool implements build_pool (Figure 6): it proposes merge
// candidates among label/type-compatible nodes at level <= l, keeping the
// pool within Hm by evicting the highest marginal losses.
func (b *builder) buildPool(l int, levels map[NodeID]int) *candHeap {
	groups := make(map[groupKey][]*Node)
	var keys []groupKey
	for _, n := range b.s.Nodes() { // sorted by id: deterministic groups
		if levels[n.ID] <= l {
			k := nodeGroup(n)
			if groups[k] == nil {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], n)
		}
	}
	var cands []*mergeCand
	for _, k := range keys {
		members := groups[k]
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool {
			si, sj := childSig(members[i]), childSig(members[j])
			if si != sj {
				return si < sj
			}
			if members[i].Count != members[j].Count {
				return members[i].Count < members[j].Count
			}
			return members[i].ID < members[j].ID
		})
		for i := range members {
			for j := i + 1; j <= i+b.opts.PairWindow && j < len(members); j++ {
				cands = append(cands, &mergeCand{u: members[i].ID, v: members[j].ID})
			}
		}
	}
	// Candidate Δ evaluations are independent and read-only against the
	// synopsis, so they run in parallel; the deterministic ordering comes
	// from the sort and the heap's strict total order afterwards.
	cands = b.evalCands(cands)
	if len(cands) > b.opts.Hm {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].marginal != cands[j].marginal {
				return cands[i].marginal < cands[j].marginal
			}
			if cands[i].u != cands[j].u {
				return cands[i].u < cands[j].u
			}
			return cands[i].v < cands[j].v
		})
		cands = cands[:b.opts.Hm]
	}
	h := candHeap(cands)
	heap.Init(&h)
	return &h
}

// ---- phase 1: structure-value merge ----

// cancelled returns the builder context's error, if any.
func (b *builder) cancelled() error {
	if b.ctx == nil {
		return nil
	}
	return b.ctx.Err()
}

func (b *builder) mergePhase() error {
	opts := b.opts
	l := 1
	for b.s.StructBytes() > opts.StructBudget {
		if err := b.cancelled(); err != nil {
			return err
		}
		levels := b.s.Levels()
		maxLvl := 0
		for _, lv := range levels {
			if lv > maxLvl && lv < int(^uint(0)>>1) {
				maxLvl = lv
			}
		}
		if opts.NoLevelHeuristic || l > maxLvl+1 {
			l = maxLvl + 1
		}
		// Grow the pool level by level until it holds more than Hl
		// candidates (or every level is admitted): low-level merges must
		// compete with higher-level ones on marginal loss rather than
		// being exhausted first.
		pool := b.buildPool(l, levels)
		for pool.Len() <= opts.Hl && l <= maxLvl {
			l++
			pool = b.buildPool(l, levels)
		}
		if pool.Len() == 0 {
			return nil // nothing left to merge; budget unreachable
		}
		// Drain down to Hl, then replenish; once every level is in the
		// pool, drain fully.
		stopAt := opts.Hl
		if l > maxLvl {
			stopAt = 0
		}
		merged := 0
		maxNewLevel := 0
		for pops := 0; pool.Len() > stopAt && b.s.StructBytes() > opts.StructBudget; pops++ {
			if pops%256 == 0 {
				if err := b.cancelled(); err != nil {
					return err
				}
			}
			c := heap.Pop(pool).(*mergeCand)
			u, v := b.s.nodes[c.u], b.s.nodes[c.v]
			if u == nil || v == nil {
				continue // consumed by an earlier merge
			}
			if b.ver[c.u] != c.verU || b.ver[c.v] != c.verV {
				// Neighborhood changed: recompute the marginal loss.
				if fresh := b.newCand(c.u, c.v); fresh != nil {
					heap.Push(pool, fresh)
				}
				continue
			}
			w, err := b.s.Merge(c.u, c.v)
			if err != nil {
				return fmt.Errorf("core: mergePhase: %w", err)
			}
			if b.opts.GlobalMetric {
				b.members[w.ID] = append(b.members[c.u], b.members[c.v]...)
				for _, r := range b.members[w.ID] {
					b.refToCur[r] = w.ID
				}
				delete(b.members, c.u)
				delete(b.members, c.v)
			}
			merged++
			if lw := min(levels[c.u], levels[c.v]); lw > maxNewLevel {
				maxNewLevel = lw
			}
			b.touchNeighborhood(w)
			if b.onMerge != nil {
				b.onMerge()
			}
			// Propose follow-up merges pairing w within its group.
			b.pairNew(w, pool, l, levels)
		}
		if b.s.StructBytes() <= opts.StructBudget {
			return nil
		}
		if merged == 0 {
			return nil // pool drained with nothing applicable
		}
		if next := maxNewLevel + 1; next > l {
			l = next
		}
	}
	return nil
}

// touchNeighborhood bumps the versions of a freshly merged node and its
// neighbors so queued candidates referencing them are re-evaluated.
func (b *builder) touchNeighborhood(w *Node) {
	b.ver[w.ID]++
	for c := range w.Children {
		b.ver[c]++
	}
	for p := range w.Parents {
		b.ver[p]++
	}
}

// pairNew proposes up to PairWindow merges pairing the new node w with
// other members of its group at the current level bound.
func (b *builder) pairNew(w *Node, pool *candHeap, l int, levels map[NodeID]int) {
	k := nodeGroup(w)
	added := 0
	for _, n := range b.s.Nodes() { // sorted by id: deterministic pairing
		if n.ID == w.ID || nodeGroup(n) != k {
			continue
		}
		if lv, ok := levels[n.ID]; ok && lv > l {
			continue
		}
		if c := b.newCand(w.ID, n.ID); c != nil {
			heap.Push(pool, c)
			added++
			if added >= b.opts.PairWindow {
				return
			}
		}
	}
}

// ---- phase 2: value-summary compression ----

type valCand struct {
	u        NodeID
	base     vsum.Summary // summary the candidate was computed against
	next     vsum.Summary
	delta    float64
	saved    int
	marginal float64
}

type valHeap []*valCand

func (h valHeap) Len() int { return len(h) }

// Less is a strict total order (marginal loss, then node id) for
// deterministic compression sequences.
func (h valHeap) Less(i, j int) bool {
	if h[i].marginal != h[j].marginal {
		return h[i].marginal < h[j].marginal
	}
	return h[i].u < h[j].u
}
func (h valHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *valHeap) Push(x any)   { *h = append(*h, x.(*valCand)) }
func (h *valHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// compressStep picks the b parameter for the next value-compression
// candidate: the configured constant, or an excess-proportional adaptive
// value (large early steps, b=1 near the budget).
func (b *builder) compressStep(excess int) int {
	if b.opts.CompressStep > 0 {
		return b.opts.CompressStep
	}
	step := excess / 2048
	if step < 1 {
		return 1
	}
	if step > 256 {
		return 256
	}
	return step
}

// newValCand evaluates one compression op for node u, or nil when the
// summary cannot shrink further.
func (b *builder) newValCand(u *Node, excess int) *valCand {
	if u.VSum == nil {
		return nil
	}
	next, saved, steps := u.VSum.Compress(b.compressStep(excess))
	if steps == 0 {
		return nil
	}
	delta, err := b.s.CompressDelta(u.ID, next, b.opts.AtomicCap)
	if err != nil {
		return nil
	}
	if saved < 1 {
		saved = 1
	}
	return &valCand{
		u: u.ID, base: u.VSum, next: next,
		delta: delta, saved: saved, marginal: delta / float64(saved),
	}
}

func (b *builder) valuePhase() error {
	cur := b.s.ValueBytes()
	budget := b.opts.ValueBudget
	if cur <= budget {
		return nil
	}
	var h valHeap
	for _, n := range b.s.Nodes() {
		if c := b.newValCand(n, cur-budget); c != nil {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	for pops := 0; cur > budget && h.Len() > 0; pops++ {
		if pops%256 == 0 {
			if err := b.cancelled(); err != nil {
				return err
			}
		}
		c := heap.Pop(&h).(*valCand)
		n := b.s.nodes[c.u]
		if n == nil || n.VSum != c.base {
			// Stale candidate (summary already replaced); re-evaluate.
			if n != nil {
				if fresh := b.newValCand(n, cur-budget); fresh != nil {
					heap.Push(&h, fresh)
				}
			}
			continue
		}
		n.VSum = c.next
		cur -= c.saved
		if fresh := b.newValCand(n, cur-budget); fresh != nil {
			heap.Push(&h, fresh)
		}
	}
	return nil
}
