package core

import (
	"fmt"
	"io"
	"sort"

	"xcluster/internal/vsum"
	"xcluster/internal/wire"
	"xcluster/internal/xmltree"
)

// magic identifies the synopsis file format (version 1).
var magic = []byte("XCLUSTER1\n")

// WriteTo serializes the synopsis (including its term dictionary and all
// value summaries) in a compact binary format, so an optimizer can load
// statistics without touching the database. It implements io.WriterTo.
func (s *Synopsis) WriteTo(w io.Writer) (int64, error) {
	ww := wire.NewWriter(w)
	ww.Bytes(magic)

	// Term dictionary.
	ww.Uint(uint64(s.dict.Len()))
	for _, term := range s.dict.Terms() {
		ww.String(term)
	}

	// Graph.
	ww.Int(int(s.rootID))
	ww.Int(int(s.nextID))
	nodes := s.Nodes()
	ww.Uint(uint64(len(nodes)))
	for _, n := range nodes {
		ww.Int(int(n.ID))
		ww.String(n.Label)
		ww.Uint(uint64(n.VType))
		ww.Float(n.Count)
		ww.String(n.Path)
		ww.Uint(uint64(len(n.Children)))
		targets := make([]int, 0, len(n.Children))
		for c := range n.Children {
			targets = append(targets, int(c))
		}
		sort.Ints(targets)
		for _, c := range targets {
			ww.Int(c)
			ww.Float(n.Children[NodeID(c)])
		}
		if n.VSum != nil {
			ww.Uint(1)
			vsum.Encode(ww, n.VSum)
		} else {
			ww.Uint(0)
		}
	}
	if err := ww.Flush(); err != nil {
		return ww.Len(), fmt.Errorf("core: WriteTo: %w", err)
	}
	return ww.Len(), nil
}

// ReadSynopsis deserializes a synopsis written by WriteTo.
func ReadSynopsis(r io.Reader) (*Synopsis, error) {
	rr := wire.NewReader(r)
	rr.Expect(magic)

	dict := xmltree.NewDict()
	nTerms := rr.Uint()
	for i := uint64(0); i < nTerms && rr.Err() == nil; i++ {
		dict.Intern(rr.String())
	}

	s := newSynopsis(dict)
	s.rootID = NodeID(rr.Int())
	s.nextID = NodeID(rr.Int())
	nNodes := rr.Uint()
	type pendingEdge struct {
		from, to NodeID
		avg      float64
	}
	var edges []pendingEdge
	for i := uint64(0); i < nNodes && rr.Err() == nil; i++ {
		n := &Node{
			ID:       NodeID(rr.Int()),
			Label:    rr.String(),
			VType:    xmltree.ValueType(rr.Uint()),
			Count:    rr.Float(),
			Path:     rr.String(),
			Children: make(map[NodeID]float64),
			Parents:  make(map[NodeID]struct{}),
		}
		nEdges := rr.Uint()
		for e := uint64(0); e < nEdges && rr.Err() == nil; e++ {
			edges = append(edges, pendingEdge{from: n.ID, to: NodeID(rr.Int()), avg: rr.Float()})
		}
		if rr.Uint() == 1 {
			sum, err := vsum.Decode(rr)
			if err != nil {
				return nil, fmt.Errorf("core: ReadSynopsis: node %d: %w", n.ID, err)
			}
			n.VSum = sum
		}
		if rr.Err() == nil {
			s.nodes[n.ID] = n
		}
	}
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("core: ReadSynopsis: %w", err)
	}
	for _, e := range edges {
		from, to := s.nodes[e.from], s.nodes[e.to]
		if from == nil || to == nil {
			return nil, fmt.Errorf("core: ReadSynopsis: edge %d->%d references missing node", e.from, e.to)
		}
		s.setEdge(from, to, e.avg)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: ReadSynopsis: %w", err)
	}
	return s, nil
}
