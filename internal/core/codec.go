package core

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"

	"xcluster/internal/vsum"
	"xcluster/internal/wire"
	"xcluster/internal/xmltree"
)

// The synopsis file format is versioned through its magic line:
//
//	XCLUSTER1\n  graph + dictionary + value summaries (legacy)
//	XCLUSTER2\n  adds a fingerprint header (doc hash, budgets,
//	             generation, build time) before the v1 body
//	XCLUSTER3\n  extends the header with the BudgetPlan (component
//	             split, provenance, workload fingerprint)
//
// WriteTo always writes the current version; ReadSynopsis decodes
// every version it knows and fails with ErrSynopsisVersion on versions
// it does not, so an old daemon fed a newer file reports a clear typed
// error instead of decoding garbage.
var (
	magicV1 = []byte("XCLUSTER1\n")
	magicV2 = []byte("XCLUSTER2\n")
	magicV3 = []byte("XCLUSTER3\n")
)

// CodecVersion is the synopsis file format version WriteTo produces.
const CodecVersion = 3

// ErrSynopsisVersion reports a synopsis file whose format version this
// build cannot decode. Test with errors.Is.
var ErrSynopsisVersion = errors.New("core: unsupported synopsis format version")

// WriteTo serializes the synopsis (fingerprint header, term dictionary
// and all value summaries) in a compact binary format, so an optimizer
// can load statistics without touching the database. It implements
// io.WriterTo.
func (s *Synopsis) WriteTo(w io.Writer) (int64, error) {
	ww := wire.NewWriter(w)
	ww.Bytes(magicV3)

	// Fingerprint header (v2 fields, then the v3 budget plan).
	ww.Uint(s.fp.DocHash)
	ww.Int(s.fp.StructBudget)
	ww.Int(s.fp.ValueBudget)
	ww.Uint(s.fp.Generation)
	ww.Int(int(s.fp.BuiltAtUnix))
	ww.Int(int(s.fp.BuildNanos))
	ww.String(s.fp.BuildOptions)
	ww.Int(s.fp.Plan.TotalBytes)
	ww.Int(s.fp.Plan.StructBytes)
	ww.Int(s.fp.Plan.ValueBytes)
	ww.Int(s.fp.Plan.NodeBytes)
	ww.Int(s.fp.Plan.EdgeBytes)
	ww.Int(s.fp.Plan.HistogramBytes)
	ww.Int(s.fp.Plan.PSTBytes)
	ww.Int(s.fp.Plan.TermHistBytes)
	ww.String(string(s.fp.Plan.Provenance))
	ww.String(s.fp.Plan.WorkloadFingerprint)

	// Term dictionary.
	ww.Uint(uint64(s.dict.Len()))
	for _, term := range s.dict.Terms() {
		ww.String(term)
	}

	// Graph.
	ww.Int(int(s.rootID))
	ww.Int(int(s.nextID))
	nodes := s.Nodes()
	ww.Uint(uint64(len(nodes)))
	for _, n := range nodes {
		ww.Int(int(n.ID))
		ww.String(n.Label)
		ww.Uint(uint64(n.VType))
		ww.Float(n.Count)
		ww.String(n.Path)
		ww.Uint(uint64(len(n.Children)))
		targets := make([]int, 0, len(n.Children))
		for c := range n.Children {
			targets = append(targets, int(c))
		}
		sort.Ints(targets)
		for _, c := range targets {
			ww.Int(c)
			ww.Float(n.Children[NodeID(c)])
		}
		if n.VSum != nil {
			ww.Uint(1)
			vsum.Encode(ww, n.VSum)
		} else {
			ww.Uint(0)
		}
	}
	if err := ww.Flush(); err != nil {
		return ww.Len(), fmt.Errorf("core: WriteTo: %w", err)
	}
	return ww.Len(), nil
}

// ReadSynopsis deserializes a synopsis written by WriteTo. All format
// versions decode: v1 files yield a zero fingerprint, v2 files carry
// their build identity with a zero budget plan (unknown provenance),
// v3 files carry the full plan. Unknown versions fail with
// ErrSynopsisVersion.
func ReadSynopsis(r io.Reader) (*Synopsis, error) {
	rr := wire.NewReader(r)
	// In-memory readers self-report their size (wire.NewReader detects
	// Len); for regular files the stat size serves the same purpose, so
	// corrupt length prefixes fail before allocating.
	if f, ok := r.(fs.File); ok {
		if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
			rr.SetLimit(fi.Size())
		}
	}
	head := rr.Raw(len(magicV2))
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("core: ReadSynopsis: magic: %w", err)
	}
	var fp Fingerprint
	switch string(head) {
	case string(magicV1):
		// Legacy artifact: no header, zero fingerprint.
	case string(magicV2), string(magicV3):
		fp.DocHash = rr.Uint()
		fp.StructBudget = rr.Int()
		fp.ValueBudget = rr.Int()
		fp.Generation = rr.Uint()
		fp.BuiltAtUnix = int64(rr.Int())
		fp.BuildNanos = int64(rr.Int())
		fp.BuildOptions = rr.String()
		if string(head) == string(magicV3) {
			fp.Plan.TotalBytes = rr.Int()
			fp.Plan.StructBytes = rr.Int()
			fp.Plan.ValueBytes = rr.Int()
			fp.Plan.NodeBytes = rr.Int()
			fp.Plan.EdgeBytes = rr.Int()
			fp.Plan.HistogramBytes = rr.Int()
			fp.Plan.PSTBytes = rr.Int()
			fp.Plan.TermHistBytes = rr.Int()
			fp.Plan.Provenance = Provenance(rr.String())
			fp.Plan.WorkloadFingerprint = rr.String()
		}
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("core: ReadSynopsis: header: %w", err)
		}
	default:
		if string(head[:len("XCLUSTER")]) == "XCLUSTER" {
			return nil, fmt.Errorf("core: ReadSynopsis: %w: magic %q (this build reads versions 1-%d)",
				ErrSynopsisVersion, head, CodecVersion)
		}
		return nil, fmt.Errorf("core: ReadSynopsis: %w: not an XCluster synopsis file (magic %q)",
			ErrSynopsisVersion, head)
	}

	dict := xmltree.NewDict()
	nTerms := rr.Uint()
	for i := uint64(0); i < nTerms && rr.Err() == nil; i++ {
		dict.Intern(rr.String())
	}

	s := newSynopsis(dict)
	s.fp = fp
	s.rootID = NodeID(rr.Int())
	s.nextID = NodeID(rr.Int())
	nNodes := rr.Uint()
	type pendingEdge struct {
		from, to NodeID
		avg      float64
	}
	var edges []pendingEdge
	for i := uint64(0); i < nNodes && rr.Err() == nil; i++ {
		n := &Node{
			ID:       NodeID(rr.Int()),
			Label:    rr.String(),
			VType:    xmltree.ValueType(rr.Uint()),
			Count:    rr.Float(),
			Path:     rr.String(),
			Children: make(map[NodeID]float64),
			Parents:  make(map[NodeID]struct{}),
		}
		nEdges := rr.Uint()
		for e := uint64(0); e < nEdges && rr.Err() == nil; e++ {
			edges = append(edges, pendingEdge{from: n.ID, to: NodeID(rr.Int()), avg: rr.Float()})
		}
		if rr.Uint() == 1 {
			sum, err := vsum.Decode(rr)
			if err != nil {
				return nil, fmt.Errorf("core: ReadSynopsis: node %d: %w", n.ID, err)
			}
			n.VSum = sum
		}
		if rr.Err() == nil {
			s.nodes[n.ID] = n
		}
	}
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("core: ReadSynopsis: %w", err)
	}
	for _, e := range edges {
		from, to := s.nodes[e.from], s.nodes[e.to]
		if from == nil || to == nil {
			return nil, fmt.Errorf("core: ReadSynopsis: edge %d->%d references missing node", e.from, e.to)
		}
		s.setEdge(from, to, e.avg)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: ReadSynopsis: %w", err)
	}
	return s, nil
}
