package core

import (
	"math"
	"math/rand"
	"testing"

	"xcluster/internal/query"
)

// buildFixture returns a random document and its reference synopsis.
func buildFixture(t *testing.T, seed int64, size int) (*Synopsis, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := randomTree(rng, size)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ref, float64(tr.Len())
}

func TestBuildNoLevelHeuristic(t *testing.T) {
	ref, elements := buildFixture(t, 21, 250)
	budget := ref.StructBytes() / 3
	s, err := XClusterBuild(ref, BuildOptions{
		StructBudget: budget, ValueBudget: 1 << 20,
		Hm: 200, Hl: 100, NoLevelHeuristic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.StructBytes() > budget && s.NumNodes() > 30 {
		t.Fatalf("budget missed: %d > %d with %d nodes", s.StructBytes(), budget, s.NumNodes())
	}
	if got := s.TotalExtent(); math.Abs(got-elements) > 1e-9 {
		t.Fatalf("extent = %g, want %g", got, elements)
	}
}

func TestBuildGlobalMetric(t *testing.T) {
	ref, elements := buildFixture(t, 22, 250)
	budget := ref.StructBytes() / 3
	s, err := XClusterBuild(ref, BuildOptions{
		StructBudget: budget, ValueBudget: 1 << 20,
		Hm: 200, Hl: 100, GlobalMetric: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalExtent(); math.Abs(got-elements) > 1e-9 {
		t.Fatalf("extent = %g, want %g", got, elements)
	}
	// The reference is untouched by the member bookkeeping.
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRandomMergesDeterministic(t *testing.T) {
	ref, _ := buildFixture(t, 23, 200)
	budget := ref.StructBytes() / 2
	a, err := XClusterBuild(ref, BuildOptions{
		StructBudget: budget, ValueBudget: 1 << 20,
		RandomMerges: true, RandomSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := XClusterBuild(ref, BuildOptions{
		StructBudget: budget, ValueBudget: 1 << 20,
		RandomMerges: true, RandomSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.StructBytes() != b.StructBytes() {
		t.Fatalf("same seed, different synopses: %d/%d nodes", a.NumNodes(), b.NumNodes())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	ref, _ := buildFixture(t, 24, 250)
	opts := BuildOptions{StructBudget: ref.StructBytes() / 4, ValueBudget: ref.ValueBytes() / 2, Hm: 200, Hl: 100}
	a, err := XClusterBuild(ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := XClusterBuild(ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.StructBytes() != b.StructBytes() || a.ValueBytes() != b.ValueBytes() {
		t.Fatalf("non-deterministic build: %d/%d nodes, %d/%d struct, %d/%d value",
			a.NumNodes(), b.NumNodes(), a.StructBytes(), b.StructBytes(), a.ValueBytes(), b.ValueBytes())
	}
	// Identical estimates too.
	rng := rand.New(rand.NewSource(24))
	tr := randomTree(rng, 250)
	ea, eb := NewEstimator(a), NewEstimator(b)
	for i := 0; i < 10; i++ {
		q := randomStructQuery(rng, tr)
		x, y := ea.Selectivity(q), eb.Selectivity(q)
		if math.Abs(x-y) > 1e-9*math.Max(1, x) {
			t.Fatalf("estimates diverge on %s: %g vs %g", q, x, y)
		}
	}
}

func TestAutoAllocate(t *testing.T) {
	ref, _ := buildFixture(t, 25, 300)
	total := (ref.StructBytes() + ref.ValueBytes()) / 3
	// Score: squared deviation of //num count (any value-bearing label
	// would do) — a cheap stand-in for workload error.
	q := query.MustParse("//num")
	want := NewEstimator(ref).Selectivity(q)
	score := func(s *Synopsis) float64 {
		got := NewEstimator(s).Selectivity(q)
		return math.Abs(got - want)
	}
	s, bstr, sc, err := AutoAllocate(ref, total, score, BuildOptions{Hm: 200, Hl: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || bstr <= 0 || bstr >= total {
		t.Fatalf("bstr = %d of %d", bstr, total)
	}
	if sc < 0 {
		t.Fatalf("score = %g", sc)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degenerate budget rejected.
	if _, _, _, err := AutoAllocate(ref, 0, score, BuildOptions{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestSweepMatchesIndividualBuilds(t *testing.T) {
	ref, _ := buildFixture(t, 26, 300)
	budgets := []int{
		ref.StructBytes(), // no merging
		ref.StructBytes() / 2,
		ref.StructBytes() / 4,
		0, // tag-level floor
	}
	bval := ref.ValueBytes() / 2
	opts := BuildOptions{Hm: 200, Hl: 100}
	swept, err := XClusterSweep(ref, budgets, bval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != len(budgets) {
		t.Fatalf("results = %d", len(swept))
	}
	for i, budget := range budgets {
		o := opts
		o.StructBudget = budget
		o.ValueBudget = bval
		want, err := XClusterBuild(ref, o)
		if err != nil {
			t.Fatal(err)
		}
		got := swept[i]
		if err := got.Validate(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if got.NumNodes() != want.NumNodes() || got.StructBytes() != want.StructBytes() ||
			got.ValueBytes() != want.ValueBytes() {
			t.Fatalf("budget %d: sweep %d nodes/%dB/%dB, build %d nodes/%dB/%dB",
				budget, got.NumNodes(), got.StructBytes(), got.ValueBytes(),
				want.NumNodes(), want.StructBytes(), want.ValueBytes())
		}
	}
	// Unsupported policies are rejected.
	if _, err := XClusterSweep(ref, budgets, bval, BuildOptions{RandomMerges: true}); err == nil {
		t.Fatal("sweep accepted random policy")
	}
}
