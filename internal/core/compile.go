package core

import (
	"context"
	"fmt"
	"strings"

	"xcluster/internal/query"
)

// PreparedQuery is a query compiled once against an estimator's
// synopsis for repeated execution — the prepared-statement shape of the
// estimation pipeline. It is immutable and safe for concurrent use.
//
// A PreparedQuery binds the estimator configuration (UninformedSel) in
// effect at Prepare time; it does not consult the estimator's result
// cache, because executing the compiled plan is the fast path the cache
// would otherwise shortcut.
type PreparedQuery struct {
	est  *Estimator
	plan *Plan
}

// Prepare compiles q against the synopsis and returns a handle that
// executes the compiled plan. Repeated Prepare calls for the same query
// shape share one plan through the estimator's plan cache. Results are
// bit-for-bit identical to Estimator.Selectivity.
func (e *Estimator) Prepare(q *query.Query) (*PreparedQuery, error) {
	plan, err := e.planFor(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{est: e, plan: plan}, nil
}

// Selectivity executes the compiled plan: s(Q), the expected number of
// binding tuples.
func (pq *PreparedQuery) Selectivity() float64 { return pq.plan.execute() }

// SelectivityContext is Selectivity with cancellation, checked before
// each root variable's subproblem group.
func (pq *PreparedQuery) SelectivityContext(ctx context.Context) (float64, error) {
	return pq.plan.executeContext(ctx)
}

// Query returns the canonical string of the prepared query.
func (pq *PreparedQuery) Query() string { return pq.plan.Query() }

// ExplainPlan renders the compiled plan: every subproblem with its
// resolved frontier clusters, bound term weights, and child subproblem
// references.
func (pq *PreparedQuery) ExplainPlan() string { return pq.plan.describe(pq.est.s) }

// PlanSummary returns the compiled plan's one-line header (subproblem,
// term, and lowered-step counts) without the per-subproblem detail.
func (pq *PreparedQuery) PlanSummary() string { return pq.plan.Summary() }

// compile lowers q onto the synopsis: every step label is resolved to
// an id set once, every (variable, origin) subproblem's frontier and
// predicate selectivities are evaluated through the same reach/predSel
// arithmetic as the interpreter, and the result is flattened into a
// Plan whose execution replays that arithmetic bit-for-bit.
func (e *Estimator) compile(q *query.Query) (*Plan, error) {
	c := &compiler{
		e:     e,
		steps: make(map[query.Step]*stepSet),
		memo:  make(map[memoKey]int32),
	}
	p := &Plan{canonical: q.String(), gen: e.s.fp.Generation}
	for _, r := range q.Roots {
		p.groupStart = append(p.groupStart, int32(len(c.subs)))
		idx, err := c.compileVar(r, -1)
		if err != nil {
			return nil, err
		}
		p.roots = append(p.roots, idx)
	}
	p.subs = c.subs
	p.loweredSteps = len(c.steps)
	n := len(p.subs)
	p.vals.New = func() any {
		buf := make([]float64, n)
		return &buf
	}
	return p, nil
}

// compiler is the per-compilation state: the lowered step sets and the
// (variable, origin) → subproblem-index memo.
type compiler struct {
	e     *Estimator
	subs  []planSub
	steps map[query.Step]*stepSet
	memo  map[memoKey]int32
}

// stepSet is one query step lowered onto the synopsis: the set of
// cluster ids whose label passes the step's label test. Lowering runs
// the label comparison once per cluster per distinct step; execution
// never compares strings again.
type stepSet struct {
	wild  bool
	match map[NodeID]bool
}

// matches reports whether the lowered step accepts the cluster.
func (ss *stepSet) matches(id NodeID) bool { return ss.wild || ss.match[id] }

// lower resolves a step's label test against every synopsis cluster,
// memoized per distinct (axis, label) step within the compilation.
func (c *compiler) lower(st query.Step) *stepSet {
	if ss, ok := c.steps[st]; ok {
		return ss
	}
	ss := &stepSet{}
	if st.Label == query.Wildcard {
		ss.wild = true
	} else {
		ss.match = make(map[NodeID]bool)
		for id, n := range c.e.s.nodes {
			if n.Label == st.Label {
				ss.match[id] = true
			}
		}
	}
	c.steps[st] = ss
	return ss
}

// compileVar compiles the (v, from) subproblem and every subproblem it
// depends on, returning its index in the subproblem array. Children are
// emitted before the parent, so index order is evaluation order.
func (c *compiler) compileVar(v *query.Node, from NodeID) (int32, error) {
	if len(v.Steps) == 0 {
		return 0, fmt.Errorf("core: cannot compile query variable with no steps")
	}
	k := memoKey{v: v, from: from}
	if idx, ok := c.memo[k]; ok {
		return idx, nil
	}
	sub := planSub{label: varLabel(v), from: from}
	for _, fw := range c.reach(from, v.Steps) {
		sel := c.e.predSel(c.e.s.nodes[fw.id], v.Pred)
		if sel == 0 {
			continue
		}
		term := planTerm{node: fw.id, w: fw.w * sel}
		for _, child := range v.Children {
			kidIdx, err := c.compileVar(child, fw.id)
			if err != nil {
				return 0, err
			}
			term.kids = append(term.kids, kidIdx)
		}
		sub.terms = append(sub.terms, term)
	}
	idx := int32(len(c.subs))
	c.subs = append(c.subs, sub)
	c.memo[k] = idx
	return idx, nil
}

// varLabel renders a variable's edge path and predicate for plan
// explain output.
func varLabel(v *query.Node) string {
	var sb strings.Builder
	for _, st := range v.Steps {
		sb.WriteString(st.String())
	}
	if v.Pred != nil {
		sb.WriteString("[" + v.Pred.String() + "]")
	}
	return sb.String()
}

// reach is the compiled mirror of Estimator.reach: identical traversal
// and accumulation order (id-sorted frontiers, id-sorted kids/desc
// inputs), with the lowered step sets replacing per-node label tests —
// so the frontier weights are bit-identical to the interpreter's.
func (c *compiler) reach(from NodeID, steps []query.Step) []weight {
	e := c.e
	// Single child-step fast path, mirroring Estimator.reach: the
	// id-sorted kids slice filtered in place is already the frontier.
	if from != -1 && len(steps) == 1 && steps[0].Axis == query.Child {
		ss := c.lower(steps[0])
		var out []weight
		for _, kw := range e.kids[from] {
			if ss.matches(kw.id) {
				out = append(out, kw)
			}
		}
		return out
	}
	acc := make(map[NodeID]float64)
	rest := steps
	if from == -1 {
		root := e.s.Root()
		st := steps[0]
		ss := c.lower(st)
		rest = steps[1:]
		if st.Axis == query.Child {
			if ss.matches(root.ID) {
				acc[root.ID] = root.Count
			}
		} else {
			if ss.matches(root.ID) {
				acc[root.ID] += root.Count
			}
			for _, d := range e.desc[root.ID] {
				if ss.matches(d.id) {
					acc[d.id] += root.Count * d.w
				}
			}
		}
	} else {
		acc[from] = 1
	}
	frontier := sortedWeights(acc)
	for _, st := range rest {
		ss := c.lower(st)
		next := make(map[NodeID]float64)
		for _, fw := range frontier {
			if st.Axis == query.Child {
				for _, kw := range e.kids[fw.id] {
					if ss.matches(kw.id) {
						next[kw.id] += fw.w * kw.w
					}
				}
			} else {
				for _, d := range e.desc[fw.id] {
					if ss.matches(d.id) {
						next[d.id] += fw.w * d.w
					}
				}
			}
		}
		frontier = sortedWeights(next)
		if len(frontier) == 0 {
			break
		}
	}
	return frontier
}
