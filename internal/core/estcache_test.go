package core

import (
	"sync/atomic"
	"testing"
)

// TestLRUEvictionCounter: only capacity pressure counts as an eviction —
// epoch invalidation and purges drop entries without incrementing it, so
// the counter isolates "my working set outgrew my cache" from lifecycle
// churn.
func TestLRUEvictionCounter(t *testing.T) {
	var epoch atomic.Uint64
	c := newLRUCache[int](2, &epoch)
	c.put("a", 1)
	c.put("b", 2)
	if st := c.stats(); st.Evictions != 0 || st.Len != 2 {
		t.Fatalf("stats after fill = %+v, want 0 evictions, len 2", st)
	}
	c.put("c", 3) // displaces "a"
	if st := c.stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("evicted entry still present")
	}
	// Re-putting an existing key is an update, not an eviction.
	c.put("c", 4)
	if st := c.stats(); st.Evictions != 1 {
		t.Fatalf("evictions after update = %d, want 1", st.Evictions)
	}
	// Epoch invalidation stales entries; the lazy drop on lookup is a
	// miss, not an eviction.
	epoch.Add(1)
	if _, ok := c.get("b"); ok {
		t.Fatal("stale-epoch entry served")
	}
	c.purge()
	if st := c.stats(); st.Evictions != 1 {
		t.Fatalf("evictions after purge = %d, want 1", st.Evictions)
	}
}
