package core

import (
	"fmt"
	"sort"

	"xcluster/internal/vsum"
)

// DefaultAtomicCap bounds the number of atomic predicates drawn from one
// value summary when evaluating the Δ metric. The paper enumerates all
// atomic predicates; the cap is a performance knob that keeps candidate
// evaluation affordable on detailed reference summaries (capped
// enumeration keeps the highest-count predicates, which dominate the
// squared-error sums).
const DefaultAtomicCap = 48

// trivialAtomic is the single σ=1 predicate used for structure-only
// nodes; with it the Δ metric degenerates to a TreeSketch-style squared
// distance between structural centroids.
var trivialAtomic = vsum.Atomic{}

// atomicsFor returns the union of atomic predicates of two summaries
// (either may be nil).
func atomicsFor(a, b vsum.Summary, cap int) []vsum.Atomic {
	if a == nil && b == nil {
		return []vsum.Atomic{trivialAtomic}
	}
	seen := make(map[vsum.Atomic]struct{})
	var out []vsum.Atomic
	add := func(s vsum.Summary) {
		if s == nil {
			return
		}
		for _, at := range s.Atomics(cap) {
			if _, dup := seen[at]; !dup {
				seen[at] = struct{}{}
				out = append(out, at)
			}
		}
	}
	add(a)
	add(b)
	return out
}

// atomicSel returns σ_p(u) for an atomic predicate against a (possibly
// nil) summary; the trivial predicate has selectivity 1.
func atomicSel(s vsum.Summary, a vsum.Atomic) float64 {
	if s == nil {
		return 1
	}
	return s.AtomicSel(a)
}

// edgeCountsTo returns, for node x, the average child count toward the
// remapped target t: count(x, t) plus any counts toward u/v when t is the
// merge placeholder.
func edgeCountsTo(x *Node, t NodeID, uid, vid, placeholder NodeID) float64 {
	if t == placeholder {
		return x.Children[uid] + x.Children[vid]
	}
	return x.Children[t]
}

// placeholderID marks the would-be merged node in Δ computations.
const placeholderID NodeID = -1

// MergeDelta computes the clustering-error increase Δ(S, merge(S,u,v)) of
// Section 4.1:
//
//	Δ = |u| Σ_p Σ_c (e_S(u,p,c) − e_S′(w,p,c))²
//	  + |v| Σ_p Σ_c (e_S(v,p,c) − e_S′(w,p,c))²
//
// with e(x,p,c) = σ_p(x)·count(x,c), atomic predicates p drawn from the
// two value summaries (or the trivial predicate for structure-only
// nodes), and c ranging over the merged child-target set. Leaf clusters
// use a single virtual unit child so that value differences still
// register (the atomic query u[p] itself). It also returns the structural
// bytes the merge would save.
func (s *Synopsis) MergeDelta(uid, vid NodeID, atomicCap int) (delta float64, structSaved int, err error) {
	u, v := s.nodes[uid], s.nodes[vid]
	if u == nil || v == nil {
		return 0, 0, fmt.Errorf("core: MergeDelta(%d,%d): node gone", uid, vid)
	}
	if !Compatible(u, v) {
		return 0, 0, fmt.Errorf("core: MergeDelta(%d,%d): incompatible", uid, vid)
	}
	children, _ := mergedEdges(u, v, placeholderID)

	var wsum vsum.Summary
	if u.VSum != nil {
		wsum = u.VSum.Fuse(v.VSum)
	}
	atomics := atomicsFor(u.VSum, v.VSum, atomicCap)

	// Sum in sorted target order: float addition is order-sensitive in
	// the last ULPs, and near-tie candidates must rank identically
	// across runs for deterministic builds.
	targets := make([]int, 0, len(children))
	for t := range children {
		targets = append(targets, int(t))
	}
	sort.Ints(targets)
	for _, p := range atomics {
		su := atomicSel(u.VSum, p)
		sv := atomicSel(v.VSum, p)
		sw := atomicSel(wsum, p)
		if len(children) == 0 {
			// Virtual unit child: the atomic query u[p] itself.
			du := su - sw
			dv := sv - sw
			delta += u.Count*du*du + v.Count*dv*dv
			continue
		}
		for _, ti := range targets {
			t := NodeID(ti)
			cw := children[t]
			cu := edgeCountsTo(u, t, uid, vid, placeholderID)
			cv := edgeCountsTo(v, t, uid, vid, placeholderID)
			du := su*cu - sw*cw
			dv := sv*cv - sw*cw
			delta += u.Count*du*du + v.Count*dv*dv
		}
	}

	return delta, s.mergeSavings(u, v, len(children)), nil
}

// mergeSavings returns the structural bytes a merge of u and v would
// save: one node disappears and the edges into/out of u and v collapse
// into the merged node's edge set (of size wEdges).
func (s *Synopsis) mergeSavings(u, v *Node, wEdges int) int {
	uid, vid := u.ID, v.ID
	before := len(u.Children) + len(v.Children)
	extParents := 0
	distinctExt := 0
	seen := make(map[NodeID]struct{})
	for _, x := range []*Node{u, v} {
		for p := range x.Parents {
			if p == uid || p == vid {
				continue
			}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			distinctExt++
			parent := s.nodes[p]
			if _, ok := parent.Children[uid]; ok {
				extParents++
			}
			if _, ok := parent.Children[vid]; ok {
				extParents++
			}
		}
	}
	after := wEdges + distinctExt
	return NodeBytes + (before+extParents-after)*EdgeBytes
}

// CompressDelta computes the clustering-error increase of replacing
// vsumm(u) with the compressed summary cs: the first summand of the Δ
// formula with w = u (the structure is unchanged, only σ_p moves).
func (s *Synopsis) CompressDelta(uid NodeID, cs vsum.Summary, atomicCap int) (float64, error) {
	u := s.nodes[uid]
	if u == nil {
		return 0, fmt.Errorf("core: CompressDelta(%d): node gone", uid)
	}
	if u.VSum == nil {
		return 0, fmt.Errorf("core: CompressDelta(%d): no value summary", uid)
	}
	atomics := u.VSum.Atomics(atomicCap)
	// Sorted edge order for run-to-run reproducible float sums.
	avgs := make([]float64, 0, len(u.Children))
	targets := make([]int, 0, len(u.Children))
	for t := range u.Children {
		targets = append(targets, int(t))
	}
	sort.Ints(targets)
	for _, t := range targets {
		avgs = append(avgs, u.Children[NodeID(t)])
	}
	delta := 0.0
	for _, p := range atomics {
		d := u.VSum.AtomicSel(p) - cs.AtomicSel(p)
		if len(avgs) == 0 {
			delta += u.Count * d * d
			continue
		}
		for _, c := range avgs {
			e := d * c
			delta += u.Count * e * e
		}
	}
	return delta, nil
}
