package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"xcluster/internal/vsum"
)

// DefaultAtomicCap bounds the number of atomic predicates drawn from one
// value summary when evaluating the Δ metric. The paper enumerates all
// atomic predicates; the cap is a performance knob that keeps candidate
// evaluation affordable on detailed reference summaries (capped
// enumeration keeps the highest-count predicates, which dominate the
// squared-error sums).
const DefaultAtomicCap = 48

// trivialAtomic is the single σ=1 predicate used for structure-only
// nodes; with it the Δ metric degenerates to a TreeSketch-style squared
// distance between structural centroids.
var trivialAtomic = vsum.Atomic{}

// evalCache holds caches shared across the Δ evaluations of one build.
// Everything cached is derived from immutable summaries, so entries
// never go stale; the cache simply dies with the build. It is a
// sync.Map because candidate evaluations fan out over a worker pool —
// a racing duplicate computation stores the identical value, so the
// cache cannot introduce nondeterminism.
type evalCache struct {
	// atomics memoizes Summary.Atomics(cap) per summary: the
	// enumeration (a full PST walk plus a sort, for strings) otherwise
	// reruns for every candidate pair the node participates in. The
	// value carries a membership set so pair unions dedup against it
	// instead of building a fresh hash table per evaluation.
	atomics sync.Map // vsum.Summary -> *atomicsEntry
	// pairs memoizes the selectivity profile of an ordered summary
	// pair. A candidate re-evaluated after neighborhood churn has the
	// same two summaries (merge-phase summaries are immutable; churn
	// changes edges, not values), so its entire profile — atomic union
	// plus the σ_p(u), σ_p(v), σ_p(w) walks — is served from cache and
	// the re-evaluation reduces to edge arithmetic.
	pairs sync.Map // sumPair -> *pairSels
	// stored bounds the pairs map: past pairCacheMax entries, fresh
	// profiles are computed without being retained (values are
	// identical either way, so the bound cannot change a build).
	stored int64
}

// pairCacheMax bounds evalCache.pairs (profiles are a few KB each).
const pairCacheMax = 1 << 17

// sumPair is the pairs key; summaries are pointer-identified.
type sumPair struct{ a, b vsum.Summary }

// pairSels is the selectivity profile of one ordered summary pair:
// the atomic-predicate union and, aligned with it, the selectivities
// of the first summary, the second, and their fusion.
type pairSels struct {
	atomics    []vsum.Atomic
	su, sv, sw []float64
}

// pairSelsOf returns the profile of (a, b), cached.
func (ec *evalCache) pairSelsOf(a, b vsum.Summary, cap int) *pairSels {
	k := sumPair{a: a, b: b}
	if v, ok := ec.pairs.Load(k); ok {
		return v.(*pairSels)
	}
	ps := computePairSels(a, b, cap, ec)
	if atomic.AddInt64(&ec.stored, 1) <= pairCacheMax {
		ec.pairs.Store(k, ps)
	}
	return ps
}

// computePairSels evaluates the selectivity profile of (a, b). With a
// cache, summaries implementing vsum.FusedSeler answer the fused
// selectivities without materializing the fusion — bit-for-bit neutral
// by that interface's contract.
func computePairSels(a, b vsum.Summary, cap int, ec *evalCache) *pairSels {
	atomics := atomicsFor(a, b, cap, ec)
	ps := &pairSels{
		atomics: atomics,
		su:      make([]float64, len(atomics)),
		sv:      make([]float64, len(atomics)),
		sw:      make([]float64, len(atomics)),
	}
	var wsum vsum.Summary
	var fused vsum.FusedSeler
	if a != nil {
		if ec != nil {
			fused, _ = a.(vsum.FusedSeler)
		}
		if fused == nil {
			wsum = a.Fuse(b)
		}
	}
	for i, p := range atomics {
		ps.su[i] = atomicSel(a, p)
		ps.sv[i] = atomicSel(b, p)
		if fused != nil {
			ps.sw[i] = fused.FuseAtomicSel(b, p)
		} else {
			ps.sw[i] = atomicSel(wsum, p)
		}
	}
	return ps
}

// atomicsEntry is one cached enumeration: the ordered atomics of a
// summary plus their membership set (both immutable once stored).
type atomicsEntry struct {
	list []vsum.Atomic
	set  map[vsum.Atomic]struct{}
}

// atomicsOf returns s's cached enumeration. The cap is fixed per build,
// so it is not part of the key.
func (ec *evalCache) atomicsOf(s vsum.Summary, cap int) *atomicsEntry {
	if v, ok := ec.atomics.Load(s); ok {
		return v.(*atomicsEntry)
	}
	list := s.Atomics(cap)
	set := make(map[vsum.Atomic]struct{}, len(list))
	for _, at := range list {
		set[at] = struct{}{}
	}
	e := &atomicsEntry{list: list, set: set}
	ec.atomics.Store(s, e)
	return e
}

// atomicsFor returns the union of atomic predicates of two summaries
// (either may be nil): a's atomics in order, then b's not already in
// a's. ec, when non-nil, serves the per-summary enumerations — and
// their membership sets — from cache, so no per-pair hash table is
// built. Summary.Atomics returns internally distinct predicates, so
// deduplication against a's set alone yields the same union as the
// uncached path.
func atomicsFor(a, b vsum.Summary, cap int, ec *evalCache) []vsum.Atomic {
	if a == nil && b == nil {
		return []vsum.Atomic{trivialAtomic}
	}
	if ec != nil {
		var la []vsum.Atomic
		var setA map[vsum.Atomic]struct{}
		if a != nil {
			ea := ec.atomicsOf(a, cap)
			la, setA = ea.list, ea.set
		}
		if b == nil {
			return la
		}
		lb := ec.atomicsOf(b, cap).list
		out := make([]vsum.Atomic, len(la), len(la)+len(lb))
		copy(out, la)
		for _, at := range lb {
			if _, dup := setA[at]; !dup {
				out = append(out, at)
			}
		}
		return out
	}
	seen := make(map[vsum.Atomic]struct{})
	var out []vsum.Atomic
	add := func(s vsum.Summary) {
		if s == nil {
			return
		}
		for _, at := range s.Atomics(cap) {
			if _, dup := seen[at]; !dup {
				seen[at] = struct{}{}
				out = append(out, at)
			}
		}
	}
	add(a)
	add(b)
	return out
}

// atomicSel returns σ_p(u) for an atomic predicate against a (possibly
// nil) summary; the trivial predicate has selectivity 1.
func atomicSel(s vsum.Summary, a vsum.Atomic) float64 {
	if s == nil {
		return 1
	}
	return s.AtomicSel(a)
}

// edgeCountsTo returns, for node x, the average child count toward the
// remapped target t: count(x, t) plus any counts toward u/v when t is the
// merge placeholder.
func edgeCountsTo(x *Node, t NodeID, uid, vid, placeholder NodeID) float64 {
	if t == placeholder {
		return x.Children[uid] + x.Children[vid]
	}
	return x.Children[t]
}

// placeholderID marks the would-be merged node in Δ computations.
const placeholderID NodeID = -1

// MergeDelta computes the clustering-error increase Δ(S, merge(S,u,v)) of
// Section 4.1:
//
//	Δ = |u| Σ_p Σ_c (e_S(u,p,c) − e_S′(w,p,c))²
//	  + |v| Σ_p Σ_c (e_S(v,p,c) − e_S′(w,p,c))²
//
// with e(x,p,c) = σ_p(x)·count(x,c), atomic predicates p drawn from the
// two value summaries (or the trivial predicate for structure-only
// nodes), and c ranging over the merged child-target set. Leaf clusters
// use a single virtual unit child so that value differences still
// register (the atomic query u[p] itself). It also returns the structural
// bytes the merge would save.
func (s *Synopsis) MergeDelta(uid, vid NodeID, atomicCap int) (delta float64, structSaved int, err error) {
	return s.mergeDeltaCached(uid, vid, atomicCap, nil)
}

// mergeDeltaCached is MergeDelta with an optional evaluation cache
// (nil behaves exactly like the plain form). With a cache, per-summary
// atomic enumerations are memoized, and summaries implementing
// vsum.FusedSeler answer the merged-summary selectivities without
// materializing the fusion; both are bit-for-bit neutral.
func (s *Synopsis) mergeDeltaCached(uid, vid NodeID, atomicCap int, ec *evalCache) (delta float64, structSaved int, err error) {
	u, v := s.nodes[uid], s.nodes[vid]
	if u == nil || v == nil {
		return 0, 0, fmt.Errorf("core: MergeDelta(%d,%d): node gone", uid, vid)
	}
	if !Compatible(u, v) {
		return 0, 0, fmt.Errorf("core: MergeDelta(%d,%d): incompatible", uid, vid)
	}
	children := mergedChildren(u, v, placeholderID)

	var ps *pairSels
	if ec != nil {
		ps = ec.pairSelsOf(u.VSum, v.VSum, atomicCap)
	} else {
		ps = computePairSels(u.VSum, v.VSum, atomicCap, nil)
	}

	// Sum in sorted target order: float addition is order-sensitive in
	// the last ULPs, and near-tie candidates must rank identically
	// across runs for deterministic builds.
	targets := make([]int, 0, len(children))
	for t := range children {
		targets = append(targets, int(t))
	}
	sort.Ints(targets)
	for i := range ps.atomics {
		su, sv, sw := ps.su[i], ps.sv[i], ps.sw[i]
		if len(children) == 0 {
			// Virtual unit child: the atomic query u[p] itself.
			du := su - sw
			dv := sv - sw
			delta += u.Count*du*du + v.Count*dv*dv
			continue
		}
		for _, ti := range targets {
			t := NodeID(ti)
			cw := children[t]
			cu := edgeCountsTo(u, t, uid, vid, placeholderID)
			cv := edgeCountsTo(v, t, uid, vid, placeholderID)
			du := su*cu - sw*cw
			dv := sv*cv - sw*cw
			delta += u.Count*du*du + v.Count*dv*dv
		}
	}

	return delta, s.mergeSavings(u, v, len(children)), nil
}

// mergeSavings returns the structural bytes a merge of u and v would
// save: one node disappears and the edges into/out of u and v collapse
// into the merged node's edge set (of size wEdges).
func (s *Synopsis) mergeSavings(u, v *Node, wEdges int) int {
	uid, vid := u.ID, v.ID
	before := len(u.Children) + len(v.Children)
	extParents := 0
	distinctExt := 0
	seen := make(map[NodeID]struct{})
	for _, x := range []*Node{u, v} {
		for p := range x.Parents {
			if p == uid || p == vid {
				continue
			}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			distinctExt++
			parent := s.nodes[p]
			if _, ok := parent.Children[uid]; ok {
				extParents++
			}
			if _, ok := parent.Children[vid]; ok {
				extParents++
			}
		}
	}
	after := wEdges + distinctExt
	return NodeBytes + (before+extParents-after)*EdgeBytes
}

// ---- pair-Δ memoization ----
//
// The merge phase evaluates the same candidate pairs over and over: the
// pool is rebuilt from scratch at every level step and every replenish,
// yet a merge changes the Δ of only the pairs touching the merged
// node's neighborhood. The memo table below caches Δ evaluations and
// invalidates them incrementally instead of recomputing the frontier.
//
// Invalidation rule. Δ(u, v) splits into two terms with different
// dependency sets:
//
//   - the clustering-error term depends on u's and v's Count, Children
//     and VSum (the centroid and selectivity sums) — the "centroid
//     state" of the two endpoints;
//   - the structural savings depend additionally on u's and v's Parents
//     and on the parents' Children entries toward u and v.
//
// A merge of (x, y) into w perturbs that state for three disjoint node
// sets: w itself (new node), the parents of w (their Children changed
// from x/y to w — centroid state), and the children of w (only their
// Parents changed — savings state, their centroid state is untouched).
// The builder therefore keeps two version counters per node: ver bumps
// for any Δ-relevant change, cver only for centroid changes (w and the
// parents of w). A memo entry is fully valid while both endpoints' ver
// stamps match; if only the cver stamps match, the cached error term is
// still exact and just the integer savings — no summary work — are
// recomputed. Pairs whose endpoint died are caught by the liveness
// check (a consumed node's versions are never bumped again), and
// infeasibility (incompatible labels/types) is permanent for live
// nodes, so it is remembered without any stamp.

// pairKey identifies an ordered candidate pair. Orientation matters:
// Merge(u, v) and Merge(v, u) accumulate their float sums in different
// orders and may differ in the last ULPs, so (u, v) and (v, u) are
// distinct memo entries — collapsing them would break bit-for-bit
// reproducibility against the unmemoized build.
type pairKey struct{ u, v NodeID }

// memoEntry caches one Δ evaluation with the version stamps of both
// endpoints at evaluation time. feasible is false when the pair cannot
// merge (incompatible nodes).
type memoEntry struct {
	delta        float64
	saved        int
	verU, verV   int // full stamps: entry exact while both match
	cverU, cverV int // centroid stamps: delta exact while both match
	feasible     bool
}

// memoLookup returns the cached candidate for (u, v) if a valid entry
// exists, recomputing just the structural savings when only the
// parent-side state moved. The second return reports whether the
// lookup was conclusive: (nil, true) means the pair is known
// infeasible, (nil, false) means the caller must evaluate it afresh.
func (b *builder) memoLookup(u, v NodeID) (*mergeCand, bool) {
	e, ok := b.memo[pairKey{u, v}]
	if !ok {
		return nil, false
	}
	un, vn := b.s.nodes[u], b.s.nodes[v]
	if un == nil || vn == nil {
		// A dead endpoint can never merge again; its versions are
		// frozen, so the stamp checks alone must not validate the entry.
		b.stats.MemoHits++
		return nil, true
	}
	if !e.feasible {
		// Compatibility is a function of immutable node attributes:
		// once infeasible for live nodes, infeasible forever.
		b.stats.MemoHits++
		return nil, true
	}
	if e.verU != b.ver[u] || e.verV != b.ver[v] {
		if e.cverU != b.cver[u] || e.cverV != b.cver[v] {
			return nil, false
		}
		// Centroid state intact: the error term is still exact, only
		// the structural savings may have moved (an endpoint's parent
		// set changed). Recompute them without touching any summary.
		children := mergedChildren(un, vn, placeholderID)
		saved := b.s.mergeSavings(un, vn, len(children))
		if saved < 1 {
			saved = 1
		}
		e.saved = saved
		e.verU, e.verV = b.ver[u], b.ver[v]
		b.memo[pairKey{u, v}] = e
		b.stats.MemoPartialHits++
	} else {
		b.stats.MemoHits++
	}
	return &mergeCand{
		u: u, v: v, delta: e.delta, saved: e.saved,
		marginal: e.delta / float64(e.saved),
		mass:     un.Count + vn.Count,
		verU:     e.verU, verV: e.verV,
	}, true
}

// memoStore records the outcome of evaluating (u, v) under the current
// version stamps. c == nil records infeasibility.
func (b *builder) memoStore(u, v NodeID, c *mergeCand) {
	e := memoEntry{
		verU: b.ver[u], verV: b.ver[v],
		cverU: b.cver[u], cverV: b.cver[v],
	}
	if c != nil {
		e.feasible = true
		e.delta = c.delta
		e.saved = c.saved
	}
	b.memo[pairKey{u, v}] = e
}

// memoSweep drops entries whose endpoints died, bounding the table to
// pairs that can still come up. It only bothers once the table clearly
// outgrew the live pair population.
func (b *builder) memoSweep() {
	if b.memo == nil || len(b.memo) <= 8*b.opts.PairWindow*len(b.s.nodes) {
		return
	}
	for k := range b.memo {
		if b.s.nodes[k.u] == nil || b.s.nodes[k.v] == nil {
			delete(b.memo, k)
		}
	}
}

// CompressDelta computes the clustering-error increase of replacing
// vsumm(u) with the compressed summary cs: the first summand of the Δ
// formula with w = u (the structure is unchanged, only σ_p moves).
func (s *Synopsis) CompressDelta(uid NodeID, cs vsum.Summary, atomicCap int) (float64, error) {
	u := s.nodes[uid]
	if u == nil {
		return 0, fmt.Errorf("core: CompressDelta(%d): node gone", uid)
	}
	if u.VSum == nil {
		return 0, fmt.Errorf("core: CompressDelta(%d): no value summary", uid)
	}
	atomics := u.VSum.Atomics(atomicCap)
	// Sorted edge order for run-to-run reproducible float sums.
	avgs := make([]float64, 0, len(u.Children))
	targets := make([]int, 0, len(u.Children))
	for t := range u.Children {
		targets = append(targets, int(t))
	}
	sort.Ints(targets)
	for _, t := range targets {
		avgs = append(avgs, u.Children[NodeID(t)])
	}
	delta := 0.0
	for _, p := range atomics {
		d := u.VSum.AtomicSel(p) - cs.AtomicSel(p)
		if len(avgs) == 0 {
			delta += u.Count * d * d
			continue
		}
		for _, c := range avgs {
			e := d * c
			delta += u.Count * e * e
		}
	}
	return delta, nil
}
