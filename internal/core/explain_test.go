package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"xcluster/internal/query"
)

func TestExplainSumsToSelectivity(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(ref)
	for _, qs := range []string{
		"//paper",
		"//year",
		"//paper[year>2000]/title",
		"//author[./paper][./book]",
		"/dblp//title[contains(T)]",
	} {
		q := query.MustParse(qs)
		total := est.Selectivity(q)
		ems := est.Explain(q, 0)
		sum := 0.0
		for _, em := range ems {
			sum += em.Tuples
		}
		if math.Abs(sum-total) > 1e-9*math.Max(1, total) {
			t.Errorf("%s: embeddings sum to %g, Selectivity is %g", qs, sum, total)
		}
	}
}

func TestExplainOrderingAndLimit(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	est := NewEstimator(ref)
	q := query.MustParse("//year") // three year clusters → 3 embeddings
	ems := est.Explain(q, 0)
	if len(ems) < 2 {
		t.Fatalf("embeddings = %d, want several", len(ems))
	}
	for i := 1; i < len(ems); i++ {
		if ems[i].Tuples > ems[i-1].Tuples {
			t.Fatal("embeddings not sorted by contribution")
		}
	}
	capped := est.Explain(q, 1)
	if len(capped) != 1 || capped[0].Tuples != ems[0].Tuples {
		t.Fatalf("limit broken: %+v", capped)
	}
}

func TestExplainRandomizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTree(rng, 150)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := XClusterBuild(ref, BuildOptions{StructBudget: ref.StructBytes() / 3, ValueBudget: 1 << 20, Hm: 200, Hl: 100})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(s)
	for i := 0; i < 15; i++ {
		q := randomStructQuery(rng, tr)
		total := est.Selectivity(q)
		sum := 0.0
		for _, em := range est.Explain(q, 0) {
			sum += em.Tuples
		}
		if math.Abs(sum-total) > 1e-6*math.Max(1, total) {
			t.Fatalf("%s: embeddings sum %g != selectivity %g", q, sum, total)
		}
	}
}

func TestFormatEmbedding(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	est := NewEstimator(ref)
	ems := est.Explain(query.MustParse("//paper/title"), 1)
	if len(ems) == 0 {
		t.Fatal("no embeddings")
	}
	out := ref.FormatEmbedding(ems[0])
	if !strings.Contains(out, "title") || !strings.Contains(out, "->") {
		t.Fatalf("FormatEmbedding = %q", out)
	}
}
