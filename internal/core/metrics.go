package core

// MetricSink is the small observability hook core components emit into:
// counters via Add and latency/size observations via Observe. labels is
// a rendered Prometheus label list without braces (e.g. `stage="compile"`,
// possibly empty). internal/obs.Registry satisfies it structurally, so
// core carries no observability dependency; a nil sink (the default)
// disables emission with no overhead on the untraced paths.
//
// Implementations must be safe for concurrent use.
type MetricSink interface {
	Add(name, labels string, delta float64)
	Observe(name, labels string, value float64)
}

// Metric names core emits. The serving layer registers help text and
// reuses the same names so one registry aggregates both.
const (
	// MetricPipelineStageSeconds is a histogram of per-stage wall time
	// of the estimation pipeline, labeled stage="parse|canonicalize|
	// result_cache|plan_cache|compile|execute".
	MetricPipelineStageSeconds = "xcluster_pipeline_stage_seconds"
	// MetricCacheLookupsTotal counts estimate-pipeline cache lookups,
	// labeled cache="result|plan" and outcome="hit|miss".
	MetricCacheLookupsTotal = "xcluster_cache_lookups_total"
	// MetricBuildPhaseSeconds is a histogram of synopsis-build phase
	// wall time, labeled phase="merge|value".
	MetricBuildPhaseSeconds = "xcluster_build_phase_seconds"
	// MetricBuildPairsTotal counts candidate-pair Δ lookups during
	// builds, labeled outcome="computed|memo_hit".
	MetricBuildPairsTotal = "xcluster_build_pairs_total"
	// MetricBuildMergesTotal counts node merges applied during builds.
	MetricBuildMergesTotal = "xcluster_build_merges_total"
)

// SetMetricSink routes the estimator's pipeline stage timings and cache
// outcomes to the sink (nil disables). Like the other estimator
// configuration it must be set before the estimator is shared across
// goroutines. With a sink set, SelectivityContext records per-stage
// timings on every call.
func (e *Estimator) SetMetricSink(sink MetricSink) { e.sink = sink }
