package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// codecBytes encodes s with the wall-clock fingerprint fields zeroed,
// so bit-for-bit comparisons ignore when a build ran.
func codecBytes(t *testing.T, s *Synopsis) []byte {
	t.Helper()
	fp := s.Fingerprint()
	fp.BuiltAtUnix, fp.BuildNanos = 0, 0
	s.SetFingerprint(fp)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildWorkersAndMemoIdentical is the differential test of the
// tentpole invariant: worker count and the pair-Δ memo table are pure
// performance knobs — every configuration must produce the same bytes.
func TestBuildWorkersAndMemoIdentical(t *testing.T) {
	ref, _ := buildFixture(t, 31, 300)
	base := BuildOptions{
		StructBudget: ref.StructBytes() / 4,
		ValueBudget:  ref.ValueBytes() / 2,
		Hm:           400, Hl: 200,
	}
	variants := []struct {
		name    string
		workers int
		noMemo  bool
	}{
		{"serial", 1, true},
		{"parallel", 4, true},
		{"memo", 1, false},
		{"parallel+memo", 4, false},
	}
	var want []byte
	var wantStats BuildStats
	for _, v := range variants {
		opts := base
		opts.Workers = v.workers
		opts.NoDeltaMemo = v.noMemo
		var stats BuildStats
		opts.Stats = &stats
		s, err := XClusterBuild(ref, opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := codecBytes(t, s)
		if want == nil {
			want, wantStats = got, stats
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: synopsis bytes differ from serial build", v.name)
		}
		if stats.Merges != wantStats.Merges {
			t.Fatalf("%s: %d merges, serial did %d", v.name, stats.Merges, wantStats.Merges)
		}
		if !v.noMemo && stats.MemoHits == 0 {
			t.Fatalf("%s: memo enabled but never hit", v.name)
		}
		if !v.noMemo && stats.PairsEvaluated >= wantStats.PairsEvaluated {
			t.Fatalf("%s: memo did not reduce evaluations (%d >= %d)",
				v.name, stats.PairsEvaluated, wantStats.PairsEvaluated)
		}
	}
	if wantStats.PairsEvaluated == 0 || wantStats.Merges == 0 {
		t.Fatalf("degenerate fixture: stats %+v", wantStats)
	}
}

// TestBuildWorkersValidation: negative worker counts are rejected, and
// the fingerprint carries no trace of the worker count (it must not,
// since it cannot affect the output).
func TestBuildWorkersValidation(t *testing.T) {
	ref, _ := buildFixture(t, 32, 100)
	if _, err := XClusterBuild(ref, BuildOptions{StructBudget: 1, ValueBudget: 1, Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := XClusterSweep(ref, []int{ref.StructBytes() / 2}, ref.ValueBytes(), BuildOptions{Workers: -3}); err == nil {
		t.Fatal("negative Workers accepted by sweep")
	}
	a, err := XClusterBuild(ref, BuildOptions{StructBudget: ref.StructBytes() / 2, ValueBudget: ref.ValueBytes(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := XClusterBuild(ref, BuildOptions{StructBudget: ref.StructBytes() / 2, ValueBudget: ref.ValueBytes(), Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Fingerprint(), b.Fingerprint()
	fa.BuiltAtUnix, fa.BuildNanos = 0, 0
	fb.BuiltAtUnix, fb.BuildNanos = 0, 0
	if fa != fb {
		t.Fatalf("worker count leaked into the fingerprint: %+v vs %+v", fa, fb)
	}
}

// TestBuildProgress: the Progress callback fires with monotone merge
// counts and sees both phases.
func TestBuildProgress(t *testing.T) {
	ref, _ := buildFixture(t, 33, 250)
	var snaps []BuildProgress
	opts := BuildOptions{
		StructBudget: ref.StructBytes() / 4,
		ValueBudget:  ref.ValueBytes() / 4,
		Progress:     func(p BuildProgress) { snaps = append(snaps, p) },
	}
	if _, err := XClusterBuild(ref, opts); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress delivered")
	}
	sawMerge, sawValue := false, false
	lastMerges := int64(-1)
	for _, p := range snaps {
		switch p.Phase {
		case "merge":
			sawMerge = true
		case "value":
			sawValue = true
		default:
			t.Fatalf("unknown phase %q", p.Phase)
		}
		if p.Merges < lastMerges {
			t.Fatalf("merge count went backwards: %d after %d", p.Merges, lastMerges)
		}
		lastMerges = p.Merges
		if p.StructBudget != opts.StructBudget || p.ValueBudget != opts.ValueBudget {
			t.Fatalf("budgets not echoed: %+v", p)
		}
	}
	if !sawMerge || !sawValue {
		t.Fatalf("phases seen: merge=%v value=%v", sawMerge, sawValue)
	}
	final := snaps[len(snaps)-1]
	if final.ValueBytes > opts.ValueBudget {
		t.Fatalf("final value bytes %d over budget %d", final.ValueBytes, opts.ValueBudget)
	}
}

// TestMemoNeverServesStaleDelta drives random merge sequences through
// the builder's own bookkeeping and, after every merge, checks that the
// memoized Δ of random live pairs matches a fresh recomputation
// bit-for-bit. This is the property the version-stamp invalidation rule
// must guarantee: no merge may leave a reachable stale entry behind.
func TestMemoNeverServesStaleDelta(t *testing.T) {
	for seed := int64(40); seed < 44; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ref, _ := buildFixture(t, seed, 150)
		opts := BuildOptions{StructBudget: 1, ValueBudget: 1}.withDefaults()
		b := newBuilder(nil, ref.Clone(), opts)
		if b.memo == nil {
			t.Fatal("memo not enabled by default")
		}
		b.initGroups()

		// Sorted group keys for deterministic random pair draws.
		groupKeys := func() []groupKey {
			keys := make([]groupKey, 0, len(b.groups))
			for k, ids := range b.groups {
				if len(ids) >= 2 {
					keys = append(keys, k)
				}
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].label != keys[j].label {
					return keys[i].label < keys[j].label
				}
				if keys[i].vt != keys[j].vt {
					return keys[i].vt < keys[j].vt
				}
				return !keys[i].hasV && keys[j].hasV
			})
			return keys
		}
		randPair := func(keys []groupKey) (NodeID, NodeID) {
			ids := b.groups[keys[rng.Intn(len(keys))]]
			i := rng.Intn(len(ids))
			j := rng.Intn(len(ids) - 1)
			if j >= i {
				j++
			}
			return ids[i], ids[j]
		}

		for step := 0; step < 60; step++ {
			keys := groupKeys()
			if len(keys) == 0 {
				break
			}
			// Probe a handful of pairs: first via the memo (warming it or
			// hitting it), then against a fresh recomputation.
			for probe := 0; probe < 8; probe++ {
				u, v := randPair(keys)
				got := b.newCand(u, v)
				fresh := b.computeCand(u, v)
				switch {
				case got == nil && fresh == nil:
				case got == nil || fresh == nil:
					t.Fatalf("seed %d step %d: memo feasibility diverges for (%d,%d)", seed, step, u, v)
				case got.delta != fresh.delta || got.saved != fresh.saved || got.marginal != fresh.marginal:
					t.Fatalf("seed %d step %d: stale Δ for (%d,%d): memo (%g,%d) fresh (%g,%d)",
						seed, step, u, v, got.delta, got.saved, fresh.delta, fresh.saved)
				}
			}
			// Apply a random merge through the builder's bookkeeping.
			u, v := randPair(keys)
			if _, err := b.applyMerge(u, v); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
		if b.stats.MemoHits == 0 {
			t.Fatalf("seed %d: property test never exercised a memo hit", seed)
		}
	}
}
