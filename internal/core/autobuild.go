package core

import (
	"context"
	"fmt"
	"math"
)

// AutoAllocate is AutoAllocateContext with a background context, kept
// for callers without a cancellation need. It returns the best
// synopsis, its structural budget, and the score it achieved.
func AutoAllocate(ref *Synopsis, totalBudget int, score func(*Synopsis) float64, opts BuildOptions) (*Synopsis, int, float64, error) {
	s, plan, sc, err := AutoAllocateContext(context.Background(), ref, totalBudget, score, opts)
	if err != nil {
		return nil, 0, 0, err
	}
	return s, plan.StructBudget(), sc, nil
}

// AutoAllocateContext implements the budget-split search the paper
// defers to future work: "it is possible to invoke XCLUSTERBUILD with a
// unified total space budget B and let the construction process determine
// automatically the ratio of structural- to value-storage budget. One
// plausible approach ... would be to perform a binary search in the range
// of possible Bstr/Bval ratios, based on the observed estimation error on
// a sample workload."
//
// score evaluates a candidate synopsis on the sample workload (lower is
// better, e.g. average relative error). The search probes a geometric
// grid of ratios and then refines around the best with two bisection
// rounds — the error curve is noisy, so a pure binary search on the
// gradient would be fragile. Candidate builds run under ctx, so a
// cancelled adaptive rebuild aborts mid-search with ctx.Err() instead
// of finishing up to a dozen builds. It returns the best synopsis, the
// winning BudgetPlan (provenance "auto"), and the score it achieved.
func AutoAllocateContext(ctx context.Context, ref *Synopsis, totalBudget int, score func(*Synopsis) float64, opts BuildOptions) (*Synopsis, BudgetPlan, float64, error) {
	if totalBudget <= 0 {
		return nil, BudgetPlan{}, 0, fmt.Errorf("core: AutoAllocate: non-positive budget %d", totalBudget)
	}
	type result struct {
		frac  float64
		bstr  int
		s     *Synopsis
		score float64
	}
	evalFrac := func(frac float64) (result, error) {
		bstr := int(frac * float64(totalBudget))
		o := opts
		plan := PlanFromBudgets(bstr, totalBudget-bstr)
		plan.Provenance = ProvenanceAuto
		o.Plan = &plan
		o.StructBudget, o.ValueBudget = 0, 0
		s, err := XClusterBuildContext(ctx, ref, o)
		if err != nil {
			return result{}, err
		}
		return result{frac: frac, bstr: bstr, s: s, score: score(s)}, nil
	}

	best := result{score: math.Inf(1)}
	probes := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.7}
	evaluated := make(map[int]bool)
	eval := func(frac float64) error {
		bstr := int(frac * float64(totalBudget))
		if evaluated[bstr] {
			return nil
		}
		evaluated[bstr] = true
		r, err := evalFrac(frac)
		if err != nil {
			return err
		}
		if r.score < best.score {
			best = r
		}
		return nil
	}
	for _, f := range probes {
		if err := eval(f); err != nil {
			return nil, BudgetPlan{}, 0, err
		}
	}
	// Two refinement rounds: bisect toward the best ratio's neighbors.
	step := 0.075
	for round := 0; round < 2; round++ {
		center := best.frac
		for _, f := range []float64{center - step, center + step} {
			if f <= 0.01 || f >= 0.95 {
				continue
			}
			if err := eval(f); err != nil {
				return nil, BudgetPlan{}, 0, err
			}
		}
		step /= 2
	}
	if best.s == nil {
		return nil, BudgetPlan{}, 0, fmt.Errorf("core: AutoAllocate: no feasible split")
	}
	return best.s, best.s.Fingerprint().Plan, best.score, nil
}
