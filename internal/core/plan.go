package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Plan is a twig query compiled against one synopsis: the executable
// output of the canonicalize → compile → execute pipeline. Compilation
// (compile.go) resolves every step label, frontier and predicate
// selectivity once; what remains at execution time is pure float
// arithmetic over a flat subproblem array — no maps, no label
// comparisons, no dictionary lookups, and no allocation on the steady
// state (the scratch buffer is pooled).
//
// A Plan is bound to the synopsis and the estimator configuration
// (UninformedSel) it was compiled under, and is immutable and safe for
// concurrent execution.
type Plan struct {
	// canonical is the query's canonical string: the identity under
	// which the plan is cached.
	canonical string
	// subs is the evaluation program: one entry per reachable
	// (query variable, origin cluster) subproblem of the interpreted
	// walk, ordered so every term's kids refer to lower indices
	// (children before parents). Evaluating subs in index order fills
	// a value table bottom-up.
	subs []planSub
	// roots holds the subproblem index of each root variable, in query
	// order; the final selectivity is the product of their values.
	roots []int32
	// groupStart[i] is the subs index where root i's subproblems begin:
	// subs[groupStart[i]:groupStart[i+1]] is everything root i needs
	// that earlier roots did not already compute. executeContext checks
	// cancellation at these boundaries, mirroring the interpreter's
	// per-root ctx checks.
	groupStart []int32
	// loweredSteps is the number of distinct (axis, label) steps
	// resolved against the synopsis during compilation.
	loweredSteps int
	// gen is the build generation of the synopsis the plan was compiled
	// against; traces carry it so a swap can prove no plan outlived its
	// generation.
	gen uint64
	// vals pools the execution scratch buffer (len(subs) floats).
	vals sync.Pool
}

// planSub is one (query variable, origin cluster) subproblem: the
// expected number of binding tuples of the variable's subtree per
// element of the origin cluster, as a sum of per-frontier-node terms.
type planSub struct {
	// label renders the variable's edge path and predicate (explain
	// only; execution never reads it).
	label string
	// from is the origin cluster (-1 for the virtual document node).
	from NodeID
	// terms has one entry per frontier cluster with nonzero predicate
	// selectivity, in id-sorted frontier order — the same accumulation
	// order as the interpreter, so sums are bit-identical.
	terms []planTerm
}

// planTerm is one frontier cluster's contribution to a subproblem.
type planTerm struct {
	// node is the frontier synopsis cluster (explain only).
	node NodeID
	// w is reach(from, steps)[node] × σ_pred(node), both resolved at
	// compile time.
	w float64
	// kids are the subproblem indices of the variable's children
	// originating at node, in child order.
	kids []int32
}

// Query returns the canonical string of the compiled query.
func (p *Plan) Query() string { return p.canonical }

// Generation returns the synopsis build generation the plan was
// compiled against.
func (p *Plan) Generation() uint64 { return p.gen }

// NumSubproblems returns the number of compiled subproblems.
func (p *Plan) NumSubproblems() int { return len(p.subs) }

// execute evaluates the plan: one pass over the subproblem array,
// children before parents, then the product over the root variables.
// The arithmetic replays the interpreted walk operation for operation,
// so results are bit-identical to it.
func (p *Plan) execute() float64 {
	bufp := p.vals.Get().(*[]float64)
	vals := *bufp
	for i := range p.subs {
		vals[i] = evalSub(&p.subs[i], vals)
	}
	total := 1.0
	for _, r := range p.roots {
		total *= vals[r]
	}
	p.vals.Put(bufp)
	return total
}

// executeContext is execute with cancellation, checked before each root
// variable's subproblem group (the granularity of the interpreter's
// SelectivityContext).
func (p *Plan) executeContext(ctx context.Context) (float64, error) {
	bufp := p.vals.Get().(*[]float64)
	defer p.vals.Put(bufp)
	vals := *bufp
	total := 1.0
	for gi, r := range p.roots {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		end := len(p.subs)
		if gi+1 < len(p.groupStart) {
			end = int(p.groupStart[gi+1])
		}
		for i := int(p.groupStart[gi]); i < end; i++ {
			vals[i] = evalSub(&p.subs[i], vals)
		}
		total *= vals[r]
	}
	return total, nil
}

// evalSub evaluates one subproblem against the already-filled child
// values: Σ_terms w × Π_kids vals[kid], with the interpreter's early
// exit on a zero product.
func evalSub(s *planSub, vals []float64) float64 {
	total := 0.0
	for ti := range s.terms {
		t := &s.terms[ti]
		prod := t.w
		for _, k := range t.kids {
			prod *= vals[k]
			if prod == 0 {
				break
			}
		}
		total += prod
	}
	return total
}

// Summary returns the plan's one-line header: canonical query,
// subproblem and term counts, and lowered steps. It is the plan
// rendering the slow-query log captures.
func (p *Plan) Summary() string {
	terms := 0
	for i := range p.subs {
		terms += len(p.subs[i].terms)
	}
	return fmt.Sprintf("plan %s: %d subproblems, %d terms, %d lowered steps",
		p.canonical, len(p.subs), terms, p.loweredSteps)
}

// describe renders the compiled plan against its synopsis: one line per
// subproblem with the resolved frontier clusters, bound weights, and
// child subproblem references.
func (p *Plan) describe(s *Synopsis) string {
	var sb strings.Builder
	sb.WriteString(p.Summary())
	sb.WriteByte('\n')
	for i := range p.subs {
		sub := &p.subs[i]
		origin := "document"
		if sub.from != -1 {
			origin = formatCluster(s, sub.from)
		}
		fmt.Fprintf(&sb, "  s%d: %s from %s", i, sub.label, origin)
		if len(sub.terms) == 0 {
			sb.WriteString(" = 0 (no reachable cluster passes)\n")
			continue
		}
		sb.WriteString(" = Σ {")
		for ti, t := range sub.terms {
			if ti > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, " %s×%g", formatCluster(s, t.node), t.w)
			for _, k := range t.kids {
				fmt.Fprintf(&sb, "·s%d", k)
			}
		}
		sb.WriteString(" }\n")
	}
	return sb.String()
}

// formatCluster renders a synopsis cluster reference for plan output.
func formatCluster(s *Synopsis, id NodeID) string {
	if n := s.nodes[id]; n != nil {
		return fmt.Sprintf("#%d(%s)", id, n.Label)
	}
	return fmt.Sprintf("#%d", id)
}

// sortedSubIDs is a debugging helper: the distinct synopsis clusters
// the plan touches, id-sorted.
func (p *Plan) sortedSubIDs() []NodeID {
	seen := make(map[NodeID]bool)
	for i := range p.subs {
		for _, t := range p.subs[i].terms {
			seen[t.node] = true
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
