package core

import (
	"context"
	"time"

	"xcluster/internal/query"
)

// Pipeline stage names of one estimate, in execution order. StageParse
// is emitted by the serving layer (query text → AST happens above
// core); the remaining stages are recorded by SelectivityTraced.
const (
	StageParse        = "parse"
	StageCanonicalize = "canonicalize"
	StageResultCache  = "result_cache"
	StagePlanCache    = "plan_cache"
	StageCompile      = "compile"
	StageExecute      = "execute"
)

// Span is one timed pipeline stage of a single estimate. Offset is the
// stage's start relative to the start of the estimate, so a span tree
// built from the trace (the request-correlation layer in internal/obs)
// can place stages on an absolute timeline.
type Span struct {
	Stage    string
	Offset   time.Duration
	Duration time.Duration
}

// EstimateTrace records where one estimate's wall time went: one span
// per pipeline stage actually run (a result-cache hit has no compile or
// execute span; a disabled cache has no lookup span), in execution
// order.
type EstimateTrace struct {
	// Canonical is the query's canonical string — its identity in both
	// caches and the slow-query log.
	Canonical string
	// CanonicalHash is the 64-bit FNV-1a hash of Canonical, computed
	// once per estimate in the tracing layer so downstream consumers
	// (the workload profiler's shape lookup, slow-log shape tagging)
	// never re-hash the canonical string on the hot path.
	CanonicalHash uint64
	// Spans are the stage timings in execution order.
	Spans []Span
	// Total is the wall time of the whole call; it is at least the sum
	// of the spans (inter-stage bookkeeping is not attributed to any
	// stage).
	Total time.Duration
	// ResultCacheHit and PlanCacheHit report the cache outcomes (false
	// when the corresponding lookup never ran).
	ResultCacheHit bool
	PlanCacheHit   bool
	// Subproblems is the executed plan's size (0 on a result-cache hit:
	// no plan was consulted).
	Subproblems int
	// Estimate is the selectivity the pipeline produced (0 on error).
	// Carrying it in the trace makes the trace a self-contained record
	// of one estimate, so accuracy monitoring can pair it with ground
	// truth later without re-running the pipeline.
	Estimate float64
	// Generation is the build generation of the synopsis the estimate
	// ran against; PlanGeneration is the generation of the plan it
	// executed. The two are always equal — plans never cross a hot swap
	// (each swap installs a fresh estimator and invalidates the old
	// caches) — and the lifecycle tests assert exactly that.
	Generation     uint64
	PlanGeneration uint64
}

// CanonicalHash is the 64-bit FNV-1a hash of a canonical query string,
// the cheap per-request identity SelectivityTraced stamps on every
// trace (EstimateTrace.CanonicalHash).
func CanonicalHash(canonical string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(canonical); i++ {
		h ^= uint64(canonical[i])
		h *= prime64
	}
	return h
}

// add appends one stage timing at the given offset from estimate start.
func (t *EstimateTrace) add(stage string, off, d time.Duration) {
	t.Spans = append(t.Spans, Span{Stage: stage, Offset: off, Duration: d})
}

// SpanSum returns the summed stage durations (at most Total).
func (t *EstimateTrace) SpanSum() time.Duration {
	var s time.Duration
	for _, sp := range t.Spans {
		s += sp.Duration
	}
	return s
}

// SelectivityTraced is SelectivityContext with per-stage tracing: it
// runs the same canonicalize → result-cache → plan-cache → compile →
// execute pipeline and returns, alongside the estimate, a trace of
// where the time went. The trace is also returned on error, covering
// the stages that ran. When a metric sink is configured the trace is
// additionally emitted into it.
func (e *Estimator) SelectivityTraced(ctx context.Context, q *query.Query) (float64, *EstimateTrace, error) {
	tr := &EstimateTrace{Spans: make([]Span, 0, 5)}
	tr.Generation = e.s.fp.Generation
	tr.PlanGeneration = tr.Generation // refined below when a plan runs
	t0 := time.Now()
	canonical := q.String()
	tr.Canonical = canonical
	tr.CanonicalHash = CanonicalHash(canonical)
	key := e.saltKey(canonical)
	tr.add(StageCanonicalize, 0, time.Since(t0))

	if e.cache != nil {
		ts := time.Now()
		v, ok := e.cache.get(key)
		tr.add(StageResultCache, ts.Sub(t0), time.Since(ts))
		if ok {
			tr.ResultCacheHit = true
			tr.Estimate = v
			tr.Total = time.Since(t0)
			e.emit(tr)
			return v, tr, nil
		}
	}

	var plan *Plan
	if e.plans != nil {
		ts := time.Now()
		p, ok := e.plans.get(key)
		tr.add(StagePlanCache, ts.Sub(t0), time.Since(ts))
		if ok {
			plan = p
			tr.PlanCacheHit = true
		}
	}
	if plan == nil {
		ts := time.Now()
		p, err := e.compile(q)
		tr.add(StageCompile, ts.Sub(t0), time.Since(ts))
		if err != nil {
			tr.Total = time.Since(t0)
			e.emit(tr)
			return 0, tr, err
		}
		if e.plans != nil {
			e.plans.put(key, p)
		}
		plan = p
	}
	tr.Subproblems = plan.NumSubproblems()
	tr.PlanGeneration = plan.gen

	ts := time.Now()
	total, err := plan.executeContext(ctx)
	tr.add(StageExecute, ts.Sub(t0), time.Since(ts))
	if err != nil {
		tr.Total = time.Since(t0)
		e.emit(tr)
		return 0, tr, err
	}
	if e.cache != nil {
		e.cache.put(key, total)
	}
	tr.Estimate = total
	tr.Total = time.Since(t0)
	e.emit(tr)
	return total, tr, nil
}

// emit forwards one trace's stage timings and cache outcomes to the
// configured sink, if any.
func (e *Estimator) emit(tr *EstimateTrace) {
	if e.sink == nil {
		return
	}
	resultLooked, planLooked := false, false
	for _, sp := range tr.Spans {
		e.sink.Observe(MetricPipelineStageSeconds, `stage="`+sp.Stage+`"`, sp.Duration.Seconds())
		switch sp.Stage {
		case StageResultCache:
			resultLooked = true
		case StagePlanCache:
			planLooked = true
		}
	}
	if resultLooked {
		e.sink.Add(MetricCacheLookupsTotal, `cache="result",outcome="`+hitOutcome(tr.ResultCacheHit)+`"`, 1)
	}
	if planLooked {
		e.sink.Add(MetricCacheLookupsTotal, `cache="plan",outcome="`+hitOutcome(tr.PlanCacheHit)+`"`, 1)
	}
}

// hitOutcome renders a cache outcome label value.
func hitOutcome(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}
