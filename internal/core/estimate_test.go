package core

import (
	"math"
	"testing"

	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

func TestEstimateWildcardSteps(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(ref)
	ev := query.NewEvaluator(tr)
	for _, qs := range []string{
		"//*",
		"/dblp/*",
		"//author/*",
		"//*/year",
		"//author/*/title",
		"//*[year>2000]",
	} {
		q := query.MustParse(qs)
		got, want := est.Selectivity(q), ev.Selectivity(q)
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("s(%s) = %g, want %g", qs, got, want)
		}
	}
}

func TestEstimateFTSim(t *testing.T) {
	tr := figure1(t)
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(ref)
	ev := query.NewEvaluator(tr)
	for _, qs := range []string{
		"//keywords[ftsim(1,xml,quantum)]",
		"//paper[abstract ftsim(2,xml,synopsis)]",
		"//foreword[ftsim(1,database,nothere)]",
	} {
		q := query.MustParse(qs)
		got, want := est.Selectivity(q), ev.Selectivity(q)
		// Reference clusters are tight, so these single-cluster ftsim
		// estimates are exact up to term-independence (which holds
		// exactly for single-element clusters and approximately here).
		if math.Abs(got-want) > 0.6*math.Max(1, want) {
			t.Errorf("s(%s) = %g, want %g", qs, got, want)
		}
	}
	// ftsim with only unknown terms → 0.
	if got := est.Selectivity(query.MustParse("//keywords[ftsim(1,zzz,yyy)]")); got != 0 {
		t.Errorf("unknown-term ftsim = %g", got)
	}
}

func TestEstimateMultiStepDescendantEdges(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	est := NewEstimator(ref)
	ev := query.NewEvaluator(tr)
	for _, qs := range []string{
		"//author//year",
		"//author//title[contains(T)]",
		"/dblp//paper//*",
	} {
		q := query.MustParse(qs)
		got, want := est.Selectivity(q), ev.Selectivity(q)
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("s(%s) = %g, want %g", qs, got, want)
		}
	}
}

func TestEstimateZeroFrontier(t *testing.T) {
	tr := figure1(t)
	ref, _ := BuildReference(tr, ReferenceOptions{})
	est := NewEstimator(ref)
	for _, qs := range []string{
		"//nonexistent",
		"//paper/nonexistent",
		"//paper[nonexistent]",
		"/wrongroot",
	} {
		if got := est.Selectivity(query.MustParse(qs)); got != 0 {
			t.Errorf("s(%s) = %g, want 0", qs, got)
		}
	}
}

func TestTypeRespectingClusters(t *testing.T) {
	// The same label with different value types must land in different
	// clusters (type-respecting partitioning), and predicates of the
	// wrong kind must estimate 0 against each.
	b := xmltree.NewBuilder(nil)
	b.Open("root")
	b.Open("item")
	b.Numeric("code", 42)
	b.Close()
	b.Open("item")
	b.String("code", "ABC-42")
	b.Close()
	b.Close()
	tr := b.Tree()
	ref, err := BuildReference(tr, ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []xmltree.ValueType
	for _, n := range ref.Nodes() {
		if n.Label == "code" {
			kinds = append(kinds, n.VType)
		}
	}
	if len(kinds) != 2 || kinds[0] == kinds[1] {
		t.Fatalf("code clusters = %v, want numeric + string", kinds)
	}
	est := NewEstimator(ref)
	ev := query.NewEvaluator(tr)
	for _, qs := range []string{
		"//code[range(42,42)]",
		"//code[contains(ABC)]",
		"//item[code>40]",
	} {
		q := query.MustParse(qs)
		got, want := est.Selectivity(q), ev.Selectivity(q)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("s(%s) = %g, want %g", qs, got, want)
		}
	}
}

func TestEstimatorUninformedSel(t *testing.T) {
	tr := figure1(t)
	// Summarize no paths: every value cluster is uninformed.
	ref, err := BuildReference(tr, ReferenceOptions{ValuePaths: []string{}})
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("//paper[year>2000]")
	est := NewEstimator(ref)
	if got := est.Selectivity(q); got != 0 {
		t.Fatalf("default uninformed sel = %g, want 0", got)
	}
	est.UninformedSel = 1
	if got := est.Selectivity(q); got != 2 { // all papers pass
		t.Fatalf("optimistic uninformed sel = %g, want 2", got)
	}
}
