package core

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"xcluster/internal/query"
)

// Estimator approximates twig-query selectivities over an XCluster
// synopsis using the paper's Section 5 framework: it enumerates query
// embeddings (mappings of query variables to synopsis nodes satisfying
// the structural and value constraints) and combines edge counts with
// predicate selectivities under the generalized Path-Value Independence
// assumption — the selectivity of a path u[p]/c is |u|·σ_p(u)·count(u,c).
//
// Estimation is a three-stage pipeline: canonicalize (the query's
// canonical string is the identity under which results and plans are
// cached), compile (the query is lowered onto the synopsis once — see
// compile.go), and execute (the flat compiled plan is evaluated — see
// plan.go). Selectivity runs all three stages behind two LRU caches: a
// result cache keyed by canonical query, and a plan cache that makes
// repeated shapes compile-once/execute-many. Prepare exposes the
// compiled plan directly for callers that hold a query shape and
// execute it repeatedly.
//
// An Estimator is safe for concurrent use by multiple goroutines: the
// synopsis is immutable after Build, the descendant-closure vectors are
// precomputed at construction, per-call state is pooled, and both
// caches are internally synchronized. The one exception is
// configuration (UninformedSel, SetCacheCapacity,
// SetPlanCacheCapacity), which must happen before the estimator is
// shared: compiled plans bind UninformedSel at compile time.
type Estimator struct {
	s *Synopsis
	// UninformedSel is the selectivity assumed for a value predicate on
	// a type-matching cluster that carries no value summary (a value
	// path not configured for summarization). The default 0 keeps
	// negative queries at the near-zero estimates reported in the paper;
	// set 1 for an optimistic (superset) estimate instead. Set it before
	// sharing the estimator across goroutines.
	UninformedSel float64
	// kids is the per-node child adjacency as id-sorted slices: the
	// deterministic, cache-friendly iteration order that makes estimates
	// reproducible bit-for-bit across runs and across goroutines
	// (floating-point accumulation order is fixed). Immutable.
	kids map[NodeID][]weight
	// desc holds, per synopsis node, the expected number of
	// proper-descendant elements per cluster, per element of the node,
	// id-sorted. Precomputed for every node at construction; immutable.
	desc map[NodeID][]weight
	// memos pools the per-call memo tables of the interpreted reference
	// walk (interpretedSelectivity), kept as the differential baseline
	// the compiled plans are tested against.
	memos sync.Pool
	// cache memoizes full query results by canonical query string; nil
	// when disabled.
	cache *lruCache[float64]
	// plans memoizes compiled plans by canonical query string, so
	// repeated query shapes compile once and execute many times; nil
	// when disabled.
	plans *lruCache[*Plan]
	// epoch is the shared invalidation counter behind both caches: one
	// InvalidateCaches bump makes every cached result and plan stale
	// atomically (see estcache.go).
	epoch atomic.Uint64
	// sink, when non-nil, receives pipeline stage timings and cache
	// outcomes from the traced estimation paths (SetMetricSink).
	sink MetricSink
}

// weight is one (node, expected count) pair of a sparse vector.
type weight struct {
	id NodeID
	w  float64
}

// DefaultCacheCapacity is the number of distinct queries the result
// cache retains unless SetCacheCapacity overrides it.
const DefaultCacheCapacity = 1024

// DefaultPlanCacheCapacity is the number of compiled plans the plan
// cache retains unless SetPlanCacheCapacity overrides it. Plans are
// larger than cached results (a few hundred bytes to a few KB per query
// shape), so the default is smaller than the result cache's.
const DefaultPlanCacheCapacity = 256

// NewEstimator returns an estimator over the synopsis, ready to be
// shared across goroutines. Construction precomputes the
// descendant-closure vectors of every node (the work Selectivity
// previously redid lazily per estimator) and enables a result cache of
// DefaultCacheCapacity queries.
func NewEstimator(s *Synopsis) *Estimator {
	e := &Estimator{
		s:    s,
		kids: buildKidIndex(s),
	}
	e.cache = newLRUCache[float64](DefaultCacheCapacity, &e.epoch)
	e.plans = newLRUCache[*Plan](DefaultPlanCacheCapacity, &e.epoch)
	e.desc = buildDescIndex(s)
	e.memos.New = func() any { return make(map[memoKey]float64) }
	return e
}

// SetCacheCapacity resizes the query-result cache to hold n entries
// (n <= 0 disables caching). Counters reset. Call before sharing the
// estimator across goroutines.
func (e *Estimator) SetCacheCapacity(n int) {
	if n <= 0 {
		e.cache = nil
		return
	}
	e.cache = newLRUCache[float64](n, &e.epoch)
}

// SetPlanCacheCapacity resizes the compiled-plan cache to hold n plans
// (n <= 0 disables plan caching: every uncached Selectivity call then
// recompiles). Counters reset. Call before sharing the estimator across
// goroutines.
func (e *Estimator) SetPlanCacheCapacity(n int) {
	if n <= 0 {
		e.plans = nil
		return
	}
	e.plans = newLRUCache[*Plan](n, &e.epoch)
}

// InvalidateCaches drops every cached result and compiled plan in one
// atomic step: the shared epoch counter is bumped first — instantly
// staling all entries of both caches, including ones a racing writer is
// about to insert with the old stamp — and then both caches are purged
// eagerly to release memory. Safe for concurrent use; called on
// synopsis hot swaps so no estimate computed against the outgoing
// generation survives into the next.
func (e *Estimator) InvalidateCaches() {
	e.epoch.Add(1)
	if e.cache != nil {
		e.cache.purge()
	}
	if e.plans != nil {
		e.plans.purge()
	}
}

// Generation returns the build generation of the synopsis this
// estimator serves (0 for artifacts that never went through a lifecycle
// swap).
func (e *Estimator) Generation() uint64 { return e.s.fp.Generation }

// Synopsis returns the synopsis the estimator is bound to.
func (e *Estimator) Synopsis() *Synopsis { return e.s }

// CacheStats returns the result cache's hit/miss counters and occupancy
// (zero-valued when the cache is disabled).
func (e *Estimator) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// PlanCacheStats returns the plan cache's hit/miss counters and
// occupancy (zero-valued when the cache is disabled). Every miss is one
// query compilation, so Misses counts how many plans were built.
func (e *Estimator) PlanCacheStats() CacheStats {
	if e.plans == nil {
		return CacheStats{}
	}
	return e.plans.stats()
}

// buildKidIndex converts each node's child map into an id-sorted slice.
func buildKidIndex(s *Synopsis) map[NodeID][]weight {
	kids := make(map[NodeID][]weight, len(s.nodes))
	for id, n := range s.nodes {
		if len(n.Children) == 0 {
			continue
		}
		ws := make([]weight, 0, len(n.Children))
		for c, avg := range n.Children {
			ws = append(ws, weight{id: c, w: avg})
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
		kids[id] = ws
	}
	return kids
}

// Selectivity estimates s(Q), the expected number of binding tuples. It
// is the canonicalize → compile → execute pipeline behind both caches:
// a result-cache hit returns immediately, a plan-cache hit skips
// compilation, and a full miss compiles the query and executes the
// fresh plan.
func (e *Estimator) Selectivity(q *query.Query) float64 {
	if e.cache != nil {
		key := e.cacheKey(q)
		if v, ok := e.cache.get(key); ok {
			return v
		}
		v := e.mustPlan(q).execute()
		e.cache.put(key, v)
		return v
	}
	return e.mustPlan(q).execute()
}

// SelectivityContext is Selectivity with cancellation: it checks ctx
// before evaluating each root variable (cache hits short-circuit). Use
// it when estimates are served under a request deadline. With a metric
// sink configured it runs the traced pipeline, so per-stage timings
// reach the sink on every call.
func (e *Estimator) SelectivityContext(ctx context.Context, q *query.Query) (float64, error) {
	if e.sink != nil {
		v, _, err := e.SelectivityTraced(ctx, q)
		return v, err
	}
	var key string
	if e.cache != nil {
		key = e.cacheKey(q)
		if v, ok := e.cache.get(key); ok {
			return v, nil
		}
	}
	plan, err := e.planFor(q)
	if err != nil {
		return 0, err
	}
	total, err := plan.executeContext(ctx)
	if err != nil {
		return 0, err
	}
	if e.cache != nil {
		e.cache.put(key, total)
	}
	return total, nil
}

// cacheKey is the canonical cache key of a query: its canonical string,
// salted with UninformedSel when nonzero (both the estimate and the
// compiled plan depend on it).
func (e *Estimator) cacheKey(q *query.Query) string {
	return e.saltKey(q.String())
}

// saltKey turns an already-canonicalized query string into its cache
// key, for callers that hold the canonical string.
func (e *Estimator) saltKey(canonical string) string {
	if e.UninformedSel == 0 {
		return canonical
	}
	return strconv.FormatFloat(e.UninformedSel, 'g', -1, 64) + "|" + canonical
}

// planFor returns the compiled plan of q, consulting the plan cache
// when enabled. Concurrent misses on the same shape may compile twice;
// both plans are identical and either lands in the cache.
func (e *Estimator) planFor(q *query.Query) (*Plan, error) {
	if e.plans == nil {
		return e.compile(q)
	}
	key := e.cacheKey(q)
	if p, ok := e.plans.get(key); ok {
		return p, nil
	}
	p, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	e.plans.put(key, p)
	return p, nil
}

// mustPlan is planFor for the error-free Selectivity signature.
// Compilation only fails on structurally invalid hand-built queries (a
// variable with no steps), which the previous interpreter answered with
// an index panic; the panic is kept, now carrying a message.
func (e *Estimator) mustPlan(q *query.Query) *Plan {
	p, err := e.planFor(q)
	if err != nil {
		panic(err)
	}
	return p
}

// interpretedSelectivity runs the original memoized interpreter over
// the query — re-resolving every step label and predicate against the
// synopsis as it walks. It is retained as the reference semantics of
// the estimation framework: differential tests pin the compiled plans
// to it bit-for-bit.
func (e *Estimator) interpretedSelectivity(q *query.Query) float64 {
	memo := e.memos.Get().(map[memoKey]float64)
	total := 1.0
	for _, r := range q.Roots {
		total *= e.estimate(r, -1, memo)
	}
	clear(memo)
	e.memos.Put(memo)
	return total
}

// memoKey identifies one (query variable, origin cluster) subproblem of
// a single Selectivity call.
type memoKey struct {
	v    *query.Node
	from NodeID
}

// estimate returns the expected number of binding tuples of the query
// subtree rooted at variable v, per element of the synopsis node from
// (from = -1 denotes the virtual document node above the root).
func (e *Estimator) estimate(v *query.Node, from NodeID, memo map[memoKey]float64) float64 {
	k := memoKey{v: v, from: from}
	if val, ok := memo[k]; ok {
		return val
	}
	frontier := e.reach(from, v.Steps)
	total := 0.0
	for _, fw := range frontier {
		node := e.s.nodes[fw.id]
		sel := e.predSel(node, v.Pred)
		if sel == 0 {
			continue
		}
		prod := fw.w * sel
		for _, c := range v.Children {
			prod *= e.estimate(c, fw.id, memo)
			if prod == 0 {
				break
			}
		}
		total += prod
	}
	memo[k] = total
	return total
}

// predSel returns σ_p(u): 1 for no predicate; 0 when the predicate kind
// cannot apply to the node's value type (the synopsis is type-respecting,
// so the whole cluster fails); the value summary's estimate when present;
// and UninformedSel for a type-matching predicate on an unsummarized
// cluster.
func (e *Estimator) predSel(n *Node, p query.Pred) float64 {
	if p == nil {
		return 1
	}
	want, known := p.Kind().ValueType()
	if !known || n.VType != want {
		return 0
	}
	if n.VSum == nil {
		return e.UninformedSel
	}
	return n.VSum.PredSel(p, e.s.dict)
}

// reach returns, for each synopsis node t, the expected number of
// elements of t reached from one element of `from` by the step sequence
// (the product of average edge counts along all matching synopsis paths,
// as in the Figure 7 walkthrough). The result is id-sorted; every
// accumulation iterates id-sorted inputs, so the floating-point sums are
// order-deterministic.
func (e *Estimator) reach(from NodeID, steps []query.Step) []weight {
	// Fast path for the common A/B edge shape: a single child step from
	// a real node selects a subsequence of the id-sorted kids slice, so
	// the frontier can be built directly — no map, no re-sort. Weights
	// are identical to the slow path's 1·count products.
	if from != -1 && len(steps) == 1 && steps[0].Axis == query.Child {
		st := steps[0]
		var out []weight
		for _, c := range e.kids[from] {
			if st.Matches(e.s.nodes[c.id].Label) {
				out = append(out, c)
			}
		}
		return out
	}
	acc := make(map[NodeID]float64)
	rest := steps
	if from == -1 {
		// The virtual document node has a single child: the root
		// cluster, with an average count equal to the root element count
		// (1 for well-formed documents).
		root := e.s.Root()
		st := steps[0]
		rest = steps[1:]
		if st.Axis == query.Child {
			if st.Matches(root.Label) {
				acc[root.ID] = root.Count
			}
		} else {
			if st.Matches(root.Label) {
				acc[root.ID] += root.Count
			}
			for _, d := range e.desc[root.ID] {
				if st.Matches(e.s.nodes[d.id].Label) {
					acc[d.id] += root.Count * d.w
				}
			}
		}
	} else {
		acc[from] = 1
	}
	frontier := sortedWeights(acc)
	for _, st := range rest {
		next := make(map[NodeID]float64)
		for _, fw := range frontier {
			if st.Axis == query.Child {
				for _, c := range e.kids[fw.id] {
					if st.Matches(e.s.nodes[c.id].Label) {
						next[c.id] += fw.w * c.w
					}
				}
			} else {
				for _, d := range e.desc[fw.id] {
					if st.Matches(e.s.nodes[d.id].Label) {
						next[d.id] += fw.w * d.w
					}
				}
			}
		}
		frontier = sortedWeights(next)
		if len(frontier) == 0 {
			break
		}
	}
	return frontier
}

// sortedWeights flattens a sparse vector into an id-sorted slice.
func sortedWeights(m map[NodeID]float64) []weight {
	if len(m) == 0 {
		return nil
	}
	out := make([]weight, 0, len(m))
	for id, w := range m {
		out = append(out, weight{id: id, w: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// buildDescIndex computes the descendant-closure vector of every node:
//
//	desc(u)[d] = Σ_c count(u,c)·(δ_{c=d} + desc(c)[d])
//
// Cycles (possible after aggressive merging) are truncated at the
// back-edge: a node currently on the recursion stack contributes its
// direct reach only, which keeps the computation finite and errs low.
// Vectors whose subgraph required no truncation ("clean") are exact and
// shared across starting nodes; cycle-tainted vectors depend on where
// the cycle was cut, so each is computed from its own node as the
// traversal root — exactly the value the previous lazy implementation
// produced at query time.
func buildDescIndex(s *Synopsis) map[NodeID][]weight {
	perm := make(map[NodeID]map[NodeID]float64) // clean (exact) vectors
	final := make(map[NodeID][]weight, len(s.nodes))
	// kidsOf iterates children deterministically: where a cycle is cut
	// depends on traversal order, and estimates must be reproducible
	// across runs and serialization round trips.
	kidsOf := make(map[NodeID][]weight, len(s.nodes))
	for id, n := range s.nodes {
		ws := make([]weight, 0, len(n.Children))
		for c, avg := range n.Children {
			ws = append(ws, weight{id: c, w: avg})
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
		kidsOf[id] = ws
	}

	onStack := make(map[NodeID]bool)
	// local memoizes cycle-tainted vectors within one top-level
	// traversal only: without any memo a DAG with shared substructure
	// makes the recursion exponential.
	var local map[NodeID]map[NodeID]float64
	// rec reports whether the vector is clean (no cycle truncation in
	// its subgraph); only clean vectors are shared across traversals.
	// Self-loops — the common cycle after merging recursively nested
	// same-label clusters — are resolved exactly via the geometric
	// series desc = (base + a·e_self) / (1 − a); longer cycles are
	// truncated.
	var rec func(id NodeID) (map[NodeID]float64, bool)
	rec = func(id NodeID) (map[NodeID]float64, bool) {
		if v, ok := perm[id]; ok {
			return v, true
		}
		if v, ok := local[id]; ok {
			return v, false
		}
		onStack[id] = true
		out := make(map[NodeID]float64)
		clean := true
		self := 0.0
		for _, kw := range kidsOf[id] {
			c, avg := kw.id, kw.w
			if c == id {
				self = avg
				continue
			}
			out[c] += avg
			if onStack[c] {
				clean = false // truncate the cycle
				continue
			}
			sub, subClean := rec(c)
			clean = clean && subClean
			for d, dc := range sub {
				out[d] += avg * dc
			}
		}
		if self > 0 {
			// Each element spawns `self` same-cluster children on
			// average; cap just below 1 so degenerate merged counts
			// cannot diverge.
			if self > 0.95 {
				self = 0.95
			}
			scale := 1 / (1 - self)
			for d := range out {
				out[d] *= scale
			}
			out[id] += self * scale
		}
		delete(onStack, id)
		if clean {
			perm[id] = out
		} else {
			local[id] = out
		}
		return out, clean
	}

	ids := make([]int, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, i := range ids {
		id := NodeID(i)
		v, ok := perm[id]
		if !ok {
			local = make(map[NodeID]map[NodeID]float64)
			v, _ = rec(id)
		}
		final[id] = sortedWeights(v)
	}
	return final
}
