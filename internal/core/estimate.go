package core

import (
	"sort"

	"xcluster/internal/query"
	"xcluster/internal/xmltree"
)

// Estimator approximates twig-query selectivities over an XCluster
// synopsis using the paper's Section 5 framework: it enumerates query
// embeddings (mappings of query variables to synopsis nodes satisfying
// the structural and value constraints) and combines edge counts with
// predicate selectivities under the generalized Path-Value Independence
// assumption — the selectivity of a path u[p]/c is |u|·σ_p(u)·count(u,c).
type Estimator struct {
	s *Synopsis
	// UninformedSel is the selectivity assumed for a value predicate on
	// a type-matching cluster that carries no value summary (a value
	// path not configured for summarization). The default 0 keeps
	// negative queries at the near-zero estimates reported in the paper;
	// set 1 for an optimistic (superset) estimate instead.
	UninformedSel float64
	// desc caches, per synopsis node, the expected number of
	// proper-descendant elements per cluster, per element of the node.
	desc map[NodeID]map[NodeID]float64
}

// NewEstimator returns an estimator over the synopsis.
func NewEstimator(s *Synopsis) *Estimator {
	return &Estimator{s: s, desc: make(map[NodeID]map[NodeID]float64)}
}

// Selectivity estimates s(Q), the expected number of binding tuples.
func (e *Estimator) Selectivity(q *query.Query) float64 {
	memo := make(map[*query.Node]map[NodeID]float64)
	total := 1.0
	for _, r := range q.Roots {
		total *= e.estimate(r, -1, memo)
	}
	return total
}

// estimate returns the expected number of binding tuples of the query
// subtree rooted at variable v, per element of the synopsis node from
// (from = -1 denotes the virtual document node above the root).
func (e *Estimator) estimate(v *query.Node, from NodeID, memo map[*query.Node]map[NodeID]float64) float64 {
	if m := memo[v]; m != nil {
		if val, ok := m[from]; ok {
			return val
		}
	}
	frontier := e.reach(from, v.Steps)
	total := 0.0
	for t, cnt := range frontier {
		node := e.s.nodes[t]
		sel := e.predSel(node, v.Pred)
		if sel == 0 {
			continue
		}
		prod := cnt * sel
		for _, c := range v.Children {
			prod *= e.estimate(c, t, memo)
			if prod == 0 {
				break
			}
		}
		total += prod
	}
	m := memo[v]
	if m == nil {
		m = make(map[NodeID]float64)
		memo[v] = m
	}
	m[from] = total
	return total
}

// predSel returns σ_p(u): 1 for no predicate; 0 when the predicate kind
// cannot apply to the node's value type (the synopsis is type-respecting,
// so the whole cluster fails); the value summary's estimate when present;
// and UninformedSel for a type-matching predicate on an unsummarized
// cluster.
func (e *Estimator) predSel(n *Node, p query.Pred) float64 {
	if p == nil {
		return 1
	}
	var want xmltree.ValueType
	switch p.Kind() {
	case query.KindRange:
		want = xmltree.TypeNumeric
	case query.KindContains:
		want = xmltree.TypeString
	case query.KindFTContains:
		want = xmltree.TypeText
	}
	if n.VType != want {
		return 0
	}
	if n.VSum == nil {
		return e.UninformedSel
	}
	return n.VSum.PredSel(p, e.s.dict)
}

// reach returns, for each synopsis node t, the expected number of
// elements of t reached from one element of `from` by the step sequence
// (the product of average edge counts along all matching synopsis paths,
// as in the Figure 7 walkthrough).
func (e *Estimator) reach(from NodeID, steps []query.Step) map[NodeID]float64 {
	frontier := make(map[NodeID]float64)
	rest := steps
	if from == -1 {
		// The virtual document node has a single child: the root
		// cluster, with an average count equal to the root element count
		// (1 for well-formed documents).
		root := e.s.Root()
		st := steps[0]
		rest = steps[1:]
		if st.Axis == query.Child {
			if st.Matches(root.Label) {
				frontier[root.ID] = root.Count
			}
		} else {
			if st.Matches(root.Label) {
				frontier[root.ID] += root.Count
			}
			for d, cnt := range e.descVec(root.ID) {
				if st.Matches(e.s.nodes[d].Label) {
					frontier[d] += root.Count * cnt
				}
			}
		}
	} else {
		frontier[from] = 1
	}
	for _, st := range rest {
		next := make(map[NodeID]float64)
		for uid, cnt := range frontier {
			u := e.s.nodes[uid]
			if st.Axis == query.Child {
				for c, avg := range u.Children {
					if st.Matches(e.s.nodes[c].Label) {
						next[c] += cnt * avg
					}
				}
			} else {
				for d, dc := range e.descVec(uid) {
					if st.Matches(e.s.nodes[d].Label) {
						next[d] += cnt * dc
					}
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return frontier
}

// descVec returns the expected number of proper-descendant elements per
// cluster, per element of node uid:
//
//	desc(u)[d] = Σ_c count(u,c)·(δ_{c=d} + desc(c)[d])
//
// Cycles (possible after aggressive merging) are truncated at the
// back-edge: a node currently on the recursion stack contributes its
// direct reach only, which keeps the computation finite and errs low.
func (e *Estimator) descVec(uid NodeID) map[NodeID]float64 {
	if v, ok := e.desc[uid]; ok {
		return v
	}
	onStack := make(map[NodeID]bool)
	// local memoizes cycle-tainted vectors for this traversal only: they
	// depend on where the cycle was cut, so they must not enter the
	// permanent cache, but without any memo a DAG with shared
	// substructure makes the recursion exponential.
	local := make(map[NodeID]map[NodeID]float64)
	// rec reports whether the vector is clean (no cycle truncation in
	// its subgraph); only clean vectors are cached permanently.
	// Self-loops — the common cycle after merging recursively nested
	// same-label clusters — are resolved exactly via the geometric
	// series desc = (base + a·e_self) / (1 − a); longer cycles are
	// truncated.
	var rec func(id NodeID) (map[NodeID]float64, bool)
	rec = func(id NodeID) (map[NodeID]float64, bool) {
		if v, ok := e.desc[id]; ok {
			return v, true
		}
		if v, ok := local[id]; ok {
			return v, false
		}
		onStack[id] = true
		out := make(map[NodeID]float64)
		clean := true
		self := 0.0
		// Deterministic child order: where a cycle is cut depends on
		// traversal order, and estimates must be reproducible across
		// runs and serialization round trips.
		children := make([]int, 0, len(e.s.nodes[id].Children))
		for c := range e.s.nodes[id].Children {
			children = append(children, int(c))
		}
		sort.Ints(children)
		for _, ci := range children {
			c := NodeID(ci)
			avg := e.s.nodes[id].Children[c]
			if c == id {
				self = avg
				continue
			}
			out[c] += avg
			if onStack[c] {
				clean = false // truncate the cycle
				continue
			}
			sub, subClean := rec(c)
			clean = clean && subClean
			for d, dc := range sub {
				out[d] += avg * dc
			}
		}
		if self > 0 {
			// Each element spawns `self` same-cluster children on
			// average; cap just below 1 so degenerate merged counts
			// cannot diverge.
			if self > 0.95 {
				self = 0.95
			}
			scale := 1 / (1 - self)
			for d := range out {
				out[d] *= scale
			}
			out[id] += self * scale
		}
		delete(onStack, id)
		if clean {
			e.desc[id] = out
		} else {
			local[id] = out
		}
		return out, clean
	}
	v, _ := rec(uid)
	return v
}
